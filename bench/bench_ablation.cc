// Ablations for the design choices DESIGN.md calls out:
//   A1: promotion rate limit — KeyDB (high locality) vs Spark (streaming);
//   A2: fine-grained weighted-interleave ratio sweep (beyond 3:1/1:1/1:3);
//   A3: queue-model knee sharpness — how sensitive end-to-end results are to
//       the loaded-latency law;
//   A4: static vs dynamic hot-page threshold.
//
// Each ablation grid runs through the parallel SweepRunner (--jobs /
// CXL_JOBS). Cells deliberately keep a fixed workload seed (not the derived
// sweep seed): every ablation compares rows against each other, so all rows
// must replay the same op stream.
#include <cmath>
#include <iostream>

#include "src/bench/context.h"
#include "src/core/cxl_explorer.h"
#include "src/util/units.h"

namespace {

using namespace cxl;

// --- A1 helpers -------------------------------------------------------------

apps::kv::KvServerSim::Result KeyDbWithRateLimit(double limit_mbps) {
  core::KeyDbExperimentOptions opt;
  opt.dataset_bytes = 8 * kGiB;
  opt.total_ops = 120'000;
  opt.warmup_ops = 30'000;
  topology::Platform platform = core::MakeHotPromotePlatform(opt.dataset_bytes);
  os::PageAllocator allocator(platform, 16 * kKiB);
  os::TieringConfig tc = core::DefaultTieringConfig();
  tc.promote_rate_limit_mbps = limit_mbps;
  os::TieredMemory tiering(allocator, tc);
  apps::kv::KvStoreConfig store_cfg;
  store_cfg.record_count = opt.dataset_bytes / opt.value_bytes;
  const auto setup = core::MakeCapacitySetup(core::CapacityConfig::kHotPromote, platform);
  auto store = apps::kv::KvStore::Create(allocator, setup.policy, store_cfg, &tiering);
  workload::YcsbGenerator gen(workload::YcsbWorkload::kB, store_cfg.record_count, 1);
  apps::kv::KvServerConfig scfg;
  scfg.total_ops = opt.total_ops;
  scfg.warmup_ops = opt.warmup_ops;
  apps::kv::KvServerSim sim(platform, *store, gen, scfg, &tiering);
  auto result = sim.Run();
  store->Free();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  auto ctx = cxl::bench::Context::FromArgs(&argc, argv);
  auto& bench_telemetry = ctx.telemetry();
  runner::SweepOptions sweep_options = ctx.Sweep();
  runner::SweepStats stats;

  // --- A1: rate limit, locality-dependent -----------------------------------
  PrintSection(std::cout,
               "A1: promotion rate limit x workload locality (the §4.1 vs §4.2 tension)");
  Table a1({"rate limit MB/s", "KeyDB kops/s", "KeyDB migrated GB", "Spark Q7 norm time",
            "Spark migrated GB"});
  const auto& q7 = *apps::spark::FindQuery("Q7");
  const double spark_baseline =
      apps::spark::SparkCluster(apps::spark::SparkConfig::MmemOnly()).RunQuery(q7).total_seconds;
  struct A1Row {
    apps::kv::KvServerSim::Result kv;
    apps::spark::QueryResult spark;
  };
  const std::vector<double> limits = {64.0, 1024.0, 3000.0, 16384.0};
  const auto a1_rows = runner::RunSweep(
      limits,
      [&q7](const double& limit, uint64_t /*seed*/) -> StatusOr<A1Row> {
        A1Row row;
        row.kv = KeyDbWithRateLimit(limit);
        apps::spark::SparkConfig cfg = apps::spark::SparkConfig::HotPromote();
        cfg.promote_rate_limit_mbps = limit;
        row.spark = apps::spark::SparkCluster(cfg).RunQuery(q7);
        return row;
      },
      sweep_options, &stats);
  bench_telemetry.RecordSweep("a1", stats);
  if (!a1_rows.ok()) {
    std::cerr << "A1 failed: " << a1_rows.status().ToString() << "\n";
    return 1;
  }
  for (size_t i = 0; i < limits.size(); ++i) {
    const A1Row& row = (*a1_rows)[i];
    a1.Row()
        .Cell(limits[i], 0)
        .Cell(row.kv.throughput_kops, 1)
        .Cell(BytesToGBd(row.kv.migrated_bytes), 2)
        .Cell(row.spark.total_seconds / spark_baseline, 2)
        .Cell(BytesToGBd(row.spark.migrated_bytes), 1);
  }
  a1.Print(std::cout);
  std::cout << "Reading: KeyDB saturates its benefit at a tiny budget (hot set is small and\n"
               "stable); Spark burns whatever budget it gets without converging — raising the\n"
               "limit raises churn, not performance. A single system-wide knob cannot serve\n"
               "both (the paper's §4.2.3 caution).\n";

  // --- A2: fine interleave sweep --------------------------------------------
  PrintSection(std::cout, "A2: weighted-interleave ratio sweep (KeyDB YCSB-C)");
  core::KeyDbExperimentOptions opt;
  opt.dataset_bytes = 8 * kGiB;
  opt.total_ops = 120'000;
  opt.warmup_ops = 30'000;
  Table a2({"MMEM share %", "kops/s", "p99 us"});
  const auto mmem_res =
      core::RunKeyDbExperiment(core::CapacityConfig::kMmem, workload::YcsbWorkload::kC, opt);
  struct Ratio {
    int top;
    int low;
  };
  const std::vector<Ratio> ratios = {Ratio{7, 1}, Ratio{3, 1}, Ratio{2, 1}, Ratio{1, 1},
                                     Ratio{1, 2}, Ratio{1, 3}, Ratio{1, 7}};
  const auto a2_rows = runner::RunSweep(
      ratios,
      [&opt](const Ratio& r, uint64_t /*seed*/) -> StatusOr<apps::kv::KvServerSim::Result> {
        topology::Platform platform = topology::Platform::CxlServer(false);
        os::PageAllocator allocator(platform, 16 * kKiB);
        apps::kv::KvStoreConfig store_cfg;
        store_cfg.record_count = opt.dataset_bytes / opt.value_bytes;
        auto store = apps::kv::KvStore::Create(
            allocator,
            os::NumaPolicy::WeightedInterleave(platform.DramNodes(), platform.CxlNodes(), r.top,
                                               r.low),
            store_cfg);
        if (!store.ok()) {
          return store.status();
        }
        workload::YcsbGenerator gen(workload::YcsbWorkload::kC, store_cfg.record_count, 1);
        apps::kv::KvServerConfig scfg;
        scfg.total_ops = opt.total_ops;
        scfg.warmup_ops = opt.warmup_ops;
        apps::kv::KvServerSim sim(platform, *store, gen, scfg);
        auto result = sim.Run();
        store->Free();
        return result;
      },
      sweep_options, &stats);
  bench_telemetry.RecordSweep("a2", stats);
  if (!a2_rows.ok()) {
    std::cerr << "A2 failed: " << a2_rows.status().ToString() << "\n";
    return 1;
  }
  for (size_t i = 0; i < ratios.size(); ++i) {
    a2.Row()
        .Cell(100.0 * ratios[i].top / (ratios[i].top + ratios[i].low), 1)
        .Cell((*a2_rows)[i].throughput_kops, 1)
        .Cell((*a2_rows)[i].all_latency_us.p99(), 0);
  }
  if (mmem_res.ok()) {
    a2.Row().Cell(100.0, 1).Cell(mmem_res->server.throughput_kops, 1)
        .Cell(mmem_res->server.all_latency_us.p99(), 0);
  }
  a2.Print(std::cout);

  // --- A3: knee sharpness sensitivity ---------------------------------------
  PrintSection(std::cout, "A3: loaded-latency knee sharpness vs LLM saturation behaviour");
  Table a3({"knee sharpness", "knee util (1.5x)", "latency @94% util (ns)",
            "MMEM decode quality @94%"});
  for (double sharp : {3.0, 4.5, 6.0, 8.0}) {
    // Rebuild the local-DRAM latency law with a different sharpness: where
    // the knee lands directly sets how hard the MMEM-only LLM configuration
    // collapses at its 60-thread operating point (u ~ 0.94, §5.2).
    sim::QueueModel model(97.0, 0.25, sharp);
    const double lat94 = model.LatencyAt(0.94);
    a3.Row()
        .Cell(sharp, 1)
        .Cell(model.KneeUtilization(1.5), 2)
        .Cell(lat94, 0)
        .Cell(std::pow(97.0 / lat94, 0.45), 2);
  }
  a3.Print(std::cout);
  std::cout << "Reading: sharper knees keep latency flat longer but collapse harder at the\n"
               "94% operating point; the calibrated value (6.0) pins the knee in the paper's\n"
               "75-83% band and yields the observed ~2x serving-rate gap.\n";

  // --- A5: SNC-4 vs SNC-off for the LLM experiment ---------------------------
  PrintSection(std::cout, "A5: why §5 binds to one SNC-4 domain (vs the whole SNC-off socket)");
  Table a5({"threads", "SNC domain: MMEM tok/s", "SNC domain: 3:1 gain %",
            "full socket: MMEM tok/s", "full socket: 3:1 gain %"});
  struct A5Row {
    double domain_mmem;
    double domain_interleave;
    double socket_mmem;
    double socket_interleave;
  };
  const std::vector<int> thread_counts = {24, 48, 60, 84};
  const auto a5_rows = runner::RunSweep(
      thread_counts,
      [](const int& threads, uint64_t /*seed*/) -> StatusOr<A5Row> {
        // Per-cell sims: Solve() adapts internal state, so sharing one sim
        // across concurrent cells would race.
        apps::llm::LlmServingConfig domain_cfg;
        apps::llm::LlmServingConfig socket_cfg;
        socket_cfg.dram_bandwidth_scale = 4.0;  // 8 channels.
        apps::llm::LlmInferenceSim domain_sim(domain_cfg);
        apps::llm::LlmInferenceSim socket_sim(socket_cfg);
        A5Row row;
        row.domain_mmem = domain_sim.Solve(apps::llm::LlmPlacement::MmemOnly(), threads)
                              .serving_rate_tokens_s;
        row.domain_interleave = domain_sim.Solve(apps::llm::LlmPlacement::Interleave(3, 1), threads)
                                    .serving_rate_tokens_s;
        row.socket_mmem = socket_sim.Solve(apps::llm::LlmPlacement::MmemOnly(), threads)
                              .serving_rate_tokens_s;
        row.socket_interleave = socket_sim.Solve(apps::llm::LlmPlacement::Interleave(3, 1), threads)
                                    .serving_rate_tokens_s;
        return row;
      },
      sweep_options, &stats);
  bench_telemetry.RecordSweep("a5", stats);
  if (!a5_rows.ok()) {
    std::cerr << "A5 failed: " << a5_rows.status().ToString() << "\n";
    return 1;
  }
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    const A5Row& row = (*a5_rows)[i];
    a5.Row()
        .Cell(static_cast<uint64_t>(thread_counts[i]))
        .Cell(row.domain_mmem, 1)
        .Cell(100.0 * (row.domain_interleave / row.domain_mmem - 1.0), 1)
        .Cell(row.socket_mmem, 1)
        .Cell(100.0 * (row.socket_interleave / row.socket_mmem - 1.0), 1);
  }
  a5.Print(std::cout);
  std::cout << "Reading: on the full 268 GB/s socket these thread counts never saturate DRAM\n"
               "and interleaving only costs (negative gain). Binding to one 67 GB/s domain is\n"
               "what lets §5 show bandwidth contention at laptop-scale thread counts; the same\n"
               "crossover would appear socket-wide at ~4x the threads.\n";

  // --- A4: static vs dynamic hot threshold ----------------------------------
  PrintSection(std::cout, "A4: hot-page threshold, static vs dynamic (KeyDB Hot-Promote)");
  Table a4({"threshold mode", "kops/s", "migrated GB"});
  const std::vector<int> modes = {0, 1};
  const auto a4_rows = runner::RunSweep(
      modes,
      [&opt](const int& dynamic, uint64_t /*seed*/) -> StatusOr<apps::kv::KvServerSim::Result> {
        topology::Platform platform = core::MakeHotPromotePlatform(opt.dataset_bytes);
        os::PageAllocator allocator(platform, 16 * kKiB);
        os::TieringConfig tc = core::DefaultTieringConfig();
        tc.dynamic_threshold = dynamic != 0;
        os::TieredMemory tiering(allocator, tc);
        apps::kv::KvStoreConfig store_cfg;
        store_cfg.record_count = opt.dataset_bytes / opt.value_bytes;
        const auto setup = core::MakeCapacitySetup(core::CapacityConfig::kHotPromote, platform);
        auto store = apps::kv::KvStore::Create(allocator, setup.policy, store_cfg, &tiering);
        if (!store.ok()) {
          return store.status();
        }
        workload::YcsbGenerator gen(workload::YcsbWorkload::kB, store_cfg.record_count, 1);
        apps::kv::KvServerConfig scfg;
        scfg.total_ops = opt.total_ops;
        scfg.warmup_ops = opt.warmup_ops;
        apps::kv::KvServerSim sim(platform, *store, gen, scfg, &tiering);
        auto result = sim.Run();
        store->Free();
        return result;
      },
      sweep_options, &stats);
  bench_telemetry.RecordSweep("a4", stats);
  if (!a4_rows.ok()) {
    std::cerr << "A4 failed: " << a4_rows.status().ToString() << "\n";
    return 1;
  }
  for (size_t i = 0; i < modes.size(); ++i) {
    a4.Row()
        .Cell(modes[i] != 0 ? "dynamic" : "static")
        .Cell((*a4_rows)[i].throughput_kops, 1)
        .Cell(BytesToGBd((*a4_rows)[i].migrated_bytes), 2);
  }
  a4.Print(std::cout);
  if (!ctx.Write("bench_ablation")) {
    return 1;
  }
  return 0;
}
