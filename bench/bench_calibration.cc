// Calibration gate: sweeps every memory-path profile, queue model, CXL link
// efficiency stack, end-to-end TrafficModel path and the bandwidth solver's
// fairness contract through the paper-anchored tolerance bands in src/check.
//
// Prints a pass/fail table (band, paper reference, tolerance, measured) and
// exits non-zero if any band is violated, so ctest and the CI
// calibration-gate job fail loudly when a refactor nudges the model off the
// paper's measurements.
//
//   ./bench_calibration            table + summary, exit 1 on any failure
//   ./bench_calibration --fails    print only violated bands
#include <cstring>
#include <iostream>

#include "src/check/calibration.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  bool fails_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fails") == 0) {
      fails_only = true;
    } else {
      std::cerr << "unknown argument: " << argv[i] << "\n";
      return 2;
    }
  }

  cxl::PrintSection(std::cout, "Calibration gate — paper-anchored tolerance bands");
  const cxl::check::CalibrationReport report = cxl::check::RunAllCalibrationChecks();

  if (fails_only) {
    cxl::check::CalibrationReport filtered;
    for (const auto& r : report.results()) {
      if (!r.pass) {
        filtered.Check(r.band, r.measured);
      }
    }
    if (filtered.results().empty()) {
      std::cout << "all " << report.results().size() << " bands in tolerance\n";
      return 0;
    }
    return filtered.PrintTable(std::cout) > 0 ? 1 : 0;
  }

  return report.PrintTable(std::cout) > 0 ? 1 : 0;
}
