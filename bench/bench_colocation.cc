// Extension bench: tenant colocation and the §3.4 load-balancing insight at
// application level.
//
// "Even if a substantial portion of memory bandwidth in MMEM remains
//  unused, e.g., 30%, offloading a portion of the workload, e.g., 20%, to
//  CXL memory can lead to overall performance improvements."
//
// Two tenants share a socket: a latency-sensitive KV tenant and a
// bandwidth-hungry streaming tenant. We sweep the streamer's intensity and
// compare (a) everything on DRAM vs (b) the planner-recommended split, and
// report both tenants' outcomes.
#include <iostream>

#include "src/bench/context.h"
#include "src/core/cxl_explorer.h"
#include "src/os/bandwidth_aware.h"

int main(int argc, char** argv) {
  auto ctx = cxl::bench::Context::FromArgs(&argc, argv);
  auto& bench_telemetry = ctx.telemetry();

  using namespace cxl;
  using mem::AccessMix;

  const topology::Platform platform = topology::Platform::CxlServer(true);  // SNC-4.
  const topology::NodeId dram = platform.DramNodes(0)[0];
  const topology::NodeId cxl0 = platform.CxlNodes()[0];
  const AccessMix mix = AccessMix::ReadOnly();
  const double kv_gbps = 4.0;  // The KV tenant's modest, latency-critical traffic.

  PrintSection(std::cout,
               "Two tenants on one SNC domain: KV (4 GB/s, latency-bound) + streamer");
  Table t({"streamer GB/s", "DRAM util (all-DRAM)", "KV latency ns (all-DRAM)",
           "planner split (MMEM share)", "KV latency ns (split)", "streamer achieved GB/s (split)"});

  os::BandwidthAwarePlanner planner(platform, 0, {dram});  // Scoped to the pinned domain.
  for (double streamer_gbps : {20.0, 35.0, 45.0, 55.0, 62.0}) {
    // (a) Everything on the domain's DRAM.
    topology::TrafficModel all_dram(platform);
    const auto kv_flow = all_dram.AddMemoryTraffic(0, dram, mix, kv_gbps);
    all_dram.AddMemoryTraffic(0, dram, mix, streamer_gbps);
    const auto sol_a = all_dram.Solve();

    // (b) The planner chooses the streamer's DRAM/CXL split; the KV tenant
    // stays on DRAM (its 4 GB/s is not the problem).
    os::PlacementObjective obj;
    obj.demand_gbps = streamer_gbps + kv_gbps;
    obj.latency_sensitivity = 0.5;
    // Planner sees the whole socket; rescale its view to this one domain by
    // planning against the domain-level demand share.
    const auto plan = planner.Recommend(obj);
    topology::TrafficModel split(platform);
    const auto kv_flow_b = split.AddMemoryTraffic(0, dram, mix, kv_gbps);
    const double dram_share = plan.low_weight == 0 ? 1.0 : plan.mmem_share;
    const auto streamer_dram = split.AddMemoryTraffic(0, dram, mix, streamer_gbps * dram_share);
    topology::TrafficModel::FlowId streamer_cxl = -1;
    if (dram_share < 1.0) {
      streamer_cxl = split.AddMemoryTraffic(0, cxl0, mix, streamer_gbps * (1.0 - dram_share));
    }
    const auto sol_b = split.Solve();
    double streamer_achieved = sol_b.flows[streamer_dram].achieved_gbps;
    if (streamer_cxl >= 0) {
      streamer_achieved += sol_b.flows[streamer_cxl].achieved_gbps;
    }

    t.Row()
        .Cell(streamer_gbps, 0)
        .Cell(sol_a.nodes[dram].utilization, 2)
        .Cell(sol_a.flows[kv_flow].latency_ns, 1)
        .Cell(dram_share, 2)
        .Cell(sol_b.flows[kv_flow_b].latency_ns, 1)
        .Cell(streamer_achieved, 1);
  }
  t.Print(std::cout);
  std::cout << "Reading: once the streamer pushes the domain past its knee, shifting part of\n"
               "it to CXL cuts the KV tenant's latency (and the streamer loses nothing) —\n"
               "CXL as a load-balancing resource, not a second-class tier (§3.4).\n";
  if (!ctx.Write("bench_colocation")) {
    return 1;
  }
  return 0;
}
