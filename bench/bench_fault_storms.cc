// Resilience sweep: what each layer's graceful-degradation response costs
// under the fault taxonomy of src/fault. Three tables:
//
//   (a) KeyDB under per-scenario fault plans (down-train, CRC storm,
//       poisoned cachelines, daemon stall, the composite storm on
//       Hot-Promote; flash IO errors on MMEM-SSD-0.2) — throughput loss,
//       tail inflation, and the fault accounting each response leaves
//       behind (poison retries, quarantined pages, shed arrivals).
//   (b) Spark TPC-H Q9 with shuffle-fetch failures while the link is
//       degraded — re-executed partitions and the retry seconds they cost.
//   (c) LLM serving under a CXL bandwidth collapse — the batch-shrink
//       response trades tokens/s for per-request latency inside the SLO.
//
// The KeyDB scenarios run through the parallel SweepRunner with per-cell
// fault seeds derived via runner::CellSeed, so output is byte-identical for
// any --jobs value at a fixed --fault-seed (the CI fault-storm smoke job
// diffs --jobs 1 against --jobs 8). Passing --faults SPEC appends one extra
// scenario running the user's plan on Hot-Promote.
#include <iostream>
#include <vector>

#include "src/bench/context.h"
#include "src/core/cxl_explorer.h"
#include "src/telemetry/anomaly.h"
#include "src/telemetry/slo.h"
#include "src/util/units.h"

namespace {

using namespace cxl;

struct Scenario {
  std::string label;
  core::CapacityConfig config;
  fault::FaultPlan plan;
};

constexpr double kInf = std::numeric_limits<double>::infinity();

core::KeyDbExperimentOptions KvOptions() {
  core::KeyDbExperimentOptions opt;
  opt.dataset_bytes = 16 * kGiB;  // 1/32-scale 512 GB shape: fast under TSan.
  opt.total_ops = 90'000;
  opt.warmup_ops = 20'000;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  auto ctx = bench::Context::FromArgs(&argc, argv);
  auto& bench_telemetry = ctx.telemetry();

  // Windows are sub-second: the scaled run covers ~0.5 s of simulated time,
  // so every fault activates early and (mostly) persists to the end.
  std::vector<Scenario> scenarios = {
      {"healthy", core::CapacityConfig::kHotPromote, {}},
      {"downtrain x8", core::CapacityConfig::kHotPromote,
       fault::FaultPlan().Downtrain(0.05, kInf, 8)},
      {"downtrain x4", core::CapacityConfig::kHotPromote,
       fault::FaultPlan().Downtrain(0.05, kInf, 4)},
      {"crc storm", core::CapacityConfig::kHotPromote,
       fault::FaultPlan().CrcStorm(0.05, kInf, 0.15)},
      {"poisoned lines", core::CapacityConfig::kHotPromote,
       fault::FaultPlan().Poison(0.0, kInf, 2e-4)},
      {"dram throttle", core::CapacityConfig::kHotPromote,
       fault::FaultPlan().DramThrottle(0.05, kInf, 0.25)},
      {"daemon stall", core::CapacityConfig::kHotPromote,
       fault::FaultPlan().DaemonStall(0.02, kInf)},
      {"storm", core::CapacityConfig::kHotPromote,
       // FaultPlan::Storm() compressed ~10x onto the scaled run's clock.
       fault::FaultPlan()
           .Downtrain(0.05, 0.3, 8)
           .CrcStorm(0.1, 0.2, 0.15)
           .Poison(0.0, kInf, 2e-4)
           .DaemonStall(0.15, 0.15)
           .FlashErrors(0.05, kInf, 0.01)},
      {"healthy (ssd)", core::CapacityConfig::kMmemSsd02, {}},
      {"flash errors", core::CapacityConfig::kMmemSsd02,
       fault::FaultPlan().FlashErrors(0.0, kInf, 0.02)},
  };
  if (ctx.faults_enabled()) {
    scenarios.push_back({"--faults", core::CapacityConfig::kHotPromote, ctx.faults()});
  }

  std::vector<std::string> labels;
  for (const auto& s : scenarios) {
    labels.push_back(s.label);
  }
  runner::SweepOptions sweep_options = ctx.Sweep();
  sweep_options.cell_labels = labels;
  runner::SweepStats stats;
  std::vector<telemetry::MetricRegistry> cell_sinks(
      bench_telemetry.enabled() ? scenarios.size() : 0);
  for (auto& sink : cell_sinks) {
    bench_telemetry.ConfigureSink(&sink);  // --events-ring flight recorder.
  }
  const auto grid = runner::RunSweep(
      scenarios,
      [&scenarios, &cell_sinks, &ctx](const Scenario& scenario, uint64_t /*seed*/) {
        const size_t index = static_cast<size_t>(&scenario - scenarios.data());
        core::KeyDbExperimentOptions opt = KvOptions();
        // Every scenario replays the same workload seed: rows differ only by
        // fault plan, so "x healthy" is purely the degradation cost.
        opt.env = ctx.Env(1);
        opt.env.faults = scenario.plan;
        opt.env.fault_seed = runner::CellSeed(ctx.fault_seed(), index);
        opt.env.telemetry = cell_sinks.empty() ? nullptr : &cell_sinks[index];
        return core::RunKeyDbExperiment(scenario.config, workload::YcsbWorkload::kA, opt);
      },
      sweep_options, &stats);
  if (!grid.ok()) {
    std::cerr << "FAILED: " << grid.status().ToString() << "\n";
    return 1;
  }
  std::cerr << "[sweep] " << stats.Summary() << "\n";
  bench_telemetry.RecordSweep("fault_storms", stats);

  // Each scenario compares against the first healthy row sharing its config.
  const auto healthy_index = [&](const Scenario& s) {
    for (size_t i = 0; i < scenarios.size(); ++i) {
      if (scenarios[i].config == s.config && scenarios[i].plan.empty()) {
        return i;
      }
    }
    return size_t{0};
  };
  const auto healthy_kops = [&](const Scenario& s) {
    return (*grid)[healthy_index(s)].server.throughput_kops;
  };

  // SLO + anomaly pass, per cell and before the merge so events land in the
  // cell they describe. Objectives derive from the matched healthy row: epoch
  // mean latency within 1.5x healthy, epoch throughput above 0.7x healthy.
  // Violations attribute to the fault window active (else most recently
  // opened) at the breach time — post-hoc over the scenario's static plan,
  // so the pass itself is deterministic at any --jobs.
  for (size_t i = 0; i < cell_sinks.size(); ++i) {
    const auto& healthy = (*grid)[healthy_index(scenarios[i])].server;
    double healthy_lat_us = 0.0;
    uint64_t lat_epochs = 0;
    for (const auto& e : healthy.timeline) {
      if (e.mean_latency_us > 0.0) {
        healthy_lat_us += e.mean_latency_us;
        ++lat_epochs;
      }
    }
    telemetry::SloSpec spec;
    spec.workload = "kv";
    if (lat_epochs > 0) {
      spec.max_latency_us = 1.5 * healthy_lat_us / lat_epochs;
    }
    spec.min_throughput = 0.7 * healthy.throughput_kops;
    const fault::FaultPlan& plan = scenarios[i].plan;
    telemetry::SloTracker slo(spec, &cell_sinks[i], [&plan](double t_ms) {
      return fault::AttributeWindowAt(plan, MsToSec(t_ms));
    });
    for (const auto& e : (*grid)[i].server.timeline) {
      if (e.mean_latency_us <= 0.0) {
        continue;  // Warm-up epochs carry no measured latency.
      }
      slo.Observe(e.end_ms, e.mean_latency_us, e.kops);
    }
    slo.Finish();
    telemetry::DetectAnomalies(cell_sinks[i]);
  }
  for (size_t i = 0; i < cell_sinks.size(); ++i) {
    bench_telemetry.registry().MergeFrom(cell_sinks[i], labels[i] + "/");
  }

  PrintSection(std::cout, "Fault storms (a): KeyDB YCSB-A degradation responses");
  Table kv({"scenario", "kops", "x healthy", "p99 us", "migr MB", "poisoned",
            "quarantined", "flash", "shed ops"});
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const auto& r = (*grid)[i].server;
    kv.Row()
        .Cell(scenarios[i].label)
        .Cell(r.throughput_kops, 1)
        .Cell(healthy_kops(scenarios[i]) > 0.0
                  ? r.throughput_kops / healthy_kops(scenarios[i])
                  : 0.0,
              3)
        .Cell(r.all_latency_us.p99(), 0)
        .Cell(BytesToMBd(r.migrated_bytes), 1)
        .Cell(r.poisoned_reads)
        .Cell(r.quarantined_pages)
        .Cell(r.flash_errors)
        .Cell(r.shed_ops);
  }
  kv.Print(std::cout);
  std::cout << "Reading: lane down-training inflates the CXL loaded latency by the §3.4\n"
               "flit accounting; poison costs rereads plus page quarantine; the stall\n"
               "freezes promotion (watch migrated volume in --metrics-out); the storm\n"
               "composes all of them and can arm load shedding.\n";

  PrintSection(std::cout, "Fault storms (b): Spark TPC-H Q9 shuffle re-execution");
  Table sp({"scenario", "total s", "shuffle s", "reexec parts", "retry s"});
  for (const auto& [label, plan] :
       {std::pair<std::string, fault::FaultPlan>{"healthy", {}},
        {"downtrain x4", fault::FaultPlan().Downtrain(0.0, kInf, 4)}}) {
    core::SparkExperimentOptions opt;
    opt.cluster = apps::spark::SparkConfig::Interleave(1, 1);
    if (const auto* q9 = apps::spark::FindQuery("Q9")) {
      opt.queries = {*q9};
    }
    opt.env = ctx.Env();
    opt.env.faults = plan;
    const auto res = core::RunSparkExperiment(opt);
    if (!res.ok()) {
      std::cerr << "FAILED: " << res.status().ToString() << "\n";
      return 1;
    }
    double shuffle_s = 0.0;
    double retry_s = 0.0;
    for (const auto& q : res->queries) {
      shuffle_s += q.ShuffleSeconds();
      retry_s += q.retry_seconds;
    }
    sp.Row()
        .Cell(label)
        .Cell(res->total_seconds, 1)
        .Cell(shuffle_s, 1)
        .Cell(static_cast<uint64_t>(res->reexecuted_partitions))
        .Cell(retry_s, 2);
  }
  sp.Print(std::cout);

  PrintSection(std::cout, "Fault storms (c): LLM serving under CXL bandwidth collapse");
  Table llm({"scenario", "tok/s", "req/s", "mean s", "p99 s", "shrinks", "min batch"});
  for (const auto& [label, plan] :
       {std::pair<std::string, fault::FaultPlan>{"healthy", {}},
        {"bw collapse",
         fault::FaultPlan().Downtrain(0.0, kInf, 4).CrcStorm(0.0, kInf, 0.2)}}) {
    core::LlmExperimentOptions opt;
    opt.stack.placement = apps::llm::LlmPlacement::Interleave(1, 2);
    opt.requests = 48;
    opt.env = ctx.Env();
    opt.env.faults = plan;
    const auto res = core::RunLlmExperiment(opt);
    if (!res.ok()) {
      std::cerr << "FAILED: " << res.status().ToString() << "\n";
      return 1;
    }
    llm.Row()
        .Cell(label)
        .Cell(res->stats.tokens_per_second, 1)
        .Cell(res->stats.requests_per_second, 2)
        .Cell(res->stats.mean_request_seconds, 3)
        .Cell(res->latency_s.p99(), 3)
        .Cell(res->stats.batch_shrinks)
        .Cell(static_cast<uint64_t>(res->stats.min_batch));
  }
  llm.Print(std::cout);
  std::cout << "Reading: shrinking the decode batch sheds KV-cache streaming so each\n"
               "token stays within the per-token latency SLO on the degraded link; the\n"
               "remaining slowdown is queueing on the saturated backends, which the\n"
               "smaller batch bounds instead of letting every request inflate together.\n";

  if (!ctx.Write("bench_fault_storms")) {
    return 1;
  }
  return 0;
}
