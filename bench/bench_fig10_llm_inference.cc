// Regenerates Fig. 10: CPU LLM inference on one SNC-4 domain + A1000 CXL.
//
//   (a) serving rate vs total inference threads for MMEM / 3:1 / 1:1 / 1:3;
//   (b) memory bandwidth vs thread count for a single backend;
//   (c) memory bandwidth vs KV-cache size.
//
// Expected shape (§5.2): near-linear scaling until MMEM saturates around 48
// threads; at 60 threads 3:1 beats MMEM-only by ~95%; beyond 64 threads
// even 1:3 beats MMEM-only (~14%); per-backend bandwidth plateaus at
// ~24.2 GB/s by 24 threads; KV-cache traffic tops out ~21 GB/s over a
// ~12 GB/s model-load floor.
#include <iostream>
#include <vector>

#include "src/bench/context.h"
#include "src/core/cxl_explorer.h"
#include "src/util/units.h"

int main(int argc, char** argv) {
  using namespace cxl;
  using apps::llm::LlmInferenceSim;
  using apps::llm::LlmPlacement;

  auto ctx = bench::Context::FromArgs(&argc, argv);
  auto& bench_telemetry = ctx.telemetry();
  telemetry::MetricRegistry* sink = bench_telemetry.sink();
  LlmInferenceSim sim;
  const std::vector<LlmPlacement> placements = {
      LlmPlacement::MmemOnly(), LlmPlacement::Interleave(3, 1), LlmPlacement::Interleave(1, 1),
      LlmPlacement::Interleave(1, 3)};

  PrintSection(std::cout, "Fig 10(a): serving rate (tokens/s) vs total threads");
  std::vector<std::string> cols = {"threads"};
  for (const auto& p : placements) {
    cols.push_back(p.label);
  }
  Table rate(cols);
  for (int threads = 12; threads <= 84; threads += 12) {
    rate.Row().Cell(static_cast<uint64_t>(threads));
    for (const auto& p : placements) {
      const double tokens_s = sim.Solve(p, threads).serving_rate_tokens_s;
      rate.Cell(tokens_s, 1);
      if (sink != nullptr) {
        // x-axis is the thread count, not time: Fig 10(a) is a scaling curve.
        sink->timeline().Sample("llm.tokens_per_second/" + p.label, threads, tokens_s);
      }
    }
  }
  rate.Print(std::cout);

  {
    const double mmem60 = sim.Solve(placements[0], 60).serving_rate_tokens_s;
    const double i31_60 = sim.Solve(placements[1], 60).serving_rate_tokens_s;
    const double mmem72 = sim.Solve(placements[0], 72).serving_rate_tokens_s;
    const double i13_72 = sim.Solve(placements[3], 72).serving_rate_tokens_s;
    std::cout << "3:1 vs MMEM at 60 threads: +"
              << FormatDouble(100.0 * (i31_60 / mmem60 - 1.0), 1) << "%  (paper: +95%)\n";
    std::cout << "1:3 vs MMEM at 72 threads: +"
              << FormatDouble(100.0 * (i13_72 / mmem72 - 1.0), 1) << "%  (paper: ~+14%)\n";
  }

  PrintSection(std::cout, "Fig 10(b): single-backend memory bandwidth vs threads");
  Table bw({"threads", "GB/s"});
  for (int t = 2; t <= 32; t += 2) {
    const double gbps = sim.SingleBackendBandwidthGBps(t);
    bw.Row().Cell(static_cast<uint64_t>(t)).Cell(gbps, 1);
    if (sink != nullptr) {
      sink->timeline().Sample("llm.backend_bandwidth_gbps", t, gbps);
    }
  }
  bw.Print(std::cout);
  std::cout << "plateau: " << FormatDouble(sim.SingleBackendBandwidthGBps(32), 1)
            << " GB/s (paper: 24.2 at 24 threads)\n";

  PrintSection(std::cout, "Fig 10(c): memory bandwidth vs KV-cache size");
  Table kv({"KV cache GB", "GB/s"});
  for (double gb : {0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    const double gbps = sim.KvCacheBandwidthGBps(GBToBytesd(gb));
    kv.Row().Cell(gb, 2).Cell(gbps, 1);
    if (sink != nullptr) {
      sink->timeline().Sample("llm.kvcache_bandwidth_gbps", gb, gbps);
    }
  }
  kv.Print(std::cout);
  std::cout << "floor: " << FormatDouble(sim.KvCacheBandwidthGBps(0.0), 1)
            << " GB/s (paper: ~12, model-load I/O); plateau ~21 GB/s\n";
  if (sink != nullptr) {
    sink->GetGauge("llm.backend_bandwidth_plateau_gbps").Set(sim.SingleBackendBandwidthGBps(32));
    sink->GetGauge("llm.kvcache_floor_gbps").Set(sim.KvCacheBandwidthGBps(0.0));
  }
  if (!ctx.Write("bench_fig10_llm_inference")) {
    return 1;
  }
  return 0;
}
