// Regenerates Fig. 3: loaded-latency curves (latency vs achieved bandwidth)
// for the four memory distances under varied read:write mixes, using the
// MLC-style benchmark (16 threads, 64 B accesses, §3.1).
//
// Expected anchors (§3.2): MMEM idle ~97 ns / peak 67 GB/s (read) and
// 54.6 GB/s (write); MMEM-r read idle ~130 ns, NT-write 71.77 ns; CXL idle
// 250.42 ns, max 56.7 GB/s at 2:1; CXL-r idle 485 ns, max 20.4 GB/s.
#include <iostream>

#include "src/bench/context.h"
#include "src/core/cxl_explorer.h"

int main(int argc, char** argv) {
  auto ctx = cxl::bench::Context::FromArgs(&argc, argv);

  using namespace cxl;
  using mem::AccessMix;

  const struct {
    mem::MemoryPath path;
    const char* title;
  } kPanels[] = {
      {mem::MemoryPath::kLocalDram, "Fig 3(a): MMEM (local-socket DDR5, 2ch SNC domain)"},
      {mem::MemoryPath::kRemoteDram, "Fig 3(b): MMEM-r (remote socket via UPI)"},
      {mem::MemoryPath::kLocalCxl, "Fig 3(c): CXL (A1000 ASIC, local socket)"},
      {mem::MemoryPath::kRemoteCxl, "Fig 3(d): CXL-r (remote socket, RSF-limited)"},
  };
  const AccessMix kMixes[] = {AccessMix::ReadOnly(), AccessMix::Ratio(2, 1),
                              AccessMix::Ratio(1, 1), AccessMix::WriteOnly()};

  for (const auto& panel : kPanels) {
    PrintSection(std::cout, panel.title);
    workload::MlcBenchmark mlc(mem::GetProfile(panel.path));
    Table t({"mix", "idle ns", "peak GB/s", "knee util", "bw@50%load", "lat@50%", "bw@sat",
             "lat@sat"});
    for (const AccessMix& mix : kMixes) {
      const auto sweep = mlc.LoadedLatencySweep(mix, 32);
      const auto closed = mlc.ClosedLoopPoint(mix);
      // Mid-load point: ~50% of peak.
      const double peak = mlc.PeakBandwidthGBps(mix);
      mem::SingleFlowPoint mid = mem::SolveSingleFlow(mlc.profile(), mix, 0.5 * peak);
      t.Row()
          .Cell(mem::MixLabel(mix))
          .Cell(mlc.IdleLatencyNs(mix), 1)
          .Cell(peak, 1)
          .Cell(mlc.profile().MakeQueueModel(mix).KneeUtilization(1.5), 2)
          .Cell(mid.achieved_gbps, 1)
          .Cell(mid.latency_ns, 1)
          .Cell(closed.achieved_gbps, 1)
          .Cell(closed.latency_ns, 1);
      (void)sweep;
    }
    t.Print(std::cout);

    // Full curve for the read-only mix (the figure's plotted series).
    Table curve({"offered GB/s", "achieved GB/s", "latency ns"});
    for (const auto& pt : mlc.LoadedLatencySweep(AccessMix::ReadOnly(), 12)) {
      curve.Row().Cell(pt.offered_gbps, 1).Cell(pt.achieved_gbps, 1).Cell(pt.latency_ns, 1);
    }
    curve.Print(std::cout);
  }

  PrintSection(std::cout, "Sanity anchors vs paper");
  Table anchors({"quantity", "model", "paper"});
  anchors.Row().Cell("MMEM idle (ns)")
      .Cell(mem::GetProfile(mem::MemoryPath::kLocalDram).IdleLatencyNs(AccessMix::ReadOnly()), 1)
      .Cell("97");
  anchors.Row().Cell("MMEM read peak (GB/s)")
      .Cell(mem::GetProfile(mem::MemoryPath::kLocalDram).PeakBandwidthGBps(AccessMix::ReadOnly()), 1)
      .Cell("67");
  anchors.Row().Cell("MMEM write peak (GB/s)")
      .Cell(mem::GetProfile(mem::MemoryPath::kLocalDram).PeakBandwidthGBps(AccessMix::WriteOnly()), 1)
      .Cell("54.6");
  anchors.Row().Cell("MMEM-r NT-write idle (ns)")
      .Cell(mem::GetProfile(mem::MemoryPath::kRemoteDram).IdleLatencyNs(AccessMix::WriteOnly()), 2)
      .Cell("71.77");
  anchors.Row().Cell("CXL idle (ns)")
      .Cell(mem::GetProfile(mem::MemoryPath::kLocalCxl).IdleLatencyNs(AccessMix::ReadOnly()), 2)
      .Cell("250.42");
  anchors.Row().Cell("CXL peak @2:1 (GB/s)")
      .Cell(mem::GetProfile(mem::MemoryPath::kLocalCxl).PeakBandwidthGBps(AccessMix::Ratio(2, 1)), 1)
      .Cell("56.7");
  anchors.Row().Cell("CXL-r idle (ns)")
      .Cell(mem::GetProfile(mem::MemoryPath::kRemoteCxl).IdleLatencyNs(AccessMix::ReadOnly()), 1)
      .Cell("485");
  anchors.Row().Cell("CXL-r peak @2:1 (GB/s)")
      .Cell(mem::GetProfile(mem::MemoryPath::kRemoteCxl).PeakBandwidthGBps(AccessMix::Ratio(2, 1)), 1)
      .Cell("20.4");
  anchors.Print(std::cout);
  if (!ctx.Write("bench_fig3_loaded_latency")) {
    return 1;
  }
  return 0;
}
