// Regenerates Fig. 4: MMEM vs CXL across NUMA/socket distances, one panel
// per read:write ratio (a-f), plus the random-access panels (g, h).
//
// Also prints the §3.3 latency-ratio table: local CXL is 2.4-2.6x local DDR
// and 1.5-1.92x remote-socket DDR.
#include <iostream>

#include "src/bench/context.h"
#include "src/core/cxl_explorer.h"

int main(int argc, char** argv) {
  auto ctx = cxl::bench::Context::FromArgs(&argc, argv);

  using namespace cxl;
  using mem::AccessMix;
  using mem::AccessPattern;

  const AccessMix kMixes[] = {AccessMix::ReadOnly(),    AccessMix::Ratio(3, 1),
                              AccessMix::Ratio(2, 1),   AccessMix::Ratio(1, 1),
                              AccessMix::Ratio(1, 2),   AccessMix::WriteOnly()};
  const mem::MemoryPath kPaths[] = {mem::MemoryPath::kLocalDram, mem::MemoryPath::kRemoteDram,
                                    mem::MemoryPath::kLocalCxl, mem::MemoryPath::kRemoteCxl};

  // Panels (a)-(f): sequential access, one panel per mix.
  char panel = 'a';
  for (const AccessMix& mix : kMixes) {
    PrintSection(std::cout, std::string("Fig 4(") + panel++ + "): sequential, R:W=" +
                                mem::MixLabel(mix));
    Table t({"path", "idle ns", "sat GB/s", "sat lat ns"});
    for (mem::MemoryPath path : kPaths) {
      workload::MlcBenchmark mlc(mem::GetProfile(path));
      const auto closed = mlc.ClosedLoopPoint(mix);
      t.Row()
          .Cell(mem::PathLabel(path))
          .Cell(mlc.IdleLatencyNs(mix), 1)
          .Cell(closed.achieved_gbps, 1)
          .Cell(closed.latency_ns, 1);
    }
    t.Print(std::cout);
  }

  // Panels (g)(h): random pattern, read-only / write-only. §3.3: "we do not
  // observe any significant performance disparities".
  for (const AccessMix& mix : {AccessMix::ReadOnly(), AccessMix::WriteOnly()}) {
    PrintSection(std::cout, std::string("Fig 4(") + panel++ + "): random, R:W=" +
                                mem::MixLabel(mix));
    Table t({"path", "seq sat GB/s", "rand sat GB/s", "rand/seq"});
    for (mem::MemoryPath path : kPaths) {
      workload::MlcConfig seq_cfg;
      workload::MlcConfig rnd_cfg;
      rnd_cfg.pattern = AccessPattern::kRandom;
      workload::MlcBenchmark seq(mem::GetProfile(path), seq_cfg);
      workload::MlcBenchmark rnd(mem::GetProfile(path), rnd_cfg);
      const double s = seq.ClosedLoopPoint(mix).achieved_gbps;
      const double r = rnd.ClosedLoopPoint(mix).achieved_gbps;
      t.Row().Cell(mem::PathLabel(path)).Cell(s, 1).Cell(r, 1).Cell(r / s, 3);
    }
    t.Print(std::cout);
  }

  // §3.3 latency ratios.
  PrintSection(std::cout, "Latency ratios (paper: CXL/MMEM 2.4-2.6x, CXL/MMEM-r 1.5-1.92x)");
  Table ratios({"mix", "CXL/MMEM", "CXL/MMEM-r"});
  for (const AccessMix& mix : kMixes) {
    const double cxl = mem::GetProfile(mem::MemoryPath::kLocalCxl).IdleLatencyNs(mix);
    const double local = mem::GetProfile(mem::MemoryPath::kLocalDram).IdleLatencyNs(mix);
    const double remote = mem::GetProfile(mem::MemoryPath::kRemoteDram).IdleLatencyNs(mix);
    ratios.Row().Cell(mem::MixLabel(mix)).Cell(cxl / local, 2).Cell(cxl / remote, 2);
  }
  ratios.Print(std::cout);
  if (!ctx.Write("bench_fig4_distance_comparison")) {
    return 1;
  }
  return 0;
}
