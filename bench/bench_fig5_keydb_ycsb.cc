// Regenerates Fig. 5: KeyDB YCSB latency and throughput under the Table 1
// configurations.
//
//   (a) average throughput of YCSB A-D per configuration;
//   (b) tail latency of YCSB-A (p50/p95/p99/p999);
//   (c) read-latency CDF of YCSB-C for selected configurations.
//
// Expected shape (§4.1.2): MMEM fastest; Hot-Promote nearly matches it;
// interleaving 1.2-1.5x slower (worse with more CXL); MMEM-SSD-x slowest at
// ~1.8x (software path + SSD misses).
#include <algorithm>
#include <iostream>

#include "src/core/cxl_explorer.h"

namespace {

using namespace cxl;

constexpr uint64_t kDatasetBytes = 32ull << 30;  // 1/16-scale 512 GB shape.

core::KeyDbExperimentOptions Options() {
  core::KeyDbExperimentOptions opt;
  opt.dataset_bytes = kDatasetBytes;
  opt.total_ops = 220'000;
  opt.warmup_ops = 60'000;
  return opt;
}

}  // namespace

int main() {
  const auto workloads = {workload::YcsbWorkload::kA, workload::YcsbWorkload::kB,
                          workload::YcsbWorkload::kC, workload::YcsbWorkload::kD};

  PrintSection(std::cout, "Fig 5(a): KeyDB average throughput (kops/s), by configuration");
  Table thr({"config", "YCSB-A", "YCSB-B", "YCSB-C", "YCSB-D", "slowdown vs MMEM (C)"});
  double mmem_c_kops = 0.0;
  std::vector<std::pair<std::string, std::vector<double>>> rows;
  for (core::CapacityConfig config : core::AllCapacityConfigs()) {
    std::vector<double> kops;
    for (workload::YcsbWorkload w : workloads) {
      const auto res = core::RunKeyDbExperiment(config, w, Options());
      if (!res.ok()) {
        std::cerr << "FAILED " << core::ConfigLabel(config) << ": " << res.status().ToString()
                  << "\n";
        return 1;
      }
      kops.push_back(res->server.throughput_kops);
    }
    if (config == core::CapacityConfig::kMmem) {
      mmem_c_kops = kops[2];
    }
    rows.emplace_back(core::ConfigLabel(config), kops);
  }
  for (const auto& [label, kops] : rows) {
    thr.Row().Cell(label);
    for (double k : kops) {
      thr.Cell(k, 1);
    }
    thr.Cell(mmem_c_kops / kops[2], 2);
  }
  thr.Print(std::cout);

  PrintSection(std::cout, "Fig 5(b): YCSB-A tail latency (us)");
  Table tail({"config", "p50", "p95", "p99", "p999"});
  for (core::CapacityConfig config : core::AllCapacityConfigs()) {
    const auto res = core::RunKeyDbExperiment(config, workload::YcsbWorkload::kA, Options());
    if (!res.ok()) {
      return 1;
    }
    const auto& h = res->server.all_latency_us;
    tail.Row().Cell(core::ConfigLabel(config)).Cell(h.p50(), 0).Cell(h.p95(), 0).Cell(h.p99(), 0)
        .Cell(h.p999(), 0);
  }
  tail.Print(std::cout);

  PrintSection(std::cout, "Fig 5(c): YCSB-C read latency CDF (us at quantile)");
  Table cdf({"config", "q10", "q50", "q90", "q99", "q999"});
  for (core::CapacityConfig config :
       {core::CapacityConfig::kMmem, core::CapacityConfig::kInterleave11,
        core::CapacityConfig::kHotPromote, core::CapacityConfig::kMmemSsd02}) {
    const auto res = core::RunKeyDbExperiment(config, workload::YcsbWorkload::kC, Options());
    if (!res.ok()) {
      return 1;
    }
    const auto& h = res->server.read_latency_us;
    cdf.Row().Cell(core::ConfigLabel(config));
    for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
      cdf.Cell(h.ValueAtQuantile(q), 0);
    }
  }
  cdf.Print(std::cout);

  PrintSection(std::cout,
               "Hot-Promote convergence (YCSB-C): per-epoch throughput and migration");
  const auto hp = core::RunKeyDbExperiment(core::CapacityConfig::kHotPromote,
                                           workload::YcsbWorkload::kC, Options());
  if (!hp.ok()) {
    return 1;
  }
  Table conv({"epoch end ms", "kops in epoch", "migrated MB"});
  const auto& timeline = hp->server.timeline;
  for (size_t i = 0; i < timeline.size(); i += std::max<size_t>(1, timeline.size() / 10)) {
    conv.Row()
        .Cell(timeline[i].end_ms, 0)
        .Cell(timeline[i].kops, 1)
        .Cell(timeline[i].migrated_mb, 1);
  }
  conv.Print(std::cout);
  std::cout << "Reading: the hot head promotes within the first epochs (throughput ramps\n"
               "there) and a bounded trickle of warm-tail churn persists at the rate limit —\n"
               "the cost the per-page stall accounting charges, and why Hot-Promote lands a\n"
               "few percent shy of MMEM instead of matching it exactly.\n";
  return 0;
}
