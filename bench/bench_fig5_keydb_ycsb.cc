// Regenerates Fig. 5: KeyDB YCSB latency and throughput under the Table 1
// configurations.
//
//   (a) average throughput of YCSB A-D per configuration;
//   (b) tail latency of YCSB-A (p50/p95/p99/p999);
//   (c) read-latency CDF of YCSB-C for selected configurations.
//
// Expected shape (§4.1.2): MMEM fastest; Hot-Promote nearly matches it;
// interleaving 1.2-1.5x slower (worse with more CXL); MMEM-SSD-x slowest at
// ~1.8x (software path + SSD misses).
//
// The full 7-configuration x 4-workload grid runs once through the parallel
// SweepRunner (--jobs N / CXL_JOBS, default hardware_concurrency); every
// table below reads from that single grid. Results are bit-identical for any
// thread count; the sweep timing summary goes to stderr so stdout stays
// byte-comparable across runs.
#include <algorithm>
#include <iostream>

#include "src/bench/context.h"
#include "src/core/cxl_explorer.h"
#include "src/telemetry/anomaly.h"
#include "src/telemetry/slo.h"
#include "src/util/units.h"

namespace {

using namespace cxl;

constexpr uint64_t kDatasetBytes = 32 * kGiB;  // 1/16-scale 512 GB shape.

core::KeyDbExperimentOptions Options() {
  core::KeyDbExperimentOptions opt;
  opt.dataset_bytes = kDatasetBytes;
  opt.total_ops = 220'000;
  opt.warmup_ops = 60'000;
  return opt;
}

struct Cell {
  core::CapacityConfig config;
  workload::YcsbWorkload workload;
};

}  // namespace

int main(int argc, char** argv) {
  auto ctx = bench::Context::FromArgs(&argc, argv);
  auto& bench_telemetry = ctx.telemetry();
  const int jobs = ctx.jobs();
  const auto workloads = {workload::YcsbWorkload::kA, workload::YcsbWorkload::kB,
                          workload::YcsbWorkload::kC, workload::YcsbWorkload::kD};
  const auto configs = core::AllCapacityConfigs();

  std::vector<Cell> cells;
  std::vector<std::string> labels;
  for (core::CapacityConfig config : configs) {
    for (workload::YcsbWorkload w : workloads) {
      cells.push_back(Cell{config, w});
      labels.push_back(core::ConfigLabel(config) + "/" + workload::YcsbName(w));
    }
  }

  runner::SweepOptions sweep_options;
  sweep_options.jobs = jobs;
  sweep_options.cell_labels = labels;
  runner::SweepStats stats;
  // Each sweep cell writes its own registry; they merge in cell-index order
  // below, so the telemetry output is identical for any --jobs value.
  std::vector<telemetry::MetricRegistry> cell_sinks(bench_telemetry.enabled() ? cells.size() : 0);
  for (auto& sink : cell_sinks) {
    bench_telemetry.ConfigureSink(&sink);  // --events-ring flight recorder.
  }
  const auto grid = runner::RunSweep(
      cells,
      [&cells, &cell_sinks, &ctx](const Cell& cell, uint64_t seed) {
        const size_t index = static_cast<size_t>(&cell - cells.data());
        core::KeyDbExperimentOptions opt = Options();
        opt.env = ctx.Env(seed);
        opt.env.fault_seed = runner::CellSeed(ctx.fault_seed(), index);
        if (!cell_sinks.empty()) {
          opt.env.telemetry = &cell_sinks[index];
        }
        return core::RunKeyDbExperiment(cell.config, cell.workload, opt);
      },
      sweep_options, &stats);
  if (!grid.ok()) {
    std::cerr << "FAILED: " << grid.status().ToString() << "\n";
    return 1;
  }
  std::cerr << "[sweep] " << stats.Summary() << "\n";
  bench_telemetry.RecordSweep("fig5", stats);

  // SLO + anomaly pass, per cell and before the merge. Each cell is judged
  // against the MMEM row of the same workload — the paper's all-DRAM bar:
  // epoch mean latency within 1.5x MMEM, epoch throughput above 0.7x MMEM.
  // On a healthy run any violation is structural slowness (MMEM-SSD's
  // software path), surfaced with no fault window; under --faults the
  // violation attributes to the plan's active window at the breach time.
  if (!cell_sinks.empty()) {
    const size_t mmem_ci = static_cast<size_t>(
        std::find(configs.begin(), configs.end(), core::CapacityConfig::kMmem) -
        configs.begin());
    for (size_t i = 0; i < cell_sinks.size(); ++i) {
      const auto& baseline = (*grid)[mmem_ci * workloads.size() + i % workloads.size()].server;
      double base_lat_us = 0.0;
      uint64_t lat_epochs = 0;
      for (const auto& e : baseline.timeline) {
        if (e.mean_latency_us > 0.0) {
          base_lat_us += e.mean_latency_us;
          ++lat_epochs;
        }
      }
      telemetry::SloSpec spec;
      spec.workload = "kv";
      if (lat_epochs > 0) {
        spec.max_latency_us = 1.5 * base_lat_us / lat_epochs;
      }
      spec.min_throughput = 0.7 * baseline.throughput_kops;
      const fault::FaultPlan& plan = ctx.faults();
      telemetry::SloTracker slo(spec, &cell_sinks[i], [&plan](double t_ms) {
        return fault::AttributeWindowAt(plan, MsToSec(t_ms));
      });
      for (const auto& e : (*grid)[i].server.timeline) {
        if (e.mean_latency_us <= 0.0) {
          continue;  // Warm-up epochs carry no measured latency.
        }
        slo.Observe(e.end_ms, e.mean_latency_us, e.kops);
      }
      slo.Finish();
      telemetry::DetectAnomalies(cell_sinks[i]);
    }
  }
  for (size_t i = 0; i < cell_sinks.size(); ++i) {
    bench_telemetry.registry().MergeFrom(cell_sinks[i], labels[i] + "/");
  }

  // Cell (config index ci, workload index wi) lives at grid slot ci * 4 + wi.
  const auto cell = [&](size_t ci, size_t wi) -> const core::KeyDbExperimentResult& {
    return (*grid)[ci * workloads.size() + wi];
  };
  const auto config_index = [&](core::CapacityConfig config) -> size_t {
    return static_cast<size_t>(std::find(configs.begin(), configs.end(), config) -
                               configs.begin());
  };

  PrintSection(std::cout, "Fig 5(a): KeyDB average throughput (kops/s), by configuration");
  Table thr({"config", "YCSB-A", "YCSB-B", "YCSB-C", "YCSB-D", "slowdown vs MMEM (C)"});
  const double mmem_c_kops =
      cell(config_index(core::CapacityConfig::kMmem), 2).server.throughput_kops;
  for (size_t ci = 0; ci < configs.size(); ++ci) {
    thr.Row().Cell(core::ConfigLabel(configs[ci]));
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
      thr.Cell(cell(ci, wi).server.throughput_kops, 1);
    }
    thr.Cell(mmem_c_kops / cell(ci, 2).server.throughput_kops, 2);
  }
  thr.Print(std::cout);

  PrintSection(std::cout, "Fig 5(b): YCSB-A tail latency (us)");
  Table tail({"config", "p50", "p95", "p99", "p999"});
  for (size_t ci = 0; ci < configs.size(); ++ci) {
    const auto& h = cell(ci, 0).server.all_latency_us;
    tail.Row().Cell(core::ConfigLabel(configs[ci])).Cell(h.p50(), 0).Cell(h.p95(), 0)
        .Cell(h.p99(), 0).Cell(h.p999(), 0);
  }
  tail.Print(std::cout);

  PrintSection(std::cout, "Fig 5(c): YCSB-C read latency CDF (us at quantile)");
  Table cdf({"config", "q10", "q50", "q90", "q99", "q999"});
  for (core::CapacityConfig config :
       {core::CapacityConfig::kMmem, core::CapacityConfig::kInterleave11,
        core::CapacityConfig::kHotPromote, core::CapacityConfig::kMmemSsd02}) {
    const auto& h = cell(config_index(config), 2).server.read_latency_us;
    cdf.Row().Cell(core::ConfigLabel(config));
    for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
      cdf.Cell(h.ValueAtQuantile(q), 0);
    }
  }
  cdf.Print(std::cout);

  PrintSection(std::cout,
               "Hot-Promote convergence (YCSB-C): per-epoch throughput and migration");
  const auto& hp = cell(config_index(core::CapacityConfig::kHotPromote), 2);
  Table conv({"epoch end ms", "kops in epoch", "migrated MB"});
  const auto& timeline = hp.server.timeline;
  for (size_t i = 0; i < timeline.size(); i += std::max<size_t>(1, timeline.size() / 10)) {
    conv.Row()
        .Cell(timeline[i].end_ms, 0)
        .Cell(timeline[i].kops, 1)
        .Cell(timeline[i].migrated_mb, 1);
  }
  conv.Print(std::cout);
  std::cout << "Reading: the hot head promotes within the first epochs (throughput ramps\n"
               "there) and a bounded trickle of warm-tail churn persists at the rate limit —\n"
               "the cost the per-page stall accounting charges, and why Hot-Promote lands a\n"
               "few percent shy of MMEM instead of matching it exactly.\n";
  if (!ctx.Write("bench_fig5_keydb_ycsb")) {
    return 1;
  }
  return 0;
}
