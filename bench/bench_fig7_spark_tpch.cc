// Regenerates Fig. 7: Spark TPC-H execution time (normalized to MMEM-only)
// and the shuffle share of execution, per Table-1-style configuration.
//
// Expected shape (§4.2.2): interleaving is 1.4x-9.8x slower than MMEM-only
// (worse with more CXL share; worst for the shuffle-heaviest query), but
// still much faster than spilling to SSD; Hot-Promote is >34% slower than
// MMEM-only (kernel thrashing on low-locality access); shuffle time
// dominates as spill grows.
#include <iostream>
#include <vector>

#include "src/core/cxl_explorer.h"

int main() {
  using namespace cxl;
  using apps::spark::QueryProfile;
  using apps::spark::QueryResult;
  using apps::spark::SparkCluster;
  using apps::spark::SparkConfig;

  const std::vector<QueryProfile> queries = apps::spark::TpchShuffleHeavyQueries();

  struct ConfigRow {
    std::string label;
    SparkConfig config;
  };
  const std::vector<ConfigRow> configs = {
      {"MMEM (3 servers)", SparkConfig::MmemOnly()},
      {"3:1 (2 servers)", SparkConfig::Interleave(3, 1)},
      {"1:1 (2 servers)", SparkConfig::Interleave(1, 1)},
      {"1:3 (2 servers)", SparkConfig::Interleave(1, 3)},
      {"MMEM-SSD-0.2 (3 srv)", SparkConfig::Spill(0.8)},
      {"MMEM-SSD-0.4 (3 srv)", SparkConfig::Spill(0.6)},
      {"Hot-Promote (2 srv)", SparkConfig::HotPromote()},
  };

  // Baseline times per query.
  std::vector<double> baseline;
  {
    SparkCluster cluster(SparkConfig::MmemOnly());
    for (const auto& q : queries) {
      baseline.push_back(cluster.RunQuery(q).total_seconds);
    }
  }

  PrintSection(std::cout, "Fig 7(a): execution time normalized to MMEM-only");
  Table norm({"config", "Q5", "Q7", "Q8", "Q9"});
  std::vector<std::vector<QueryResult>> all_results;
  for (const auto& row : configs) {
    SparkCluster cluster(row.config);
    norm.Row().Cell(row.label);
    std::vector<QueryResult> results;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const QueryResult r = cluster.RunQuery(queries[qi]);
      norm.Cell(r.total_seconds / baseline[qi], 2);
      results.push_back(r);
    }
    all_results.push_back(std::move(results));
  }
  norm.Print(std::cout);

  PrintSection(std::cout, "Fig 7(b): share of execution time in shuffle (write/read)");
  Table share({"config", "Q5 w/r %", "Q7 w/r %", "Q8 w/r %", "Q9 w/r %"});
  for (size_t ci = 0; ci < configs.size(); ++ci) {
    share.Row().Cell(configs[ci].label);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const QueryResult& r = all_results[ci][qi];
      share.Cell(FormatDouble(100.0 * r.shuffle_write_seconds / r.total_seconds, 0) + "/" +
                 FormatDouble(100.0 * r.shuffle_read_seconds / r.total_seconds, 0));
    }
  }
  share.Print(std::cout);

  PrintSection(std::cout, "Details: absolute seconds, spill and migration volumes (Q9)");
  Table detail({"config", "total s", "compute s", "shufW s", "shufR s", "spilled GB",
                "migrated GB", "CXL access share"});
  for (size_t ci = 0; ci < configs.size(); ++ci) {
    const QueryResult& r = all_results[ci].back();  // Q9.
    detail.Row()
        .Cell(configs[ci].label)
        .Cell(r.total_seconds, 1)
        .Cell(r.compute_seconds, 1)
        .Cell(r.shuffle_write_seconds, 1)
        .Cell(r.shuffle_read_seconds, 1)
        .Cell(r.spilled_bytes / 1e9, 1)
        .Cell(r.migrated_bytes / 1e9, 1)
        .Cell(r.cxl_access_share, 2);
  }
  detail.Print(std::cout);
  return 0;
}
