// Regenerates Fig. 7: Spark TPC-H execution time (normalized to MMEM-only)
// and the shuffle share of execution, per Table-1-style configuration.
//
// Expected shape (§4.2.2): interleaving is 1.4x-9.8x slower than MMEM-only
// (worse with more CXL share; worst for the shuffle-heaviest query), but
// still much faster than spilling to SSD; Hot-Promote is >34% slower than
// MMEM-only (kernel thrashing on low-locality access); shuffle time
// dominates as spill grows.
//
// The 7-configuration x 4-query grid runs through the parallel SweepRunner
// (--jobs / CXL_JOBS); each cell builds its own SparkCluster, and the
// MMEM-only row doubles as the normalization baseline.
#include <iostream>
#include <vector>

#include "src/bench/context.h"
#include "src/core/cxl_explorer.h"
#include "src/telemetry/anomaly.h"
#include "src/util/units.h"

int main(int argc, char** argv) {
  using namespace cxl;
  using apps::spark::QueryProfile;
  using apps::spark::QueryResult;
  using apps::spark::SparkCluster;
  using apps::spark::SparkConfig;

  auto ctx = bench::Context::FromArgs(&argc, argv);
  auto& bench_telemetry = ctx.telemetry();
  const int jobs = ctx.jobs();
  const std::vector<QueryProfile> queries = apps::spark::TpchShuffleHeavyQueries();

  struct ConfigRow {
    std::string label;
    SparkConfig config;
  };
  const std::vector<ConfigRow> configs = {
      {"MMEM (3 servers)", SparkConfig::MmemOnly()},
      {"3:1 (2 servers)", SparkConfig::Interleave(3, 1)},
      {"1:1 (2 servers)", SparkConfig::Interleave(1, 1)},
      {"1:3 (2 servers)", SparkConfig::Interleave(1, 3)},
      {"MMEM-SSD-0.2 (3 srv)", SparkConfig::Spill(0.8)},
      {"MMEM-SSD-0.4 (3 srv)", SparkConfig::Spill(0.6)},
      {"Hot-Promote (2 srv)", SparkConfig::HotPromote()},
  };

  struct Cell {
    size_t config_index;
    size_t query_index;
  };
  std::vector<Cell> cells;
  std::vector<std::string> labels;
  for (size_t ci = 0; ci < configs.size(); ++ci) {
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      cells.push_back(Cell{ci, qi});
      labels.push_back(configs[ci].label + "/" + queries[qi].name);
    }
  }

  runner::SweepOptions sweep_options;
  sweep_options.jobs = jobs;
  sweep_options.cell_labels = labels;
  runner::SweepStats stats;
  // One registry per cell (single-writer under the parallel sweep), merged in
  // cell-index order below so the telemetry output is --jobs-independent.
  std::vector<telemetry::MetricRegistry> cell_sinks(bench_telemetry.enabled() ? cells.size() : 0);
  for (auto& sink : cell_sinks) {
    bench_telemetry.ConfigureSink(&sink);  // --events-ring flight recorder.
  }
  const auto grid = runner::RunSweep(
      cells,
      [&configs, &queries, &cells, &cell_sinks, &ctx](const Cell& cell,
                                                      uint64_t /*seed*/) -> StatusOr<QueryResult> {
        const size_t index = static_cast<size_t>(&cell - cells.data());
        SparkCluster cluster(configs[cell.config_index].config);
        if (!cell_sinks.empty()) {
          cluster.AttachTelemetry(&cell_sinks[index]);
        }
        // Per-cell fault injector (inert when --faults was not given).
        fault::FaultInjector injector(ctx.faults(), runner::CellSeed(ctx.fault_seed(), index),
                                      ctx.fault_tunables());
        cluster.AttachFaults(&injector);
        return cluster.RunQuery(queries[cell.query_index]);
      },
      sweep_options, &stats);
  if (!grid.ok()) {
    std::cerr << "FAILED: " << grid.status().ToString() << "\n";
    return 1;
  }
  std::cerr << "[sweep] " << stats.Summary() << "\n";
  bench_telemetry.RecordSweep("fig7", stats);
  // Anomaly pass per cell before the merge: Hot-Promote's low-locality
  // thrashing (§4.2.3) surfaces here as ping-pong episodes on the cell's
  // promote/demote event stream (see EXPERIMENTS.md for the recipe).
  for (auto& sink : cell_sinks) {
    telemetry::DetectAnomalies(sink);
  }
  for (size_t i = 0; i < cell_sinks.size(); ++i) {
    bench_telemetry.registry().MergeFrom(cell_sinks[i], labels[i] + "/");
  }
  const auto result_at = [&](size_t ci, size_t qi) -> const QueryResult& {
    return (*grid)[ci * queries.size() + qi];
  };

  // Baseline times per query: the MMEM-only row (configs[0]).
  std::vector<double> baseline;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    baseline.push_back(result_at(0, qi).total_seconds);
  }

  PrintSection(std::cout, "Fig 7(a): execution time normalized to MMEM-only");
  Table norm({"config", "Q5", "Q7", "Q8", "Q9"});
  for (size_t ci = 0; ci < configs.size(); ++ci) {
    norm.Row().Cell(configs[ci].label);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      norm.Cell(result_at(ci, qi).total_seconds / baseline[qi], 2);
    }
  }
  norm.Print(std::cout);

  PrintSection(std::cout, "Fig 7(b): share of execution time in shuffle (write/read)");
  Table share({"config", "Q5 w/r %", "Q7 w/r %", "Q8 w/r %", "Q9 w/r %"});
  for (size_t ci = 0; ci < configs.size(); ++ci) {
    share.Row().Cell(configs[ci].label);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const QueryResult& r = result_at(ci, qi);
      share.Cell(FormatDouble(100.0 * r.shuffle_write_seconds / r.total_seconds, 0) + "/" +
                 FormatDouble(100.0 * r.shuffle_read_seconds / r.total_seconds, 0));
    }
  }
  share.Print(std::cout);

  PrintSection(std::cout, "Details: absolute seconds, spill and migration volumes (Q9)");
  Table detail({"config", "total s", "compute s", "shufW s", "shufR s", "spilled GB",
                "migrated GB", "CXL access share"});
  for (size_t ci = 0; ci < configs.size(); ++ci) {
    const QueryResult& r = result_at(ci, queries.size() - 1);  // Q9.
    detail.Row()
        .Cell(configs[ci].label)
        .Cell(r.total_seconds, 1)
        .Cell(r.compute_seconds, 1)
        .Cell(r.shuffle_write_seconds, 1)
        .Cell(r.shuffle_read_seconds, 1)
        .Cell(BytesToGBd(r.spilled_bytes), 1)
        .Cell(BytesToGBd(r.migrated_bytes), 1)
        .Cell(r.cxl_access_share, 2);
  }
  detail.Print(std::cout);
  if (!ctx.Write("bench_fig7_spark_tpch")) {
    return 1;
  }
  return 0;
}
