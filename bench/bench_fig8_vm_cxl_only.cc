// Regenerates Fig. 8 + the §4.3.2 revenue analysis: KeyDB (YCSB-C, 100 GB
// working-set shape) bound entirely to MMEM vs entirely to CXL.
//
// Expected shape: CXL-only throughput ~12.5% below MMEM; application-level
// read-latency penalty 9-27% (far below the raw 2.4-2.6x device gap, thanks
// to Redis processing time); selling the formerly-stranded vCPUs at a 20%
// discount recovers ~27% revenue.
#include <iostream>

#include "src/bench/context.h"
#include "src/core/cxl_explorer.h"
#include "src/util/units.h"

int main(int argc, char** argv) {
  using namespace cxl;

  auto ctx = bench::Context::FromArgs(&argc, argv);
  auto& bench_telemetry = ctx.telemetry();
  core::KeyDbExperimentOptions opt;
  opt.dataset_bytes = 12 * kGiB;  // 1/8-scale 100 GB shape.
  opt.total_ops = 220'000;
  opt.warmup_ops = 60'000;
  // The MMEM and CXL placements are independent cells; the experiment runs
  // them concurrently through the SweepRunner when jobs > 1. Env() also
  // carries the telemetry sink (merged under "mmem." / "cxl.") and any
  // --faults plan into the experiment.
  opt.env = ctx.Env();
  const auto res = core::RunVmCxlOnlyExperiment(opt);
  if (!res.ok()) {
    std::cerr << "experiment failed: " << res.status().ToString() << "\n";
    return 1;
  }

  PrintSection(std::cout, "Fig 8(b): KeyDB YCSB-C throughput, MMEM vs CXL-only");
  Table thr({"placement", "kops/s", "relative"});
  thr.Row().Cell("MMEM").Cell(res->mmem.server.throughput_kops, 1).Cell(1.0, 3);
  thr.Row().Cell("CXL").Cell(res->cxl.server.throughput_kops, 1)
      .Cell(res->cxl.server.throughput_kops / res->mmem.server.throughput_kops, 3);
  thr.Print(std::cout);
  std::cout << "throughput penalty: " << FormatDouble(100.0 * res->throughput_penalty, 1)
            << "%  (paper: ~12.5%)\n";

  PrintSection(std::cout, "Fig 8(a): read latency CDF (us at quantile)");
  Table cdf({"quantile", "MMEM us", "CXL us", "penalty %"});
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double m = res->mmem.server.read_latency_us.ValueAtQuantile(q);
    const double c = res->cxl.server.read_latency_us.ValueAtQuantile(q);
    cdf.Row().Cell(q, 2).Cell(m, 1).Cell(c, 1).Cell(100.0 * (c / m - 1.0), 1);
  }
  cdf.Print(std::cout);
  std::cout << "(paper: latency penalty 9-27% across the CDF)\n";

  PrintSection(std::cout, "§4.3.2 revenue analysis (1:3 server, 20% CXL discount)");
  cost::VmEconomics econ(cost::VmEconomicsParams{4.0, 3.0, 0.20, res->throughput_penalty});
  Table rev({"quantity", "value"});
  rev.Row().Cell("stranded vCPU fraction").Cell(econ.StrandedVcpuFraction(), 3);
  rev.Row().Cell("baseline revenue").Cell(econ.BaselineRevenue(), 3);
  rev.Row().Cell("revenue with CXL").Cell(econ.CxlRevenue(), 3);
  rev.Row().Cell("revenue improvement").Cell(econ.RevenueImprovement(), 4);
  rev.Print(std::cout);
  std::cout << "(paper: 25% stranded; ~27% improvement, 20/75)\n";
  if (bench_telemetry.sink() != nullptr) {
    bench_telemetry.registry().GetGauge("fig8.throughput_penalty").Set(res->throughput_penalty);
    bench_telemetry.registry().GetGauge("fig8.revenue_improvement").Set(econ.RevenueImprovement());
  }
  if (!ctx.Write("bench_fig8_vm_cxl_only")) {
    return 1;
  }
  return 0;
}
