// Regenerates the §3.4 ASIC-vs-FPGA CXL controller comparison: the A1000
// ASIC reaches 73.6% of PCIe bandwidth where Intel's FPGA prototype manages
// ~60%, and the ASIC keeps the latency overhead under 2.5x of MMEM.
#include <iostream>

#include "src/bench/context.h"
#include "src/core/cxl_explorer.h"

int main(int argc, char** argv) {
  auto ctx = cxl::bench::Context::FromArgs(&argc, argv);

  using namespace cxl;
  using mem::AccessMix;
  using mem::CxlController;

  PrintSection(std::cout, "ASIC (AsteraLabs A1000) vs FPGA CXL controller");
  Table t({"controller", "idle ns", "read peak GB/s", "PCIe efficiency %", "2:1 peak GB/s",
           "latency vs MMEM"});
  const double mmem_idle =
      mem::GetProfile(mem::MemoryPath::kLocalDram).IdleLatencyNs(AccessMix::ReadOnly());
  for (CxlController ctl : {CxlController::kAsic, CxlController::kFpga}) {
    const auto& prof = mem::GetProfile(mem::MemoryPath::kLocalCxl, ctl);
    const double read_peak = prof.PeakBandwidthGBps(AccessMix::ReadOnly());
    t.Row()
        .Cell(ctl == CxlController::kAsic ? "ASIC" : "FPGA")
        .Cell(prof.IdleLatencyNs(AccessMix::ReadOnly()), 1)
        .Cell(read_peak, 1)
        .Cell(100.0 * read_peak / mem::kPcieGen5x16GBps, 1)
        .Cell(prof.PeakBandwidthGBps(AccessMix::Ratio(2, 1)), 1)
        .Cell(prof.IdleLatencyNs(AccessMix::ReadOnly()) / mmem_idle, 2);
  }
  t.Print(std::cout);
  std::cout << "(paper: ASIC 73.6% PCIe efficiency, <2.5x MMEM latency; FPGA ~60%)\n";

  PrintSection(std::cout, "Loaded behaviour under 16-thread MLC (read-only)");
  Table loaded({"controller", "sat GB/s", "sat latency ns"});
  for (CxlController ctl : {CxlController::kAsic, CxlController::kFpga}) {
    workload::MlcBenchmark mlc(mem::GetProfile(mem::MemoryPath::kLocalCxl, ctl));
    const auto pt = mlc.ClosedLoopPoint(AccessMix::ReadOnly());
    loaded.Row()
        .Cell(ctl == CxlController::kAsic ? "ASIC" : "FPGA")
        .Cell(pt.achieved_gbps, 1)
        .Cell(pt.latency_ns, 1);
  }
  loaded.Print(std::cout);
  if (!ctx.Write("bench_fpga_vs_asic")) {
    return 1;
  }
  return 0;
}
