// Extension bench: batched CPU decode and the capacity constraint CXL
// relaxes (§5's motivating argument, quantified). One decode step streams
// the weights once per batch, so tokens/s rises with batch size until the
// per-sequence KV traffic dominates — and the batch itself is capped by how
// much memory the KV caches can occupy. The CXL expander raises that cap.
#include <iostream>

#include "src/bench/context.h"
#include "src/core/cxl_explorer.h"
#include "src/util/units.h"

int main(int argc, char** argv) {
  auto ctx = cxl::bench::Context::FromArgs(&argc, argv);

  using namespace cxl;
  using apps::llm::LlmInferenceSim;
  using apps::llm::LlmPlacement;

  LlmInferenceSim sim;
  constexpr int kThreads = 48;
  constexpr int kContext = 2048;

  PrintSection(std::cout, "Tokens/s vs batch size (48 threads, 2048-token context)");
  Table batch_table({"batch", "bytes/token GB", "MMEM tok/s", "3:1 tok/s", "KV footprint GiB"});
  for (int batch : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const auto mmem = sim.SolveBatched(LlmPlacement::MmemOnly(), kThreads, batch, kContext);
    const auto i31 = sim.SolveBatched(LlmPlacement::Interleave(3, 1), kThreads, batch, kContext);
    batch_table.Row()
        .Cell(static_cast<uint64_t>(batch))
        .Cell(mmem.bytes_per_token / 1e9, 2)
        .Cell(mmem.tokens_per_second, 1)
        .Cell(i31.tokens_per_second, 1)
        .Cell(mmem.kv_cache_bytes_total / (1ull << 30), 1);
  }
  batch_table.Print(std::cout);

  PrintSection(std::cout, "Capacity-limited batch: SNC domain DRAM vs DRAM+CXL");
  // One SNC-4 domain owns 128 GiB of DRAM; the A1000 adds 256 GiB.
  const double dram_bytes = 128.0 * kGiB;
  const double with_cxl = dram_bytes + 256.0 * kGiB;
  Table cap({"memory", "GiB", "max batch", "tok/s at max batch"});
  for (const auto& [label, bytes, placement] :
       {std::tuple{"DRAM only", dram_bytes, LlmPlacement::MmemOnly()},
        std::tuple{"DRAM + CXL", with_cxl, LlmPlacement::Interleave(1, 2)}}) {
    const int max_batch = sim.MaxBatchForCapacity(bytes, kContext);
    const auto pt = sim.SolveBatched(placement, kThreads, max_batch, kContext);
    cap.Row()
        .Cell(label)
        .Cell(BytesToGiBd(bytes), 0)
        .Cell(static_cast<uint64_t>(max_batch))
        .Cell(pt.tokens_per_second, 1);
  }
  cap.Print(std::cout);
  std::cout << "Reading: past ~batch 8 the KV stream dominates, so the capacity headroom\n"
               "matters less for this 7B model than for the longer-context / larger-model\n"
               "regimes the paper points at — the cap itself is what CXL lifts.\n";

  PrintSection(std::cout, "Context-length sweep at batch 16 (MMEM vs 3:1, 48 threads)");
  Table ctx_table({"context tokens", "bytes/token GB", "MMEM tok/s", "3:1 tok/s"});
  for (int context : {256, 512, 1024, 2048, 4096, 8192}) {
    const auto mmem = sim.SolveBatched(LlmPlacement::MmemOnly(), kThreads, 16, context);
    const auto i31 = sim.SolveBatched(LlmPlacement::Interleave(3, 1), kThreads, 16, context);
    ctx_table.Row()
        .Cell(static_cast<uint64_t>(context))
        .Cell(mmem.bytes_per_token / 1e9, 2)
        .Cell(mmem.tokens_per_second, 1)
        .Cell(i31.tokens_per_second, 1);
  }
  ctx_table.Print(std::cout);
  if (!ctx.Write("bench_llm_batching")) {
    return 1;
  }
  return 0;
}
