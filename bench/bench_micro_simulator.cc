// google-benchmark micro-benchmarks of the simulator's own hot paths:
// event-queue throughput, Zipfian draws, page allocation, the bandwidth
// solver, and a full (small) KeyDB experiment end to end.
#include <benchmark/benchmark.h>

#include "src/bench/context.h"
#include "src/core/cxl_explorer.h"
#include "src/util/units.h"
#include "src/sim/event_queue.h"

namespace {

using namespace cxl;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    int sink = 0;
    for (int i = 0; i < n; ++i) {
      q.ScheduleAt(static_cast<double>(i % 97), [&sink] { ++sink; });
    }
    q.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void BM_ZipfianNext(benchmark::State& state) {
  Rng rng(1);
  ZipfianDistribution dist(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.Next(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfianNext)->Arg(1 << 20)->Arg(1 << 26);

void BM_PageAllocate(benchmark::State& state) {
  const auto platform = topology::Platform::CxlServer(false);
  const auto n = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    os::PageAllocator alloc(platform);
    auto pages = alloc.Allocate(os::NumaPolicy::WeightedInterleave(
                                    platform.DramNodes(), platform.CxlNodes(), 3, 1),
                                n);
    benchmark::DoNotOptimize(pages.ok());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_PageAllocate)->Arg(4096)->Arg(65536);

void BM_BandwidthSolve(benchmark::State& state) {
  const auto platform = topology::Platform::CxlServer(true);
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    topology::TrafficModel traffic(platform);
    for (int i = 0; i < flows; ++i) {
      const auto nodes = platform.nodes();
      traffic.AddMemoryTraffic(i % 2, static_cast<topology::NodeId>(i % nodes.size()),
                               mem::AccessMix::Ratio(2, 1), 5.0);
    }
    benchmark::DoNotOptimize(traffic.Solve().flows.size());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_BandwidthSolve)->Arg(4)->Arg(64);

void BM_MlcClosedLoop(benchmark::State& state) {
  workload::MlcBenchmark mlc(mem::GetProfile(mem::MemoryPath::kLocalCxl));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlc.ClosedLoopPoint(mem::AccessMix::Ratio(2, 1)).achieved_gbps);
  }
}
BENCHMARK(BM_MlcClosedLoop);

// Histogram::Record hot path. Arg is the number of distinct values cycled
// through: Arg(1) always hits the last-(value -> bucket) cache (the
// optimized path); a large Arg defeats the cache on every sample, which is
// exactly the pre-cache cost (one log10 per Record) — so the two arguments
// read as after/before throughput for the common repeated-latency case.
void BM_HistogramRecord(benchmark::State& state) {
  const int distinct = static_cast<int>(state.range(0));
  std::vector<double> values(static_cast<size_t>(distinct));
  Rng rng(7);
  for (auto& v : values) {
    v = rng.NextDouble(10.0, 1e6);
  }
  Histogram hist;
  size_t i = 0;
  for (auto _ : state) {
    hist.Record(values[i]);
    if (++i == values.size()) {
      i = 0;
    }
  }
  benchmark::DoNotOptimize(hist.count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord)->Arg(1)->Arg(4)->Arg(4096);

// Hot-path registry lookups by name. The per-epoch telemetry path resolves
// the same metric names thousands of times; with std::less<> heterogeneous
// lookup a string_view key probes the map without materializing a
// std::string per call. The name is >15 chars so it does NOT fit SSO — the
// pre-transparent-comparator cost was one heap allocation per lookup.
void BM_RegistryLookupByName(benchmark::State& state) {
  telemetry::MetricRegistry registry;
  constexpr std::string_view kName = "pcm.socket0.dram.read_gbps.total";  // 32 chars, no SSO.
  registry.GetCounter(kName).Increment();
  for (auto _ : state) {
    benchmark::DoNotOptimize(&registry.GetCounter(kName));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryLookupByName);

// Same shape for Timeline::Series, the other per-epoch name-keyed lookup.
void BM_TimelineSeriesLookup(benchmark::State& state) {
  telemetry::Timeline timeline;
  constexpr std::string_view kName = "pcm.socket0.cxl.write_gbps.series";
  timeline.Series(kName).Sample(0.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(&timeline.Series(kName));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimelineSeriesLookup);

void BM_KeyDbExperimentEndToEnd(benchmark::State& state) {
  core::KeyDbExperimentOptions opt;
  opt.dataset_bytes = 2 * kGiB;
  opt.total_ops = 30'000;
  opt.warmup_ops = 5'000;
  for (auto _ : state) {
    const auto res = core::RunKeyDbExperiment(core::CapacityConfig::kInterleave11,
                                              workload::YcsbWorkload::kC, opt);
    benchmark::DoNotOptimize(res.ok());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(opt.total_ops));
}
BENCHMARK(BM_KeyDbExperimentEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

// Expanded BENCHMARK_MAIN() so the telemetry flags are stripped before
// google-benchmark sees (and rejects) them.
int main(int argc, char** argv) {
  auto ctx = cxl::bench::Context::FromArgs(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!ctx.Write("bench_micro_simulator")) {
    return 1;
  }
  return 0;
}
