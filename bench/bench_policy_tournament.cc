// Policy tournament: every policy in os::PolicyRegistry head to head across
// the paper's application shapes, healthy and under fault storms:
//
//   (a) KeyDB YCSB-B — the stable Zipfian hot set every policy should handle
//       (§4.2.3's happy path). The adaptive policy must stay within 2% of
//       hot-page-selection here: on a healthy link with strong re-access it
//       keeps full aggressiveness and makes the same decisions.
//   (b) Streaming scan — the bandwidth-intensive pattern that degraded TPP
//       (§2.3). Promoted pages are never re-accessed, so the adaptive
//       feedback loop should cut its promotion budget and migrate far less.
//   (c) LLM-serving-shaped KV-cache traffic — a hot shared prefix (prompt KV
//       blocks re-read every decode step) plus a streaming tail of freshly
//       appended blocks; a mixed shape between (a) and (b).
//   (d) Spark TPC-H Q9 on the Hot-Promote cluster — shuffle-heavy scans that
//       thrash the promotion daemon; the adaptive policy should beat
//       hot-page-selection by not paying for doomed migrations.
//
// Fault axis: each workload runs healthy and under a lane down-train storm
// (the §4.2 degraded-link window); the adaptive policy backs off promotion
// exponentially while the window is open instead of migrating over the
// degraded link.
//
// All cells run through the deterministic sweep runner with per-cell fault
// seeds derived via runner::CellSeed, so stdout is byte-identical at any
// --jobs (CI diffs --jobs 1 against --jobs 8 and against the checked-in
// golden). The final verdict section prints explicit CHECK lines for the
// tournament's acceptance criteria and the binary exits non-zero if any
// fail.
#include <iostream>
#include <memory>
#include <vector>

#include "src/bench/context.h"
#include "src/core/cxl_explorer.h"
#include "src/os/policy_registry.h"
#include "src/util/units.h"

namespace {

using namespace cxl;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr uint64_t kDataset = 8ull << 30;

// Tournament bracket: legacy policies first, the adaptive challenger last.
const std::vector<std::string> kPolicies = {
    os::kHotPageSelectionPolicyName,
    os::kMruBalancingPolicyName,
    os::kTppLikePolicyName,
    os::kAdaptiveFeedbackPolicyName,
};

struct FaultState {
  std::string label;
  fault::FaultPlan plan;
};

// Sub-second scaled runs: the storm opens early and persists to the end,
// like the bench_fault_storms scenarios.
std::vector<FaultState> FaultStates() {
  return {{"healthy", {}},
          {"downtrain", fault::FaultPlan().Downtrain(0.05, kInf, 8)}};
}

// Streaming scan source: sequential sweeps over the whole keyspace — the
// bandwidth-intensive pattern that broke TPP for the paper (§2.3).
class ScanSource final : public workload::OpSource {
 public:
  explicit ScanSource(uint64_t keys) : keys_(keys) {}
  workload::YcsbOp Next() override {
    cursor_ += 524'287;  // Large prime: touches fresh pages fast.
    return workload::YcsbOp{workload::YcsbOp::Type::kRead, cursor_ % keys_};
  }
  double WriteFraction() const override { return 0.0; }

 private:
  uint64_t keys_;
  uint64_t cursor_ = 0;
};

// LLM-serving-shaped KV-cache traffic: decode steps re-read the shared
// prompt prefix (a small hot set, 1/64 of the keyspace) between streaming
// reads of freshly appended KV blocks. The prefix rewards promotion; the
// tail punishes it — the mix a serving stack actually presents.
class LlmServingSource final : public workload::OpSource {
 public:
  explicit LlmServingSource(uint64_t keys)
      : keys_(keys), prefix_keys_(keys / 64) {}
  workload::YcsbOp Next() override {
    ++step_;
    if (step_ % 4 != 0) {  // 3 of 4 reads hit the prompt-prefix KV blocks.
      prefix_cursor_ = (prefix_cursor_ + 97) % prefix_keys_;
      return workload::YcsbOp{workload::YcsbOp::Type::kRead, prefix_cursor_};
    }
    tail_cursor_ += 524'287;
    return workload::YcsbOp{workload::YcsbOp::Type::kRead,
                            prefix_keys_ + tail_cursor_ % (keys_ - prefix_keys_)};
  }
  double WriteFraction() const override { return 0.0; }

 private:
  uint64_t keys_;
  uint64_t prefix_keys_;
  uint64_t step_ = 0;
  uint64_t prefix_cursor_ = 0;
  uint64_t tail_cursor_ = 0;
};

std::unique_ptr<workload::OpSource> MakeKvSource(const std::string& workload,
                                                 uint64_t keys) {
  if (workload == "kv-scan") {
    return std::make_unique<ScanSource>(keys);
  }
  if (workload == "kv-llm") {
    return std::make_unique<LlmServingSource>(keys);
  }
  // Every cell replays the same workload seed: rows differ only by policy
  // and fault plan.
  return std::make_unique<workload::YcsbGenerator>(workload::YcsbWorkload::kB,
                                                   keys, 1);
}

struct KvCell {
  std::string workload;  // kv-zipf | kv-scan | kv-llm
  std::string faults;    // FaultState label
  std::string policy;    // PolicyRegistry name
  fault::FaultPlan plan;
};

struct KvRun {
  apps::kv::KvServerSim::Result result;
  os::VmCounters counters;
};

// Same harness shape as bench_promotion_policies::RunKeyDb, parameterised by
// registry name instead of PromotionMode and with an optional per-cell fault
// injector (the KvServerSim wires it into the tiering daemon).
StatusOr<KvRun> RunKv(const std::string& policy, workload::OpSource& source,
                      const fault::FaultPlan& plan, uint64_t fault_seed,
                      const fault::FaultTunables& tunables,
                      telemetry::MetricRegistry* sink) {
  topology::Platform platform = core::MakeHotPromotePlatform(kDataset);
  os::PageAllocator allocator(platform, 16ull << 10);
  os::TieringConfig tc = core::DefaultTieringConfig();
  tc.policy = policy;
  tc.promote_rate_limit_mbps = 256.0;  // Production cap; TPP ignores it.
  os::TieredMemory tiering(allocator, tc);
  os::TieredMemory::Observers obs;
  obs.telemetry = sink;
  tiering.Attach(obs);
  apps::kv::KvStoreConfig store_cfg;
  store_cfg.record_count = kDataset / 1024;
  const auto setup = core::MakeCapacitySetup(core::CapacityConfig::kHotPromote, platform);
  auto store = apps::kv::KvStore::Create(allocator, setup.policy, store_cfg, &tiering);
  if (!store.ok()) {
    return store.status();
  }
  apps::kv::KvServerConfig scfg;
  scfg.total_ops = 150'000;
  scfg.warmup_ops = 40'000;
  std::unique_ptr<fault::FaultInjector> injector;
  if (!plan.empty()) {
    injector = std::make_unique<fault::FaultInjector>(plan, fault_seed, tunables);
    injector->AttachTelemetry(sink);
  }
  apps::kv::KvServerSim sim(platform, *store, source, scfg, &tiering, sink,
                            injector.get());
  KvRun run{sim.Run(), allocator.counters()};
  store->Free();
  return run;
}

struct SparkCell {
  std::string faults;
  std::string policy;
  fault::FaultPlan plan;
};

}  // namespace

int main(int argc, char** argv) {
  auto ctx = bench::Context::FromArgs(&argc, argv);
  auto& bench_telemetry = ctx.telemetry();
  const auto storms = FaultStates();

  // ---- KV bracket: 3 workloads x 2 fault states x 4 policies. ----
  const std::vector<std::string> kv_workloads = {"kv-zipf", "kv-scan", "kv-llm"};
  std::vector<KvCell> kv_cells;
  for (const auto& w : kv_workloads) {
    for (const auto& s : storms) {
      for (const auto& p : kPolicies) {
        kv_cells.push_back({w, s.label, p, s.plan});
      }
    }
  }
  std::vector<std::string> kv_labels;
  for (const auto& c : kv_cells) {
    kv_labels.push_back(c.workload + "/" + c.faults + "/" + c.policy);
  }
  runner::SweepOptions sweep_options = ctx.Sweep();
  sweep_options.cell_labels = kv_labels;
  runner::SweepStats stats;
  // Per-cell registries (single-writer under the sweep), merged in index
  // order after the sweep so output is --jobs-independent.
  std::vector<telemetry::MetricRegistry> kv_sinks(
      bench_telemetry.enabled() ? kv_cells.size() : 0);
  for (auto& sink : kv_sinks) {
    bench_telemetry.ConfigureSink(&sink);
  }
  const auto kv_grid = runner::RunSweep(
      kv_cells,
      [&kv_cells, &kv_sinks, &ctx](const KvCell& cell, uint64_t /*seed*/) {
        const size_t index = static_cast<size_t>(&cell - kv_cells.data());
        auto source = MakeKvSource(cell.workload, kDataset / 1024);
        telemetry::MetricRegistry* sink =
            kv_sinks.empty() ? nullptr : &kv_sinks[index];
        return RunKv(cell.policy, *source, cell.plan,
                     runner::CellSeed(ctx.fault_seed(), index),
                     ctx.fault_tunables(), sink);
      },
      sweep_options, &stats);
  if (!kv_grid.ok()) {
    std::cerr << "FAILED: " << kv_grid.status().ToString() << "\n";
    return 1;
  }
  std::cerr << "[sweep] " << stats.Summary() << "\n";
  bench_telemetry.RecordSweep("kv", stats);
  for (size_t i = 0; i < kv_sinks.size(); ++i) {
    bench_telemetry.registry().MergeFrom(kv_sinks[i], kv_labels[i] + "/");
  }

  // Index into the flat KV grid.
  const auto kv_at = [&](const std::string& w, const std::string& f,
                         const std::string& p) -> const KvRun& {
    for (size_t i = 0; i < kv_cells.size(); ++i) {
      if (kv_cells[i].workload == w && kv_cells[i].faults == f &&
          kv_cells[i].policy == p) {
        return (*kv_grid)[i];
      }
    }
    std::abort();  // Unreachable: the bracket enumerates every combination.
  };
  const auto kv_winner = [&](const std::string& w, const std::string& f) {
    std::string best = kPolicies.front();
    for (const auto& p : kPolicies) {
      if (kv_at(w, f, p).result.throughput_kops >
          kv_at(w, f, best).result.throughput_kops) {
        best = p;
      }
    }
    return best;
  };

  const auto print_kv = [&](const std::string& w, const char* title) {
    PrintSection(std::cout, title);
    Table t({"faults", "policy", "kops/s", "p99 us", "promoted", "demoted",
             "migrated GB", "win"});
    for (const auto& s : storms) {
      const std::string best = kv_winner(w, s.label);
      for (const auto& p : kPolicies) {
        const KvRun& run = kv_at(w, s.label, p);
        t.Row()
            .Cell(s.label)
            .Cell(p)
            .Cell(run.result.throughput_kops, 1)
            .Cell(run.result.all_latency_us.p99(), 0)
            .Cell(run.counters.pgpromote_success)
            .Cell(run.counters.pgdemote)
            .Cell(BytesToGBd(run.result.migrated_bytes), 2)
            .Cell(p == best ? "*" : "");
      }
    }
    t.Print(std::cout);
  };
  print_kv("kv-zipf",
           "Policy tournament (a): KeyDB YCSB-B — stable Zipfian hot set");
  print_kv("kv-scan",
           "Policy tournament (b): streaming scan — the pattern that degraded TPP (§2.3)");
  print_kv("kv-llm",
           "Policy tournament (c): LLM-serving KV-cache shape — hot prefix + decode tail");
  std::cout << "Reading: on the Zipf hot set the adaptive policy sees strong promoted-page\n"
               "re-access and keeps hot-page-selection's exact behaviour; on the scan the\n"
               "re-access ratio collapses and it cuts the promotion budget instead of\n"
               "migrating pages that will never be touched again; under the down-train\n"
               "storm it backs off exponentially rather than migrate over a degraded link.\n";

  // ---- Spark bracket: TPC-H Q9 on the Hot-Promote cluster. ----
  std::vector<SparkCell> spark_cells;
  for (const auto& s : storms) {
    for (const auto& p : kPolicies) {
      // Spark's storm uses the bench_fault_storms (b) shape: degraded from t=0.
      spark_cells.push_back(
          {s.label, p,
           s.plan.empty() ? fault::FaultPlan()
                          : fault::FaultPlan().Downtrain(0.0, kInf, 4)});
    }
  }
  std::vector<std::string> spark_labels;
  for (const auto& c : spark_cells) {
    spark_labels.push_back("spark-q9/" + c.faults + "/" + c.policy);
  }
  runner::SweepOptions spark_options = ctx.Sweep();
  spark_options.cell_labels = spark_labels;
  std::vector<telemetry::MetricRegistry> spark_sinks(
      bench_telemetry.enabled() ? spark_cells.size() : 0);
  for (auto& sink : spark_sinks) {
    bench_telemetry.ConfigureSink(&sink);
  }
  const auto spark_grid = runner::RunSweep(
      spark_cells,
      [&spark_cells, &spark_sinks, &kv_cells, &ctx](const SparkCell& cell,
                                                    uint64_t /*seed*/) {
        const size_t index = static_cast<size_t>(&cell - spark_cells.data());
        core::SparkExperimentOptions opt;
        opt.cluster = apps::spark::SparkConfig::HotPromote();
        opt.cluster.tiering_policy = cell.policy;
        // Half the Hot-Promote default: the §4.2.2 thrash regime, where the
        // rate-limited daemon cannot keep up with the advancing window and
        // promotions land after the pages went cold — pure stall cost. (At
        // the default 3000 MB/s enough of the window lands hot for the
        // placement gain to cover the stalls.)
        opt.cluster.promote_rate_limit_mbps = 1500.0;
        if (const auto* q9 = apps::spark::FindQuery("Q9")) {
          opt.queries = {*q9};
        }
        opt.env = ctx.Env();
        opt.env.faults = cell.plan;
        // Continue the CellSeed sequence after the KV bracket so no two
        // cells share a fault stream.
        opt.env.fault_seed =
            runner::CellSeed(ctx.fault_seed(), kv_cells.size() + index);
        opt.env.telemetry = spark_sinks.empty() ? nullptr : &spark_sinks[index];
        return core::RunSparkExperiment(opt);
      },
      spark_options, &stats);
  if (!spark_grid.ok()) {
    std::cerr << "FAILED: " << spark_grid.status().ToString() << "\n";
    return 1;
  }
  std::cerr << "[sweep] " << stats.Summary() << "\n";
  bench_telemetry.RecordSweep("spark", stats);
  for (size_t i = 0; i < spark_sinks.size(); ++i) {
    bench_telemetry.registry().MergeFrom(spark_sinks[i], spark_labels[i] + "/");
  }

  const auto spark_at = [&](const std::string& f,
                            const std::string& p) -> const core::SparkExperimentResult& {
    for (size_t i = 0; i < spark_cells.size(); ++i) {
      if (spark_cells[i].faults == f && spark_cells[i].policy == p) {
        return (*spark_grid)[i];
      }
    }
    std::abort();  // Unreachable: the bracket enumerates every combination.
  };
  PrintSection(std::cout,
               "Policy tournament (d): Spark TPC-H Q9 — shuffle scans thrash the promoter");
  Table sp({"faults", "policy", "total s", "shuffle s", "retry s", "win"});
  for (const auto& s : storms) {
    std::string best = kPolicies.front();
    for (const auto& p : kPolicies) {
      if (spark_at(s.label, p).total_seconds <
          spark_at(s.label, best).total_seconds) {
        best = p;
      }
    }
    for (const auto& p : kPolicies) {
      const auto& res = spark_at(s.label, p);
      double shuffle_s = 0.0;
      double retry_s = 0.0;
      for (const auto& q : res.queries) {
        shuffle_s += q.ShuffleSeconds();
        retry_s += q.retry_seconds;
      }
      sp.Row()
          .Cell(s.label)
          .Cell(p)
          .Cell(res.total_seconds, 2)
          .Cell(shuffle_s, 2)
          .Cell(retry_s, 2)
          .Cell(p == best ? "*" : "");
    }
  }
  sp.Print(std::cout);
  std::cout << "Reading: hot-page-selection keeps promoting the advancing window and the\n"
               "migrations land cold — the §4.2.2 mis-adaptation; the adaptive policy's\n"
               "ping-pong/re-access feedback cuts the budget instead. TPP's unbounded\n"
               "promotion happens to win this bracket, but it is the same aggression that\n"
               "collapses on the KV scan in (b): no static policy wins every bracket,\n"
               "which is the tournament's point.\n";

  // ---- Verdict: the acceptance criteria as explicit CHECK lines. ----
  PrintSection(std::cout, "Tournament verdict");
  bool ok = true;
  const auto check = [&ok](const std::string& label, bool pass) {
    std::cout << "CHECK " << label << ": " << (pass ? "PASS" : "FAIL") << "\n";
    ok = ok && pass;
  };
  const auto kops = [&](const std::string& w, const std::string& f,
                        const std::string& p) {
    return kv_at(w, f, p).result.throughput_kops;
  };
  const std::string hps = os::kHotPageSelectionPolicyName;
  const std::string adp = os::kAdaptiveFeedbackPolicyName;
  for (const auto& s : storms) {
    check("kv-zipf/" + s.label + ": adaptive-feedback within 2% of hot-page-selection",
          kops("kv-zipf", s.label, adp) >= 0.98 * kops("kv-zipf", s.label, hps));
  }
  check("kv-scan/healthy: adaptive-feedback migrates less than half of hot-page-selection",
        kv_at("kv-scan", "healthy", adp).result.migrated_bytes <
            0.5 * kv_at("kv-scan", "healthy", hps).result.migrated_bytes);
  for (const auto& s : storms) {
    check("spark-q9/" + s.label + ": adaptive-feedback beats hot-page-selection",
          spark_at(s.label, adp).total_seconds <
              spark_at(s.label, hps).total_seconds);
  }

  if (!ctx.Write("bench_policy_tournament")) {
    return 1;
  }
  return ok ? 0 : 1;
}
