// Rack-scale pooling bench (§7.1, made dynamic): N hosts sharing M CXL
// expanders through a pool scheduler, serving a multi-tenant KV fleet over a
// simulated day — the successor of the static pooling what-if table.
//
// Sweep: topology {flat, star, mesh} x expander capacity {tight, ample} x
// fault {healthy, downtrain}. Every cell runs the same seeded fleet (2M
// tenants, 64 shards, diurnal load, hotspot shards) on an 8-host/4-expander
// rack; cells differ only in fabric reach, pool headroom, and whether host
// 0's pool link down-trains to x4 mid-day. The downtrain cells must show
// tenants re-sharding away from the degraded host while per-shard SLO burn
// is accounted (kTenantReshard / SLO events in the merged event log).
//
// All cells run through the deterministic sweep runner; stdout is
// byte-identical at any --jobs (CI diffs --jobs 1 vs 8 and against
// tests/golden/bench_pool_rack.txt). The verdict section prints explicit
// CHECK lines and the binary exits non-zero if any fail.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/kv/fleet.h"
#include "src/bench/context.h"
#include "src/fault/fault.h"
#include "src/pool/memory_pool.h"
#include "src/pool/rack.h"
#include "src/pool/scheduler.h"
#include "src/runner/sweep.h"
#include "src/util/table.h"
#include "src/util/units.h"

namespace {

using namespace cxl;

constexpr double kGiBd = 1024.0 * 1024.0 * 1024.0;

// One simulated day in fleet steps (48 x 1800 s).
constexpr int kSteps = 48;
constexpr double kStepSeconds = 1800.0;
constexpr double kDaySeconds = kSteps * kStepSeconds;

struct RackCell {
  pool::RackTopology topology = pool::RackTopology::kFlat;
  const char* capacity_label = "";
  uint64_t expander_capacity_bytes = 0;
  const char* fault_label = "";
  fault::FaultPlan plan;
};

struct RackRun {
  apps::kv::FleetResult fleet;
  double pool_capacity_gib = 0.0;
};

StatusOr<RackRun> RunCell(const RackCell& cell, uint64_t fault_seed,
                          const fault::FaultTunables& tunables,
                          telemetry::MetricRegistry* sink) {
  pool::RackConfig rack_cfg;
  rack_cfg.hosts = 8;
  rack_cfg.expanders = 4;
  rack_cfg.topology = cell.topology;
  // Hosts are DRAM-lean on purpose: the pool carries a real fraction of the
  // working set (that is the deployment pooling argues for).
  rack_cfg.host_dram_bytes = 80 * kGiB;
  rack_cfg.expander_capacity_bytes = cell.expander_capacity_bytes;
  rack_cfg.slice_bytes = kGiB;
  rack_cfg.per_host_capacity_fraction = 0.75;
  pool::Rack rack(rack_cfg);

  pool::SchedulerConfig sched_cfg;
  sched_cfg.ballooning = true;
  // Releasing pooled memory migrates pages; hosts hold leases until a peer
  // actually starves (balloon reclaim) — the lazy-reclaim regime.
  sched_cfg.sticky_release = true;
  pool::PoolScheduler scheduler(rack, sched_cfg);
  scheduler.AttachTelemetry(sink);

  std::unique_ptr<fault::FaultInjector> injector;
  if (!cell.plan.empty()) {
    injector = std::make_unique<fault::FaultInjector>(cell.plan, fault_seed, tunables);
    injector->AttachTelemetry(sink);
  }

  apps::kv::FleetConfig fleet_cfg;
  // Every cell replays the same seeded tenant layout: rows differ only by
  // topology, pool headroom, and fault plan.
  fleet_cfg.seed = 7;
  fleet_cfg.steps = kSteps;
  fleet_cfg.step_seconds = kStepSeconds;
  apps::kv::KvFleetSim fleet(scheduler, fleet_cfg, sink, injector.get());
  RackRun run;
  run.fleet = fleet.Run();
  run.pool_capacity_gib = static_cast<double>(rack.TotalCapacityBytes()) / kGiBd;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  auto ctx = bench::Context::FromArgs(&argc, argv);
  auto& bench_telemetry = ctx.telemetry();

  PrintSection(std::cout, "Pooled-CXL performance law (local CXL + switch hop)");
  Table perf({"path", "idle ns", "read peak GB/s"});
  const mem::AccessMix read = mem::AccessMix::ReadOnly();
  perf.Row()
      .Cell("CXL (direct, 1.1)")
      .Cell(mem::GetProfile(mem::MemoryPath::kLocalCxl).IdleLatencyNs(read), 1)
      .Cell(mem::GetProfile(mem::MemoryPath::kLocalCxl).PeakBandwidthGBps(read), 1);
  perf.Row()
      .Cell("CXL (pooled, 2.0)")
      .Cell(pool::PooledCxlProfile().IdleLatencyNs(read), 1)
      .Cell(pool::PooledCxlProfile().PeakBandwidthGBps(read), 1);
  perf.Row()
      .Cell("CXL-r (cross-socket)")
      .Cell(mem::GetProfile(mem::MemoryPath::kRemoteCxl).IdleLatencyNs(read), 1)
      .Cell(mem::GetProfile(mem::MemoryPath::kRemoteCxl).PeakBandwidthGBps(read), 1);
  perf.Print(std::cout);

  PrintSection(std::cout, "Capacity saving from pooling (ceil-rank p99 provisioning, CV=0.35)");
  Table econ({"hosts", "per-host p99 GiB", "pooled p99 GiB", "saving %"});
  for (int hosts : {2, 4, 8, 16}) {
    pool::PoolingEconomicsConfig cfg;
    cfg.hosts = hosts;
    const auto r = pool::EstimatePoolingEconomics(cfg);
    econ.Row()
        .Cell(static_cast<uint64_t>(hosts))
        .Cell(r.per_host_provision_gib, 1)
        .Cell(r.pooled_provision_gib / hosts, 1)
        .Cell(100.0 * r.capacity_saving, 1);
  }
  econ.Print(std::cout);

  // ---- The rack sweep: topology x pool headroom x fault state. ----
  const std::vector<std::pair<const char*, uint64_t>> capacities = {
      {"tight", 48ull << 30},  // 192 GiB pool, under the ~280 GiB demand peak.
      {"ample", 96ull << 30},  // 384 GiB pool: headroom for every cell.
  };
  // Host 0's pool link down-trains to x4 from 30240 s for a quarter day.
  const std::vector<std::pair<const char*, fault::FaultPlan>> states = {
      {"healthy", {}},
      {"downtrain",
       fault::FaultPlan().Downtrain(0.35 * kDaySeconds, 0.25 * kDaySeconds, 4)},
  };
  std::vector<RackCell> cells;
  for (const auto topo :
       {pool::RackTopology::kFlat, pool::RackTopology::kStar, pool::RackTopology::kMesh}) {
    for (const auto& cap : capacities) {
      for (const auto& st : states) {
        cells.push_back({topo, cap.first, cap.second, st.first, st.second});
      }
    }
  }
  std::vector<std::string> labels;
  for (const auto& c : cells) {
    labels.push_back(std::string(pool::RackTopologyName(c.topology)) + "/" + c.capacity_label +
                     "/" + c.fault_label);
  }
  runner::SweepOptions sweep_options = ctx.Sweep();
  sweep_options.cell_labels = labels;
  runner::SweepStats stats;
  std::vector<telemetry::MetricRegistry> sinks(bench_telemetry.enabled() ? cells.size() : 0);
  for (auto& sink : sinks) {
    bench_telemetry.ConfigureSink(&sink);
  }
  const auto grid = runner::RunSweep(
      cells,
      [&cells, &sinks, &ctx](const RackCell& cell, uint64_t /*seed*/) {
        const size_t index = static_cast<size_t>(&cell - cells.data());
        telemetry::MetricRegistry* sink = sinks.empty() ? nullptr : &sinks[index];
        return RunCell(cell, runner::CellSeed(ctx.fault_seed(), index), ctx.fault_tunables(),
                       sink);
      },
      sweep_options, &stats);
  if (!grid.ok()) {
    std::cerr << "FAILED: " << grid.status().ToString() << "\n";
    return 1;
  }
  std::cerr << "[sweep] " << stats.Summary() << "\n";
  bench_telemetry.RecordSweep("rack", stats);
  for (size_t i = 0; i < sinks.size(); ++i) {
    bench_telemetry.registry().MergeFrom(sinks[i], labels[i] + "/");
  }

  const auto at = [&](pool::RackTopology topo, const char* cap,
                      const char* fault) -> const RackRun& {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].topology == topo && std::string(cells[i].capacity_label) == cap &&
          std::string(cells[i].fault_label) == fault) {
        return (*grid)[i];
      }
    }
    std::abort();  // Unreachable: the sweep enumerates every combination.
  };

  PrintSection(std::cout,
               "Rack fleet sweep: 8 hosts x 4 expanders, 2M tenants, one simulated day");
  Table t({"topology", "pool", "faults", "util %", "stranded GiB", "unmet GiB", "spills",
           "balloons", "denied", "reshards", "mean us", "worst us", "SLO burn s"});
  for (size_t i = 0; i < cells.size(); ++i) {
    const RackCell& c = cells[i];
    const RackRun& r = (*grid)[i];
    t.Row()
        .Cell(pool::RackTopologyName(c.topology))
        .Cell(c.capacity_label)
        .Cell(c.fault_label)
        .Cell(100.0 * r.fleet.mean_pool_utilization, 1)
        .Cell(r.fleet.scheduler.MeanStrandedBytes() / kGiBd, 1)
        .Cell(r.fleet.scheduler.MeanUnmetBytes() / kGiBd, 1)
        .Cell(r.fleet.scheduler.spill_grants)
        .Cell(r.fleet.scheduler.balloon_reclaims)
        .Cell(r.fleet.scheduler.grows_denied)
        .Cell(r.fleet.reshard_events)
        .Cell(r.fleet.mean_latency_us, 2)
        .Cell(r.fleet.peak_latency_us, 2)
        .Cell(MsToSec(r.fleet.slo_burned_ms), 1);
  }
  t.Print(std::cout);
  std::cout
      << "Reading: flat pools every expander behind one switch — free capacity is\n"
         "reachable by whoever starves, so nothing strands; star dedicates expanders\n"
         "to host groups and strands their headroom exactly when another group runs\n"
         "tight; mesh keeps sharing alive through a second switch stage, paying the\n"
         "extra hop only on spilled grants. The downtrain column is host 0's pool\n"
         "link at x4 for a quarter day: its tenants re-shard away (tenant_reshard\n"
         "events, reason=degraded_link), the survivors eat switch-latency inflation,\n"
         "and the per-shard SLO trackers burn error budget until the link recovers.\n";

  PrintSection(std::cout, "Downtrain dynamics (flat/ample): re-shard churn and SLO burn");
  Table dyn({"faults", "reshard events", "tenants moved", "SLO violations", "burn s",
             "worst burn rate"});
  for (const auto& st : states) {
    const RackRun& r = at(pool::RackTopology::kFlat, "ample", st.first);
    dyn.Row()
        .Cell(st.first)
        .Cell(r.fleet.reshard_events)
        .Cell(r.fleet.resharded_tenants)
        .Cell(static_cast<uint64_t>(r.fleet.slo_violations))
        .Cell(MsToSec(r.fleet.slo_burned_ms), 1)
        .Cell(r.fleet.worst_burn_rate, 2);
  }
  dyn.Print(std::cout);

  // ---- Verdict: the acceptance criteria as explicit CHECK lines. ----
  PrintSection(std::cout, "Rack verdict");
  bool ok = true;
  const auto check = [&ok](const std::string& label, bool pass) {
    std::cout << "CHECK " << label << ": " << (pass ? "PASS" : "FAIL") << "\n";
    ok = ok && pass;
  };
  const auto& flat_tight_down = at(pool::RackTopology::kFlat, "tight", "downtrain");
  const auto& star_tight_down = at(pool::RackTopology::kStar, "tight", "downtrain");
  const auto& mesh_tight_down = at(pool::RackTopology::kMesh, "tight", "downtrain");
  const auto& flat_ample = at(pool::RackTopology::kFlat, "ample", "healthy");
  const auto& flat_ample_down = at(pool::RackTopology::kFlat, "ample", "downtrain");
  check("flat/ample/healthy: nothing stranded, nothing denied",
        flat_ample.fleet.scheduler.MeanStrandedBytes() == 0.0 &&
            flat_ample.fleet.scheduler.grows_denied == 0);
  check("star/tight/downtrain strands capacity a flat fabric would serve",
        star_tight_down.fleet.scheduler.MeanStrandedBytes() >
            flat_tight_down.fleet.scheduler.MeanStrandedBytes());
  check("mesh/tight/downtrain spills grants beyond the home expander",
        mesh_tight_down.fleet.scheduler.spill_grants > 0);
  check("tight pools balloon-reclaim peer slack under the downtrain",
        flat_tight_down.fleet.scheduler.balloon_reclaims > 0);
  check("downtrain re-shards tenants off the degraded host",
        flat_ample_down.fleet.reshard_events > flat_ample.fleet.reshard_events);
  check("downtrain burns SLO budget the healthy run does not",
        flat_ample_down.fleet.slo_burned_ms > flat_ample.fleet.slo_burned_ms);

  if (!ctx.Write("bench_pool_rack")) {
    return 1;
  }
  return ok ? 0 : 1;
}
