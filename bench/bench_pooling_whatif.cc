// Extension bench (§7.1 future work — not a paper figure): CXL 2.0 memory
// pooling. Quantifies the statistical-multiplexing capacity saving behind
// the paper's disaggregation outlook, the latency cost of the switch hop,
// and a lease-churn simulation of a 16-host pool.
#include <iostream>

#include "src/bench/context.h"
#include "src/core/cxl_explorer.h"
#include "src/util/units.h"
#include "src/pool/memory_pool.h"

int main(int argc, char** argv) {
  auto ctx = cxl::bench::Context::FromArgs(&argc, argv);

  using namespace cxl;

  PrintSection(std::cout, "Pooled-CXL performance law (local CXL + switch hop)");
  Table perf({"path", "idle ns", "read peak GB/s"});
  const mem::AccessMix read = mem::AccessMix::ReadOnly();
  perf.Row().Cell("CXL (direct, 1.1)")
      .Cell(mem::GetProfile(mem::MemoryPath::kLocalCxl).IdleLatencyNs(read), 1)
      .Cell(mem::GetProfile(mem::MemoryPath::kLocalCxl).PeakBandwidthGBps(read), 1);
  perf.Row().Cell("CXL (pooled, 2.0)")
      .Cell(pool::PooledCxlProfile().IdleLatencyNs(read), 1)
      .Cell(pool::PooledCxlProfile().PeakBandwidthGBps(read), 1);
  perf.Row().Cell("CXL-r (cross-socket)")
      .Cell(mem::GetProfile(mem::MemoryPath::kRemoteCxl).IdleLatencyNs(read), 1)
      .Cell(mem::GetProfile(mem::MemoryPath::kRemoteCxl).PeakBandwidthGBps(read), 1);
  perf.Print(std::cout);

  PrintSection(std::cout, "Capacity saving from pooling (p99 provisioning, CV=0.35)");
  Table econ({"hosts", "per-host p99 GiB", "pooled p99 GiB", "saving %"});
  for (int hosts : {2, 4, 8, 16}) {
    pool::PoolingEconomicsConfig cfg;
    cfg.hosts = hosts;
    const auto r = pool::EstimatePoolingEconomics(cfg);
    econ.Row()
        .Cell(static_cast<uint64_t>(hosts))
        .Cell(r.per_host_provision_gib, 1)
        .Cell(r.pooled_provision_gib / hosts, 1)
        .Cell(100.0 * r.capacity_saving, 1);
  }
  econ.Print(std::cout);

  PrintSection(std::cout, "Saving vs demand burstiness (16 hosts)");
  Table cv({"demand CV", "saving %"});
  for (double v : {0.1, 0.2, 0.35, 0.5, 0.7}) {
    pool::PoolingEconomicsConfig cfg;
    cfg.demand_cv = v;
    cv.Row().Cell(v, 2).Cell(100.0 * pool::EstimatePoolingEconomics(cfg).capacity_saving, 1);
  }
  cv.Print(std::cout);

  PrintSection(std::cout, "Lease churn: 16 hosts on a 4 TiB pool, bursty demands");
  pool::PoolConfig pcfg;
  pcfg.capacity_bytes = 4 * kTiB;
  pool::CxlMemoryPool mem_pool(pcfg);
  pool::PoolChurnConfig churn_cfg;
  churn_cfg.steps = 3000;
  const auto churn_result = pool::SimulatePoolChurn(mem_pool, churn_cfg);
  Table churn({"metric", "value"});
  churn.Row().Cell("mean pool utilization").Cell(churn_result.mean_utilization, 3);
  churn.Row().Cell("peak pool utilization").Cell(churn_result.peak_utilization, 3);
  churn.Row().Cell("grow-request denial rate").Cell(churn_result.denial_rate, 4);
  churn.Row().Cell("active hosts at end").Cell(static_cast<uint64_t>(mem_pool.ActiveHosts()));
  churn.Print(std::cout);

  PrintSection(std::cout, "Combined: pooling saving folded into the Abstract Cost Model");
  // Pooling reduces the CXL capacity each server must own; express it as a
  // reduction in the fixed CXL adder of the extended model.
  for (double adder : {0.10}) {
    pool::PoolingEconomicsConfig cfg;
    const double saving = pool::EstimatePoolingEconomics(cfg).capacity_saving;
    cost::ExtendedCostModel without(
        cost::ExtendedCostParams{cost::CostModelParams{10.0, 8.0, 2.0, 1.1}, adder});
    cost::ExtendedCostModel with(cost::ExtendedCostParams{
        cost::CostModelParams{10.0, 8.0, 2.0, 1.1}, adder * (1.0 - saving)});
    std::cout << "fixed CXL adder " << FormatDouble(adder, 2) << ": TCO saving "
              << FormatDouble(100.0 * without.TcoSaving(), 2) << "% -> "
              << FormatDouble(100.0 * with.TcoSaving(), 2) << "% once the pool amortizes "
              << FormatDouble(100.0 * saving, 1) << "% of the CXL capacity\n";
  }
  if (!ctx.Write("bench_pooling_whatif")) {
    return 1;
  }
  return 0;
}
