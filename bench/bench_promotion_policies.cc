// Extension bench: the three kernel promotion mechanisms the paper touches
// (§2.3, §8) head to head on KeyDB:
//   - hot page selection (post-v6.1, what the paper's Hot-Promote uses),
//   - MRU NUMA balancing (the earlier patch),
//   - TPP-like promotion (Meta's prototype — the one the paper "faced
//     challenges with ... resulting in unexplained performance degradation"
//     on bandwidth-intensive workloads).
#include <iostream>

#include "src/core/cxl_explorer.h"

namespace {

using namespace cxl;

struct PolicyRun {
  apps::kv::KvServerSim::Result result;
  os::VmCounters counters;
};

PolicyRun RunKeyDb(os::PromotionMode mode, workload::OpSource& source, uint64_t dataset_bytes) {
  topology::Platform platform = core::MakeHotPromotePlatform(dataset_bytes);
  os::PageAllocator allocator(platform, 16ull << 10);
  os::TieringConfig tc = core::DefaultTieringConfig();
  tc.mode = mode;
  // A realistic production cap — which TPP predates and ignores.
  tc.promote_rate_limit_mbps = 256.0;
  os::TieredMemory tiering(allocator, tc);
  apps::kv::KvStoreConfig store_cfg;
  store_cfg.record_count = dataset_bytes / 1024;
  const auto setup = core::MakeCapacitySetup(core::CapacityConfig::kHotPromote, platform);
  auto store = apps::kv::KvStore::Create(allocator, setup.policy, store_cfg, &tiering);
  if (!store.ok()) {
    std::cerr << "store: " << store.status().ToString() << "\n";
    std::exit(1);
  }
  apps::kv::KvServerConfig scfg;
  scfg.total_ops = 150'000;
  scfg.warmup_ops = 40'000;
  apps::kv::KvServerSim sim(platform, *store, source, scfg, &tiering);
  PolicyRun run{sim.Run(), allocator.counters()};
  store->Free();
  return run;
}

const char* ModeName(os::PromotionMode mode) {
  switch (mode) {
    case os::PromotionMode::kHotPageSelection:
      return "hot-page-selection";
    case os::PromotionMode::kMruBalancing:
      return "MRU-balancing";
    case os::PromotionMode::kTppLike:
      return "TPP-like";
  }
  return "?";
}

// Streaming scan source: sequential sweeps over the whole keyspace — the
// bandwidth-intensive pattern that broke TPP for the paper.
class ScanSource final : public workload::OpSource {
 public:
  explicit ScanSource(uint64_t keys) : keys_(keys) {}
  workload::YcsbOp Next() override {
    // Large-prime stride: sweeps the keyspace touching fresh pages fast.
    cursor_ += 524'287;
    return workload::YcsbOp{workload::YcsbOp::Type::kRead, cursor_ % keys_};
  }
  double WriteFraction() const override { return 0.0; }

 private:
  uint64_t keys_;
  uint64_t cursor_ = 0;
};

}  // namespace

int main() {
  constexpr uint64_t kDataset = 8ull << 30;
  const auto modes = {os::PromotionMode::kHotPageSelection, os::PromotionMode::kMruBalancing,
                      os::PromotionMode::kTppLike};

  PrintSection(std::cout, "Zipfian KeyDB (YCSB-B): stable hot set — all policies should work");
  Table zipf({"policy", "kops/s", "p99 us", "promoted", "demoted", "migrated GB"});
  for (const auto mode : modes) {
    workload::YcsbGenerator gen(workload::YcsbWorkload::kB, kDataset / 1024, 1);
    const auto run = RunKeyDb(mode, gen, kDataset);
    zipf.Row()
        .Cell(ModeName(mode))
        .Cell(run.result.throughput_kops, 1)
        .Cell(run.result.all_latency_us.p99(), 0)
        .Cell(run.counters.pgpromote_success)
        .Cell(run.counters.pgdemote)
        .Cell(run.result.migrated_bytes / 1e9, 2);
  }
  zipf.Print(std::cout);

  PrintSection(std::cout,
               "Streaming scan: the bandwidth-intensive pattern that degraded TPP (§2.3)");
  Table scan({"policy", "kops/s", "p99 us", "promoted", "demoted", "migrated GB"});
  for (const auto mode : modes) {
    ScanSource source(kDataset / 1024);
    const auto run = RunKeyDb(mode, source, kDataset);
    scan.Row()
        .Cell(ModeName(mode))
        .Cell(run.result.throughput_kops, 1)
        .Cell(run.result.all_latency_us.p99(), 0)
        .Cell(run.counters.pgpromote_success)
        .Cell(run.counters.pgdemote)
        .Cell(run.result.migrated_bytes / 1e9, 2);
  }
  scan.Print(std::cout);
  std::cout << "Reading: on the scan, TPP promotes everything it touches (no rate limit, no\n"
               "threshold) and the migration traffic + demotion churn eat into throughput —\n"
               "the paper's reason for using \"the well-tested kernel patches\" instead.\n";
  return 0;
}
