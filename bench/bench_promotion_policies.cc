// Extension bench: the three kernel promotion mechanisms the paper touches
// (§2.3, §8) head to head on KeyDB:
//   - hot page selection (post-v6.1, what the paper's Hot-Promote uses),
//   - MRU NUMA balancing (the earlier patch),
//   - TPP-like promotion (Meta's prototype — the one the paper "faced
//     challenges with ... resulting in unexplained performance degradation"
//     on bandwidth-intensive workloads).
#include <iostream>

#include "src/bench/context.h"
#include "src/core/cxl_explorer.h"
#include "src/util/units.h"

namespace {

using namespace cxl;

struct PolicyRun {
  apps::kv::KvServerSim::Result result;
  os::VmCounters counters;
};

StatusOr<PolicyRun> RunKeyDb(os::PromotionMode mode, workload::OpSource& source,
                             uint64_t dataset_bytes, telemetry::MetricRegistry* sink = nullptr) {
  topology::Platform platform = core::MakeHotPromotePlatform(dataset_bytes);
  os::PageAllocator allocator(platform, 16ull << 10);
  os::TieringConfig tc = core::DefaultTieringConfig();
  tc.mode = mode;
  // A realistic production cap — which TPP predates and ignores.
  tc.promote_rate_limit_mbps = 256.0;
  os::TieredMemory tiering(allocator, tc);
  os::TieredMemory::Observers obs;
  obs.telemetry = sink;
  tiering.Attach(obs);
  apps::kv::KvStoreConfig store_cfg;
  store_cfg.record_count = dataset_bytes / kKiB;
  const auto setup = core::MakeCapacitySetup(core::CapacityConfig::kHotPromote, platform);
  auto store = apps::kv::KvStore::Create(allocator, setup.policy, store_cfg, &tiering);
  if (!store.ok()) {
    return store.status();
  }
  apps::kv::KvServerConfig scfg;
  scfg.total_ops = 150'000;
  scfg.warmup_ops = 40'000;
  apps::kv::KvServerSim sim(platform, *store, source, scfg, &tiering, sink);
  PolicyRun run{sim.Run(), allocator.counters()};
  store->Free();
  return run;
}

const char* ModeName(os::PromotionMode mode) {
  switch (mode) {
    case os::PromotionMode::kHotPageSelection:
      return "hot-page-selection";
    case os::PromotionMode::kMruBalancing:
      return "MRU-balancing";
    case os::PromotionMode::kTppLike:
      return "TPP-like";
  }
  return "?";
}

// Streaming scan source: sequential sweeps over the whole keyspace — the
// bandwidth-intensive pattern that broke TPP for the paper.
class ScanSource final : public workload::OpSource {
 public:
  explicit ScanSource(uint64_t keys) : keys_(keys) {}
  workload::YcsbOp Next() override {
    // Large-prime stride: sweeps the keyspace touching fresh pages fast.
    cursor_ += 524'287;
    return workload::YcsbOp{workload::YcsbOp::Type::kRead, cursor_ % keys_};
  }
  double WriteFraction() const override { return 0.0; }

 private:
  uint64_t keys_;
  uint64_t cursor_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  auto ctx = bench::Context::FromArgs(&argc, argv);
  auto& bench_telemetry = ctx.telemetry();
  constexpr uint64_t kDataset = 8ull << 30;
  const std::vector<os::PromotionMode> modes = {os::PromotionMode::kHotPageSelection,
                                                os::PromotionMode::kMruBalancing,
                                                os::PromotionMode::kTppLike};
  runner::SweepOptions sweep_options;
  sweep_options.jobs = ctx.jobs();
  for (os::PromotionMode mode : modes) {
    sweep_options.cell_labels.push_back(ModeName(mode));
  }
  runner::SweepStats stats;
  // Per-cell registries (single-writer under the sweep), merged in index
  // order after each sweep so output is --jobs-independent.
  std::vector<telemetry::MetricRegistry> zipf_sinks(
      bench_telemetry.enabled() ? modes.size() : 0);
  std::vector<telemetry::MetricRegistry> scan_sinks(
      bench_telemetry.enabled() ? modes.size() : 0);

  // One policy per cell; each cell owns its op source (they are stateful
  // cursors, so sharing one across threads would skew the comparison).
  PrintSection(std::cout, "Zipfian KeyDB (YCSB-B): stable hot set — all policies should work");
  Table zipf({"policy", "kops/s", "p99 us", "promoted", "demoted", "migrated GB"});
  const auto zipf_runs = runner::RunSweep(
      modes,
      [&modes, &zipf_sinks](const os::PromotionMode& mode, uint64_t /*seed*/) {
        workload::YcsbGenerator gen(workload::YcsbWorkload::kB, kDataset / kKiB, 1);
        telemetry::MetricRegistry* sink =
            zipf_sinks.empty() ? nullptr
                               : &zipf_sinks[static_cast<size_t>(&mode - modes.data())];
        return RunKeyDb(mode, gen, kDataset, sink);
      },
      sweep_options, &stats);
  bench_telemetry.RecordSweep("zipf", stats);
  if (!zipf_runs.ok()) {
    std::cerr << "store: " << zipf_runs.status().ToString() << "\n";
    return 1;
  }
  for (size_t i = 0; i < zipf_sinks.size(); ++i) {
    bench_telemetry.registry().MergeFrom(zipf_sinks[i],
                                         std::string("zipf/") + ModeName(modes[i]) + "/");
  }
  for (size_t i = 0; i < modes.size(); ++i) {
    const PolicyRun& run = (*zipf_runs)[i];
    zipf.Row()
        .Cell(ModeName(modes[i]))
        .Cell(run.result.throughput_kops, 1)
        .Cell(run.result.all_latency_us.p99(), 0)
        .Cell(run.counters.pgpromote_success)
        .Cell(run.counters.pgdemote)
        .Cell(BytesToGBd(run.result.migrated_bytes), 2);
  }
  zipf.Print(std::cout);

  PrintSection(std::cout,
               "Streaming scan: the bandwidth-intensive pattern that degraded TPP (§2.3)");
  Table scan({"policy", "kops/s", "p99 us", "promoted", "demoted", "migrated GB"});
  const auto scan_runs = runner::RunSweep(
      modes,
      [&modes, &scan_sinks](const os::PromotionMode& mode, uint64_t /*seed*/) {
        ScanSource source(kDataset / 1024);
        telemetry::MetricRegistry* sink =
            scan_sinks.empty() ? nullptr
                               : &scan_sinks[static_cast<size_t>(&mode - modes.data())];
        return RunKeyDb(mode, source, kDataset, sink);
      },
      sweep_options, &stats);
  bench_telemetry.RecordSweep("scan", stats);
  if (!scan_runs.ok()) {
    std::cerr << "store: " << scan_runs.status().ToString() << "\n";
    return 1;
  }
  for (size_t i = 0; i < scan_sinks.size(); ++i) {
    bench_telemetry.registry().MergeFrom(scan_sinks[i],
                                         std::string("scan/") + ModeName(modes[i]) + "/");
  }
  for (size_t i = 0; i < modes.size(); ++i) {
    const PolicyRun& run = (*scan_runs)[i];
    scan.Row()
        .Cell(ModeName(modes[i]))
        .Cell(run.result.throughput_kops, 1)
        .Cell(run.result.all_latency_us.p99(), 0)
        .Cell(run.counters.pgpromote_success)
        .Cell(run.counters.pgdemote)
        .Cell(BytesToGBd(run.result.migrated_bytes), 2);
  }
  scan.Print(std::cout);
  std::cout << "Reading: on the scan, TPP promotes everything it touches (no rate limit, no\n"
               "threshold) and the migration traffic + demotion churn eat into throughput —\n"
               "the paper's reason for using \"the well-tested kernel patches\" instead.\n";
  if (!ctx.Write("bench_promotion_policies")) {
    return 1;
  }
  return 0;
}
