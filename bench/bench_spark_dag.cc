// Extension bench: the task-level DAG view of the Spark experiment — what
// Fig. 7's fluid phases look like when decomposed into scheduled tasks with
// stragglers and barriers.
#include <iostream>

#include "src/bench/context.h"
#include "src/core/cxl_explorer.h"

int main(int argc, char** argv) {
  auto ctx = cxl::bench::Context::FromArgs(&argc, argv);

  using namespace cxl;
  using apps::spark::BuildDag;
  using apps::spark::DagScheduler;
  using apps::spark::SparkCluster;
  using apps::spark::SparkConfig;

  const auto& q9 = *apps::spark::FindQuery("Q9");

  PrintSection(std::cout, "Task-level vs fluid-phase model (Q9, deterministic tasks)");
  Table agree({"config", "fluid s", "task-level s", "delta %"});
  for (const auto& [label, cfg] :
       {std::pair{"MMEM", SparkConfig::MmemOnly()}, {"3:1", SparkConfig::Interleave(3, 1)},
        {"1:1", SparkConfig::Interleave(1, 1)}, {"1:3", SparkConfig::Interleave(1, 3)}}) {
    SparkCluster fluid_cluster(cfg);
    const double fluid = fluid_cluster.RunQuery(q9).total_seconds;
    SparkCluster dag_cluster(cfg);
    const double tasks = DagScheduler(dag_cluster).Run(BuildDag(q9, cfg), 0.0).makespan_seconds;
    agree.Row().Cell(label).Cell(fluid, 1).Cell(tasks, 1).Cell(100.0 * (tasks / fluid - 1.0), 1);
  }
  agree.Print(std::cout);

  PrintSection(std::cout, "Straggler sensitivity (Q9 on MMEM, task-duration jitter sweep)");
  Table strag({"jitter", "makespan s", "executor util", "stage-3 max/mean task"});
  SparkCluster cluster(SparkConfig::MmemOnly());
  DagScheduler sched(cluster);
  const auto dag = BuildDag(q9, cluster.config());
  for (double jitter : {0.0, 0.1, 0.2, 0.3, 0.5}) {
    const auto r = sched.Run(dag, jitter, 11);
    strag.Row()
        .Cell(jitter, 2)
        .Cell(r.makespan_seconds, 1)
        .Cell(r.executor_utilization, 3)
        .Cell(r.stages[2].max_task_seconds / r.stages[2].mean_task_seconds, 2);
  }
  strag.Print(std::cout);

  PrintSection(std::cout, "Task granularity (Q9 on MMEM, 30% jitter)");
  Table gran({"task waves", "makespan s", "executor util"});
  const int execs = cluster.config().total_executors / cluster.config().servers;
  for (int waves : {1, 2, 4, 8}) {
    const auto r = sched.Run(BuildDag(q9, cluster.config(), waves * execs), 0.3, 11);
    gran.Row()
        .Cell(static_cast<uint64_t>(waves))
        .Cell(r.makespan_seconds, 1)
        .Cell(r.executor_utilization, 3);
  }
  gran.Print(std::cout);
  std::cout << "Reading: finer tasks smooth stragglers across the barrier — the standard\n"
               "Spark tuning advice, emerging from the same memory model as Fig. 7.\n";
  if (!ctx.Write("bench_spark_dag")) {
    return 1;
  }
  return 0;
}
