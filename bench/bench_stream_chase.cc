// Extension bench: STREAM triad and pointer-chase characterization of every
// memory path — the standard microbenchmark pair complementing the paper's
// MLC study. Streaming kernels hide most of CXL's latency; dependent-load
// chains pay all of it — the two poles every result in §4/§5 interpolates
// between.
#include <iostream>

#include "src/bench/context.h"
#include "src/core/cxl_explorer.h"
#include "src/workload/stream.h"

int main(int argc, char** argv) {
  auto ctx = cxl::bench::Context::FromArgs(&argc, argv);

  using namespace cxl;

  PrintSection(std::cout, "STREAM triad (16 threads) and pointer chase, per path");
  Table t({"path", "triad GB/s", "triad vs MMEM", "chase ns/hop", "chase vs MMEM"});
  const auto dram_triad = workload::RunStreamTriad(mem::GetProfile(mem::MemoryPath::kLocalDram));
  const auto dram_chase = workload::RunPointerChase(mem::GetProfile(mem::MemoryPath::kLocalDram));
  for (auto path : {mem::MemoryPath::kLocalDram, mem::MemoryPath::kRemoteDram,
                    mem::MemoryPath::kLocalCxl, mem::MemoryPath::kRemoteCxl}) {
    const auto triad = workload::RunStreamTriad(mem::GetProfile(path));
    const auto chase = workload::RunPointerChase(mem::GetProfile(path));
    t.Row()
        .Cell(mem::PathLabel(path))
        .Cell(triad.triad_gbps, 1)
        .Cell(triad.triad_gbps / dram_triad.triad_gbps, 2)
        .Cell(chase.ns_per_hop, 1)
        .Cell(chase.ns_per_hop / dram_chase.ns_per_hop, 2);
  }
  t.Print(std::cout);
  std::cout << "Reading: CXL keeps ~"
            << FormatDouble(100.0 * workload::RunStreamTriad(
                                        mem::GetProfile(mem::MemoryPath::kLocalCxl))
                                        .triad_gbps /
                                dram_triad.triad_gbps,
                            0)
            << "% of DRAM's streaming bandwidth but pays the full 2.4-2.6x latency on\n"
               "dependent chains — why §4's latency-bound KeyDB suffers more than §5's\n"
               "bandwidth-bound LLM decode benefits.\n";

  PrintSection(std::cout, "Pointer-chase MLP sweep on CXL (chains = memory-level parallelism)");
  Table mlp({"parallel chains", "ns/hop", "aggregate GB/s"});
  for (int chains : {1, 4, 16, 64, 256, 1024}) {
    workload::PointerChaseConfig cfg;
    cfg.parallel_chains = chains;
    const auto r = workload::RunPointerChase(mem::GetProfile(mem::MemoryPath::kLocalCxl), cfg);
    mlp.Row().Cell(static_cast<uint64_t>(chains)).Cell(r.ns_per_hop, 1).Cell(r.achieved_gbps, 2);
  }
  mlp.Print(std::cout);

  PrintSection(std::cout, "Thread-scaling of triad per path");
  Table scale({"threads", "MMEM GB/s", "CXL GB/s", "CXL-r GB/s"});
  for (int threads : {1, 2, 4, 8, 16, 32}) {
    workload::StreamConfig cfg;
    cfg.threads = threads;
    scale.Row().Cell(static_cast<uint64_t>(threads));
    for (auto path : {mem::MemoryPath::kLocalDram, mem::MemoryPath::kLocalCxl,
                      mem::MemoryPath::kRemoteCxl}) {
      scale.Cell(workload::RunStreamTriad(mem::GetProfile(path), cfg).triad_gbps, 1);
    }
  }
  scale.Print(std::cout);
  if (!ctx.Write("bench_stream_chase")) {
    return 1;
  }
  return 0;
}
