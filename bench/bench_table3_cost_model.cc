// Regenerates the §6 Abstract Cost Model results (Table 3 parameters):
// the worked example (N_cxl/N_baseline = 67.29%, TCO saving = 25.98%) and
// sensitivity sweeps over R_d, R_c, C and R_t, plus the extended model with
// fixed CXL infrastructure costs.
#include <iostream>
#include <vector>

#include "src/bench/context.h"
#include "src/core/cxl_explorer.h"

int main(int argc, char** argv) {
  auto ctx = cxl::bench::Context::FromArgs(&argc, argv);

  using namespace cxl;
  using cost::AbstractCostModel;
  using cost::CostModelParams;

  PrintSection(std::cout, "Table 3 worked example");
  AbstractCostModel example(CostModelParams{10.0, 8.0, 2.0, 1.1});
  Table ex({"quantity", "model", "paper"});
  ex.Row().Cell("N_cxl / N_baseline %").Cell(100.0 * example.ServerRatio(), 2).Cell("67.29");
  ex.Row().Cell("TCO saving %").Cell(100.0 * example.TcoSaving(), 2).Cell("25.98");
  ex.Print(std::cout);

  PrintSection(std::cout, "Sensitivity: R_c (CXL throughput) sweep, R_d=10, C=2, R_t=1.1");
  Table rc({"R_c", "server ratio %", "TCO saving %"});
  for (double v : {2.0, 4.0, 6.0, 8.0, 10.0}) {
    AbstractCostModel m(CostModelParams{10.0, v, 2.0, 1.1});
    rc.Row().Cell(v, 1).Cell(100.0 * m.ServerRatio(), 2).Cell(100.0 * m.TcoSaving(), 2);
  }
  rc.Print(std::cout);

  PrintSection(std::cout, "Sensitivity: R_d (MMEM throughput) sweep, R_c=0.8*R_d, C=2, R_t=1.1");
  Table rd({"R_d", "server ratio %", "TCO saving %"});
  for (double v : {2.0, 5.0, 10.0, 20.0, 50.0}) {
    AbstractCostModel m(CostModelParams{v, 0.8 * v, 2.0, 1.1});
    rd.Row().Cell(v, 1).Cell(100.0 * m.ServerRatio(), 2).Cell(100.0 * m.TcoSaving(), 2);
  }
  rd.Print(std::cout);

  PrintSection(std::cout, "Sensitivity: C (MMEM:CXL capacity ratio) sweep");
  Table c({"C", "server ratio %", "TCO saving %"});
  for (double v : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    AbstractCostModel m(CostModelParams{10.0, 8.0, v, 1.1});
    c.Row().Cell(v, 1).Cell(100.0 * m.ServerRatio(), 2).Cell(100.0 * m.TcoSaving(), 2);
  }
  c.Print(std::cout);

  PrintSection(std::cout, "Sensitivity: R_t (relative server TCO) sweep");
  Table rt({"R_t", "TCO saving %"});
  for (double v : {1.0, 1.1, 1.2, 1.3, 1.48}) {
    AbstractCostModel m(CostModelParams{10.0, 8.0, 2.0, v});
    rt.Row().Cell(v, 2).Cell(100.0 * m.TcoSaving(), 2);
  }
  rt.Print(std::cout);
  std::cout << "break-even R_t: " << FormatDouble(1.0 / example.ServerRatio(), 3)
            << " (CXL server may cost up to this much, relative, before savings vanish)\n";

  PrintSection(std::cout, "Extended model: fixed CXL infrastructure adders (§6)");
  Table fx({"fixed overhead (frac of baseline TCO)", "effective R_t", "TCO saving %"});
  for (double v : {0.0, 0.05, 0.1, 0.2, 0.35}) {
    cost::ExtendedCostModel m(cost::ExtendedCostParams{CostModelParams{10.0, 8.0, 2.0, 1.1}, v});
    fx.Row().Cell(v, 2).Cell(m.EffectiveRelativeTco(), 2).Cell(100.0 * m.TcoSaving(), 2);
  }
  fx.Print(std::cout);

  PrintSection(std::cout, "Multi-application fleet (the extension §6 leaves open)");
  {
    std::vector<cost::AppClass> fleet = {
        cost::AppClass{"spark-sql", cost::CostModelParams{10.0, 8.0, 2.0, 1.1}, 100.0},
        cost::AppClass{"keydb", cost::CostModelParams{1.9, 1.45, 2.0, 1.1}, 50.0},
        cost::AppClass{"batch-etl", cost::CostModelParams{4.0, 3.0, 2.0, 1.1}, 30.0},
    };
    Table ma({"deployment", "fleet servers", "fleet TCO saving %"});
    for (const auto& [label, discount] :
         {std::pair{"per-server CXL", 0.0}, {"pooled CXL (16-host, -34% adder)", 0.34}}) {
      cost::MultiAppCostModel model(fleet, 1.1, discount);
      const auto plan = model.PlanSelective();
      ma.Row().Cell(label).Cell(plan.total_cxl_servers, 1)
          .Cell(100.0 * plan.fleet_tco_saving, 2);
    }
    ma.Print(std::cout);
    cost::MultiAppCostModel model(fleet, 1.1);
    Table per({"class", "baseline servers", "CXL servers", "class saving %"});
    for (const auto& row : model.PlanSelective().apps) {
      per.Row().Cell(row.name).Cell(row.baseline_servers, 0).Cell(row.cxl_servers, 1)
          .Cell(100.0 * row.tco_saving, 2);
    }
    per.Print(std::cout);
  }

  PrintSection(std::cout, "Model fed with this repo's measured KeyDB ratios");
  // Microbenchmark-style inputs from the Fig. 5 simulation: MMEM ~1.9x the
  // all-spill config, CXL-ish (1:3) ~1.3x. Scaled to SSD-relative terms.
  AbstractCostModel measured(CostModelParams{1.90, 1.45, 2.0, 1.1});
  std::cout << "server ratio: " << FormatDouble(100.0 * measured.ServerRatio(), 1)
            << "%, TCO saving: " << FormatDouble(100.0 * measured.TcoSaving(), 1) << "%\n";
  if (!ctx.Write("bench_table3_cost_model")) {
    return 1;
  }
  return 0;
}
