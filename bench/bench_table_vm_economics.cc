// Regenerates Table 2 (Intel processor series: vCPU growth vs memory
// capacity) and the §4.3 elastic-compute economics.
#include <iostream>

#include "src/bench/context.h"
#include "src/core/cxl_explorer.h"

int main(int argc, char** argv) {
  auto ctx = cxl::bench::Context::FromArgs(&argc, argv);

  using namespace cxl;

  PrintSection(std::cout, "Table 2: Intel processor series");
  Table t2({"CPU", "year", "max vCPU", "channels/socket", "max mem TiB", "required (1:4) TiB",
            "gap TiB"});
  for (const auto& p : cost::IntelProcessorSeries()) {
    t2.Row()
        .Cell(p.name)
        .Cell(p.year)
        .Cell(static_cast<uint64_t>(p.max_vcpu_per_server))
        .Cell(p.memory_channels)
        .Cell(p.max_memory_tib, 1)
        .Cell(p.required_memory_tib, 2)
        .Cell(p.required_memory_tib - p.max_memory_tib, 2);
  }
  t2.Print(std::cout);
  std::cout << "(Sierra Forest: 1152 vCPUs need "
            << FormatDouble(cost::RequiredMemoryTiB(1152), 1)
            << " TiB at 1:4 but the board tops out at 4 TiB -> stranded vCPUs)\n";

  PrintSection(std::cout, "§4.3.2 worked example: 1:3 server, 20% discount on CXL instances");
  cost::VmEconomics econ(cost::VmEconomicsParams{});
  Table rev({"quantity", "value", "paper"});
  rev.Row().Cell("stranded vCPUs %").Cell(100.0 * econ.StrandedVcpuFraction(), 1).Cell("25");
  rev.Row().Cell("revenue improvement %").Cell(100.0 * econ.RevenueImprovement(), 2)
      .Cell("26.77 (20/75)");
  rev.Print(std::cout);

  PrintSection(std::cout, "Sweep: revenue improvement vs provisioned GiB/vCPU");
  Table sweep({"actual GiB/vCPU", "stranded %", "improvement %"});
  for (double gib : {1.0, 2.0, 2.5, 3.0, 3.5, 4.0}) {
    cost::VmEconomics e(cost::VmEconomicsParams{4.0, gib, 0.20, 0.125});
    sweep.Row()
        .Cell(gib, 1)
        .Cell(100.0 * e.StrandedVcpuFraction(), 1)
        .Cell(100.0 * e.RevenueImprovement(), 2);
  }
  sweep.Print(std::cout);

  PrintSection(std::cout, "Sweep: revenue improvement vs CXL instance discount (1:3 server)");
  Table disc({"discount %", "improvement %"});
  for (double d : {0.0, 0.1, 0.125, 0.2, 0.3, 0.5}) {
    cost::VmEconomics e(cost::VmEconomicsParams{4.0, 3.0, d, 0.125});
    disc.Row().Cell(100.0 * d, 1).Cell(100.0 * e.RevenueImprovement(), 2);
  }
  disc.Print(std::cout);
  if (!ctx.Write("bench_table_vm_economics")) {
    return 1;
  }
  return 0;
}
