file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_llm_inference.dir/bench_fig10_llm_inference.cc.o"
  "CMakeFiles/bench_fig10_llm_inference.dir/bench_fig10_llm_inference.cc.o.d"
  "bench_fig10_llm_inference"
  "bench_fig10_llm_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_llm_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
