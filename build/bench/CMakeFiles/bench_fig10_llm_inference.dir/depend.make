# Empty dependencies file for bench_fig10_llm_inference.
# This may be replaced when dependencies are built.
