file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_loaded_latency.dir/bench_fig3_loaded_latency.cc.o"
  "CMakeFiles/bench_fig3_loaded_latency.dir/bench_fig3_loaded_latency.cc.o.d"
  "bench_fig3_loaded_latency"
  "bench_fig3_loaded_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_loaded_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
