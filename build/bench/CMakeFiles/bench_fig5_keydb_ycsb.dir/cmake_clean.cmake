file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_keydb_ycsb.dir/bench_fig5_keydb_ycsb.cc.o"
  "CMakeFiles/bench_fig5_keydb_ycsb.dir/bench_fig5_keydb_ycsb.cc.o.d"
  "bench_fig5_keydb_ycsb"
  "bench_fig5_keydb_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_keydb_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
