# Empty dependencies file for bench_fig5_keydb_ycsb.
# This may be replaced when dependencies are built.
