# Empty compiler generated dependencies file for bench_fig7_spark_tpch.
# This may be replaced when dependencies are built.
