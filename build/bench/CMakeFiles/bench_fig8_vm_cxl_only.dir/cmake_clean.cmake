file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_vm_cxl_only.dir/bench_fig8_vm_cxl_only.cc.o"
  "CMakeFiles/bench_fig8_vm_cxl_only.dir/bench_fig8_vm_cxl_only.cc.o.d"
  "bench_fig8_vm_cxl_only"
  "bench_fig8_vm_cxl_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_vm_cxl_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
