# Empty dependencies file for bench_fig8_vm_cxl_only.
# This may be replaced when dependencies are built.
