file(REMOVE_RECURSE
  "CMakeFiles/bench_fpga_vs_asic.dir/bench_fpga_vs_asic.cc.o"
  "CMakeFiles/bench_fpga_vs_asic.dir/bench_fpga_vs_asic.cc.o.d"
  "bench_fpga_vs_asic"
  "bench_fpga_vs_asic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fpga_vs_asic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
