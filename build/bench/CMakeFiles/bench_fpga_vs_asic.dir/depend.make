# Empty dependencies file for bench_fpga_vs_asic.
# This may be replaced when dependencies are built.
