file(REMOVE_RECURSE
  "CMakeFiles/bench_llm_batching.dir/bench_llm_batching.cc.o"
  "CMakeFiles/bench_llm_batching.dir/bench_llm_batching.cc.o.d"
  "bench_llm_batching"
  "bench_llm_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_llm_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
