# Empty compiler generated dependencies file for bench_llm_batching.
# This may be replaced when dependencies are built.
