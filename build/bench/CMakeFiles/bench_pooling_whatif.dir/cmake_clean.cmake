file(REMOVE_RECURSE
  "CMakeFiles/bench_pooling_whatif.dir/bench_pooling_whatif.cc.o"
  "CMakeFiles/bench_pooling_whatif.dir/bench_pooling_whatif.cc.o.d"
  "bench_pooling_whatif"
  "bench_pooling_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pooling_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
