file(REMOVE_RECURSE
  "CMakeFiles/bench_promotion_policies.dir/bench_promotion_policies.cc.o"
  "CMakeFiles/bench_promotion_policies.dir/bench_promotion_policies.cc.o.d"
  "bench_promotion_policies"
  "bench_promotion_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_promotion_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
