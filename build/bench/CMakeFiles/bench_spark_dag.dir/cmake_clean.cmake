file(REMOVE_RECURSE
  "CMakeFiles/bench_spark_dag.dir/bench_spark_dag.cc.o"
  "CMakeFiles/bench_spark_dag.dir/bench_spark_dag.cc.o.d"
  "bench_spark_dag"
  "bench_spark_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spark_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
