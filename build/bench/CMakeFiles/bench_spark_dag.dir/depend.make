# Empty dependencies file for bench_spark_dag.
# This may be replaced when dependencies are built.
