file(REMOVE_RECURSE
  "CMakeFiles/bench_stream_chase.dir/bench_stream_chase.cc.o"
  "CMakeFiles/bench_stream_chase.dir/bench_stream_chase.cc.o.d"
  "bench_stream_chase"
  "bench_stream_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stream_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
