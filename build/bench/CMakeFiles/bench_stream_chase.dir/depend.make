# Empty dependencies file for bench_stream_chase.
# This may be replaced when dependencies are built.
