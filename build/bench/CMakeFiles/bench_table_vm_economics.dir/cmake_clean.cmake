file(REMOVE_RECURSE
  "CMakeFiles/bench_table_vm_economics.dir/bench_table_vm_economics.cc.o"
  "CMakeFiles/bench_table_vm_economics.dir/bench_table_vm_economics.cc.o.d"
  "bench_table_vm_economics"
  "bench_table_vm_economics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_vm_economics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
