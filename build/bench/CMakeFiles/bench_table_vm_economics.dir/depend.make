# Empty dependencies file for bench_table_vm_economics.
# This may be replaced when dependencies are built.
