file(REMOVE_RECURSE
  "CMakeFiles/cxl_lab.dir/cxl_lab.cpp.o"
  "CMakeFiles/cxl_lab.dir/cxl_lab.cpp.o.d"
  "cxl_lab"
  "cxl_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxl_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
