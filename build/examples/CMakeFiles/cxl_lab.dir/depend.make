# Empty dependencies file for cxl_lab.
# This may be replaced when dependencies are built.
