file(REMOVE_RECURSE
  "CMakeFiles/pool_sizing.dir/pool_sizing.cpp.o"
  "CMakeFiles/pool_sizing.dir/pool_sizing.cpp.o.d"
  "pool_sizing"
  "pool_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pool_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
