# Empty compiler generated dependencies file for pool_sizing.
# This may be replaced when dependencies are built.
