
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/tiering_policy_explorer.cpp" "examples/CMakeFiles/tiering_policy_explorer.dir/tiering_policy_explorer.cpp.o" "gcc" "examples/CMakeFiles/tiering_policy_explorer.dir/tiering_policy_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cxl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pool/CMakeFiles/cxl_pool.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/cxl_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/kv/CMakeFiles/cxl_apps_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/spark/CMakeFiles/cxl_apps_spark.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/llm/CMakeFiles/cxl_apps_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cxl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/cxl_os.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cxl_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cxl_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cxl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cxl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
