file(REMOVE_RECURSE
  "CMakeFiles/tiering_policy_explorer.dir/tiering_policy_explorer.cpp.o"
  "CMakeFiles/tiering_policy_explorer.dir/tiering_policy_explorer.cpp.o.d"
  "tiering_policy_explorer"
  "tiering_policy_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiering_policy_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
