# Empty compiler generated dependencies file for tiering_policy_explorer.
# This may be replaced when dependencies are built.
