
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/kv/flash_tier.cc" "src/apps/kv/CMakeFiles/cxl_apps_kv.dir/flash_tier.cc.o" "gcc" "src/apps/kv/CMakeFiles/cxl_apps_kv.dir/flash_tier.cc.o.d"
  "/root/repo/src/apps/kv/kvstore.cc" "src/apps/kv/CMakeFiles/cxl_apps_kv.dir/kvstore.cc.o" "gcc" "src/apps/kv/CMakeFiles/cxl_apps_kv.dir/kvstore.cc.o.d"
  "/root/repo/src/apps/kv/server.cc" "src/apps/kv/CMakeFiles/cxl_apps_kv.dir/server.cc.o" "gcc" "src/apps/kv/CMakeFiles/cxl_apps_kv.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/cxl_os.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cxl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cxl_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cxl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cxl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cxl_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
