file(REMOVE_RECURSE
  "CMakeFiles/cxl_apps_kv.dir/flash_tier.cc.o"
  "CMakeFiles/cxl_apps_kv.dir/flash_tier.cc.o.d"
  "CMakeFiles/cxl_apps_kv.dir/kvstore.cc.o"
  "CMakeFiles/cxl_apps_kv.dir/kvstore.cc.o.d"
  "CMakeFiles/cxl_apps_kv.dir/server.cc.o"
  "CMakeFiles/cxl_apps_kv.dir/server.cc.o.d"
  "libcxl_apps_kv.a"
  "libcxl_apps_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxl_apps_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
