file(REMOVE_RECURSE
  "libcxl_apps_kv.a"
)
