# Empty compiler generated dependencies file for cxl_apps_kv.
# This may be replaced when dependencies are built.
