file(REMOVE_RECURSE
  "CMakeFiles/cxl_apps_llm.dir/inference.cc.o"
  "CMakeFiles/cxl_apps_llm.dir/inference.cc.o.d"
  "CMakeFiles/cxl_apps_llm.dir/serving.cc.o"
  "CMakeFiles/cxl_apps_llm.dir/serving.cc.o.d"
  "libcxl_apps_llm.a"
  "libcxl_apps_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxl_apps_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
