file(REMOVE_RECURSE
  "libcxl_apps_llm.a"
)
