# Empty compiler generated dependencies file for cxl_apps_llm.
# This may be replaced when dependencies are built.
