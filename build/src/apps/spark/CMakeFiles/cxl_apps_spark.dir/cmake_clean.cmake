file(REMOVE_RECURSE
  "CMakeFiles/cxl_apps_spark.dir/cluster.cc.o"
  "CMakeFiles/cxl_apps_spark.dir/cluster.cc.o.d"
  "CMakeFiles/cxl_apps_spark.dir/dag.cc.o"
  "CMakeFiles/cxl_apps_spark.dir/dag.cc.o.d"
  "CMakeFiles/cxl_apps_spark.dir/query.cc.o"
  "CMakeFiles/cxl_apps_spark.dir/query.cc.o.d"
  "libcxl_apps_spark.a"
  "libcxl_apps_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxl_apps_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
