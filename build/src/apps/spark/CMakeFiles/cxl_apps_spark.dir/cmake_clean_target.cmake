file(REMOVE_RECURSE
  "libcxl_apps_spark.a"
)
