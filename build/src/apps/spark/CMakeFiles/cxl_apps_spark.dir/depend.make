# Empty dependencies file for cxl_apps_spark.
# This may be replaced when dependencies are built.
