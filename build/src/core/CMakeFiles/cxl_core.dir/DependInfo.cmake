
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/configs.cc" "src/core/CMakeFiles/cxl_core.dir/configs.cc.o" "gcc" "src/core/CMakeFiles/cxl_core.dir/configs.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/cxl_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/cxl_core.dir/experiment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/kv/CMakeFiles/cxl_apps_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/cxl_os.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/cxl_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cxl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cxl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cxl_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cxl_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
