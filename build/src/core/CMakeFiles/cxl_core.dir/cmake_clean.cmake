file(REMOVE_RECURSE
  "CMakeFiles/cxl_core.dir/configs.cc.o"
  "CMakeFiles/cxl_core.dir/configs.cc.o.d"
  "CMakeFiles/cxl_core.dir/experiment.cc.o"
  "CMakeFiles/cxl_core.dir/experiment.cc.o.d"
  "libcxl_core.a"
  "libcxl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
