file(REMOVE_RECURSE
  "libcxl_core.a"
)
