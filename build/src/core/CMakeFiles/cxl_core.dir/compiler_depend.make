# Empty compiler generated dependencies file for cxl_core.
# This may be replaced when dependencies are built.
