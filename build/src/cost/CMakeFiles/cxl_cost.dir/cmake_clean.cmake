file(REMOVE_RECURSE
  "CMakeFiles/cxl_cost.dir/cost_model.cc.o"
  "CMakeFiles/cxl_cost.dir/cost_model.cc.o.d"
  "CMakeFiles/cxl_cost.dir/multi_app.cc.o"
  "CMakeFiles/cxl_cost.dir/multi_app.cc.o.d"
  "CMakeFiles/cxl_cost.dir/vm_economics.cc.o"
  "CMakeFiles/cxl_cost.dir/vm_economics.cc.o.d"
  "libcxl_cost.a"
  "libcxl_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxl_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
