file(REMOVE_RECURSE
  "libcxl_cost.a"
)
