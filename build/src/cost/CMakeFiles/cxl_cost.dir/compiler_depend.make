# Empty compiler generated dependencies file for cxl_cost.
# This may be replaced when dependencies are built.
