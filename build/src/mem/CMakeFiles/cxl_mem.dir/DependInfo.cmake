
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/access.cc" "src/mem/CMakeFiles/cxl_mem.dir/access.cc.o" "gcc" "src/mem/CMakeFiles/cxl_mem.dir/access.cc.o.d"
  "/root/repo/src/mem/bandwidth_solver.cc" "src/mem/CMakeFiles/cxl_mem.dir/bandwidth_solver.cc.o" "gcc" "src/mem/CMakeFiles/cxl_mem.dir/bandwidth_solver.cc.o.d"
  "/root/repo/src/mem/cxl_link.cc" "src/mem/CMakeFiles/cxl_mem.dir/cxl_link.cc.o" "gcc" "src/mem/CMakeFiles/cxl_mem.dir/cxl_link.cc.o.d"
  "/root/repo/src/mem/profiles.cc" "src/mem/CMakeFiles/cxl_mem.dir/profiles.cc.o" "gcc" "src/mem/CMakeFiles/cxl_mem.dir/profiles.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cxl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cxl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
