file(REMOVE_RECURSE
  "CMakeFiles/cxl_mem.dir/access.cc.o"
  "CMakeFiles/cxl_mem.dir/access.cc.o.d"
  "CMakeFiles/cxl_mem.dir/bandwidth_solver.cc.o"
  "CMakeFiles/cxl_mem.dir/bandwidth_solver.cc.o.d"
  "CMakeFiles/cxl_mem.dir/cxl_link.cc.o"
  "CMakeFiles/cxl_mem.dir/cxl_link.cc.o.d"
  "CMakeFiles/cxl_mem.dir/profiles.cc.o"
  "CMakeFiles/cxl_mem.dir/profiles.cc.o.d"
  "libcxl_mem.a"
  "libcxl_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxl_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
