file(REMOVE_RECURSE
  "libcxl_mem.a"
)
