# Empty dependencies file for cxl_mem.
# This may be replaced when dependencies are built.
