
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/bandwidth_aware.cc" "src/os/CMakeFiles/cxl_os.dir/bandwidth_aware.cc.o" "gcc" "src/os/CMakeFiles/cxl_os.dir/bandwidth_aware.cc.o.d"
  "/root/repo/src/os/numa_policy.cc" "src/os/CMakeFiles/cxl_os.dir/numa_policy.cc.o" "gcc" "src/os/CMakeFiles/cxl_os.dir/numa_policy.cc.o.d"
  "/root/repo/src/os/page_allocator.cc" "src/os/CMakeFiles/cxl_os.dir/page_allocator.cc.o" "gcc" "src/os/CMakeFiles/cxl_os.dir/page_allocator.cc.o.d"
  "/root/repo/src/os/region.cc" "src/os/CMakeFiles/cxl_os.dir/region.cc.o" "gcc" "src/os/CMakeFiles/cxl_os.dir/region.cc.o.d"
  "/root/repo/src/os/tiering.cc" "src/os/CMakeFiles/cxl_os.dir/tiering.cc.o" "gcc" "src/os/CMakeFiles/cxl_os.dir/tiering.cc.o.d"
  "/root/repo/src/os/vmstat.cc" "src/os/CMakeFiles/cxl_os.dir/vmstat.cc.o" "gcc" "src/os/CMakeFiles/cxl_os.dir/vmstat.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/cxl_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cxl_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cxl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cxl_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
