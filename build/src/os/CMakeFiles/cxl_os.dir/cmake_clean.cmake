file(REMOVE_RECURSE
  "CMakeFiles/cxl_os.dir/bandwidth_aware.cc.o"
  "CMakeFiles/cxl_os.dir/bandwidth_aware.cc.o.d"
  "CMakeFiles/cxl_os.dir/numa_policy.cc.o"
  "CMakeFiles/cxl_os.dir/numa_policy.cc.o.d"
  "CMakeFiles/cxl_os.dir/page_allocator.cc.o"
  "CMakeFiles/cxl_os.dir/page_allocator.cc.o.d"
  "CMakeFiles/cxl_os.dir/region.cc.o"
  "CMakeFiles/cxl_os.dir/region.cc.o.d"
  "CMakeFiles/cxl_os.dir/tiering.cc.o"
  "CMakeFiles/cxl_os.dir/tiering.cc.o.d"
  "CMakeFiles/cxl_os.dir/vmstat.cc.o"
  "CMakeFiles/cxl_os.dir/vmstat.cc.o.d"
  "libcxl_os.a"
  "libcxl_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxl_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
