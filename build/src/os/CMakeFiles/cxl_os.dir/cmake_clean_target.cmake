file(REMOVE_RECURSE
  "libcxl_os.a"
)
