# Empty compiler generated dependencies file for cxl_os.
# This may be replaced when dependencies are built.
