# Empty dependencies file for cxl_os.
# This may be replaced when dependencies are built.
