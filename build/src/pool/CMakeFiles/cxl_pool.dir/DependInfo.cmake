
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pool/memory_pool.cc" "src/pool/CMakeFiles/cxl_pool.dir/memory_pool.cc.o" "gcc" "src/pool/CMakeFiles/cxl_pool.dir/memory_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/cxl_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cxl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cxl_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
