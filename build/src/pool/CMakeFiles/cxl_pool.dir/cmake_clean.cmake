file(REMOVE_RECURSE
  "CMakeFiles/cxl_pool.dir/memory_pool.cc.o"
  "CMakeFiles/cxl_pool.dir/memory_pool.cc.o.d"
  "libcxl_pool.a"
  "libcxl_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxl_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
