file(REMOVE_RECURSE
  "libcxl_pool.a"
)
