# Empty dependencies file for cxl_pool.
# This may be replaced when dependencies are built.
