file(REMOVE_RECURSE
  "CMakeFiles/cxl_sim.dir/channel_sim.cc.o"
  "CMakeFiles/cxl_sim.dir/channel_sim.cc.o.d"
  "CMakeFiles/cxl_sim.dir/event_queue.cc.o"
  "CMakeFiles/cxl_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/cxl_sim.dir/queueing.cc.o"
  "CMakeFiles/cxl_sim.dir/queueing.cc.o.d"
  "libcxl_sim.a"
  "libcxl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
