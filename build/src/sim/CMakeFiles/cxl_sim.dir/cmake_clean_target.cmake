file(REMOVE_RECURSE
  "libcxl_sim.a"
)
