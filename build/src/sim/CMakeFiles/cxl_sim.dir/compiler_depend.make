# Empty compiler generated dependencies file for cxl_sim.
# This may be replaced when dependencies are built.
