file(REMOVE_RECURSE
  "CMakeFiles/cxl_topology.dir/pcm.cc.o"
  "CMakeFiles/cxl_topology.dir/pcm.cc.o.d"
  "CMakeFiles/cxl_topology.dir/platform.cc.o"
  "CMakeFiles/cxl_topology.dir/platform.cc.o.d"
  "libcxl_topology.a"
  "libcxl_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxl_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
