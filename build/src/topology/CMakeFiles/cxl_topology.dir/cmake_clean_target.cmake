file(REMOVE_RECURSE
  "libcxl_topology.a"
)
