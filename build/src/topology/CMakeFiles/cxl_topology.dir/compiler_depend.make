# Empty compiler generated dependencies file for cxl_topology.
# This may be replaced when dependencies are built.
