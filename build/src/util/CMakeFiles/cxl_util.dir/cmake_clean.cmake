file(REMOVE_RECURSE
  "CMakeFiles/cxl_util.dir/config.cc.o"
  "CMakeFiles/cxl_util.dir/config.cc.o.d"
  "CMakeFiles/cxl_util.dir/distribution.cc.o"
  "CMakeFiles/cxl_util.dir/distribution.cc.o.d"
  "CMakeFiles/cxl_util.dir/histogram.cc.o"
  "CMakeFiles/cxl_util.dir/histogram.cc.o.d"
  "CMakeFiles/cxl_util.dir/knobs.cc.o"
  "CMakeFiles/cxl_util.dir/knobs.cc.o.d"
  "CMakeFiles/cxl_util.dir/table.cc.o"
  "CMakeFiles/cxl_util.dir/table.cc.o.d"
  "libcxl_util.a"
  "libcxl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
