file(REMOVE_RECURSE
  "libcxl_util.a"
)
