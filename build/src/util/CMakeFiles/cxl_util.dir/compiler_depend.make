# Empty compiler generated dependencies file for cxl_util.
# This may be replaced when dependencies are built.
