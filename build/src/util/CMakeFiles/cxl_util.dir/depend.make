# Empty dependencies file for cxl_util.
# This may be replaced when dependencies are built.
