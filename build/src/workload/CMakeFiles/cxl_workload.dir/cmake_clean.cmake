file(REMOVE_RECURSE
  "CMakeFiles/cxl_workload.dir/mlc.cc.o"
  "CMakeFiles/cxl_workload.dir/mlc.cc.o.d"
  "CMakeFiles/cxl_workload.dir/stream.cc.o"
  "CMakeFiles/cxl_workload.dir/stream.cc.o.d"
  "CMakeFiles/cxl_workload.dir/trace.cc.o"
  "CMakeFiles/cxl_workload.dir/trace.cc.o.d"
  "CMakeFiles/cxl_workload.dir/ycsb.cc.o"
  "CMakeFiles/cxl_workload.dir/ycsb.cc.o.d"
  "libcxl_workload.a"
  "libcxl_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxl_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
