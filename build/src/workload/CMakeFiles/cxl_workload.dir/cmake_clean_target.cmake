file(REMOVE_RECURSE
  "libcxl_workload.a"
)
