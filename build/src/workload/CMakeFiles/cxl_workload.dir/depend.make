# Empty dependencies file for cxl_workload.
# This may be replaced when dependencies are built.
