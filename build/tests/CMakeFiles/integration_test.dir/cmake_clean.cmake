file(REMOVE_RECURSE
  "CMakeFiles/integration_test.dir/integration/config_matrix_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/config_matrix_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/failure_injection_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/failure_injection_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/fig3_fig4_shapes_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/fig3_fig4_shapes_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/fig5_keydb_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/fig5_keydb_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/fig7_spark_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/fig7_spark_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/fig8_fig10_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/fig8_fig10_test.cc.o.d"
  "integration_test"
  "integration_test.pdb"
  "integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
