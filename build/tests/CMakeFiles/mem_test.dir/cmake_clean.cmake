file(REMOVE_RECURSE
  "CMakeFiles/mem_test.dir/mem/access_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/access_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/bandwidth_solver_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/bandwidth_solver_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/cxl_link_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/cxl_link_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/latency_sampler_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/latency_sampler_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/profile_properties_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/profile_properties_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/profiles_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/profiles_test.cc.o.d"
  "mem_test"
  "mem_test.pdb"
  "mem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
