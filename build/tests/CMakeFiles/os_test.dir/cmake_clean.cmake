file(REMOVE_RECURSE
  "CMakeFiles/os_test.dir/os/allocator_test.cc.o"
  "CMakeFiles/os_test.dir/os/allocator_test.cc.o.d"
  "CMakeFiles/os_test.dir/os/bandwidth_aware_test.cc.o"
  "CMakeFiles/os_test.dir/os/bandwidth_aware_test.cc.o.d"
  "CMakeFiles/os_test.dir/os/hotness_test.cc.o"
  "CMakeFiles/os_test.dir/os/hotness_test.cc.o.d"
  "CMakeFiles/os_test.dir/os/migration_test.cc.o"
  "CMakeFiles/os_test.dir/os/migration_test.cc.o.d"
  "CMakeFiles/os_test.dir/os/numa_policy_test.cc.o"
  "CMakeFiles/os_test.dir/os/numa_policy_test.cc.o.d"
  "CMakeFiles/os_test.dir/os/promotion_test.cc.o"
  "CMakeFiles/os_test.dir/os/promotion_test.cc.o.d"
  "CMakeFiles/os_test.dir/os/tiering_modes_test.cc.o"
  "CMakeFiles/os_test.dir/os/tiering_modes_test.cc.o.d"
  "CMakeFiles/os_test.dir/os/vmstat_test.cc.o"
  "CMakeFiles/os_test.dir/os/vmstat_test.cc.o.d"
  "os_test"
  "os_test.pdb"
  "os_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
