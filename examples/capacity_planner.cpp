// Capacity planner: a what-if tool built on the Abstract Cost Model (§6)
// and the VM economics model (§4.3).
//
// Usage:
//   ./build/examples/capacity_planner [Rd Rc C Rt]
//
// Given the three microbenchmark ratios (throughput with the working set in
// MMEM / CXL / SSD) and the relative cost of a CXL-equipped server, prints
// how many servers a CXL deployment needs, the TCO saving, the break-even
// server cost, and the elastic-compute revenue picture.
#include <cstdlib>
#include <iostream>

#include "src/core/cxl_explorer.h"

int main(int argc, char** argv) {
  using namespace cxl;

  runner::SweepOptions sweep_options;
  sweep_options.jobs = runner::JobsFromArgs(&argc, argv);

  cost::CostModelParams params;  // Defaults: the Table 3 worked example.
  if (argc == 5) {
    params.r_d = std::atof(argv[1]);
    params.r_c = std::atof(argv[2]);
    params.c = std::atof(argv[3]);
    params.r_t = std::atof(argv[4]);
  } else if (argc != 1) {
    std::cerr << "usage: " << argv[0] << " [Rd Rc C Rt]\n";
    return 2;
  }

  cost::AbstractCostModel model(params);
  if (const Status s = model.Validate(); !s.ok()) {
    std::cerr << "invalid parameters: " << s.ToString() << "\n";
    return 2;
  }

  PrintSection(std::cout, "Inputs");
  Table in({"parameter", "value", "meaning"});
  in.Row().Cell("R_d").Cell(params.r_d, 2).Cell("throughput, working set in MMEM (vs SSD=1)");
  in.Row().Cell("R_c").Cell(params.r_c, 2).Cell("throughput, working set in CXL (vs SSD=1)");
  in.Row().Cell("C").Cell(params.c, 2).Cell("MMEM:CXL capacity ratio per CXL server");
  in.Row().Cell("R_t").Cell(params.r_t, 2).Cell("relative TCO of a CXL server");
  in.Print(std::cout);

  PrintSection(std::cout, "Plan");
  Table out({"quantity", "value"});
  out.Row().Cell("servers needed vs baseline %").Cell(100.0 * model.ServerRatio(), 2);
  out.Row().Cell("server reduction %").Cell(100.0 * (1.0 - model.ServerRatio()), 2);
  out.Row().Cell("TCO saving %").Cell(100.0 * model.TcoSaving(), 2);
  out.Row().Cell("break-even R_t").Cell(1.0 / model.ServerRatio(), 3);
  out.Print(std::cout);

  PrintSection(std::cout, "Cluster example: 100-server baseline, W = 2x cluster DRAM");
  // Concrete execution-time check at D = 1 unit of MMEM per server.
  const double n_baseline = 100.0;
  const double working_set = 200.0;
  const double n_cxl = model.ServerRatio() * n_baseline;
  Table cluster({"deployment", "servers", "relative execution time"});
  cluster.Row().Cell("baseline").Cell(n_baseline, 0)
      .Cell(model.BaselineTime(working_set, n_baseline, 1.0), 2);
  cluster.Row().Cell("CXL").Cell(n_cxl, 1).Cell(model.CxlTime(working_set, n_cxl, 1.0), 2);
  cluster.Print(std::cout);

  PrintSection(std::cout, "Fixed CXL infrastructure sensitivity (§6 extension)");
  Table fx({"fixed adder (frac of baseline TCO)", "TCO saving %"});
  // Analytic cells are cheap; the sweep is here as the grid idiom — swap in
  // a denser adder range and it parallelizes for free.
  const std::vector<double> adders = {0.0, 0.05, 0.10, 0.20};
  const auto savings = runner::RunSweep(
      adders,
      [&params](const double& adder, uint64_t /*seed*/) -> StatusOr<double> {
        cost::ExtendedCostModel ext(cost::ExtendedCostParams{params, adder});
        return ext.TcoSaving();
      },
      sweep_options);
  if (!savings.ok()) {
    std::cerr << "sensitivity sweep failed: " << savings.status().ToString() << "\n";
    return 2;
  }
  for (size_t i = 0; i < adders.size(); ++i) {
    fx.Row().Cell(adders[i], 2).Cell(100.0 * (*savings)[i], 2);
  }
  fx.Print(std::cout);

  PrintSection(std::cout, "Elastic-compute view (1:3 server, 20% CXL-instance discount)");
  cost::VmEconomics econ(cost::VmEconomicsParams{});
  std::cout << "stranded vCPUs: " << FormatDouble(100.0 * econ.StrandedVcpuFraction(), 1)
            << "%, revenue improvement with CXL: "
            << FormatDouble(100.0 * econ.RevenueImprovement(), 2) << "%\n";
  return 0;
}
