// cxl_lab: config-file-driven experiment runner.
//
// Describe an experiment in a small `key = value` file and run it — the
// glue that makes this repository usable the way the paper's artifact
// repository is: checked-in configurations, reproducible runs.
//
//   $ cat keydb.lab
//   experiment = keydb
//   config     = 1:1          # Table 1 label
//   workload   = YCSB-A
//   dataset_gib = 16
//   ops        = 150000
//   $ ./build/examples/cxl_lab keydb.lab
//
// Experiments: keydb | vm | spark | llm | mlc | cost.
// Run with no arguments to print a self-test using built-in specs.
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/core/cxl_explorer.h"
#include "src/util/config.h"

namespace {

using namespace cxl;

Status RunKeyDbLab(const Config& cfg) {
  const std::string label = cfg.GetString("config", "MMEM");
  core::CapacityConfig which = core::CapacityConfig::kMmem;
  bool found = false;
  for (core::CapacityConfig c : core::AllCapacityConfigs()) {
    if (core::ConfigLabel(c) == label) {
      which = c;
      found = true;
    }
  }
  if (!found) {
    return Status::InvalidArgument("unknown Table 1 config: " + label);
  }
  const std::string wl = cfg.GetString("workload", "YCSB-C");
  workload::YcsbWorkload workload = workload::YcsbWorkload::kC;
  for (auto w : {workload::YcsbWorkload::kA, workload::YcsbWorkload::kB,
                 workload::YcsbWorkload::kC, workload::YcsbWorkload::kD}) {
    if (workload::YcsbName(w) == wl) {
      workload = w;
    }
  }
  core::KeyDbExperimentOptions opt;
  opt.dataset_bytes = static_cast<uint64_t>(cfg.GetDouble("dataset_gib", 16.0).value_or(16.0) *
                                            static_cast<double>(1ull << 30));
  opt.total_ops = static_cast<uint64_t>(cfg.GetInt("ops", 150'000).value_or(150'000));
  opt.warmup_ops = opt.total_ops / 4;
  opt.env.seed = static_cast<uint64_t>(cfg.GetInt("seed", 1).value_or(1));
  const auto res = core::RunKeyDbExperiment(which, workload, opt);
  if (!res.ok()) {
    return res.status();
  }
  Table t({"config", "workload", "kops/s", "p50 us", "p99 us", "DRAM share"});
  t.Row()
      .Cell(res->config_label)
      .Cell(res->workload_name)
      .Cell(res->server.throughput_kops, 1)
      .Cell(res->server.all_latency_us.p50(), 1)
      .Cell(res->server.all_latency_us.p99(), 1)
      .Cell(res->server.dram_share, 2);
  t.Print(std::cout);
  return Status::Ok();
}

Status RunVmLab(const Config& cfg) {
  core::KeyDbExperimentOptions opt;
  opt.dataset_bytes = static_cast<uint64_t>(cfg.GetDouble("dataset_gib", 12.0).value_or(12.0) *
                                            static_cast<double>(1ull << 30));
  opt.total_ops = static_cast<uint64_t>(cfg.GetInt("ops", 150'000).value_or(150'000));
  opt.warmup_ops = opt.total_ops / 4;
  const auto res = core::RunVmCxlOnlyExperiment(opt);
  if (!res.ok()) {
    return res.status();
  }
  std::cout << "MMEM " << FormatDouble(res->mmem.server.throughput_kops, 1) << " kops/s, CXL "
            << FormatDouble(res->cxl.server.throughput_kops, 1) << " kops/s, penalty "
            << FormatDouble(100.0 * res->throughput_penalty, 1) << "%\n";
  return Status::Ok();
}

Status RunSparkLab(const Config& cfg) {
  const std::string qname = cfg.GetString("query", "Q7");
  const auto* query = apps::spark::FindQuery(qname);
  if (query == nullptr) {
    return Status::InvalidArgument("unknown query: " + qname);
  }
  const std::string mode = cfg.GetString("config", "MMEM");
  apps::spark::SparkConfig scfg;
  if (mode == "MMEM") {
    scfg = apps::spark::SparkConfig::MmemOnly();
  } else if (mode == "Hot-Promote") {
    scfg = apps::spark::SparkConfig::HotPromote();
  } else if (mode == "MMEM-SSD-0.2") {
    scfg = apps::spark::SparkConfig::Spill(0.8);
  } else if (mode == "MMEM-SSD-0.4") {
    scfg = apps::spark::SparkConfig::Spill(0.6);
  } else {
    const size_t colon = mode.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("unknown spark config: " + mode);
    }
    scfg = apps::spark::SparkConfig::Interleave(std::atoi(mode.c_str()),
                                                std::atoi(mode.c_str() + colon + 1));
  }
  apps::spark::SparkCluster cluster(scfg);
  const auto r = cluster.RunQuery(*query);
  Table t({"query", "config", "total s", "compute s", "shuffle s", "spilled GB"});
  t.Row()
      .Cell(qname)
      .Cell(mode)
      .Cell(r.total_seconds, 1)
      .Cell(r.compute_seconds, 1)
      .Cell(r.ShuffleSeconds(), 1)
      .Cell(r.spilled_bytes / 1e9, 1);
  t.Print(std::cout);
  return Status::Ok();
}

Status RunLlmLab(const Config& cfg) {
  apps::llm::LlmInferenceSim sim;
  const std::string placement_str = cfg.GetString("placement", "MMEM");
  apps::llm::LlmPlacement placement = apps::llm::LlmPlacement::MmemOnly();
  const size_t colon = placement_str.find(':');
  if (colon != std::string::npos) {
    placement = apps::llm::LlmPlacement::Interleave(std::atoi(placement_str.c_str()),
                                                    std::atoi(placement_str.c_str() + colon + 1));
  }
  const int threads = static_cast<int>(cfg.GetInt("threads", 48).value_or(48));
  const auto pt = sim.Solve(placement, threads);
  std::cout << placement.label << " @ " << threads
            << " threads: " << FormatDouble(pt.serving_rate_tokens_s, 1) << " tokens/s, "
            << FormatDouble(pt.mem_bandwidth_gbps, 1) << " GB/s\n";
  return Status::Ok();
}

Status RunMlcLab(const Config& cfg) {
  const std::string path_str = cfg.GetString("path", "CXL");
  mem::MemoryPath path = mem::MemoryPath::kLocalCxl;
  for (auto p : {mem::MemoryPath::kLocalDram, mem::MemoryPath::kRemoteDram,
                 mem::MemoryPath::kLocalCxl, mem::MemoryPath::kRemoteCxl}) {
    if (mem::PathLabel(p) == path_str) {
      path = p;
    }
  }
  workload::MlcBenchmark mlc(mem::GetProfile(path));
  Table t({"offered GB/s", "achieved GB/s", "latency ns"});
  for (const auto& pt : mlc.LoadedLatencySweep(mem::AccessMix::ReadOnly(), 10)) {
    t.Row().Cell(pt.offered_gbps, 1).Cell(pt.achieved_gbps, 1).Cell(pt.latency_ns, 1);
  }
  t.Print(std::cout);
  return Status::Ok();
}

Status RunCostLab(const Config& cfg) {
  cost::CostModelParams params;
  params.r_d = cfg.GetDouble("rd", 10.0).value_or(10.0);
  params.r_c = cfg.GetDouble("rc", 8.0).value_or(8.0);
  params.c = cfg.GetDouble("c", 2.0).value_or(2.0);
  params.r_t = cfg.GetDouble("rt", 1.1).value_or(1.1);
  cost::AbstractCostModel model(params);
  if (const Status s = model.Validate(); !s.ok()) {
    return s;
  }
  std::cout << "server ratio " << FormatDouble(100.0 * model.ServerRatio(), 2) << "%, TCO saving "
            << FormatDouble(100.0 * model.TcoSaving(), 2) << "%\n";
  return Status::Ok();
}

Status RunLab(const Config& cfg) {
  const std::string experiment = cfg.GetString("experiment");
  if (experiment == "keydb") {
    return RunKeyDbLab(cfg);
  }
  if (experiment == "vm") {
    return RunVmLab(cfg);
  }
  if (experiment == "spark") {
    return RunSparkLab(cfg);
  }
  if (experiment == "llm") {
    return RunLlmLab(cfg);
  }
  if (experiment == "mlc") {
    return RunMlcLab(cfg);
  }
  if (experiment == "cost") {
    return RunCostLab(cfg);
  }
  return Status::InvalidArgument("unknown experiment: '" + experiment +
                                 "' (want keydb|vm|spark|llm|mlc|cost)");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 2;
    }
    const auto cfg = Config::Parse(in);
    if (!cfg.ok()) {
      std::cerr << "bad spec: " << cfg.status().ToString() << "\n";
      return 2;
    }
    if (const Status s = RunLab(*cfg); !s.ok()) {
      std::cerr << "experiment failed: " << s.ToString() << "\n";
      return 1;
    }
    return 0;
  }

  // Self-test: one built-in spec per experiment family.
  const char* kSpecs[] = {
      "experiment = keydb\nconfig = 1:1\nworkload = YCSB-B\ndataset_gib = 8\nops = 80000\n",
      "experiment = spark\nquery = Q7\nconfig = 3:1\n",
      "experiment = llm\nplacement = 3:1\nthreads = 60\n",
      "experiment = mlc\npath = CXL\n",
      "experiment = cost\nrd = 10\nrc = 8\nc = 2\nrt = 1.1\n",
  };
  for (const char* spec : kSpecs) {
    std::cout << "--- spec ---\n" << spec;
    const auto cfg = Config::ParseString(spec);
    if (!cfg.ok() || !RunLab(*cfg).ok()) {
      std::cerr << "self-test failed\n";
      return 1;
    }
  }
  return 0;
}
