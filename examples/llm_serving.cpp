// LLM serving demo (§5): drive the LightLLM-style serving stack (HTTP
// frontend -> router -> CPU backends with KV caches) across interleave
// placements and backend counts, and find the cheapest placement that meets
// a latency SLO at a target load.
#include <iostream>

#include "src/core/cxl_explorer.h"

int main() {
  using namespace cxl;
  using apps::llm::LlmPlacement;
  using apps::llm::ServingRequest;
  using apps::llm::ServingStack;
  using apps::llm::ServingStackConfig;

  const ServingRequest request{/*id=*/1, /*prompt_tokens=*/512, /*output_tokens=*/128};

  PrintSection(std::cout, "Serving-rate scaling: backends x placement (12 threads/backend)");
  const std::vector<LlmPlacement> placements = {
      LlmPlacement::MmemOnly(), LlmPlacement::Interleave(3, 1), LlmPlacement::Interleave(1, 1),
      LlmPlacement::Interleave(1, 3)};
  std::vector<std::string> cols = {"backends"};
  for (const auto& p : placements) {
    cols.push_back(p.label + " tok/s");
  }
  Table scale(cols);
  for (int backends = 1; backends <= 7; ++backends) {
    scale.Row().Cell(static_cast<uint64_t>(backends));
    for (const auto& p : placements) {
      ServingStackConfig cfg;
      cfg.backends = backends;
      cfg.placement = p;
      scale.Cell(ServingStack(cfg).SteadyState(request).tokens_per_second, 1);
    }
  }
  scale.Print(std::cout);

  PrintSection(std::cout, "Request-level view: 5 backends, 500 requests, per-placement");
  Table reqs({"placement", "req/s", "mean decode s", "p99 latency s", "KV cache MB/backend"});
  for (const auto& p : placements) {
    ServingStackConfig cfg;
    cfg.backends = 5;
    cfg.placement = p;
    ServingStack stack(cfg);
    Histogram latency(1e-3, 1e5, 64);
    const auto stats = stack.Drive(request, 500, &latency);
    reqs.Row()
        .Cell(p.label)
        .Cell(stats.requests_per_second, 2)
        .Cell(stats.mean_request_seconds, 2)
        .Cell(latency.p99(), 2)
        .Cell(stats.kv_cache_bytes_per_backend / 1e6, 1);
  }
  reqs.Print(std::cout);

  PrintSection(std::cout, "Placement picker: best placement per backend count");
  Table pick({"backends", "best placement", "tok/s", "vs MMEM-only"});
  for (int backends : {2, 4, 5, 6, 7}) {
    double best = 0.0;
    double mmem = 0.0;
    std::string best_label;
    for (const auto& p : placements) {
      ServingStackConfig cfg;
      cfg.backends = backends;
      cfg.placement = p;
      const double tps = ServingStack(cfg).SteadyState(request).tokens_per_second;
      if (p.mmem_share == 1.0) {
        mmem = tps;
      }
      if (tps > best) {
        best = tps;
        best_label = p.label;
      }
    }
    pick.Row()
        .Cell(static_cast<uint64_t>(backends))
        .Cell(best_label)
        .Cell(best, 1)
        .Cell(FormatDouble(100.0 * (best / mmem - 1.0), 1) + "%");
  }
  pick.Print(std::cout);
  std::cout << "Reading: MMEM-only wins while the DDR channels have headroom; interleaving\n"
               "wins once they saturate (~4 backends = 48 threads, §5.2).\n";
  return 0;
}
