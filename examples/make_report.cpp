// make_report: regenerates the headline paper-vs-measured numbers of
// EXPERIMENTS.md as a markdown table, from live runs. Redirect to a file to
// refresh the documentation's "measured" column:
//
//   ./build/examples/make_report > measured.md
#include <iostream>

#include "src/core/cxl_explorer.h"

namespace {

using namespace cxl;

void Row(const std::string& what, const std::string& paper, const std::string& measured) {
  std::cout << "| " << what << " | " << paper << " | " << measured << " |\n";
}

void Header(const std::string& title) {
  std::cout << "\n## " << title << "\n\n| quantity | paper | measured |\n|---|---|---|\n";
}

std::string Pct(double x, int precision = 1) { return FormatDouble(100.0 * x, precision) + "%"; }

}  // namespace

int main() {
  std::cout << "# Measured headline numbers (live run)\n";

  // --- §3 device anchors ----------------------------------------------------
  Header("§3 device anchors");
  const mem::AccessMix read = mem::AccessMix::ReadOnly();
  const mem::AccessMix two_one = mem::AccessMix::Ratio(2, 1);
  const auto& dram = mem::GetProfile(mem::MemoryPath::kLocalDram);
  const auto& cxl = mem::GetProfile(mem::MemoryPath::kLocalCxl);
  const auto& cxl_r = mem::GetProfile(mem::MemoryPath::kRemoteCxl);
  Row("MMEM idle / read peak", "97 ns / 67 GB/s",
      FormatDouble(dram.IdleLatencyNs(read), 1) + " ns / " +
          FormatDouble(dram.PeakBandwidthGBps(read), 1) + " GB/s");
  Row("CXL idle / 2:1 peak", "250.42 ns / 56.7 GB/s",
      FormatDouble(cxl.IdleLatencyNs(read), 2) + " ns / " +
          FormatDouble(cxl.PeakBandwidthGBps(two_one), 1) + " GB/s");
  Row("CXL-r idle / 2:1 peak", "485 ns / 20.4 GB/s",
      FormatDouble(cxl_r.IdleLatencyNs(read), 0) + " ns / " +
          FormatDouble(cxl_r.PeakBandwidthGBps(two_one), 1) + " GB/s");
  Row("CXL/MMEM latency ratio", "2.4-2.6x",
      FormatDouble(cxl.IdleLatencyNs(read) / dram.IdleLatencyNs(read), 2) + "x");
  Row("ASIC PCIe efficiency (derived from flits)", "73.6%",
      Pct(mem::ComputeLinkEfficiency(mem::AsicLinkConfig()).total, 1));
  Row("MMEM knee (1.5x idle)", "75-83%",
      Pct(dram.MakeQueueModel(read).KneeUtilization(1.5), 0));

  // --- Fig. 5 ----------------------------------------------------------------
  Header("Fig. 5 (KeyDB, reduced scale)");
  core::KeyDbExperimentOptions opt;
  opt.dataset_bytes = 16ull << 30;
  opt.total_ops = 150'000;
  opt.warmup_ops = 40'000;
  const auto mmem = core::RunKeyDbExperiment(core::CapacityConfig::kMmem,
                                             workload::YcsbWorkload::kA, opt);
  auto slowdown = [&](core::CapacityConfig c) {
    const auto r = core::RunKeyDbExperiment(c, workload::YcsbWorkload::kA, opt);
    return mmem->server.throughput_kops / r->server.throughput_kops;
  };
  Row("interleave 3:1 / 1:1 / 1:3 slowdown", "1.2-1.5x",
      FormatDouble(slowdown(core::CapacityConfig::kInterleave31), 2) + "x / " +
          FormatDouble(slowdown(core::CapacityConfig::kInterleave11), 2) + "x / " +
          FormatDouble(slowdown(core::CapacityConfig::kInterleave13), 2) + "x");
  Row("KeyDB-FLASH (0.2 spilled) slowdown", "~1.8x",
      FormatDouble(slowdown(core::CapacityConfig::kMmemSsd02), 2) + "x");
  Row("Hot-Promote slowdown", "\"nearly as well\"",
      FormatDouble(slowdown(core::CapacityConfig::kHotPromote), 2) + "x");

  // --- Fig. 7 ----------------------------------------------------------------
  Header("Fig. 7 (Spark TPC-H)");
  const auto& q9 = *apps::spark::FindQuery("Q9");
  const auto& q5 = *apps::spark::FindQuery("Q5");
  const double base9 = apps::spark::SparkCluster(apps::spark::SparkConfig::MmemOnly())
                           .RunQuery(q9)
                           .total_seconds;
  const double base5 = apps::spark::SparkCluster(apps::spark::SparkConfig::MmemOnly())
                           .RunQuery(q5)
                           .total_seconds;
  const double best = apps::spark::SparkCluster(apps::spark::SparkConfig::Interleave(3, 1))
                          .RunQuery(q5)
                          .total_seconds /
                      base5;
  const double worst = apps::spark::SparkCluster(apps::spark::SparkConfig::Interleave(1, 3))
                           .RunQuery(q9)
                           .total_seconds /
                       base9;
  Row("interleave slowdown range", "1.4x-9.8x",
      FormatDouble(best, 1) + "x-" + FormatDouble(worst, 1) + "x");
  const auto hp = apps::spark::SparkCluster(apps::spark::SparkConfig::HotPromote()).RunQuery(q9);
  Row("Hot-Promote vs MMEM (Q9)", ">1.34x",
      FormatDouble(hp.total_seconds / base9, 2) + "x (" +
          FormatDouble(hp.migrated_bytes / 1e9, 0) + " GB migrated)");

  // --- Fig. 8 ----------------------------------------------------------------
  Header("Fig. 8 / §4.3");
  core::KeyDbExperimentOptions vm_opt;
  vm_opt.dataset_bytes = 12ull << 30;
  vm_opt.total_ops = 150'000;
  vm_opt.warmup_ops = 40'000;
  const auto vm = core::RunVmCxlOnlyExperiment(vm_opt);
  Row("CXL-only throughput penalty", "~12.5%", Pct(vm->throughput_penalty));
  cost::VmEconomics econ(cost::VmEconomicsParams{4.0, 3.0, 0.20, vm->throughput_penalty});
  Row("revenue improvement", "26.77% (20/75)", Pct(econ.RevenueImprovement(), 2));

  // --- Fig. 10 ---------------------------------------------------------------
  Header("Fig. 10 (LLM inference)");
  apps::llm::LlmInferenceSim sim;
  const double g60 = sim.Solve(apps::llm::LlmPlacement::Interleave(3, 1), 60)
                         .serving_rate_tokens_s /
                         sim.Solve(apps::llm::LlmPlacement::MmemOnly(), 60)
                             .serving_rate_tokens_s -
                     1.0;
  const double g72 = sim.Solve(apps::llm::LlmPlacement::Interleave(1, 3), 72)
                         .serving_rate_tokens_s /
                         sim.Solve(apps::llm::LlmPlacement::MmemOnly(), 72)
                             .serving_rate_tokens_s -
                     1.0;
  Row("3:1 vs MMEM at 60 threads", "+95%", "+" + Pct(g60));
  Row("1:3 vs MMEM at 72 threads", "~+14%", "+" + Pct(g72));
  Row("single-backend plateau", "24.2 GB/s @ 24 thr",
      FormatDouble(sim.SingleBackendBandwidthGBps(24), 1) + " GB/s");
  Row("KV-cache bandwidth floor/plateau", "12 / ~21 GB/s",
      FormatDouble(sim.KvCacheBandwidthGBps(0.0), 1) + " / " +
          FormatDouble(sim.KvCacheBandwidthGBps(64e9), 1) + " GB/s");

  // --- §6 --------------------------------------------------------------------
  Header("§6 cost model");
  cost::AbstractCostModel model(cost::CostModelParams{10.0, 8.0, 2.0, 1.1});
  Row("N_cxl/N_baseline", "67.29%", Pct(model.ServerRatio(), 2));
  Row("TCO saving", "25.98%", Pct(model.TcoSaving(), 2));
  return 0;
}
