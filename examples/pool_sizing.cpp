// Pool sizing (§7.1 extension): size a CXL 2.0 memory pool for a rack of
// hosts, check the lease mechanics against a bursty demand replay, and fold
// the capacity saving into the cost model.
//
// Usage: ./build/examples/pool_sizing [hosts mean_gib cv]
#include <cstdlib>
#include <iostream>

#include "src/core/cxl_explorer.h"
#include "src/pool/memory_pool.h"

int main(int argc, char** argv) {
  using namespace cxl;

  pool::PoolingEconomicsConfig econ_cfg;
  if (argc == 4) {
    econ_cfg.hosts = std::atoi(argv[1]);
    econ_cfg.mean_demand_gib = std::atof(argv[2]);
    econ_cfg.demand_cv = std::atof(argv[3]);
  } else if (argc != 1) {
    std::cerr << "usage: " << argv[0] << " [hosts mean_gib cv]\n";
    return 2;
  }
  if (econ_cfg.hosts < 1 || econ_cfg.hosts > 16) {
    std::cerr << "CXL 2.0 supports 1-16 hosts per pooled device\n";
    return 2;
  }

  PrintSection(std::cout, "Sizing");
  const auto econ = pool::EstimatePoolingEconomics(econ_cfg);
  Table sizing({"quantity", "value"});
  sizing.Row().Cell("hosts").Cell(static_cast<uint64_t>(econ_cfg.hosts));
  sizing.Row().Cell("mean demand / host (GiB)").Cell(econ_cfg.mean_demand_gib, 1);
  sizing.Row().Cell("stand-alone p99 provision / host (GiB)").Cell(econ.per_host_provision_gib, 1);
  sizing.Row().Cell("pooled p99 provision, total (GiB)").Cell(econ.pooled_provision_gib, 1);
  sizing.Row().Cell("capacity saving %").Cell(100.0 * econ.capacity_saving, 1);
  sizing.Print(std::cout);

  // Validate the sizing against lease churn at the recommended capacity.
  PrintSection(std::cout, "Lease-churn validation at the recommended pool size");
  pool::PoolConfig pcfg;
  pcfg.capacity_bytes = static_cast<uint64_t>(econ.pooled_provision_gib) << 30;
  pcfg.max_hosts = 16;
  pool::CxlMemoryPool mem_pool(pcfg);
  pool::PoolChurnConfig churn_cfg;
  churn_cfg.hosts = econ_cfg.hosts;
  churn_cfg.mean_demand_gib = econ_cfg.mean_demand_gib;
  churn_cfg.demand_cv = econ_cfg.demand_cv;
  churn_cfg.steps = 20'000;
  const auto churn_result = pool::SimulatePoolChurn(mem_pool, churn_cfg);
  Table churn({"metric", "value"});
  churn.Row().Cell("mean utilization").Cell(churn_result.mean_utilization, 3);
  churn.Row().Cell("denied grow-requests %").Cell(100.0 * churn_result.denial_rate, 2);
  churn.Print(std::cout);
  std::cout << "A denial means a host briefly runs at its previous lease — the p99 sizing\n"
               "keeps that rare; resize upward if the denial rate matters for your SLO.\n";

  PrintSection(std::cout, "Performance cost of pooling (switch hop)");
  const mem::AccessMix read = mem::AccessMix::ReadOnly();
  std::cout << "direct CXL: " << FormatDouble(
                   mem::GetProfile(mem::MemoryPath::kLocalCxl).IdleLatencyNs(read), 1)
            << " ns, pooled CXL: "
            << FormatDouble(pool::PooledCxlProfile().IdleLatencyNs(read), 1)
            << " ns (+2x" << FormatDouble(pool::kCxlSwitchHopNs, 0) << " ns switch hops)\n";
  return 0;
}
