// Quickstart: the 60-second tour of cxl-explorer.
//
//   1. Ask the calibrated device models a microbenchmark question
//      ("what does CXL latency/bandwidth look like?", §3).
//   2. Run one KeyDB YCSB experiment in two placements (MMEM vs 1:1
//      interleave) and compare throughput/tails (§4.1).
//   3. Feed the measured ratios into the Abstract Cost Model (§6).
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "src/core/cxl_explorer.h"

int main() {
  using namespace cxl;

  // --- 1. Microbenchmark the device models ---------------------------------
  std::cout << "== 1. Device characteristics (calibrated to the paper's ASIC) ==\n";
  Table micro({"path", "idle ns", "peak GB/s (read)", "peak GB/s (2:1)"});
  for (auto path : {mem::MemoryPath::kLocalDram, mem::MemoryPath::kRemoteDram,
                    mem::MemoryPath::kLocalCxl, mem::MemoryPath::kRemoteCxl}) {
    const auto& prof = mem::GetProfile(path);
    micro.Row()
        .Cell(mem::PathLabel(path))
        .Cell(prof.IdleLatencyNs(mem::AccessMix::ReadOnly()), 1)
        .Cell(prof.PeakBandwidthGBps(mem::AccessMix::ReadOnly()), 1)
        .Cell(prof.PeakBandwidthGBps(mem::AccessMix::Ratio(2, 1)), 1);
  }
  micro.Print(std::cout);

  // --- 2. KeyDB under two placements ----------------------------------------
  std::cout << "\n== 2. KeyDB YCSB-A: MMEM vs 1:1 MMEM/CXL interleave ==\n";
  core::KeyDbExperimentOptions opt;
  opt.dataset_bytes = 16ull << 30;  // Scaled-down working set for a demo.
  opt.total_ops = 120'000;
  opt.warmup_ops = 30'000;

  const auto mmem = core::RunKeyDbExperiment(core::CapacityConfig::kMmem,
                                             workload::YcsbWorkload::kA, opt);
  const auto inter = core::RunKeyDbExperiment(core::CapacityConfig::kInterleave11,
                                              workload::YcsbWorkload::kA, opt);
  if (!mmem.ok() || !inter.ok()) {
    std::cerr << "experiment failed: "
              << (mmem.ok() ? inter.status().ToString() : mmem.status().ToString()) << "\n";
    return 1;
  }
  Table kv({"config", "kops/s", "p50 us", "p99 us", "DRAM share"});
  for (const auto* r : {&*mmem, &*inter}) {
    kv.Row()
        .Cell(r->config_label)
        .Cell(r->server.throughput_kops, 1)
        .Cell(r->server.all_latency_us.p50(), 1)
        .Cell(r->server.all_latency_us.p99(), 1)
        .Cell(r->server.dram_share, 2);
  }
  kv.Print(std::cout);
  const double slowdown = mmem->server.throughput_kops / inter->server.throughput_kops;
  std::cout << "interleave 1:1 slowdown vs MMEM: " << FormatDouble(slowdown, 2)
            << "x  (paper band: 1.2-1.5x)\n";

  // --- 3. Cost model --------------------------------------------------------
  std::cout << "\n== 3. Abstract Cost Model (Table 3 example) ==\n";
  cost::AbstractCostModel model(cost::CostModelParams{10.0, 8.0, 2.0, 1.1});
  std::cout << "N_cxl/N_baseline = " << FormatDouble(100.0 * model.ServerRatio(), 2)
            << "%  (paper: 67.29%)\n";
  std::cout << "TCO saving       = " << FormatDouble(100.0 * model.TcoSaving(), 2)
            << "%  (paper: 25.98%)\n";
  return 0;
}
