// Tiering-policy explorer: how the kernel knobs from §2.3 change a KeyDB
// workload's behaviour on tiered DRAM+CXL memory.
//
// Sweeps the promotion rate limit
// (kernel.numa_balancing_promote_rate_limit_MBps) and the interleave ratio
// for a Zipfian KV workload, printing throughput, migration volume and the
// final DRAM share — the trade-off the paper's Hot-Promote results hinge on
// (fast enough to capture the hot set, slow enough not to thrash).
#include <iostream>

#include "src/core/cxl_explorer.h"

namespace {

using namespace cxl;

core::KeyDbExperimentOptions Options() {
  core::KeyDbExperimentOptions opt;
  opt.dataset_bytes = 8ull << 30;
  opt.total_ops = 150'000;
  opt.warmup_ops = 40'000;
  return opt;
}

// Hot-Promote run with an explicit rate limit (MB/s).
StatusOr<apps::kv::KvServerSim::Result> RunWithRateLimit(double rate_limit_mbps) {
  const auto opt = Options();
  topology::Platform platform = core::MakeHotPromotePlatform(opt.dataset_bytes);
  os::PageAllocator allocator(platform, 16ull << 10);
  os::TieringConfig tc = core::DefaultTieringConfig();
  tc.promote_rate_limit_mbps = rate_limit_mbps;
  os::TieredMemory tiering(allocator, tc);

  apps::kv::KvStoreConfig store_cfg;
  store_cfg.record_count = opt.dataset_bytes / opt.value_bytes;
  const auto setup = core::MakeCapacitySetup(core::CapacityConfig::kHotPromote, platform);
  auto store = apps::kv::KvStore::Create(allocator, setup.policy, store_cfg, &tiering);
  if (!store.ok()) {
    return store.status();
  }
  workload::YcsbGenerator gen(workload::YcsbWorkload::kB, store_cfg.record_count, opt.env.seed);
  apps::kv::KvServerConfig scfg;
  scfg.total_ops = opt.total_ops;
  scfg.warmup_ops = opt.warmup_ops;
  apps::kv::KvServerSim sim(platform, *store, gen, scfg, &tiering);
  auto result = sim.Run();
  store->Free();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  runner::SweepOptions sweep_options;
  sweep_options.jobs = runner::JobsFromArgs(&argc, argv);

  PrintSection(std::cout, "Promotion rate limit sweep (Hot-Promote, YCSB-B, DRAM = dataset/2)");
  Table sweep({"rate limit MB/s", "kops/s", "p99 us", "migrated GB", "DRAM share"});
  const std::vector<double> limits = {1.0, 8.0, 64.0, 1024.0, 65536.0};
  const auto limit_rows = runner::RunSweep(
      limits,
      [](const double& limit, uint64_t /*seed*/) { return RunWithRateLimit(limit); },
      sweep_options);
  if (!limit_rows.ok()) {
    std::cerr << "sweep failed: " << limit_rows.status().ToString() << "\n";
    return 1;
  }
  for (size_t i = 0; i < limits.size(); ++i) {
    const auto& r = (*limit_rows)[i];
    sweep.Row()
        .Cell(limits[i], 0)
        .Cell(r.throughput_kops, 1)
        .Cell(r.all_latency_us.p99(), 0)
        .Cell(r.migrated_bytes / 1e9, 2)
        .Cell(r.dram_share, 2);
  }
  sweep.Print(std::cout);
  std::cout << "Reading: a starved limit (1-8 MB/s) cannot capture the Zipfian hot set and\n"
               "throughput stays at 1:1-interleave levels; beyond ~64 MB/s the hot set\n"
               "promotes within warmup and higher limits change nothing (§4.1.2).\n";

  PrintSection(std::cout, "Static interleave ratio sweep (no daemon, YCSB-B)");
  Table inter({"policy", "kops/s", "p99 us", "DRAM share"});
  const std::vector<core::CapacityConfig> configs = {
      core::CapacityConfig::kMmem, core::CapacityConfig::kInterleave31,
      core::CapacityConfig::kInterleave11, core::CapacityConfig::kInterleave13};
  const auto inter_rows = runner::RunSweep(
      configs,
      [](const core::CapacityConfig& config, uint64_t /*seed*/) {
        return core::RunKeyDbExperiment(config, workload::YcsbWorkload::kB, Options());
      },
      sweep_options);
  if (!inter_rows.ok()) {
    std::cerr << "experiment failed: " << inter_rows.status().ToString() << "\n";
    return 1;
  }
  for (const auto& res : *inter_rows) {
    inter.Row()
        .Cell(res.config_label)
        .Cell(res.server.throughput_kops, 1)
        .Cell(res.server.all_latency_us.p99(), 0)
        .Cell(res.server.dram_share, 2);
  }
  inter.Print(std::cout);
  return 0;
}
