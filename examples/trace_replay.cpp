// Trace record & replay: capture a live YCSB stream into a CSV trace, reload
// it, and re-run the KeyDB experiment from the trace — demonstrating that
// experiments are reproducible artefacts (the spirit of the paper's
// open-sourced data and configurations).
//
// Usage: ./build/examples/trace_replay [trace.csv]
//   With a path: writes the captured trace there and replays from disk.
//   Without: round-trips through memory.
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/core/cxl_explorer.h"
#include "src/workload/trace.h"

namespace {

using namespace cxl;

apps::kv::KvServerSim::Result RunOnce(workload::OpSource& source, uint64_t record_count) {
  topology::Platform platform = topology::Platform::CxlServer(false);
  os::PageAllocator allocator(platform, 16ull << 10);
  apps::kv::KvStoreConfig cfg;
  cfg.record_count = record_count;
  auto store = apps::kv::KvStore::Create(
      allocator,
      os::NumaPolicy::WeightedInterleave(platform.DramNodes(), platform.CxlNodes(), 1, 1), cfg);
  if (!store.ok()) {
    std::cerr << "store: " << store.status().ToString() << "\n";
    std::exit(1);
  }
  apps::kv::KvServerConfig scfg;
  scfg.total_ops = 80'000;
  scfg.warmup_ops = 20'000;
  apps::kv::KvServerSim sim(platform, *store, source, scfg);
  auto result = sim.Run();
  store->Free();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr uint64_t kRecords = 4'000'000;

  // 1. Live run, recording the op stream.
  workload::YcsbGenerator gen(workload::YcsbWorkload::kA, kRecords, /*seed=*/2024);
  workload::AccessTrace trace;
  workload::RecordingSource recorder(gen, trace);
  const auto live = RunOnce(recorder, kRecords);
  std::cout << "live run:   " << FormatDouble(live.throughput_kops, 2) << " kops/s, p99 "
            << FormatDouble(live.all_latency_us.p99(), 1) << " us, " << trace.size()
            << " ops recorded\n";

  // 2. Persist + reload (file if a path was given, else via a string).
  workload::AccessTrace reloaded;
  if (argc > 1) {
    {
      std::ofstream out(argv[1]);
      if (!out) {
        std::cerr << "cannot write " << argv[1] << "\n";
        return 1;
      }
      trace.SaveCsv(out);
    }
    std::ifstream in(argv[1]);
    auto loaded = workload::AccessTrace::LoadCsv(in);
    if (!loaded.ok()) {
      std::cerr << "reload failed: " << loaded.status().ToString() << "\n";
      return 1;
    }
    reloaded = std::move(loaded).value();
    std::cout << "trace saved to " << argv[1] << " and reloaded ("
              << reloaded.size() << " ops)\n";
  } else {
    std::stringstream buffer;
    trace.SaveCsv(buffer);
    auto loaded = workload::AccessTrace::LoadCsv(buffer);
    if (!loaded.ok()) {
      std::cerr << "round-trip failed: " << loaded.status().ToString() << "\n";
      return 1;
    }
    reloaded = std::move(loaded).value();
  }

  // 3. Replay: identical op stream -> identical experiment result.
  workload::TraceReplaySource replay(reloaded);
  const auto replayed = RunOnce(replay, kRecords);
  std::cout << "replay run: " << FormatDouble(replayed.throughput_kops, 2) << " kops/s, p99 "
            << FormatDouble(replayed.all_latency_us.p99(), 1) << " us\n";

  const double delta =
      std::abs(replayed.throughput_kops - live.throughput_kops) / live.throughput_kops;
  std::cout << "throughput delta: " << FormatDouble(100.0 * delta, 4) << "%\n";
  // The op streams are bit-identical; the tiny residual comes from the
  // replay estimating the read:write mix empirically from the trace instead
  // of using the generator's nominal 50/50 (it shifts the idle-latency blend
  // by a fraction of a nanosecond).
  return delta < 5e-3 ? 0 : 1;
}
