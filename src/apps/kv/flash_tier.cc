#include "src/apps/kv/flash_tier.h"

namespace cxl::apps::kv {

void FlashTier::MaybeFlush(OpResult& result) {
  const uint64_t memtable_fill = memtable_keys_.size() * config_.value_bytes;
  if (memtable_fill < config_.memtable_bytes) {
    return;
  }
  // Flush the memtable as a new L0 run.
  const uint64_t entries = memtable_keys_.size();
  const uint64_t bytes = entries * config_.value_bytes;
  l0_run_entries_.push_back(entries);
  flush_bytes_ += bytes;
  result.ssd_write_bytes += bytes;
  memtable_keys_.clear();

  // Compact L0 into the sorted level when deep: read every L0 run + rewrite
  // the merged output (read+write traffic ~ 2x the merged volume; we charge
  // the write side here and fold the read side into the same counter — the
  // SSD model treats mixed compaction traffic as writes, which matches its
  // streaming behaviour).
  if (l0_runs() >= config_.l0_compaction_trigger) {
    uint64_t merged = sorted_entries_;
    while (!l0_run_entries_.empty()) {
      merged += l0_run_entries_.front();
      l0_run_entries_.pop_front();
    }
    const uint64_t compact_bytes = merged * config_.value_bytes;
    compaction_bytes_ += compact_bytes;
    result.ssd_write_bytes += compact_bytes;
    sorted_entries_ = merged;
  }
}

FlashTier::OpResult FlashTier::Put(uint64_t key) {
  OpResult result;
  result.software_ns = config_.software_ns;
  memtable_keys_.push_back(key);
  wal_bytes_ += config_.value_bytes;
  result.ssd_write_bytes += config_.value_bytes;  // WAL append.
  MaybeFlush(result);
  return result;
}

FlashTier::OpResult FlashTier::Get(uint64_t key, bool cached) {
  (void)key;  // Lookup position does not change the cost model.
  OpResult result;
  result.software_ns = config_.software_ns;
  if (!cached) {
    result.ssd_read = true;
    // Data block + index/filter overread.
    result.ssd_read_bytes = config_.read_block_bytes + config_.value_bytes;
  }
  return result;
}

}  // namespace cxl::apps::kv
