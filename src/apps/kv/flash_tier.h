// FlashTier: a KeyDB-FLASH-style persistence tier (RocksDB-like LSM) backed
// by the simulated SSD.
//
// KeyDB's FLASH feature writes *all* data to disk for persistence, keeping
// hot data cached in memory as well (§4.1). Operationally that means:
//  - every update flows into a memtable and, via WAL + flush, to the SSD;
//  - reads of cached (hot) records still traverse the LSM software path
//    (memtable probe, block-cache lookup) but avoid SSD I/O;
//  - reads of uncached (cold) records pay an SSD block read.
//
// The tier maintains a real (scaled) LSM structure — memtable, L0 runs,
// compaction into a sorted level — so its costs emerge from mechanism, not
// from hard-coded constants: SSD traffic is whatever the WAL/flush/
// compaction/read path actually generates.
#ifndef CXL_EXPLORER_SRC_APPS_KV_FLASH_TIER_H_
#define CXL_EXPLORER_SRC_APPS_KV_FLASH_TIER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/util/units.h"

namespace cxl::apps::kv {

struct FlashTierConfig {
  uint64_t value_bytes = 1024;
  // Software path cost of the LSM lookup/insert (RocksDB block handling,
  // (de)serialization, memtable + index probes, write-path bookkeeping).
  // The paper disables compression to "minimize software overhead"; this is
  // the residual cost, calibrated so KeyDB-FLASH lands ~1.8x behind the pure
  // in-memory store under Zipfian traffic (Fig. 5: the working set is
  // "largely cached in MMEM", so the slowdown is dominated by this path, not
  // by SSD reads).
  double software_ns = 25'000.0;
  // Memtable flush threshold.
  uint64_t memtable_bytes = 64 * kMiB;
  // L0 runs that trigger a compaction into the sorted level.
  int l0_compaction_trigger = 4;
  // Read block size (RocksDB default-ish 4 KiB block + index overread).
  uint64_t read_block_bytes = 4096;
};

class FlashTier {
 public:
  explicit FlashTier(FlashTierConfig config) : config_(config) {}

  // Cost components of one operation against the tier. SSD byte counts are
  // what the caller charges against the SSD bandwidth model; `ssd_read` says
  // whether the op must wait on a foreground SSD read.
  struct OpResult {
    double software_ns = 0.0;
    bool ssd_read = false;           // Foreground read required (cache miss).
    uint64_t ssd_read_bytes = 0;     // Foreground read volume.
    uint64_t ssd_write_bytes = 0;    // Background WAL/flush/compaction volume.
  };

  // A write (update or insert): memtable insert + WAL append; may trigger a
  // flush and compaction (background writes).
  OpResult Put(uint64_t key);

  // A read. `cached` = the record is resident in the in-memory cache (the
  // caller decides, since it owns hotness/maxmemory policy).
  OpResult Get(uint64_t key, bool cached);

  // Telemetry.
  uint64_t memtable_entries() const { return memtable_keys_.size(); }
  int l0_runs() const { return static_cast<int>(l0_run_entries_.size()); }
  uint64_t sorted_level_entries() const { return sorted_entries_; }
  uint64_t total_wal_bytes() const { return wal_bytes_; }
  uint64_t total_flush_bytes() const { return flush_bytes_; }
  uint64_t total_compaction_bytes() const { return compaction_bytes_; }

  const FlashTierConfig& config() const { return config_; }

 private:
  // Flushes the memtable into a new L0 run; compacts when L0 is deep.
  void MaybeFlush(OpResult& result);

  FlashTierConfig config_;
  std::vector<uint64_t> memtable_keys_;
  std::deque<uint64_t> l0_run_entries_;  // Entry count per L0 run.
  uint64_t sorted_entries_ = 0;
  uint64_t wal_bytes_ = 0;
  uint64_t flush_bytes_ = 0;
  uint64_t compaction_bytes_ = 0;
};

}  // namespace cxl::apps::kv

#endif  // CXL_EXPLORER_SRC_APPS_KV_FLASH_TIER_H_
