#include "src/apps/kv/fleet.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "src/mem/bandwidth_solver.h"
#include "src/pool/memory_pool.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace cxl::apps::kv {

namespace {

// Reason codes of kTenantReshard (events.cc kReshardReasons order).
constexpr int kReasonDegradedLink = 0;
constexpr int kReasonPressure = 1;
constexpr int kReasonHotspot = 2;

constexpr double kPi = 3.14159265358979323846;

// SLO load is reported in kops/s; shard rates are tracked in ops/s.
constexpr double kOpsPerKop = 1000.0;

}  // namespace

KvFleetSim::KvFleetSim(pool::PoolScheduler& scheduler, FleetConfig config,
                       telemetry::MetricRegistry* telemetry, fault::FaultInjector* faults)
    : scheduler_(scheduler),
      config_(config),
      telemetry_(telemetry),
      faults_(faults),
      pool_profile_(pool::PooledCxlProfile()),
      // The calibrated DRAM profile is one 2-channel SNC domain; a fleet host
      // serves from the full 8-channel socket.
      host_dram_profile_(
          mem::GetProfile(mem::MemoryPath::kLocalDram).WithBandwidthScale(4.0, "host-dram")) {
  const int shards = std::max(1, config_.shards);
  const int hosts = scheduler_.rack().hosts();
  Rng rng(config_.seed);

  // Ragged tenant layout: jittered around the mean, round-robin over hosts.
  shard_tenants_.resize(static_cast<size_t>(shards));
  shard_host_.resize(static_cast<size_t>(shards));
  shard_hot_.assign(static_cast<size_t>(shards), 0);
  const double mean = static_cast<double>(config_.tenants) / static_cast<double>(shards);
  const double jitter = std::clamp(config_.shard_size_jitter, 0.0, 0.9);
  for (int s = 0; s < shards; ++s) {
    const double factor = rng.NextDouble(1.0 - jitter, 1.0 + jitter);
    shard_tenants_[static_cast<size_t>(s)] =
        std::max<uint64_t>(1, static_cast<uint64_t>(mean * factor));
    shard_host_[static_cast<size_t>(s)] = s % hosts;
  }
  for (int k = 0; k < std::min(config_.hotspot_shards, shards); ++k) {
    // Rejection-sample distinct hotspot shards (deterministic from the seed).
    int s;
    do {
      s = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(shards)));
    } while (shard_hot_[static_cast<size_t>(s)] != 0);
    shard_hot_[static_cast<size_t>(s)] = 1;
  }

  telemetry::WindowAttributor attributor;
  if (faults_ != nullptr && faults_->enabled()) {
    const fault::FaultPlan& plan = faults_->plan();
    attributor = [&plan](double t_ms) { return fault::AttributeWindowAt(plan, MsToSec(t_ms)); };
  }
  shard_slo_.reserve(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    telemetry::SloSpec spec;
    spec.workload = "kv.shard" + std::to_string(s);
    spec.max_latency_us = config_.slo_max_latency_us;
    spec.budget_fraction = config_.slo_budget_fraction;
    shard_slo_.push_back(std::make_unique<telemetry::SloTracker>(spec, telemetry_, attributor));
  }
}

void KvFleetSim::MoveShard(int s, int host, int reason, int32_t window, double t_ms) {
  const uint64_t tenants = shard_tenants_[static_cast<size_t>(s)];
  shard_host_[static_cast<size_t>(s)] = host;
  ++reshard_events_;
  resharded_tenants_ += tenants;
  step_reshard_budget_ = step_reshard_budget_ > tenants ? step_reshard_budget_ - tenants : 0;
  if (telemetry_ != nullptr) {
    telemetry_->events().Record(
        telemetry::Event(telemetry::EventKind::kTenantReshard, t_ms)
            .WithReason(reason)
            .WithWindow(window)
            .WithA(static_cast<double>(tenants))
            .WithB(static_cast<double>(s)));
    telemetry_->GetCounter("fleet.reshard_events").Increment();
    telemetry_->GetCounter("fleet.resharded_tenants").Add(tenants);
  }
}

int KvFleetSim::LeastLoadedHost(const std::vector<double>& host_ops, int exclude) const {
  int best = -1;
  for (int h = 0; h < static_cast<int>(host_ops.size()); ++h) {
    if (h == exclude) {
      continue;
    }
    if (best < 0 || host_ops[static_cast<size_t>(h)] < host_ops[static_cast<size_t>(best)]) {
      best = h;
    }
  }
  return best;
}

FleetResult KvFleetSim::Run() {
  pool::Rack& rack = scheduler_.rack();
  const int hosts = rack.hosts();
  const int shards = static_cast<int>(shard_tenants_.size());
  const uint64_t host_dram = rack.config().host_dram_bytes;
  const double lines_per_op =
      static_cast<double>(config_.value_bytes) / 64.0 * config_.miss_rate;

  FleetResult result;
  result.timeline.reserve(static_cast<size_t>(config_.steps));

  std::vector<double> host_ops(static_cast<size_t>(hosts));
  std::vector<uint64_t> host_tenants(static_cast<size_t>(hosts));
  std::vector<uint64_t> host_demand(static_cast<size_t>(hosts));
  std::vector<double> host_latency_us(static_cast<size_t>(hosts));

  double latency_weight_sum = 0.0;
  double latency_weighted_sum = 0.0;
  double util_sum = 0.0;

  for (int step = 0; step < config_.steps; ++step) {
    const double t_s = static_cast<double>(step) * config_.step_seconds;
    const double t_ms = SecToMs(t_s);
    if (faults_ != nullptr) {
      faults_->AdvanceTo(t_s);
    }
    const bool degraded =
        faults_ != nullptr && faults_->enabled() && faults_->LinkDegraded();
    const double frac = static_cast<double>(step) / static_cast<double>(config_.steps);
    const double lambda = 1.0 - config_.diurnal_amplitude * std::cos(2.0 * kPi * frac);
    const bool hot_window = frac >= config_.hotspot_start_frac && frac < config_.hotspot_end_frac;
    // Working sets breathe less than traffic does.
    const double demand_factor = 0.75 + 0.35 * lambda;
    step_reshard_budget_ = config_.max_reshard_tenants_per_step;

    // Per-shard offered rate and per-host aggregates under the current layout.
    std::vector<double> shard_rate(static_cast<size_t>(shards));
    std::fill(host_ops.begin(), host_ops.end(), 0.0);
    std::fill(host_tenants.begin(), host_tenants.end(), 0);
    auto recompute_shard = [&](int s) {
      const double hot = hot_window && shard_hot_[static_cast<size_t>(s)] != 0
                             ? config_.hotspot_factor
                             : 1.0;
      shard_rate[static_cast<size_t>(s)] =
          static_cast<double>(shard_tenants_[static_cast<size_t>(s)]) * config_.tenant_ops_per_s *
          lambda * hot;
    };
    for (int s = 0; s < shards; ++s) {
      recompute_shard(s);
      host_ops[static_cast<size_t>(shard_host_[static_cast<size_t>(s)])] +=
          shard_rate[static_cast<size_t>(s)];
      host_tenants[static_cast<size_t>(shard_host_[static_cast<size_t>(s)])] +=
          shard_tenants_[static_cast<size_t>(s)];
    }
    auto move_shard = [&](int s, int to, int reason, int32_t window) {
      const int from = shard_host_[static_cast<size_t>(s)];
      host_ops[static_cast<size_t>(from)] -= shard_rate[static_cast<size_t>(s)];
      host_tenants[static_cast<size_t>(from)] -= shard_tenants_[static_cast<size_t>(s)];
      MoveShard(s, to, reason, window, t_ms);
      host_ops[static_cast<size_t>(to)] += shard_rate[static_cast<size_t>(s)];
      host_tenants[static_cast<size_t>(to)] += shard_tenants_[static_cast<size_t>(s)];
    };
    uint64_t step_moves = 0;

    // (a) Degraded link: drain the degraded host while the window is active.
    if (degraded) {
      const int32_t window = faults_->ActiveLinkWindow();
      for (int s = 0; s < shards; ++s) {
        if (shard_host_[static_cast<size_t>(s)] != config_.degraded_host ||
            shard_tenants_[static_cast<size_t>(s)] > step_reshard_budget_) {
          continue;
        }
        const int to = LeastLoadedHost(host_ops, config_.degraded_host);
        if (to < 0) {
          break;
        }
        step_moves += shard_tenants_[static_cast<size_t>(s)];
        move_shard(s, to, kReasonDegradedLink, window);
      }
    }

    // (c) Hotspot: spread shards running far above the fleet mean, but only
    // when the move actually improves balance (prevents ping-pong).
    const double total_ops = std::accumulate(host_ops.begin(), host_ops.end(), 0.0);
    const double mean_shard_rate = total_ops / static_cast<double>(shards);
    for (int s = 0; s < shards; ++s) {
      if (shard_rate[static_cast<size_t>(s)] <=
              config_.hotspot_reshard_factor * mean_shard_rate ||
          shard_tenants_[static_cast<size_t>(s)] > step_reshard_budget_) {
        continue;
      }
      const int from = shard_host_[static_cast<size_t>(s)];
      if (degraded && from == config_.degraded_host) {
        continue;  // Already handled above.
      }
      const int to = LeastLoadedHost(host_ops, from);
      if (to < 0 || host_ops[static_cast<size_t>(to)] + shard_rate[static_cast<size_t>(s)] >=
                        host_ops[static_cast<size_t>(from)]) {
        continue;
      }
      step_moves += shard_tenants_[static_cast<size_t>(s)];
      move_shard(s, to, kReasonHotspot, telemetry::kNoWindow);
    }

    // Pool demand under the (possibly re-sharded) layout.
    auto pool_demand = [&](int h) {
      const auto demand = static_cast<uint64_t>(
          static_cast<double>(host_tenants[static_cast<size_t>(h)]) *
          static_cast<double>(config_.tenant_working_set_bytes) * demand_factor);
      host_demand[static_cast<size_t>(h)] = demand;
      return demand > host_dram ? demand - host_dram : 0;
    };
    scheduler_.set_now_ms(t_ms);
    for (int h = 0; h < hosts; ++h) {
      (void)scheduler_.SetDemand(h, pool_demand(h));
    }

    // (b) Pressure: a host the pool could not back sheds one shard, then
    // both ends re-declare their demand.
    for (int h = 0; h < hosts; ++h) {
      if (scheduler_.UnmetBytes(h) == 0) {
        continue;
      }
      for (int s = 0; s < shards; ++s) {
        if (shard_host_[static_cast<size_t>(s)] != h ||
            shard_tenants_[static_cast<size_t>(s)] > step_reshard_budget_) {
          continue;
        }
        const int to = LeastLoadedHost(host_ops, h);
        if (to < 0) {
          break;
        }
        step_moves += shard_tenants_[static_cast<size_t>(s)];
        move_shard(s, to, kReasonPressure, telemetry::kNoWindow);
        (void)scheduler_.SetDemand(h, pool_demand(h));
        (void)scheduler_.SetDemand(to, pool_demand(to));
        break;  // One shard per starved host per step bounds the churn.
      }
    }

    // Traffic: per-host DRAM, pool link, and per-expander device resources
    // through the max-min solver.
    if (degraded) {
      degraded_link_profile_.emplace(pool_profile_.WithBandwidthScale(
          faults_->CxlBandwidthFactor(), "pool-link-degraded"));
    }
    mem::BandwidthSolver solver;
    std::vector<mem::BandwidthSolver::ResourceId> dram_r(static_cast<size_t>(hosts));
    std::vector<mem::BandwidthSolver::ResourceId> link_r(static_cast<size_t>(hosts));
    for (int h = 0; h < hosts; ++h) {
      dram_r[static_cast<size_t>(h)] =
          solver.AddResource("dram:" + std::to_string(h), &host_dram_profile_);
      const bool host_degraded = degraded && h == config_.degraded_host;
      link_r[static_cast<size_t>(h)] = solver.AddResource(
          "link:" + std::to_string(h),
          host_degraded ? &*degraded_link_profile_ : &pool_profile_);
    }
    std::vector<mem::BandwidthSolver::ResourceId> exp_r(
        static_cast<size_t>(rack.expanders()));
    for (int e = 0; e < rack.expanders(); ++e) {
      exp_r[static_cast<size_t>(e)] =
          solver.AddResource("exp:" + std::to_string(e), &pool_profile_);
    }

    struct PoolFlowRef {
      int host;
      int flow;
      double share;      // Of the host's pooled traffic.
      double extra_ns;   // Beyond-first-hop switch latency.
    };
    std::vector<int> dram_flow(static_cast<size_t>(hosts), -1);
    std::vector<PoolFlowRef> pool_flows;
    std::vector<double> f_dram(static_cast<size_t>(hosts));
    std::vector<double> f_pool(static_cast<size_t>(hosts));
    std::vector<double> f_unbacked(static_cast<size_t>(hosts));
    std::vector<double> host_gbps(static_cast<size_t>(hosts));
    for (int h = 0; h < hosts; ++h) {
      const uint64_t demand = host_demand[static_cast<size_t>(h)];
      if (demand == 0) {
        continue;
      }
      const uint64_t dram_backed = std::min(demand, host_dram);
      const uint64_t unbacked = scheduler_.UnmetBytes(h);
      const uint64_t pool_backed = demand - dram_backed - std::min(unbacked, demand - dram_backed);
      f_dram[static_cast<size_t>(h)] =
          static_cast<double>(dram_backed) / static_cast<double>(demand);
      f_pool[static_cast<size_t>(h)] =
          static_cast<double>(pool_backed) / static_cast<double>(demand);
      f_unbacked[static_cast<size_t>(h)] =
          1.0 - f_dram[static_cast<size_t>(h)] - f_pool[static_cast<size_t>(h)];
      // Offered bytes/s: ops x footprint, split by where the bytes live.
      const double bytes_per_sec =
          host_ops[static_cast<size_t>(h)] * static_cast<double>(config_.value_bytes);
      const double gbps = bytes_per_sec * 1e-9;
      host_gbps[static_cast<size_t>(h)] = gbps;
      if (gbps <= 0.0) {
        continue;
      }
      dram_flow[static_cast<size_t>(h)] =
          solver.AddFlow(&host_dram_profile_, config_.mix,
                         gbps * f_dram[static_cast<size_t>(h)], {dram_r[static_cast<size_t>(h)]});
      const uint64_t total_lease = rack.HostLeasedBytes(h);
      if (total_lease == 0 || f_pool[static_cast<size_t>(h)] <= 0.0) {
        continue;
      }
      const bool host_degraded = degraded && h == config_.degraded_host;
      const mem::PathProfile* link_profile =
          host_degraded ? &*degraded_link_profile_ : &pool_profile_;
      for (int e : rack.Reachable(h)) {
        const uint64_t lease = rack.expander(e).LeasedBytes(h);
        if (lease == 0) {
          continue;
        }
        const double share = static_cast<double>(lease) / static_cast<double>(total_lease);
        const int flow = solver.AddFlow(
            link_profile, config_.mix, gbps * f_pool[static_cast<size_t>(h)] * share,
            {link_r[static_cast<size_t>(h)], exp_r[static_cast<size_t>(e)]});
        const double extra_ns =
            static_cast<double>(rack.SwitchHops(h, e) - 1) * 2.0 * pool::kCxlSwitchHopNs;
        pool_flows.push_back({h, flow, share, extra_ns});
      }
    }
    const mem::BandwidthSolver::Solution solution = solver.Solve();

    // Per-host mean op latency from the blended stall costs.
    std::vector<double> host_pool_ns(static_cast<size_t>(hosts));
    for (const PoolFlowRef& ref : pool_flows) {
      const double factor =
          degraded && ref.host == config_.degraded_host ? faults_->CxlLatencyFactor() : 1.0;
      host_pool_ns[static_cast<size_t>(ref.host)] +=
          ref.share *
          (solution.flows[static_cast<size_t>(ref.flow)].latency_ns + ref.extra_ns) * factor;
    }
    const mem::PathProfile& ssd = mem::GetProfile(mem::MemoryPath::kSsd);
    for (int h = 0; h < hosts; ++h) {
      if (host_demand[static_cast<size_t>(h)] == 0 ||
          host_gbps[static_cast<size_t>(h)] <= 0.0) {
        host_latency_us[static_cast<size_t>(h)] = config_.base_service_us;
        continue;
      }
      double mem_ns = 0.0;
      if (dram_flow[static_cast<size_t>(h)] >= 0) {
        mem_ns +=
            f_dram[static_cast<size_t>(h)] *
            solution.flows[static_cast<size_t>(dram_flow[static_cast<size_t>(h)])].latency_ns;
      }
      mem_ns += f_pool[static_cast<size_t>(h)] * host_pool_ns[static_cast<size_t>(h)];
      if (f_unbacked[static_cast<size_t>(h)] > 0.0) {
        mem_ns += f_unbacked[static_cast<size_t>(h)] *
                  ssd.LoadedLatencyNs(config_.mix, host_gbps[static_cast<size_t>(h)] *
                                                       f_unbacked[static_cast<size_t>(h)]);
      }
      host_latency_us[static_cast<size_t>(h)] =
          config_.base_service_us + NsToUs(lines_per_op * mem_ns);
    }

    // SLO observations: a shard inherits its host's latency.
    for (int s = 0; s < shards; ++s) {
      shard_slo_[static_cast<size_t>(s)]->Observe(
          t_ms, host_latency_us[static_cast<size_t>(shard_host_[static_cast<size_t>(s)])],
          shard_rate[static_cast<size_t>(s)] / kOpsPerKop);
    }

    scheduler_.EndStep();

    FleetStepSample sample;
    sample.t_ms = t_ms;
    sample.lambda = lambda;
    double weight = 0.0;
    double weighted = 0.0;
    for (int h = 0; h < hosts; ++h) {
      const auto w = static_cast<double>(host_tenants[static_cast<size_t>(h)]);
      weight += w;
      weighted += w * host_latency_us[static_cast<size_t>(h)];
      sample.worst_latency_us =
          std::max(sample.worst_latency_us, host_latency_us[static_cast<size_t>(h)]);
      sample.unbacked_bytes += scheduler_.UnmetBytes(h);
    }
    sample.mean_latency_us = weight > 0.0 ? weighted / weight : 0.0;
    sample.pool_utilization = rack.Utilization();
    sample.stranded_bytes = scheduler_.StrandedBytes();
    sample.resharded_tenants = step_moves;
    result.timeline.push_back(sample);

    latency_weight_sum += weight;
    latency_weighted_sum += weighted;
    util_sum += sample.pool_utilization;
    result.peak_latency_us = std::max(result.peak_latency_us, sample.worst_latency_us);
    result.peak_pool_utilization =
        std::max(result.peak_pool_utilization, sample.pool_utilization);

    if (telemetry_ != nullptr) {
      telemetry_->timeline().Sample("fleet.mean_latency_us", t_ms, sample.mean_latency_us);
      telemetry_->timeline().Sample("fleet.pool_utilization", t_ms, sample.pool_utilization);
      telemetry_->timeline().Sample("fleet.stranded_gib", t_ms,
                                    BytesToGiB(sample.stranded_bytes));
    }
  }

  for (auto& tracker : shard_slo_) {
    tracker->Finish();
    result.slo_violations += tracker->violations();
    result.slo_burned_ms += tracker->burned_ms();
    result.worst_burn_rate = std::max(result.worst_burn_rate, tracker->burn_rate());
  }
  result.mean_latency_us =
      latency_weight_sum > 0.0 ? latency_weighted_sum / latency_weight_sum : 0.0;
  result.mean_pool_utilization =
      config_.steps > 0 ? util_sum / static_cast<double>(config_.steps) : 0.0;
  result.reshard_events = reshard_events_;
  result.resharded_tenants = resharded_tenants_;
  result.scheduler = scheduler_.stats();

  if (telemetry_ != nullptr) {
    telemetry_->GetGauge("fleet.mean_latency_us").Set(result.mean_latency_us);
    telemetry_->GetGauge("fleet.peak_latency_us").Set(result.peak_latency_us);
    telemetry_->GetGauge("fleet.pool_utilization").Set(result.mean_pool_utilization);
    telemetry_->GetGauge("fleet.slo_burned_ms").Set(result.slo_burned_ms);
  }
  return result;
}

}  // namespace cxl::apps::kv
