// Fleet-serving KV frontend over a rack-scale CXL memory pool.
//
// KvServerSim (server.h) models ONE KeyDB instance op-by-op; KvFleetSim
// models the rack: millions of simulated tenants multiplexed onto N hosts as
// hashed shards, each host backing its working set with local DRAM first and
// pool leases (pool/scheduler.h) for the remainder. The model is fluid — per
// step it converts tenant populations into offered traffic, feeds the
// per-host DRAM, per-host pool link, and per-expander device resources
// through the max-min BandwidthSolver, and derives a per-host mean op
// latency from the blended DRAM / pooled-CXL / unbacked(SSD) stall costs:
//
//   tenants -> shard ops -> bytes/s per resource -> solver -> loaded
//   latency -> per-shard SLO observation ...
//
// Dynamics per simulated day:
//   - diurnal load: lambda(t) = 1 - A*cos(2*pi*t/day) scales both traffic
//     and resident working sets, so pool demand breathes;
//   - hotspot shards: a configurable set of shards runs hot for a window of
//     the day (the multi-tenant skew pooling absorbs);
//   - faults: a FaultPlan down-training one host's pool link mid-run
//     degrades that host's link capacity and inflates its pooled-access
//     latency (same CxlBandwidthFactor/CxlLatencyFactor laws as the
//     single-server path).
//
// Re-sharding: tenants move hosts in whole shards when (a) their host's
// pool link is degraded (reason=degraded_link, attributed to the fault
// window), (b) their host has unbacked demand after a denied grow
// (reason=pressure), or (c) their shard runs hot above the fleet mean
// (reason=hotspot). Every move emits kTenantReshard; a per-step tenant cap
// bounds the churn. SLO burn while tenants ride out the degraded/starved
// interval is accounted by per-shard SloTrackers (telemetry/slo.h).
//
// Determinism: the only RNG draws are the seeded initial shard layout;
// everything else is closed-form per step, so a sweep cell is byte-identical
// at any --jobs fan-out. Telemetry is observational and nullable.
#ifndef CXL_EXPLORER_SRC_APPS_KV_FLEET_H_
#define CXL_EXPLORER_SRC_APPS_KV_FLEET_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/fault/fault.h"
#include "src/mem/profiles.h"
#include "src/pool/scheduler.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/slo.h"
#include "src/util/units.h"

namespace cxl::apps::kv {

struct FleetConfig {
  // Tenant population, hashed onto `shards` shards (ragged +-jitter around
  // the mean so hosts are believably unbalanced).
  uint64_t tenants = 2'000'000;
  int shards = 64;
  double shard_size_jitter = 0.3;
  // Resident working set per tenant at lambda = 1 (scaled by the diurnal
  // demand factor below).
  uint64_t tenant_working_set_bytes = 384 * kKiB;
  // Offered load per tenant and the op's memory footprint.
  double tenant_ops_per_s = 2.0;
  uint64_t value_bytes = 8192;
  // Fraction of an op's cachelines that miss to memory (the stall model).
  double miss_rate = 0.25;
  double base_service_us = 2.0;
  mem::AccessMix mix = mem::AccessMix::Ratio(3, 1);

  // One simulated day.
  int steps = 48;
  double step_seconds = 1800.0;
  // lambda(t) = 1 - amplitude * cos(2*pi*t/day); working sets scale as
  // 0.75 + 0.35 * lambda (capacity breathes less than traffic).
  double diurnal_amplitude = 0.35;

  // Hotspot shards run at `hotspot_factor` x load inside the window
  // [start, end) expressed as fractions of the day.
  int hotspot_shards = 2;
  double hotspot_factor = 3.0;
  double hotspot_start_frac = 0.5;
  double hotspot_end_frac = 0.75;

  // Per-shard SLO (latency objective only; throughput dimension disabled).
  double slo_max_latency_us = 10.0;
  double slo_budget_fraction = 0.05;

  // Host whose pool link the fault plan (if any) degrades.
  int degraded_host = 0;
  // Re-shard churn bound per step, in tenants. Draining a degraded host is
  // not free — shards move one budget's worth per step, so its tenants ride
  // out (and burn SLO through) the early degraded steps.
  uint64_t max_reshard_tenants_per_step = 40'000;
  // A shard is a hotspot-reshard candidate above this multiple of the mean
  // shard rate.
  double hotspot_reshard_factor = 2.0;

  uint64_t seed = 1;
};

struct FleetStepSample {
  double t_ms = 0.0;
  double lambda = 0.0;
  double mean_latency_us = 0.0;   // Tenant-weighted across hosts.
  double worst_latency_us = 0.0;  // Worst host this step.
  double pool_utilization = 0.0;
  uint64_t stranded_bytes = 0;
  uint64_t unbacked_bytes = 0;  // Demand the pool could not back (pays SSD).
  uint64_t resharded_tenants = 0;
};

struct FleetResult {
  std::vector<FleetStepSample> timeline;
  double mean_latency_us = 0.0;
  double peak_latency_us = 0.0;
  double mean_pool_utilization = 0.0;
  double peak_pool_utilization = 0.0;
  // Re-shard churn over the run.
  uint64_t reshard_events = 0;
  uint64_t resharded_tenants = 0;
  // SLO accounting summed over shards; worst_burn_rate is the worst shard.
  int slo_violations = 0;
  double slo_burned_ms = 0.0;
  double worst_burn_rate = 0.0;
  // Scheduler accounting snapshot at the end of the run.
  pool::SchedulerStats scheduler;
};

class KvFleetSim {
 public:
  // `scheduler` must outlive the sim and wrap the rack the fleet runs on.
  // `telemetry` (nullable) receives kTenantReshard / balloon events, series
  // and gauges; `faults` (nullable) drives the degraded-link dynamics.
  KvFleetSim(pool::PoolScheduler& scheduler, FleetConfig config,
             telemetry::MetricRegistry* telemetry = nullptr,
             fault::FaultInjector* faults = nullptr);

  FleetResult Run();

 private:
  // Moves shard `s` to `host`, emitting kTenantReshard (reason, window).
  void MoveShard(int s, int host, int reason, int32_t window, double t_ms);
  // Host with the lowest offered ops this step, excluding `exclude`
  // (ties: lowest id).
  int LeastLoadedHost(const std::vector<double>& host_ops, int exclude) const;

  pool::PoolScheduler& scheduler_;
  FleetConfig config_;
  telemetry::MetricRegistry* telemetry_;
  fault::FaultInjector* faults_;

  std::vector<uint64_t> shard_tenants_;  // Seeded ragged layout.
  std::vector<int> shard_host_;
  std::vector<uint8_t> shard_hot_;  // Hotspot membership.

  // Profiles owned here so solver resources can reference them per step.
  const mem::PathProfile& pool_profile_;
  mem::PathProfile host_dram_profile_;
  std::optional<mem::PathProfile> degraded_link_profile_;

  std::vector<std::unique_ptr<telemetry::SloTracker>> shard_slo_;

  uint64_t reshard_events_ = 0;
  uint64_t resharded_tenants_ = 0;
  uint64_t step_reshard_budget_ = 0;  // Tenants still movable this step.
};

}  // namespace cxl::apps::kv

#endif  // CXL_EXPLORER_SRC_APPS_KV_FLEET_H_
