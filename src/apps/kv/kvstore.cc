#include "src/apps/kv/kvstore.h"

#include <algorithm>
#include <bit>

#include "src/util/rng.h"
#include <cmath>

namespace cxl::apps::kv {

KvStoreConfig KvStoreConfig::Fig8Preset(uint64_t record_count) {
  KvStoreConfig cfg;
  cfg.record_count = record_count;
  // Read-only 100 GiB working set: the hot Zipfian head is partially
  // CPU-cache resident and there is no value-rewrite traffic, so ops touch
  // far fewer memory lines. Calibrated to the paper's measured 12.5%
  // CXL-vs-MMEM throughput gap and 9-27% latency penalty (§4.3.2).
  cfg.cpu_ns_per_op = 20'000.0;
  cfg.lines_per_read = 18.0;
  cfg.lines_per_update = 24.0;
  return cfg;
}

StatusOr<KvStore> KvStore::Create(os::PageAllocator& allocator, const os::NumaPolicy& policy,
                                  const KvStoreConfig& config, os::TieredMemory* tiering) {
  const uint64_t dataset = config.DatasetBytes();
  uint64_t resident = dataset;
  uint64_t cached_records = config.record_count;
  if (config.flash && config.maxmemory_bytes < dataset) {
    resident = config.maxmemory_bytes;
    cached_records = config.maxmemory_bytes / config.value_bytes;
  }
  auto region = os::MemoryRegion::Allocate(allocator, policy, resident);
  if (!region.ok()) {
    return region.status();
  }
  return KvStore(allocator, std::move(region).value(), config, cached_records, tiering);
}

KvStore::KvStore(os::PageAllocator& allocator, os::MemoryRegion region,
                 const KvStoreConfig& config, uint64_t cached_records, os::TieredMemory* tiering)
    : allocator_(&allocator), region_(std::move(region)), config_(config),
      cached_records_(cached_records), initial_records_(config.record_count),
      current_records_(config.record_count),
      recency_window_(cached_records / 16),
      slot_mod_(std::max<uint64_t>(cached_records, 1)),
      records_per_page_(std::max<uint64_t>(1, allocator.page_bytes() / config.value_bytes)),
      page_shift_((records_per_page_ & (records_per_page_ - 1)) == 0
                      ? std::countr_zero(records_per_page_)
                      : -1),
      slot_fastmod_(slot_mod_),
      page_fastmod_(std::max<uint64_t>(region_.page_count(), 1)),
      has_pages_(!region_.pages().empty()),
      tiering_(tiering) {
  if (config_.flash) {
    FlashTierConfig fc = config_.flash_config;
    fc.value_bytes = config_.value_bytes;
    flash_.emplace(fc);
  }
}

KvStore::OpCost KvStore::Access(const workload::YcsbOp& op) {
  OpCost cost;
  const bool is_write = op.type != workload::YcsbOp::Type::kRead;
  cost.is_write = is_write;
  cost.mem_lines = is_write ? config_.lines_per_update : config_.lines_per_read;

  // Rank-ordered slotting with band scatter: key k (rank-ordered hot->cold)
  // lives at slot k mod cached_records. Consecutive ranks share a page (the
  // clustering real allocators produce and the kernel's hot-page selection
  // exploits), but the *bands* are scattered across the region by a hash —
  // in a real system allocation order is temporal, not hotness order, so
  // page placement under an interleave policy is uncorrelated with rank.
  // A record is memory-resident when it is in the hot cached prefix (rank
  // hotness) or within the recency window (LRU share held by the most
  // recently loaded/inserted records — YCSB loads keys in order, so the
  // newest keys start memtable/block-cache resident; YCSB-D's latest
  // distribution reads exactly those).
  if (op.type == workload::YcsbOp::Type::kInsert && op.key >= current_records_) {
    current_records_ = op.key + 1;
  }
  const bool cached =
      op.key < cached_records_ || op.key + recency_window_ >= current_records_;
  // Zipfian keys are overwhelmingly below the cached prefix, so the modulo
  // is almost always the identity — branch around the reduction, and when
  // it is needed use the divide-free exact form. Records-per-page is a
  // power of two for every config in the repo, so the band divide is a
  // shift (the divide stays as the general-case fallback).
  const uint64_t slot = op.key < slot_mod_ ? op.key : slot_fastmod_(op.key);
  const uint64_t band = page_shift_ >= 0 ? slot >> page_shift_ : slot / records_per_page_;
  const size_t page_index = static_cast<size_t>(page_fastmod_(SplitMix64(band)));
  const os::PageId page = region_.PageAtIndex(page_index);
  cost.node = has_pages_ ? allocator_->NodeOf(page) : -1;
  cost.page = has_pages_ ? page : os::kInvalidPage;

  if (tiering_ != nullptr) {
    tiering_->RecordAccess(page, static_cast<uint64_t>(cost.mem_lines));
  }

  if (flash_.has_value()) {
    const FlashTier::OpResult fr = is_write ? flash_->Put(op.key) : flash_->Get(op.key, cached);
    cost.software_ns = fr.software_ns;
    cost.ssd_read = fr.ssd_read;
    cost.ssd_read_bytes = fr.ssd_read_bytes;
    cost.ssd_write_bytes = fr.ssd_write_bytes;
    if (!cached && !is_write) {
      // The value was fetched from SSD; the in-memory line traffic is only
      // the probe + staging, not a resident-value walk.
      cost.mem_lines = 0.3 * config_.lines_per_read;
    }
  }
  return cost;
}

}  // namespace cxl::apps::kv
