// KeyDB-like in-memory key-value store over the simulated memory system.
//
// Records live at fixed slots in a MemoryRegion (rank-ordered: low key ids —
// the Zipfian-hot ones — occupy the low pages, modelling the temporal
// clustering real allocators produce). Each YCSB operation resolves to:
//   - the page (and hence NUMA node) holding the record,
//   - the number of 64 B memory lines the op touches (hash probe + value
//     copy; updates touch more than reads),
//   - optional FlashTier costs when the store runs in KeyDB-FLASH mode with
//     a maxmemory cap (MMEM-SSD-0.2 / 0.4 in Table 1).
//
// The store reports *costs*; KvServerSim turns them into time using the
// platform's contention model.
#ifndef CXL_EXPLORER_SRC_APPS_KV_KVSTORE_H_
#define CXL_EXPLORER_SRC_APPS_KV_KVSTORE_H_

#include <cstdint>
#include <optional>

#include "src/apps/kv/flash_tier.h"
#include "src/os/numa_policy.h"
#include "src/os/page_allocator.h"
#include "src/os/region.h"
#include "src/os/tiering.h"
#include "src/util/fastmod.h"
#include "src/util/status.h"
#include "src/workload/ycsb.h"

namespace cxl::apps::kv {

struct KvStoreConfig {
  uint64_t record_count = 1'000'000;
  // 1 KiB records (the YCSB default the paper uses).
  uint64_t value_bytes = 1024;
  // CPU time per op outside memory stalls (command parse, event loop,
  // hashing). Calibrated so a 7-thread KeyDB does a few hundred kops/s.
  double cpu_ns_per_op = 15'000.0;
  // 64 B memory lines touched per op: hash-table probe chain + value copy +
  // allocator/TLB traffic. Updates rewrite the value, touching more lines.
  // Defaults fit the paper's 512 GiB capacity experiments (Fig. 5); the
  // 100 GiB VM experiment (Fig. 8) uses a lighter preset — see Fig8Preset().
  double lines_per_read = 120.0;
  double lines_per_update = 150.0;
  // KeyDB-FLASH mode: all records also persisted to SSD; only the hottest
  // `maxmemory_bytes` worth of records are cached in memory.
  bool flash = false;
  uint64_t maxmemory_bytes = UINT64_MAX;
  FlashTierConfig flash_config;

  uint64_t DatasetBytes() const { return record_count * value_bytes; }

  // Preset matching §4.3 / Fig. 8 (100 GiB YCSB-C): read-mostly, smaller
  // working set, so per-op memory stall time is a smaller share — the paper
  // measures only a 12.5% throughput gap for CXL-only placement.
  static KvStoreConfig Fig8Preset(uint64_t record_count);
};

class KvStore {
 public:
  // Allocates the in-memory region under `policy`. With flash enabled, only
  // min(maxmemory, dataset) bytes are resident. `tiering` (optional)
  // receives access heat so a promotion daemon can rearrange pages.
  static StatusOr<KvStore> Create(os::PageAllocator& allocator, const os::NumaPolicy& policy,
                                  const KvStoreConfig& config,
                                  os::TieredMemory* tiering = nullptr);

  KvStore(KvStore&&) = default;

  // Cost descriptor of one operation.
  struct OpCost {
    topology::NodeId node = -1;     // Node of the touched record page (-1 if none).
    os::PageId page = os::kInvalidPage;  // Touched record page (for quarantine).
    double mem_lines = 0.0;         // 64 B lines touched in memory.
    double software_ns = 0.0;       // Flash software path, if taken.
    bool ssd_read = false;          // Foreground SSD read (cache miss).
    uint64_t ssd_read_bytes = 0;
    uint64_t ssd_write_bytes = 0;   // Background WAL/flush/compaction.
    bool is_write = false;
  };
  OpCost Access(const workload::YcsbOp& op);

  // Fraction of in-memory pages on DRAM (for telemetry).
  double DramShare() const { return region_.DramShare(); }
  const os::MemoryRegion& region() const { return region_; }
  const KvStoreConfig& config() const { return config_; }
  // Records resident in memory (all of them unless flash caps them).
  uint64_t cached_records() const { return cached_records_; }
  const FlashTier* flash() const { return flash_ ? &*flash_ : nullptr; }

  void Free() { region_.Free(); }

 private:
  KvStore(os::PageAllocator& allocator, os::MemoryRegion region, const KvStoreConfig& config,
          uint64_t cached_records, os::TieredMemory* tiering);

  os::PageAllocator* allocator_;
  os::MemoryRegion region_;
  KvStoreConfig config_;
  uint64_t cached_records_;   // Hottest records resident in memory.
  uint64_t initial_records_;  // Record count at creation (inserts append past it).
  uint64_t current_records_;  // Highest key seen + 1 (grows with inserts).
  // Access() invariants, hoisted out of the per-op path (region size,
  // page geometry and the cached prefix are fixed at construction).
  uint64_t recency_window_;   // cached_records / 16.
  uint64_t slot_mod_;         // max(cached_records, 1).
  uint64_t records_per_page_; // max(1, page_bytes / value_bytes).
  int page_shift_;            // log2(records_per_page_), or -1 if not a power of two.
  FastMod64 slot_fastmod_;    // x % slot_mod_ without a hardware divide.
  FastMod64 page_fastmod_;    // x % max(region page count, 1), likewise.
  bool has_pages_;            // region has at least one page.
  os::TieredMemory* tiering_;
  std::optional<FlashTier> flash_;
};

}  // namespace cxl::apps::kv

#endif  // CXL_EXPLORER_SRC_APPS_KV_KVSTORE_H_
