#include "src/apps/kv/server.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "src/mem/access.h"
#include "src/mem/profiles.h"
#include "src/topology/pcm.h"
#include "src/util/units.h"

namespace cxl::apps::kv {

using mem::AccessMix;
using workload::YcsbOp;
using EpochSample = KvServerSim::EpochSample;

KvServerSim::KvServerSim(const topology::Platform& platform, KvStore& store,
                         workload::OpSource& workload, KvServerConfig config,
                         os::TieredMemory* tiering, telemetry::MetricRegistry* telemetry,
                         fault::FaultInjector* faults)
    : platform_(platform),
      store_(store),
      workload_(workload),
      config_(config),
      tiering_(tiering),
      telemetry_(telemetry),
      faults_(faults),
      rng_(config.seed),
      traffic_(platform) {
  if (faults_ != nullptr && faults_->enabled()) {
    const double shed_fraction = faults_->tunables().shed_fraction;
    shed_every_ = shed_fraction > 0.0
                      ? std::max<uint64_t>(2, static_cast<uint64_t>(1.0 / shed_fraction + 0.5))
                      : std::numeric_limits<uint64_t>::max();
    if (tiering_ != nullptr) {
      // Full observer set: the daemon's telemetry is this server's sink (the
      // same registry the caller attached at construction, so the daemon
      // keeps its cached handles and trace track).
      os::TieredMemory::Observers obs;
      obs.telemetry = telemetry_;
      obs.faults = faults_;
      tiering_->Attach(obs);
    }
  }
  if (telemetry_ != nullptr) {
    kv_track_ = telemetry_->trace().Track("kv-server");
  }
  free_threads_ = config_.server_threads;
  nodes_.resize(platform.nodes().size());
  epoch_node_bytes_.assign(platform.nodes().size(), 0.0);
  const AccessMix mix{1.0 - workload.WriteFraction(), true};
  for (const auto& n : platform.nodes()) {
    const auto& prof = platform.ProfileFor(config_.cpu_socket, n.id);
    nodes_[static_cast<size_t>(n.id)].idle_latency_ns = prof.IdleLatencyNs(mix);
    nodes_[static_cast<size_t>(n.id)].mean_latency_ns = prof.IdleLatencyNs(mix);
  }
  ssd_read_state_.idle_latency_ns = platform.SsdProfile().IdleLatencyNs(AccessMix::ReadOnly());
  ssd_read_state_.mean_latency_ns = ssd_read_state_.idle_latency_ns;
}

double KvServerSim::FaultLatencyFactor(topology::NodeId node) const {
  if (faults_ == nullptr || !faults_->enabled() || node < 0) {
    return 1.0;
  }
  const bool is_cxl = platform_.node(node).kind == topology::NodeKind::kCxl;
  return is_cxl ? faults_->CxlLatencyFactor() : faults_->DramLatencyFactor();
}

double KvServerSim::ServiceTimeNs(const YcsbOp& op) {
  const KvStore::OpCost cost = store_.Access(op);
  const bool faulty = faults_ != nullptr && faults_->enabled();

  // CPU component with mild heavy-tail jitter (parsing, allocation, the
  // occasional expensive event-loop iteration).
  double ns = rng_.NextPareto(store_.config().cpu_ns_per_op, 6.0);
  ns += cost.software_ns;
  // Kernel migration work (page copies, TLB shootdowns) steals CPU from the
  // event loops while the daemon is churning.
  ns += migration_stall_ns_per_op_;

  // Memory stalls: `mem_lines` dependent accesses at the node's current
  // loaded latency. The sum of many near-exponential stall times is
  // approximately Gaussian: mean L*n, stddev ~ excess * sqrt(n). Active
  // faults (lane down-training, CRC storms, DRAM throttle) inflate the
  // loaded latency by their derived factor; the factor is exactly 1.0 on a
  // healthy run so the arithmetic below is unchanged.
  if (cost.node >= 0 && cost.mem_lines > 0.0) {
    const NodeState& st = nodes_[static_cast<size_t>(cost.node)];
    const double lat_factor = FaultLatencyFactor(cost.node);
    const double loaded_ns = st.mean_latency_ns * lat_factor;
    const double mean = loaded_ns * cost.mem_lines;
    const double excess = std::max(0.0, loaded_ns - st.idle_latency_ns) + 20.0;
    const double sigma = excess * std::sqrt(cost.mem_lines);
    const double floor_ns = st.idle_latency_ns * cost.mem_lines * 0.5;
    ns += std::max(floor_ns, rng_.NextGaussian(mean, sigma));
    epoch_node_bytes_[static_cast<size_t>(cost.node)] += cost.mem_lines * 64.0;

    // Poisoned cacheline: the read observes a poison indication and the
    // server rereads the line a bounded number of times (the retries cost
    // full memory stalls, charged deterministically), then quarantines the
    // page through the tiering daemon so it cannot be promoted back into
    // the hot set. The sample draws from the injector's private RNG, and
    // only while a poison event is active — never on healthy runs.
    if (faulty && !cost.is_write && faults_->SamplePoisonedRead()) {
      const int retries = std::max(1, faults_->tunables().poison_read_retries);
      ns += loaded_ns * cost.mem_lines * retries;
      epoch_node_bytes_[static_cast<size_t>(cost.node)] += cost.mem_lines * 64.0 * retries;
      ++result_.poisoned_reads;
      result_.poison_retries += static_cast<uint64_t>(retries);
      const int32_t poison_window =
          faults_->ActiveWindowOf(fault::FaultType::kPoisonedCacheline);
      if (telemetry_ != nullptr) {
        telemetry_->events().Record(
            telemetry::Event(telemetry::EventKind::kKvPoisonRetry, NsToMs(events_.Now()))
                .WithWindow(poison_window)
                .WithA(retries)
                .WithB(static_cast<double>(cost.page)));
      }
      if (tiering_ != nullptr && cost.page != os::kInvalidPage &&
          tiering_->QuarantinePage(cost.page)) {
        ++result_.quarantined_pages;
        if (telemetry_ != nullptr) {
          telemetry_->events().Record(
              telemetry::Event(telemetry::EventKind::kKvQuarantine, NsToMs(events_.Now()))
                  .WithWindow(poison_window)
                  .WithA(static_cast<double>(cost.page)));
        }
      }
    }
  }

  // Foreground SSD read (KeyDB-FLASH cache miss): idle latency plus
  // exponential queueing excess at the current SSD utilization.
  if (cost.ssd_read) {
    const double mean_excess =
        std::max(0.0, ssd_read_state_.mean_latency_ns - ssd_read_state_.idle_latency_ns);
    ns += ssd_read_state_.idle_latency_ns +
          (mean_excess > 0.0 ? rng_.NextExponential(mean_excess) : 0.0);
    epoch_ssd_read_bytes_ += static_cast<double>(cost.ssd_read_bytes);
    // Flash-tier IO error: the read times out (a multiple of the idle
    // latency) and is retried once against a healthy replica/path.
    if (faulty && faults_->SampleFlashError()) {
      ns += ssd_read_state_.idle_latency_ns * faults_->tunables().flash_timeout_factor +
            ssd_read_state_.idle_latency_ns;
      epoch_ssd_read_bytes_ += static_cast<double>(cost.ssd_read_bytes);
      ++result_.flash_errors;
      if (telemetry_ != nullptr) {
        telemetry_->events().Record(
            telemetry::Event(telemetry::EventKind::kKvFlashRetry, NsToMs(events_.Now()))
                .WithWindow(faults_->ActiveWindowOf(fault::FaultType::kFlashIoError))
                .WithA(faults_->tunables().flash_timeout_factor));
      }
    }
  }
  // Background persistence traffic (WAL / flush / compaction): charged to
  // SSD bandwidth, not to this op's latency.
  epoch_ssd_write_bytes_ += static_cast<double>(cost.ssd_write_bytes);
  return ns;
}

void KvServerSim::RefreshContention(double epoch_dt_ns) {
  if (epoch_dt_ns <= 0.0) {
    return;
  }
  const double dt_sec = NsToSec(epoch_dt_ns);
  if (faults_ != nullptr) {
    faults_->AdvanceTo(NsToSec(events_.Now()));
  }
  epoch_arena_.Reset();
  traffic_.ClearTraffic();
  const AccessMix mix{1.0 - workload_.WriteFraction(), true};

  ArenaVector<topology::TrafficModel::FlowId> node_flow{
      ArenaAllocator<topology::TrafficModel::FlowId>(&epoch_arena_)};
  node_flow.assign(platform_.nodes().size(), -1);
  for (const auto& n : platform_.nodes()) {
    const double gbps = epoch_node_bytes_[static_cast<size_t>(n.id)] / epoch_dt_ns;
    if (gbps > 0.0) {
      node_flow[static_cast<size_t>(n.id)] =
          traffic_.AddMemoryTraffic(config_.cpu_socket, n.id, mix, gbps);
    }
  }
  // Migration traffic from the previous daemon tick: a read stream on the
  // CXL side and a write stream on the DRAM side (promotion direction
  // dominates; demotion is symmetric enough for this accounting).
  if (epoch_migrated_bytes_ > 0.0) {
    const double mig_gbps = epoch_migrated_bytes_ / epoch_dt_ns;
    for (const auto& n : platform_.nodes()) {
      const bool is_cxl = n.kind == topology::NodeKind::kCxl;
      traffic_.AddMemoryTraffic(config_.cpu_socket, n.id,
                                is_cxl ? AccessMix::ReadOnly() : AccessMix::WriteOnly(),
                                mig_gbps / static_cast<double>(platform_.nodes().size()));
    }
  }

  topology::TrafficModel::FlowId ssd_read_flow = -1;
  const double ssd_read_gbps = epoch_ssd_read_bytes_ / epoch_dt_ns;
  const double ssd_write_gbps = epoch_ssd_write_bytes_ / epoch_dt_ns;
  if (ssd_read_gbps > 0.0) {
    ssd_read_flow = traffic_.AddSsdTraffic(AccessMix::ReadOnly(), ssd_read_gbps);
  }
  if (ssd_write_gbps > 0.0) {
    traffic_.AddSsdTraffic(AccessMix::WriteOnly(), ssd_write_gbps);
  }

  topology::TrafficModel::Solution sol;
  {
    const auto timer =
        telemetry::EpochProfiler::Time(config_.profiler, telemetry::EpochProfiler::kSolver);
    sol = traffic_.Solve();
  }
  // Warm-start cache observability: a Solve that did not raise the hit
  // counter was a forced re-solve (traffic changed enough to invalidate the
  // memo). The first epoch's cold solve is expected, not an invalidation.
  if (telemetry_ != nullptr) {
    const uint64_t hits = traffic_.solver_cache_hits();
    if (have_solver_stats_ && hits == last_cache_hits_) {
      double achieved_gbps = 0.0;
      for (const auto& f : sol.flows) {
        achieved_gbps += f.achieved_gbps;
      }
      const int32_t window = (faults_ != nullptr && faults_->enabled())
                                 ? faults_->AttributedWindow()
                                 : telemetry::kNoWindow;
      telemetry_->events().Record(
          telemetry::Event(telemetry::EventKind::kSolverCacheInvalidate, NsToMs(events_.Now()))
              .WithWindow(window)
              .WithA(achieved_gbps)
              .WithB(sol.solver_iterations));
    }
    last_cache_hits_ = hits;
    have_solver_stats_ = true;
  }
  for (const auto& n : platform_.nodes()) {
    const auto flow = node_flow[static_cast<size_t>(n.id)];
    if (flow >= 0) {
      nodes_[static_cast<size_t>(n.id)].mean_latency_ns = sol.flows[flow].latency_ns;
    }
  }
  if (ssd_read_flow >= 0) {
    ssd_read_state_.mean_latency_ns = sol.flows[ssd_read_flow].latency_ns;
  }

  // Telemetry (last epoch wins; the run ends in steady state).
  result_.mem_traffic_gbps = 0.0;
  for (double b : epoch_node_bytes_) {
    result_.mem_traffic_gbps += b / epoch_dt_ns;
  }
  result_.ssd_read_gbps = ssd_read_gbps;
  result_.ssd_write_gbps = ssd_write_gbps;

  std::fill(epoch_node_bytes_.begin(), epoch_node_bytes_.end(), 0.0);
  epoch_ssd_read_bytes_ = 0.0;
  epoch_ssd_write_bytes_ = 0.0;
  epoch_migrated_bytes_ = 0.0;

  // Timeline sample for this epoch.
  EpochSample sample;
  sample.end_ms = NsToMs(events_.Now());
  sample.kops = static_cast<double>(config_.epoch_ops) / epoch_dt_ns * kNsPerMs;
  sample.mean_latency_us = epoch_mean_latency_us_;

  // Shed arming: the first epoch's throughput is the healthy bar; after
  // `shed_arm_epochs` consecutive epochs below bar/shed_latency_factor the
  // server starts shedding, and it recovers the moment an epoch clears the
  // bar again. Only evaluated with an enabled injector — healthy runs never
  // touch this state.
  if (faults_ != nullptr && faults_->enabled()) {
    const auto& tun = faults_->tunables();
    const bool was_shedding = shedding_;
    if (baseline_epoch_kops_ <= 0.0) {
      baseline_epoch_kops_ = sample.kops;
    } else if (sample.kops * tun.shed_latency_factor < baseline_epoch_kops_) {
      ++degraded_epochs_;
      if (degraded_epochs_ >= tun.shed_arm_epochs) {
        shedding_ = true;
      }
    } else {
      degraded_epochs_ = 0;
      shedding_ = false;
    }
    if (telemetry_ != nullptr && shedding_ != was_shedding) {
      if (shedding_) {
        // Shedding only arms after fault-driven degradation, so a window
        // with start <= now exists; the guard keeps the contract airtight.
        const int32_t window = faults_->AttributedWindow();
        if (window != telemetry::kNoWindow) {
          shed_window_ = window;
          telemetry_->events().Record(
              telemetry::Event(telemetry::EventKind::kKvShedOn, sample.end_ms)
                  .WithWindow(window)
                  .WithA(baseline_epoch_kops_)
                  .WithB(sample.kops));
        }
      } else if (shed_window_ != telemetry::kNoWindow) {
        telemetry_->events().Record(
            telemetry::Event(telemetry::EventKind::kKvShedOff, sample.end_ms)
                .WithWindow(shed_window_)
                .WithA(baseline_epoch_kops_)
                .WithB(sample.kops));
        shed_window_ = telemetry::kNoWindow;
      }
    }
    if (shedding_) {
      ++result_.shed_epochs;
      if (telemetry_ != nullptr) {
        telemetry_->GetCounter("kv.shed_epochs").Add(1);
      }
    }
  }

  if (telemetry_ != nullptr) {
    const auto timer =
        telemetry::EpochProfiler::Time(config_.profiler, telemetry::EpochProfiler::kTelemetry);
    const double t_ms = sample.end_ms;
    const auto snap = topology::TakePcmSnapshot(platform_, sol);
    if (!pcm_handles_.attached) {
      pcm_handles_ = topology::AttachPcmTelemetry(*telemetry_, snap);
      kv_kops_series_ = &telemetry_->timeline().Series("kv.kops");
      kv_mean_latency_series_ = &telemetry_->timeline().Series("kv.mean_latency_us");
    }
    topology::SamplePcmSnapshot(pcm_handles_, t_ms, snap);
    // Per-path bandwidth gauges: the latest epoch wins, and the run ends in
    // steady state, so these read like the final pcm-memory screen.
    topology::SetPcmGauges(pcm_handles_, snap);
    kv_kops_series_->Sample(t_ms, sample.kops);
    kv_mean_latency_series_->Sample(t_ms, sample.mean_latency_us);
    telemetry_->trace().Span(kv_track_, "epoch " + std::to_string(epoch_index_),
                             t_ms - NsToMs(epoch_dt_ns), NsToMs(epoch_dt_ns), {{"kops", sample.kops}});
  }
  ++epoch_index_;

  // Promotion daemon runs on the same cadence.
  migration_stall_ns_per_op_ = 0.0;
  if (tiering_ != nullptr) {
    const auto timer =
        telemetry::EpochProfiler::Time(config_.profiler, telemetry::EpochProfiler::kScan);
    const auto tick = tiering_->Tick(dt_sec);
    epoch_migrated_bytes_ = tick.migrated_bytes;
    result_.migrated_bytes += tick.migrated_bytes;
    // ~15 us of kernel work per migrated 16 KiB page (copy + unmap + TLB
    // shootdown), amortized over the coming epoch's ops.
    constexpr double kStallNsPerPage = 8'000.0;
    const double pages = static_cast<double>(tick.promoted_pages + tick.demoted_pages);
    migration_stall_ns_per_op_ = pages * kStallNsPerPage / static_cast<double>(config_.epoch_ops);
    sample.migrated_mb = BytesToMBd(tick.migrated_bytes);
  }
  result_.timeline.push_back(sample);
}

void KvServerSim::SubmitOne() {
  if (issued_ >= config_.total_ops) {
    return;
  }
  ++issued_;
  pending_.emplace_back(events_.Now(), workload_.Next());
  Dispatch();
}

void KvServerSim::Dispatch() {
  while (free_threads_ > 0 && !pending_.empty()) {
    auto [submit_time, op] = pending_.front();
    pending_.pop_front();
    --free_threads_;
    // Load shedding: after sustained degradation the server rejects a
    // deterministic 1-in-k of arrivals with a fast error reply — no store
    // access, no RNG draw — trading availability of a slice of requests for
    // bounded latency on the rest.
    ++dispatch_counter_;
    if (shedding_ && dispatch_counter_ % shed_every_ == 0) {
      ++result_.shed_ops;
      constexpr double kShedReplyNs = 2'000.0;
      const bool is_write = op.type != YcsbOp::Type::kRead;
      events_.ScheduleAfter(kShedReplyNs,
                            [this, submit_time, is_write] { OnComplete(submit_time, is_write); });
      continue;
    }
    const double service_ns = ServiceTimeNs(op);
    service_stats_.Add(service_ns);
    const bool is_write = op.type != YcsbOp::Type::kRead;
    events_.ScheduleAfter(service_ns,
                          [this, submit_time, is_write] { OnComplete(submit_time, is_write); });
  }
}

void KvServerSim::FlushLatencyBatch() {
  if (epoch_latency_us_.empty()) {
    epoch_mean_latency_us_ = 0.0;
    return;
  }
  // Mean of this epoch's batch, summed in completion (index) order so the
  // value is independent of --jobs.
  double sum_us = 0.0;
  for (const double v : epoch_latency_us_) {
    sum_us += v;
  }
  epoch_mean_latency_us_ = sum_us / static_cast<double>(epoch_latency_us_.size());
  // Completion order throughout: each histogram sees the exact Record
  // sequence per-op recording produced, so the (order-sensitive) running
  // sums match bit for bit.
  result_.all_latency_us.RecordBatch(epoch_latency_us_.data(), epoch_latency_us_.size());
  for (int is_write = 0; is_write < 2; ++is_write) {
    latency_flush_scratch_.clear();
    for (size_t i = 0; i < epoch_latency_us_.size(); ++i) {
      if (epoch_latency_is_write_[i] == is_write) {
        latency_flush_scratch_.push_back(epoch_latency_us_[i]);
      }
    }
    Histogram& h = is_write ? result_.update_latency_us : result_.read_latency_us;
    h.RecordBatch(latency_flush_scratch_.data(), latency_flush_scratch_.size());
  }
  epoch_latency_us_.clear();
  epoch_latency_is_write_.clear();
}

void KvServerSim::OnComplete(double submit_time, bool is_write) {
  ++free_threads_;
  ++completed_;
  const double latency_us = NsToUs(events_.Now() - submit_time);
  if (completed_ > config_.warmup_ops) {
    if (measured_ops_ == 0) {
      measure_start_ns_ = events_.Now();
    }
    ++measured_ops_;
    epoch_latency_us_.push_back(latency_us);
    epoch_latency_is_write_.push_back(is_write ? 1 : 0);
  }
  if (completed_ % config_.epoch_ops == 0) {
    FlushLatencyBatch();
    RefreshContention(events_.Now() - epoch_start_ns_);
    epoch_start_ns_ = events_.Now();
  }
  SubmitOne();   // Closed loop: this client issues its next request.
  Dispatch();
}

KvServerSim::Result KvServerSim::Run() {
  for (int c = 0; c < config_.client_connections; ++c) {
    SubmitOne();
  }
  events_.Run();
  FlushLatencyBatch();  // Tail of a run whose total_ops is not epoch-aligned.
  const double measured_ns = events_.Now() - measure_start_ns_;
  if (measured_ns > 0.0 && measured_ops_ > 1) {
    result_.throughput_kops = static_cast<double>(measured_ops_) / measured_ns * kNsPerMs;
  }
  result_.dram_share = store_.DramShare();
  result_.avg_service_us = NsToUs(service_stats_.mean());
  return result_;
}

}  // namespace cxl::apps::kv
