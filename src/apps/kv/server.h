// Event-driven KeyDB server simulation.
//
// Reproduces the paper's KeyDB methodology (§4.1.1): one store instance with
// seven server threads, driven closed-loop by YCSB clients. The discrete-
// event engine models request queueing at the event loops (tail latency!),
// while memory-stall and SSD costs come from the platform's contention
// model, refreshed every epoch from the traffic the simulation itself
// generated — a fluid feedback loop:
//
//   ops drive bytes/s per NUMA node -> BandwidthSolver -> loaded latency ->
//   per-op service time -> ops/s ...
//
// The optional tiering daemon runs on simulated time and its migration
// traffic is charged against memory bandwidth (Hot-Promote is not free).
#ifndef CXL_EXPLORER_SRC_APPS_KV_SERVER_H_
#define CXL_EXPLORER_SRC_APPS_KV_SERVER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/apps/kv/kvstore.h"
#include "src/fault/fault.h"
#include "src/os/tiering.h"
#include "src/sim/event_queue.h"
#include "src/telemetry/epoch_profiler.h"
#include "src/telemetry/metrics.h"
#include "src/topology/pcm.h"
#include "src/topology/platform.h"
#include "src/util/arena.h"
#include "src/util/histogram.h"
#include "src/util/rng.h"
#include "src/workload/ycsb.h"

namespace cxl::apps::kv {

struct KvServerConfig {
  // KeyDB server threads (§4.1.1 deploys seven).
  int server_threads = 7;
  // Closed-loop client connections.
  int client_connections = 64;
  uint64_t total_ops = 300'000;
  // Ops ignored for statistics while the feedback loop settles.
  uint64_t warmup_ops = 50'000;
  // Contention model refresh cadence.
  uint64_t epoch_ops = 10'000;
  uint64_t seed = 1;
  // CPU socket the server threads are pinned to.
  int cpu_socket = 0;
  // Optional per-phase wall-clock profiler (nullable; see --profile-epochs).
  // Observational only: attaching it must not change simulation results.
  telemetry::EpochProfiler* profiler = nullptr;
};

class KvServerSim {
 public:
  // `tiering` may be null (no promotion daemon). The daemon, when present,
  // ticks once per epoch on simulated time. `telemetry` may be null too;
  // when set, every contention epoch appends PCM-style per-path bandwidth
  // series and throughput into it, plus one span per epoch on the
  // "kv-server" trace track. Observational only — attaching a sink must not
  // change the simulation.
  // `faults` (nullable) is the per-run fault injector. The server advances
  // its clock at every contention epoch and reacts to active faults:
  // degraded-link latency inflation on CXL-resident accesses, poisoned-read
  // retries (retried ops pay extra memory stalls; the touched page is
  // quarantined through `tiering`), flash IO-error timeouts + retries, and
  // load shedding after sustained degradation (a deterministic 1-in-k of
  // arrivals is rejected with a fast error reply). With a null or disabled
  // injector every run is byte-identical to a faultless build.
  KvServerSim(const topology::Platform& platform, KvStore& store, workload::OpSource& workload,
              KvServerConfig config, os::TieredMemory* tiering = nullptr,
              telemetry::MetricRegistry* telemetry = nullptr,
              fault::FaultInjector* faults = nullptr);

  // One row per contention epoch: the time series behind convergence plots
  // (Hot-Promote warm-up, SSD cache fill, ...).
  struct EpochSample {
    double end_ms = 0.0;        // Simulated time at the epoch boundary.
    double kops = 0.0;          // Throughput within the epoch.
    double migrated_mb = 0.0;   // Migration traffic the daemon generated.
    // Mean measured latency of the ops completed this epoch (0 while the
    // warm-up window is still discarding latencies). Feeds the SLO engine.
    double mean_latency_us = 0.0;
  };

  struct Result {
    double throughput_kops = 0.0;
    Histogram read_latency_us{0.1, 1e7, 96};
    Histogram update_latency_us{0.1, 1e7, 96};
    Histogram all_latency_us{0.1, 1e7, 96};
    // Telemetry at the end of the run.
    double dram_share = 0.0;          // Store pages on DRAM.
    double mem_traffic_gbps = 0.0;    // Aggregate memory traffic.
    double ssd_read_gbps = 0.0;
    double ssd_write_gbps = 0.0;
    double migrated_bytes = 0.0;      // Total promotion/demotion volume.
    double avg_service_us = 0.0;
    std::vector<EpochSample> timeline;
    // Fault accounting (all zero on healthy runs).
    uint64_t poisoned_reads = 0;      // Reads that hit a poisoned cacheline.
    uint64_t poison_retries = 0;      // Rereads issued for poisoned lines.
    uint64_t quarantined_pages = 0;   // Pages quarantined via the daemon.
    uint64_t flash_errors = 0;        // SSD reads that timed out and retried.
    uint64_t shed_ops = 0;            // Arrivals rejected while shedding.
    uint64_t shed_epochs = 0;         // Epochs spent in shedding mode.
  };

  Result Run();

 private:
  struct NodeState {
    double mean_latency_ns = 0.0;
    double idle_latency_ns = 0.0;
  };

  // Computes one op's service time (ns) and charges its traffic.
  double ServiceTimeNs(const workload::YcsbOp& op);
  // Loaded-latency inflation the active faults impose on `node` (1.0 when
  // faults are off — the healthy arithmetic is untouched).
  double FaultLatencyFactor(topology::NodeId node) const;
  // Refreshes loaded latencies from the traffic measured in the last epoch.
  void RefreshContention(double epoch_dt_ns);
  // Drains the epoch latency buffer into the result histograms, in
  // completion order (see OnComplete).
  void FlushLatencyBatch();
  void Dispatch();
  void OnComplete(double submit_time, bool is_write);
  void SubmitOne();

  const topology::Platform& platform_;
  KvStore& store_;
  workload::OpSource& workload_;
  KvServerConfig config_;
  os::TieredMemory* tiering_;
  telemetry::MetricRegistry* telemetry_;
  fault::FaultInjector* faults_;
  telemetry::TraceBuffer::TrackId kv_track_ = 0;
  uint64_t epoch_index_ = 0;
  Rng rng_;

  sim::EventQueue events_;
  std::deque<std::pair<double, workload::YcsbOp>> pending_;  // (submit time, op).
  int free_threads_ = 0;
  uint64_t completed_ = 0;
  uint64_t issued_ = 0;

  // Per-node contention state (indexed by NodeId).
  std::vector<NodeState> nodes_;
  NodeState ssd_read_state_;

  // Kernel-side cost of last epoch's migrations (page copies + TLB
  // shootdowns), amortized over the next epoch's operations.
  double migration_stall_ns_per_op_ = 0.0;

  // Persistent traffic model: resources (and their name strings) are built
  // once; epochs only ClearTraffic() and re-add flows. Same add order as a
  // fresh model, so flow ids and solver results are unchanged.
  topology::TrafficModel traffic_;
  // Per-epoch transients (the node->flow map) bump-allocate here; Reset()
  // at each RefreshContention recycles the blocks.
  Arena epoch_arena_;
  // Cached pcm series/gauge handles + kv.kops series, attached lazily at
  // the first telemetry epoch (a sink that sees no epoch registers nothing).
  topology::PcmTelemetryHandles pcm_handles_;
  telemetry::TimeSeries* kv_kops_series_ = nullptr;
  telemetry::TimeSeries* kv_mean_latency_series_ = nullptr;

  // Epoch accumulators.
  std::vector<double> epoch_node_bytes_;
  double epoch_ssd_read_bytes_ = 0.0;
  double epoch_ssd_write_bytes_ = 0.0;
  double epoch_start_ns_ = 0.0;
  double epoch_migrated_bytes_ = 0.0;  // Charged next epoch.

  // Measured latencies buffered per epoch in completion order and flushed
  // into the result histograms in one batch (identical Record order, so
  // snapshots are bit-identical to per-op recording).
  std::vector<double> epoch_latency_us_;
  std::vector<uint8_t> epoch_latency_is_write_;
  std::vector<double> latency_flush_scratch_;
  // Mean of the batch most recently flushed (this epoch's latencies).
  double epoch_mean_latency_us_ = 0.0;

  Result result_;
  RunningStats service_stats_;
  double measure_start_ns_ = 0.0;
  uint64_t measured_ops_ = 0;

  // Load-shedding state (only mutated when an enabled injector is present).
  bool shedding_ = false;
  int degraded_epochs_ = 0;
  double baseline_epoch_kops_ = 0.0;  // First epoch's throughput, the healthy bar.
  uint64_t shed_every_ = 4;           // Reject every k-th arrival while shedding.
  uint64_t dispatch_counter_ = 0;     // Deterministic shed selector.
  // Window the open shed episode was attributed to (kv_shed_off echoes it).
  int32_t shed_window_ = telemetry::kNoWindow;

  // Warm-start cache observability: cache-hit count at the previous epoch's
  // solve, for detecting forced re-solves (solver_cache_invalidate events).
  uint64_t last_cache_hits_ = 0;
  bool have_solver_stats_ = false;
};

}  // namespace cxl::apps::kv

#endif  // CXL_EXPLORER_SRC_APPS_KV_SERVER_H_
