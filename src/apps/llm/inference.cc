#include "src/apps/llm/inference.h"

#include <algorithm>
#include <cmath>

#include "src/mem/access.h"
#include "src/mem/profiles.h"
#include "src/util/units.h"

namespace cxl::apps::llm {

using mem::AccessMix;
using mem::GetProfile;
using mem::MemoryPath;

LlmPlacement LlmPlacement::Interleave(int top, int low) {
  LlmPlacement p;
  p.mmem_share = static_cast<double>(top) / (top + low);
  p.label = std::to_string(top) + ":" + std::to_string(low);
  return p;
}

double LlmInferenceSim::TotalDemandGBps(int total_threads) const {
  // Backends of `threads_per_backend` threads; partially-filled last backend
  // allowed. Each backend's demand ramps linearly and clips at the plateau.
  double demand = 0.0;
  int remaining = total_threads;
  while (remaining > 0) {
    const int t = std::min(remaining, config_.threads_per_backend);
    demand += std::min(t * config_.per_thread_demand_gbps, config_.backend_plateau_gbps);
    remaining -= t;
  }
  return demand;
}

double LlmInferenceSim::SingleBackendBandwidthGBps(int threads) const {
  return std::min(threads * config_.per_thread_demand_gbps, config_.backend_plateau_gbps);
}

double LlmInferenceSim::KvCacheBandwidthGBps(double kv_cache_bytes) const {
  // With an unbounded prompt the decoder re-reads the whole KV cache each
  // token. The token rate falls as attention grows with the context
  // (rate ~ r0 / (1 + kv/kv0)), so KV traffic kv * rate(kv) saturates at
  // r0 * kv0 — the ~9 GB/s increment that tops Fig. 10(c) out near 21 GB/s
  // over the 12 GB/s model-load floor.
  const double r0 = 30.0;        // tokens/s at negligible context.
  const double kv0 = 0.3e9;      // context bytes that halve the rate.
  const double rate = r0 / (1.0 + kv_cache_bytes / kv0);
  return config_.model_io_floor_gbps + GbpsFromBytesPerSec(kv_cache_bytes * rate);
}

LlmBatchPoint LlmInferenceSim::SolveBatched(const LlmPlacement& placement, int total_threads,
                                            int batch, int context_tokens) const {
  LlmBatchPoint pt;
  pt.batch = std::max(1, batch);
  const double kv_context_bytes = config_.model.kv_bytes_per_token * context_tokens;
  pt.kv_cache_bytes_total = kv_context_bytes * pt.batch;
  // Per decode step: weights once + every sequence's KV cache; the step
  // yields `batch` tokens.
  pt.bytes_per_token = config_.model.weight_bytes / pt.batch + kv_context_bytes;
  // Bandwidth supply and queueing quality are those of the unbatched solve
  // (same threads, same placement); only the byte cost per token changes.
  const LlmServingPoint base = Solve(placement, total_threads);
  const double effective_gbps =
      GbpsFromBytesPerSec(base.serving_rate_tokens_s * config_.model.bytes_per_token_per_thread);
  pt.tokens_per_second = GbpsToBytesPerSec(effective_gbps) / pt.bytes_per_token;
  return pt;
}

int LlmInferenceSim::MaxBatchForCapacity(double available_bytes, int context_tokens) const {
  const double kv_context_bytes = config_.model.kv_bytes_per_token * context_tokens;
  const double for_kv = available_bytes - config_.model.weight_bytes;
  if (for_kv < kv_context_bytes) {
    return 0;
  }
  return static_cast<int>(for_kv / kv_context_bytes);
}

LlmServingPoint LlmInferenceSim::Solve(const LlmPlacement& placement, int total_threads) const {
  LlmServingPoint pt;
  pt.threads = total_threads;
  const AccessMix mix{config_.read_fraction, true};
  const auto& dram = GetProfile(MemoryPath::kLocalDram);   // One SNC domain.
  const auto& cxl = GetProfile(MemoryPath::kLocalCxl);

  const double demand = TotalDemandGBps(total_threads);
  const double d_m = demand * placement.mmem_share;
  const double d_c = demand * (1.0 - placement.mmem_share);

  const double peak_m = dram.PeakBandwidthGBps(mix) * config_.dram_bandwidth_scale;
  const double peak_c = cxl.PeakBandwidthGBps(mix);

  // Delivered bytes (open loop: prefetchers and the token pipeline keep the
  // links busy even past the knee — PCM sees this number).
  const double b_m = std::min(d_m, 0.98 * peak_m);
  const double b_c = std::min(d_c, 0.98 * peak_c);
  pt.mem_bandwidth_gbps = b_m + b_c;
  pt.mmem_utilization = peak_m > 0.0 ? std::min(d_m / peak_m, 0.98) : 0.0;
  pt.cxl_utilization = peak_c > 0.0 ? std::min(d_c / peak_c, 0.98) : 0.0;
  pt.mmem_latency_ns = dram.MakeQueueModel(mix).LatencyAt(pt.mmem_utilization);
  pt.cxl_latency_ns = cxl.MakeQueueModel(mix).LatencyAt(pt.cxl_utilization);

  // Token rate: delivered bytes discounted by queueing quality per pool.
  const double q_m =
      std::pow(dram.IdleLatencyNs(mix) / pt.mmem_latency_ns, config_.gamma_dram);
  const double q_c = std::pow(cxl.IdleLatencyNs(mix) / pt.cxl_latency_ns, config_.gamma_cxl) *
                     config_.cxl_intrinsic_efficiency;
  const double effective_gbps = b_m * q_m + b_c * q_c;
  pt.serving_rate_tokens_s =
      GbpsToBytesPerSec(effective_gbps) / config_.model.bytes_per_token_per_thread;
  return pt;
}

}  // namespace cxl::apps::llm
