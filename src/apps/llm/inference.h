// CPU LLM inference serving model (§5).
//
// The paper's setup: a LightLLM-style frontend dispatches requests to CPU
// inference backends of 12 threads each, all bound to a single SNC-4 domain
// (2 x DDR5-4800, ~67 GB/s read peak) plus a 256 GB A1000 CXL expander.
// Decode is memory-bound: each generated token streams the (Alpaca-7B,
// 4.1 GB) weights and the growing KV cache. Backends are added to raise the
// serving rate until memory bandwidth saturates; weighted interleaving
// (3:1 / 1:1 / 1:3) spills part of the traffic onto the CXL expander.
//
// Model mechanics:
//  - each thread demands `per_thread_demand_gbps` of memory traffic when
//    unthrottled (Fig. 10(b): ~1.05 GB/s/thread, plateauing per backend);
//  - traffic splits across DRAM / CXL by the interleave share;
//  - each pool delivers min(demand, ~peak) and runs at a utilization with a
//    loaded latency from the calibrated queue model;
//  - serving quality degrades with queueing ((idle/loaded)^gamma): past the
//    knee, latency spikes destroy token rate even though PCM-style byte
//    counters still show high bandwidth — the §5.2/§5.3 observation;
//  - CXL-served traffic carries an intrinsic-latency efficiency factor
//    (~0.80), so at low load more-DRAM placements win.
#ifndef CXL_EXPLORER_SRC_APPS_LLM_INFERENCE_H_
#define CXL_EXPLORER_SRC_APPS_LLM_INFERENCE_H_

#include <string>

namespace cxl::apps::llm {

struct LlmModelConfig {
  // Alpaca-7B (§5.1): 4.1 GB of weights.
  double weight_bytes = 4.1e9;
  // KV-cache bytes appended per generated token (2 tensors x 32 layers x
  // 4096 hidden x fp16).
  double kv_bytes_per_token = 0.5e6;
  // Effective bytes streamed per token per thread (weights slice + KV).
  double bytes_per_token_per_thread = 0.35e9;
};

struct LlmServingConfig {
  LlmModelConfig model;
  int threads_per_backend = 12;
  // Fig. 10(b): per-thread demand slope and per-backend plateau.
  double per_thread_demand_gbps = 1.05;
  double backend_plateau_gbps = 24.2;
  // Quality exponents: token rate scales with (idle/loaded)^gamma on each
  // pool. CXL queueing hurts more (deeper pipeline behind the controller).
  double gamma_dram = 0.45;
  double gamma_cxl = 1.3;
  // Intrinsic efficiency of CXL-served decode traffic at idle.
  double cxl_intrinsic_efficiency = 0.80;
  // Fig. 10(c): model-load I/O floor.
  double model_io_floor_gbps = 12.0;
  // Read fraction of decode traffic (weights reads dominate; KV appends
  // write).
  double read_fraction = 0.875;
  // DRAM channel pairs available to the backends: 1 = one SNC-4 domain
  // (the paper's §5.1 binding, which saturates early by design), 4 = the
  // whole SNC-off socket.
  double dram_bandwidth_scale = 1.0;
};

// Batched decode (§5's motivation: "The limited capacity of GPU memory
// restricts the batch size of the LLM inference job"; CXL supplies both the
// bandwidth and the capacity to raise it). One decode step streams the
// weights once for the whole batch but each sequence's KV cache separately:
//   bytes/token(B) = weights/B + kv_context_bytes.
struct LlmBatchPoint {
  int batch = 1;
  double tokens_per_second = 0.0;
  double bytes_per_token = 0.0;
  double kv_cache_bytes_total = 0.0;  // batch x context KV footprint.
};

// Placement of inference memory across the SNC domain's DRAM and the CXL
// expander (Table 1 interleave ratios; mmem_share = N/(N+M)).
struct LlmPlacement {
  double mmem_share = 1.0;
  std::string label = "MMEM";

  static LlmPlacement MmemOnly() { return {1.0, "MMEM"}; }
  static LlmPlacement Interleave(int top, int low);
};

struct LlmServingPoint {
  int threads = 0;
  double serving_rate_tokens_s = 0.0;
  double mem_bandwidth_gbps = 0.0;  // Byte-counter view (PCM-style).
  double mmem_utilization = 0.0;
  double cxl_utilization = 0.0;
  double mmem_latency_ns = 0.0;
  double cxl_latency_ns = 0.0;
};

class LlmInferenceSim {
 public:
  explicit LlmInferenceSim(LlmServingConfig config = {}) : config_(config) {}

  // Serving rate with `total_threads` inference threads under `placement`
  // (Fig. 10(a) series).
  LlmServingPoint Solve(const LlmPlacement& placement, int total_threads) const;

  // Fig. 10(b): memory bandwidth of a single backend as its thread count
  // grows (linear, then the 24.2 GB/s plateau).
  double SingleBackendBandwidthGBps(int threads) const;

  // Fig. 10(c): bandwidth vs KV-cache size with an unbounded prompt: the
  // model-load floor plus KV traffic that saturates as longer contexts slow
  // the token rate (kv_bytes * rate(kv) -> plateau).
  double KvCacheBandwidthGBps(double kv_cache_bytes) const;

  // Extension: serving rate of batched decode at `batch` sequences of
  // `context_tokens` context. Same bandwidth supply as Solve(); the batch
  // amortizes the weight stream across tokens.
  LlmBatchPoint SolveBatched(const LlmPlacement& placement, int total_threads, int batch,
                             int context_tokens = 2048) const;

  // Largest batch whose KV caches fit in `available_bytes` alongside the
  // weights (the capacity constraint CXL relaxes).
  int MaxBatchForCapacity(double available_bytes, int context_tokens = 2048) const;

  const LlmServingConfig& config() const { return config_; }

 private:
  // Demand offered by `total_threads`, accounting for per-backend plateaus.
  double TotalDemandGBps(int total_threads) const;

  LlmServingConfig config_;
};

}  // namespace cxl::apps::llm

#endif  // CXL_EXPLORER_SRC_APPS_LLM_INFERENCE_H_
