#include "src/apps/llm/serving.h"

#include <algorithm>
#include <string>

namespace cxl::apps::llm {

ServingStack::ServingStack(ServingStackConfig config)
    : config_(std::move(config)), sim_(config_.inference) {}

ServingStack::Stats ServingStack::SteadyState(const ServingRequest& request) const {
  Stats stats;
  const int threads = config_.backends * config_.inference.threads_per_backend;
  const LlmServingPoint pt = sim_.Solve(config_.placement, threads);
  stats.tokens_per_second = pt.serving_rate_tokens_s;
  stats.mem_bandwidth_gbps = pt.mem_bandwidth_gbps;
  const int tokens_per_request = request.output_tokens;
  if (tokens_per_request > 0 && stats.tokens_per_second > 0.0) {
    stats.requests_per_second = stats.tokens_per_second / tokens_per_request;
    // One request decodes on one backend at the per-backend share of rate.
    const double backend_rate = stats.tokens_per_second / config_.backends;
    stats.mean_request_seconds = tokens_per_request / backend_rate;
  }
  stats.kv_cache_bytes_per_backend =
      (request.prompt_tokens + request.output_tokens) *
      config_.inference.model.kv_bytes_per_token * config_.max_inflight_per_backend;
  return stats;
}

ServingStack::Stats ServingStack::Drive(const ServingRequest& request, int n,
                                        Histogram* latency_s, uint64_t seed,
                                        telemetry::MetricRegistry* sink,
                                        fault::FaultInjector* faults) const {
  Stats steady = SteadyState(request);
  if (n <= 0 || steady.mean_request_seconds <= 0.0) {
    return steady;
  }
  const bool faulty = faults != nullptr && faults->enabled();
  uint64_t batch_shrinks = 0;
  int min_batch = std::max(1, config_.decode_batch);
  std::vector<telemetry::TraceBuffer::TrackId> backend_tracks;
  if (sink != nullptr) {
    backend_tracks.reserve(static_cast<size_t>(config_.backends));
    for (int b = 0; b < config_.backends; ++b) {
      backend_tracks.push_back(sink->trace().Track("llm/backend" + std::to_string(b)));
    }
  }
  Rng rng(seed);
  // Backends drain a shared arrival queue; with back-to-back arrivals every
  // backend stays busy and each request sees its decode time plus queueing
  // for a free backend slot. Output lengths jitter around the nominal size.
  std::vector<double> backend_free_at(static_cast<size_t>(config_.backends), 0.0);
  // Batch-change event state: the effective decode batch the previous
  // request ran with, and the window the open shrink episode attributes to.
  int last_batch = std::max(1, config_.decode_batch);
  int32_t shrink_window = telemetry::kNoWindow;
  double now = 0.0;
  double total_busy = 0.0;
  for (int i = 0; i < n; ++i) {
    auto slot = std::min_element(backend_free_at.begin(), backend_free_at.end());
    const double start = std::max(now, *slot);
    const double tokens = std::max(1.0, rng.NextGaussian(request.output_tokens,
                                                         0.15 * request.output_tokens));
    const double decode = steady.mean_request_seconds * tokens / request.output_tokens;
    // Degradation response: during a CXL bandwidth collapse, halve the
    // decode batch until per-request latency clears the SLO. A batch of B
    // streams the weights once plus B KV caches, so latency inflates by
    // ((W + B*K) / (W + B0*K)) / bw relative to healthy full-batch decode,
    // while occupancy per request grows by B0/B (fewer requests share the
    // weight pass). Both factors are exactly 1.0 on healthy runs.
    double lat_inflation = 1.0;
    double occupancy = 1.0;
    int effective_batch = std::max(1, config_.decode_batch);
    if (faulty) {
      faults->AdvanceTo(start);
      const double bw = faults->CxlBandwidthFactor();
      const auto& tun = faults->tunables();
      if (bw < tun.llm_batch_shrink_threshold) {
        const double w = config_.inference.model.weight_bytes;
        const double kv = (request.prompt_tokens + request.output_tokens) *
                          config_.inference.model.kv_bytes_per_token;
        const int full = std::max(1, config_.decode_batch);
        int batch = full;
        const auto inflation_at = [&](int b) { return ((w + b * kv) / (w + full * kv)) / bw; };
        lat_inflation = inflation_at(batch);
        while (batch > 1 && lat_inflation > tun.llm_latency_slo_factor) {
          batch /= 2;
          lat_inflation = inflation_at(batch);
          ++batch_shrinks;
        }
        occupancy = (static_cast<double>(full) / batch) * lat_inflation;
        min_batch = std::min(min_batch, batch);
        effective_batch = batch;
      }
    }
    // Batch transitions become events: a shrink attributes to the active
    // link window (a bandwidth collapse implies one); the recovery echoes
    // the window the shrink named, since the fault is over by then.
    if (sink != nullptr && effective_batch != last_batch) {
      const bool shrink = effective_batch < last_batch;
      const int32_t window = shrink ? faults->ActiveLinkWindow() : shrink_window;
      if (shrink) {
        shrink_window = window;
      }
      if (window != telemetry::kNoWindow) {
        sink->events().Record(
            telemetry::Event(telemetry::EventKind::kLlmBatchShrink, start * 1e3)
                .WithWindow(window)
                .WithReason(shrink ? 0 : 1)
                .WithA(effective_batch)
                .WithB(lat_inflation));
      }
      last_batch = effective_batch;
    }
    *slot = start + decode * occupancy;
    total_busy += decode * lat_inflation;
    if (latency_s != nullptr) {
      latency_s->Record(start + decode * lat_inflation - now);
    }
    if (sink != nullptr) {
      const auto backend = static_cast<size_t>(slot - backend_free_at.begin());
      sink->trace().Span(backend_tracks[backend], "request " + std::to_string(i),
                         start * 1e3, decode * occupancy * 1e3, {{"tokens", tokens}});
      sink->timeline().Sample("llm.request_seconds", *slot * 1e3, *slot - now);
      sink->GetCounter("llm.requests").Increment();
      sink->GetCounter("llm.tokens").Add(static_cast<uint64_t>(tokens));
    }
    // Single-threaded client (§5.1): it fires the next request immediately.
  }
  const double makespan = *std::max_element(backend_free_at.begin(), backend_free_at.end());
  Stats stats = steady;
  if (makespan > 0.0) {
    stats.requests_per_second = n / makespan;
    stats.tokens_per_second = stats.requests_per_second * request.output_tokens;
    stats.mean_request_seconds = total_busy / n;
  }
  stats.batch_shrinks = batch_shrinks;
  stats.min_batch = batch_shrinks > 0 ? min_batch : 0;
  if (sink != nullptr && batch_shrinks > 0) {
    sink->GetCounter("llm.batch_shrinks").Add(batch_shrinks);
  }
  if (sink != nullptr) {
    sink->GetGauge("llm.tokens_per_second").Set(stats.tokens_per_second);
    sink->GetGauge("llm.requests_per_second").Set(stats.requests_per_second);
    sink->GetGauge("llm.mean_request_seconds").Set(stats.mean_request_seconds);
    sink->GetGauge("llm.mem_bandwidth_gbps").Set(stats.mem_bandwidth_gbps);
  }
  return stats;
}

}  // namespace cxl::apps::llm
