// LLM serving stack plumbing (Fig. 9): HTTP frontend -> router -> CPU
// inference backends with per-backend KV caches.
//
// The paper replaces LightLLM's GPU backend with a CPU backend; requests are
// tokenized at the HTTP server, routed round-robin to backends, and each
// backend decodes with its private KV cache. This module models the serving
// pipeline around LlmInferenceSim so the examples/benches exercise the full
// request path: arrival -> queue at router -> decode (token loop) -> reply.
#ifndef CXL_EXPLORER_SRC_APPS_LLM_SERVING_H_
#define CXL_EXPLORER_SRC_APPS_LLM_SERVING_H_

#include <cstdint>
#include <vector>

#include "src/apps/llm/inference.h"
#include "src/fault/fault.h"
#include "src/telemetry/metrics.h"
#include "src/util/histogram.h"
#include "src/util/rng.h"

namespace cxl::apps::llm {

struct ServingRequest {
  uint64_t id = 0;
  int prompt_tokens = 512;     // 2048-byte prompt context (§5.1).
  int output_tokens = 128;     // Tokens to generate.
};

struct ServingStackConfig {
  LlmServingConfig inference;
  LlmPlacement placement = LlmPlacement::MmemOnly();
  int backends = 4;
  // Router queue capacity per backend; beyond this, requests wait.
  int max_inflight_per_backend = 1;
  // Decode batch size per backend under healthy conditions. The degradation
  // response halves it while a CXL bandwidth collapse is active: a smaller
  // batch streams less KV-cache per weight pass, trading throughput for
  // per-request latency that stays inside the SLO.
  int decode_batch = 8;
};

// Closed-form serving pipeline: computes steady-state request latency and
// throughput given continuous client pressure (the paper's single-threaded
// client keeps every backend busy).
class ServingStack {
 public:
  explicit ServingStack(ServingStackConfig config);

  struct Stats {
    double tokens_per_second = 0.0;       // Aggregate decode rate.
    double requests_per_second = 0.0;     // Completed requests.
    double mean_request_seconds = 0.0;    // Decode time per request.
    double mem_bandwidth_gbps = 0.0;
    double kv_cache_bytes_per_backend = 0.0;
    // Fault accounting (zero on healthy runs).
    uint64_t batch_shrinks = 0;  // Batch halvings taken during degradation.
    int min_batch = 0;           // Smallest decode batch used (0 = never shrunk).
  };

  // Steady state with every backend saturated by `request` -shaped work.
  Stats SteadyState(const ServingRequest& request) const;

  // Simulates `n` requests arriving back-to-back (per the paper's client)
  // and records per-request latency. Deterministic given the seed. When a
  // telemetry sink is given, every request becomes a span on its backend's
  // "llm/backend<i>" trace track (simulated seconds -> trace ms) and the run
  // leaves llm.* gauges, counters, and a llm.request_seconds series behind.
  // Purely observational: results are identical with or without the sink.
  // `faults` (nullable) is advanced along the simulated request timeline;
  // while the CXL bandwidth factor sits below the shrink threshold, the
  // router halves the decode batch until per-request latency clears the SLO
  // factor — smaller batches mean less KV streaming per weight pass (lower
  // latency) but lower backend occupancy efficiency (lower throughput).
  // A null or disabled injector leaves the run byte-identical.
  Stats Drive(const ServingRequest& request, int n, Histogram* latency_s,
              uint64_t seed = 1, telemetry::MetricRegistry* sink = nullptr,
              fault::FaultInjector* faults = nullptr) const;

  const ServingStackConfig& config() const { return config_; }

 private:
  ServingStackConfig config_;
  LlmInferenceSim sim_;
};

}  // namespace cxl::apps::llm

#endif  // CXL_EXPLORER_SRC_APPS_LLM_SERVING_H_
