#include "src/apps/spark/cluster.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/mem/access.h"
#include "src/mem/profiles.h"
#include "src/os/numa_policy.h"
#include "src/util/units.h"

namespace cxl::apps::spark {

using mem::AccessMix;
using topology::NodeId;
using topology::NodeKind;
using topology::Platform;
using topology::PlatformOptions;
using topology::TrafficModel;

namespace {

// Per-page cost of a migration observed by the application: TLB shootdown,
// page-table locking, and the brief unavailability of the page under copy.
constexpr double kMigrationStallSecondsPerPage = 60e-6;

}  // namespace

std::string ModeLabel(SparkMemoryMode mode) {
  switch (mode) {
    case SparkMemoryMode::kMmemOnly:
      return "MMEM";
    case SparkMemoryMode::kInterleave:
      return "interleave";
    case SparkMemoryMode::kSpill:
      return "spill";
    case SparkMemoryMode::kHotPromote:
      return "Hot-Promote";
  }
  return "?";
}

SparkConfig SparkConfig::MmemOnly() {
  SparkConfig cfg;
  cfg.mode = SparkMemoryMode::kMmemOnly;
  cfg.servers = 3;
  return cfg;
}

SparkConfig SparkConfig::Interleave(int top, int low) {
  SparkConfig cfg;
  cfg.mode = SparkMemoryMode::kInterleave;
  cfg.top_weight = top;
  cfg.low_weight = low;
  cfg.servers = 2;  // Two CXL servers replace three baseline servers.
  return cfg;
}

SparkConfig SparkConfig::Spill(double fraction) {
  SparkConfig cfg;
  cfg.mode = SparkMemoryMode::kSpill;
  cfg.memory_fraction = fraction;
  cfg.servers = 3;
  return cfg;
}

SparkConfig SparkConfig::HotPromote() {
  SparkConfig cfg;
  cfg.mode = SparkMemoryMode::kHotPromote;
  cfg.servers = 2;
  return cfg;
}

SparkCluster::SparkCluster(SparkConfig config) : config_(config) {
  const bool uses_cxl =
      config.mode == SparkMemoryMode::kInterleave || config.mode == SparkMemoryMode::kHotPromote;
  PlatformOptions opt;  // SNC disabled for the Spark experiments (§4.2.1).
  opt.cxl_cards = uses_cxl ? 2 : 0;
  if (config.mode == SparkMemoryMode::kHotPromote) {
    // §4.1/4.2 Hot-Promote setup: main-memory usage capped at half the
    // dataset, the other half starting on CXL. Sizing DRAM to exactly half
    // of the per-server executor memory realises the cap physically.
    const double per_server_mem =
        config.executor_mem_bytes * config.total_executors / config.servers;
    opt.dram_per_socket = static_cast<uint64_t>(per_server_mem / 2.0 / 2.0);
  }
  platform_ = std::make_unique<Platform>(Platform::Build(opt));

  // One modelled server (all servers are symmetric); executors split across
  // its two sockets.
  const int execs_per_server = config.total_executors / config.servers;
  const auto cxl_nodes = platform_->CxlNodes();
  for (int socket = 0; socket < 2; ++socket) {
    ExecutorGroup g;
    g.cpu_socket = socket;
    g.executors = execs_per_server / 2 + (socket == 0 ? execs_per_server % 2 : 0);
    g.node_shares.assign(platform_->nodes().size(), 0.0);
    const NodeId own_dram = platform_->DramNodes(socket)[0];
    if (config.mode == SparkMemoryMode::kInterleave) {
      const double low_share =
          static_cast<double>(config.low_weight) / (config.top_weight + config.low_weight);
      g.node_shares[static_cast<size_t>(own_dram)] = 1.0 - low_share;
      for (NodeId c : cxl_nodes) {
        g.node_shares[static_cast<size_t>(c)] = low_share / cxl_nodes.size();
      }
    } else {
      g.node_shares[static_cast<size_t>(own_dram)] = 1.0;
    }
    groups_.push_back(std::move(g));
  }

  if (config.mode == SparkMemoryMode::kHotPromote) {
    allocator_ = std::make_unique<os::PageAllocator>(*platform_);
    os::TieringConfig tc;
    tc.policy = config.tiering_policy;
    tc.promote_rate_limit_mbps = config.promote_rate_limit_mbps;
    tc.dynamic_threshold = true;
    tc.hint_fault_sample_rate = 0.05;
    tiering_ = std::make_unique<os::TieredMemory>(*allocator_, tc);
    // Executor memory of the modelled server, half DRAM / half CXL.
    const double per_server_mem =
        config.executor_mem_bytes * config.total_executors / config.servers;
    std::vector<NodeId> dram = platform_->DramNodes();
    auto region = os::MemoryRegion::Allocate(
        *allocator_, os::NumaPolicy::WeightedInterleave(dram, cxl_nodes, 1, 1),
        static_cast<uint64_t>(per_server_mem));
    assert(region.ok());
    region_ = std::make_unique<os::MemoryRegion>(std::move(region).value());
    // Placement-driven shares.
    const auto shares = region_->NodeShares();
    for (auto& g : groups_) {
      g.node_shares = shares;
    }
  }
}

double SparkCluster::SpilledBytes(const QueryProfile& query) const {
  if (config_.mode != SparkMemoryMode::kSpill || config_.memory_fraction >= 1.0) {
    return 0.0;
  }
  // Restricting executor memory to fraction f spills the overflow of the
  // query's in-memory demand. Partition skew makes the spill grow faster
  // than the raw capacity gap (hot partitions overflow first).
  const double demand = query.input_working_set_bytes + query.shuffle_bytes;
  const double skew_factor = 1.4;
  return std::min(demand, skew_factor * (1.0 - config_.memory_fraction) * demand);
}

double SparkCluster::SolvePhaseSeconds(double payload_bytes_per_server, double read_fraction,
                                       const std::vector<double>& extra_node_gbps,
                                       double* cxl_share_out) {
  const double dram_idle = mem::GetProfile(mem::MemoryPath::kLocalDram)
                               .IdleLatencyNs(AccessMix{read_fraction, true});
  const AccessMix mix{read_fraction, true};

  // Iterated fixed point between executor processing rate and loaded
  // latency.
  std::vector<std::vector<double>> group_node_latency(groups_.size());
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    group_node_latency[gi].assign(platform_->nodes().size(), 0.0);
    for (const auto& n : platform_->nodes()) {
      group_node_latency[gi][static_cast<size_t>(n.id)] =
          platform_->ProfileFor(groups_[gi].cpu_socket, n.id).IdleLatencyNs(mix);
    }
  }

  std::vector<double> rate(groups_.size(), config_.base_proc_gbps);
  for (int iter = 0; iter < 6; ++iter) {
    TrafficModel traffic(*platform_);
    std::vector<std::vector<TrafficModel::FlowId>> flows(groups_.size());
    for (size_t gi = 0; gi < groups_.size(); ++gi) {
      const ExecutorGroup& g = groups_[gi];
      // Effective latency under the group's placement.
      double l_eff = 0.0;
      for (const auto& n : platform_->nodes()) {
        l_eff += g.node_shares[static_cast<size_t>(n.id)] *
                 group_node_latency[gi][static_cast<size_t>(n.id)];
      }
      rate[gi] = config_.base_proc_gbps *
                 std::pow(dram_idle / std::max(l_eff, dram_idle), config_.latency_sensitivity);
      // Offer this round's traffic.
      flows[gi].assign(platform_->nodes().size(), -1);
      const double group_gbps = g.executors * rate[gi] * config_.mem_amplification;
      for (const auto& n : platform_->nodes()) {
        const double share = g.node_shares[static_cast<size_t>(n.id)];
        if (share > 0.0) {
          flows[gi][static_cast<size_t>(n.id)] =
              traffic.AddMemoryTraffic(g.cpu_socket, n.id, mix, group_gbps * share);
        }
      }
    }
    for (const auto& n : platform_->nodes()) {
      const double extra =
          extra_node_gbps.empty() ? 0.0 : extra_node_gbps[static_cast<size_t>(n.id)];
      if (extra > 0.0) {
        traffic.AddMemoryTraffic(0, n.id, AccessMix{0.5, true}, extra);
      }
    }
    const auto sol = traffic.Solve();
    for (size_t gi = 0; gi < groups_.size(); ++gi) {
      for (const auto& n : platform_->nodes()) {
        const auto f = flows[gi][static_cast<size_t>(n.id)];
        if (f >= 0) {
          group_node_latency[gi][static_cast<size_t>(n.id)] = sol.flows[f].latency_ns;
        }
      }
    }
  }

  last_group_rates_ = rate;
  // Straggler semantics: the phase ends when the slowest group finishes its
  // (executor-proportional) slice.
  const int execs_per_server = config_.total_executors / config_.servers;
  double phase_seconds = 0.0;
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    const double t = payload_bytes_per_server / GbpsToBytesPerSec(execs_per_server * rate[gi]);
    phase_seconds = std::max(phase_seconds, t);
  }
  // Cross-server traffic through the NIC: each server receives
  // (servers-1)/servers of its shuffle slice over 100 Gbps Ethernet.
  const double remote_fraction = (config_.servers - 1.0) / config_.servers;
  const double net_seconds =
      payload_bytes_per_server * remote_fraction /
      GbpsToBytesPerSec(config_.network_gbps_per_server);
  phase_seconds = std::max(phase_seconds, net_seconds);

  if (cxl_share_out != nullptr) {
    double cxl_share = 0.0;
    double weight = 0.0;
    for (const auto& g : groups_) {
      for (const auto& n : platform_->nodes()) {
        if (n.kind == NodeKind::kCxl) {
          cxl_share += g.executors * g.node_shares[static_cast<size_t>(n.id)];
        }
      }
      weight += g.executors;
    }
    *cxl_share_out = weight > 0.0 ? cxl_share / weight : 0.0;
  }
  return phase_seconds;
}

void SparkCluster::AttachTelemetry(telemetry::MetricRegistry* sink) {
  telemetry_ = sink;
  if (telemetry_ != nullptr) {
    spark_track_ = telemetry_->trace().Track("spark/" + ModeLabel(config_.mode));
  }
  if (tiering_ != nullptr) {
    tiering_->Attach(TieringObservers());
  }
}

void SparkCluster::AttachFaults(fault::FaultInjector* faults) {
  faults_ = faults;
  if (tiering_ != nullptr) {
    tiering_->Attach(TieringObservers());
  }
}

os::TieredMemory::Observers SparkCluster::TieringObservers() const {
  os::TieredMemory::Observers obs;
  obs.telemetry = telemetry_;
  if (faults_ != nullptr && faults_->enabled()) {
    obs.faults = faults_;
  }
  return obs;
}

void SparkCluster::ResetHotPromoteState() {
  if (region_ == nullptr) {
    return;
  }
  // Each query is an independent run (the paper measures queries
  // separately): rebuild allocator + region + daemon so page-id recycling
  // order and the daemon's adapted threshold cannot leak between queries.
  allocator_ = std::make_unique<os::PageAllocator>(*platform_);
  auto region = os::MemoryRegion::Allocate(
      *allocator_,
      os::NumaPolicy::WeightedInterleave(platform_->DramNodes(), platform_->CxlNodes(), 1, 1),
      static_cast<uint64_t>(config_.executor_mem_bytes * config_.total_executors /
                            config_.servers));
  assert(region.ok());
  *region_ = std::move(region).value();
  stream_cursor_ = 0;
  const os::TieringConfig tc = tiering_->config();
  tiering_ = std::make_unique<os::TieredMemory>(*allocator_, tc);
  tiering_->Attach(TieringObservers());
  const auto shares = region_->NodeShares();
  for (auto& g : groups_) {
    g.node_shares = shares;
  }
}

std::vector<SparkCluster::GroupRate> SparkCluster::SolveGroupRates(double read_fraction) {
  // Run the same fixed point as SolvePhaseSeconds and read back the rates.
  // (A probe payload; rates are load-dependent only through the fixed point,
  // not through the payload size.)
  std::vector<double> no_extra;
  double unused_share = 0.0;
  SolvePhaseSeconds(static_cast<double>(kGB), read_fraction, no_extra, &unused_share);
  std::vector<GroupRate> out;
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    out.push_back(GroupRate{groups_[gi].cpu_socket, groups_[gi].executors,
                            last_group_rates_.empty() ? config_.base_proc_gbps
                                                      : last_group_rates_[gi]});
  }
  return out;
}

QueryResult SparkCluster::RunQuery(const QueryProfile& query) {
  ResetHotPromoteState();
  if (faults_ != nullptr) {
    faults_->AdvanceTo(trace_clock_s_);
  }
  QueryResult result;
  const double payload_per_server = query.shuffle_bytes / config_.servers;
  std::vector<double> extra(platform_->nodes().size(), 0.0);

  // --- Compute (scan/join) phase: mildly latency-sensitive. -----------------
  double cxl_share = 0.0;
  {
    double l_eff_num = 0.0;
    double weight = 0.0;
    const AccessMix read_mix = AccessMix::ReadOnly();
    for (const auto& g : groups_) {
      for (const auto& n : platform_->nodes()) {
        l_eff_num += g.executors * g.node_shares[static_cast<size_t>(n.id)] *
                     platform_->ProfileFor(g.cpu_socket, n.id).IdleLatencyNs(read_mix);
      }
      weight += g.executors;
    }
    const double l_eff = l_eff_num / weight;
    const double dram_idle =
        mem::GetProfile(mem::MemoryPath::kLocalDram).IdleLatencyNs(read_mix);
    result.compute_seconds =
        query.compute_seconds * std::pow(l_eff / dram_idle, 0.35);
  }

  // --- Hot-Promote daemon over the compute phase. ---------------------------
  auto run_tiering = [&](double phase_seconds) {
    if (tiering_ == nullptr || region_ == nullptr) {
      return;
    }
    // Streaming access pattern: a window of pages is "hot" and the window
    // advances every daemon interval — reduced data locality, exactly the
    // regime where the kernel's promotion heuristic thrashes (§4.2.2).
    const double interval_s = 1.0;
    const int ticks = std::max(1, static_cast<int>(phase_seconds / interval_s));
    const size_t window = std::max<size_t>(1, region_->page_count() / 50);
    double migrated = 0.0;
    uint64_t migrated_pages = 0;
    for (int t = 0; t < ticks; ++t) {
      for (size_t i = 0; i < window; ++i) {
        const size_t idx = (stream_cursor_ + i) % region_->page_count();
        tiering_->RecordAccess(region_->PageAtIndex(idx), 400);
      }
      stream_cursor_ = (stream_cursor_ + window) % region_->page_count();
      const auto tick = tiering_->Tick(interval_s);
      migrated += tick.migrated_bytes;
      migrated_pages += tick.promoted_pages + tick.demoted_pages;
    }
    result.migrated_bytes += migrated;
    // Migration bandwidth interferes with the next phase's traffic.
    const double mig_gbps = GbpsFromBytesPerSec(migrated / std::max(phase_seconds, 1.0));
    for (const auto& n : platform_->nodes()) {
      extra[static_cast<size_t>(n.id)] = mig_gbps / platform_->nodes().size();
    }
    // Application-visible stalls from page unmapping/TLB shootdowns.
    result.compute_seconds += migrated_pages * kMigrationStallSecondsPerPage;
    // Placement changed. Use *access-weighted* shares: the daemon promotes
    // the currently-streamed window, so the share of traffic served by DRAM
    // exceeds DRAM's capacity share — by however much of the window the
    // rate limit managed to move before it went cold (the §4.2.2 tension).
    std::vector<double> shares(platform_->nodes().size(), 0.0);
    double total_heat = 0.0;
    for (size_t i = 0; i < region_->page_count(); ++i) {
      const auto pg = allocator_->page(region_->PageAtIndex(i));
      const double h = pg.heat + 0.01f;  // Floor: cold pages still get touched.
      shares[static_cast<size_t>(pg.node)] += h;
      total_heat += h;
    }
    if (total_heat > 0.0) {
      for (auto& s : shares) {
        s /= total_heat;
      }
      for (auto& g : groups_) {
        // Smooth: placement shifts lag the instantaneous heat snapshot.
        for (size_t i = 0; i < shares.size(); ++i) {
          g.node_shares[i] = 0.5 * g.node_shares[i] + 0.5 * shares[i];
        }
      }
    }
  };
  run_tiering(result.compute_seconds);

  // --- Shuffle write phase (map side): write-heavy (1:2 R:W). ---------------
  result.shuffle_write_seconds =
      SolvePhaseSeconds(payload_per_server, 1.0 / 3.0, extra, &cxl_share);
  run_tiering(result.shuffle_write_seconds);

  // --- Shuffle read phase (reduce side): read-heavy (2:1). ------------------
  result.shuffle_read_seconds =
      SolvePhaseSeconds(payload_per_server, 2.0 / 3.0, extra, &cxl_share);
  result.cxl_access_share = cxl_share;

  // --- Shuffle-fetch failures (fault injection): while a CXL-link fault is
  // active, fetches time out with the configured probability; Spark detects
  // the FetchFailedException on the reduce side and re-executes the failed
  // partitions, serialized after the healthy read wave (stage retry). ------
  if (faults_ != nullptr && faults_->enabled()) {
    faults_->AdvanceTo(trace_clock_s_ + result.compute_seconds + result.shuffle_write_seconds);
    const auto& tun = faults_->tunables();
    const int partitions = std::max(1, tun.spark_shuffle_partitions);
    int failed = 0;
    for (int p = 0; p < partitions; ++p) {
      if (faults_->SampleShuffleFailure(tun.spark_fetch_failure_probability)) {
        ++failed;
      }
    }
    if (failed > 0) {
      result.reexecuted_partitions = failed;
      result.retry_seconds =
          result.shuffle_read_seconds * static_cast<double>(failed) / partitions;
      result.shuffle_read_seconds += result.retry_seconds;
      if (telemetry_ != nullptr) {
        telemetry_->GetCounter("spark.reexecuted_partitions")
            .Add(static_cast<uint64_t>(failed));
        // Fetch failures only sample while the link is degraded, so the
        // active link window is the re-execution's cause by construction.
        telemetry_->events().Record(
            telemetry::Event(telemetry::EventKind::kSparkShuffleReexec, SecToMs(faults_->now_s()))
                .WithWindow(faults_->ActiveLinkWindow())
                .WithA(failed)
                .WithB(result.retry_seconds));
      }
    }
  }

  // --- Spill traffic (kSpill): shuffle overflow written to and re-read from
  // the NVMe array, serialized with the shuffle phases (Fig. 6). ------------
  result.spilled_bytes = SpilledBytes(query);
  if (result.spilled_bytes > 0.0) {
    // Multi-pass external sort: each spilled byte is written and re-read
    // `spill_amplification` times; dozens of executors interleave their
    // streams on the shared array, well below streaming efficiency.
    const auto& ssd = platform_->SsdProfile();
    const double per_server =
        result.spilled_bytes / config_.servers * config_.spill_amplification;
    const double w_gbps =
        ssd.PeakBandwidthGBps(AccessMix::WriteOnly()) * config_.spill_io_efficiency;
    const double r_gbps =
        ssd.PeakBandwidthGBps(AccessMix::ReadOnly()) * config_.spill_io_efficiency;
    result.shuffle_write_seconds += per_server / GbpsToBytesPerSec(w_gbps);
    result.shuffle_read_seconds += per_server / GbpsToBytesPerSec(r_gbps);
  }

  result.total_seconds =
      result.compute_seconds + result.shuffle_write_seconds + result.shuffle_read_seconds;

  if (telemetry_ != nullptr) {
    // One span per stage, laid end to end on the cluster's query clock.
    const double base_ms = SecToMs(trace_clock_s_);
    telemetry::TraceBuffer& trace = telemetry_->trace();
    trace.Span(spark_track_, query.name + " compute", base_ms, SecToMs(result.compute_seconds));
    trace.Span(spark_track_, query.name + " shuffle-write",
               base_ms + SecToMs(result.compute_seconds), SecToMs(result.shuffle_write_seconds),
               {{"spilled_gb", BytesToGBd(result.spilled_bytes)}});
    trace.Span(spark_track_, query.name + " shuffle-read",
               base_ms + SecToMs(result.compute_seconds + result.shuffle_write_seconds),
               SecToMs(result.shuffle_read_seconds),
               {{"cxl_access_share", result.cxl_access_share}});
    const double end_ms = base_ms + SecToMs(result.total_seconds);
    telemetry::Timeline& timeline = telemetry_->timeline();
    timeline.Sample("spark.query_seconds", end_ms, result.total_seconds);
    timeline.Sample("spark.shuffle_share", end_ms, result.ShuffleShare());
    timeline.Sample("spark.cxl_access_share", end_ms, result.cxl_access_share);
    timeline.Sample("spark.spilled_gb", end_ms, BytesToGBd(result.spilled_bytes));
    timeline.Sample("spark.migrated_gb", end_ms, BytesToGBd(result.migrated_bytes));
    telemetry_->GetCounter("spark.queries").Increment();
    telemetry_->GetCounter("spark.spilled_bytes")
        .Add(static_cast<uint64_t>(result.spilled_bytes));
  }
  trace_clock_s_ += result.total_seconds;
  ++query_index_;
  return result;
}

}  // namespace cxl::apps::spark
