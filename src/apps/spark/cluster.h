// Spark cluster model: executors, shuffle phases, spill-to-SSD, and the
// Table 1 memory configurations applied to TPC-H queries (§4.2).
//
// Configurations compared by the paper:
//   - MMEM-only: 3 baseline servers, 50 executors each, everything in DRAM.
//   - Interleave N:M: 2 CXL servers, 75 executors each, executor memory
//     placed by the N:M tiered-interleave policy across DRAM and the CXL
//     cards (which sit on socket 0 — executors on socket 1 reach them
//     through the RSF-limited remote path, a first-class effect here).
//   - Spill-0.8 / Spill-0.6: 3 baseline servers with executor memory capped
//     to 80% / 60%, shuffle data spilling to the NVMe array.
//   - Hot-Promote: 2 CXL servers, 1:1 DRAM/CXL placement with the kernel
//     promotion daemon running — which thrashes on Spark's streaming access
//     pattern (§4.2.2).
//
// A query executes as compute + shuffle-write + shuffle-read phases. Phase
// throughput comes from a fixed point between per-executor processing rate
// (latency-sensitive row processing) and the platform bandwidth model;
// spill adds SSD traffic; Hot-Promote runs the *real* TieredMemory daemon
// against a streaming heat pattern and charges its migration traffic.
#ifndef CXL_EXPLORER_SRC_APPS_SPARK_CLUSTER_H_
#define CXL_EXPLORER_SRC_APPS_SPARK_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/apps/spark/query.h"
#include "src/fault/fault.h"
#include "src/os/page_allocator.h"
#include "src/os/region.h"
#include "src/os/tiering.h"
#include "src/telemetry/metrics.h"
#include "src/topology/platform.h"

namespace cxl::apps::spark {

enum class SparkMemoryMode {
  kMmemOnly,
  kInterleave,
  kSpill,
  kHotPromote,
};

std::string ModeLabel(SparkMemoryMode mode);

struct SparkConfig {
  SparkMemoryMode mode = SparkMemoryMode::kMmemOnly;
  // Interleave ratio (top:low) for kInterleave.
  int top_weight = 1;
  int low_weight = 1;
  // Executor-memory fraction for kSpill (0.8 or 0.6 in the paper).
  double memory_fraction = 1.0;
  // Cluster shape (§4.2.1).
  int servers = 3;                       // 3 baseline / 2 CXL servers.
  int total_executors = 150;             // 1 core, 8 GB each.
  double executor_mem_bytes = 8e9;
  // Per-executor row-processing rate on idle local DRAM (GB of shuffle
  // payload per second per core).
  double base_proc_gbps = 0.11;
  // Memory traffic amplification of shuffle processing (serialize + copy +
  // sort buffers touch each payload byte several times).
  double mem_amplification = 6.0;
  // Sensitivity of the row-processing rate to memory latency (rate scales
  // with (idle_dram_latency / effective_latency)^gamma). Shuffle row
  // processing chases pointers through deserialized records, so it is
  // super-linear in latency.
  double latency_sensitivity = 1.6;
  // Each spilled byte is written and re-read this many times across the
  // sort/merge passes (multi-pass external sort).
  double spill_amplification = 3.0;
  // Effective fraction of the SSD array's streaming bandwidth that
  // concurrent per-executor spill streams achieve (interleaved I/O).
  double spill_io_efficiency = 0.35;
  // 100 Gbps Ethernet per server (§2.4).
  double network_gbps_per_server = 12.5;
  // Promotion rate limit for kHotPromote (MB/s).
  double promote_rate_limit_mbps = 3000.0;
  // PolicyRegistry name of the promotion policy for kHotPromote; empty =
  // the TieringConfig default (hot page selection).
  std::string tiering_policy;

  static SparkConfig MmemOnly();
  static SparkConfig Interleave(int top, int low);
  static SparkConfig Spill(double fraction);
  static SparkConfig HotPromote();
};

struct QueryResult {
  double compute_seconds = 0.0;
  double shuffle_write_seconds = 0.0;
  double shuffle_read_seconds = 0.0;
  double total_seconds = 0.0;
  double spilled_bytes = 0.0;
  double migrated_bytes = 0.0;      // Hot-Promote daemon traffic.
  double cxl_access_share = 0.0;    // Share of memory accesses served by CXL.
  // Fault accounting (zero on healthy runs): shuffle-fetch failures detected
  // on the reduce side and the re-execution time they cost.
  int reexecuted_partitions = 0;
  double retry_seconds = 0.0;

  double ShuffleSeconds() const { return shuffle_write_seconds + shuffle_read_seconds; }
  double ShuffleShare() const {
    return total_seconds > 0.0 ? ShuffleSeconds() / total_seconds : 0.0;
  }
};

class SparkCluster {
 public:
  explicit SparkCluster(SparkConfig config);

  QueryResult RunQuery(const QueryProfile& query);

  // Attaches a telemetry sink (nullable). Each RunQuery then emits one span
  // per stage (compute / shuffle-write / shuffle-read) on the
  // "spark/<mode>" trace track, per-query series (spark.query_seconds,
  // spark.cxl_access_share, spark.spilled_gb), and — in Hot-Promote mode —
  // forwards the sink to the tiering daemon for its tick series. Spans are
  // laid out on a per-cluster simulated clock that advances by each query's
  // duration, so consecutive queries form a contiguous timeline.
  void AttachTelemetry(telemetry::MetricRegistry* sink);

  // Attaches a fault injector (nullable). The cluster advances the
  // injector's clock along its query timeline; while a CXL-link fault is
  // active, shuffle fetches fail with the configured probability and the
  // reduce side re-executes the failed partitions (Spark's stage-retry
  // semantics), charged as extra shuffle-read time. A null or disabled
  // injector leaves every query byte-identical to a faultless build.
  void AttachFaults(fault::FaultInjector* faults);

  // Steady-state per-executor processing rate (GB/s of shuffle payload) for
  // each executor group under the current placement — the fixed point the
  // phase model uses, exposed for the task-level DAG scheduler.
  struct GroupRate {
    int cpu_socket = 0;
    int executors = 0;
    double payload_gbps_per_executor = 0.0;
  };
  std::vector<GroupRate> SolveGroupRates(double read_fraction);

  const SparkConfig& config() const { return config_; }
  const topology::Platform& platform() const { return *platform_; }

 private:
  // One (socket)-group of executors on the modelled server with its memory
  // placement shares over the platform's nodes.
  struct ExecutorGroup {
    int cpu_socket = 0;
    int executors = 0;
    std::vector<double> node_shares;  // Indexed by NodeId; sums to 1.
  };

  // Fixed-point solve of one shuffle phase moving `payload_bytes` per
  // modelled server with `read_fraction` of the memory traffic being reads.
  // `extra_node_gbps` (optional, indexed by NodeId) adds background traffic
  // (migration). Returns the phase duration in seconds and, via out-params,
  // the achieved effective latency share on CXL.
  double SolvePhaseSeconds(double payload_bytes_per_server, double read_fraction,
                           const std::vector<double>& extra_node_gbps, double* cxl_share_out);

  // Spilled bytes for `query` under the current memory fraction.
  double SpilledBytes(const QueryProfile& query) const;

  // Restores the 1:1 placement and cold hotness state before a query
  // (Hot-Promote mode only; queries are measured as independent runs).
  void ResetHotPromoteState();

  // The daemon's current observer set (telemetry_ plus the injector when
  // enabled) — one struct for TieredMemory::Attach.
  os::TieredMemory::Observers TieringObservers() const;

  SparkConfig config_;
  std::unique_ptr<topology::Platform> platform_;  // One modelled server.
  std::vector<ExecutorGroup> groups_;
  // Hot-Promote machinery (only in kHotPromote mode).
  std::unique_ptr<os::PageAllocator> allocator_;
  std::unique_ptr<os::TieredMemory> tiering_;
  std::unique_ptr<os::MemoryRegion> region_;
  uint64_t stream_cursor_ = 0;  // Streaming-hotness window position.
  std::vector<double> last_group_rates_;  // Rates from the latest phase solve.

  // Fault injector (nullable; observational clock advance + failure draws).
  fault::FaultInjector* faults_ = nullptr;

  // Telemetry (observational only).
  telemetry::MetricRegistry* telemetry_ = nullptr;
  telemetry::TraceBuffer::TrackId spark_track_ = 0;
  double trace_clock_s_ = 0.0;  // Accumulated query time for span layout.
  uint64_t query_index_ = 0;
};

}  // namespace cxl::apps::spark

#endif  // CXL_EXPLORER_SRC_APPS_SPARK_CLUSTER_H_
