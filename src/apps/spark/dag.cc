#include "src/apps/spark/dag.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <cmath>
#include <functional>

#include "src/sim/event_queue.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace cxl::apps::spark {

DagQuery BuildDag(const QueryProfile& profile, const SparkConfig& config, int tasks_per_stage) {
  const int execs_per_server = config.total_executors / config.servers;
  if (tasks_per_stage <= 0) {
    tasks_per_stage = 2 * execs_per_server;  // Two task waves per stage.
  }
  const double payload_per_server = profile.shuffle_bytes / config.servers;
  // The compute stage's "payload" is synthetic: sized so that at the base
  // processing rate its duration equals the profile's compute seconds.
  const double compute_bytes =
      GbpsToBytesPerSec(profile.compute_seconds * execs_per_server * config.base_proc_gbps);

  DagQuery dag;
  dag.name = profile.name;
  // Scan/compute is far less latency-sensitive than shuffle row processing
  // (0.35 vs the configured 1.6) — matching the analytic model's compute
  // scaling.
  dag.stages.push_back(StageSpec{"scan-compute", tasks_per_stage,
                                 compute_bytes / tasks_per_stage, 1.0, {}, false, 0.35});
  dag.stages.push_back(StageSpec{"shuffle-write", tasks_per_stage,
                                 payload_per_server / tasks_per_stage, 1.0 / 3.0, {0}, false,
                                 -1.0});
  dag.stages.push_back(StageSpec{"shuffle-read", tasks_per_stage,
                                 payload_per_server / tasks_per_stage, 2.0 / 3.0, {1}, true,
                                 -1.0});
  return dag;
}

DagResult DagScheduler::Run(const DagQuery& query, double jitter, uint64_t seed) {
  const SparkConfig& cfg = cluster_.config();
  const int execs_per_server = cfg.total_executors / cfg.servers;
  Rng rng(seed);
  sim::EventQueue events;

  // Per-stage executor rates, solved once per distinct read fraction
  // through the same contention fixed point the fluid model uses.
  std::vector<std::vector<SparkCluster::GroupRate>> stage_rates;
  stage_rates.reserve(query.stages.size());
  for (const StageSpec& stage : query.stages) {
    stage_rates.push_back(cluster_.SolveGroupRates(stage.read_fraction));
  }

  DagResult result;
  result.stages.resize(query.stages.size());
  std::vector<int> remaining_deps(query.stages.size(), 0);
  std::vector<std::vector<int>> dependents(query.stages.size());
  for (size_t si = 0; si < query.stages.size(); ++si) {
    remaining_deps[si] = static_cast<int>(query.stages[si].depends_on.size());
    for (int dep : query.stages[si].depends_on) {
      dependents[static_cast<size_t>(dep)].push_back(static_cast<int>(si));
    }
  }

  // Scheduler state.
  std::deque<std::pair<int, double>> ready_tasks;  // (stage id, bytes).
  std::vector<int> tasks_left(query.stages.size(), 0);
  int free_slots = execs_per_server;
  double busy_seconds = 0.0;

  // Current rate per group, per active stage. Tasks are FIFO across stages
  // (Spark runs one stage's tasks at a time per barrier in this shape, but
  // independent stages could interleave).
  auto slot_rate = [&](int stage_id) {
    // Pick the group round-robin weighted by executor counts: approximate by
    // sampling a group proportionally.
    const auto& rates = stage_rates[static_cast<size_t>(stage_id)];
    uint64_t total = 0;
    for (const auto& g : rates) {
      total += static_cast<uint64_t>(g.executors);
    }
    uint64_t pick = rng.NextBounded(std::max<uint64_t>(total, 1));
    double rate = rates.empty() ? cfg.base_proc_gbps : rates.back().payload_gbps_per_executor;
    for (const auto& g : rates) {
      if (pick < static_cast<uint64_t>(g.executors)) {
        rate = g.payload_gbps_per_executor;
        break;
      }
      pick -= static_cast<uint64_t>(g.executors);
    }
    // Re-scale to the stage's own latency sensitivity: the solved rate is
    // base*(idle/L)^s_cfg, so (rate/base)^(s_stage/s_cfg) converts it.
    const double s_stage = query.stages[static_cast<size_t>(stage_id)].latency_sensitivity;
    if (s_stage >= 0.0 && cfg.latency_sensitivity > 0.0 && rate < cfg.base_proc_gbps) {
      rate = cfg.base_proc_gbps *
             std::pow(rate / cfg.base_proc_gbps, s_stage / cfg.latency_sensitivity);
    }
    return rate;
  };

  std::function<void()> dispatch;
  std::function<void(int)> stage_ready = [&](int stage_id) {
    const StageSpec& stage = query.stages[static_cast<size_t>(stage_id)];
    result.stages[static_cast<size_t>(stage_id)].name = stage.name;
    result.stages[static_cast<size_t>(stage_id)].start_seconds = events.Now();
    tasks_left[static_cast<size_t>(stage_id)] = stage.tasks;
    for (int t = 0; t < stage.tasks; ++t) {
      ready_tasks.emplace_back(stage_id, stage.bytes_per_task);
    }
    dispatch();
  };

  dispatch = [&] {
    while (free_slots > 0 && !ready_tasks.empty()) {
      auto [stage_id, bytes] = ready_tasks.front();
      ready_tasks.pop_front();
      --free_slots;
      const StageSpec& stage = query.stages[static_cast<size_t>(stage_id)];
      double seconds = bytes / GbpsToBytesPerSec(slot_rate(stage_id));
      if (stage.crosses_network) {
        const double remote_fraction = (cfg.servers - 1.0) / cfg.servers;
        const double net_seconds = bytes * remote_fraction /
                                   (GbpsToBytesPerSec(cfg.network_gbps_per_server) / execs_per_server);
        seconds = std::max(seconds, net_seconds);
      }
      if (jitter > 0.0) {
        seconds *= std::max(0.3, rng.NextGaussian(1.0, jitter));
      }
      busy_seconds += seconds;
      StageResult& sr = result.stages[static_cast<size_t>(stage_id)];
      sr.mean_task_seconds += seconds / stage.tasks;
      sr.max_task_seconds = std::max(sr.max_task_seconds, seconds);
      events.ScheduleAfter(seconds, [&, stage_id] {
        ++free_slots;
        StageResult& done_sr = result.stages[static_cast<size_t>(stage_id)];
        if (--tasks_left[static_cast<size_t>(stage_id)] == 0) {
          done_sr.end_seconds = events.Now();
          for (int dep : dependents[static_cast<size_t>(stage_id)]) {
            if (--remaining_deps[static_cast<size_t>(dep)] == 0) {
              stage_ready(dep);
            }
          }
        }
        dispatch();
      });
    }
  };

  for (size_t si = 0; si < query.stages.size(); ++si) {
    if (remaining_deps[si] == 0) {
      stage_ready(static_cast<int>(si));
    }
  }
  events.Run();

  // The event queue's time unit is caller-defined; this scheduler ran it in
  // seconds.
  result.makespan_seconds = events.Now();
  const double slot_seconds = result.makespan_seconds * execs_per_server;
  result.executor_utilization = slot_seconds > 0.0 ? busy_seconds / slot_seconds : 0.0;
  return result;
}

}  // namespace cxl::apps::spark
