// Task-level Spark DAG scheduler.
//
// The analytic model in cluster.h treats each query as three fluid phases.
// This module descends one level: a query is a DAG of stages, each stage a
// set of tasks scheduled onto executor slots by an event-driven scheduler
// (FIFO within a stage, stages gated by their dependencies, straggler
// jitter per task). Task durations come from the same contention-solved
// per-executor rates as the analytic model — so the two models must agree
// in aggregate (a validation test enforces it) while the DAG view exposes
// what the fluid view cannot: stragglers, barrier stalls, and executor
// utilization.
#ifndef CXL_EXPLORER_SRC_APPS_SPARK_DAG_H_
#define CXL_EXPLORER_SRC_APPS_SPARK_DAG_H_

#include <string>
#include <vector>

#include "src/apps/spark/cluster.h"
#include "src/apps/spark/query.h"

namespace cxl::apps::spark {

struct StageSpec {
  std::string name;
  int tasks = 0;
  double bytes_per_task = 0.0;
  double read_fraction = 1.0;
  // Stage ids (indices into DagQuery::stages) that must finish first.
  std::vector<int> depends_on;
  // Shuffle-read stages also move their bytes across the network.
  bool crosses_network = false;
  // Latency sensitivity of this stage's processing (shuffle row processing
  // is super-linear, scan/compute much milder). < 0 means "use the
  // cluster's configured shuffle sensitivity".
  double latency_sensitivity = -1.0;
};

struct DagQuery {
  std::string name;
  std::vector<StageSpec> stages;
};

// Standard 3-stage DAG (scan/compute -> shuffle write -> shuffle read) from
// a TPC-H query profile. `tasks_per_stage` defaults to 2 waves per executor.
DagQuery BuildDag(const QueryProfile& profile, const SparkConfig& config,
                  int tasks_per_stage = 0);

struct StageResult {
  std::string name;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  // Mean / max task duration: max >> mean means stragglers dominated.
  double mean_task_seconds = 0.0;
  double max_task_seconds = 0.0;
};

struct DagResult {
  double makespan_seconds = 0.0;
  std::vector<StageResult> stages;
  // Fraction of executor-time spent running tasks (vs barrier idling).
  double executor_utilization = 0.0;
};

class DagScheduler {
 public:
  // Rates are solved once per (cluster, mix) through the same contention
  // model the analytic phases use.
  explicit DagScheduler(SparkCluster& cluster) : cluster_(cluster) {}

  // Runs the DAG on one modelled server's executors (as the analytic model
  // does; servers are symmetric). `jitter` adds multiplicative lognormal-ish
  // task-duration noise (0 = deterministic tasks).
  DagResult Run(const DagQuery& query, double jitter = 0.15, uint64_t seed = 1);

 private:
  SparkCluster& cluster_;
};

}  // namespace cxl::apps::spark

#endif  // CXL_EXPLORER_SRC_APPS_SPARK_DAG_H_
