#include "src/apps/spark/query.h"

namespace cxl::apps::spark {

std::vector<QueryProfile> TpchShuffleHeavyQueries() {
  // Shuffle volumes scale with the 7 TB initial dataset; Q9 (the
  // part/supplier/lineitem join over all years) is notoriously the
  // heaviest shuffler of the suite.
  return {
      QueryProfile{"Q5", 60.0, 250e9, 500e9},
      QueryProfile{"Q7", 55.0, 350e9, 550e9},
      QueryProfile{"Q8", 50.0, 450e9, 600e9},
      QueryProfile{"Q9", 45.0, 600e9, 650e9},
  };
}

const QueryProfile* FindQuery(const std::string& name) {
  static const std::vector<QueryProfile> queries = TpchShuffleHeavyQueries();
  for (const auto& q : queries) {
    if (q.name == name) {
      return &q;
    }
  }
  return nullptr;
}

}  // namespace cxl::apps::spark
