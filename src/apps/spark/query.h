// TPC-H query profiles for the Spark SQL experiment (§4.2).
//
// The paper runs the four shuffle-heavy TPC-H queries (Q5, Q7, Q8, Q9,
// selected per prior shuffle-acceleration work) over a 7 TB dataset with 150
// executors of 1 core / 8 GB each. A query is modelled as a scan/compute
// component plus a shuffle volume that must be written by map tasks and read
// back by reduce tasks; the shuffle volumes below are calibrated so the
// MMEM-only run spends the Fig. 7(b) share of its time in shuffle and the
// all-in-memory footprint stays within the 1.2 TB of executor memory (the
// paper observes no spill in the MMEM-only configuration).
#ifndef CXL_EXPLORER_SRC_APPS_SPARK_QUERY_H_
#define CXL_EXPLORER_SRC_APPS_SPARK_QUERY_H_

#include <string>
#include <vector>

namespace cxl::apps::spark {

struct QueryProfile {
  std::string name;
  // Pure scan/filter/join CPU time of the whole query on the 150-executor
  // cluster, excluding shuffle data movement (seconds).
  double compute_seconds = 0.0;
  // Bytes exchanged through the shuffle (written by map side, read by
  // reduce side).
  double shuffle_bytes = 0.0;
  // Input working set kept hot in executor storage memory during the query.
  double input_working_set_bytes = 0.0;
};

// The four shuffle-intensive queries the paper evaluates.
std::vector<QueryProfile> TpchShuffleHeavyQueries();

// Look up one of them by name ("Q5", "Q7", "Q8", "Q9").
const QueryProfile* FindQuery(const std::string& name);

}  // namespace cxl::apps::spark

#endif  // CXL_EXPLORER_SRC_APPS_SPARK_QUERY_H_
