#include "src/bench/context.h"

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <vector>

#include "src/os/policy_registry.h"

namespace cxl::bench {

namespace {

// Matches `--flag=VALUE` or `--flag VALUE`; advances *i past a consumed
// separate value. Returns true when `out` was filled. (Same contract as the
// parsers in runner::JobsFromArgs / telemetry::BenchTelemetry.)
bool TakeFlag(const char* flag, int* i, int argc, char** argv, std::string* out) {
  const char* arg = argv[*i];
  const size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) != 0) {
    return false;
  }
  if (arg[flag_len] == '=') {
    *out = arg + flag_len + 1;
    return true;
  }
  if (arg[flag_len] == '\0') {
    if (*i + 1 < argc) {
      *out = argv[++*i];
    }
    return true;
  }
  return false;
}

[[noreturn]] void DieUsage(const std::string& message) {
  std::cerr << "bench: " << message << "\n";
  std::exit(2);
}

}  // namespace

Context Context::FromArgs(int* argc, char** argv) {
  Context ctx;
  fault::DeclareFaultKnobs(ctx.knobs_);

  std::string faults_spec;
  std::string fault_seed_str;
  std::vector<std::string> knob_args;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--profile-epochs") == 0) {
      if (ctx.profiler_ == nullptr) {
        ctx.profiler_ = std::make_unique<telemetry::EpochProfiler>();
      }
      continue;
    }
    if (TakeFlag("--faults", &i, *argc, argv, &value)) {
      faults_spec = value;
      continue;
    }
    if (TakeFlag("--fault-seed", &i, *argc, argv, &value)) {
      fault_seed_str = value;
      continue;
    }
    if (TakeFlag("--fault-knob", &i, *argc, argv, &value)) {
      knob_args.push_back(value);
      continue;
    }
    if (TakeFlag("--tiering-policy", &i, *argc, argv, &value)) {
      ctx.tiering_policy_ = value;
      continue;
    }
    argv[kept++] = argv[i];
  }
  *argc = kept;

  // The jobs and telemetry parsers strip their own flags from the compacted
  // argv; order does not matter (they skip unrelated arguments).
  ctx.jobs_ = runner::JobsFromArgs(argc, argv);
  ctx.telemetry_ = telemetry::BenchTelemetry::FromArgs(argc, argv);

  if (!faults_spec.empty()) {
    auto plan = fault::FaultPlan::Parse(faults_spec);
    if (!plan.ok()) {
      DieUsage("bad --faults spec: " + plan.status().message());
    }
    ctx.faults_ = std::move(plan).value();
  }
  if (!fault_seed_str.empty()) {
    uint64_t seed = 0;
    const char* begin = fault_seed_str.data();
    const char* end = begin + fault_seed_str.size();
    const auto [ptr, ec] = std::from_chars(begin, end, seed);
    if (ec != std::errc() || ptr != end) {
      DieUsage("bad --fault-seed value: " + fault_seed_str);
    }
    ctx.fault_seed_ = seed;
  }
  for (const std::string& kv : knob_args) {
    const size_t eq = kv.find('=');
    if (eq == std::string::npos || eq == 0) {
      DieUsage("bad --fault-knob (want KEY=VALUE): " + kv);
    }
    const std::string key = kv.substr(0, eq);
    const std::string value_str = kv.substr(eq + 1);
    char* value_end = nullptr;
    const double value = std::strtod(value_str.c_str(), &value_end);
    if (value_end == value_str.c_str() || *value_end != '\0') {
      DieUsage("bad --fault-knob value: " + kv);
    }
    const Status set = ctx.knobs_.Set(key, value);
    if (!set.ok()) {
      DieUsage("unknown fault knob \"" + key + "\" (see fault::DeclareFaultKnobs)");
    }
  }
  ctx.fault_tunables_ = fault::FaultTunablesFromKnobs(ctx.knobs_);
  if (!ctx.tiering_policy_.empty() &&
      !os::PolicyRegistry::BuiltIns().Has(ctx.tiering_policy_)) {
    std::string known;
    for (const auto& name : os::PolicyRegistry::BuiltIns().Names()) {
      known += known.empty() ? name : ", " + name;
    }
    DieUsage("unknown --tiering-policy \"" + ctx.tiering_policy_ + "\" (known: " + known + ")");
  }
  return ctx;
}

core::ExperimentEnv Context::Env(uint64_t seed) {
  core::ExperimentEnv env;
  env.seed = seed;
  env.jobs = jobs_;
  env.telemetry = sink();
  env.profiler = profiler_.get();
  env.faults = faults_;
  env.fault_seed = fault_seed_;
  env.fault_tunables = fault_tunables_;
  env.tiering_policy = tiering_policy_;
  return env;
}

bool Context::Write(const std::string& bench_name) {
  if (profiler_ != nullptr) {
    // Stderr so table output on stdout stays byte-identical with and
    // without the flag (same contract as SweepStats::Summary).
    std::cerr << bench_name << " " << profiler_->Report(profiler_->WallMsSinceBirth()) << "\n";
  }
  return telemetry_.Write(bench_name);
}

runner::SweepOptions Context::Sweep(uint64_t base_seed) const {
  runner::SweepOptions options;
  options.jobs = jobs_;
  options.base_seed = base_seed;
  return options;
}

}  // namespace cxl::bench
