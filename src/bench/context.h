// Unified bench context: the flag surface every bench_* binary shares.
//
// One FromArgs call replaces the previous per-bench composition of
// runner::JobsFromArgs + telemetry::BenchTelemetry::FromArgs and adds the
// fault-injection flags, so all benches accept the same contract:
//
//   --jobs N | -jN | -j N     worker threads for sweeps (0 = auto)
//   --metrics-out FILE        metrics JSON (or CSV when FILE ends in .csv)
//   --trace-out FILE          Chrome trace-event JSON
//   --bench-json FILE         one-line machine-readable bench summary
//   --events-out FILE         structured event log, JSONL (cxl-events-v1):
//                             fault windows, promote/demote decisions,
//                             degradation responses, SLO violations,
//                             anomalies — tools/report/cxl_report input
//   --events-ring N           keep only the most recent N events per cell
//                             (flight-recorder mode; default: full log)
//   --tiering-policy NAME     promotion policy for experiments that run the
//                             tiering daemon (a PolicyRegistry name:
//                             hot-page-selection, mru-balancing, tpp-like,
//                             adaptive-feedback); unset keeps each bench's
//                             default
//   --faults SPEC             fault plan: "storm" or an event list, e.g.
//                             "downtrain@2+3=8,poison=1e-4"
//                             (see fault::FaultPlan::Parse / docs/faults.md)
//   --fault-seed N            fault injector seed (default 1)
//   --fault-knob K=V          override a fault.* tunable (repeatable; keys
//                             from fault::DeclareFaultKnobs)
//   --profile-epochs          print a per-phase wall-clock breakdown of the
//                             epoch hot path (solver/scan/telemetry/workload)
//                             to stderr at Write(); stdout is unchanged
//
// All flags are stripped from argv. With none given the context is inert:
// no telemetry sink, empty fault plan, stdout byte-identical to a bench
// that never parsed these flags.
//
// Usage in a bench main:
//
//   auto ctx = bench::Context::FromArgs(&argc, argv);
//   auto& bench_telemetry = ctx.telemetry();
//   ...
//   auto grid = runner::RunSweep(cells, fn, ctx.Sweep(seed), &stats);
//   ...
//   if (!ctx.Write("bench_fig5_keydb_ycsb")) return 1;
#ifndef CXL_EXPLORER_SRC_BENCH_CONTEXT_H_
#define CXL_EXPLORER_SRC_BENCH_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/core/experiment.h"
#include "src/fault/fault.h"
#include "src/runner/sweep.h"
#include "src/telemetry/bench_io.h"
#include "src/telemetry/epoch_profiler.h"
#include "src/util/knobs.h"

namespace cxl::bench {

class Context {
 public:
  // Parses and strips the shared bench flags. A malformed --faults spec or
  // --fault-knob prints the error to stderr and exits with status 2 — a
  // bench must not run a half-understood fault plan.
  static Context FromArgs(int* argc, char** argv);

  // Worker threads requested via --jobs/-j (0 = auto).
  int jobs() const { return jobs_; }

  // Telemetry outputs (--metrics-out/--trace-out/--bench-json). Write() also
  // prints the --profile-epochs breakdown to stderr when enabled.
  telemetry::BenchTelemetry& telemetry() { return telemetry_; }
  telemetry::MetricRegistry* sink() { return telemetry_.sink(); }
  bool Write(const std::string& bench_name);

  // Epoch profiler (--profile-epochs), or nullptr when not requested.
  telemetry::EpochProfiler* profiler() { return profiler_.get(); }
  bool profile_epochs() const { return profiler_ != nullptr; }

  // Fault-injection surface (--faults/--fault-seed/--fault-knob).
  const fault::FaultPlan& faults() const { return faults_; }
  uint64_t fault_seed() const { return fault_seed_; }
  const fault::FaultTunables& fault_tunables() const { return fault_tunables_; }
  bool faults_enabled() const { return !faults_.empty(); }
  // The declared fault.* knobs after --fault-knob overrides (for listings).
  const KnobSet& knobs() const { return knobs_; }

  // --tiering-policy (validated against PolicyRegistry::BuiltIns(); empty
  // when the flag was not given).
  const std::string& tiering_policy() const { return tiering_policy_; }

  // Shared experiment environment carrying this context's jobs, sink and
  // fault plan (plus the caller's base seed) into a Run*Experiment call.
  core::ExperimentEnv Env(uint64_t seed = 1);

  // Sweep options pre-filled with the parsed --jobs value.
  runner::SweepOptions Sweep(uint64_t base_seed = 1) const;

 private:
  int jobs_ = 0;
  // Allocated when --profile-epochs is given (EpochProfiler holds atomics,
  // so it lives behind a pointer to keep Context movable).
  std::unique_ptr<telemetry::EpochProfiler> profiler_;
  telemetry::BenchTelemetry telemetry_;
  fault::FaultPlan faults_;
  uint64_t fault_seed_ = 1;
  fault::FaultTunables fault_tunables_;
  KnobSet knobs_;
  std::string tiering_policy_;
};

}  // namespace cxl::bench

#endif  // CXL_EXPLORER_SRC_BENCH_CONTEXT_H_
