#include "src/check/calibration.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/check/invariants.h"
#include "src/mem/access.h"
#include "src/mem/bandwidth_solver.h"
#include "src/mem/cxl_link.h"
#include "src/mem/profiles.h"
#include "src/sim/queueing.h"
#include "src/topology/platform.h"
#include "src/util/table.h"

namespace cxl::check {

namespace {

using mem::AccessMix;
using mem::CxlController;
using mem::GetProfile;
using mem::MemoryPath;
using mem::PathProfile;

const AccessMix kRead = AccessMix::ReadOnly();
const AccessMix kWrite = AccessMix::WriteOnly();
const AccessMix kTwoToOne = AccessMix::Ratio(2, 1);

// Read fraction at which a profile's peak-bandwidth curve maxes out,
// located by a fine sweep (the paper reports the location, not the law).
double PeakArgmaxReadFraction(const PathProfile& profile) {
  double best_rf = 0.0;
  double best = -1.0;
  for (int i = 0; i <= 128; ++i) {
    const double rf = static_cast<double>(i) / 128.0;
    const double peak = profile.PeakBandwidthGBps(AccessMix{rf, true});
    if (peak > best) {
      best = peak;
      best_rf = rf;
    }
  }
  return best_rf;
}

// Read fraction at which the curve bottoms out.
double PeakArgminReadFraction(const PathProfile& profile) {
  double worst_rf = 0.0;
  double worst = std::numeric_limits<double>::infinity();
  for (int i = 0; i <= 128; ++i) {
    const double rf = static_cast<double>(i) / 128.0;
    const double peak = profile.PeakBandwidthGBps(AccessMix{rf, true});
    if (peak < worst) {
      worst = peak;
      worst_rf = rf;
    }
  }
  return worst_rf;
}

// Fraction of sweep steps on which the peak curve is non-decreasing in the
// read fraction (1.0 = monotone).
double PeakMonotoneFraction(const PathProfile& profile) {
  int ok = 0;
  int steps = 0;
  double prev = profile.PeakBandwidthGBps(AccessMix{0.0, true});
  for (int i = 1; i <= 64; ++i) {
    const double rf = static_cast<double>(i) / 64.0;
    const double peak = profile.PeakBandwidthGBps(AccessMix{rf, true});
    ok += peak >= prev - 1e-12 ? 1 : 0;
    ++steps;
    prev = peak;
  }
  return static_cast<double>(ok) / static_cast<double>(steps);
}

}  // namespace

CalibrationBand CalibrationBand::Frac(std::string name, double expect, double fraction,
                                      std::string paper_ref) {
  CalibrationBand band;
  band.name = std::move(name);
  band.expect = expect;
  band.lo = expect * (1.0 - fraction);
  band.hi = expect * (1.0 + fraction);
  band.paper_ref = std::move(paper_ref);
  return band;
}

CalibrationBand CalibrationBand::Range(std::string name, double expect, double lo, double hi,
                                       std::string paper_ref) {
  CalibrationBand band;
  band.name = std::move(name);
  band.expect = expect;
  band.lo = lo;
  band.hi = hi;
  band.paper_ref = std::move(paper_ref);
  return band;
}

void CalibrationReport::Check(const CalibrationBand& band, double measured) {
  CalibrationResult result;
  result.band = band;
  result.measured = measured;
  result.pass = band.Contains(measured);
  results_.push_back(std::move(result));
}

int CalibrationReport::failures() const {
  int n = 0;
  for (const auto& r : results_) {
    n += r.pass ? 0 : 1;
  }
  return n;
}

int CalibrationReport::PrintTable(std::ostream& os) const {
  Table table({"band", "paper ref", "expect", "lo", "hi", "measured", "status"});
  for (const auto& r : results_) {
    table.Row()
        .Cell(r.band.name)
        .Cell(r.band.paper_ref)
        .Cell(r.band.expect, 4)
        .Cell(r.band.lo, 4)
        .Cell(r.band.hi, 4)
        .Cell(r.measured, 4)
        .Cell(r.pass ? "PASS" : "FAIL");
  }
  table.Print(os);
  const int failed = failures();
  os << "calibration: " << (results_.size() - static_cast<size_t>(failed)) << "/"
     << results_.size() << " bands in tolerance";
  if (failed > 0) {
    os << " — " << failed << " FAILED (model drifted off the paper's measurements)";
  }
  os << "\n";
  return failed;
}

void CheckIdleLatencyBands(CalibrationReport* report) {
  const PathProfile& mmem = GetProfile(MemoryPath::kLocalDram);
  const PathProfile& mmem_r = GetProfile(MemoryPath::kRemoteDram);
  const PathProfile& cxl = GetProfile(MemoryPath::kLocalCxl);
  const PathProfile& cxl_r = GetProfile(MemoryPath::kRemoteCxl);
  const PathProfile& fpga = GetProfile(MemoryPath::kLocalCxl, CxlController::kFpga);
  const PathProfile& ssd = GetProfile(MemoryPath::kSsd);

  report->Check(CalibrationBand::Frac("mmem.idle_ns.read", 97.0, 0.03, "Fig. 3(a) / §3.2"),
                mmem.IdleLatencyNs(kRead));
  report->Check(CalibrationBand::Frac("mmem_r.idle_ns.read", 130.0, 0.05, "Fig. 3(b) / §3.2"),
                mmem_r.IdleLatencyNs(kRead));
  report->Check(
      CalibrationBand::Frac("mmem_r.idle_ns.write_nt", 71.77, 0.03, "Fig. 3(b) / §3.2 (NT stores)"),
      mmem_r.IdleLatencyNs(kWrite));
  report->Check(CalibrationBand::Frac("cxl.idle_ns.read", 250.42, 0.02, "Fig. 3(c) / §3.2"),
                cxl.IdleLatencyNs(kRead));
  report->Check(CalibrationBand::Frac("cxl_r.idle_ns.read", 485.0, 0.03, "Fig. 3(d) / §3.2"),
                cxl_r.IdleLatencyNs(kRead));
  report->Check(
      CalibrationBand::Range("cxl_over_mmem.idle_ratio", 2.5, 2.4, 2.6, "§3.3 (2.4–2.6x local DDR)"),
      cxl.IdleLatencyNs(kRead) / mmem.IdleLatencyNs(kRead));
  report->Check(CalibrationBand::Range("cxl_over_mmem_r.idle_ratio", 1.92, 1.5, 1.95,
                                       "§3.3 (1.5–1.92x remote DDR)"),
                cxl.IdleLatencyNs(kRead) / mmem_r.IdleLatencyNs(kRead));
  report->Check(CalibrationBand::Range("fpga_over_asic.idle_ratio", 1.58, 1.2, 2.0,
                                       "§3.4 (FPGA higher access latency)"),
                fpga.IdleLatencyNs(kRead) / cxl.IdleLatencyNs(kRead));
  report->Check(CalibrationBand::Frac("ssd.idle_ns.read", 80'000.0, 0.06, "§2.4 (NVMe read)"),
                ssd.IdleLatencyNs(kRead));
  // Random access shows "no significant performance disparities" (§3.3):
  // the randomness penalty on idle latency must stay within a few percent.
  for (MemoryPath path : {MemoryPath::kLocalDram, MemoryPath::kRemoteDram, MemoryPath::kLocalCxl,
                          MemoryPath::kRemoteCxl}) {
    const PathProfile& p = GetProfile(path);
    report->Check(CalibrationBand::Range(p.name() + ".idle_random_penalty", 1.01, 1.0, 1.05,
                                         "§3.3 / Fig. 4(g)(h)"),
                  p.IdleLatencyNs(kRead, mem::AccessPattern::kRandom) / p.IdleLatencyNs(kRead));
  }
}

void CheckPeakBandwidthBands(CalibrationReport* report) {
  const PathProfile& mmem = GetProfile(MemoryPath::kLocalDram);
  const PathProfile& mmem_r = GetProfile(MemoryPath::kRemoteDram);
  const PathProfile& cxl = GetProfile(MemoryPath::kLocalCxl);
  const PathProfile& cxl_r = GetProfile(MemoryPath::kRemoteCxl);
  const PathProfile& fpga = GetProfile(MemoryPath::kLocalCxl, CxlController::kFpga);
  const PathProfile& ssd = GetProfile(MemoryPath::kSsd);

  report->Check(CalibrationBand::Frac("mmem.peak_gbps.read", 67.0, 0.03, "Fig. 3(a)"),
                mmem.PeakBandwidthGBps(kRead));
  report->Check(CalibrationBand::Frac("mmem.peak_gbps.write", 54.6, 0.03, "Fig. 3(a)"),
                mmem.PeakBandwidthGBps(kWrite));
  report->Check(CalibrationBand::Range("mmem.peak_over_theoretical", 0.87, 0.84, 0.90,
                                       "Fig. 3(a) (87% of 76.8 GB/s)"),
                mmem.PeakBandwidthGBps(kRead) / mem::kSncDomainPeakGBps);
  report->Check(CalibrationBand::Frac("mmem_r.peak_gbps.read", 64.0, 0.03, "Fig. 3(b)"),
                mmem_r.PeakBandwidthGBps(kRead));
  report->Check(
      CalibrationBand::Frac("mmem_r.peak_gbps.write", 27.0, 0.04, "Fig. 3(b) (one UPI direction)"),
      mmem_r.PeakBandwidthGBps(kWrite));
  report->Check(CalibrationBand::Frac("cxl.peak_gbps.mix_2to1", 56.7, 0.025, "Fig. 3(c) / §3.2"),
                cxl.PeakBandwidthGBps(kTwoToOne));
  report->Check(CalibrationBand::Frac("cxl.peak_gbps.read", mem::kAsicPcieEfficiency * 64.0, 0.025,
                                      "§3.4 (73.6% of PCIe Gen5 x16)"),
                cxl.PeakBandwidthGBps(kRead));
  report->Check(CalibrationBand::Frac("cxl_r.peak_gbps.mix_2to1", 20.4, 0.025, "Fig. 3(d) (RSF cap)"),
                cxl_r.PeakBandwidthGBps(kTwoToOne));
  report->Check(CalibrationBand::Range("cxl_r_over_cxl.peak_ratio", 0.36, 0.33, 0.40, "Fig. 3(d)"),
                cxl_r.PeakBandwidthGBps(kTwoToOne) / cxl.PeakBandwidthGBps(kTwoToOne));
  report->Check(CalibrationBand::Frac("cxl_fpga.peak_gbps.read", mem::kFpgaPcieEfficiency * 64.0,
                                      0.03, "§3.4 (60% of PCIe Gen5 x16)"),
                fpga.PeakBandwidthGBps(kRead));
  report->Check(CalibrationBand::Frac("ssd.peak_gbps.read", 3.2, 0.07, "§2.4 (NVMe streaming read)"),
                ssd.PeakBandwidthGBps(kRead));
  report->Check(CalibrationBand::Frac("ssd.peak_gbps.write", 2.4, 0.09, "§2.4 (NVMe streaming write)"),
                ssd.PeakBandwidthGBps(kWrite));
}

void CheckMixCurveBands(CalibrationReport* report) {
  const PathProfile& mmem = GetProfile(MemoryPath::kLocalDram);
  const PathProfile& mmem_r = GetProfile(MemoryPath::kRemoteDram);
  const PathProfile& cxl = GetProfile(MemoryPath::kLocalCxl);
  const PathProfile& cxl_r = GetProfile(MemoryPath::kRemoteCxl);

  // The CXL curve's global max sits at the 2:1 R:W mix, not read-only —
  // PCIe bi-directionality lets a blended stream beat pure reads.
  report->Check(CalibrationBand::Range("cxl.peak_argmax_read_fraction", 2.0 / 3.0, 0.60, 0.72,
                                       "Fig. 3(c) (max at 2:1)"),
                PeakArgmaxReadFraction(cxl));
  report->Check(CalibrationBand::Range("cxl_r.peak_argmax_read_fraction", 2.0 / 3.0, 0.60, 0.72,
                                       "Fig. 3(d) (scaled CXL curve)"),
                PeakArgmaxReadFraction(cxl_r));
  report->Check(CalibrationBand::Range("cxl.read_over_mix_2to1", 0.83, 0.78, 0.88,
                                       "Fig. 3(c) (read-only below 2:1 peak)"),
                cxl.PeakBandwidthGBps(kRead) / cxl.PeakBandwidthGBps(kTwoToOne));
  // DRAM paths climb monotonically toward read-only (writes only cost).
  report->Check(CalibrationBand::Range("mmem.peak_monotone_in_read_fraction", 1.0, 1.0, 1.0,
                                       "Fig. 3(a) shape"),
                PeakMonotoneFraction(mmem));
  report->Check(CalibrationBand::Range("mmem_r.peak_monotone_in_read_fraction", 1.0, 1.0, 1.0,
                                       "Fig. 3(b) shape"),
                PeakMonotoneFraction(mmem_r));
  report->Check(CalibrationBand::Range("mmem_r.peak_argmin_read_fraction", 0.0, 0.0, 0.05,
                                       "Fig. 3(b) (write-only lowest)"),
                PeakArgminReadFraction(mmem_r));
}

void CheckKneeBands(CalibrationReport* report) {
  const PathProfile& mmem = GetProfile(MemoryPath::kLocalDram);
  const PathProfile& mmem_r = GetProfile(MemoryPath::kRemoteDram);
  const PathProfile& cxl = GetProfile(MemoryPath::kLocalCxl);
  const PathProfile& cxl_r = GetProfile(MemoryPath::kRemoteCxl);
  const PathProfile& ssd = GetProfile(MemoryPath::kSsd);

  const double mmem_read_knee = mmem.MakeQueueModel(kRead).KneeUtilization();
  const double mmem_write_knee = mmem.MakeQueueModel(kWrite).KneeUtilization();
  report->Check(CalibrationBand::Range("mmem.knee_utilization.read", 0.83, 0.75, 0.84,
                                       "§3.2 (knee at 75–83%, above prior 60% estimates)"),
                mmem_read_knee);
  report->Check(CalibrationBand::Range("mmem.knee_utilization.write", 0.78, 0.70, 0.82,
                                       "§3.3 (knee shifts left with writes)"),
                mmem_write_knee);
  report->Check(CalibrationBand::Range("mmem.knee_write_over_read", 0.94, 0.85, 0.995,
                                       "§3.3 (write knee strictly earlier)"),
                mmem_write_knee / mmem_read_knee);
  report->Check(CalibrationBand::Range("mmem_r.knee_utilization.read", 0.75, 0.65, 0.78,
                                       "Fig. 3(b) (remote knee earlier than local)"),
                mmem_r.MakeQueueModel(kRead).KneeUtilization());
  report->Check(CalibrationBand::Range("cxl.knee_utilization.read", 0.90, 0.85, 0.96,
                                       "Fig. 3(c) (latency stable until very high load)"),
                cxl.MakeQueueModel(kRead).KneeUtilization());
  report->Check(CalibrationBand::Range("cxl_r.knee_utilization.read", 0.70, 0.60, 0.75,
                                       "Fig. 3(d) (RSF-limited path congests early)"),
                cxl_r.MakeQueueModel(kRead).KneeUtilization());
  report->Check(CalibrationBand::Range("ssd.knee_utilization.read", 0.45, 0.35, 0.55,
                                       "§2.4 (NVMe queues congest well before peak)"),
                ssd.MakeQueueModel(kRead).KneeUtilization());
}

void CheckEfficiencyBands(CalibrationReport* report) {
  const mem::CxlLinkEfficiency asic = mem::ComputeLinkEfficiency(mem::AsicLinkConfig());
  const mem::CxlLinkEfficiency fpga = mem::ComputeLinkEfficiency(mem::FpgaLinkConfig());

  report->Check(CalibrationBand::Range("cxl_link.flit_framing", 64.0 / 68.0, 0.938, 0.944,
                                       "CXL 1.1 68-byte flit (§2.1)"),
                asic.flit_framing);
  report->Check(CalibrationBand::Range("cxl_link.asic_efficiency", 0.736, 0.725, 0.745,
                                       "§3.4 (ASIC at 73.6% of PCIe)"),
                asic.total);
  report->Check(CalibrationBand::Frac("cxl_link.asic_effective_gbps", 47.1, 0.015,
                                      "§3.4 (0.736 x 64 GB/s)"),
                asic.effective_gbps);
  report->Check(
      CalibrationBand::Range("cxl_link.fpga_efficiency", 0.60, 0.59, 0.61, "§3.4 (FPGA at ~60%)"),
      fpga.total);
  report->Check(CalibrationBand::Range("cxl_link.fpga_over_asic", 0.815, 0.80, 0.83,
                                       "§3.4 (0.60 / 0.736)"),
                fpga.total / asic.total);
  // The derived link efficiency and the profile-layer constant must agree:
  // the flit stack is the *reason* for the 73.6% anchor.
  report->Check(CalibrationBand::Range("cxl_link.derived_vs_profile_constant", 1.0, 0.99, 1.01,
                                       "§3.4 (consistency)"),
                asic.total / mem::kAsicPcieEfficiency);
  report->Check(CalibrationBand::Range("cxl_link.fpga_derived_vs_constant", 1.0, 0.99, 1.01,
                                       "§3.4 (consistency)"),
                fpga.total / mem::kFpgaPcieEfficiency);
}

void CheckTrafficModelBands(CalibrationReport* report) {
  using topology::Platform;
  using topology::TrafficModel;
  const Platform server = Platform::CxlServer(false);  // SNC off: 8-channel sockets.
  const topology::NodeId dram0 = server.DramNodes(0)[0];
  const topology::NodeId dram1 = server.DramNodes(1)[0];
  const topology::NodeId cxl0 = server.CxlNodes()[0];

  {
    // Conservation at low load: an uncontended flow gets exactly its offer,
    // and the solver settles in a single fixed-point round.
    TrafficModel traffic(server);
    const auto flow = traffic.AddMemoryTraffic(0, dram0, kRead, 30.0);
    const auto sol = traffic.Solve();
    report->Check(CalibrationBand::Range("traffic.local_dram.uncontended_gbps", 30.0, 29.999,
                                         30.001, "model contract (conservation)"),
                  sol.flows[static_cast<size_t>(flow)].achieved_gbps);
    report->Check(CalibrationBand::Range("traffic.solver_iterations.uncontended", 1.0, 1.0, 1.0,
                                         "model contract (fixed point converges immediately)"),
                  static_cast<double>(sol.solver_iterations));
  }
  {
    // Saturated local DRAM: 8 channels x 67 GB/s SNC-domain read peak / 4...
    // i.e. the calibrated 2-channel curve scaled x4, handed out at the
    // capacity share.
    TrafficModel traffic(server);
    const auto flow = traffic.AddMemoryTraffic(0, dram0, kRead, 400.0);
    const auto sol = traffic.Solve();
    const double expect = 67.0 * 4.0 * mem::BandwidthSolver::kCapacityShare;
    report->Check(CalibrationBand::Frac("traffic.local_dram.saturated_gbps", expect, 0.03,
                                        "Fig. 3(a) x 8-channel scaling (§3.1)"),
                  sol.flows[static_cast<size_t>(flow)].achieved_gbps);
  }
  {
    // Saturated local CXL at the paper's best mix.
    TrafficModel traffic(server);
    const auto flow = traffic.AddMemoryTraffic(0, cxl0, kTwoToOne, 100.0);
    const auto sol = traffic.Solve();
    report->Check(CalibrationBand::Frac("traffic.local_cxl.saturated_2to1_gbps",
                                        56.7 * mem::BandwidthSolver::kCapacityShare, 0.03,
                                        "Fig. 3(c) / §3.2"),
                  sol.flows[static_cast<size_t>(flow)].achieved_gbps);
  }
  {
    // Cross-socket CXL pins at the Remote Snoop Filter cap no matter how
    // much PCIe headroom the device has.
    TrafficModel traffic(server);
    const auto flow = traffic.AddMemoryTraffic(1, cxl0, kTwoToOne, 100.0);
    const auto sol = traffic.Solve();
    report->Check(CalibrationBand::Frac("traffic.remote_cxl.rsf_cap_gbps",
                                        20.4 * mem::BandwidthSolver::kCapacityShare, 0.035,
                                        "Fig. 3(d) (RSF cap)"),
                  sol.flows[static_cast<size_t>(flow)].achieved_gbps);
  }
  {
    // Cross-socket DRAM is UPI-bound: the node has 262 GB/s of channels but
    // the interconnect tops out at ~2x the single-stream remote curve.
    TrafficModel traffic(server);
    const auto flow = traffic.AddMemoryTraffic(0, dram1, kRead, 200.0);
    const auto sol = traffic.Solve();
    report->Check(CalibrationBand::Frac("traffic.remote_dram.upi_bound_gbps",
                                        64.0 * 2.0 * mem::BandwidthSolver::kCapacityShare, 0.03,
                                        "Fig. 3(b) x 2 UPI links"),
                  sol.flows[static_cast<size_t>(flow)].achieved_gbps);
    report->Check(CalibrationBand::Range("traffic.solver_iterations.contended", 2.0, 1.0, 8.0,
                                         "model contract (fixed point stays shallow)"),
                  static_cast<double>(sol.solver_iterations));
  }
}

void CheckSolverContractBands(CalibrationReport* report) {
  using topology::Platform;
  using topology::TrafficModel;

  // Colocation scenario (the Fig. 6 / §3.4 shape): a latency-sensitive
  // tenant, a saturating streamer and a CXL offload stream share a socket.
  // The solution must satisfy the full fairness contract.
  {
    const Platform server = Platform::CxlServer(true);  // SNC-4 domains.
    const topology::NodeId dram = server.DramNodes(0)[0];
    const topology::NodeId cxl0 = server.CxlNodes()[0];
    TrafficModel traffic(server);
    traffic.AddMemoryTraffic(0, dram, kRead, 4.0);
    traffic.AddMemoryTraffic(0, dram, kRead, 62.0);
    traffic.AddMemoryTraffic(0, cxl0, kTwoToOne, 30.0);
    traffic.AddMemoryTraffic(1, cxl0, kTwoToOne, 25.0);
    const auto sol = traffic.Solve();
    double total = 0.0;
    for (const auto& f : sol.flows) {
      total += f.achieved_gbps;
    }
    report->Check(CalibrationBand::Range("solver.colocation.total_gbps", 115.0, 100.0, 121.0,
                                         "§3.4 (colocation keeps both tenants served)"),
                  total);
  }

  // Invariant gate on a raw solver topology: conservation, demand bounds and
  // the max-min bottleneck property must all hold (violation count == 0).
  {
    mem::BandwidthSolver solver;
    const PathProfile& dram = GetProfile(MemoryPath::kLocalDram);
    const PathProfile& cxl = GetProfile(MemoryPath::kLocalCxl);
    const PathProfile& remote = GetProfile(MemoryPath::kRemoteDram);
    const auto r_dram = solver.AddResource("dram", &dram);
    const auto r_cxl = solver.AddResource("cxl", &cxl);
    const auto r_upi = solver.AddResource("upi", &remote);
    solver.AddFlow(&dram, kRead, 50.0, {r_dram});
    solver.AddFlow(&dram, kWrite, 40.0, {r_dram});
    solver.AddFlow(&cxl, kTwoToOne, 70.0, {r_cxl});
    solver.AddFlow(&remote, kRead, 45.0, {r_dram, r_upi});
    solver.set_mode(mem::SolverMode::kMaxMinFair);
    const auto sol = solver.Solve();
    const auto violations = SolverInvariantViolations(solver, sol);
    report->Check(CalibrationBand::Range("solver.invariants.violation_count", 0.0, 0.0, 0.0,
                                         "model contract (max-min fairness)"),
                  static_cast<double>(violations.size()));
    report->Check(CalibrationBand::Range("solver.iterations.bounded", 2.0, 1.0, 10.0,
                                         "model contract (convergence)"),
                  static_cast<double>(sol.iterations));
  }

  // Work conservation: on the asymmetric multi-resource topology the legacy
  // proportional scaler strands capacity (monotone-down scaling); the
  // max-min allocator must recover it. Flat synthetic profiles isolate the
  // allocation discipline from the mix-dependent curves.
  {
    PathProfile::Params wide_params;
    wide_params.name = "flat50";
    wide_params.idle_ns_by_read_fraction = mem::PiecewiseLinear({{0.0, 100.0}, {1.0, 100.0}});
    wide_params.peak_gbps_by_read_fraction = mem::PiecewiseLinear({{0.0, 50.0}, {1.0, 50.0}});
    const PathProfile wide(wide_params);
    PathProfile::Params narrow_params = wide_params;
    narrow_params.name = "flat30";
    narrow_params.peak_gbps_by_read_fraction = mem::PiecewiseLinear({{0.0, 30.0}, {1.0, 30.0}});
    const PathProfile narrow(narrow_params);

    auto build = [&](mem::SolverMode mode) {
      mem::BandwidthSolver solver;
      const auto r1 = solver.AddResource("r1", &wide);
      const auto r2 = solver.AddResource("r2", &narrow);
      solver.AddFlow(&wide, kRead, 40.0, {r1, r2});  // A: crosses both.
      solver.AddFlow(&wide, kRead, 40.0, {r1});      // B: r1 only.
      solver.AddFlow(&wide, kRead, 40.0, {r2});      // C: r2 only.
      solver.set_mode(mode);
      return solver.Solve();
    };
    const auto maxmin = build(mem::SolverMode::kMaxMinFair);
    const auto legacy = build(mem::SolverMode::kProportionalLegacy);
    auto total = [](const mem::BandwidthSolver::Solution& sol) {
      double t = 0.0;
      for (const auto& f : sol.flows) {
        t += f.achieved_gbps;
      }
      return t;
    };
    report->Check(CalibrationBand::Range("solver.maxmin_over_legacy_total", 1.18, 1.05, 1.5,
                                         "§3.4 (freed capacity must be re-granted)"),
                  total(maxmin) / total(legacy));
  }
}

CalibrationReport RunAllCalibrationChecks() {
  CalibrationReport report;
  CheckIdleLatencyBands(&report);
  CheckPeakBandwidthBands(&report);
  CheckMixCurveBands(&report);
  CheckKneeBands(&report);
  CheckEfficiencyBands(&report);
  CheckTrafficModelBands(&report);
  CheckSolverContractBands(&report);
  return report;
}

}  // namespace cxl::check
