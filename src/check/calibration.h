// Paper-anchored calibration gate.
//
// Every figure in the reproduction holds only while the simulated memory
// paths stay pinned to the paper's measured numbers (97 ns local idle,
// 250.42 ns ASIC CXL idle, 56.7 GB/s at the 2:1 R:W mix, knees at 75–83%
// utilization, 73.6% vs 60% PCIe efficiency, ...). Nothing in the model
// layer enforces those anchors by itself: a refactor that nudges a profile
// constant or a queue parameter would silently shift every downstream
// figure. This module is the enforcement: a library of named tolerance
// bands, each sourced from a specific paper section, swept against the live
// model (every mem::PathProfile, the topology::TrafficModel end-to-end
// paths, every QueueModel knee, the CXL flit-efficiency stack, and the
// bandwidth solver's fairness contract).
//
// CXL-DMSim and CXLMemSim stake their correctness on characterization
// against real hardware; this gate holds our substrate to the same standard
// in CI — `bench_calibration` prints the pass/fail table and fails the
// build when any band is violated.
#ifndef CXL_EXPLORER_SRC_CHECK_CALIBRATION_H_
#define CXL_EXPLORER_SRC_CHECK_CALIBRATION_H_

#include <ostream>
#include <string>
#include <vector>

namespace cxl::check {

// One machine-checkable anchor: the model must measure inside [lo, hi];
// `expect` records the paper's value and `paper_ref` where it comes from.
struct CalibrationBand {
  std::string name;       // e.g. "cxl.peak_gbps.mix_2to1"
  double expect = 0.0;    // the paper's measured value
  double lo = 0.0;        // acceptance band, inclusive
  double hi = 0.0;
  std::string paper_ref;  // e.g. "Fig. 3(c) / §3.2"

  bool Contains(double value) const { return value >= lo && value <= hi; }

  // Band of expect * (1 ± fraction).
  static CalibrationBand Frac(std::string name, double expect, double fraction,
                              std::string paper_ref);
  // Explicit [lo, hi] band with a nominal expectation.
  static CalibrationBand Range(std::string name, double expect, double lo, double hi,
                               std::string paper_ref);
};

struct CalibrationResult {
  CalibrationBand band;
  double measured = 0.0;
  bool pass = false;
};

// Accumulates band checks and renders the pass/fail table.
class CalibrationReport {
 public:
  // Evaluates `measured` against `band` and records the outcome.
  void Check(const CalibrationBand& band, double measured);

  const std::vector<CalibrationResult>& results() const { return results_; }
  int failures() const;
  bool AllPass() const { return failures() == 0; }

  // "band | paper ref | expect | lo | hi | measured | status" table plus a
  // one-line summary. Returns failures() for exit-code plumbing.
  int PrintTable(std::ostream& os) const;

 private:
  std::vector<CalibrationResult> results_;
};

// Band groups. Each sweeps one slice of the model and appends its results.
// RunAllCalibrationChecks() runs every group in a fixed order.
void CheckIdleLatencyBands(CalibrationReport* report);     // §3.2 idle latencies + ratios
void CheckPeakBandwidthBands(CalibrationReport* report);   // Fig. 3 peak anchors
void CheckMixCurveBands(CalibrationReport* report);        // R:W-mix curve shapes
void CheckKneeBands(CalibrationReport* report);            // §3.2 knee utilizations
void CheckEfficiencyBands(CalibrationReport* report);      // §3.4 flit/PCIe efficiency stack
void CheckTrafficModelBands(CalibrationReport* report);    // end-to-end platform paths
void CheckSolverContractBands(CalibrationReport* report);  // fairness/conservation gate

CalibrationReport RunAllCalibrationChecks();

}  // namespace cxl::check

#endif  // CXL_EXPLORER_SRC_CHECK_CALIBRATION_H_
