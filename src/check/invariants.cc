#include "src/check/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace cxl::check {

namespace {

std::string Format(const char* fmt, double a, double b, const std::string& who) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, who.c_str(), a, b);
  return buf;
}

}  // namespace

std::vector<std::string> SolverInvariantViolations(const mem::BandwidthSolver& solver,
                                                   const mem::BandwidthSolver::Solution& sol,
                                                   double tolerance) {
  using Solver = mem::BandwidthSolver;
  std::vector<std::string> violations;

  const size_t nf = sol.flows.size();
  const size_t nr = sol.resources.size();
  if (nf != solver.flow_count() || nr != solver.resource_count()) {
    violations.push_back("solution shape does not match solver topology");
    return violations;
  }

  // Conservation: per-resource delivered load within the capacity share.
  for (size_t r = 0; r < nr; ++r) {
    const auto& rr = sol.resources[r];
    const double limit = rr.capacity_gbps * Solver::kCapacityShare;
    if (rr.achieved_gbps > limit + tolerance * std::max(1.0, limit)) {
      violations.push_back(
          Format("resource %s: delivered %.6f exceeds capacity share %.6f", rr.achieved_gbps,
                 limit, rr.name));
    }
  }

  // Demand bound: no flow above its offered load.
  for (size_t i = 0; i < nf; ++i) {
    const double offered = solver.flow_offered_gbps(static_cast<Solver::FlowId>(i));
    const double achieved = sol.flows[i].achieved_gbps;
    if (achieved > offered + tolerance * std::max(1.0, offered)) {
      violations.push_back(Format("flow %s: achieved %.6f exceeds offered %.6f", achieved, offered,
                                  "#" + std::to_string(i)));
    }
    if (achieved < -tolerance) {
      violations.push_back(
          Format("flow %s: negative achieved bandwidth %.6f (offered %.6f)", achieved, offered,
                 "#" + std::to_string(i)));
    }
  }

  if (sol.mode != mem::SolverMode::kMaxMinFair) {
    return violations;  // Fairness clauses only bind the max-min allocator.
  }

  // Fair share + work conservation: every throttled flow must be pinned by a
  // saturated resource where no competing flow holds a larger allocation.
  for (size_t i = 0; i < nf; ++i) {
    const auto id = static_cast<Solver::FlowId>(i);
    const double offered = solver.flow_offered_gbps(id);
    const double achieved = sol.flows[i].achieved_gbps;
    if (achieved >= offered - tolerance * std::max(1.0, offered)) {
      continue;  // Demand met; nothing to justify.
    }
    bool has_bottleneck = false;
    for (Solver::ResourceId r : solver.flow_resources(id)) {
      const auto& rr = sol.resources[static_cast<size_t>(r)];
      const double limit = rr.capacity_gbps * Solver::kCapacityShare;
      if (rr.achieved_gbps < limit - tolerance * std::max(1.0, limit)) {
        continue;  // Not saturated; cannot be the bottleneck.
      }
      // Largest allocation among flows crossing r.
      double largest = 0.0;
      for (size_t j = 0; j < nf; ++j) {
        const auto& res_j = solver.flow_resources(static_cast<Solver::FlowId>(j));
        if (std::find(res_j.begin(), res_j.end(), r) != res_j.end()) {
          largest = std::max(largest, sol.flows[j].achieved_gbps);
        }
      }
      if (achieved >= largest - tolerance * std::max(1.0, largest)) {
        has_bottleneck = true;
        break;
      }
    }
    if (!has_bottleneck) {
      violations.push_back(Format(
          "flow %s: throttled to %.6f of %.6f offered without a max-min bottleneck "
          "(no saturated resource where it holds the largest share)",
          achieved, offered, "#" + std::to_string(i)));
    }
  }

  return violations;
}

}  // namespace cxl::check
