// Machine-checkable correctness invariants for BandwidthSolver solutions.
//
// The contention solver sits under every end-to-end figure, so its output is
// held to an explicit contract rather than eyeballed:
//
//   conservation   per resource, sum of delivered flow bandwidth never
//                  exceeds capacity * kCapacityShare;
//   demand bound   no flow is granted more than it offered;
//   fair share     (max-min mode only) a flow that did not meet its demand
//                  has a saturated bottleneck resource on its path where its
//                  allocation is at least that of every other flow crossing
//                  the same resource — the defining property of max-min
//                  fairness;
//   work conservation  (max-min mode only) a saturated resource exists for
//                  every throttled flow; capacity is never left idle while a
//                  flow on it still wants more.
//
// The checker returns human-readable violation strings (empty = all hold) so
// tests, the calibration gate, and ad-hoc debugging share one implementation.
#ifndef CXL_EXPLORER_SRC_CHECK_INVARIANTS_H_
#define CXL_EXPLORER_SRC_CHECK_INVARIANTS_H_

#include <string>
#include <vector>

#include "src/mem/bandwidth_solver.h"

namespace cxl::check {

// Verifies `sol` (produced by `solver.Solve()`) against the contract above.
// `tolerance` is relative, scaled by the magnitudes involved. Fairness
// clauses are skipped for SolverMode::kProportionalLegacy solutions (the
// legacy allocator is documented not to satisfy them).
std::vector<std::string> SolverInvariantViolations(const mem::BandwidthSolver& solver,
                                                   const mem::BandwidthSolver::Solution& sol,
                                                   double tolerance = 1e-6);

}  // namespace cxl::check

#endif  // CXL_EXPLORER_SRC_CHECK_INVARIANTS_H_
