#include "src/core/configs.h"

namespace cxl::core {

using os::NumaPolicy;
using topology::Platform;
using topology::PlatformOptions;

std::string ConfigLabel(CapacityConfig config) {
  switch (config) {
    case CapacityConfig::kMmem:
      return "MMEM";
    case CapacityConfig::kMmemSsd02:
      return "MMEM-SSD-0.2";
    case CapacityConfig::kMmemSsd04:
      return "MMEM-SSD-0.4";
    case CapacityConfig::kInterleave31:
      return "3:1";
    case CapacityConfig::kInterleave11:
      return "1:1";
    case CapacityConfig::kInterleave13:
      return "1:3";
    case CapacityConfig::kHotPromote:
      return "Hot-Promote";
  }
  return "?";
}

std::vector<CapacityConfig> AllCapacityConfigs() {
  return {CapacityConfig::kMmem,         CapacityConfig::kMmemSsd02,
          CapacityConfig::kMmemSsd04,    CapacityConfig::kInterleave31,
          CapacityConfig::kInterleave11, CapacityConfig::kInterleave13,
          CapacityConfig::kHotPromote};
}

CapacitySetup MakeCapacitySetup(CapacityConfig config, const Platform& platform) {
  const std::vector<topology::NodeId> dram = platform.DramNodes();
  const std::vector<topology::NodeId> cxl = platform.CxlNodes();
  switch (config) {
    case CapacityConfig::kMmem:
      return CapacitySetup{NumaPolicy::Bind(dram), 1.0, false, false};
    case CapacityConfig::kMmemSsd02:
      return CapacitySetup{NumaPolicy::Bind(dram), 0.8, true, false};
    case CapacityConfig::kMmemSsd04:
      return CapacitySetup{NumaPolicy::Bind(dram), 0.6, true, false};
    case CapacityConfig::kInterleave31:
      return CapacitySetup{NumaPolicy::WeightedInterleave(dram, cxl, 3, 1), 1.0, false, false};
    case CapacityConfig::kInterleave11:
      return CapacitySetup{NumaPolicy::WeightedInterleave(dram, cxl, 1, 1), 1.0, false, false};
    case CapacityConfig::kInterleave13:
      return CapacitySetup{NumaPolicy::WeightedInterleave(dram, cxl, 1, 3), 1.0, false, false};
    case CapacityConfig::kHotPromote:
      return CapacitySetup{NumaPolicy::WeightedInterleave(dram, cxl, 1, 1), 1.0, false, true};
  }
  return CapacitySetup{NumaPolicy::Bind(dram), 1.0, false, false};
}

Platform MakeHotPromotePlatform(uint64_t dataset_bytes) {
  PlatformOptions opt;  // SNC disabled for capacity experiments (§4.1.1).
  // numactl caps main-memory usage at half the dataset (§4.1.1); realize the
  // cap physically by sizing DRAM to dataset/2 (split over two sockets).
  opt.dram_per_socket = dataset_bytes / 4;
  return Platform::Build(opt);
}

os::TieringConfig DefaultTieringConfig() {
  os::TieringConfig cfg;
  cfg.promote_rate_limit_mbps = 1024.0;  // Finite, as the v6.1 knob intends.
  cfg.dynamic_threshold = true;
  cfg.initial_hot_threshold = 10.0;
  cfg.hint_fault_sample_rate = 0.05;
  cfg.heat_decay = 0.5;
  return cfg;
}

}  // namespace cxl::core
