// Table 1: the system configurations used throughout the capacity
// experiments (§4), plus factories that realize them against a Platform.
#ifndef CXL_EXPLORER_SRC_CORE_CONFIGS_H_
#define CXL_EXPLORER_SRC_CORE_CONFIGS_H_

#include <string>
#include <vector>

#include "src/os/numa_policy.h"
#include "src/os/tiering.h"
#include "src/topology/platform.h"

namespace cxl::core {

// Table 1 rows.
enum class CapacityConfig {
  kMmem,          // Entire working set in main memory.
  kMmemSsd02,     // 20% of the working set spilled to SSD.
  kMmemSsd04,     // 40% spilled to SSD.
  kInterleave31,  // 75% MMEM + 25% CXL, 3:1 interleaved.
  kInterleave11,  // 50% MMEM + 50% CXL, 1:1 interleaved.
  kInterleave13,  // 25% MMEM + 75% CXL, 1:3 interleaved.
  kHotPromote,    // 50/50 start + hot-page promotion daemon.
};

// "MMEM", "MMEM-SSD-0.2", "3:1", "1:1", "1:3", "Hot-Promote" (the labels
// used in Fig. 5 / Fig. 7).
std::string ConfigLabel(CapacityConfig config);

// All Table 1 configurations in figure order.
std::vector<CapacityConfig> AllCapacityConfigs();

// Realization of a Table 1 row against a platform.
struct CapacitySetup {
  os::NumaPolicy policy;
  // KeyDB-FLASH mode with maxmemory = this fraction of the dataset
  // (1.0 = plain in-memory store).
  double maxmemory_fraction = 1.0;
  bool flash = false;
  // Run the promotion daemon.
  bool hot_promote = false;
};

// Builds the placement policy / flash settings for `config`. DRAM nodes and
// CXL nodes are taken from `platform`. For kHotPromote the caller must build
// the platform with DRAM capacity capped at half the dataset (the paper uses
// numactl + a main-memory cap; MakeHotPromotePlatform below does this).
CapacitySetup MakeCapacitySetup(CapacityConfig config, const topology::Platform& platform);

// Platform for the Hot-Promote row: DRAM sized to hold only half the
// dataset, so promotion pressure is real.
topology::Platform MakeHotPromotePlatform(uint64_t dataset_bytes);

// Default tiering knobs for the Hot-Promote experiments (§2.3's post-v6.1
// hot-page-selection settings).
os::TieringConfig DefaultTieringConfig();

}  // namespace cxl::core

#endif  // CXL_EXPLORER_SRC_CORE_CONFIGS_H_
