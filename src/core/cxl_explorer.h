// Umbrella header: the public API surface of cxl-explorer.
//
// Include this to get the whole toolkit:
//   - calibrated device models and loaded-latency curves   (src/mem)
//   - platform topologies and the bandwidth solver          (src/topology)
//   - page placement policies and the tiering daemon        (src/os)
//   - MLC-style and YCSB workload generators                (src/workload)
//   - the KeyDB / Spark / LLM application models            (src/apps)
//   - the Abstract Cost Model and VM economics              (src/cost)
//   - Table 1 configurations and experiment runners         (src/core)
//   - the deterministic parallel sweep engine               (src/runner)
//   - seeded fault injection and degradation responses      (src/fault)
#ifndef CXL_EXPLORER_SRC_CORE_CXL_EXPLORER_H_
#define CXL_EXPLORER_SRC_CORE_CXL_EXPLORER_H_

#include "src/apps/kv/kvstore.h"
#include "src/apps/kv/server.h"
#include "src/apps/llm/inference.h"
#include "src/apps/llm/serving.h"
#include "src/apps/spark/cluster.h"
#include "src/apps/spark/dag.h"
#include "src/apps/spark/query.h"
#include "src/core/configs.h"
#include "src/core/experiment.h"
#include "src/cost/cost_model.h"
#include "src/cost/multi_app.h"
#include "src/cost/vm_economics.h"
#include "src/fault/fault.h"
#include "src/mem/access.h"
#include "src/mem/bandwidth_solver.h"
#include "src/mem/cxl_link.h"
#include "src/mem/profiles.h"
#include "src/os/numa_policy.h"
#include "src/os/page_allocator.h"
#include "src/os/region.h"
#include "src/os/tiering.h"
#include "src/runner/sweep.h"
#include "src/telemetry/bench_io.h"
#include "src/telemetry/export.h"
#include "src/topology/platform.h"
#include "src/util/histogram.h"
#include "src/util/table.h"
#include "src/workload/mlc.h"
#include "src/workload/ycsb.h"

#endif  // CXL_EXPLORER_SRC_CORE_CXL_EXPLORER_H_
