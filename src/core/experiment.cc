#include "src/core/experiment.h"

#include <memory>
#include <utility>
#include <vector>

#include "src/os/page_allocator.h"
#include "src/os/vmstat.h"
#include "src/runner/sweep.h"
#include "src/topology/platform.h"
#include "src/util/units.h"

namespace cxl::core {

using apps::kv::KvServerConfig;
using apps::kv::KvServerSim;
using apps::kv::KvStore;
using apps::kv::KvStoreConfig;
using topology::Platform;

// Placement granularity for the KV experiments. Small enough that the
// Zipfian head spans hundreds of pages (real 4 KiB kernel pages hold ~4
// records; 16 KiB holds 16 of our 1 KiB records), so weighted interleaving
// spreads hot traffic by its ratios and the promotion daemon has genuine
// hot pages to find. 4 KiB would be faithful but quadruples bookkeeping for
// no change in behaviour.
constexpr uint64_t kKvPageBytes = 16 * kKiB;

namespace {

// End-of-run metrics: the figures' headline numbers plus the latency
// distributions, so --metrics-out captures what the stdout tables print.
void EmitKeyDbResultTelemetry(telemetry::MetricRegistry* sink,
                              const KeyDbExperimentResult& result,
                              const os::PageAllocator& allocator) {
  if (sink == nullptr) {
    return;
  }
  sink->GetGauge("kv.throughput_kops").Set(result.server.throughput_kops);
  sink->GetGauge("kv.dram_share").Set(result.server.dram_share);
  sink->GetGauge("kv.mem_traffic_gbps").Set(result.server.mem_traffic_gbps);
  sink->GetGauge("kv.ssd_read_gbps").Set(result.server.ssd_read_gbps);
  sink->GetGauge("kv.ssd_write_gbps").Set(result.server.ssd_write_gbps);
  sink->GetGauge("kv.avg_service_us").Set(result.server.avg_service_us);
  sink->GetCounter("kv.migrated_bytes")
      .Add(static_cast<uint64_t>(result.server.migrated_bytes));
  sink->RecordHistogram("kv.read_latency_us", result.server.read_latency_us);
  sink->RecordHistogram("kv.update_latency_us", result.server.update_latency_us);
  sink->RecordHistogram("kv.all_latency_us", result.server.all_latency_us);
  // End-state /proc/vmstat reading (t = last epoch for the series; the
  // counters here are the run totals).
  const os::VmCounters& counters = allocator.counters();
  sink->GetCounter("vmstat.pgpromote_success.total").Add(counters.pgpromote_success);
  sink->GetCounter("vmstat.pgdemote.total").Add(counters.pgdemote);
  sink->GetCounter("vmstat.numa_hint_faults.total").Add(counters.numa_hint_faults);
  sink->GetCounter("vmstat.promote_rate_limited.total").Add(counters.promote_rate_limited);
}

// Builds the per-run fault injector described by `env` (nullptr when the
// plan is empty — the healthy path never constructs one). `fault_seed`
// overrides env.fault_seed for per-cell seeding in sweeps.
std::unique_ptr<fault::FaultInjector> MakeInjector(const ExperimentEnv& env,
                                                   telemetry::MetricRegistry* sink,
                                                   uint64_t fault_seed) {
  if (!env.faults_enabled()) {
    return nullptr;
  }
  auto injector =
      std::make_unique<fault::FaultInjector>(env.faults, fault_seed, env.fault_tunables);
  injector->AttachTelemetry(sink);
  return injector;
}

}  // namespace

StatusOr<KeyDbExperimentResult> RunKeyDbExperiment(CapacityConfig config,
                                                   workload::YcsbWorkload workload,
                                                   const KeyDbExperimentOptions& options) {
  const ExperimentEnv& env = options.env;
  // Platform: the CXL experiment server, SNC disabled (§4.1.1). Hot-Promote
  // runs with DRAM capped at half the dataset.
  Platform platform = config == CapacityConfig::kHotPromote
                          ? MakeHotPromotePlatform(options.dataset_bytes)
                          : Platform::CxlServer(/*snc4=*/false);
  const CapacitySetup setup = MakeCapacitySetup(config, platform);

  os::PageAllocator allocator(platform, kKvPageBytes);
  std::unique_ptr<os::TieredMemory> tiering;
  if (setup.hot_promote) {
    os::TieringConfig tc = DefaultTieringConfig();
    tc.policy = env.tiering_policy;
    tiering = std::make_unique<os::TieredMemory>(allocator, tc);
    os::TieredMemory::Observers obs;
    obs.telemetry = env.telemetry;
    tiering->Attach(obs);
  }

  KvStoreConfig store_cfg;
  if (options.store_preset.has_value()) {
    store_cfg = *options.store_preset;
  }
  store_cfg.record_count = options.dataset_bytes / options.value_bytes;
  store_cfg.value_bytes = options.value_bytes;
  store_cfg.flash = setup.flash;
  if (setup.flash) {
    store_cfg.maxmemory_bytes =
        static_cast<uint64_t>(setup.maxmemory_fraction * static_cast<double>(options.dataset_bytes));
  }

  auto store = KvStore::Create(allocator, setup.policy, store_cfg, tiering.get());
  if (!store.ok()) {
    return store.status();
  }

  workload::YcsbGenerator gen(workload, store_cfg.record_count, env.seed);
  KvServerConfig server_cfg;
  server_cfg.server_threads = options.server_threads;
  server_cfg.client_connections = options.client_connections;
  server_cfg.total_ops = options.total_ops;
  server_cfg.warmup_ops = options.warmup_ops;
  server_cfg.seed = env.seed;
  server_cfg.profiler = env.profiler;

  auto injector = MakeInjector(env, env.telemetry, env.fault_seed);
  KvServerSim sim(platform, *store, gen, server_cfg, tiering.get(), env.telemetry,
                  injector.get());
  KeyDbExperimentResult result;
  result.config_label = ConfigLabel(config);
  result.workload_name = workload::YcsbName(workload);
  result.server = sim.Run();
  EmitKeyDbResultTelemetry(env.telemetry, result, allocator);
  store->Free();
  return result;
}

StatusOr<VmExperimentResult> RunVmCxlOnlyExperiment(KeyDbExperimentOptions options) {
  const ExperimentEnv& env = options.env;
  // §4.3.1: 100 GB YCSB-C dataset (default here: 1/8 scale), SNC disabled,
  // numactl-bound to MMEM or to CXL. The lighter Fig. 8 store preset applies
  // unless the caller overrides it. The preset is copied by value — a
  // function-local static here would be a shared-init hazard when several
  // sweep cells enter concurrently.
  const KvStoreConfig preset = options.store_preset.has_value() ? *options.store_preset
                                                                : KvStoreConfig::Fig8Preset(0);

  // Both placements replay the same op stream (env.seed, not the derived
  // sweep seed) so the MMEM/CXL comparison is apples to apples.
  const std::vector<int> cells = {0, 1};
  // The cells may run concurrently: each writes its own registry, merged
  // below in cell order under the "mmem." / "cxl." prefixes.
  std::vector<telemetry::MetricRegistry> cell_telemetry(
      env.telemetry != nullptr ? cells.size() : 0);
  auto run_cell = [&options, &env, &preset, &cell_telemetry](
                      const int& cell, uint64_t /*seed*/) -> StatusOr<KeyDbExperimentResult> {
    const bool use_cxl = cell != 0;
    Platform platform = Platform::CxlServer(false);
    os::PageAllocator allocator(platform, kKvPageBytes);
    const os::NumaPolicy policy =
        use_cxl ? os::NumaPolicy::Bind(platform.CxlNodes())
                : os::NumaPolicy::Bind(platform.DramNodes(/*socket=*/0));

    KvStoreConfig store_cfg = preset;
    store_cfg.record_count = options.dataset_bytes / options.value_bytes;
    store_cfg.value_bytes = options.value_bytes;

    auto store = KvStore::Create(allocator, policy, store_cfg);
    if (!store.ok()) {
      return store.status();
    }
    workload::YcsbGenerator gen(workload::YcsbWorkload::kC, store_cfg.record_count, env.seed);
    KvServerConfig server_cfg;
    server_cfg.server_threads = options.server_threads;
    server_cfg.client_connections = options.client_connections;
    server_cfg.total_ops = options.total_ops;
    server_cfg.warmup_ops = options.warmup_ops;
    server_cfg.seed = env.seed;
    server_cfg.profiler = env.profiler;

    telemetry::MetricRegistry* sink =
        cell_telemetry.empty() ? nullptr : &cell_telemetry[static_cast<size_t>(cell)];
    // Per-cell injector seed: derived with CellSeed so the two placements
    // draw independent fault streams yet the pair is reproducible at any
    // --jobs setting.
    auto injector = MakeInjector(
        env, sink, runner::CellSeed(env.fault_seed, static_cast<size_t>(cell)));
    KvServerSim sim(platform, *store, gen, server_cfg, nullptr, sink, injector.get());
    KeyDbExperimentResult res;
    res.config_label = use_cxl ? "CXL" : "MMEM";
    res.workload_name = "YCSB-C";
    res.server = sim.Run();
    EmitKeyDbResultTelemetry(sink, res, allocator);
    store->Free();
    return res;
  };

  runner::SweepOptions sweep_options;
  sweep_options.jobs = env.jobs;
  sweep_options.base_seed = env.seed;
  auto results = runner::RunSweep(cells, run_cell, sweep_options);
  if (!results.ok()) {
    return results.status();
  }
  if (env.telemetry != nullptr) {
    env.telemetry->MergeFrom(cell_telemetry[0], "mmem.");
    env.telemetry->MergeFrom(cell_telemetry[1], "cxl.");
  }

  VmExperimentResult out;
  out.mmem = std::move((*results)[0]);
  out.cxl = std::move((*results)[1]);
  if (out.mmem.server.throughput_kops > 0.0) {
    out.throughput_penalty =
        1.0 - out.cxl.server.throughput_kops / out.mmem.server.throughput_kops;
    out.cxl.slowdown_vs_baseline =
        out.mmem.server.throughput_kops / out.cxl.server.throughput_kops;
  }
  return out;
}

StatusOr<SparkExperimentResult> RunSparkExperiment(const SparkExperimentOptions& options) {
  const ExperimentEnv& env = options.env;
  apps::spark::SparkConfig cluster_cfg = options.cluster;
  if (cluster_cfg.tiering_policy.empty()) {
    cluster_cfg.tiering_policy = env.tiering_policy;
  }
  apps::spark::SparkCluster cluster(cluster_cfg);
  cluster.AttachTelemetry(env.telemetry);
  auto injector = MakeInjector(env, env.telemetry, env.fault_seed);
  cluster.AttachFaults(injector.get());

  const std::vector<apps::spark::QueryProfile> queries =
      options.queries.empty() ? apps::spark::TpchShuffleHeavyQueries() : options.queries;
  SparkExperimentResult out;
  out.queries.reserve(queries.size());
  for (const auto& q : queries) {
    const auto res = cluster.RunQuery(q);
    out.total_seconds += res.total_seconds;
    out.reexecuted_partitions += res.reexecuted_partitions;
    out.queries.push_back(res);
  }
  return out;
}

StatusOr<LlmExperimentResult> RunLlmExperiment(const LlmExperimentOptions& options) {
  const ExperimentEnv& env = options.env;
  if (options.requests <= 0) {
    return Status::InvalidArgument("LlmExperimentOptions.requests must be positive");
  }
  apps::llm::ServingStack stack(options.stack);
  auto injector = MakeInjector(env, env.telemetry, env.fault_seed);
  LlmExperimentResult out;
  out.stats = stack.Drive(options.request, options.requests, &out.latency_s, env.seed,
                          env.telemetry, injector.get());
  return out;
}

}  // namespace cxl::core
