// End-to-end experiment runner: the public API that assembles platform +
// allocator + tiering + KvStore + server simulation for one Table 1
// configuration and one YCSB workload — the unit of work behind Fig. 5 and
// Fig. 8 (and the quickstart example).
#ifndef CXL_EXPLORER_SRC_CORE_EXPERIMENT_H_
#define CXL_EXPLORER_SRC_CORE_EXPERIMENT_H_

#include <cstdint>
#include <string>

#include "src/apps/kv/server.h"
#include "src/core/configs.h"
#include "src/telemetry/metrics.h"
#include "src/util/status.h"
#include "src/workload/ycsb.h"

namespace cxl::core {

struct KeyDbExperimentOptions {
  // The paper's capacity experiments use a 512 GB working set of 1 KiB
  // records (§4.1.1); the default here is the same *shape* at 1/8 scale so a
  // full Fig. 5 sweep runs in seconds. Scale effects (fractions, ratios,
  // contention) are size-invariant in the model; pass 512 GiB to reproduce
  // at full scale.
  uint64_t dataset_bytes = 64ull << 30;
  uint64_t value_bytes = 1024;
  uint64_t total_ops = 250'000;
  uint64_t warmup_ops = 50'000;
  int server_threads = 7;
  int client_connections = 64;
  uint64_t seed = 1;
  // Worker threads for multi-cell experiments (Fig. 8 runs its two
  // placements concurrently). 0 = auto (CXL_JOBS env, then hardware).
  int jobs = 0;
  // Override the KvStore cost preset (null = Fig. 5 defaults).
  const apps::kv::KvStoreConfig* store_preset = nullptr;
  // Optional telemetry sink. When set, the run emits per-epoch PCM/vmstat/
  // tiering time series, trace spans, end-state gauges (kv.*) and latency
  // histograms into it. Purely additive: results and stdout are unchanged.
  // Single-writer — for sweeps, give every cell its own registry and merge
  // by cell index afterwards. (RunVmCxlOnlyExperiment does this internally:
  // its two placements land under "mmem." / "cxl." prefixes.)
  telemetry::MetricRegistry* telemetry = nullptr;
};

struct KeyDbExperimentResult {
  std::string config_label;
  std::string workload_name;
  apps::kv::KvServerSim::Result server;
  // Relative throughput vs a caller-supplied baseline (filled by helpers).
  double slowdown_vs_baseline = 0.0;
};

// Runs one (configuration, workload) cell of Fig. 5.
StatusOr<KeyDbExperimentResult> RunKeyDbExperiment(CapacityConfig config,
                                                   workload::YcsbWorkload workload,
                                                   const KeyDbExperimentOptions& options = {});

// Fig. 8 / §4.3: KeyDB bound entirely to MMEM or entirely to CXL via
// numactl-style bind (100 GB YCSB-C by default, at 1/8 scale).
struct VmExperimentResult {
  KeyDbExperimentResult mmem;
  KeyDbExperimentResult cxl;
  double throughput_penalty = 0.0;  // 1 - cxl/mmem.
};
StatusOr<VmExperimentResult> RunVmCxlOnlyExperiment(KeyDbExperimentOptions options = {});

}  // namespace cxl::core

#endif  // CXL_EXPLORER_SRC_CORE_EXPERIMENT_H_
