// End-to-end experiment runner: the public API that assembles platform +
// allocator + tiering + KvStore + server simulation for one Table 1
// configuration and one YCSB workload — the unit of work behind Fig. 5 and
// Fig. 8 (and the quickstart example).
#ifndef CXL_EXPLORER_SRC_CORE_EXPERIMENT_H_
#define CXL_EXPLORER_SRC_CORE_EXPERIMENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/apps/kv/server.h"
#include "src/apps/llm/serving.h"
#include "src/apps/spark/cluster.h"
#include "src/apps/spark/query.h"
#include "src/core/configs.h"
#include "src/fault/fault.h"
#include "src/telemetry/epoch_profiler.h"
#include "src/telemetry/metrics.h"
#include "src/util/histogram.h"
#include "src/util/status.h"
#include "src/util/units.h"
#include "src/workload/ycsb.h"

namespace cxl::core {

// Cross-cutting execution environment shared by every Run*Experiment entry
// point: where randomness comes from, how wide multi-cell experiments fan
// out, where observability lands, and which faults (if any) are injected.
// Embedded by value in each experiment's options struct so these concerns
// are plumbed once instead of re-declared per experiment.
struct ExperimentEnv {
  // Base seed for workload generation and service-time jitter. Multi-cell
  // experiments derive per-cell seeds with runner::CellSeed.
  uint64_t seed = 1;
  // Worker threads for multi-cell experiments (Fig. 8 runs its two
  // placements concurrently). 0 = auto (CXL_JOBS env, then hardware).
  int jobs = 0;
  // Optional telemetry sink. When set, the run emits per-epoch PCM/vmstat/
  // tiering time series, trace spans, end-state gauges and latency
  // histograms into it. Purely additive: results and stdout are unchanged.
  // Single-writer — for sweeps, give every cell its own registry and merge
  // by cell index afterwards. (RunVmCxlOnlyExperiment does this internally:
  // its two placements land under "mmem." / "cxl." prefixes.)
  telemetry::MetricRegistry* telemetry = nullptr;
  // Optional per-phase wall-clock profiler (--profile-epochs). Shared across
  // cells — its accumulators are atomic. Observational only: results and
  // stdout are unchanged; the breakdown prints to stderr.
  telemetry::EpochProfiler* profiler = nullptr;
  // Fault plan injected into the run (empty = healthy; the default). The
  // experiment constructs one fault::FaultInjector per simulation, seeded
  // from `fault_seed` (per-cell via runner::CellSeed in sweeps) — never from
  // `seed`, so toggling faults cannot perturb the healthy RNG streams.
  fault::FaultPlan faults;
  uint64_t fault_seed = 1;
  fault::FaultTunables fault_tunables;
  // PolicyRegistry name of the tiering policy for experiments that run the
  // promotion daemon (Hot-Promote configs). Empty = the config default
  // (hot page selection), leaving legacy runs byte-identical.
  std::string tiering_policy;

  bool faults_enabled() const { return !faults.empty(); }
};

struct KeyDbExperimentOptions {
  // The paper's capacity experiments use a 512 GB working set of 1 KiB
  // records (§4.1.1); the default here is the same *shape* at 1/8 scale so a
  // full Fig. 5 sweep runs in seconds. Scale effects (fractions, ratios,
  // contention) are size-invariant in the model; pass 512 GiB to reproduce
  // at full scale.
  uint64_t dataset_bytes = 64 * kGiB;
  uint64_t value_bytes = 1024;
  uint64_t total_ops = 250'000;
  uint64_t warmup_ops = 50'000;
  int server_threads = 7;
  int client_connections = 64;
  // Shared execution environment (seed, jobs, telemetry, fault plan).
  ExperimentEnv env;
  // Override the KvStore cost preset (nullopt = Fig. 5 defaults). Held by
  // value: the options struct owns its preset, so there is no dangling-
  // pointer hazard when options outlive the scope that configured them.
  std::optional<apps::kv::KvStoreConfig> store_preset;
};

struct KeyDbExperimentResult {
  std::string config_label;
  std::string workload_name;
  apps::kv::KvServerSim::Result server;
  // Relative throughput vs a caller-supplied baseline (filled by helpers).
  double slowdown_vs_baseline = 0.0;
};

// Runs one (configuration, workload) cell of Fig. 5.
StatusOr<KeyDbExperimentResult> RunKeyDbExperiment(CapacityConfig config,
                                                   workload::YcsbWorkload workload,
                                                   const KeyDbExperimentOptions& options = {});

// Fig. 8 / §4.3: KeyDB bound entirely to MMEM or entirely to CXL via
// numactl-style bind (100 GB YCSB-C by default, at 1/8 scale).
struct VmExperimentResult {
  KeyDbExperimentResult mmem;
  KeyDbExperimentResult cxl;
  double throughput_penalty = 0.0;  // 1 - cxl/mmem.
};
StatusOr<VmExperimentResult> RunVmCxlOnlyExperiment(KeyDbExperimentOptions options = {});

// §4.2: one Spark cluster configuration over a set of TPC-H queries.
// Thin orchestration over apps::spark::SparkCluster that wires the shared
// environment (telemetry sink, fault injector) through the cluster.
struct SparkExperimentOptions {
  apps::spark::SparkConfig cluster = apps::spark::SparkConfig::MmemOnly();
  // Queries to run back to back (empty = the paper's four shuffle-heavy
  // TPC-H queries, Q5/Q7/Q8/Q9).
  std::vector<apps::spark::QueryProfile> queries;
  ExperimentEnv env;
};

struct SparkExperimentResult {
  std::vector<apps::spark::QueryResult> queries;
  double total_seconds = 0.0;
  int reexecuted_partitions = 0;  // Shuffle partitions re-run after fetch failures.
};

StatusOr<SparkExperimentResult> RunSparkExperiment(const SparkExperimentOptions& options = {});

// §5: LLM serving pipeline driven with back-to-back requests.
struct LlmExperimentOptions {
  apps::llm::ServingStackConfig stack;
  apps::llm::ServingRequest request;
  int requests = 64;
  ExperimentEnv env;
};

struct LlmExperimentResult {
  apps::llm::ServingStack::Stats stats;
  Histogram latency_s{1e-4, 1e5, 96};  // Per-request latency (seconds).
};

StatusOr<LlmExperimentResult> RunLlmExperiment(const LlmExperimentOptions& options = {});

}  // namespace cxl::core

#endif  // CXL_EXPLORER_SRC_CORE_EXPERIMENT_H_
