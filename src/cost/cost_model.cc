#include "src/cost/cost_model.h"

namespace cxl::cost {

Status AbstractCostModel::Validate() const {
  if (params_.r_d <= 1.0) {
    return Status::InvalidArgument("R_d must exceed 1 (MMEM must beat SSD)");
  }
  if (params_.r_c <= 1.0 || params_.r_c > params_.r_d) {
    return Status::InvalidArgument("R_c must lie in (1, R_d]");
  }
  if (params_.c <= 0.0) {
    return Status::InvalidArgument("C must be positive");
  }
  if (params_.r_t <= 0.0) {
    return Status::InvalidArgument("R_t must be positive");
  }
  return Status::Ok();
}

double AbstractCostModel::ServerRatio() const {
  const double rd = params_.r_d;
  const double rc = params_.r_c;
  const double c = params_.c;
  return c * rc * (rd - 1.0) / (rc * rd * (c + 1.0) - c * rc - rd);
}

double AbstractCostModel::TcoSaving() const { return 1.0 - ServerRatio() * params_.r_t; }

double AbstractCostModel::BaselineTime(double working_set, double servers,
                                       double mmem_per_server) const {
  const double in_mem = servers * mmem_per_server;
  return in_mem / params_.r_d + (working_set - in_mem);
}

double AbstractCostModel::CxlTime(double working_set, double servers,
                                  double mmem_per_server) const {
  const double in_mem = servers * mmem_per_server;
  const double in_cxl = in_mem / params_.c;
  return in_mem / params_.r_d + in_cxl / params_.r_c + (working_set - in_mem - in_cxl);
}

ExtendedCostModel::ExtendedCostModel(ExtendedCostParams params)
    : inner_(params.base), effective_r_t_(params.base.r_t + params.fixed_overhead_fraction) {}

double ExtendedCostModel::TcoSaving() const { return 1.0 - ServerRatio() * effective_r_t_; }

}  // namespace cxl::cost
