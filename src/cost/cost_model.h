// The Abstract Cost Model (§6, Table 3).
//
// Estimates the TCO saving of provisioning a cluster with CXL-expanded
// servers instead of adding baseline servers, from three microbenchmark-
// derived throughput ratios and one relative-cost figure — no internal or
// sensitive data required:
//
//   P_s  throughput with (almost) the whole working set spilled to SSD
//        (normalized to 1);
//   R_d  relative throughput, working set entirely in main memory;
//   R_c  relative throughput, working set entirely in CXL memory;
//   C    MMEM : CXL capacity ratio of a CXL server;
//   R_t  relative TCO of a CXL server vs a baseline server.
//
// Execution time is approximated by splitting the working set W into the
// segments processed from MMEM, CXL, and SSD (the paper's Spark SQL
// example):
//
//   T_baseline = N_b * D / R_d + (W - N_b * D)
//   T_cxl      = N_c * D / R_d + N_c * D / (C * R_c)
//              + (W - N_c * D - N_c * D / C)
//
// Setting T_baseline = T_cxl yields the server-count ratio
//
//   N_c / N_b = C * R_c * (R_d - 1) / (R_c * R_d * (C+1) - C * R_c - R_d)
//
// and TCO saving 1 - (N_c / N_b) * R_t. The worked example in §6
// (R_d = 10, R_c = 8, C = 2, R_t = 1.1) gives 67.29% and 25.98%.
#ifndef CXL_EXPLORER_SRC_COST_COST_MODEL_H_
#define CXL_EXPLORER_SRC_COST_COST_MODEL_H_

#include "src/util/status.h"

namespace cxl::cost {

struct CostModelParams {
  double r_d = 10.0;  // Table 3 example value.
  double r_c = 8.0;
  double c = 2.0;
  double r_t = 1.1;
};

class AbstractCostModel {
 public:
  explicit AbstractCostModel(CostModelParams params) : params_(params) {}

  // Parameter sanity: R_d > 1 (memory beats SSD), 1 < R_c <= R_d (CXL beats
  // SSD but not MMEM), C > 0, R_t > 0.
  Status Validate() const;

  // N_cxl / N_baseline to meet the same performance target.
  double ServerRatio() const;

  // 1 - ServerRatio() * R_t.
  double TcoSaving() const;

  // Execution-time helpers (per unit working set; D = MMEM per server, W =
  // working set size, n = server count). Exposed for tests and for the
  // what-if tooling in the examples.
  double BaselineTime(double working_set, double servers, double mmem_per_server) const;
  double CxlTime(double working_set, double servers, double mmem_per_server) const;

  const CostModelParams& params() const { return params_; }

 private:
  CostModelParams params_;
};

// §6 "Extending Cost Model for more realistic scenarios": fixed per-server
// infrastructure adders (CXL controllers, switches for 2.0/3.0 fabrics,
// PCBs, cables) folded into the relative TCO.
struct ExtendedCostParams {
  CostModelParams base;
  // Extra fixed cost of CXL plumbing as a fraction of a baseline server's
  // TCO (added on top of base.r_t).
  double fixed_overhead_fraction = 0.0;
};

class ExtendedCostModel {
 public:
  explicit ExtendedCostModel(ExtendedCostParams params);

  double ServerRatio() const { return inner_.ServerRatio(); }
  double TcoSaving() const;
  double EffectiveRelativeTco() const { return effective_r_t_; }

 private:
  AbstractCostModel inner_;
  double effective_r_t_;
};

}  // namespace cxl::cost

#endif  // CXL_EXPLORER_SRC_COST_COST_MODEL_H_
