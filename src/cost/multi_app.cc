#include "src/cost/multi_app.h"

#include <cassert>

namespace cxl::cost {

MultiAppCostModel::MultiAppCostModel(std::vector<AppClass> apps, double r_t,
                                     double shared_cxl_discount)
    : apps_(std::move(apps)), r_t_(r_t) {
  assert(shared_cxl_discount >= 0.0 && shared_cxl_discount <= 1.0);
  // Pooling discounts only the CXL *adder*, not the base server cost.
  effective_r_t_ = 1.0 + (r_t_ - 1.0) * (1.0 - shared_cxl_discount);
}

Status MultiAppCostModel::Validate() const {
  if (apps_.empty()) {
    return Status::InvalidArgument("no application classes");
  }
  for (const AppClass& app : apps_) {
    CostModelParams p = app.params;
    p.r_t = effective_r_t_;
    if (const Status s = AbstractCostModel(p).Validate(); !s.ok()) {
      return Status::InvalidArgument(app.name + ": " + s.message());
    }
    if (app.baseline_servers <= 0.0) {
      return Status::InvalidArgument(app.name + ": baseline_servers must be positive");
    }
  }
  return Status::Ok();
}

MultiAppPlan MultiAppCostModel::PlanInternal(bool selective) const {
  MultiAppPlan plan;
  double baseline_cost = 0.0;
  double cxl_cost = 0.0;
  for (const AppClass& app : apps_) {
    CostModelParams p = app.params;
    p.r_t = effective_r_t_;
    AbstractCostModel model(p);
    MultiAppPlan::PerApp row;
    row.name = app.name;
    row.baseline_servers = app.baseline_servers;
    const double saving = model.TcoSaving();
    if (selective && saving <= 0.0) {
      // This class stays on baseline hardware.
      row.cxl_servers = app.baseline_servers;
      row.tco_saving = 0.0;
      cxl_cost += app.baseline_servers;  // Paid at baseline rate.
    } else {
      row.cxl_servers = model.ServerRatio() * app.baseline_servers;
      row.tco_saving = saving;
      cxl_cost += row.cxl_servers * effective_r_t_;
    }
    baseline_cost += app.baseline_servers;
    plan.total_baseline_servers += row.baseline_servers;
    plan.total_cxl_servers += row.cxl_servers;
    plan.apps.push_back(std::move(row));
  }
  plan.fleet_tco_saving = baseline_cost > 0.0 ? 1.0 - cxl_cost / baseline_cost : 0.0;
  return plan;
}

MultiAppPlan MultiAppCostModel::Plan() const { return PlanInternal(/*selective=*/false); }

MultiAppPlan MultiAppCostModel::PlanSelective() const { return PlanInternal(/*selective=*/true); }

}  // namespace cxl::cost
