// Multi-application cost model — the extension §6 explicitly leaves open:
// "a notable constraint of our current model is its focus on only one type
//  of application at a time. This becomes a challenge when a data center
//  provider seeks to evaluate cost savings for multiple distinct
//  applications ... especially in environments where resources are shared."
//
// Model: a fleet runs several application classes, each with its own
// single-app cost-model parameters (R_d, R_c) and a share of the fleet's
// servers. CXL capacity is provisioned per server (ratio C) and shared:
// classes that benefit more can be weighted toward CXL-equipped servers.
//
//  - Segregated deployment: each class gets its own (baseline or CXL)
//    sub-cluster sized by the single-app model — a direct composition.
//  - Shared deployment: every server carries CXL and classes are packed
//    onto the same fleet; the pooled CXL (see src/pool) lowers the
//    effective per-server CXL cost by the multiplexing saving.
#ifndef CXL_EXPLORER_SRC_COST_MULTI_APP_H_
#define CXL_EXPLORER_SRC_COST_MULTI_APP_H_

#include <string>
#include <vector>

#include "src/cost/cost_model.h"
#include "src/util/status.h"

namespace cxl::cost {

struct AppClass {
  std::string name;
  CostModelParams params;       // Single-app microbenchmark ratios.
  double baseline_servers = 1;  // Servers this class uses today.
};

struct MultiAppPlan {
  struct PerApp {
    std::string name;
    double baseline_servers = 0.0;
    double cxl_servers = 0.0;   // Servers needed with CXL.
    double tco_saving = 0.0;    // This class's saving.
  };
  std::vector<PerApp> apps;
  double total_baseline_servers = 0.0;
  double total_cxl_servers = 0.0;
  // Fleet-level TCO saving (server-count weighted).
  double fleet_tco_saving = 0.0;
};

class MultiAppCostModel {
 public:
  // `r_t` is the relative TCO of a CXL server; `shared_cxl_discount` scales
  // the CXL *adder* (r_t - 1) down when capacity is pooled across the fleet
  // (0 = no pooling benefit, 0.34 = the 16-host multiplexing saving from
  // src/pool's economics).
  MultiAppCostModel(std::vector<AppClass> apps, double r_t, double shared_cxl_discount = 0.0);

  // Validates every class's parameters.
  Status Validate() const;

  // Sizes the fleet: each class keeps its own servers (single-app model per
  // class), all CXL-equipped, with the shared discount applied to R_t.
  MultiAppPlan Plan() const;

  // Which classes should adopt CXL at all: classes whose single-app saving
  // at the (discounted) R_t is negative stay on baseline servers.
  MultiAppPlan PlanSelective() const;

  double effective_r_t() const { return effective_r_t_; }

 private:
  MultiAppPlan PlanInternal(bool selective) const;

  std::vector<AppClass> apps_;
  double r_t_;
  double effective_r_t_;
};

}  // namespace cxl::cost

#endif  // CXL_EXPLORER_SRC_COST_MULTI_APP_H_
