#include "src/cost/vm_economics.h"

namespace cxl::cost {

std::vector<ProcessorSpec> IntelProcessorSeries() {
  // Table 2 verbatim.
  return {
      ProcessorSpec{"IceLake-SP", "2021", 160, "8xDDR4-3200", 4.0, 0.64},
      ProcessorSpec{"Sapphire Rapids", "2022 (delayed)", 192, "8xDDR5-4800", 4.0, 0.768},
      ProcessorSpec{"Emerald Rapids", "2023 (delayed)", 256, "8xDDR5-6400", 4.0, 1.0},
      ProcessorSpec{"Sierra Forest", "2024+", 1152, "12", 4.0, 4.5},
      ProcessorSpec{"Clearwater Forest", "2025+", 1152, "TBD", 4.0, 4.5},
  };
}

namespace {
// Memory sizing works in GiB per vCPU; instance capacities are quoted in TiB.
constexpr double kGiBPerTiB = 1024.0;
}  // namespace

double RequiredMemoryTiB(int vcpus, double gib_per_vcpu) {
  return vcpus * gib_per_vcpu / kGiBPerTiB;
}

double VmEconomics::StrandedVcpuFraction() const {
  const double f = 1.0 - params_.actual_gib_per_vcpu / params_.optimal_gib_per_vcpu;
  return f < 0.0 ? 0.0 : f;
}

double VmEconomics::CxlRevenue() const {
  // Stranded vCPUs become sellable via CXL-backed memory, priced at a
  // discount. (The 12.5% performance penalty is what motivates the discount
  // level; revenue follows price.)
  return BaselineRevenue() + StrandedVcpuFraction() * (1.0 - params_.cxl_discount);
}

double VmEconomics::RevenueImprovement() const {
  const double base = BaselineRevenue();
  return base > 0.0 ? (CxlRevenue() - base) / base : 0.0;
}

}  // namespace cxl::cost
