// Elastic-compute economics of CXL memory expansion (§4.3) and the Intel
// processor-series capacity data (Table 2).
//
// CSPs sell vCPUs against a target vCPU:memory ratio (canonically 1 vCPU :
// 4 GiB). Core counts are growing faster than per-server memory capacity
// (DDR slots, DRAM density, high-density DIMM cost), stranding vCPUs that
// cannot be sold at the target ratio. CXL expansion supplies the missing
// memory; instances backed by CXL run ~12.5% slower (Fig. 8) and are sold
// at a discount, recovering most of the stranded revenue.
#ifndef CXL_EXPLORER_SRC_COST_VM_ECONOMICS_H_
#define CXL_EXPLORER_SRC_COST_VM_ECONOMICS_H_

#include <string>
#include <vector>

namespace cxl::cost {

// One row of Table 2.
struct ProcessorSpec {
  std::string name;
  std::string year;               // "2021", "2024+", ...
  int max_vcpu_per_server = 0;
  std::string memory_channels;    // Per socket.
  double max_memory_tib = 0.0;    // Motherboard limit.
  double required_memory_tib = 0.0;  // At the 1:4 vCPU:GiB ratio.
};

// Table 2: IceLake-SP through Clearwater Forest.
std::vector<ProcessorSpec> IntelProcessorSeries();

// Memory (TiB) needed to sell `vcpus` at `gib_per_vcpu` (default 4, the 1:4
// rule).
double RequiredMemoryTiB(int vcpus, double gib_per_vcpu = 4.0);

struct VmEconomicsParams {
  // Target (optimal) GiB of memory per vCPU.
  double optimal_gib_per_vcpu = 4.0;
  // What the server can actually provision per vCPU (memory-constrained);
  // the §4.3.2 example uses 3 (a 1:3 server).
  double actual_gib_per_vcpu = 3.0;
  // Price discount on CXL-backed instances.
  double cxl_discount = 0.20;
  // Throughput penalty of CXL-backed instances (Fig. 8: ~12.5%).
  double cxl_performance_penalty = 0.125;
};

class VmEconomics {
 public:
  explicit VmEconomics(VmEconomicsParams params) : params_(params) {}

  // Fraction of vCPUs that cannot be sold at the optimal ratio
  // (1 - actual/optimal; 25% in the worked example).
  double StrandedVcpuFraction() const;

  // Revenue (relative to the fully-sellable baseline) without CXL: only the
  // non-stranded vCPUs sell.
  double BaselineRevenue() const { return 1.0 - StrandedVcpuFraction(); }

  // Revenue with CXL expansion: stranded vCPUs sell at the discount.
  double CxlRevenue() const;

  // Relative improvement of CxlRevenue over BaselineRevenue — the paper's
  // "20/75 = 26.77%" (exactly 20/75 = 26.67%).
  double RevenueImprovement() const;

  const VmEconomicsParams& params() const { return params_; }

 private:
  VmEconomicsParams params_;
};

}  // namespace cxl::cost

#endif  // CXL_EXPLORER_SRC_COST_VM_ECONOMICS_H_
