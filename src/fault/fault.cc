#include "src/fault/fault.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <string>

#include "src/util/units.h"

namespace cxl::fault {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Formats a double the way the spec grammar accepts it back: shortest
// round-trip-ish form, no trailing zeros.
std::string FormatNumber(double v) {
  if (v == static_cast<int64_t>(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

StatusOr<double> ParseNumber(std::string_view text, std::string_view what) {
  // std::from_chars<double> handles "1e-4" etc. without locale surprises.
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("bad " + std::string(what) + " '" + std::string(text) + "'");
  }
  return value;
}

struct SeverityRange {
  double min;
  double max;
  double fallback;  // Used when the spec omits '=severity'.
};

// Per-type severity validation for Parse(): lanes in {1..16}, probabilities
// and fractions in [0, 1].
SeverityRange RangeFor(FaultType type) {
  switch (type) {
    case FaultType::kLaneDowntrain:
      return {1.0, 16.0, 8.0};
    case FaultType::kCrcRetryStorm:
      return {0.0, 0.9, 0.15};
    case FaultType::kPoisonedCacheline:
      return {0.0, 1.0, 1e-4};
    case FaultType::kDramThrottle:
      return {0.01, 1.0, 0.5};
    case FaultType::kDaemonStall:
      return {0.0, 1.0, 0.0};
    case FaultType::kFlashIoError:
      return {0.0, 1.0, 0.01};
  }
  return {0.0, 1.0, 0.0};
}

StatusOr<FaultType> TypeFromName(std::string_view name) {
  if (name == "downtrain") return FaultType::kLaneDowntrain;
  if (name == "crc") return FaultType::kCrcRetryStorm;
  if (name == "poison") return FaultType::kPoisonedCacheline;
  if (name == "throttle") return FaultType::kDramThrottle;
  if (name == "stall") return FaultType::kDaemonStall;
  if (name == "flash") return FaultType::kFlashIoError;
  return Status::InvalidArgument("unknown fault type '" + std::string(name) +
                                 "' (want downtrain|crc|poison|throttle|stall|flash|storm)");
}

}  // namespace

const char* FaultTypeName(FaultType type) {
  switch (type) {
    case FaultType::kLaneDowntrain:
      return "downtrain";
    case FaultType::kCrcRetryStorm:
      return "crc";
    case FaultType::kPoisonedCacheline:
      return "poison";
    case FaultType::kDramThrottle:
      return "throttle";
    case FaultType::kDaemonStall:
      return "stall";
    case FaultType::kFlashIoError:
      return "flash";
  }
  return "unknown";
}

FaultPlan& FaultPlan::Downtrain(double start_s, double duration_s, int lanes) {
  return Add({FaultType::kLaneDowntrain, start_s, duration_s, static_cast<double>(lanes)});
}

FaultPlan& FaultPlan::CrcStorm(double start_s, double duration_s, double extra_maintenance) {
  return Add({FaultType::kCrcRetryStorm, start_s, duration_s, extra_maintenance});
}

FaultPlan& FaultPlan::Poison(double start_s, double duration_s, double probability) {
  return Add({FaultType::kPoisonedCacheline, start_s, duration_s, probability});
}

FaultPlan& FaultPlan::DramThrottle(double start_s, double duration_s, double bandwidth_factor) {
  return Add({FaultType::kDramThrottle, start_s, duration_s, bandwidth_factor});
}

FaultPlan& FaultPlan::DaemonStall(double start_s, double duration_s) {
  return Add({FaultType::kDaemonStall, start_s, duration_s, 0.0});
}

FaultPlan& FaultPlan::FlashErrors(double start_s, double duration_s, double probability) {
  return Add({FaultType::kFlashIoError, start_s, duration_s, probability});
}

FaultPlan& FaultPlan::Add(FaultEvent event) {
  events_.push_back(event);
  return *this;
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const FaultEvent& e : events_) {
    if (!out.empty()) {
      out += ',';
    }
    out += FaultTypeName(e.type);
    if (e.start_s != 0.0) {
      out += '@';
      out += FormatNumber(e.start_s);
    }
    if (e.duration_s != kInf) {
      out += '+';
      out += FormatNumber(e.duration_s);
    }
    if (e.type != FaultType::kDaemonStall) {
      out += '=';
      out += FormatNumber(e.severity);
    }
  }
  return out;
}

StatusOr<FaultPlan> FaultPlan::Parse(std::string_view spec) {
  FaultPlan plan;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) {
      comma = spec.size();
    }
    std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    // Trim surrounding whitespace.
    while (!item.empty() && std::isspace(static_cast<unsigned char>(item.front()))) {
      item.remove_prefix(1);
    }
    while (!item.empty() && std::isspace(static_cast<unsigned char>(item.back()))) {
      item.remove_suffix(1);
    }
    if (item.empty()) {
      if (comma == spec.size()) {
        break;
      }
      return Status::InvalidArgument("empty fault event in spec");
    }
    if (item == "storm") {
      // Named temporary: ranging directly over Storm().events() would dangle
      // (the FaultPlan temporary dies before the loop body in C++17).
      const FaultPlan storm = Storm();
      for (const FaultEvent& e : storm.events()) {
        plan.Add(e);
      }
      continue;
    }
    // type ['@' start] ['+' duration] ['=' severity]
    const size_t type_end = item.find_first_of("@+=");
    const std::string_view type_name = item.substr(0, type_end);
    auto type = TypeFromName(type_name);
    if (!type.ok()) {
      return type.status();
    }
    FaultEvent event;
    event.type = *type;
    const SeverityRange range = RangeFor(event.type);
    event.severity = range.fallback;
    std::string_view rest = type_end == std::string_view::npos ? "" : item.substr(type_end);
    while (!rest.empty()) {
      const char tag = rest.front();
      rest.remove_prefix(1);
      const size_t next = rest.find_first_of("@+=");
      const std::string_view number = rest.substr(0, next);
      rest = next == std::string_view::npos ? "" : rest.substr(next);
      StatusOr<double> value = ParseNumber(
          number, tag == '@' ? "start" : tag == '+' ? "duration" : "severity");
      if (!value.ok()) {
        return value.status();
      }
      switch (tag) {
        case '@':
          event.start_s = *value;
          break;
        case '+':
          event.duration_s = *value;
          break;
        case '=':
          event.severity = *value;
          break;
        default:
          return Status::InvalidArgument("bad fault event syntax");
      }
    }
    if (event.start_s < 0.0 || event.duration_s <= 0.0) {
      return Status::InvalidArgument("fault '" + std::string(item) +
                                     "': start must be >= 0 and duration > 0");
    }
    if (event.severity < range.min || event.severity > range.max) {
      return Status::InvalidArgument("fault '" + std::string(item) + "': severity out of [" +
                                     FormatNumber(range.min) + ", " + FormatNumber(range.max) +
                                     "]");
    }
    plan.Add(event);
  }
  return plan;
}

FaultPlan FaultPlan::Storm() {
  FaultPlan plan;
  plan.Downtrain(/*start_s=*/1.0, /*duration_s=*/4.0, /*lanes=*/8)
      .CrcStorm(/*start_s=*/2.0, /*duration_s=*/2.0, /*extra_maintenance=*/0.15)
      .Poison(/*start_s=*/0.0, /*duration_s=*/kInf, /*probability=*/1e-4)
      .DaemonStall(/*start_s=*/3.0, /*duration_s=*/1.5)
      .FlashErrors(/*start_s=*/0.5, /*duration_s=*/kInf, /*probability=*/0.01);
  return plan;
}

void DeclareFaultKnobs(KnobSet& knobs) {
  const FaultTunables d;
  knobs.Declare("fault.poison_read_retries", d.poison_read_retries,
                "KV server rereads per poisoned cacheline before giving up");
  knobs.Declare("fault.flash_timeout_factor", d.flash_timeout_factor,
                "flash IO-error timeout as a multiple of the normal SSD read");
  knobs.Declare("fault.shed_latency_factor", d.shed_latency_factor,
                "epoch latency vs healthy baseline that arms KV load shedding");
  knobs.Declare("fault.shed_arm_epochs", d.shed_arm_epochs,
                "consecutive degraded epochs before the KV server sheds load");
  knobs.Declare("fault.shed_fraction", d.shed_fraction,
                "fraction of arrivals rejected while the KV server sheds");
  knobs.Declare("fault.backoff_max_ticks", d.backoff_max_ticks,
                "tiering-daemon promotion-failure backoff cap, in ticks");
  knobs.Declare("fault.llm_batch_shrink_threshold", d.llm_batch_shrink_threshold,
                "CXL bandwidth factor below which LLM serving shrinks batches");
  knobs.Declare("fault.llm_latency_slo_factor", d.llm_latency_slo_factor,
                "per-token latency inflation LLM batch shrinking targets");
  knobs.Declare("fault.spark_shuffle_partitions", d.spark_shuffle_partitions,
                "shuffle partitions per Spark stage (re-execution granularity)");
  knobs.Declare("fault.spark_fetch_failure_probability", d.spark_fetch_failure_probability,
                "per-partition shuffle fetch-failure probability on a degraded link");
}

FaultTunables FaultTunablesFromKnobs(const KnobSet& knobs) {
  FaultTunables t;
  auto get = [&knobs](const char* key, double fallback) {
    return knobs.IsDeclared(key) ? knobs.Get(key) : fallback;
  };
  t.poison_read_retries =
      static_cast<int>(get("fault.poison_read_retries", t.poison_read_retries));
  t.flash_timeout_factor = get("fault.flash_timeout_factor", t.flash_timeout_factor);
  t.shed_latency_factor = get("fault.shed_latency_factor", t.shed_latency_factor);
  t.shed_arm_epochs = static_cast<int>(get("fault.shed_arm_epochs", t.shed_arm_epochs));
  t.shed_fraction = get("fault.shed_fraction", t.shed_fraction);
  t.backoff_max_ticks = static_cast<int>(get("fault.backoff_max_ticks", t.backoff_max_ticks));
  t.llm_batch_shrink_threshold =
      get("fault.llm_batch_shrink_threshold", t.llm_batch_shrink_threshold);
  t.llm_latency_slo_factor = get("fault.llm_latency_slo_factor", t.llm_latency_slo_factor);
  t.spark_shuffle_partitions =
      static_cast<int>(get("fault.spark_shuffle_partitions", t.spark_shuffle_partitions));
  t.spark_fetch_failure_probability =
      get("fault.spark_fetch_failure_probability", t.spark_fetch_failure_probability);
  return t;
}

double DegradedLinkBandwidthFactor(const mem::CxlLinkConfig& base, int active_lanes,
                                   double extra_maintenance) {
  const double healthy = mem::ComputeLinkEfficiency(base).effective_gbps;
  if (healthy <= 0.0) {
    return 1.0;
  }
  const mem::CxlLinkConfig degraded = mem::DegradeLink(base, active_lanes, extra_maintenance);
  return mem::ComputeLinkEfficiency(degraded).effective_gbps / healthy;
}

FaultInjector::FaultInjector(FaultPlan plan, uint64_t seed, FaultTunables tunables)
    : plan_(std::move(plan)),
      tunables_(tunables),
      rng_(SplitMix64(seed ^ 0xfa0173f5c4a11e57ull)),
      announced_(plan_.events().size(), false),
      closed_(plan_.events().size(), false) {
  // Events starting at t=0 must be visible before the first AdvanceTo (whose
  // monotonic guard rejects t<=0). Recompute draws nothing from the RNG and
  // telemetry is not yet attached, so this cannot perturb a healthy run.
  if (enabled()) {
    Recompute();
  }
}

void FaultInjector::AttachTelemetry(telemetry::MetricRegistry* sink) {
  telemetry_ = sink;
  if (telemetry_ != nullptr && enabled()) {
    track_ = telemetry_->trace().Track("faults");
  }
}

void FaultInjector::AdvanceTo(double t_s) {
  if (!enabled() || t_s <= now_s_) {
    return;
  }
  now_s_ = t_s;
  Recompute();
}

void FaultInjector::Recompute() {
  lanes_ = 16;
  extra_maintenance_ = 0.0;
  poison_p_ = 0.0;
  dram_factor_ = 1.0;
  flash_p_ = 0.0;
  stalled_ = false;
  active_count_ = 0;
  const auto& events = plan_.events();
  for (size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    // Announce each event once, as it first becomes visible to the clock.
    if (telemetry_ != nullptr && !announced_[i] && now_s_ >= e.start_s) {
      announced_[i] = true;
      telemetry_->GetCounter("fault.events").Increment();
      telemetry_->GetCounter(std::string("fault.") + FaultTypeName(e.type)).Increment();
      const double dur_ms = std::isfinite(e.duration_s) ? SecToMs(e.duration_s) : 0.0;
      telemetry_->trace().Span(track_, FaultTypeName(e.type), SecToMs(e.start_s), dur_ms,
                               {{"severity", e.severity}});
      telemetry_->events().Record(
          telemetry::Event(telemetry::EventKind::kFaultWindowOpen, SecToMs(e.start_s))
              .WithWindow(static_cast<int32_t>(i))
              .WithReason(static_cast<int32_t>(e.type))
              .WithA(e.severity)
              .WithB(dur_ms));
    }
    // Retire each finite window once the clock passes its end.
    if (telemetry_ != nullptr && announced_[i] && !closed_[i] && std::isfinite(e.duration_s) &&
        now_s_ >= e.end_s()) {
      closed_[i] = true;
      telemetry_->events().Record(
          telemetry::Event(telemetry::EventKind::kFaultWindowClose, SecToMs(e.end_s()))
              .WithWindow(static_cast<int32_t>(i))
              .WithReason(static_cast<int32_t>(e.type))
              .WithA(e.severity));
    }
    if (!e.ActiveAt(now_s_)) {
      continue;
    }
    ++active_count_;
    switch (e.type) {
      case FaultType::kLaneDowntrain:
        lanes_ = std::min(lanes_, std::clamp(static_cast<int>(e.severity), 1, 16));
        break;
      case FaultType::kCrcRetryStorm:
        extra_maintenance_ += e.severity;
        break;
      case FaultType::kPoisonedCacheline:
        poison_p_ = std::max(poison_p_, e.severity);
        break;
      case FaultType::kDramThrottle:
        dram_factor_ = std::min(dram_factor_, std::max(0.01, e.severity));
        break;
      case FaultType::kDaemonStall:
        stalled_ = true;
        break;
      case FaultType::kFlashIoError:
        flash_p_ = std::max(flash_p_, e.severity);
        break;
    }
  }
  link_degraded_ = lanes_ < 16 || extra_maintenance_ > 0.0;
  cxl_bw_factor_ = link_degraded_
                       ? DegradedLinkBandwidthFactor(mem::AsicLinkConfig(), lanes_,
                                                     extra_maintenance_)
                       : 1.0;
  if (telemetry_ != nullptr) {
    telemetry_->timeline().Sample("fault.cxl_bw_factor", SecToMs(now_s_), cxl_bw_factor_);
  }
}

bool FaultInjector::SamplePoisonedRead() {
  if (poison_p_ <= 0.0) {
    return false;
  }
  const bool hit = rng_.NextBool(poison_p_);
  if (hit && telemetry_ != nullptr) {
    telemetry_->GetCounter("fault.poisoned_reads").Increment();
  }
  return hit;
}

bool FaultInjector::SampleFlashError() {
  if (flash_p_ <= 0.0) {
    return false;
  }
  const bool hit = rng_.NextBool(flash_p_);
  if (hit && telemetry_ != nullptr) {
    telemetry_->GetCounter("fault.flash_errors").Increment();
  }
  return hit;
}

bool FaultInjector::SampleShuffleFailure(double probability) {
  if (!link_degraded_ || probability <= 0.0) {
    return false;
  }
  return rng_.NextBool(probability);
}

int32_t FaultInjector::ActiveWindowOf(FaultType type) const {
  int32_t best = telemetry::kNoWindow;
  const auto& events = plan_.events();
  for (size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    if (e.type != type || !e.ActiveAt(now_s_)) {
      continue;
    }
    if (best == telemetry::kNoWindow || e.start_s < events[best].start_s) {
      best = static_cast<int32_t>(i);
    }
  }
  return best;
}

int32_t FaultInjector::ActiveLinkWindow() const {
  int32_t best = telemetry::kNoWindow;
  const auto& events = plan_.events();
  for (size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    const bool link_fault =
        e.type == FaultType::kLaneDowntrain || e.type == FaultType::kCrcRetryStorm;
    if (!link_fault || !e.ActiveAt(now_s_)) {
      continue;
    }
    if (best == telemetry::kNoWindow || e.start_s < events[best].start_s) {
      best = static_cast<int32_t>(i);
    }
  }
  return best;
}

int32_t FaultInjector::AttributedWindow() const { return AttributeWindowAt(plan_, now_s_); }

int32_t AttributeWindowAt(const FaultPlan& plan, double t_s) {
  int32_t active = telemetry::kNoWindow;
  int32_t recent = telemetry::kNoWindow;
  const auto& events = plan.events();
  for (size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    if (e.start_s > t_s) {
      continue;
    }
    if (e.ActiveAt(t_s)) {
      if (active == telemetry::kNoWindow || e.start_s < events[active].start_s) {
        active = static_cast<int32_t>(i);
      }
    } else if (recent == telemetry::kNoWindow || e.start_s > events[recent].start_s) {
      recent = static_cast<int32_t>(i);
    }
  }
  return active != telemetry::kNoWindow ? active : recent;
}

}  // namespace cxl::fault
