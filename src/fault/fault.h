// Deterministic fault injection for the CXL memory-expansion simulator.
//
// A production A1000 deployment must survive link down-training, CRC retry
// storms, poisoned cachelines, throttled DRAM channels, wedged tiering
// daemons, and flash-tier IO errors. This module turns each of those into a
// timed, seeded FaultEvent so every layer of the stack can exercise its
// graceful-degradation path reproducibly: the same FaultPlan and seed yield
// the same degraded run, serial or under any --jobs fan-out.
//
// Layering: fault sits directly above mem (it derives degraded link
// bandwidth from the same §3.4 flit accounting that produces the healthy
// 73.6% efficiency) and below os/apps, which query a FaultInjector for the
// current degradation state and draw per-op samples from its private RNG.
// When the plan is empty the injector is inert: no draws, no state, no
// telemetry — callers stay byte-identical to a build without fault support.
#ifndef CXL_EXPLORER_SRC_FAULT_FAULT_H_
#define CXL_EXPLORER_SRC_FAULT_FAULT_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "src/mem/cxl_link.h"
#include "src/telemetry/metrics.h"
#include "src/util/knobs.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace cxl::fault {

// The fault taxonomy. `severity` in FaultEvent is interpreted per type.
enum class FaultType {
  kLaneDowntrain,      // severity = surviving lanes (16 -> 8 -> 4).
  kCrcRetryStorm,      // severity = extra link maintenance_fraction.
  kPoisonedCacheline,  // severity = per-read poison probability.
  kDramThrottle,       // severity = fraction of DRAM bandwidth retained.
  kDaemonStall,        // severity unused; tiering daemon misses its ticks.
  kFlashIoError,       // severity = per-SSD-read timeout/error probability.
};

// Short stable name used by the --faults spec grammar and telemetry.
const char* FaultTypeName(FaultType type);

// One timed fault: active over [start_s, start_s + duration_s) of simulated
// time. The default duration is "until the end of the run".
struct FaultEvent {
  FaultType type = FaultType::kLaneDowntrain;
  double start_s = 0.0;
  double duration_s = std::numeric_limits<double>::infinity();
  double severity = 0.0;

  double end_s() const { return start_s + duration_s; }
  bool ActiveAt(double t_s) const { return t_s >= start_s && t_s < end_s(); }
};

// An ordered collection of FaultEvents with builder-style helpers and a
// textual spec grammar (see docs/faults.md):
//
//   spec    := event (',' event)*
//   event   := type ['@' start_s] ['+' duration_s] ['=' severity] | 'storm'
//   type    := downtrain | crc | poison | throttle | stall | flash
//
// e.g. "downtrain@2+3=8,poison=1e-4" down-trains to x8 from t=2s for 3s and
// poisons reads with probability 1e-4 for the whole run. The named preset
// "storm" expands to a canonical multi-fault plan (Storm()).
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& Downtrain(double start_s, double duration_s, int lanes);
  FaultPlan& CrcStorm(double start_s, double duration_s, double extra_maintenance);
  FaultPlan& Poison(double start_s, double duration_s, double probability);
  FaultPlan& DramThrottle(double start_s, double duration_s, double bandwidth_factor);
  FaultPlan& DaemonStall(double start_s, double duration_s);
  FaultPlan& FlashErrors(double start_s, double duration_s, double probability);
  FaultPlan& Add(FaultEvent event);

  bool empty() const { return events_.empty(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  // Round-trips through Parse(): "downtrain@2+3=8,poison=0.0001".
  std::string ToString() const;

  // Parses the spec grammar above. Unknown types, malformed numbers, and
  // out-of-range severities are INVALID_ARGUMENT. Empty spec -> empty plan.
  static StatusOr<FaultPlan> Parse(std::string_view spec);

  // The canonical multi-fault storm used by bench_fault_storms and the
  // "storm" spec keyword: down-train to x8 at 1s for 4s, a CRC retry storm
  // at 2s, background poison, a daemon stall at 3s, and flash errors.
  static FaultPlan Storm();

 private:
  std::vector<FaultEvent> events_;
};

// Knob-tunable degradation-response parameters shared by all layers.
// Defaults are conservative production-ish values; DeclareFaultKnobs() makes
// them discoverable through KnobSet::entries().
struct FaultTunables {
  // KV server: reread attempts before a poisoned line is declared lost.
  int poison_read_retries = 2;
  // KV server: a flash IO error costs this many times the normal SSD read
  // before the retry is issued (timeout expiry).
  double flash_timeout_factor = 10.0;
  // KV server load shedding: arm after this many consecutive epochs whose
  // mean latency exceeds shed_latency_factor x the first healthy epoch.
  double shed_latency_factor = 1.6;
  int shed_arm_epochs = 2;
  // Fraction of arrivals rejected while shedding (deterministic 1-in-k).
  double shed_fraction = 0.25;
  // Tiering daemon: exponential backoff cap (ticks) after repeated
  // promotion failures on the degraded path.
  int backoff_max_ticks = 64;
  // LLM serving: shrink the decode batch while CXL bandwidth is below this
  // factor of healthy, until per-token latency is within slo_factor.
  double llm_batch_shrink_threshold = 0.85;
  double llm_latency_slo_factor = 1.5;
  // Spark: shuffle partitions per stage (re-execution granularity) and the
  // per-partition fetch-failure probability while the link is degraded.
  int spark_shuffle_partitions = 200;
  double spark_fetch_failure_probability = 0.02;
};

// Registers every tunable above as "fault.*" knobs with its default and a
// one-line description, so `entries()` documents the fault surface.
void DeclareFaultKnobs(KnobSet& knobs);

// Reads the "fault.*" knobs back into a FaultTunables (declared-or-default).
FaultTunables FaultTunablesFromKnobs(const KnobSet& knobs);

// Replays a FaultPlan against simulated time and answers "how degraded is
// the world right now?" queries. Deterministic: all probabilistic draws come
// from a private RNG seeded at construction, and draws happen only while
// the corresponding fault is active, so a run with an empty plan consumes
// nothing and perturbs nothing.
//
// Single-writer like MetricRegistry: one injector per sweep cell, advanced
// monotonically by that cell's simulation clock.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan, uint64_t seed = 1, FaultTunables tunables = {});

  // Optional sink: fault activations/retirements are recorded as counters
  // and spans on the "faults" track. Must be attached before AdvanceTo.
  void AttachTelemetry(telemetry::MetricRegistry* sink);

  // True when the plan has at least one event. Layers gate every
  // degradation code path on this so an absent/empty injector is a no-op.
  bool enabled() const { return !plan_.empty(); }

  const FaultPlan& plan() const { return plan_; }
  const FaultTunables& tunables() const { return tunables_; }

  // Moves the injector's clock forward (monotonic; backwards moves are
  // clamped) and recomputes the active-fault aggregate.
  void AdvanceTo(double t_s);
  double now_s() const { return now_s_; }

  // --- Aggregate degradation state at now_s() ---------------------------
  // Surviving CXL lanes (16 when healthy; min across active down-trains).
  int active_lanes() const { return lanes_; }
  // Effective CXL bandwidth as a fraction of the healthy link, derived from
  // the §3.4 flit accounting (lane ratio x maintenance inflation).
  double CxlBandwidthFactor() const { return cxl_bw_factor_; }
  // Loaded-latency inflation on the CXL path (~1/bandwidth factor).
  double CxlLatencyFactor() const { return cxl_bw_factor_ > 0.0 ? 1.0 / cxl_bw_factor_ : 1.0; }
  // DRAM channel throttle: fraction of bandwidth retained / its latency cost.
  double DramBandwidthFactor() const { return dram_factor_; }
  double DramLatencyFactor() const { return dram_factor_ > 0.0 ? 1.0 / dram_factor_ : 1.0; }
  // True while a kDaemonStall event covers now_s().
  bool DaemonStalled() const { return stalled_; }
  // True while any link-degrading window (down-train, CRC storm) is active —
  // the signal tiering policies use to back their migration traffic off.
  bool LinkDegraded() const { return link_degraded_; }
  double PoisonProbability() const { return poison_p_; }
  double FlashErrorProbability() const { return flash_p_; }
  // True when any event is active at now_s().
  bool AnyActive() const { return active_count_ > 0; }

  // --- Per-op samples (draw from the private fault RNG) -----------------
  // Each returns false without consuming a draw when the corresponding
  // fault is inactive, preserving determinism across plan variations.
  bool SamplePoisonedRead();
  bool SampleFlashError();
  // Bernoulli draw used by Spark's shuffle fetch; only draws while the CXL
  // link is degraded (down-train or CRC storm active).
  bool SampleShuffleFailure(double probability);

  // --- Causal attribution -----------------------------------------------
  // Fault-window ids are indices into plan().events(); kFaultWindowOpen /
  // kFaultWindowClose events carry the same ids, so degradation responses
  // that record one of these join back to their cause. Each query returns
  // telemetry::kNoWindow when nothing qualifies at now_s().
  //
  // Earliest-starting (ties: lowest index) active window of `type`.
  int32_t ActiveWindowOf(FaultType type) const;
  // Earliest active link-degrading window (down-train or CRC storm).
  int32_t ActiveLinkWindow() const;
  // Attribution for responses with no single fault type: the earliest
  // active window, else the most recently opened one.
  int32_t AttributedWindow() const;

 private:
  void Recompute();

  FaultPlan plan_;
  FaultTunables tunables_;
  Rng rng_;
  telemetry::MetricRegistry* telemetry_ = nullptr;
  telemetry::TraceBuffer::TrackId track_ = 0;

  double now_s_ = 0.0;
  // Aggregate state, refreshed by Recompute().
  int lanes_ = 16;
  double extra_maintenance_ = 0.0;
  double poison_p_ = 0.0;
  double dram_factor_ = 1.0;
  double flash_p_ = 0.0;
  double cxl_bw_factor_ = 1.0;
  bool stalled_ = false;
  bool link_degraded_ = false;
  int active_count_ = 0;
  // Telemetry bookkeeping: which events have had their activation /
  // retirement recorded.
  std::vector<bool> announced_;
  std::vector<bool> closed_;
};

// Post-hoc attribution (same policy as FaultInjector::AttributedWindow but
// as a pure function of the plan): the window responsible at `t_s` —
// earliest active, else most recently opened with start_s <= t_s (ties:
// lowest index), else telemetry::kNoWindow. The SLO engine binds this per
// sweep cell as its telemetry::WindowAttributor.
int32_t AttributeWindowAt(const FaultPlan& plan, double t_s);

// Derived link math shared with mem: bandwidth retained by `base` after
// down-training to `active_lanes` (of 16) with `extra_maintenance` added to
// the flit maintenance fraction, as a fraction of the healthy effective rate.
double DegradedLinkBandwidthFactor(const mem::CxlLinkConfig& base, int active_lanes,
                                   double extra_maintenance);

}  // namespace cxl::fault

#endif  // CXL_EXPLORER_SRC_FAULT_FAULT_H_
