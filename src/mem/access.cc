#include "src/mem/access.h"

#include <cmath>
#include <cstdio>

namespace cxl::mem {

std::string MixLabel(const AccessMix& mix) {
  // Render common ratios exactly; otherwise fall back to a percentage.
  struct Named {
    double rf;
    const char* label;
  };
  static constexpr Named kNamed[] = {
      {1.0, "1:0"},       {0.75, "3:1"}, {2.0 / 3.0, "2:1"}, {0.5, "1:1"},
      {1.0 / 3.0, "1:2"}, {0.25, "1:3"}, {0.0, "0:1"},
  };
  for (const auto& n : kNamed) {
    if (std::fabs(mix.read_fraction - n.rf) < 1e-9) {
      return n.label;
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "R%.0f%%", mix.read_fraction * 100.0);
  return buf;
}

std::string PathLabel(MemoryPath path) {
  switch (path) {
    case MemoryPath::kLocalDram:
      return "MMEM";
    case MemoryPath::kRemoteDram:
      return "MMEM-r";
    case MemoryPath::kLocalCxl:
      return "CXL";
    case MemoryPath::kRemoteCxl:
      return "CXL-r";
    case MemoryPath::kSsd:
      return "SSD";
  }
  return "?";
}

void PrintTo(MemoryPath path, std::ostream* os) { *os << PathLabel(path); }

}  // namespace cxl::mem
