// Access-mix and access-path vocabulary shared by all memory models.
#ifndef CXL_EXPLORER_SRC_MEM_ACCESS_H_
#define CXL_EXPLORER_SRC_MEM_ACCESS_H_

#include <cassert>
#include <ostream>
#include <string>

namespace cxl::mem {

// Read/write composition of a memory access stream, expressed as the
// fraction of accesses that are reads (1.0 = read-only, 0.0 = write-only).
// The paper sweeps R:W ratios {1:0, 3:1, 2:1, 1:1, 1:2, 0:1} (Fig. 3/4).
struct AccessMix {
  double read_fraction = 1.0;
  // Non-temporal (streaming) stores bypass the cache hierarchy and complete
  // asynchronously; the paper attributes the anomalously low 71.77 ns
  // write-only idle latency on the remote path to them (§3.2).
  bool non_temporal_writes = true;

  double write_fraction() const { return 1.0 - read_fraction; }

  static AccessMix ReadOnly() { return AccessMix{1.0, true}; }
  static AccessMix WriteOnly() { return AccessMix{0.0, true}; }
  // R:W = r:w, e.g. Ratio(2, 1) is the 2:1 mix where CXL bandwidth peaks.
  static AccessMix Ratio(int r, int w) {
    assert(r >= 0 && w >= 0 && r + w > 0);
    return AccessMix{static_cast<double>(r) / static_cast<double>(r + w), true};
  }
};

// Formats a mix as "R:W=2:1"-style label (matches the figure legends).
std::string MixLabel(const AccessMix& mix);

// Sequential vs random access pattern. §3.3 finds no significant difference
// between them for these devices (Fig. 4(g)(h)); the model applies a small
// randomness penalty on DRAM row-buffer locality to let benches demonstrate
// exactly that (the penalty is ~2%, i.e. "no significant disparity").
enum class AccessPattern {
  kSequential,
  kRandom,
};

// The five memory "distances" the paper characterizes.
enum class MemoryPath {
  kLocalDram,   // MMEM:   same-socket DDR5 (2 channels per SNC domain).
  kRemoteDram,  // MMEM-r: DDR5 behind one UPI hop.
  kLocalCxl,    // CXL:    same-socket ASIC CXL expander over PCIe Gen5 x16.
  kRemoteCxl,   // CXL-r:  CXL expander behind one UPI hop (RSF-limited).
  kSsd,         // NVMe SSD (spill target for KeyDB-Flash / Spark).
};

// Short label used in tables: "MMEM", "MMEM-r", "CXL", "CXL-r", "SSD".
std::string PathLabel(MemoryPath path);

// gtest value printer so parameterized test names render as path labels.
void PrintTo(MemoryPath path, std::ostream* os);

// CXL memory-expander controller implementation. The paper measures the
// AsteraLabs A1000 ASIC and contrasts it with Intel's FPGA prototype (§3.4):
// the ASIC reaches 73.6% PCIe bandwidth efficiency vs ~60% for the FPGA.
enum class CxlController {
  kAsic,
  kFpga,
};

}  // namespace cxl::mem

#endif  // CXL_EXPLORER_SRC_MEM_ACCESS_H_
