#include "src/mem/bandwidth_solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace cxl::mem {

namespace {

// Relative convergence tolerance for the outer capacity-blend fixed point
// and the water-filling freeze tests. Far below measurement noise.
constexpr double kRelTol = 1e-9;

// Upper bound on outer capacity-blend rounds. The blend moves only when the
// allocation shifts the demand-weighted read fraction at a resource, which
// damps geometrically; single-digit rounds are typical.
constexpr int kMaxRounds = 40;

bool ApproxEqual(double a, double b) {
  return std::fabs(a - b) <= kRelTol * std::max({1.0, std::fabs(a), std::fabs(b)});
}

}  // namespace

std::string SolverModeLabel(SolverMode mode) {
  return mode == SolverMode::kMaxMinFair ? "max-min" : "proportional-legacy";
}

SolverMode BandwidthSolver::DefaultMode() {
  const char* env = std::getenv("CXL_SOLVER_MODE");
  if (env != nullptr && std::strcmp(env, "proportional") == 0) {
    return SolverMode::kProportionalLegacy;
  }
  return SolverMode::kMaxMinFair;
}

BandwidthSolver::ResourceId BandwidthSolver::AddResource(std::string name,
                                                         const PathProfile* capacity_profile) {
  assert(capacity_profile != nullptr);
  resources_.push_back(Resource{std::move(name), capacity_profile});
  return static_cast<ResourceId>(resources_.size()) - 1;
}

BandwidthSolver::FlowId BandwidthSolver::AddFlow(const PathProfile* latency_profile,
                                                 const AccessMix& mix, double offered_gbps,
                                                 std::vector<ResourceId> resources,
                                                 AccessPattern pattern) {
  assert(latency_profile != nullptr);
  assert(offered_gbps >= 0.0);
  for ([[maybe_unused]] ResourceId r : resources) {
    assert(r >= 0 && r < static_cast<ResourceId>(resources_.size()));
  }
  flows_.push_back(Flow{latency_profile, mix, pattern, offered_gbps, std::move(resources)});
  return static_cast<FlowId>(flows_.size()) - 1;
}

void BandwidthSolver::ClearFlows() { flows_.clear(); }

bool BandwidthSolver::CacheStructureMatches() const {
  if (!cache_.valid || cache_.mode != mode_ ||
      cache_.resource_profiles.size() != resources_.size() ||
      cache_.flows.size() != flows_.size()) {
    return false;
  }
  for (size_t r = 0; r < resources_.size(); ++r) {
    if (cache_.resource_profiles[r] != resources_[r].profile) {
      return false;
    }
  }
  for (size_t i = 0; i < flows_.size(); ++i) {
    const Flow& a = flows_[i];
    const Flow& b = cache_.flows[i];
    if (a.profile != b.profile || a.pattern != b.pattern ||
        a.mix.read_fraction != b.mix.read_fraction ||
        a.mix.non_temporal_writes != b.mix.non_temporal_writes || a.resources != b.resources) {
      return false;
    }
  }
  return true;
}

double BandwidthSolver::BlendedCapacity(size_t r, const double* throughput) const {
  double demand = 0.0;
  double read_demand = 0.0;
  bool any_random = false;
  for (size_t i = 0; i < flows_.size(); ++i) {
    const Flow& f = flows_[i];
    if (std::find(f.resources.begin(), f.resources.end(), static_cast<ResourceId>(r)) ==
        f.resources.end()) {
      continue;
    }
    demand += throughput[i];
    read_demand += throughput[i] * f.mix.read_fraction;
    any_random = any_random || f.pattern == AccessPattern::kRandom;
  }
  if (demand <= 0.0) {
    return resources_[r].profile->PeakBandwidthGBps(AccessMix::ReadOnly());
  }
  const AccessMix blended{read_demand / demand, true};
  const AccessPattern pattern = any_random ? AccessPattern::kRandom : AccessPattern::kSequential;
  return resources_[r].profile->PeakBandwidthGBps(blended, pattern);
}

void BandwidthSolver::WaterFill(const double* capacity, double* alloc) const {
  const size_t nf = flows_.size();
  const size_t nr = resources_.size();
  std::fill(alloc, alloc + nf, 0.0);

  double* headroom = scratch_.AllocateArray<double>(nr);
  for (size_t r = 0; r < nr; ++r) {
    headroom[r] = std::max(0.0, capacity[r] * kCapacityShare);
  }

  char* active = scratch_.AllocateArray<char>(nf);
  std::fill(active, active + nf, 1);
  size_t n_active = 0;
  for (size_t i = 0; i < nf; ++i) {
    if (flows_[i].offered_gbps <= 0.0) {
      active[i] = 0;  // Zero-demand flows are frozen at 0 immediately.
    } else {
      ++n_active;
    }
  }

  // Progressive filling: raise every active flow by the largest uniform
  // increment no constraint forbids, then freeze the flows whose constraint
  // bound. Each pass freezes at least one flow, so the loop runs at most
  // `nf` times.
  size_t* active_at = scratch_.AllocateArray<size_t>(nr);
  while (n_active > 0) {
    std::fill(active_at, active_at + nr, 0);
    for (size_t i = 0; i < nf; ++i) {
      if (!active[i]) {
        continue;
      }
      for (ResourceId r : flows_[i].resources) {
        ++active_at[static_cast<size_t>(r)];
      }
    }

    double delta = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < nf; ++i) {
      if (active[i]) {
        delta = std::min(delta, flows_[i].offered_gbps - alloc[i]);
      }
    }
    for (size_t r = 0; r < nr; ++r) {
      if (active_at[r] > 0) {
        delta = std::min(delta, headroom[r] / static_cast<double>(active_at[r]));
      }
    }
    delta = std::max(delta, 0.0);

    for (size_t i = 0; i < nf; ++i) {
      if (active[i]) {
        alloc[i] += delta;
      }
    }
    for (size_t r = 0; r < nr; ++r) {
      headroom[r] -= delta * static_cast<double>(active_at[r]);
    }

    // Freeze flows that met their demand or whose path saturated.
    bool froze = false;
    for (size_t i = 0; i < nf; ++i) {
      if (!active[i]) {
        continue;
      }
      bool freeze = ApproxEqual(alloc[i], flows_[i].offered_gbps);
      for (ResourceId r : flows_[i].resources) {
        const size_t rr = static_cast<size_t>(r);
        freeze = freeze || headroom[rr] <= kRelTol * std::max(1.0, capacity[rr]);
      }
      if (freeze) {
        active[i] = 0;
        --n_active;
        froze = true;
      }
    }
    if (!froze) {
      // Numerical backstop: the minimum constraint should always freeze a
      // flow; if rounding prevented it, stop rather than spin.
      break;
    }
  }
}

BandwidthSolver::Solution BandwidthSolver::Solve() const {
  ++solve_calls_;
  // Warm-start fast path: identical structure + offered loads within the
  // reuse threshold (exactly equal at the default 0.0) reuse the cached
  // Solution. The exact-reuse case is bit-identical by construction: the
  // cached Solution *is* the cold solve of these inputs.
  if (CacheStructureMatches()) {
    bool within = true;
    for (size_t i = 0; i < flows_.size() && within; ++i) {
      const double a = flows_[i].offered_gbps;
      const double b = cache_.flows[i].offered_gbps;
      within = std::fabs(a - b) <= reuse_threshold_ * std::max(1.0, std::fabs(b));
    }
    if (within) {
      ++cache_hits_;
      return cache_.solution;
    }
  }
  Solution sol = mode_ == SolverMode::kMaxMinFair ? SolveMaxMin() : SolveProportionalLegacy();
  cache_.valid = true;
  cache_.mode = mode_;
  cache_.resource_profiles.resize(resources_.size());
  for (size_t r = 0; r < resources_.size(); ++r) {
    cache_.resource_profiles[r] = resources_[r].profile;
  }
  cache_.flows = flows_;
  cache_.solution = sol;
  return sol;
}

BandwidthSolver::Solution BandwidthSolver::SolveMaxMin() const {
  Solution sol;
  sol.mode = SolverMode::kMaxMinFair;

  const size_t nf = flows_.size();
  const size_t nr = resources_.size();

  scratch_.Reset();
  // The blend basis weights each flow's read fraction by its rate. Offered
  // loads seed the basis; each round re-blends at the previous allocation.
  double* basis = scratch_.AllocateArray<double>(nf);
  for (size_t i = 0; i < nf; ++i) {
    basis[i] = flows_[i].offered_gbps;
  }

  double* capacity = scratch_.AllocateArray<double>(nr);
  std::fill(capacity, capacity + nr, 0.0);
  double* alloc = scratch_.AllocateArray<double>(nf);
  std::fill(alloc, alloc + nf, 0.0);
  for (int round = 0; round < kMaxRounds; ++round) {
    ++sol.iterations;
    for (size_t r = 0; r < nr; ++r) {
      capacity[r] = BlendedCapacity(r, basis);
    }
    WaterFill(capacity, alloc);
    bool converged = true;
    for (size_t i = 0; i < nf; ++i) {
      converged = converged && ApproxEqual(alloc[i], basis[i]);
    }
    std::copy(alloc, alloc + nf, basis);
    if (converged) {
      break;
    }
  }

  FinishSolution(alloc, capacity, &sol);
  return sol;
}

BandwidthSolver::Solution BandwidthSolver::SolveProportionalLegacy() const {
  Solution sol;
  sol.mode = SolverMode::kProportionalLegacy;

  scratch_.Reset();
  double* throughput = scratch_.AllocateArray<double>(flows_.size());
  for (size_t i = 0; i < flows_.size(); ++i) {
    throughput[i] = flows_[i].offered_gbps;
  }

  double* capacity = scratch_.AllocateArray<double>(resources_.size());
  std::fill(capacity, capacity + resources_.size(), 0.0);
  // Fixed-point: scale down flows at over-subscribed resources. 40 rounds of
  // proportional scaling converge far below measurement noise for the flow
  // counts we use (<< 1e-6 relative change).
  for (int round = 0; round < kMaxRounds; ++round) {
    ++sol.iterations;
    bool changed = false;
    for (size_t r = 0; r < resources_.size(); ++r) {
      double demand = 0.0;
      for (size_t i = 0; i < flows_.size(); ++i) {
        const Flow& f = flows_[i];
        if (std::find(f.resources.begin(), f.resources.end(), static_cast<ResourceId>(r)) !=
            f.resources.end()) {
          demand += throughput[i];
        }
      }
      capacity[r] = BlendedCapacity(r, throughput);
      const double limit = capacity[r] * kCapacityShare;
      if (demand > limit) {
        const double scale = limit / demand;
        for (size_t i = 0; i < flows_.size(); ++i) {
          const Flow& f = flows_[i];
          if (std::find(f.resources.begin(), f.resources.end(), static_cast<ResourceId>(r)) !=
              f.resources.end()) {
            throughput[i] *= scale;
            changed = true;
          }
        }
      }
    }
    // The pre-rewrite exit required `round > 0` as well, wasting a full
    // no-op round on workloads with no over-subscribed resource.
    if (!changed) {
      break;
    }
  }

  FinishSolution(throughput, capacity, &sol);
  return sol;
}

void BandwidthSolver::FinishSolution(const double* throughput, const double* capacity,
                                     Solution* sol) const {
  sol->flows.resize(flows_.size());
  sol->resources.resize(resources_.size());

  for (size_t r = 0; r < resources_.size(); ++r) {
    ResourceResult& rr = sol->resources[r];
    rr.name = resources_[r].name;
    rr.capacity_gbps = capacity[r];
    for (size_t i = 0; i < flows_.size(); ++i) {
      const Flow& f = flows_[i];
      if (std::find(f.resources.begin(), f.resources.end(), static_cast<ResourceId>(r)) !=
          f.resources.end()) {
        rr.demand_gbps += f.offered_gbps;
        rr.achieved_gbps += throughput[i];
      }
    }
    rr.utilization = rr.capacity_gbps > 0.0 ? rr.achieved_gbps / rr.capacity_gbps : 0.0;
  }

  // Flow results: latency from the most-congested resource on the path.
  for (size_t i = 0; i < flows_.size(); ++i) {
    const Flow& f = flows_[i];
    FlowResult& fr = sol->flows[i];
    fr.achieved_gbps = throughput[i];
    double u = 0.0;
    for (ResourceId r : f.resources) {
      u = std::max(u, sol->resources[static_cast<size_t>(r)].utilization);
    }
    fr.bottleneck_utilization = u;
    fr.latency_ns = f.profile->MakeQueueModel(f.mix, f.pattern).LatencyAt(u);
  }
}

SingleFlowPoint SolveSingleFlow(const PathProfile& profile, const AccessMix& mix,
                                double offered_gbps, AccessPattern pattern) {
  SingleFlowPoint pt;
  pt.achieved_gbps = profile.AchievedBandwidthGBps(mix, offered_gbps, pattern);
  const double peak = profile.PeakBandwidthGBps(mix, pattern);
  pt.utilization = peak > 0.0 ? std::min(offered_gbps / peak, 1.0) : 0.0;
  pt.latency_ns = profile.LoadedLatencyNs(mix, offered_gbps, pattern);
  return pt;
}

}  // namespace cxl::mem
