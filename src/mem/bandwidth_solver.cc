#include "src/mem/bandwidth_solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cxl::mem {

BandwidthSolver::ResourceId BandwidthSolver::AddResource(std::string name,
                                                         const PathProfile* capacity_profile) {
  assert(capacity_profile != nullptr);
  resources_.push_back(Resource{std::move(name), capacity_profile});
  return static_cast<ResourceId>(resources_.size()) - 1;
}

BandwidthSolver::FlowId BandwidthSolver::AddFlow(const PathProfile* latency_profile,
                                                 const AccessMix& mix, double offered_gbps,
                                                 std::vector<ResourceId> resources,
                                                 AccessPattern pattern) {
  assert(latency_profile != nullptr);
  assert(offered_gbps >= 0.0);
  for (ResourceId r : resources) {
    assert(r >= 0 && r < static_cast<ResourceId>(resources_.size()));
  }
  flows_.push_back(Flow{latency_profile, mix, pattern, offered_gbps, std::move(resources)});
  return static_cast<FlowId>(flows_.size()) - 1;
}

void BandwidthSolver::ClearFlows() { flows_.clear(); }

BandwidthSolver::Solution BandwidthSolver::Solve() const {
  Solution sol;
  sol.flows.resize(flows_.size());
  sol.resources.resize(resources_.size());

  std::vector<double> throughput(flows_.size());
  for (size_t i = 0; i < flows_.size(); ++i) {
    throughput[i] = flows_[i].offered_gbps;
  }

  std::vector<double> capacity(resources_.size(), 0.0);
  // Fixed-point: scale down flows at over-subscribed resources. 40 rounds of
  // proportional scaling converge far below measurement noise for the flow
  // counts we use (<< 1e-6 relative change).
  for (int round = 0; round < 40; ++round) {
    bool changed = false;
    for (size_t r = 0; r < resources_.size(); ++r) {
      double demand = 0.0;
      double read_demand = 0.0;
      bool any_random = false;
      for (size_t i = 0; i < flows_.size(); ++i) {
        const Flow& f = flows_[i];
        if (std::find(f.resources.begin(), f.resources.end(), static_cast<ResourceId>(r)) ==
            f.resources.end()) {
          continue;
        }
        demand += throughput[i];
        read_demand += throughput[i] * f.mix.read_fraction;
        any_random = any_random || f.pattern == AccessPattern::kRandom;
      }
      if (demand <= 0.0) {
        capacity[r] = resources_[r].profile->PeakBandwidthGBps(AccessMix::ReadOnly());
        continue;
      }
      const AccessMix blended{read_demand / demand, true};
      const AccessPattern pattern =
          any_random ? AccessPattern::kRandom : AccessPattern::kSequential;
      capacity[r] = resources_[r].profile->PeakBandwidthGBps(blended, pattern);
      const double limit = capacity[r] * kCapacityShare;
      if (demand > limit) {
        const double scale = limit / demand;
        for (size_t i = 0; i < flows_.size(); ++i) {
          const Flow& f = flows_[i];
          if (std::find(f.resources.begin(), f.resources.end(), static_cast<ResourceId>(r)) !=
              f.resources.end()) {
            throughput[i] *= scale;
            changed = true;
          }
        }
      }
    }
    if (!changed && round > 0) {
      break;
    }
  }

  // Resource results.
  for (size_t r = 0; r < resources_.size(); ++r) {
    ResourceResult& rr = sol.resources[r];
    rr.name = resources_[r].name;
    rr.capacity_gbps = capacity[r];
    for (size_t i = 0; i < flows_.size(); ++i) {
      const Flow& f = flows_[i];
      if (std::find(f.resources.begin(), f.resources.end(), static_cast<ResourceId>(r)) !=
          f.resources.end()) {
        rr.demand_gbps += f.offered_gbps;
        rr.achieved_gbps += throughput[i];
      }
    }
    rr.utilization = rr.capacity_gbps > 0.0 ? rr.achieved_gbps / rr.capacity_gbps : 0.0;
  }

  // Flow results: latency from the most-congested resource on the path.
  for (size_t i = 0; i < flows_.size(); ++i) {
    const Flow& f = flows_[i];
    FlowResult& fr = sol.flows[i];
    fr.achieved_gbps = throughput[i];
    double u = 0.0;
    for (ResourceId r : f.resources) {
      u = std::max(u, sol.resources[static_cast<size_t>(r)].utilization);
    }
    fr.bottleneck_utilization = u;
    fr.latency_ns = f.profile->MakeQueueModel(f.mix, f.pattern).LatencyAt(u);
  }
  return sol;
}

SingleFlowPoint SolveSingleFlow(const PathProfile& profile, const AccessMix& mix,
                                double offered_gbps, AccessPattern pattern) {
  SingleFlowPoint pt;
  pt.achieved_gbps = profile.AchievedBandwidthGBps(mix, offered_gbps, pattern);
  const double peak = profile.PeakBandwidthGBps(mix, pattern);
  pt.utilization = peak > 0.0 ? std::min(offered_gbps / peak, 1.0) : 0.0;
  pt.latency_ns = profile.LoadedLatencyNs(mix, offered_gbps, pattern);
  return pt;
}

}  // namespace cxl::mem
