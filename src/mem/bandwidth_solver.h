// Multi-flow bandwidth contention solver.
//
// Applications offer concurrent access streams ("flows") to shared memory
// resources (a NUMA node's DDR channels, a CXL expander's PCIe link + ASIC
// controller, a UPI direction, an SSD). The solver computes, at steady
// state, how much bandwidth each flow actually achieves and what loaded
// latency it observes — the mechanism behind every end-to-end result in the
// paper: DDR-channel bandwidth contention (§3.4), interleaving wins for
// LLM inference (§5), and spill-to-SSD collapse (§4).
//
// Model: each flow crosses an ordered set of capacitated resources. Resource
// capacity is mix-dependent (taken from the resource's PathProfile at the
// demand-weighted read fraction). The default allocator is *max-min fair*
// water-filling: every flow's rate rises in lock-step until it either meets
// its offered load or saturates a resource on its path; capacity freed when
// a flow freezes at one resource is redistributed among the flows still
// growing at the others. An outer fixed point re-blends each resource's
// mix-dependent capacity at the resulting allocation. The pre-rewrite
// proportional scaler is kept behind SolverMode::kProportionalLegacy for one
// release so results can be diffed (it is monotone-down: capacity freed at
// one resource is never re-granted at another, which under-allocates
// multi-resource flows and their neighbors).
//
// A flow's loaded latency follows its path's queue model evaluated at the
// utilization of its most-congested resource.
#ifndef CXL_EXPLORER_SRC_MEM_BANDWIDTH_SOLVER_H_
#define CXL_EXPLORER_SRC_MEM_BANDWIDTH_SOLVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/mem/access.h"
#include "src/mem/profiles.h"
#include "src/util/arena.h"

namespace cxl::mem {

// Allocation discipline for contended resources.
enum class SolverMode {
  // Water-filling max-min fairness (the default): no flow below its fair
  // share at its bottleneck, freed capacity redistributed, work-conserving.
  kMaxMinFair,
  // The pre-rewrite iterated proportional scaler, kept for one release to
  // diff against. Known defect: scaling is monotone-down across resources,
  // so multi-resource flows (and flows sharing a resource with them) can end
  // up under-allocated while capacity sits idle.
  kProportionalLegacy,
};

std::string SolverModeLabel(SolverMode mode);

class BandwidthSolver {
 public:
  using ResourceId = int;
  using FlowId = int;

  // Registers a capacitated resource whose capacity law is `capacity_profile`
  // (not owned; must outlive the solver). Returns its id.
  ResourceId AddResource(std::string name, const PathProfile* capacity_profile);

  // Registers a flow offering `offered_gbps` of `mix` across `resources`.
  // `latency_profile` supplies the end-to-end queue model (typically the
  // path profile of the flow's distance class).
  FlowId AddFlow(const PathProfile* latency_profile, const AccessMix& mix, double offered_gbps,
                 std::vector<ResourceId> resources,
                 AccessPattern pattern = AccessPattern::kSequential);

  struct FlowResult {
    double achieved_gbps = 0.0;
    double latency_ns = 0.0;
    // Utilization of the flow's most-congested resource.
    double bottleneck_utilization = 0.0;
  };
  struct ResourceResult {
    std::string name;
    double demand_gbps = 0.0;    // Sum of original offered loads.
    double achieved_gbps = 0.0;  // Sum of delivered loads.
    double capacity_gbps = 0.0;  // Mix-dependent capacity at the solution.
    double utilization = 0.0;    // achieved / capacity.
  };
  struct Solution {
    std::vector<FlowResult> flows;
    std::vector<ResourceResult> resources;
    // Discipline that produced this solution.
    SolverMode mode = SolverMode::kMaxMinFair;
    // Fixed-point rounds until the capacity blend converged. A workload with
    // no over-subscribed resource converges in exactly one round.
    int iterations = 0;
  };

  // Runs the allocation for the configured mode. The solver can be re-solved
  // after adding more flows; ClearFlows() resets flows but keeps resources.
  //
  // Warm-start cache: the solver memoizes its last (inputs, Solution) pair.
  // A re-solve whose inputs match the cached ones — same mode, same
  // resources, flows with identical profiles/mixes/patterns/paths, and
  // offered loads within reuse_threshold() of the cached loads — returns the
  // cached Solution without re-running the fixed point. At the default
  // threshold of 0.0 a hit requires *bitwise-equal* offered loads, so the
  // returned Solution is exactly what a cold solve would produce
  // (bit-identical by construction). Any structural change — a new resource
  // or flow, a different path set, a mode switch — misses the cache and
  // solves cold. Hits/misses are observable via solve_count()/cache_hits().
  Solution Solve() const;

  // Removes all flows (resources are kept so topologies can be reused).
  void ClearFlows();

  // Allocation discipline. Defaults to DefaultMode().
  void set_mode(SolverMode mode) { mode_ = mode; }
  SolverMode mode() const { return mode_; }

  // SolverMode::kMaxMinFair unless the CXL_SOLVER_MODE environment variable
  // is set to "proportional" (the one-release escape hatch for diffing
  // against the legacy allocator).
  static SolverMode DefaultMode();

  // Relative tolerance for reusing the cached solution when only offered
  // loads changed: reuse when |new - cached| <= tol * max(1, |cached|) for
  // every flow. The default 0.0 is the exact-reuse fast path (bit-identical
  // results). A positive threshold trades bounded allocation error for
  // skipped re-solves — opt-in, and never used by the deterministic sweep
  // paths, whose outputs must stay byte-stable.
  void set_reuse_threshold(double tol) { reuse_threshold_ = tol < 0.0 ? 0.0 : tol; }
  double reuse_threshold() const { return reuse_threshold_; }

  // Warm-start evidence: total Solve() calls and how many were served from
  // the cache without re-running the allocation.
  uint64_t solve_count() const { return solve_calls_; }
  uint64_t cache_hits() const { return cache_hits_; }

  size_t flow_count() const { return flows_.size(); }
  size_t resource_count() const { return resources_.size(); }

  // Read-only flow topology, for invariant checkers (src/check) and tests.
  double flow_offered_gbps(FlowId id) const { return flows_[static_cast<size_t>(id)].offered_gbps; }
  const std::vector<ResourceId>& flow_resources(FlowId id) const {
    return flows_[static_cast<size_t>(id)].resources;
  }
  const std::string& resource_name(ResourceId id) const {
    return resources_[static_cast<size_t>(id)].name;
  }

  // Fraction of nominal capacity the solver hands out before queueing makes
  // further load counterproductive. Utilization is computed against the full
  // capacity, so values near the queue-model knee are reachable.
  static constexpr double kCapacityShare = 0.98;

 private:
  struct Resource {
    std::string name;
    const PathProfile* profile;
  };
  struct Flow {
    const PathProfile* profile;
    AccessMix mix;
    AccessPattern pattern;
    double offered_gbps;
    std::vector<ResourceId> resources;
  };

  // Mix-blended capacity of resource `r` when each flow runs at
  // `throughput[i]` (flows at zero weight fall back to the read-only peak).
  double BlendedCapacity(size_t r, const double* throughput) const;

  // Water-filling pass at fixed capacities: progressive filling with demand
  // caps. Writes the per-flow allocation into `alloc` (length flow_count).
  void WaterFill(const double* capacity, double* alloc) const;

  Solution SolveMaxMin() const;
  Solution SolveProportionalLegacy() const;
  // Fills flow latencies / resource aggregates shared by both modes.
  void FinishSolution(const double* throughput, const double* capacity, Solution* sol) const;

  // True when the current mode/resources/flows match the cached inputs in
  // everything except offered loads.
  bool CacheStructureMatches() const;

  std::vector<Resource> resources_;
  std::vector<Flow> flows_;
  SolverMode mode_ = DefaultMode();

  // Working vectors (basis/capacity/alloc, water-filling headroom and active
  // sets) bump-allocate here; Reset() at each cold solve recycles the
  // blocks, so per-epoch re-solves do no heap allocation.
  mutable Arena scratch_;

  // Last solved inputs + solution (see Solve()). Mutable: memoization is
  // invisible to callers of the const Solve().
  struct CacheEntry {
    bool valid = false;
    SolverMode mode = SolverMode::kMaxMinFair;
    std::vector<const PathProfile*> resource_profiles;
    std::vector<Flow> flows;
    Solution solution;
  };
  mutable CacheEntry cache_;
  mutable uint64_t solve_calls_ = 0;
  mutable uint64_t cache_hits_ = 0;
  double reuse_threshold_ = 0.0;
};

// Convenience for the single-flow case (microbenchmarks): offered load on
// one path with no cross-traffic.
struct SingleFlowPoint {
  double achieved_gbps;
  double latency_ns;
  double utilization;
};
SingleFlowPoint SolveSingleFlow(const PathProfile& profile, const AccessMix& mix,
                                double offered_gbps,
                                AccessPattern pattern = AccessPattern::kSequential);

}  // namespace cxl::mem

#endif  // CXL_EXPLORER_SRC_MEM_BANDWIDTH_SOLVER_H_
