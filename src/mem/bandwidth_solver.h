// Multi-flow bandwidth contention solver.
//
// Applications offer concurrent access streams ("flows") to shared memory
// resources (a NUMA node's DDR channels, a CXL expander's PCIe link + ASIC
// controller, a UPI direction, an SSD). The solver computes, at steady
// state, how much bandwidth each flow actually achieves and what loaded
// latency it observes — the mechanism behind every end-to-end result in the
// paper: DDR-channel bandwidth contention (§3.4), interleaving wins for
// LLM inference (§5), and spill-to-SSD collapse (§4).
//
// Model: each flow crosses an ordered set of capacitated resources. Resource
// capacity is mix-dependent (taken from the resource's PathProfile at the
// demand-weighted read fraction). Over-subscribed resources scale their
// flows down proportionally (iterated to a fixed point, which is the
// proportional-fair allocation for this topology class). A flow's loaded
// latency follows its path's queue model evaluated at the utilization of its
// most-congested resource.
#ifndef CXL_EXPLORER_SRC_MEM_BANDWIDTH_SOLVER_H_
#define CXL_EXPLORER_SRC_MEM_BANDWIDTH_SOLVER_H_

#include <string>
#include <vector>

#include "src/mem/access.h"
#include "src/mem/profiles.h"

namespace cxl::mem {

class BandwidthSolver {
 public:
  using ResourceId = int;
  using FlowId = int;

  // Registers a capacitated resource whose capacity law is `capacity_profile`
  // (not owned; must outlive the solver). Returns its id.
  ResourceId AddResource(std::string name, const PathProfile* capacity_profile);

  // Registers a flow offering `offered_gbps` of `mix` across `resources`.
  // `latency_profile` supplies the end-to-end queue model (typically the
  // path profile of the flow's distance class).
  FlowId AddFlow(const PathProfile* latency_profile, const AccessMix& mix, double offered_gbps,
                 std::vector<ResourceId> resources,
                 AccessPattern pattern = AccessPattern::kSequential);

  struct FlowResult {
    double achieved_gbps = 0.0;
    double latency_ns = 0.0;
    // Utilization of the flow's most-congested resource.
    double bottleneck_utilization = 0.0;
  };
  struct ResourceResult {
    std::string name;
    double demand_gbps = 0.0;    // Sum of original offered loads.
    double achieved_gbps = 0.0;  // Sum of delivered loads.
    double capacity_gbps = 0.0;  // Mix-dependent capacity at the solution.
    double utilization = 0.0;    // achieved / capacity.
  };
  struct Solution {
    std::vector<FlowResult> flows;
    std::vector<ResourceResult> resources;
  };

  // Runs the fixed-point computation. The solver can be re-solved after
  // adding more flows; Clear() resets flows but keeps resources.
  Solution Solve() const;

  // Removes all flows (resources are kept so topologies can be reused).
  void ClearFlows();

  size_t flow_count() const { return flows_.size(); }
  size_t resource_count() const { return resources_.size(); }

  // Fraction of nominal capacity the solver hands out before queueing makes
  // further load counterproductive. Utilization is computed against the full
  // capacity, so values near the queue-model knee are reachable.
  static constexpr double kCapacityShare = 0.98;

 private:
  struct Resource {
    std::string name;
    const PathProfile* profile;
  };
  struct Flow {
    const PathProfile* profile;
    AccessMix mix;
    AccessPattern pattern;
    double offered_gbps;
    std::vector<ResourceId> resources;
  };

  std::vector<Resource> resources_;
  std::vector<Flow> flows_;
};

// Convenience for the single-flow case (microbenchmarks): offered load on
// one path with no cross-traffic.
struct SingleFlowPoint {
  double achieved_gbps;
  double latency_ns;
  double utilization;
};
SingleFlowPoint SolveSingleFlow(const PathProfile& profile, const AccessMix& mix,
                                double offered_gbps,
                                AccessPattern pattern = AccessPattern::kSequential);

}  // namespace cxl::mem

#endif  // CXL_EXPLORER_SRC_MEM_BANDWIDTH_SOLVER_H_
