#include "src/mem/cxl_link.h"

namespace cxl::mem {

CxlLinkEfficiency ComputeLinkEfficiency(const CxlLinkConfig& config) {
  CxlLinkEfficiency eff;
  eff.flit_framing = config.flit_payload_bytes / config.flit_bytes;
  eff.slot_overhead = 1.0 - config.header_slot_fraction;
  eff.maintenance = 1.0 - config.maintenance_fraction;
  eff.controller = 1.0 - config.controller_bubble_fraction;
  eff.total = eff.flit_framing * eff.slot_overhead * eff.maintenance * eff.controller;
  eff.effective_gbps = eff.total * config.raw_gbps_per_direction;
  return eff;
}

CxlLinkConfig AsicLinkConfig() {
  CxlLinkConfig cfg;
  // Streaming CXL.mem reads pack mostly all-data flits with roughly one
  // header slot per five (request/NDR bookkeeping): ~19.4% slot overhead.
  // With 64/68 framing and ~3% link maintenance this derives the A1000's
  // measured 73.6% of raw PCIe bandwidth.
  cfg.header_slot_fraction = 0.194;
  cfg.maintenance_fraction = 0.03;
  cfg.controller_bubble_fraction = 0.0;  // Full-rate hardened pipeline.
  return cfg;
}

CxlLinkConfig FpgaLinkConfig() {
  CxlLinkConfig cfg = AsicLinkConfig();
  // The soft controller clocks well below line rate: the link idles
  // between flits while the fabric catches up (~18.5% dead time), dropping
  // total efficiency to the ~60% Intel reported for its prototype.
  cfg.controller_bubble_fraction = 0.185;
  return cfg;
}

CxlLinkConfig DegradeLink(const CxlLinkConfig& base, int active_lanes, double extra_maintenance) {
  CxlLinkConfig degraded = base;
  const int lanes = active_lanes < 1 ? 1 : (active_lanes > 16 ? 16 : active_lanes);
  degraded.raw_gbps_per_direction = base.raw_gbps_per_direction * lanes / 16.0;
  double maintenance = base.maintenance_fraction + (extra_maintenance > 0.0 ? extra_maintenance : 0.0);
  if (maintenance > 0.95) {
    maintenance = 0.95;
  }
  degraded.maintenance_fraction = maintenance;
  return degraded;
}

double WireBytesForReads(const CxlLinkConfig& config, double payload_bytes) {
  // Downstream: data flits at the framing + slot overhead derived above.
  const CxlLinkEfficiency eff = ComputeLinkEfficiency(config);
  const double protocol_efficiency = eff.flit_framing * eff.slot_overhead * eff.maintenance;
  return protocol_efficiency > 0.0 ? payload_bytes / protocol_efficiency : 0.0;
}

}  // namespace cxl::mem
