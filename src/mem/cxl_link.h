// CXL.mem link-layer accounting: where the "73.6% of PCIe bandwidth"
// efficiency (§3.4) actually comes from.
//
// CXL 1.1 runs over the PCIe 5.0 physical layer but replaces the
// transaction layer with fixed 68-byte flits (64 B payload slots + 2 B CRC
// + 2 B protocol ID). A 64 B cache-line read costs a request flit upstream
// and a data flit downstream; slot headers, credits/ACKs, and link
// maintenance consume further slots. This module models that accounting so
// the ASIC's achievable bandwidth emerges from protocol mechanics — and the
// FPGA's lower efficiency from its extra per-flit processing bubbles.
#ifndef CXL_EXPLORER_SRC_MEM_CXL_LINK_H_
#define CXL_EXPLORER_SRC_MEM_CXL_LINK_H_

#include "src/mem/access.h"

namespace cxl::mem {

struct CxlLinkConfig {
  // PCIe Gen5 x16: 32 GT/s x 16 lanes = 64 GB/s raw per direction, already
  // net of 128b/130b encoding at this granularity.
  double raw_gbps_per_direction = 64.0;
  // CXL 68-byte flit: 64 B of slots + 2 B CRC + 2 B protocol ID.
  double flit_bytes = 68.0;
  double flit_payload_bytes = 64.0;
  // Of the four 16 B slots in a flit, the header slot is consumed by
  // request/response metadata on average this fraction of the time (H-slot
  // vs all-data flits; CXL.mem achieves ~3 data slots + 1 header slot
  // steady-state on streaming reads).
  double header_slot_fraction = 0.25;
  // Link-layer maintenance (credit returns, ACK/NAK, retry buffer refresh)
  // as a fraction of flits.
  double maintenance_fraction = 0.03;
  // Controller-side dead time between flits (implementation-dependent:
  // ~0 for a full-rate ASIC pipeline, substantial for a soft FPGA
  // controller clocked far below line rate).
  double controller_bubble_fraction = 0.0;
};

// Link-efficiency breakdown for a read-dominated CXL.mem stream.
struct CxlLinkEfficiency {
  double flit_framing = 0.0;       // payload/flit (64/68).
  double slot_overhead = 0.0;      // 1 - header slot share.
  double maintenance = 0.0;        // 1 - maintenance share.
  double controller = 0.0;         // 1 - controller bubbles.
  double total = 0.0;              // Product of the above.
  double effective_gbps = 0.0;     // total x raw bandwidth.
};

// Computes the efficiency stack for one direction of the link.
CxlLinkEfficiency ComputeLinkEfficiency(const CxlLinkConfig& config);

// Canned configurations whose derived efficiencies reproduce §3.4:
// the A1000-class ASIC lands at ~73.6% and the FPGA prototype at ~60%.
CxlLinkConfig AsicLinkConfig();
CxlLinkConfig FpgaLinkConfig();

// Bytes on the wire for `payload_bytes` of CXL.mem reads (requests upstream
// + data downstream), for traffic accounting.
double WireBytesForReads(const CxlLinkConfig& config, double payload_bytes);

// A degraded copy of `base`: the physical link re-trained down to
// `active_lanes` (of 16) and `extra_maintenance` added to the flit
// maintenance fraction (CRC retry storms replay flits from the retry
// buffer, which shows up exactly as extra maintenance slots). Lanes clamp
// to [1, 16]; the combined maintenance fraction clamps below 0.95 so the
// link never models negative throughput.
CxlLinkConfig DegradeLink(const CxlLinkConfig& base, int active_lanes, double extra_maintenance);

}  // namespace cxl::mem

#endif  // CXL_EXPLORER_SRC_MEM_CXL_LINK_H_
