// Per-access latency sampling for tail-latency simulations.
//
// The queue models give *mean* loaded latency. Request-level simulations
// (KeyDB tail-latency CDFs, Fig. 5(b)(c) and Fig. 8(a)) need per-access
// draws: idle latency is near-deterministic, while the queueing excess is
// approximately exponential (M/M/1 waiting time is exponential conditioned
// on queueing). LatencySampler draws accordingly so the simulated CDFs have
// realistic tails.
#ifndef CXL_EXPLORER_SRC_MEM_LATENCY_SAMPLER_H_
#define CXL_EXPLORER_SRC_MEM_LATENCY_SAMPLER_H_

#include "src/sim/queueing.h"
#include "src/util/rng.h"

namespace cxl::mem {

class LatencySampler {
 public:
  // `model` is the path's latency law; `utilization` the operating point.
  LatencySampler(const sim::QueueModel& model, double utilization)
      : idle_ns_(model.idle_ns()),
        mean_excess_ns_(model.LatencyAt(utilization) - model.idle_ns()) {}

  // Draws one access latency: deterministic idle + exponential queue excess.
  double Sample(Rng& rng) const {
    if (mean_excess_ns_ <= 0.0) {
      return idle_ns_;
    }
    return idle_ns_ + rng.NextExponential(mean_excess_ns_);
  }

  // Mean of the sampled distribution (= the queue model's loaded latency).
  double mean_ns() const { return idle_ns_ + mean_excess_ns_; }
  double idle_ns() const { return idle_ns_; }

 private:
  double idle_ns_;
  double mean_excess_ns_;
};

}  // namespace cxl::mem

#endif  // CXL_EXPLORER_SRC_MEM_LATENCY_SAMPLER_H_
