#include "src/mem/profiles.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cxl::mem {

PiecewiseLinear::PiecewiseLinear(std::vector<Point> points) : points_(std::move(points)) {
  assert(!points_.empty());
  for (size_t i = 1; i < points_.size(); ++i) {
    assert(points_[i].x > points_[i - 1].x && "control points must be increasing in x");
  }
}

double PiecewiseLinear::Eval(double x) const {
  assert(!points_.empty());
  if (x <= points_.front().x) {
    return points_.front().y;
  }
  if (x >= points_.back().x) {
    return points_.back().y;
  }
  for (size_t i = 1; i < points_.size(); ++i) {
    if (x <= points_[i].x) {
      const auto& a = points_[i - 1];
      const auto& b = points_[i];
      const double t = (x - a.x) / (b.x - a.x);
      return a.y + t * (b.y - a.y);
    }
  }
  return points_.back().y;
}

PiecewiseLinear PiecewiseLinear::ScaledY(double y_factor) const {
  std::vector<Point> scaled = points_;
  for (auto& p : scaled) {
    p.y *= y_factor;
  }
  return PiecewiseLinear(std::move(scaled));
}

PathProfile::PathProfile(Params params) : params_(std::move(params)) {}

PathProfile PathProfile::WithBandwidthScale(double factor, std::string new_name) const {
  Params p = params_;
  p.name = std::move(new_name);
  p.peak_gbps_by_read_fraction = p.peak_gbps_by_read_fraction.ScaledY(factor);
  return PathProfile(std::move(p));
}

double PathProfile::IdleLatencyNs(const AccessMix& mix, AccessPattern pattern) const {
  double idle = params_.idle_ns_by_read_fraction.Eval(mix.read_fraction);
  if (pattern == AccessPattern::kRandom) {
    idle *= params_.random_latency_factor;
  }
  return idle;
}

double PathProfile::PeakBandwidthGBps(const AccessMix& mix, AccessPattern pattern) const {
  double peak = params_.peak_gbps_by_read_fraction.Eval(mix.read_fraction);
  if (pattern == AccessPattern::kRandom) {
    peak *= params_.random_bandwidth_factor;
  }
  return peak;
}

double PathProfile::KneeSharpness(const AccessMix& mix) const {
  return params_.knee_sharpness_write +
         (params_.knee_sharpness_read - params_.knee_sharpness_write) * mix.read_fraction;
}

sim::QueueModel PathProfile::MakeQueueModel(const AccessMix& mix, AccessPattern pattern) const {
  return sim::QueueModel(IdleLatencyNs(mix, pattern), params_.queue_scale, KneeSharpness(mix));
}

double PathProfile::LoadedLatencyNs(const AccessMix& mix, double offered_gbps,
                                    AccessPattern pattern) const {
  const double peak = PeakBandwidthGBps(mix, pattern);
  const double u = peak <= 0.0 ? 0.0 : offered_gbps / peak;
  return MakeQueueModel(mix, pattern).LatencyAt(u);
}

double PathProfile::AchievedBandwidthGBps(const AccessMix& mix, double offered_gbps,
                                          AccessPattern pattern) const {
  const double peak = PeakBandwidthGBps(mix, pattern);
  if (offered_gbps <= peak) {
    return offered_gbps;
  }
  // Overload: delivered bandwidth droops below peak for write-heavy streams
  // (queue thrash / turnaround overhead), Fig. 3(b).
  const double overload = offered_gbps / peak - 1.0;
  const double droop =
      params_.overload_droop * mix.write_fraction() * std::min(overload, 1.0);
  return peak * std::max(0.1, 1.0 - droop);
}

namespace {

using P = PiecewiseLinear::Point;

// ---------------------------------------------------------------------------
// Calibration table. Sources (all from the paper):
//  [F3a] Fig. 3(a): MMEM idle 97 ns; read peak 67 GB/s (87% of 76.8
//        theoretical); write-only 54.6 GB/s; knee at 75-83% utilization.
//  [F3b] Fig. 3(b): MMEM-r read idle ~130 ns; write-only (non-temporal)
//        71.77 ns; write-heavy mixes lose bandwidth to UPI coherence
//        traffic; write-only is lowest (single UPI direction); knee earlier
//        than local; bandwidth can *decrease* under overload.
//  [F3c] Fig. 3(c): CXL idle 250.42 ns; max 56.7 GB/s at 2:1 mix; read-only
//        peak lower (PCIe bi-directionality); latency relatively stable
//        until very high load.
//  [F3d] Fig. 3(d): CXL-r idle 485 ns; max 20.4 GB/s at 2:1 (Remote Snoop
//        Filter limitation) -- roughly 0.36x of the local-CXL curve.
//  [S33] §3.3: CXL local latency is 2.4-2.6x local DDR and 1.5-1.92x remote
//        DDR; random vs sequential shows no significant disparity.
//  [S34] §3.4: ASIC reaches 73.6% of PCIe bandwidth (0.736*64 = 47.1 GB/s
//        read-only); FPGA reaches only 60% (38.4 GB/s) with a less
//        efficient memory controller.
//  SSD:  NVMe-class device (1.92 TB data-center SSD, §2.4): ~80 us read
//        latency, ~3 GB/s read / ~2.4 GB/s write streaming.
// ---------------------------------------------------------------------------

PathProfile MakeLocalDram() {
  PathProfile::Params p;
  p.name = "MMEM";
  p.idle_ns_by_read_fraction = PiecewiseLinear({{0.0, 92.0}, {1.0, 97.0}});  // [F3a]
  p.peak_gbps_by_read_fraction = PiecewiseLinear({
      {0.0, 54.6},  // write-only [F3a]
      {0.25, 58.0},
      {0.5, 61.5},
      {2.0 / 3.0, 63.5},
      {0.75, 64.5},
      {1.0, 67.0},  // read-only: 87% of theoretical 76.8 [F3a]
  });
  p.queue_scale = 0.25;
  p.knee_sharpness_read = 6.0;   // knee(1.5x) ~ 0.83 [F3a]
  p.knee_sharpness_write = 3.5;  // knee shifts left with writes [S33]
  p.overload_droop = 0.05;
  p.random_bandwidth_factor = 0.97;  // [S33] "no significant disparity"
  p.random_latency_factor = 1.02;
  return PathProfile(std::move(p));
}

PathProfile MakeRemoteDram() {
  PathProfile::Params p;
  p.name = "MMEM-r";
  p.idle_ns_by_read_fraction = PiecewiseLinear({
      {0.0, 71.77},  // non-temporal writes, fire-and-forget [F3b]
      {0.5, 105.0},
      {1.0, 130.0},  // [F3b]
  });
  p.peak_gbps_by_read_fraction = PiecewiseLinear({
      {0.0, 27.0},  // single UPI direction [F3b]
      {0.25, 35.0},
      {0.5, 44.0},
      {2.0 / 3.0, 50.0},
      {0.75, 53.0},
      {1.0, 64.0},  // read-only comparable to local [F3b]
  });
  p.queue_scale = 0.40;          // memory-controller queue contention [F3b]
  p.knee_sharpness_read = 4.0;   // knee earlier than local [F3b]
  p.knee_sharpness_write = 2.0;
  p.overload_droop = 0.30;  // bandwidth decreases under overload [F3b]
  p.random_bandwidth_factor = 0.97;
  p.random_latency_factor = 1.02;
  return PathProfile(std::move(p));
}

PathProfile MakeLocalCxlAsic() {
  PathProfile::Params p;
  p.name = "CXL";
  p.idle_ns_by_read_fraction = PiecewiseLinear({{0.0, 235.0}, {1.0, 250.42}});  // [F3c][S33]
  p.peak_gbps_by_read_fraction = PiecewiseLinear({
      {0.0, 43.0},  // write-only (DRAM-write limited behind the controller)
      {0.25, 50.0},
      {0.5, 54.5},
      {2.0 / 3.0, 56.7},  // global max at 2:1 [F3c]
      {0.75, 55.5},
      {1.0, 47.1},  // read-only: 73.6% of 64 GB/s PCIe [S34]
  });
  p.queue_scale = 0.08;  // latency "relatively stable" under load [F3c]
  p.knee_sharpness_read = 5.0;
  p.knee_sharpness_write = 3.0;
  p.overload_droop = 0.05;
  p.random_bandwidth_factor = 0.99;
  p.random_latency_factor = 1.01;
  return PathProfile(std::move(p));
}

PathProfile MakeLocalCxlFpga() {
  // FPGA controller: same interconnect, lower operating frequency. 60% PCIe
  // efficiency, higher access latency, controller congests earlier. [S34]
  PathProfile::Params p;
  p.name = "CXL-FPGA";
  const double scale = kFpgaPcieEfficiency / kAsicPcieEfficiency;  // ~0.815
  p.idle_ns_by_read_fraction = PiecewiseLinear({{0.0, 380.0}, {1.0, 395.0}});
  p.peak_gbps_by_read_fraction = PiecewiseLinear({
      {0.0, 43.0 * scale},
      {0.25, 50.0 * scale},
      {0.5, 54.5 * scale},
      {2.0 / 3.0, 56.7 * scale},
      {0.75, 55.5 * scale},
      {1.0, kFpgaPcieEfficiency * kPcieGen5x16GBps},  // 38.4 [S34]
  });
  p.queue_scale = 0.30;  // "reduced memory bandwidth during concurrent
                         //  thread execution" [S34 / §2.2]
  p.knee_sharpness_read = 3.0;
  p.knee_sharpness_write = 2.0;
  p.overload_droop = 0.20;
  p.random_bandwidth_factor = 0.99;
  p.random_latency_factor = 1.01;
  return PathProfile(std::move(p));
}

PathProfile MakeRemoteCxl(const PathProfile& local, double idle_ns, double peak_at_2to1) {
  // The remote-CXL path is the local-CXL curve scaled down by the RSF cap
  // (20.4/56.7 ~ 0.36 for the ASIC) with a much higher idle latency. [F3d]
  PathProfile::Params p;
  p.name = "CXL-r";
  const AccessMix two_to_one = AccessMix::Ratio(2, 1);
  const double scale = peak_at_2to1 / local.PeakBandwidthGBps(two_to_one);
  std::vector<P> peaks;
  for (double rf : {0.0, 0.25, 0.5, 2.0 / 3.0, 0.75, 1.0}) {
    peaks.push_back(P{rf, local.PeakBandwidthGBps(AccessMix{rf, true}) * scale});
  }
  p.idle_ns_by_read_fraction = PiecewiseLinear({{0.0, idle_ns - 15.0}, {1.0, idle_ns}});
  p.peak_gbps_by_read_fraction = PiecewiseLinear(std::move(peaks));
  p.queue_scale = 0.35;
  p.knee_sharpness_read = 2.5;
  p.knee_sharpness_write = 2.0;
  p.overload_droop = 0.25;
  p.random_bandwidth_factor = 0.99;
  p.random_latency_factor = 1.01;
  return PathProfile(std::move(p));
}

PathProfile MakeSsd() {
  PathProfile::Params p;
  p.name = "SSD";
  p.idle_ns_by_read_fraction = PiecewiseLinear({
      {0.0, 20'000.0},  // buffered writes
      {1.0, 80'000.0},  // NVMe read
  });
  p.peak_gbps_by_read_fraction = PiecewiseLinear({
      {0.0, 2.4},
      {0.5, 2.8},
      {1.0, 3.2},
  });
  p.queue_scale = 1.2;  // NVMe queues congest well before nominal peak
  p.knee_sharpness_read = 1.8;
  p.knee_sharpness_write = 1.5;
  p.overload_droop = 0.10;
  p.random_bandwidth_factor = 0.85;  // random I/O costs more on flash
  p.random_latency_factor = 1.10;
  return PathProfile(std::move(p));
}

}  // namespace

const PathProfile& GetProfile(MemoryPath path, CxlController controller) {
  static const PathProfile local_dram = MakeLocalDram();
  static const PathProfile remote_dram = MakeRemoteDram();
  static const PathProfile local_cxl_asic = MakeLocalCxlAsic();
  static const PathProfile local_cxl_fpga = MakeLocalCxlFpga();
  static const PathProfile remote_cxl_asic = MakeRemoteCxl(local_cxl_asic, 485.0, 20.4);
  static const PathProfile remote_cxl_fpga = MakeRemoteCxl(local_cxl_fpga, 640.0, 16.6);
  static const PathProfile ssd = MakeSsd();

  switch (path) {
    case MemoryPath::kLocalDram:
      return local_dram;
    case MemoryPath::kRemoteDram:
      return remote_dram;
    case MemoryPath::kLocalCxl:
      return controller == CxlController::kAsic ? local_cxl_asic : local_cxl_fpga;
    case MemoryPath::kRemoteCxl:
      return controller == CxlController::kAsic ? remote_cxl_asic : remote_cxl_fpga;
    case MemoryPath::kSsd:
      return ssd;
  }
  return local_dram;
}

}  // namespace cxl::mem
