// Calibrated performance profiles for every memory path the paper measures.
//
// Each PathProfile answers three questions as a function of the read/write
// mix and access pattern:
//   1. idle latency (ns)                       -> IdleLatencyNs()
//   2. peak achievable bandwidth (GB/s)        -> PeakBandwidthGBps()
//   3. loaded latency at a given offered load  -> LoadedLatencyNs()
//
// Every constant is traced to a measurement in §3 of the paper; see
// profiles.cc for the calibration table with citations.
#ifndef CXL_EXPLORER_SRC_MEM_PROFILES_H_
#define CXL_EXPLORER_SRC_MEM_PROFILES_H_

#include <string>
#include <vector>

#include "src/mem/access.h"
#include "src/sim/queueing.h"

namespace cxl::mem {

// Monotone piecewise-linear interpolation over (x, y) control points with
// clamping outside the covered x-range. Used to express mix-dependent peaks
// and idle latencies from the handful of measured points in the paper.
class PiecewiseLinear {
 public:
  struct Point {
    double x;
    double y;
  };

  PiecewiseLinear() = default;
  // Points must be strictly increasing in x.
  explicit PiecewiseLinear(std::vector<Point> points);

  double Eval(double x) const;
  bool empty() const { return points_.empty(); }

  // Returns a copy with every y multiplied by `y_factor` (used to scale a
  // 2-channel bandwidth curve up to 8 channels when SNC is disabled).
  PiecewiseLinear ScaledY(double y_factor) const;

 private:
  std::vector<Point> points_;
};

// Performance law of one memory path (see file comment).
class PathProfile {
 public:
  struct Params {
    std::string name;
    // Idle latency (ns) as a function of read_fraction.
    PiecewiseLinear idle_ns_by_read_fraction;
    // Peak bandwidth (GB/s) as a function of read_fraction.
    PiecewiseLinear peak_gbps_by_read_fraction;
    // Queueing-term magnitude (see sim::QueueModel).
    double queue_scale = 0.2;
    // Knee sharpness for write-only / read-only streams; mixes interpolate.
    double knee_sharpness_write = 3.0;
    double knee_sharpness_read = 6.0;
    // Fraction of peak bandwidth *lost* per unit of overload (offered/peak-1),
    // scaled by write fraction. Models Fig. 3(b)'s "bandwidth decreases and
    // latency increases with heavier loads" on write-heavy remote streams.
    double overload_droop = 0.0;
    // Multiplier (<= 1) applied to peak bandwidth under random access.
    // §3.3: "no significant performance disparities" -> values near 1.
    double random_bandwidth_factor = 1.0;
    // Additive idle-latency factor under random access (>= 1).
    double random_latency_factor = 1.0;
  };

  explicit PathProfile(Params params);

  // Latency of an unloaded access stream.
  double IdleLatencyNs(const AccessMix& mix,
                       AccessPattern pattern = AccessPattern::kSequential) const;

  // Peak achievable bandwidth for the mix (the plateau of the loaded-latency
  // curve).
  double PeakBandwidthGBps(const AccessMix& mix,
                           AccessPattern pattern = AccessPattern::kSequential) const;

  // Queue model (latency-vs-utilization law) for the mix.
  sim::QueueModel MakeQueueModel(const AccessMix& mix,
                                 AccessPattern pattern = AccessPattern::kSequential) const;

  // Loaded latency when `offered_gbps` of the mix is offered to the path.
  double LoadedLatencyNs(const AccessMix& mix, double offered_gbps,
                         AccessPattern pattern = AccessPattern::kSequential) const;

  // Bandwidth actually delivered for the offered load: min(offered, peak)
  // minus overload droop when offered exceeds peak.
  double AchievedBandwidthGBps(const AccessMix& mix, double offered_gbps,
                               AccessPattern pattern = AccessPattern::kSequential) const;

  // Returns a copy with the peak-bandwidth curve scaled by `factor` (latency
  // laws unchanged). Used for channel-count scaling: the calibrated profiles
  // describe a 2-channel SNC domain; a full SNC-off socket has 8 channels
  // (factor 4), and a whole 2-socket baseline server 16 (factor 8).
  PathProfile WithBandwidthScale(double factor, std::string new_name) const;

  const std::string& name() const { return params_.name; }
  double overload_droop() const { return params_.overload_droop; }

 private:
  double KneeSharpness(const AccessMix& mix) const;

  Params params_;
};

// Returns the calibrated profile for a path. CXL paths select between the
// ASIC (AsteraLabs A1000) and FPGA (Intel prototype) controller profiles.
// References are valid for the program lifetime.
const PathProfile& GetProfile(MemoryPath path, CxlController controller = CxlController::kAsic);

// Theoretical peak bandwidth of one DDR5-4800 channel (38.4 GB/s, §3.1) and
// of the 2-channel SNC-domain configuration used throughout the paper.
inline constexpr double kDdr5ChannelPeakGBps = 38.4;
inline constexpr double kSncDomainPeakGBps = 2 * kDdr5ChannelPeakGBps;  // 76.8

// Raw PCIe Gen5 x16 payload bandwidth per direction (GB/s) used for the
// ASIC-vs-FPGA efficiency comparison (§3.4).
inline constexpr double kPcieGen5x16GBps = 64.0;

// Bandwidth efficiencies reported in §3.4.
inline constexpr double kAsicPcieEfficiency = 0.736;
inline constexpr double kFpgaPcieEfficiency = 0.60;

}  // namespace cxl::mem

#endif  // CXL_EXPLORER_SRC_MEM_PROFILES_H_
