#include "src/os/bandwidth_aware.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "src/mem/profiles.h"

namespace cxl::os {

using mem::PathProfile;

BandwidthAwarePlanner::BandwidthAwarePlanner(const topology::Platform& platform, int cpu_socket,
                                             std::vector<topology::NodeId> dram_nodes)
    : platform_(platform), cpu_socket_(cpu_socket), dram_nodes_(std::move(dram_nodes)) {
  if (dram_nodes_.empty()) {
    dram_nodes_ = platform.DramNodes(cpu_socket);
  }
  assert(!dram_nodes_.empty());
}

double BandwidthAwarePlanner::Score(double mmem_share, const PlacementObjective& objective) const {
  mmem_share = std::clamp(mmem_share, 0.0, 1.0);
  const auto& dram_nodes = dram_nodes_;
  const auto cxl_nodes = platform_.CxlNodes();
  if (cxl_nodes.empty()) {
    mmem_share = 1.0;
  }

  // DRAM pool: traffic spreads over the configured local DRAM node(s).
  const PathProfile& dram = platform_.ProfileFor(cpu_socket_, dram_nodes[0]);
  const double d_m = objective.demand_gbps * mmem_share;
  const double peak_m = dram.PeakBandwidthGBps(objective.mix) * dram_nodes.size();
  const double b_m = std::min(d_m, 0.98 * peak_m);
  const double u_m = peak_m > 0.0 ? std::min(d_m / peak_m, 0.98) : 0.0;
  const double l_m = dram.MakeQueueModel(objective.mix).LatencyAt(u_m);
  const double q_m =
      std::pow(dram.IdleLatencyNs(objective.mix) / l_m, objective.latency_sensitivity);
  double score = b_m * q_m;

  if (mmem_share < 1.0 && !cxl_nodes.empty()) {
    const PathProfile& cxl = platform_.ProfileFor(cpu_socket_, cxl_nodes[0]);
    const double d_c = objective.demand_gbps * (1.0 - mmem_share);
    const double peak_c = cxl.PeakBandwidthGBps(objective.mix) * cxl_nodes.size();
    const double b_c = std::min(d_c, 0.98 * peak_c);
    const double u_c = peak_c > 0.0 ? std::min(d_c / peak_c, 0.98) : 0.0;
    const double l_c = cxl.MakeQueueModel(objective.mix).LatencyAt(u_c);
    const double q_c =
        std::pow(cxl.IdleLatencyNs(objective.mix) / l_c, objective.latency_sensitivity) *
        objective.cxl_intrinsic_efficiency;
    score += b_c * q_c;
  }
  return score;
}

BandwidthAwarePlanner::Plan BandwidthAwarePlanner::Recommend(
    const PlacementObjective& objective) const {
  // Expressible N:M ratios, most-DRAM first (1:0 = MMEM only).
  struct Ratio {
    int top;
    int low;
  };
  static constexpr Ratio kRatios[] = {{1, 0}, {15, 1}, {7, 1}, {4, 1}, {3, 1}, {2, 1}, {3, 2},
                                      {1, 1}, {2, 3},  {1, 2}, {1, 3}, {1, 4}, {1, 7}};

  Plan best;
  best.mmem_only_score = Score(1.0, objective);
  best.score = best.mmem_only_score;
  for (const Ratio& r : kRatios) {
    const double share = static_cast<double>(r.top) / (r.top + r.low);
    const double s = Score(share, objective);
    if (s > best.score + 1e-12) {
      best.score = s;
      best.mmem_share = share;
      best.top_weight = r.top;
      best.low_weight = r.low;
    }
  }
  best.gain = best.mmem_only_score > 0.0 ? best.score / best.mmem_only_score - 1.0 : 0.0;
  return best;
}

NumaPolicy BandwidthAwarePlanner::MakePolicy(const Plan& plan) const {
  if (plan.low_weight == 0 || platform_.CxlNodes().empty()) {
    return NumaPolicy::Bind(dram_nodes_);
  }
  return NumaPolicy::WeightedInterleave(dram_nodes_, platform_.CxlNodes(), plan.top_weight,
                                        plan.low_weight);
}

}  // namespace cxl::os
