// Bandwidth-aware placement planning — the paper's §3.4 recommendation as
// executable policy.
//
// "Allocators and kernel-level page placement policies should consider the
//  available bandwidth in MMEM. Even if a substantial portion of memory
//  bandwidth in MMEM remains unused, e.g., 30%, offloading a portion of the
//  workload, e.g., 20%, to CXL memory can lead to overall performance
//  improvements. Our recommendation is to regard CXL memory as a valuable
//  resource for load balancing, even when local DRAM bandwidth is not fully
//  utilized."
//
// Given an aggregate traffic demand and mix, the planner scores every
// DRAM:CXL split using the calibrated loaded-latency laws (CXL accesses pay
// an intrinsic efficiency factor; queueing degrades both pools) and
// recommends the best split, snapped to a small N:M interleave ratio the
// kernel patch can express.
#ifndef CXL_EXPLORER_SRC_OS_BANDWIDTH_AWARE_H_
#define CXL_EXPLORER_SRC_OS_BANDWIDTH_AWARE_H_

#include <vector>

#include "src/mem/access.h"
#include "src/os/numa_policy.h"
#include "src/topology/platform.h"

namespace cxl::os {

// The workload, as the planner sees it.
struct PlacementObjective {
  // Aggregate memory traffic the application offers (GB/s).
  double demand_gbps = 10.0;
  mem::AccessMix mix = mem::AccessMix::ReadOnly();
  // Relative per-access efficiency of CXL-served traffic at idle
  // (captures the 2.4-2.6x latency gap as seen by a pipelined application;
  // 1.0 = latency-insensitive streaming).
  double cxl_intrinsic_efficiency = 0.87;
  // How strongly queueing latency degrades application progress
  // (0 = pure-bandwidth workload, ~0.5 = typical, 1+ = latency-bound).
  double latency_sensitivity = 0.5;
};

class BandwidthAwarePlanner {
 public:
  // Plans placement for traffic from `cpu_socket` across that socket's
  // DRAM and the platform's (local) CXL nodes. `dram_nodes` restricts the
  // DRAM pool (e.g. to the one SNC domain a workload is pinned to); empty
  // means every DRAM node on the socket.
  explicit BandwidthAwarePlanner(const topology::Platform& platform, int cpu_socket = 0,
                                 std::vector<topology::NodeId> dram_nodes = {});

  struct Plan {
    double mmem_share = 1.0;       // Fraction of traffic/pages kept on DRAM.
    int top_weight = 1;            // Snapped N:M interleave ratio.
    int low_weight = 0;            // low_weight == 0 means "MMEM only".
    double score = 0.0;            // Effective throughput (GB/s equivalent).
    double mmem_only_score = 0.0;  // Score of keeping everything on DRAM.
    double gain = 0.0;             // score / mmem_only_score - 1.
  };

  // Effective-throughput score of placing `mmem_share` of the demand on
  // DRAM and the rest on CXL.
  double Score(double mmem_share, const PlacementObjective& objective) const;

  // Searches shares in [0, 1] and snaps to the best expressible N:M ratio.
  Plan Recommend(const PlacementObjective& objective) const;

  // Materializes a plan as a NumaPolicy over the platform's nodes.
  NumaPolicy MakePolicy(const Plan& plan) const;

 private:
  const topology::Platform& platform_;
  int cpu_socket_;
  std::vector<topology::NodeId> dram_nodes_;
};

}  // namespace cxl::os

#endif  // CXL_EXPLORER_SRC_OS_BANDWIDTH_AWARE_H_
