#include "src/os/numa_policy.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace cxl::os {

NumaPolicy::NumaPolicy(PolicyMode mode, std::vector<topology::NodeId> nodes,
                       std::vector<topology::NodeId> low_nodes, int top_weight, int low_weight)
    : mode_(mode),
      nodes_(std::move(nodes)),
      low_nodes_(std::move(low_nodes)),
      top_weight_(top_weight),
      low_weight_(low_weight) {
  assert(!nodes_.empty());
  if (mode_ == PolicyMode::kWeightedInterleave) {
    assert(!low_nodes_.empty());
    assert(top_weight_ >= 1 && low_weight_ >= 1);
  }
}

NumaPolicy NumaPolicy::Bind(std::vector<topology::NodeId> nodes) {
  return NumaPolicy(PolicyMode::kBind, std::move(nodes), {}, 1, 0);
}

NumaPolicy NumaPolicy::Preferred(std::vector<topology::NodeId> nodes) {
  return NumaPolicy(PolicyMode::kPreferred, std::move(nodes), {}, 1, 0);
}

NumaPolicy NumaPolicy::Interleave(std::vector<topology::NodeId> nodes) {
  return NumaPolicy(PolicyMode::kInterleave, std::move(nodes), {}, 1, 0);
}

NumaPolicy NumaPolicy::WeightedInterleave(std::vector<topology::NodeId> top_nodes,
                                          std::vector<topology::NodeId> low_nodes, int top_weight,
                                          int low_weight) {
  return NumaPolicy(PolicyMode::kWeightedInterleave, std::move(top_nodes), std::move(low_nodes),
                    top_weight, low_weight);
}

topology::NodeId NumaPolicy::NodeForIndex(uint64_t index) const {
  switch (mode_) {
    case PolicyMode::kBind:
    case PolicyMode::kPreferred:
      // Round-robin within the bound set to balance capacity use.
      return nodes_[index % nodes_.size()];
    case PolicyMode::kInterleave:
      return nodes_[index % nodes_.size()];
    case PolicyMode::kWeightedInterleave: {
      // Cycle of length top_weight + low_weight: the first `top_weight`
      // slots go to top-tier nodes, the rest to low-tier nodes. Within each
      // tier, successive cycle iterations round-robin across the tier's
      // nodes (this matches the N:M patch's page-allocation order).
      const uint64_t cycle_len = static_cast<uint64_t>(top_weight_ + low_weight_);
      const uint64_t cycle = index / cycle_len;
      const uint64_t slot = index % cycle_len;
      if (slot < static_cast<uint64_t>(top_weight_)) {
        const uint64_t k = cycle * static_cast<uint64_t>(top_weight_) + slot;
        return nodes_[k % nodes_.size()];
      }
      const uint64_t k =
          cycle * static_cast<uint64_t>(low_weight_) + (slot - static_cast<uint64_t>(top_weight_));
      return low_nodes_[k % low_nodes_.size()];
    }
  }
  return nodes_[0];
}

std::vector<topology::NodeId> NumaPolicy::PeriodPattern() const {
  // A period that provably wraps every mode: the plain modes cycle after
  // nodes_.size(); weighted interleave advances its per-tier round-robin by
  // top_weight/low_weight per cycle, so after nodes_.size()*low_nodes_.size()
  // cycles both tiers are back at their starting offsets. The sets involved
  // are a handful of NUMA nodes, so the table stays tiny.
  uint64_t period = nodes_.size();
  if (mode_ == PolicyMode::kWeightedInterleave) {
    period = static_cast<uint64_t>(top_weight_ + low_weight_) * nodes_.size() * low_nodes_.size();
  }
  std::vector<topology::NodeId> pattern(period);
  for (uint64_t i = 0; i < period; ++i) {
    pattern[i] = NodeForIndex(i);
  }
  return pattern;
}

double NumaPolicy::SteadyStateShare(topology::NodeId node) const {
  auto count_in = [&](const std::vector<topology::NodeId>& v) {
    return static_cast<double>(std::count(v.begin(), v.end(), node));
  };
  switch (mode_) {
    case PolicyMode::kBind:
    case PolicyMode::kPreferred:
    case PolicyMode::kInterleave:
      return count_in(nodes_) / static_cast<double>(nodes_.size());
    case PolicyMode::kWeightedInterleave: {
      const double total = top_weight_ + low_weight_;
      const double top_share = top_weight_ / total;
      const double low_share = low_weight_ / total;
      double share = 0.0;
      if (count_in(nodes_) > 0) {
        share += top_share * count_in(nodes_) / static_cast<double>(nodes_.size());
      }
      if (count_in(low_nodes_) > 0) {
        share += low_share * count_in(low_nodes_) / static_cast<double>(low_nodes_.size());
      }
      return share;
    }
  }
  return 0.0;
}

std::string NumaPolicy::ToString() const {
  std::ostringstream os;
  auto list = [&](const std::vector<topology::NodeId>& v) {
    for (size_t i = 0; i < v.size(); ++i) {
      os << (i ? "," : "") << v[i];
    }
  };
  switch (mode_) {
    case PolicyMode::kBind:
      os << "bind{";
      list(nodes_);
      os << "}";
      break;
    case PolicyMode::kPreferred:
      os << "preferred{";
      list(nodes_);
      os << "}";
      break;
    case PolicyMode::kInterleave:
      os << "interleave{";
      list(nodes_);
      os << "}";
      break;
    case PolicyMode::kWeightedInterleave:
      os << "weighted-interleave{top=";
      list(nodes_);
      os << " low=";
      list(low_nodes_);
      os << " " << top_weight_ << ":" << low_weight_ << "}";
      break;
  }
  return os.str();
}

}  // namespace cxl::os
