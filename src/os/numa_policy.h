// NUMA memory placement policies.
//
// Mirrors the Linux mempolicy surface the paper exercises:
//  - kBind / kPreferred:  numactl --membind / --preferred (§4.3 CXL-only runs)
//  - kInterleave:         classic 1:1 round-robin over a node set
//  - kWeightedInterleave: the "N:M interleave policy for tiered memory
//    nodes" patch (§2.3): N pages to top-tier nodes for every M pages to
//    low-tier nodes, e.g. 3:1 sends 75% of pages to DRAM and 25% to CXL.
#ifndef CXL_EXPLORER_SRC_OS_NUMA_POLICY_H_
#define CXL_EXPLORER_SRC_OS_NUMA_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/topology/platform.h"

namespace cxl::os {

enum class PolicyMode {
  kBind,                // Allocate only from the given nodes (fail when full).
  kPreferred,           // Prefer the given nodes; fall back when full.
  kInterleave,          // Round-robin across the given nodes.
  kWeightedInterleave,  // N pages to top_nodes : M pages to low_nodes.
};

class NumaPolicy {
 public:
  // Binds allocations to `nodes` (no fallback).
  static NumaPolicy Bind(std::vector<topology::NodeId> nodes);
  // Prefers `nodes`, falling back to any node with space.
  static NumaPolicy Preferred(std::vector<topology::NodeId> nodes);
  // 1:1 interleave across `nodes`.
  static NumaPolicy Interleave(std::vector<topology::NodeId> nodes);
  // N:M tiered interleave: `top_weight` pages to `top_nodes` (round-robin
  // within), then `low_weight` pages to `low_nodes`, repeating.
  static NumaPolicy WeightedInterleave(std::vector<topology::NodeId> top_nodes,
                                       std::vector<topology::NodeId> low_nodes, int top_weight,
                                       int low_weight);

  PolicyMode mode() const { return mode_; }
  const std::vector<topology::NodeId>& nodes() const { return nodes_; }
  const std::vector<topology::NodeId>& low_nodes() const { return low_nodes_; }
  int top_weight() const { return top_weight_; }
  int low_weight() const { return low_weight_; }

  // Placement of the `index`-th page allocated under this policy (before
  // availability fallback, which PageAllocator applies).
  topology::NodeId NodeForIndex(uint64_t index) const;

  // The policy's placement sequence is periodic; this returns one full
  // period, built by evaluating NodeForIndex, so walking the pattern with a
  // wrapping cursor reproduces NodeForIndex(i) for every i. PageAllocator
  // hoists this out of its per-page loop: a multi-million-page Allocate then
  // pays one table lookup per page instead of an out-of-line call with two
  // hardware divides.
  std::vector<topology::NodeId> PeriodPattern() const;

  // Fraction of pages this policy steers to `node` in steady state.
  double SteadyStateShare(topology::NodeId node) const;

  // "bind{0}", "weighted-interleave{top=0,1 low=2 3:1}", ... for logs.
  std::string ToString() const;

 private:
  NumaPolicy(PolicyMode mode, std::vector<topology::NodeId> nodes,
             std::vector<topology::NodeId> low_nodes, int top_weight, int low_weight);

  PolicyMode mode_;
  std::vector<topology::NodeId> nodes_;      // Top/primary node set.
  std::vector<topology::NodeId> low_nodes_;  // Low tier (weighted mode only).
  int top_weight_ = 1;
  int low_weight_ = 0;
};

}  // namespace cxl::os

#endif  // CXL_EXPLORER_SRC_OS_NUMA_POLICY_H_
