// Page-granular memory bookkeeping shared by the OS-layer components.
//
// The simulator tracks placement and hotness at a fixed page granularity.
// We default to 2 MiB pages (huge-page granularity): large enough to keep
// bookkeeping cheap for multi-hundred-GiB working sets, small enough that
// page-placement policies behave like their kernel counterparts. Hot-page
// clustering (hot keys residing on a small set of hot pages) is what the
// kernel's hot-page selection exploits; the workloads model that clustering
// explicitly.
#ifndef CXL_EXPLORER_SRC_OS_PAGE_H_
#define CXL_EXPLORER_SRC_OS_PAGE_H_

#include <cstdint>
#include <limits>

#include "src/topology/platform.h"
#include "src/util/units.h"

namespace cxl::os {

using PageId = uint64_t;
inline constexpr PageId kInvalidPage = std::numeric_limits<PageId>::max();

// Default page granularity for placement bookkeeping.
inline constexpr uint64_t kDefaultPageBytes = 2 * kMiB;

// Per-page metadata, as a value type. PageAllocator stores these fields
// structure-of-arrays (packed node/heat/recency columns, so daemon scans
// stream instead of striding); the struct remains the canonical record shape
// for tests and documentation.
struct Page {
  topology::NodeId node = -1;  // Current placement.
  float heat = 0.0f;           // Decayed (sampled) access count.
  // Daemon epoch of the most recent observed access; drives the
  // MRU-balancing promotion mode (§2.3's earlier NUMA-balancing patch).
  uint32_t last_decay_epoch = 0;
};

// Reference views over one page's columns, returned by PageAllocator::page().
// Field names match `Page`, so `allocator.page(id).heat` reads identically
// whether the backing store is AoS or SoA. Bind with `auto`; the views hold
// references into the allocator's columns and must not outlive it.
struct PageView {
  topology::NodeId& node;
  float& heat;
  uint32_t& last_decay_epoch;
};

struct ConstPageView {
  const topology::NodeId& node;
  const float& heat;
  const uint32_t& last_decay_epoch;
};

// vmstat-style counters exposed by the tiering subsystem, named after their
// kernel counterparts so experiment logs read like /proc/vmstat.
struct VmCounters {
  uint64_t pgalloc = 0;             // Pages allocated.
  uint64_t pgfree = 0;              // Pages freed.
  uint64_t pgpromote_success = 0;   // Pages promoted low tier -> top tier.
  uint64_t pgpromote_candidate = 0; // Hot pages considered for promotion.
  uint64_t pgdemote = 0;            // Pages demoted top tier -> low tier.
  uint64_t numa_hint_faults = 0;    // Sampled accesses (hint faults).
  uint64_t migrate_failed = 0;      // Migrations skipped (no space / limit).
  uint64_t promote_rate_limited = 0;// Promotions deferred by the rate limit.

  uint64_t MigratedPages() const { return pgpromote_success + pgdemote; }
};

}  // namespace cxl::os

#endif  // CXL_EXPLORER_SRC_OS_PAGE_H_
