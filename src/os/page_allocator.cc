#include "src/os/page_allocator.h"

#include <algorithm>
#include <cassert>

namespace cxl::os {

PageAllocator::PageAllocator(const topology::Platform& platform, uint64_t page_bytes)
    : platform_(platform), page_bytes_(page_bytes) {
  assert(page_bytes > 0);
  node_used_.resize(platform.nodes().size(), 0);
  node_capacity_.resize(platform.nodes().size(), 0);
  for (const auto& n : platform.nodes()) {
    node_capacity_[static_cast<size_t>(n.id)] = n.capacity_bytes / page_bytes;
  }
}

uint64_t PageAllocator::FreePages(topology::NodeId node) const {
  return node_capacity_[static_cast<size_t>(node)] - node_used_[static_cast<size_t>(node)];
}

uint64_t PageAllocator::TotalPages(topology::NodeId node) const {
  return node_capacity_[static_cast<size_t>(node)];
}

uint64_t PageAllocator::UsedPages(topology::NodeId node) const {
  return node_used_[static_cast<size_t>(node)];
}

double PageAllocator::DramFreeFraction() const {
  uint64_t free = 0;
  uint64_t total = 0;
  for (const auto& n : platform_.nodes()) {
    if (n.kind == topology::NodeKind::kDram) {
      free += FreePages(n.id);
      total += TotalPages(n.id);
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(free) / static_cast<double>(total);
}

topology::NodeId PageAllocator::FallbackNode() const {
  // Prefer the DRAM node with the most free pages; fall back to CXL.
  topology::NodeId best = -1;
  uint64_t best_free = 0;
  for (const auto& n : platform_.nodes()) {
    if (n.kind != topology::NodeKind::kDram) {
      continue;
    }
    const uint64_t f = FreePages(n.id);
    if (f > best_free) {
      best_free = f;
      best = n.id;
    }
  }
  if (best >= 0) {
    return best;
  }
  for (const auto& n : platform_.nodes()) {
    if (n.kind == topology::NodeKind::kCxl && FreePages(n.id) > 0) {
      return n.id;
    }
  }
  return -1;
}

StatusOr<std::vector<PageId>> PageAllocator::Allocate(const NumaPolicy& policy, uint64_t count) {
  std::vector<PageId> out;
  out.reserve(count);
  // Per-call allocation index drives the policy's round-robin; continuing a
  // global index would skew small allocations, and the kernel's interleave
  // counter is per-task anyway.
  for (uint64_t i = 0; i < count; ++i) {
    topology::NodeId target = policy.NodeForIndex(i);
    if (FreePages(target) == 0) {
      if (policy.mode() == PolicyMode::kBind) {
        // Try the other bound nodes before failing.
        target = -1;
        for (topology::NodeId n : policy.nodes()) {
          if (FreePages(n) > 0) {
            target = n;
            break;
          }
        }
        if (target < 0) {
          Free(out);
          return Status::ResourceExhausted("bind policy: bound nodes are full");
        }
      } else {
        target = FallbackNode();
        if (target < 0) {
          Free(out);
          return Status::ResourceExhausted("machine out of memory");
        }
      }
    }
    PageId id;
    if (!free_list_.empty()) {
      id = free_list_.back();
      free_list_.pop_back();
    } else {
      id = pages_.size();
      pages_.emplace_back();
    }
    Page& page = pages_[id];
    page.node = target;
    page.heat = 0.0f;
    ++node_used_[static_cast<size_t>(target)];
    ++allocated_;
    ++counters_.pgalloc;
    out.push_back(id);
  }
  return out;
}

void PageAllocator::Free(const std::vector<PageId>& pages) {
  for (PageId id : pages) {
    Page& page = pages_[id];
    assert(page.node >= 0 && "double free");
    --node_used_[static_cast<size_t>(page.node)];
    page.node = -1;
    free_list_.push_back(id);
    --allocated_;
    ++counters_.pgfree;
  }
}

Status PageAllocator::MovePage(PageId id, topology::NodeId target) {
  Page& page = pages_[id];
  assert(page.node >= 0 && "moving a free page");
  if (page.node == target) {
    return Status::Ok();
  }
  if (FreePages(target) == 0) {
    ++counters_.migrate_failed;
    return Status::ResourceExhausted("target node full");
  }
  --node_used_[static_cast<size_t>(page.node)];
  ++node_used_[static_cast<size_t>(target)];
  page.node = target;
  return Status::Ok();
}

}  // namespace cxl::os
