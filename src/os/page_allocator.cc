#include "src/os/page_allocator.h"

#include <algorithm>
#include <cassert>

namespace cxl::os {

PageAllocator::PageAllocator(const topology::Platform& platform, uint64_t page_bytes)
    : platform_(platform), page_bytes_(page_bytes) {
  assert(page_bytes > 0);
  node_used_.resize(platform.nodes().size(), 0);
  node_capacity_.resize(platform.nodes().size(), 0);
  node_is_dram_.resize(platform.nodes().size(), 0);
  for (const auto& n : platform.nodes()) {
    node_capacity_[static_cast<size_t>(n.id)] = n.capacity_bytes / page_bytes;
    node_is_dram_[static_cast<size_t>(n.id)] = n.kind == topology::NodeKind::kDram ? 1 : 0;
  }
}

uint64_t PageAllocator::FreePages(topology::NodeId node) const {
  return node_capacity_[static_cast<size_t>(node)] - node_used_[static_cast<size_t>(node)];
}

uint64_t PageAllocator::TotalPages(topology::NodeId node) const {
  return node_capacity_[static_cast<size_t>(node)];
}

uint64_t PageAllocator::UsedPages(topology::NodeId node) const {
  return node_used_[static_cast<size_t>(node)];
}

uint64_t PageAllocator::DramResidentCount() const {
  uint64_t total = 0;
  for (size_t n = 0; n < node_used_.size(); ++n) {
    if (node_is_dram_[n] != 0) {
      total += node_used_[n];
    }
  }
  return total;
}

uint64_t PageAllocator::CxlResidentCount() const {
  uint64_t total = 0;
  for (size_t n = 0; n < node_used_.size(); ++n) {
    if (node_is_dram_[n] == 0) {
      total += node_used_[n];
    }
  }
  return total;
}

double PageAllocator::DramFreeFraction() const {
  uint64_t free = 0;
  uint64_t total = 0;
  for (const auto& n : platform_.nodes()) {
    if (n.kind == topology::NodeKind::kDram) {
      free += FreePages(n.id);
      total += TotalPages(n.id);
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(free) / static_cast<double>(total);
}

topology::NodeId PageAllocator::FallbackNode() const {
  // Prefer the DRAM node with the most free pages; fall back to CXL.
  topology::NodeId best = -1;
  uint64_t best_free = 0;
  for (const auto& n : platform_.nodes()) {
    if (n.kind != topology::NodeKind::kDram) {
      continue;
    }
    const uint64_t f = FreePages(n.id);
    if (f > best_free) {
      best_free = f;
      best = n.id;
    }
  }
  if (best >= 0) {
    return best;
  }
  for (const auto& n : platform_.nodes()) {
    if (n.kind == topology::NodeKind::kCxl && FreePages(n.id) > 0) {
      return n.id;
    }
  }
  return -1;
}

StatusOr<std::vector<PageId>> PageAllocator::Allocate(const NumaPolicy& policy, uint64_t count) {
  std::vector<PageId> out;
  out.reserve(count);
  // Fresh slots needed beyond the recycled ids: size the columns once up
  // front instead of growing them page by page.
  if (count > free_list_.size()) {
    const size_t grow = node_.size() + (count - free_list_.size());
    node_.reserve(grow);
    heat_.reserve(grow);
    last_epoch_.reserve(grow);
  }
  // Per-call allocation index drives the policy's round-robin; continuing a
  // global index would skew small allocations, and the kernel's interleave
  // counter is per-task anyway. The policy sequence is one precomputed
  // period walked with a wrapping cursor — NodeForIndex(i) without the
  // per-page call and divides.
  const std::vector<topology::NodeId> pattern = policy.PeriodPattern();
  size_t pattern_i = 0;
  for (uint64_t i = 0; i < count; ++i) {
    topology::NodeId target = pattern[pattern_i];
    if (++pattern_i == pattern.size()) {
      pattern_i = 0;
    }
    if (FreePages(target) == 0) {
      if (policy.mode() == PolicyMode::kBind) {
        // Try the other bound nodes before failing.
        target = -1;
        for (topology::NodeId n : policy.nodes()) {
          if (FreePages(n) > 0) {
            target = n;
            break;
          }
        }
        if (target < 0) {
          counters_.pgalloc += out.size();
          Free(out);
          return Status::ResourceExhausted("bind policy: bound nodes are full");
        }
      } else {
        target = FallbackNode();
        if (target < 0) {
          counters_.pgalloc += out.size();
          Free(out);
          return Status::ResourceExhausted("machine out of memory");
        }
      }
    }
    PageId id;
    if (!free_list_.empty()) {
      id = free_list_.back();
      free_list_.pop_back();
      node_[id] = target;
      heat_[id] = 0.0f;
    } else {
      id = node_.size();
      node_.push_back(target);
      heat_.push_back(0.0f);
      last_epoch_.push_back(0);
    }
    ++node_used_[static_cast<size_t>(target)];
    ++allocated_;
    out.push_back(id);
  }
  counters_.pgalloc += count;
  return out;
}

void PageAllocator::Free(const std::vector<PageId>& pages) {
  free_list_.reserve(free_list_.size() + pages.size());
  for (PageId id : pages) {
    assert(node_[id] >= 0 && "double free");
    --node_used_[static_cast<size_t>(node_[id])];
    node_[id] = -1;
    free_list_.push_back(id);
    --allocated_;
    ++counters_.pgfree;
  }
}

Status PageAllocator::MovePage(PageId id, topology::NodeId target) {
  const topology::NodeId from = node_[id];
  assert(from >= 0 && "moving a free page");
  if (from == target) {
    return Status::Ok();
  }
  if (FreePages(target) == 0) {
    ++counters_.migrate_failed;
    return Status::ResourceExhausted("target node full");
  }
  --node_used_[static_cast<size_t>(from)];
  ++node_used_[static_cast<size_t>(target)];
  node_[id] = target;
  return Status::Ok();
}

}  // namespace cxl::os
