// Page allocator over a Platform's NUMA nodes.
//
// Tracks free capacity per node and places pages according to a NumaPolicy,
// with kernel-zonelist-style fallback: when the policy's target node is
// full, kPreferred / kInterleave / kWeightedInterleave allocations fall back
// to the node with the most free pages (same-socket DRAM first, then remote
// DRAM, then CXL), while kBind allocations fail.
//
// Page metadata is stored structure-of-arrays: the placement, hotness and
// recency columns are separate dense vectors indexed by PageId, so the
// tiering daemon's promotion scan and decay pass stream over packed columns
// instead of striding through per-page structs. Callers keep the record-like
// view through page(), which returns a PageView of references into the
// columns (same field names as the old `Page` struct, so call sites read
// unchanged). Tier-wide scans stream the node column in id order (freed
// slots have node < 0), which the prefetcher handles better than any
// resident-id list; per-tier occupancy is derived from per-node counts.
#ifndef CXL_EXPLORER_SRC_OS_PAGE_ALLOCATOR_H_
#define CXL_EXPLORER_SRC_OS_PAGE_ALLOCATOR_H_

#include <cstdint>
#include <vector>

#include "src/os/numa_policy.h"
#include "src/os/page.h"
#include "src/topology/platform.h"
#include "src/util/status.h"

namespace cxl::os {

class PageAllocator {
 public:
  // `page_bytes` sets the placement granularity (default 2 MiB).
  explicit PageAllocator(const topology::Platform& platform,
                         uint64_t page_bytes = kDefaultPageBytes);

  // Allocates `count` pages under `policy`. Returns the page ids, or
  // RESOURCE_EXHAUSTED if the policy cannot be satisfied (kBind with full
  // nodes, or the whole machine is full).
  StatusOr<std::vector<PageId>> Allocate(const NumaPolicy& policy, uint64_t count);

  // Frees previously allocated pages.
  void Free(const std::vector<PageId>& pages);

  // Moves a page to `target`. Returns RESOURCE_EXHAUSTED when the target
  // node is full (the caller — usually MigrationEngine — decides whether to
  // demote something first).
  Status MovePage(PageId page, topology::NodeId target);

  // Current placement of a page.
  topology::NodeId NodeOf(PageId page) const { return node_[page]; }

  // Mutable / const reference views over one page's metadata columns. Field
  // names match the historical `Page` struct; bind with `auto` (the views
  // are proxies of references, cheap to copy, never stored).
  PageView page(PageId id) { return PageView{node_[id], heat_[id], last_epoch_[id]}; }
  ConstPageView page(PageId id) const {
    return ConstPageView{node_[id], heat_[id], last_epoch_[id]};
  }

  // Raw column access for streaming scans (daemon promotion scan, decay
  // pass). Indexed by PageId over [0, page_count()); freed slots have
  // node < 0.
  const topology::NodeId* node_column() const { return node_.data(); }
  const float* heat_column() const { return heat_.data(); }
  float* mutable_heat_column() { return heat_.data(); }
  const uint32_t* epoch_column() const { return last_epoch_.data(); }

  // Pages currently resident on DRAM / CXL nodes (sums of per-node
  // occupancy). The daemon's tier-wide scans stream the packed columns in id
  // order and use these only to bound selection sizes.
  uint64_t DramResidentCount() const;
  uint64_t CxlResidentCount() const;

  // Whether `node` is a DRAM (top-tier) node, from a cached per-node table.
  bool IsDramNode(topology::NodeId node) const {
    return node_is_dram_[static_cast<size_t>(node)] != 0;
  }

  uint64_t page_bytes() const { return page_bytes_; }
  uint64_t FreePages(topology::NodeId node) const;
  uint64_t TotalPages(topology::NodeId node) const;
  uint64_t UsedPages(topology::NodeId node) const;
  // Free fraction across all DRAM nodes (used by demotion watermarks).
  double DramFreeFraction() const;

  uint64_t allocated_pages() const { return allocated_; }
  // Total page slots ever created (freed slots included); PageIds are dense
  // in [0, page_count()), so daemons scan this range and skip node < 0.
  uint64_t page_count() const { return node_.size(); }
  const VmCounters& counters() const { return counters_; }
  VmCounters& mutable_counters() { return counters_; }

  const topology::Platform& platform() const { return platform_; }

 private:
  // Picks a fallback node with space, preferring DRAM over CXL.
  topology::NodeId FallbackNode() const;

  const topology::Platform& platform_;
  uint64_t page_bytes_;
  // Page metadata columns, indexed by PageId; grow monotonically.
  std::vector<topology::NodeId> node_;
  std::vector<float> heat_;
  std::vector<uint32_t> last_epoch_;
  std::vector<uint8_t> node_is_dram_;
  std::vector<PageId> free_list_;    // Recycled ids.
  std::vector<uint64_t> node_used_;  // Pages in use per node.
  std::vector<uint64_t> node_capacity_;
  uint64_t allocated_ = 0;
  VmCounters counters_;
};

}  // namespace cxl::os

#endif  // CXL_EXPLORER_SRC_OS_PAGE_ALLOCATOR_H_
