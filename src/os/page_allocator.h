// Page allocator over a Platform's NUMA nodes.
//
// Tracks free capacity per node and places pages according to a NumaPolicy,
// with kernel-zonelist-style fallback: when the policy's target node is
// full, kPreferred / kInterleave / kWeightedInterleave allocations fall back
// to the node with the most free pages (same-socket DRAM first, then remote
// DRAM, then CXL), while kBind allocations fail.
#ifndef CXL_EXPLORER_SRC_OS_PAGE_ALLOCATOR_H_
#define CXL_EXPLORER_SRC_OS_PAGE_ALLOCATOR_H_

#include <cstdint>
#include <vector>

#include "src/os/numa_policy.h"
#include "src/os/page.h"
#include "src/topology/platform.h"
#include "src/util/status.h"

namespace cxl::os {

class PageAllocator {
 public:
  // `page_bytes` sets the placement granularity (default 2 MiB).
  explicit PageAllocator(const topology::Platform& platform,
                         uint64_t page_bytes = kDefaultPageBytes);

  // Allocates `count` pages under `policy`. Returns the page ids, or
  // RESOURCE_EXHAUSTED if the policy cannot be satisfied (kBind with full
  // nodes, or the whole machine is full).
  StatusOr<std::vector<PageId>> Allocate(const NumaPolicy& policy, uint64_t count);

  // Frees previously allocated pages.
  void Free(const std::vector<PageId>& pages);

  // Moves a page to `target`. Returns RESOURCE_EXHAUSTED when the target
  // node is full (the caller — usually MigrationEngine — decides whether to
  // demote something first).
  Status MovePage(PageId page, topology::NodeId target);

  // Current placement of a page.
  topology::NodeId NodeOf(PageId page) const { return pages_[page].node; }

  Page& page(PageId id) { return pages_[id]; }
  const Page& page(PageId id) const { return pages_[id]; }

  uint64_t page_bytes() const { return page_bytes_; }
  uint64_t FreePages(topology::NodeId node) const;
  uint64_t TotalPages(topology::NodeId node) const;
  uint64_t UsedPages(topology::NodeId node) const;
  // Free fraction across all DRAM nodes (used by demotion watermarks).
  double DramFreeFraction() const;

  uint64_t allocated_pages() const { return allocated_; }
  // Total page slots ever created (freed slots included); PageIds are dense
  // in [0, page_count()), so daemons scan this range and skip node < 0.
  uint64_t page_count() const { return pages_.size(); }
  const VmCounters& counters() const { return counters_; }
  VmCounters& mutable_counters() { return counters_; }

  const topology::Platform& platform() const { return platform_; }

 private:
  // Picks a fallback node with space, preferring DRAM over CXL.
  topology::NodeId FallbackNode() const;

  const topology::Platform& platform_;
  uint64_t page_bytes_;
  std::vector<Page> pages_;          // Indexed by PageId; grows monotonically.
  std::vector<PageId> free_list_;    // Recycled ids.
  std::vector<uint64_t> node_used_;  // Pages in use per node.
  std::vector<uint64_t> node_capacity_;
  uint64_t allocated_ = 0;
  VmCounters counters_;
};

}  // namespace cxl::os

#endif  // CXL_EXPLORER_SRC_OS_PAGE_ALLOCATOR_H_
