#include "src/os/policy.h"

#include <algorithm>
#include <limits>

#include "src/os/policy_registry.h"
#include "src/os/tiering.h"

namespace cxl::os {

// ---------------------------------------------------------------------------
// HotPageSelectionPolicy

HotPageSelectionPolicy::HotPageSelectionPolicy(const TieringConfig& config)
    : hot_threshold_(config.initial_hot_threshold),
      initial_hot_threshold_(config.initial_hot_threshold),
      dynamic_threshold_(config.dynamic_threshold) {}

const char* HotPageSelectionPolicy::name() const { return kHotPageSelectionPolicyName; }

TickDecision HotPageSelectionPolicy::Decide(const TickContext& ctx) {
  TickDecision decision;
  decision.scan = CandidateScan::kHotnessRanked;
  decision.hot_threshold = hot_threshold_;
  decision.budget_pages = ctx.base_budget_pages;
  return decision;
}

void HotPageSelectionPolicy::Observe(const TickObservation& obs) {
  // Dynamic threshold adjustment: aim the candidate volume at the rate
  // limit (the hot-page-selection patch). Too many candidates -> raise the
  // bar; too few -> lower it (floor at 1 sampled access, bounded below by a
  // quarter of the configured threshold so pages with a single sampled hit
  // do not churn — the kernel's adjustment is similarly bounded).
  if (dynamic_threshold_ && obs.budget_pages > 0) {
    if (obs.candidates > 2 * obs.budget_pages) {
      hot_threshold_ *= 1.3;
    } else if (obs.candidates < obs.budget_pages / 2) {
      hot_threshold_ =
          std::max(std::max(1.0, 0.25 * initial_hot_threshold_), hot_threshold_ * 0.8);
    }
  }
}

// ---------------------------------------------------------------------------
// MruBalancingPolicy

MruBalancingPolicy::MruBalancingPolicy(const TieringConfig& config)
    : hot_threshold_(config.initial_hot_threshold) {}

const char* MruBalancingPolicy::name() const { return kMruBalancingPolicyName; }

TickDecision MruBalancingPolicy::Decide(const TickContext& ctx) {
  TickDecision decision;
  decision.scan = CandidateScan::kRecency;
  decision.hot_threshold = hot_threshold_;
  decision.budget_pages = ctx.base_budget_pages;
  return decision;
}

// ---------------------------------------------------------------------------
// TppLikePolicy

TppLikePolicy::TppLikePolicy(const TieringConfig& config)
    : hot_threshold_(config.initial_hot_threshold) {}

const char* TppLikePolicy::name() const { return kTppLikePolicyName; }

TickDecision TppLikePolicy::Decide(const TickContext&) {
  // TPP predates the rate-limit mechanism: it promotes unboundedly.
  TickDecision decision;
  decision.scan = CandidateScan::kSecondAccess;
  decision.hot_threshold = hot_threshold_;
  decision.budget_pages = std::numeric_limits<uint64_t>::max();
  return decision;
}

// ---------------------------------------------------------------------------
// AdaptiveFeedbackPolicy

AdaptiveFeedbackPolicy::AdaptiveFeedbackPolicy(const TieringConfig& config,
                                               AdaptiveFeedbackConfig feedback)
    : feedback_(feedback),
      hot_threshold_(config.initial_hot_threshold),
      initial_hot_threshold_(config.initial_hot_threshold),
      dynamic_threshold_(config.dynamic_threshold) {}

const char* AdaptiveFeedbackPolicy::name() const { return kAdaptiveFeedbackPolicyName; }

TickDecision AdaptiveFeedbackPolicy::Decide(const TickContext& ctx) {
  if (ctx.link_degraded) {
    // Exponential backoff while the link is degraded: run one probe tick,
    // then sit out 2, 4, 8, ... ticks (capped). The probe keeps a trickle
    // of observations flowing so recovery is immediate once the window
    // closes; the skips keep migration traffic off the down-trained link.
    if (skip_remaining_ > 0) {
      --skip_remaining_;
      TickDecision skip;
      skip.hot_threshold = hot_threshold_;
      skip.skip_tick = true;
      return skip;
    }
    next_skip_run_ = std::min(std::max(1, 2 * next_skip_run_),
                              std::max(1, feedback_.backoff_max_ticks));
    skip_remaining_ = next_skip_run_;
  } else {
    skip_remaining_ = 0;
    next_skip_run_ = 1;
  }

  TickDecision decision;
  decision.scan = CandidateScan::kHotnessRanked;
  decision.hot_threshold = hot_threshold_;
  decision.budget_pages =
      aggressiveness_ >= 1.0
          ? ctx.base_budget_pages
          : std::max<uint64_t>(1, static_cast<uint64_t>(static_cast<double>(ctx.base_budget_pages) *
                                                        aggressiveness_));
  return decision;
}

void AdaptiveFeedbackPolicy::Observe(const TickObservation& obs) {
  // Threshold dynamics identical to hot page selection — on a stable hot
  // set, with no thrash evidence, this policy must be indistinguishable
  // from it.
  if (dynamic_threshold_ && obs.budget_pages > 0) {
    if (obs.candidates > 2 * obs.budget_pages) {
      hot_threshold_ *= 1.3;
    } else if (obs.candidates < obs.budget_pages / 2) {
      hot_threshold_ =
          std::max(std::max(1.0, 0.25 * initial_hot_threshold_), hot_threshold_ * 0.8);
    }
  }

  if (obs.recent_promoted < feedback_.min_signal_pages) {
    return;  // Too few recent promotions to judge; leave the learned state.
  }
  const double ratio = static_cast<double>(obs.recent_promoted_hot) /
                       static_cast<double>(obs.recent_promoted);
  smoothed_reaccess_ =
      smoothed_reaccess_ < 0.0
          ? ratio
          : (1.0 - feedback_.reaccess_alpha) * smoothed_reaccess_ +
                feedback_.reaccess_alpha * ratio;

  // Thrash evidence: promotions stop being accessed (the stream moved on),
  // or the §4.2.3 ping-pong signature — pages demoted soon after promotion.
  const bool wasted = smoothed_reaccess_ < feedback_.reaccess_floor;
  const bool ping_pong =
      obs.promoted_pages > 0 &&
      static_cast<double>(obs.ping_pong_demotions) >
          feedback_.ping_pong_ceiling * static_cast<double>(obs.promoted_pages);
  if (wasted || ping_pong) {
    if (++thrash_streak_ >= feedback_.thrash_arm_ticks) {
      aggressiveness_ =
          std::max(feedback_.min_aggressiveness, aggressiveness_ * feedback_.cut_factor);
    }
  } else {
    thrash_streak_ = 0;
    aggressiveness_ = std::min(1.0, aggressiveness_ * feedback_.recover_factor);
  }
}

}  // namespace cxl::os
