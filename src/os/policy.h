// Pluggable promotion-policy surface for the tiering daemon (§2.3, §8).
//
// The daemon (TieredMemory) owns the *mechanisms* — candidate scans over the
// packed page columns, the migration machinery, demotion cold pools, fault
// gates — while a TieringPolicy owns the *decisions*: which scan to run,
// what hotness threshold and promotion budget apply this tick, and whether
// to sit the tick out. After each tick the daemon feeds the policy a
// TickObservation (candidates, promoted/demoted volumes, rate-limit
// saturation, migration-outcome feedback, active fault state) so stateful
// policies can close the loop the paper's kernel daemon leaves open: the
// hot-page-selection heuristic adapts its threshold toward the rate limit
// but never asks whether the pages it promoted were worth moving — the
// mis-adaptation behind the Spark thrashing regression (§4.2.2).
//
// The three legacy policies reproduce the historical PromotionMode branches
// byte-for-byte; AdaptiveFeedbackPolicy adds the outcome-driven feedback
// loop. Third-party policies implement this interface and register in a
// PolicyRegistry (policy_registry.h).
#ifndef CXL_EXPLORER_SRC_OS_POLICY_H_
#define CXL_EXPLORER_SRC_OS_POLICY_H_

#include <cstdint>

namespace cxl::os {

struct TieringConfig;

// Which candidate-selection mechanism the daemon runs this tick. These are
// the scan loops formerly keyed on PromotionMode; the fused single-pass
// implementations stay inside TieredMemory::Tick (they touch the SoA page
// columns directly), the policy only picks one.
enum class CandidateScan {
  // Heat >= threshold on the low tier, promoted hottest-first (post-v6.1
  // hot page selection).
  kHotnessRanked,
  // Touched since the last scan, promoted in scan order (the earlier MRU
  // NUMA-balancing patch).
  kRecency,
  // Accumulated heat >= 2 sampled hits, i.e. promote on the second observed
  // access (TPP-like active-list promotion).
  kSecondAccess,
};

// What the daemon tells the policy before a tick.
struct TickContext {
  double dt_seconds = 0.0;
  // Pages the configured rate limit allows this tick (the daemon computes
  // this from kernel.numa_balancing_promote_rate_limit_MBps exactly as the
  // legacy code did; policies scale or ignore it).
  uint64_t base_budget_pages = 0;
  double dram_free_fraction = 1.0;
  // Fault visibility (false/1.0 without an enabled injector): whether a
  // link-degrading window (down-train, CRC storm) is currently active, and
  // the resulting CXL latency inflation.
  bool link_degraded = false;
  double cxl_latency_factor = 1.0;
};

// What the policy tells the daemon to do this tick.
struct TickDecision {
  CandidateScan scan = CandidateScan::kHotnessRanked;
  // Hotness threshold for kHotnessRanked (ignored by the other scans).
  // Compared as a double against the float heat column, as the legacy
  // threshold was — narrowing would flip borderline candidates.
  double hot_threshold = 0.0;
  // Promotion budget in pages. uint64 max = unbounded (TPP).
  uint64_t budget_pages = 0;
  // Sit this tick out entirely (no scan, no decay) — the policy's own
  // backoff, distinct from the daemon's promotion-failure backoff. The
  // daemon emits a daemon_skipped_tick event with reason "policy".
  bool skip_tick = false;
};

// What the daemon reports back after a tick. All counts refer to the tick
// just executed; the migration-outcome fields close the feedback loop.
struct TickObservation {
  double dt_seconds = 0.0;
  uint64_t candidates = 0;
  uint64_t promoted_pages = 0;
  uint64_t demoted_pages = 0;
  // The budget the decision granted (after any policy scaling).
  uint64_t budget_pages = 0;
  double migrated_bytes = 0.0;
  // promoted / budget for bounded budgets (>= 1.0 means promotion-rate
  // bound — the §4.2.2 thrashing precondition).
  double rate_limit_saturation = 0.0;
  bool promotion_failed = false;
  double dram_free_fraction = 0.0;
  // Migration-outcome feedback from the daemon's promote-epoch stamps
  // (kHotnessRanked scans only; zero elsewhere):
  //  - recent_promoted: DRAM-resident pages promoted within the stamp
  //    window (the last few ticks).
  //  - recent_promoted_hot: of those, pages re-accessed this interval. A
  //    low hot/promoted ratio means promotions are not paying off — the
  //    stream moved on before the page earned its migration.
  //  - ping_pong_demotions: demoted pages that had been promoted within the
  //    window (the §4.2.3 demote-soon-after-promote signature).
  uint64_t recent_promoted = 0;
  uint64_t recent_promoted_hot = 0;
  uint64_t ping_pong_demotions = 0;
  // Fault visibility, mirrored from the tick's context.
  bool link_degraded = false;
  double cxl_latency_factor = 1.0;
};

// Decision interface. One policy instance serves one TieredMemory (policies
// are stateful: thresholds, learned aggressiveness); the daemon calls
// Decide() at tick start and Observe() at tick end (skipped ticks observe
// nothing). Implementations must be deterministic functions of their
// observation history — the sweep runner replays cells at any --jobs.
class TieringPolicy {
 public:
  virtual ~TieringPolicy() = default;

  // Registry name, e.g. "hot-page-selection".
  virtual const char* name() const = 0;
  // Reason code stamped on page_promote events (index into the
  // telemetry-side promote-reason table: 0 hot_threshold, 1 mru, 2 tpp,
  // 3 adaptive).
  virtual int32_t event_reason() const = 0;

  virtual TickDecision Decide(const TickContext& ctx) = 0;
  virtual void Observe(const TickObservation& obs) = 0;

  // Threshold currently in effect (reported in TickResult / telemetry even
  // for scans that ignore it, matching the legacy daemon's reporting).
  virtual double hot_threshold() const = 0;
};

// Post-v6.1 hot page selection: heat threshold + rate limit, with the
// dynamic threshold adjustment aiming candidate volume at the budget.
class HotPageSelectionPolicy : public TieringPolicy {
 public:
  explicit HotPageSelectionPolicy(const TieringConfig& config);

  const char* name() const override;
  int32_t event_reason() const override { return 0; }
  TickDecision Decide(const TickContext& ctx) override;
  void Observe(const TickObservation& obs) override;
  double hot_threshold() const override { return hot_threshold_; }

 private:
  double hot_threshold_;
  double initial_hot_threshold_;
  bool dynamic_threshold_;
};

// The earlier MRU NUMA-balancing patch: recency, no hotness ranking, no
// threshold adaptation.
class MruBalancingPolicy : public TieringPolicy {
 public:
  explicit MruBalancingPolicy(const TieringConfig& config);

  const char* name() const override;
  int32_t event_reason() const override { return 1; }
  TickDecision Decide(const TickContext& ctx) override;
  void Observe(const TickObservation&) override {}
  double hot_threshold() const override { return hot_threshold_; }

 private:
  double hot_threshold_;
};

// TPP-like second-access promotion with no rate limit.
class TppLikePolicy : public TieringPolicy {
 public:
  explicit TppLikePolicy(const TieringConfig& config);

  const char* name() const override;
  int32_t event_reason() const override { return 2; }
  TickDecision Decide(const TickContext& ctx) override;
  void Observe(const TickObservation&) override {}
  double hot_threshold() const override { return hot_threshold_; }

 private:
  double hot_threshold_;
};

// Tuning surface for AdaptiveFeedbackPolicy. Defaults are deliberately
// conservative: on a stable hot set (KeyDB Zipf) the policy should be
// indistinguishable from hot page selection; only sustained evidence of
// wasted migrations cuts the budget.
struct AdaptiveFeedbackConfig {
  // EWMA smoothing for the promoted-page re-access ratio.
  double reaccess_alpha = 0.3;
  // Smoothed re-access ratio below which promotions count as wasted: fewer
  // than ~one in eight recently-promoted pages still being touched means
  // the hot set moved on before the migrations earned their cost.
  double reaccess_floor = 0.12;
  // Ping-pong guard (§4.2.3): demote-soon-after-promote volume above this
  // fraction of the tick's promotions marks the tick as thrashing even when
  // re-access looks acceptable.
  double ping_pong_ceiling = 0.5;
  // Ticks with fewer observed recently-promoted pages carry no signal and
  // leave the learned state untouched.
  uint64_t min_signal_pages = 16;
  // Consecutive thrashing ticks before the first budget cut (debounce).
  int thrash_arm_ticks = 2;
  // Multiplicative budget cut on a thrashing tick / recovery on a clean one.
  double cut_factor = 0.5;
  double recover_factor = 1.25;
  double min_aggressiveness = 1.0 / 32.0;
  // Cap of the exponential skip runs under a degraded link (2, 4, 8, ...).
  int backoff_max_ticks = 32;
};

// The feedback-loop policy the tentpole builds: hot-page-selection
// threshold dynamics, plus
//  - learned promotion aggressiveness: a budget multiplier driven down by
//    evidence that promoted pages stop being accessed (streaming/thrash
//    regimes) and recovered multiplicatively on clean ticks, so each
//    workload converges to its own promotion rate;
//  - congestion/thrash detection from the demote-soon-after-promote
//    ping-pong signature (§4.2.3);
//  - exponential backoff while a degraded-link fault window is active:
//    probe one tick, then sit out 2, 4, 8, ... ticks (capped), resetting
//    the moment the window closes — migration bandwidth is the last thing
//    a down-trained link needs.
class AdaptiveFeedbackPolicy : public TieringPolicy {
 public:
  explicit AdaptiveFeedbackPolicy(const TieringConfig& config,
                                  AdaptiveFeedbackConfig feedback = {});

  const char* name() const override;
  int32_t event_reason() const override { return 3; }
  TickDecision Decide(const TickContext& ctx) override;
  void Observe(const TickObservation& obs) override;
  double hot_threshold() const override { return hot_threshold_; }

  // Learned state, exposed for tests and the tournament bench.
  double aggressiveness() const { return aggressiveness_; }
  double smoothed_reaccess() const { return smoothed_reaccess_; }
  // True while the degraded-link backoff ladder is armed: either mid skip
  // run, or past the first degraded probe (the run length only resets when
  // Decide sees a healthy link).
  bool backing_off() const { return skip_remaining_ > 0 || next_skip_run_ > 1; }

 private:
  AdaptiveFeedbackConfig feedback_;
  double hot_threshold_;
  double initial_hot_threshold_;
  bool dynamic_threshold_;
  // Learned promotion aggressiveness in [min_aggressiveness, 1].
  double aggressiveness_ = 1.0;
  // EWMA of recent_promoted_hot / recent_promoted; negative = no samples.
  double smoothed_reaccess_ = -1.0;
  int thrash_streak_ = 0;
  // Degraded-link backoff state.
  int skip_remaining_ = 0;
  int next_skip_run_ = 1;
};

}  // namespace cxl::os

#endif  // CXL_EXPLORER_SRC_OS_POLICY_H_
