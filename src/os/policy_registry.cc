#include "src/os/policy_registry.h"

#include <utility>

#include "src/os/tiering.h"

namespace cxl::os {

Status PolicyRegistry::Register(const std::string& name, Factory factory) {
  if (name.empty()) {
    return Status::InvalidArgument("policy name must not be empty");
  }
  if (factories_.count(name) > 0) {
    return Status::AlreadyExists("tiering policy already registered: " + name);
  }
  factories_[name] = std::move(factory);
  return Status::Ok();
}

StatusOr<std::unique_ptr<TieringPolicy>> PolicyRegistry::Create(
    const std::string& name, const TieringConfig& config) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& n : Names()) {
      known += known.empty() ? n : ", " + n;
    }
    return Status::NotFound("unknown tiering policy \"" + name + "\" (known: " + known + ")");
  }
  return it->second(config);
}

std::vector<std::string> PolicyRegistry::Names() const {
  // std::map iterates in key order, so the listing is already sorted.
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    names.push_back(name);
  }
  return names;
}

PolicyRegistry PolicyRegistry::BuiltIns() {
  PolicyRegistry registry;
  auto add = [&registry](const char* name, auto make) {
    const Status s = registry.Register(name, std::move(make));
    (void)s;  // Fresh registry: the built-in names cannot collide.
  };
  add(kHotPageSelectionPolicyName, [](const TieringConfig& config) {
    return std::unique_ptr<TieringPolicy>(new HotPageSelectionPolicy(config));
  });
  add(kMruBalancingPolicyName, [](const TieringConfig& config) {
    return std::unique_ptr<TieringPolicy>(new MruBalancingPolicy(config));
  });
  add(kTppLikePolicyName, [](const TieringConfig& config) {
    return std::unique_ptr<TieringPolicy>(new TppLikePolicy(config));
  });
  add(kAdaptiveFeedbackPolicyName, [](const TieringConfig& config) {
    return std::unique_ptr<TieringPolicy>(new AdaptiveFeedbackPolicy(config));
  });
  return registry;
}

const char* PolicyNameForMode(PromotionMode mode) {
  switch (mode) {
    case PromotionMode::kHotPageSelection:
      return kHotPageSelectionPolicyName;
    case PromotionMode::kMruBalancing:
      return kMruBalancingPolicyName;
    case PromotionMode::kTppLike:
      return kTppLikePolicyName;
  }
  return kHotPageSelectionPolicyName;
}

bool ModeForPolicyName(const std::string& name, PromotionMode* mode) {
  if (name == kHotPageSelectionPolicyName) {
    *mode = PromotionMode::kHotPageSelection;
    return true;
  }
  if (name == kMruBalancingPolicyName) {
    *mode = PromotionMode::kMruBalancing;
    return true;
  }
  if (name == kTppLikePolicyName) {
    *mode = PromotionMode::kTppLike;
    return true;
  }
  return false;
}

}  // namespace cxl::os
