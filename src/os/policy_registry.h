// Name-keyed factory for TieringPolicy implementations.
//
// The registry replaces the float-coded vm.numa_balancing_mode knob as the
// way a policy is chosen: configs, knobs and bench flags carry a policy
// *name* ("hot-page-selection", "adaptive-feedback", ...) that resolves
// here. Registries are plain values — BuiltIns() returns a fresh instance
// and callers hold their own copy — because a mutable process-wide
// singleton in src/os would be exactly the static-storage determinism
// hazard cxl_lint's CXL-D004 exists to reject. Third-party policies
// Register() on the instance they pass around.
#ifndef CXL_EXPLORER_SRC_OS_POLICY_REGISTRY_H_
#define CXL_EXPLORER_SRC_OS_POLICY_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/os/policy.h"
#include "src/util/status.h"

namespace cxl::os {

enum class PromotionMode;

// Canonical names of the built-in policies.
inline constexpr const char kHotPageSelectionPolicyName[] = "hot-page-selection";
inline constexpr const char kMruBalancingPolicyName[] = "mru-balancing";
inline constexpr const char kTppLikePolicyName[] = "tpp-like";
inline constexpr const char kAdaptiveFeedbackPolicyName[] = "adaptive-feedback";

class PolicyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<TieringPolicy>(const TieringConfig&)>;

  // Registers a factory under `name`. ALREADY_EXISTS on duplicates.
  Status Register(const std::string& name, Factory factory);

  bool Has(const std::string& name) const { return factories_.count(name) > 0; }

  // Instantiates the named policy for `config`. NOT_FOUND (listing the
  // known names) for unregistered names.
  StatusOr<std::unique_ptr<TieringPolicy>> Create(const std::string& name,
                                                  const TieringConfig& config) const;

  // Registered names in sorted order (for listings and error messages).
  std::vector<std::string> Names() const;

  // A registry holding the four built-in policies, by value.
  static PolicyRegistry BuiltIns();

 private:
  std::map<std::string, Factory> factories_;
};

// Registry name for a legacy PromotionMode enum value (the one-release
// compatibility mapping behind the deprecated numeric knob).
const char* PolicyNameForMode(PromotionMode mode);

// Inverse mapping for the three legacy names; returns false (leaving *mode
// untouched) for any other name.
bool ModeForPolicyName(const std::string& name, PromotionMode* mode);

}  // namespace cxl::os

#endif  // CXL_EXPLORER_SRC_OS_POLICY_REGISTRY_H_
