#include "src/os/region.h"

#include <cassert>

#include "src/topology/platform.h"

namespace cxl::os {

MemoryRegion::MemoryRegion(PageAllocator* allocator, std::vector<PageId> pages, uint64_t bytes)
    : allocator_(allocator), pages_(std::move(pages)), bytes_(bytes) {
  // One sequential pass at construction buys the branch-only PageAtIndex.
  contiguous_ = !pages_.empty();
  for (size_t i = 1; i < pages_.size() && contiguous_; ++i) {
    contiguous_ = pages_[i] == pages_[0] + static_cast<PageId>(i);
  }
}

StatusOr<MemoryRegion> MemoryRegion::Allocate(PageAllocator& allocator, const NumaPolicy& policy,
                                              uint64_t bytes) {
  const uint64_t page_bytes = allocator.page_bytes();
  const uint64_t count = (bytes + page_bytes - 1) / page_bytes;
  auto pages = allocator.Allocate(policy, count);
  if (!pages.ok()) {
    return pages.status();
  }
  return MemoryRegion(&allocator, std::move(pages).value(), bytes);
}

PageId MemoryRegion::PageAtOffset(uint64_t offset) const {
  assert(offset < bytes_);
  return pages_[offset / allocator_->page_bytes()];
}

std::vector<double> MemoryRegion::NodeShares() const {
  std::vector<double> shares(allocator_->platform().nodes().size(), 0.0);
  if (pages_.empty()) {
    return shares;
  }
  // Contiguous regions read the node column directly in id order — pure
  // sequential streaming, no indirection through the id vector.
  const topology::NodeId* node_col = allocator_->node_column();
  if (contiguous_) {
    const PageId base = pages_[0];
    for (size_t i = 0; i < pages_.size(); ++i) {
      const topology::NodeId n = node_col[base + i];
      if (n >= 0) {
        shares[static_cast<size_t>(n)] += 1.0;
      }
    }
  } else {
    for (PageId id : pages_) {
      const topology::NodeId n = node_col[id];
      if (n >= 0) {
        shares[static_cast<size_t>(n)] += 1.0;
      }
    }
  }
  for (auto& s : shares) {
    s /= static_cast<double>(pages_.size());
  }
  return shares;
}

double MemoryRegion::DramShare() const {
  const auto shares = NodeShares();
  double dram = 0.0;
  for (const auto& n : allocator_->platform().nodes()) {
    if (n.kind == topology::NodeKind::kDram) {
      dram += shares[static_cast<size_t>(n.id)];
    }
  }
  return dram;
}

void MemoryRegion::Free() {
  if (!pages_.empty()) {
    allocator_->Free(pages_);
    pages_.clear();
    contiguous_ = false;
    bytes_ = 0;
  }
}

}  // namespace cxl::os
