// MemoryRegion: an application-visible virtual memory range backed by pages
// placed under a NumaPolicy. Applications address it by byte offset; the
// region resolves offsets to pages so access streams can be attributed to
// NUMA nodes and fed to the hotness tracker.
#ifndef CXL_EXPLORER_SRC_OS_REGION_H_
#define CXL_EXPLORER_SRC_OS_REGION_H_

#include <cstdint>
#include <vector>

#include "src/os/numa_policy.h"
#include "src/os/page_allocator.h"
#include "src/util/status.h"

namespace cxl::os {

class MemoryRegion {
 public:
  // Allocates ceil(bytes / page_bytes) pages under `policy`.
  static StatusOr<MemoryRegion> Allocate(PageAllocator& allocator, const NumaPolicy& policy,
                                         uint64_t bytes);

  MemoryRegion(MemoryRegion&&) = default;
  MemoryRegion& operator=(MemoryRegion&&) = default;
  MemoryRegion(const MemoryRegion&) = delete;
  MemoryRegion& operator=(const MemoryRegion&) = delete;
  // Regions must be Free()d explicitly (they reference the allocator).
  ~MemoryRegion() = default;

  uint64_t bytes() const { return bytes_; }
  size_t page_count() const { return pages_.size(); }
  const std::vector<PageId>& pages() const { return pages_; }

  // Page backing a byte offset.
  PageId PageAtOffset(uint64_t offset) const;
  // Page by index in [0, page_count()). A region carved out of a fresh
  // allocator gets consecutive ids, so the common case is an add instead of
  // a random read through a multi-MB id vector (one cache miss per lookup
  // on a 64 GiB store — this is KvStore::Access's hottest dependency).
  PageId PageAtIndex(size_t index) const {
    return contiguous_ ? pages_[0] + static_cast<PageId>(index) : pages_[index];
  }

  // Fraction of the region's pages currently resident on each node
  // (indexed by NodeId; sums to 1).
  std::vector<double> NodeShares() const;

  // Fraction currently on DRAM (top tier).
  double DramShare() const;

  // Releases the pages back to the allocator.
  void Free();

 private:
  MemoryRegion(PageAllocator* allocator, std::vector<PageId> pages, uint64_t bytes);

  PageAllocator* allocator_;
  std::vector<PageId> pages_;
  uint64_t bytes_ = 0;
  // pages_[i] == pages_[0] + i for all i (checked once at construction).
  bool contiguous_ = false;
};

}  // namespace cxl::os

#endif  // CXL_EXPLORER_SRC_OS_REGION_H_
