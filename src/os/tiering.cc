#include "src/os/tiering.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/os/vmstat.h"

namespace cxl::os {

TieredMemory::TieredMemory(PageAllocator& allocator, TieringConfig config)
    : allocator_(allocator), config_(config), hot_threshold_(config.initial_hot_threshold) {}

bool TieredMemory::IsTopTier(topology::NodeId node) const {
  return allocator_.platform().node(node).kind == topology::NodeKind::kDram;
}

void TieredMemory::RecordAccess(PageId page, uint64_t accesses) {
  // Hint-fault sampling: only a fraction of real accesses are observed.
  const double sampled = static_cast<double>(accesses) * config_.hint_fault_sample_rate;
  Page& p = allocator_.page(page);
  p.heat += static_cast<float>(sampled);
  p.last_decay_epoch = epoch_;  // Recency stamp for the MRU-balancing mode.
  allocator_.mutable_counters().numa_hint_faults += static_cast<uint64_t>(std::ceil(sampled));
}

uint64_t TieredMemory::LowTierPages() const {
  uint64_t total = 0;
  for (const auto& n : allocator_.platform().nodes()) {
    if (n.kind == topology::NodeKind::kCxl) {
      total += allocator_.UsedPages(n.id);
    }
  }
  return total;
}

uint64_t TieredMemory::DemoteColdPages(uint64_t count) {
  // Find a demotion target (CXL node with space).
  const auto& platform = allocator_.platform();
  auto pick_cxl = [&]() -> topology::NodeId {
    topology::NodeId best = -1;
    uint64_t best_free = 0;
    for (const auto& n : platform.nodes()) {
      if (n.kind == topology::NodeKind::kCxl && allocator_.FreePages(n.id) > best_free) {
        best_free = allocator_.FreePages(n.id);
        best = n.id;
      }
    }
    return best;
  };

  // Collect the coldest DRAM pages.
  std::vector<std::pair<float, PageId>> cold;
  const uint64_t page_count = allocator_.allocated_pages();
  cold.reserve(page_count / 4);
  for (PageId id = 0; id < allocator_.page_count(); ++id) {
    const Page& p = allocator_.page(id);
    if (p.node >= 0 && IsTopTier(p.node)) {
      cold.emplace_back(p.heat, id);
    }
  }
  const uint64_t want = std::min<uint64_t>(count, cold.size());
  std::partial_sort(cold.begin(), cold.begin() + static_cast<long>(want), cold.end());

  uint64_t demoted = 0;
  for (uint64_t i = 0; i < want; ++i) {
    const topology::NodeId target = pick_cxl();
    if (target < 0) {
      ++allocator_.mutable_counters().migrate_failed;
      break;
    }
    if (allocator_.MovePage(cold[i].second, target).ok()) {
      ++demoted;
      ++allocator_.mutable_counters().pgdemote;
    }
  }
  return demoted;
}

TieredMemory::TickResult TieredMemory::Tick(double dt_seconds) {
  TickResult result;
  result.hot_threshold = hot_threshold_;

  // Degraded-path gates. Both branches leave page state untouched: a wedged
  // daemon thread neither scans nor decays, and a backed-off daemon sits out
  // the tick after repeated promotion failures. Unreachable without an
  // enabled injector, so healthy runs are bit-for-bit unchanged.
  if (faults_ != nullptr && faults_->enabled()) {
    if (faults_->DaemonStalled()) {
      sim_seconds_ += dt_seconds;
      ++epoch_;
      if (telemetry_ != nullptr) {
        telemetry_->GetCounter("tiering.stalled_ticks").Increment();
      }
      return result;
    }
    if (backoff_ticks_remaining_ > 0) {
      --backoff_ticks_remaining_;
      sim_seconds_ += dt_seconds;
      ++epoch_;
      if (telemetry_ != nullptr) {
        telemetry_->GetCounter("tiering.backoff_ticks").Increment();
      }
      return result;
    }
  }

  const auto& platform = allocator_.platform();
  const double page_bytes = static_cast<double>(allocator_.page_bytes());

  // Promotion budget from the rate limit (MB/s, decimal, as in the kernel).
  // TPP predates the rate-limit mechanism: it promotes unboundedly.
  const double budget_bytes = config_.promote_rate_limit_mbps * 1e6 * dt_seconds;
  const auto budget_pages = config_.mode == PromotionMode::kTppLike
                                ? std::numeric_limits<uint64_t>::max()
                                : static_cast<uint64_t>(budget_bytes / page_bytes);

  // Gather promotion candidates on the low tier. Quarantined pages are
  // never candidates; the set is empty unless fault paths populated it, so
  // the extra check is one `empty()` load on healthy runs.
  const auto quarantined = [this](PageId id) {
    return !quarantined_.empty() && quarantined_.count(id) != 0;
  };
  std::vector<std::pair<float, PageId>> hot;
  if (config_.mode == PromotionMode::kHotPageSelection) {
    for (PageId id = 0; id < allocator_.page_count(); ++id) {
      const Page& p = allocator_.page(id);
      if (p.node >= 0 && !IsTopTier(p.node) && p.heat >= hot_threshold_ && !quarantined(id)) {
        hot.emplace_back(p.heat, id);
      }
    }
    // Hottest first, page id breaking heat ties: the rate-limit budget
    // truncates this list, so tie order decides *which* pages promote —
    // without the tie-break that choice is implementation-defined
    // (caught by cxl_lint CXL-D007).
    std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
  } else if (config_.mode == PromotionMode::kMruBalancing) {
    // MRU balancing: everything touched since the last scan qualifies, in
    // scan order — no hotness ranking. This is precisely why the earlier
    // patch "may not accurately identify high-demand pages" (§2.3): the
    // budget is spent on recently-touched pages regardless of their heat.
    for (PageId id = 0; id < allocator_.page_count(); ++id) {
      const Page& p = allocator_.page(id);
      if (p.node >= 0 && !IsTopTier(p.node) && p.last_decay_epoch == epoch_ && p.heat > 0.0f &&
          !quarantined(id)) {
        hot.emplace_back(p.heat, id);
      }
    }
  } else {
    // TPP-like: second observed access promotes. With the default sampling
    // rate a page needs ~2 sampled hits; accumulated heat >= 2 approximates
    // the active-list check. No ordering, no rate limiting (see below).
    for (PageId id = 0; id < allocator_.page_count(); ++id) {
      const Page& p = allocator_.page(id);
      if (p.node >= 0 && !IsTopTier(p.node) && p.heat >= 2.0f && !quarantined(id)) {
        hot.emplace_back(p.heat, id);
      }
    }
  }
  result.candidates = hot.size();
  allocator_.mutable_counters().pgpromote_candidate += hot.size();

  auto pick_dram = [&]() -> topology::NodeId {
    topology::NodeId best = -1;
    uint64_t best_free = 0;
    for (const auto& n : platform.nodes()) {
      if (n.kind == topology::NodeKind::kDram && allocator_.FreePages(n.id) > best_free) {
        best_free = allocator_.FreePages(n.id);
        best = n.id;
      }
    }
    return best;
  };

  uint64_t promoted = 0;
  bool promotion_failed = false;
  for (const auto& [heat, id] : hot) {
    if (promoted >= budget_pages) {
      allocator_.mutable_counters().promote_rate_limited += hot.size() - promoted;
      break;
    }
    topology::NodeId target = pick_dram();
    if (target < 0) {
      // DRAM full: demote cold pages to make room (kswapd-style), which
      // consumes migration bandwidth too. Demote in small batches.
      const uint64_t batch = std::clamp<uint64_t>(budget_pages / 8, 16, 4096);
      const uint64_t freed = DemoteColdPages(batch);
      result.demoted_pages += freed;
      result.migrated_bytes += static_cast<double>(freed) * page_bytes;
      target = pick_dram();
      if (target < 0) {
        promotion_failed = true;
        break;  // Machine genuinely full.
      }
    }
    if (allocator_.MovePage(id, target).ok()) {
      ++promoted;
      ++allocator_.mutable_counters().pgpromote_success;
      result.migrated_bytes += page_bytes;
    } else {
      promotion_failed = true;
    }
  }
  result.promoted_pages = promoted;

  // Repeated promotion failure on the degraded path arms exponential
  // backoff: 2, 4, 8, ... skipped ticks up to the tunable cap, so a daemon
  // that cannot make progress stops burning scan cycles and migration
  // bandwidth against a full or failing tier.
  if (faults_ != nullptr && faults_->enabled()) {
    if (promotion_failed) {
      ++promotion_failure_streak_;
      const int cap = std::max(1, faults_->tunables().backoff_max_ticks);
      const int shift = std::min(promotion_failure_streak_, 16);
      backoff_ticks_remaining_ = std::min(cap, 1 << shift);
      if (telemetry_ != nullptr) {
        telemetry_->GetCounter("tiering.promotion_failures").Increment();
      }
    } else {
      promotion_failure_streak_ = 0;
    }
  }

  // Demotion under DRAM pressure even without promotions (watermark).
  if (allocator_.DramFreeFraction() < config_.demotion_free_watermark) {
    const uint64_t freed = DemoteColdPages(std::clamp<uint64_t>(budget_pages / 8, 16, 4096));
    result.demoted_pages += freed;
    result.migrated_bytes += static_cast<double>(freed) * page_bytes;
  }

  // Dynamic threshold adjustment: aim the candidate volume at the rate
  // limit (the hot-page-selection patch). Too many candidates -> raise the
  // bar; too few -> lower it (floor at 1 sampled access).
  if (config_.mode == PromotionMode::kHotPageSelection && config_.dynamic_threshold &&
      budget_pages > 0) {
    if (result.candidates > 2 * budget_pages) {
      hot_threshold_ *= 1.3;
    } else if (result.candidates < budget_pages / 2) {
      // Lower the bar to find more candidates, but not below a quarter of
      // the configured threshold: pages with a single sampled hit must not
      // churn (the kernel's adjustment is similarly bounded).
      hot_threshold_ =
          std::max(std::max(1.0, 0.25 * config_.initial_hot_threshold), hot_threshold_ * 0.8);
    }
  }
  result.hot_threshold = hot_threshold_;

  // Decay heat for the next interval.
  for (PageId id = 0; id < allocator_.page_count(); ++id) {
    Page& p = allocator_.page(id);
    if (p.node >= 0) {
      p.heat *= static_cast<float>(config_.heat_decay);
    }
  }
  ++epoch_;

  sim_seconds_ += dt_seconds;
  EmitTickTelemetry(result, dt_seconds);
  return result;
}

void TieredMemory::AttachTelemetry(telemetry::MetricRegistry* sink) {
  telemetry_ = sink;
  if (telemetry_ != nullptr) {
    telemetry_track_ = telemetry_->trace().Track("promotion-daemon");
  }
}

void TieredMemory::AttachFaults(const fault::FaultInjector* faults) { faults_ = faults; }

bool TieredMemory::QuarantinePage(PageId page) {
  if (page == kInvalidPage || page >= allocator_.page_count()) {
    return false;
  }
  if (!quarantined_.insert(page).second) {
    return false;  // Already quarantined.
  }
  Page& p = allocator_.page(page);
  p.heat = 0.0f;
  if (p.node >= 0 && IsTopTier(p.node)) {
    // Evict the poisoned page from the hot tier: it must not occupy DRAM
    // the daemon would otherwise give to healthy hot pages.
    const auto& platform = allocator_.platform();
    topology::NodeId target = -1;
    uint64_t best_free = 0;
    for (const auto& n : platform.nodes()) {
      if (n.kind == topology::NodeKind::kCxl && allocator_.FreePages(n.id) > best_free) {
        best_free = allocator_.FreePages(n.id);
        target = n.id;
      }
    }
    if (target >= 0 && allocator_.MovePage(page, target).ok()) {
      ++allocator_.mutable_counters().pgdemote;
    }
  }
  if (telemetry_ != nullptr) {
    telemetry_->GetCounter("tiering.quarantined_pages").Increment();
  }
  return true;
}

void TieredMemory::EmitTickTelemetry(const TickResult& result, double dt_seconds) {
  if (telemetry_ == nullptr || dt_seconds <= 0.0) {
    return;
  }
  const double t_ms = sim_seconds_ * 1e3;
  const double page_bytes = static_cast<double>(allocator_.page_bytes());
  const double promote_mbps =
      static_cast<double>(result.promoted_pages) * page_bytes / 1e6 / dt_seconds;
  const double demote_mbps =
      static_cast<double>(result.demoted_pages) * page_bytes / 1e6 / dt_seconds;

  telemetry::Timeline& timeline = telemetry_->timeline();
  timeline.Sample("tiering.hot_threshold", t_ms, result.hot_threshold);
  timeline.Sample("tiering.candidates", t_ms, static_cast<double>(result.candidates));
  timeline.Sample("tiering.promote_mbps", t_ms, promote_mbps);
  timeline.Sample("tiering.demote_mbps", t_ms, demote_mbps);
  // How much of the kernel.numa_balancing_promote_rate_limit_MBps budget the
  // daemon consumed this tick (>= ~1.0 means it is promotion-rate bound —
  // the §4.2.2 thrashing precondition).
  const double saturation =
      config_.promote_rate_limit_mbps > 0.0 ? promote_mbps / config_.promote_rate_limit_mbps : 0.0;
  timeline.Sample("tiering.rate_limit_saturation", t_ms, saturation);
  timeline.Sample("tiering.low_tier_pages", t_ms, static_cast<double>(LowTierPages()));
  SampleVmCounters(timeline, t_ms, allocator_.counters());

  telemetry_->GetCounter("tiering.ticks").Increment();
  telemetry_->GetCounter("tiering.promoted_pages").Add(result.promoted_pages);
  telemetry_->GetCounter("tiering.demoted_pages").Add(result.demoted_pages);
  telemetry_->GetGauge("tiering.hot_threshold").Set(result.hot_threshold);
  telemetry_->GetGauge("tiering.rate_limit_saturation").Set(saturation);

  telemetry_->trace().Span(
      telemetry_track_, "tick", t_ms - dt_seconds * 1e3, dt_seconds * 1e3,
      {{"promoted_pages", static_cast<double>(result.promoted_pages)},
       {"demoted_pages", static_cast<double>(result.demoted_pages)},
       {"hot_threshold", result.hot_threshold},
       {"migrated_mb", result.migrated_bytes / 1e6}});
}

void DeclareTieringKnobs(KnobSet& knobs) {
  const TieringConfig defaults;
  knobs.Declare("kernel.numa_balancing_promote_rate_limit_MBps",
                defaults.promote_rate_limit_mbps,
                "maximum page promotion/demotion throughput (MB/s)");
  knobs.Declare("vm.hot_page_threshold", defaults.initial_hot_threshold,
                "sampled accesses per interval for a page to count as hot");
  knobs.Declare("vm.hot_threshold_auto_adjust", defaults.dynamic_threshold ? 1.0 : 0.0,
                "1 = adapt the hot threshold to the promotion rate limit");
  knobs.Declare("vm.numa_balancing_mode", 0.0,
                "0 = hot page selection (v6.1+), 1 = MRU NUMA balancing, 2 = TPP-like");
  knobs.Declare("vm.demotion_free_watermark", defaults.demotion_free_watermark,
                "DRAM free fraction below which cold pages demote");
  knobs.Declare("vm.hint_fault_sample_rate", defaults.hint_fault_sample_rate,
                "fraction of real accesses observed by page-table scanning");
}

TieringConfig TieringConfigFromKnobs(const KnobSet& knobs) {
  TieringConfig cfg;
  auto get = [&](const char* key, double fallback) {
    return knobs.IsDeclared(key) ? knobs.Get(key) : fallback;
  };
  cfg.promote_rate_limit_mbps =
      get("kernel.numa_balancing_promote_rate_limit_MBps", cfg.promote_rate_limit_mbps);
  cfg.initial_hot_threshold = get("vm.hot_page_threshold", cfg.initial_hot_threshold);
  cfg.dynamic_threshold = get("vm.hot_threshold_auto_adjust", 1.0) != 0.0;
  const double mode = get("vm.numa_balancing_mode", 0.0);
  cfg.mode = mode >= 2.0   ? PromotionMode::kTppLike
             : mode >= 1.0 ? PromotionMode::kMruBalancing
                           : PromotionMode::kHotPageSelection;
  cfg.demotion_free_watermark = get("vm.demotion_free_watermark", cfg.demotion_free_watermark);
  cfg.hint_fault_sample_rate = get("vm.hint_fault_sample_rate", cfg.hint_fault_sample_rate);
  return cfg;
}

}  // namespace cxl::os
