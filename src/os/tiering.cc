#include "src/os/tiering.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

#include "src/os/policy_registry.h"
#include "src/os/vmstat.h"
#include "src/util/units.h"

namespace cxl::os {

namespace {
// Promote-epoch stamps age out after this many ticks: a demotion (or a
// re-access check) further from the promotion than this no longer counts as
// migration-outcome feedback. Small enough that the signal tracks the
// current regime, large enough to span the heat-decay half-life.
constexpr uint32_t kPromoteStampWindowTicks = 8;
}  // namespace

const char* TieringConfig::PolicyName() const {
  return policy.empty() ? PolicyNameForMode(mode) : policy.c_str();
}

TieredMemory::TieredMemory(PageAllocator& allocator, TieringConfig config)
    : allocator_(allocator),
      config_(std::move(config)),
      promote_epoch_(allocator.page_count(), 0) {
  auto policy = PolicyRegistry::BuiltIns().Create(config_.PolicyName(), config_);
  if (!policy.ok()) {
    // Unknown name in config_.policy: callers taking user input validate
    // names against the registry up front, so this is a programming error —
    // fall back to the legacy-mode policy rather than crash release builds.
    assert(false && "unknown tiering policy name");
    policy = PolicyRegistry::BuiltIns().Create(PolicyNameForMode(config_.mode), config_);
  }
  owned_policy_ = std::move(policy).value();
  policy_ = owned_policy_.get();
}

bool TieredMemory::IsTopTier(topology::NodeId node) const {
  return allocator_.IsDramNode(node);
}

void TieredMemory::RecordAccess(PageId page, uint64_t accesses) {
  // Hint-fault sampling: only a fraction of real accesses are observed.
  const double sampled = static_cast<double>(accesses) * config_.hint_fault_sample_rate;
  auto p = allocator_.page(page);
  p.heat += static_cast<float>(sampled);
  p.last_decay_epoch = epoch_;  // Recency stamp for the kRecency scan.
  allocator_.mutable_counters().numa_hint_faults += static_cast<uint64_t>(std::ceil(sampled));
}

uint64_t TieredMemory::LowTierPages() const {
  uint64_t total = 0;
  for (const auto& n : allocator_.platform().nodes()) {
    if (n.kind == topology::NodeKind::kCxl) {
      total += allocator_.UsedPages(n.id);
    }
  }
  return total;
}

void TieredMemory::BuildColdPool(uint64_t k) {
  // Select the `k` coldest DRAM-resident pages with a bounded max-heap
  // streamed over the DRAM resident list and the packed heat column. The
  // (heat, id) pairs form a total order (ids are unique), so the k-smallest
  // set — and its ascending order after sort_heap — is exactly what a
  // full-scan partial_sort would produce.
  const float* heat_col = allocator_.heat_column();
  const topology::NodeId* node_col = allocator_.node_column();
  const uint64_t want = std::min<uint64_t>(k, allocator_.DramResidentCount());
  cold_pool_.clear();
  cold_pool_.reserve(want);
  // Stream the packed node/heat columns in id order — sequential loads the
  // prefetcher can follow, unlike chasing the unordered resident list. The
  // k-smallest set is iteration-order independent, so the selection is
  // unchanged.
  const uint64_t page_count = allocator_.page_count();
  for (PageId id = 0; id < page_count; ++id) {
    if (node_col[id] < 0 || !allocator_.IsDramNode(node_col[id])) {
      continue;
    }
    const std::pair<float, PageId> entry(heat_col[id], id);
    if (cold_pool_.size() < want) {
      cold_pool_.push_back(entry);
      std::push_heap(cold_pool_.begin(), cold_pool_.end());
    } else if (entry < cold_pool_.front()) {
      std::pop_heap(cold_pool_.begin(), cold_pool_.end());
      cold_pool_.back() = entry;
      std::push_heap(cold_pool_.begin(), cold_pool_.end());
    }
  }
  std::sort_heap(cold_pool_.begin(), cold_pool_.end());  // Coldest first.
  cold_pool_next_ = 0;
  cold_pool_valid_ = true;
  cold_pool_floor_ =
      cold_pool_.empty() ? std::pair<float, PageId>(0.0f, 0) : cold_pool_.back();
}

uint64_t TieredMemory::DemoteColdPages(uint64_t count) {
  // Find a demotion target (CXL node with space).
  const auto& platform = allocator_.platform();
  auto pick_cxl = [&]() -> topology::NodeId {
    topology::NodeId best = -1;
    uint64_t best_free = 0;
    for (const auto& n : platform.nodes()) {
      if (n.kind == topology::NodeKind::kCxl && allocator_.FreePages(n.id) > best_free) {
        best_free = allocator_.FreePages(n.id);
        best = n.id;
      }
    }
    return best;
  };

  // Heat is constant within a tick and every page the pool loses to a
  // demotion leaves DRAM with it, so the pool's unconsumed prefix remains
  // the exact k-smallest of the current DRAM set — one scan amortizes over
  // the several demotion batches a tick issues while promoting. (Pages that
  // *enter* DRAM mid-tick invalidate the pool if they would sort into it;
  // see the promotion loop.) Built with headroom so the rescan is rare.
  const uint64_t want =
      std::min<uint64_t>(count, allocator_.DramResidentCount());
  if (want == 0) {
    return 0;
  }
  if (!cold_pool_valid_ || cold_pool_.size() - cold_pool_next_ < want) {
    BuildColdPool(std::max<uint64_t>(4 * want, 4096));
  }

  uint64_t demoted = 0;
  for (uint64_t i = 0; i < want && cold_pool_next_ < cold_pool_.size(); ++i) {
    const PageId id = cold_pool_[cold_pool_next_].second;
    const topology::NodeId target = pick_cxl();
    if (target < 0) {
      ++allocator_.mutable_counters().migrate_failed;
      break;
    }
    ++cold_pool_next_;
    if (allocator_.MovePage(id, target).ok()) {
      ++demoted;
      ++allocator_.mutable_counters().pgdemote;
      // §4.2.3 ping-pong signature: this page was promoted within the stamp
      // window and is already being demoted again. Observational only —
      // feeds TickObservation, never the demotion choice itself.
      const uint32_t stamp = promote_epoch_[id];
      if (stamp != 0 && epoch_ - (stamp - 1) <= kPromoteStampWindowTicks) {
        ++tick_ping_pong_;
      }
    }
  }
  return demoted;
}

TieredMemory::TickResult TieredMemory::Tick(double dt_seconds) {
  TickResult result;
  result.hot_threshold = policy_->hot_threshold();

  // Pages are created lazily by the allocator, so the stamp column trails
  // page_count(); new pages start unstamped (0 = never promoted).
  if (promote_epoch_.size() < allocator_.page_count()) {
    promote_epoch_.resize(allocator_.page_count(), 0);
  }

  // Heat changed since the previous tick (decay, sampled accesses), so last
  // tick's cold pool no longer reflects the (heat, id) order.
  cold_pool_valid_ = false;

  // Degraded-path gates. Both branches leave page state untouched: a wedged
  // daemon thread neither scans nor decays, and a backed-off daemon sits out
  // the tick after repeated promotion failures. Unreachable without an
  // enabled injector, so healthy runs are bit-for-bit unchanged. These run
  // before the policy is consulted — a wedged kernel thread does not make
  // decisions.
  if (faults_ != nullptr && faults_->enabled()) {
    if (faults_->DaemonStalled()) {
      sim_seconds_ += dt_seconds;
      ++epoch_;
      if (telemetry_ != nullptr) {
        telemetry_->GetCounter("tiering.stalled_ticks").Increment();
        // A stall window is active (DaemonStalled), so the id is valid.
        telemetry_->events().Record(
            telemetry::Event(telemetry::EventKind::kDaemonSkippedTick, SecToMs(sim_seconds_))
                .WithWindow(faults_->ActiveWindowOf(fault::FaultType::kDaemonStall))
                .WithReason(0));
      }
      return result;
    }
    if (backoff_ticks_remaining_ > 0) {
      --backoff_ticks_remaining_;
      sim_seconds_ += dt_seconds;
      ++epoch_;
      if (telemetry_ != nullptr) {
        telemetry_->GetCounter("tiering.backoff_ticks").Increment();
        const int32_t window = faults_->AttributedWindow();
        if (window != telemetry::kNoWindow) {
          telemetry_->events().Record(
              telemetry::Event(telemetry::EventKind::kDaemonSkippedTick, SecToMs(sim_seconds_))
                  .WithWindow(window)
                  .WithReason(1));
        }
      }
      return result;
    }
  }

  const auto& platform = allocator_.platform();
  const double page_bytes = static_cast<double>(allocator_.page_bytes());

  // All of this tick's transient lists live in the arena; recycling the
  // blocks here keeps steady-state ticks heap-free.
  tick_arena_.Reset();

  // Base promotion budget from the rate limit (MB/s, decimal, as in the
  // kernel). The policy scales or ignores it (TPP promotes unboundedly).
  const double budget_bytes = MbpsToBytesPerSec(config_.promote_rate_limit_mbps) * dt_seconds;
  const double budget_pages_d = budget_bytes / page_bytes;
  const uint64_t base_budget_pages =
      budget_pages_d >= static_cast<double>(std::numeric_limits<uint64_t>::max())
          ? std::numeric_limits<uint64_t>::max()
          : static_cast<uint64_t>(budget_pages_d);

  TickContext ctx;
  ctx.dt_seconds = dt_seconds;
  ctx.base_budget_pages = base_budget_pages;
  ctx.dram_free_fraction = allocator_.DramFreeFraction();
  if (faults_ != nullptr && faults_->enabled()) {
    ctx.link_degraded = faults_->LinkDegraded();
    ctx.cxl_latency_factor = faults_->CxlLatencyFactor();
  }
  const TickDecision decision = policy_->Decide(ctx);
  if (decision.skip_tick) {
    // The policy's own backoff (e.g. adaptive feedback sitting out a
    // degraded-link window): same no-scan/no-decay semantics as the
    // daemon's promotion-failure backoff, with its own counter and skip
    // reason. The event only records when a fault window is attributable —
    // the diagnosis layer requires every degradation response to join back
    // to a cause.
    sim_seconds_ += dt_seconds;
    ++epoch_;
    if (telemetry_ != nullptr) {
      telemetry_->GetCounter("tiering.policy_backoff_ticks").Increment();
      const int32_t window = (faults_ != nullptr && faults_->enabled())
                                 ? faults_->AttributedWindow()
                                 : telemetry::kNoWindow;
      if (window != telemetry::kNoWindow) {
        telemetry_->events().Record(
            telemetry::Event(telemetry::EventKind::kDaemonSkippedTick, SecToMs(sim_seconds_))
                .WithWindow(window)
                .WithReason(2));
      }
    }
    return result;
  }
  const uint64_t budget_pages = decision.budget_pages;

  // Migration-outcome instrumentation for this tick (observational only).
  tick_ping_pong_ = 0;
  tick_recent_promoted_ = 0;
  tick_recent_promoted_hot_ = 0;

  // Gather promotion candidates on the low tier. Quarantined pages are
  // never candidates; the set is empty unless fault paths populated it, so
  // the extra check is one `empty()` load on healthy runs.
  const auto quarantined = [this](PageId id) {
    return !quarantined_.empty() && quarantined_.count(id) != 0;
  };
  const float* heat_col = allocator_.heat_column();
  ArenaVector<std::pair<float, PageId>> hot{
      ArenaAllocator<std::pair<float, PageId>>(&tick_arena_)};
  if (decision.scan == CandidateScan::kHotnessRanked) {
    // One sequential pass over the packed node/heat columns does double
    // duty: CXL pages become promotion candidates, DRAM pages feed the
    // demotion cold pool (the configs that tick the daemon over-commit
    // DRAM, so the promotion loop below demotes almost every tick — eager
    // building folds that scan into this one). With nothing resident on
    // CXL there is nothing to promote and nothing the pool is for; skip.
    const topology::NodeId* node_col = allocator_.node_column();
    const uint32_t* epoch_col = allocator_.epoch_column();
    if (allocator_.CxlResidentCount() > 0) {
      const uint64_t batch = std::clamp<uint64_t>(budget_pages / 8, 16, 4096);
      const uint64_t pool_k = std::min<uint64_t>(std::max<uint64_t>(4 * batch, 4096),
                                                 allocator_.DramResidentCount());
      cold_pool_.clear();
      cold_pool_.reserve(pool_k);
      const uint64_t page_count = allocator_.page_count();
      for (PageId id = 0; id < page_count; ++id) {
        const topology::NodeId node = node_col[id];
        if (node < 0) {
          continue;
        }
        if (allocator_.IsDramNode(node)) {
          // Migration-outcome feedback, folded into the scan the daemon
          // already runs: was this DRAM page promoted within the stamp
          // window, and if so, did the current interval touch it?
          const uint32_t stamp = promote_epoch_[id];
          if (stamp != 0) {
            const uint32_t age = epoch_ - (stamp - 1);
            if (age >= 1 && age <= kPromoteStampWindowTicks) {
              ++tick_recent_promoted_;
              if (epoch_col[id] == epoch_) {
                ++tick_recent_promoted_hot_;
              }
            }
          }
          const std::pair<float, PageId> entry(heat_col[id], id);
          if (cold_pool_.size() < pool_k) {
            cold_pool_.push_back(entry);
            std::push_heap(cold_pool_.begin(), cold_pool_.end());
          } else if (entry < cold_pool_.front()) {
            std::pop_heap(cold_pool_.begin(), cold_pool_.end());
            cold_pool_.back() = entry;
            std::push_heap(cold_pool_.begin(), cold_pool_.end());
          }
          continue;
        }
        // NB: heat is compared against the double threshold (as before) —
        // narrowing the threshold to float would flip borderline candidates.
        if (heat_col[id] >= decision.hot_threshold && !quarantined(id)) {
          hot.emplace_back(heat_col[id], id);
        }
      }
      std::sort_heap(cold_pool_.begin(), cold_pool_.end());
      cold_pool_next_ = 0;
      cold_pool_valid_ = true;
      cold_pool_floor_ =
          cold_pool_.empty() ? std::pair<float, PageId>(0.0f, 0) : cold_pool_.back();
    }
    // Hottest first, page id breaking heat ties: the rate-limit budget
    // truncates this list, so tie order decides *which* pages promote —
    // without the tie-break that choice is implementation-defined
    // (caught by cxl_lint CXL-D007).
    std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
  } else if (decision.scan == CandidateScan::kRecency) {
    // MRU balancing: everything touched since the last scan qualifies, in
    // scan order — no hotness ranking. This is precisely why the earlier
    // patch "may not accurately identify high-demand pages" (§2.3): the
    // budget is spent on recently-touched pages regardless of their heat.
    // Promotion order is the scan order, so this scan keeps the id-ordered
    // walk (streaming the packed columns).
    const topology::NodeId* node_col = allocator_.node_column();
    const uint32_t* epoch_col = allocator_.epoch_column();
    for (PageId id = 0; id < allocator_.page_count(); ++id) {
      if (node_col[id] >= 0 && !allocator_.IsDramNode(node_col[id]) &&
          epoch_col[id] == epoch_ && heat_col[id] > 0.0f && !quarantined(id)) {
        hot.emplace_back(heat_col[id], id);
      }
    }
  } else {
    // TPP-like: second observed access promotes. With the default sampling
    // rate a page needs ~2 sampled hits; accumulated heat >= 2 approximates
    // the active-list check. No ordering, no rate limiting (see below);
    // id-ordered walk for the same promotion order as before.
    const topology::NodeId* node_col = allocator_.node_column();
    for (PageId id = 0; id < allocator_.page_count(); ++id) {
      if (node_col[id] >= 0 && !allocator_.IsDramNode(node_col[id]) && heat_col[id] >= 2.0f &&
          !quarantined(id)) {
        hot.emplace_back(heat_col[id], id);
      }
    }
  }
  result.candidates = hot.size();
  allocator_.mutable_counters().pgpromote_candidate += hot.size();

  auto pick_dram = [&]() -> topology::NodeId {
    topology::NodeId best = -1;
    uint64_t best_free = 0;
    for (const auto& n : platform.nodes()) {
      if (n.kind == topology::NodeKind::kDram && allocator_.FreePages(n.id) > best_free) {
        best_free = allocator_.FreePages(n.id);
        best = n.id;
      }
    }
    return best;
  };

  uint64_t promoted = 0;
  bool promotion_failed = false;
  for (const auto& [heat, id] : hot) {
    if (promoted >= budget_pages) {
      allocator_.mutable_counters().promote_rate_limited += hot.size() - promoted;
      break;
    }
    topology::NodeId target = pick_dram();
    if (target < 0) {
      // DRAM full: demote cold pages to make room (kswapd-style), which
      // consumes migration bandwidth too. Demote in small batches.
      const uint64_t batch = std::clamp<uint64_t>(budget_pages / 8, 16, 4096);
      const uint64_t freed = DemoteColdPages(batch);
      result.demoted_pages += freed;
      result.migrated_bytes += static_cast<double>(freed) * page_bytes;
      target = pick_dram();
      if (target < 0) {
        promotion_failed = true;
        break;  // Machine genuinely full.
      }
    }
    if (allocator_.MovePage(id, target).ok()) {
      ++promoted;
      ++allocator_.mutable_counters().pgpromote_success;
      result.migrated_bytes += page_bytes;
      promote_epoch_[id] = epoch_ + 1;  // Stamp; 0 is reserved for "never".
      // A page entering DRAM at or below the cold pool's floor belongs in
      // the pool — drop it so the next demotion batch rescans. Promoted
      // pages are hot by construction, so this almost never fires.
      if (cold_pool_valid_ &&
          (cold_pool_.empty() ||
           std::pair<float, PageId>(heat_col[id], id) <= cold_pool_floor_)) {
        cold_pool_valid_ = false;
      }
    } else {
      promotion_failed = true;
    }
  }
  result.promoted_pages = promoted;

  // Repeated promotion failure on the degraded path arms exponential
  // backoff: 2, 4, 8, ... skipped ticks up to the tunable cap, so a daemon
  // that cannot make progress stops burning scan cycles and migration
  // bandwidth against a full or failing tier.
  if (faults_ != nullptr && faults_->enabled()) {
    if (promotion_failed) {
      ++promotion_failure_streak_;
      const int cap = std::max(1, faults_->tunables().backoff_max_ticks);
      const int shift = std::min(promotion_failure_streak_, 16);
      backoff_ticks_remaining_ = std::min(cap, 1 << shift);
      if (telemetry_ != nullptr) {
        telemetry_->GetCounter("tiering.promotion_failures").Increment();
        const int32_t window = faults_->AttributedWindow();
        if (window != telemetry::kNoWindow) {
          telemetry_->events().Record(
              telemetry::Event(telemetry::EventKind::kPromotionBackoffArmed,
                               SecToMs(sim_seconds_ + dt_seconds))
                  .WithWindow(window)
                  .WithA(backoff_ticks_remaining_)
                  .WithB(promotion_failure_streak_));
        }
      }
    } else {
      promotion_failure_streak_ = 0;
    }
  }

  // Demotion under DRAM pressure even without promotions (watermark).
  uint64_t watermark_demoted = 0;
  if (allocator_.DramFreeFraction() < config_.demotion_free_watermark) {
    const uint64_t freed = DemoteColdPages(std::clamp<uint64_t>(budget_pages / 8, 16, 4096));
    watermark_demoted = freed;
    result.demoted_pages += freed;
    result.migrated_bytes += static_cast<double>(freed) * page_bytes;
  }

  // Close the loop: report the tick's outcome to the policy. This is where
  // the hot-page-selection threshold adjustment now lives (it ran at this
  // exact point in the pre-policy daemon, after the watermark demotions).
  TickObservation obs;
  obs.dt_seconds = dt_seconds;
  obs.candidates = result.candidates;
  obs.promoted_pages = result.promoted_pages;
  obs.demoted_pages = result.demoted_pages;
  obs.budget_pages = budget_pages;
  obs.migrated_bytes = result.migrated_bytes;
  obs.rate_limit_saturation =
      (budget_pages > 0 && budget_pages != std::numeric_limits<uint64_t>::max())
          ? static_cast<double>(promoted) / static_cast<double>(budget_pages)
          : 0.0;
  obs.promotion_failed = promotion_failed;
  obs.dram_free_fraction = allocator_.DramFreeFraction();
  obs.recent_promoted = tick_recent_promoted_;
  obs.recent_promoted_hot = tick_recent_promoted_hot_;
  obs.ping_pong_demotions = tick_ping_pong_;
  obs.link_degraded = ctx.link_degraded;
  obs.cxl_latency_factor = ctx.cxl_latency_factor;
  policy_->Observe(obs);
  result.hot_threshold = policy_->hot_threshold();

  // Decay heat for the next interval: one sequential (vectorizable) sweep
  // over the packed heat column instead of two random-order walks through
  // the tier lists. The sweep also multiplies freed slots' stale values,
  // which is unobservable: allocation resets heat to zero and every reader
  // filters on node >= 0. Resident pages see the identical single multiply.
  {
    float* heat_mut = allocator_.mutable_heat_column();
    const float decay = static_cast<float>(config_.heat_decay);
    const uint64_t n = allocator_.page_count();
    for (uint64_t id = 0; id < n; ++id) {
      heat_mut[id] *= decay;
    }
  }
  ++epoch_;

  sim_seconds_ += dt_seconds;
  EmitTickTelemetry(result, dt_seconds);
  EmitTickEvents(result, watermark_demoted);
  return result;
}

void TieredMemory::Attach(const Observers& observers) {
  if (observers.telemetry != telemetry_) {
    telemetry_ = observers.telemetry;
    // Cached handles point into the previous sink; re-resolve on first emit.
    handles_ = TickTelemetryHandles{};
    if (telemetry_ != nullptr) {
      telemetry_track_ = telemetry_->trace().Track("promotion-daemon");
    }
  }
  faults_ = observers.faults;
  policy_ = observers.policy != nullptr ? observers.policy : owned_policy_.get();
}

bool TieredMemory::QuarantinePage(PageId page) {
  if (page == kInvalidPage || page >= allocator_.page_count()) {
    return false;
  }
  if (!quarantined_.insert(page).second) {
    return false;  // Already quarantined.
  }
  // The heat reset (and possible eviction below) perturbs the (heat, id)
  // order the demotion pool was built on.
  cold_pool_valid_ = false;
  auto p = allocator_.page(page);
  p.heat = 0.0f;
  if (p.node >= 0 && IsTopTier(p.node)) {
    // Evict the poisoned page from the hot tier: it must not occupy DRAM
    // the daemon would otherwise give to healthy hot pages.
    const auto& platform = allocator_.platform();
    topology::NodeId target = -1;
    uint64_t best_free = 0;
    for (const auto& n : platform.nodes()) {
      if (n.kind == topology::NodeKind::kCxl && allocator_.FreePages(n.id) > best_free) {
        best_free = allocator_.FreePages(n.id);
        target = n.id;
      }
    }
    if (target >= 0 && allocator_.MovePage(page, target).ok()) {
      ++allocator_.mutable_counters().pgdemote;
    }
  }
  if (telemetry_ != nullptr) {
    telemetry_->GetCounter("tiering.quarantined_pages").Increment();
    // Stamped on the fault clock when one is attached (quarantine happens
    // mid-epoch, triggered by the caller's poison sample).
    const double t_ms = (faults_ != nullptr && faults_->enabled()) ? SecToMs(faults_->now_s())
                                                                   : SecToMs(sim_seconds_);
    const int32_t window =
        (faults_ != nullptr && faults_->enabled())
            ? faults_->ActiveWindowOf(fault::FaultType::kPoisonedCacheline)
            : telemetry::kNoWindow;
    telemetry_->events().Record(
        telemetry::Event(telemetry::EventKind::kPageDemote, t_ms)
            .WithWindow(window)
            .WithReason(2)
            .WithA(1.0)
            .WithB(BytesToMB(allocator_.page_bytes())));
  }
  return true;
}

void TieredMemory::EmitTickTelemetry(const TickResult& result, double dt_seconds) {
  if (telemetry_ == nullptr || dt_seconds <= 0.0) {
    return;
  }
  // Resolve all handles once, at the first emitting tick — every subsequent
  // tick appends through the cached pointers with no string lookups. Lazy so
  // a sink that never sees a tick registers nothing (as before).
  if (!handles_.attached) {
    telemetry::Timeline& timeline = telemetry_->timeline();
    handles_.hot_threshold = &timeline.Series("tiering.hot_threshold");
    handles_.candidates = &timeline.Series("tiering.candidates");
    handles_.promote_mbps = &timeline.Series("tiering.promote_mbps");
    handles_.demote_mbps = &timeline.Series("tiering.demote_mbps");
    handles_.rate_limit_saturation = &timeline.Series("tiering.rate_limit_saturation");
    handles_.low_tier_pages = &timeline.Series("tiering.low_tier_pages");
    handles_.reaccess_ratio = &timeline.Series("tiering.promote_reaccess_ratio");
    handles_.ping_pong = &timeline.Series("tiering.ping_pong_demotions");
    handles_.vmstat = AttachVmCounterSeries(timeline);
    handles_.ticks = &telemetry_->GetCounter("tiering.ticks");
    handles_.promoted_pages = &telemetry_->GetCounter("tiering.promoted_pages");
    handles_.demoted_pages = &telemetry_->GetCounter("tiering.demoted_pages");
    handles_.hot_threshold_gauge = &telemetry_->GetGauge("tiering.hot_threshold");
    handles_.rate_limit_saturation_gauge = &telemetry_->GetGauge("tiering.rate_limit_saturation");
    handles_.attached = true;
  }
  const double t_ms = SecToMs(sim_seconds_);
  const double page_bytes = static_cast<double>(allocator_.page_bytes());
  const double promote_mbps =
      static_cast<double>(result.promoted_pages) * page_bytes / static_cast<double>(kMB) / dt_seconds;
  const double demote_mbps =
      static_cast<double>(result.demoted_pages) * page_bytes / static_cast<double>(kMB) / dt_seconds;

  handles_.hot_threshold->Sample(t_ms, result.hot_threshold);
  handles_.candidates->Sample(t_ms, static_cast<double>(result.candidates));
  handles_.promote_mbps->Sample(t_ms, promote_mbps);
  handles_.demote_mbps->Sample(t_ms, demote_mbps);
  // How much of the kernel.numa_balancing_promote_rate_limit_MBps budget the
  // daemon consumed this tick (>= ~1.0 means it is promotion-rate bound —
  // the §4.2.2 thrashing precondition).
  const double saturation =
      config_.promote_rate_limit_mbps > 0.0 ? promote_mbps / config_.promote_rate_limit_mbps : 0.0;
  handles_.rate_limit_saturation->Sample(t_ms, saturation);
  handles_.low_tier_pages->Sample(t_ms, static_cast<double>(LowTierPages()));
  // Migration-outcome feedback, exposed so the diagnosis layer (and humans)
  // can see what the adaptive policy sees: the fraction of recently promoted
  // pages still being touched, and §4.2.3 ping-pong volume.
  const double reaccess =
      tick_recent_promoted_ > 0
          ? static_cast<double>(tick_recent_promoted_hot_) /
                static_cast<double>(tick_recent_promoted_)
          : 0.0;
  handles_.reaccess_ratio->Sample(t_ms, reaccess);
  handles_.ping_pong->Sample(t_ms, static_cast<double>(tick_ping_pong_));
  SampleVmCounters(handles_.vmstat, t_ms, allocator_.counters());

  handles_.ticks->Increment();
  handles_.promoted_pages->Add(result.promoted_pages);
  handles_.demoted_pages->Add(result.demoted_pages);
  handles_.hot_threshold_gauge->Set(result.hot_threshold);
  handles_.rate_limit_saturation_gauge->Set(saturation);

  telemetry_->trace().Span(
      telemetry_track_, "tick", t_ms - SecToMs(dt_seconds), SecToMs(dt_seconds),
      {{"promoted_pages", static_cast<double>(result.promoted_pages)},
       {"demoted_pages", static_cast<double>(result.demoted_pages)},
       {"hot_threshold", result.hot_threshold},
       {"migrated_mb", BytesToMBd(result.migrated_bytes)}});
}

void TieredMemory::EmitTickEvents(const TickResult& result, uint64_t watermark_demoted) {
  if (telemetry_ == nullptr) {
    return;
  }
  const double t_ms = SecToMs(sim_seconds_);
  const double page_mb = BytesToMB(allocator_.page_bytes());
  // Routine tiering activity attributes best-effort: the responsible window
  // while one is open, kNoWindow on healthy runs (promotion bursts matter
  // for the ping-pong detector even without faults).
  const int32_t window = (faults_ != nullptr && faults_->enabled())
                             ? faults_->AttributedWindow()
                             : telemetry::kNoWindow;
  if (result.candidates > 0 || result.promoted_pages > 0) {
    telemetry_->events().Record(
        telemetry::Event(telemetry::EventKind::kPagePromote, t_ms)
            .WithWindow(window)
            .WithReason(policy_->event_reason())
            .WithA(static_cast<double>(result.promoted_pages))
            .WithB(static_cast<double>(result.candidates)));
  }
  const uint64_t pressure_demoted = result.demoted_pages - watermark_demoted;
  if (pressure_demoted > 0) {
    telemetry_->events().Record(
        telemetry::Event(telemetry::EventKind::kPageDemote, t_ms)
            .WithWindow(window)
            .WithReason(0)
            .WithA(static_cast<double>(pressure_demoted))
            .WithB(static_cast<double>(pressure_demoted) * page_mb));
  }
  if (watermark_demoted > 0) {
    telemetry_->events().Record(
        telemetry::Event(telemetry::EventKind::kPageDemote, t_ms)
            .WithWindow(window)
            .WithReason(1)
            .WithA(static_cast<double>(watermark_demoted))
            .WithB(static_cast<double>(watermark_demoted) * page_mb));
  }
}

void DeclareTieringKnobs(KnobSet& knobs) {
  const TieringConfig defaults;
  knobs.Declare("kernel.numa_balancing_promote_rate_limit_MBps",
                defaults.promote_rate_limit_mbps,
                "maximum page promotion/demotion throughput (MB/s)");
  knobs.Declare("vm.hot_page_threshold", defaults.initial_hot_threshold,
                "sampled accesses per interval for a page to count as hot");
  knobs.Declare("vm.hot_threshold_auto_adjust", defaults.dynamic_threshold ? 1.0 : 0.0,
                "1 = adapt the hot threshold to the promotion rate limit");
  knobs.DeclareString("vm.tiering_policy", defaults.PolicyName(),
                      "promotion policy name, resolved through os::PolicyRegistry::BuiltIns()");
  knobs.Declare("vm.numa_balancing_mode", 0.0,
                "deprecated alias of vm.tiering_policy: 0 = hot page selection (v6.1+), "
                "1 = MRU NUMA balancing, 2 = TPP-like");
  knobs.Deprecate("vm.numa_balancing_mode",
                  "vm.numa_balancing_mode is deprecated; use vm.tiering_policy=<name> "
                  "(see docs/tiering-policies.md)");
  knobs.Declare("vm.demotion_free_watermark", defaults.demotion_free_watermark,
                "DRAM free fraction below which cold pages demote");
  knobs.Declare("vm.hint_fault_sample_rate", defaults.hint_fault_sample_rate,
                "fraction of real accesses observed by page-table scanning");
}

TieringConfig TieringConfigFromKnobs(const KnobSet& knobs) {
  TieringConfig cfg;
  auto get = [&](const char* key, double fallback) {
    return knobs.IsDeclared(key) ? knobs.Get(key) : fallback;
  };
  cfg.promote_rate_limit_mbps =
      get("kernel.numa_balancing_promote_rate_limit_MBps", cfg.promote_rate_limit_mbps);
  cfg.initial_hot_threshold = get("vm.hot_page_threshold", cfg.initial_hot_threshold);
  cfg.dynamic_threshold = get("vm.hot_threshold_auto_adjust", 1.0) != 0.0;
  // Policy selection: an *explicitly set* vm.numa_balancing_mode wins for
  // one release (deprecated-alias semantics — Set() already warned); else
  // the string knob selects by registry name. Both sides keep mode and
  // policy mirrored for the three classic names so legacy readers of
  // config.mode keep working.
  if (knobs.IsDeclared("vm.numa_balancing_mode") && knobs.WasSet("vm.numa_balancing_mode")) {
    const double mode = knobs.Get("vm.numa_balancing_mode");
    cfg.mode = mode >= 2.0   ? PromotionMode::kTppLike
               : mode >= 1.0 ? PromotionMode::kMruBalancing
                             : PromotionMode::kHotPageSelection;
    cfg.policy = PolicyNameForMode(cfg.mode);
  } else if (knobs.IsDeclaredString("vm.tiering_policy")) {
    cfg.policy = knobs.GetString("vm.tiering_policy");
    ModeForPolicyName(cfg.policy, &cfg.mode);
  }
  cfg.demotion_free_watermark = get("vm.demotion_free_watermark", cfg.demotion_free_watermark);
  cfg.hint_fault_sample_rate = get("vm.hint_fault_sample_rate", cfg.hint_fault_sample_rate);
  return cfg;
}

}  // namespace cxl::os
