// Tiered-memory management: hotness tracking + hot-page promotion daemon.
//
// Models the two kernel mechanisms the paper evaluates (§2.3):
//
//  1. NUMA balancing / hint-fault sampling: accesses are *sampled* (page
//     table scans + hint faults observe a fraction of real accesses) into a
//     per-page decayed heat counter.
//  2. Hot page selection with a Promotion Rate Limit
//     (kernel.numa_balancing_promote_rate_limit_MBps): each daemon tick
//     promotes the hottest low-tier (CXL) pages into DRAM, bounded by the
//     rate limit, demoting cold DRAM pages when DRAM is near-full. The hot
//     threshold can be adjusted dynamically to aim the candidate rate at the
//     rate limit — the very mechanism whose mis-adaptation causes the Spark
//     thrashing regression the paper reports (§4.2.2).
//
// *Which* pages promote, under what threshold and budget, is decided by a
// pluggable TieringPolicy (src/os/policy.h) resolved by name through the
// PolicyRegistry; TieredMemory owns the mechanisms (scans, migration,
// demotion pools, fault gates) and feeds the policy per-tick observations.
#ifndef CXL_EXPLORER_SRC_OS_TIERING_H_
#define CXL_EXPLORER_SRC_OS_TIERING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/fault/fault.h"
#include "src/os/page.h"
#include "src/os/page_allocator.h"
#include "src/os/policy.h"
#include "src/os/vmstat.h"
#include "src/telemetry/metrics.h"
#include "src/util/arena.h"
#include "src/util/knobs.h"
#include "src/topology/platform.h"

namespace cxl::os {

// Legacy three-way policy selector, kept one release as a configuration
// alias: TieringConfig::policy (a PolicyRegistry name) is the first-class
// selector, and an empty name falls back to this enum via
// PolicyNameForMode(). The former per-mode branches in Tick() now live in
// HotPageSelectionPolicy / MruBalancingPolicy / TppLikePolicy (§2.3):
//  - kHotPageSelection: the post-v6.1 patch — heat threshold (optionally
//    dynamic) + promotion rate limit. What the paper's experiments use.
//  - kMruBalancing: the earlier NUMA-balancing patch — promotes *recently
//    accessed* pages (MRU) with no hotness threshold. "It may not
//    accurately identify high-demand pages due to extended scanning
//    intervals, potentially causing latency issues for some workloads."
//  - kTppLike (Meta's Transparent Page Placement, §2.3/§8): promote a page
//    on its *second* observed access ("active list" promotion) with NO rate
//    limit. Responsive on stable hot sets, but under bandwidth-intensive or
//    streaming workloads it migrates without bound — the paper "faced
//    challenges with TPP when running memory-bandwidth-intensive
//    applications, resulting in unexplained performance degradation".
enum class PromotionMode {
  kHotPageSelection,
  kMruBalancing,
  kTppLike,
};

struct TieringConfig {
  // PolicyRegistry name of the promotion policy ("hot-page-selection",
  // "mru-balancing", "tpp-like", "adaptive-feedback"). Empty = derive from
  // the legacy `mode` enum below.
  std::string policy;
  // Deprecated alias for `policy` (one release): consulted only when
  // `policy` is empty.
  PromotionMode mode = PromotionMode::kHotPageSelection;
  // kernel.numa_balancing_promote_rate_limit_MBps. The kernel default is
  // 65536 (64 GiB/s, effectively unlimited); the paper's experiments ran the
  // post-v6.1 dynamic-threshold variant.
  double promote_rate_limit_mbps = 65536.0;
  // Initial hot threshold in (sampled) accesses per daemon interval.
  double initial_hot_threshold = 4.0;
  // Dynamically adjust the threshold to match promotion candidates to the
  // rate limit (the "hot page selection" patch behaviour).
  bool dynamic_threshold = true;
  // Exponential decay applied to page heat each tick.
  double heat_decay = 0.5;
  // Demote cold DRAM pages when DRAM free fraction falls below this.
  double demotion_free_watermark = 0.02;
  // Fraction of real accesses observed by hint-fault sampling.
  double hint_fault_sample_rate = 0.05;

  // The effective PolicyRegistry name (policy, or the mode-derived name).
  const char* PolicyName() const;
};

// Declares the sysctl-style knobs that mirror this config in `knobs`
// (kernel.numa_balancing_promote_rate_limit_MBps, vm.tiering_policy, ...).
// vm.numa_balancing_mode remains declared as a deprecated numeric alias of
// vm.tiering_policy; setting it warns once per KnobSet.
void DeclareTieringKnobs(KnobSet& knobs);

// Builds a TieringConfig from declared knob values (knobs not declared fall
// back to TieringConfig defaults). An explicitly set vm.numa_balancing_mode
// overrides vm.tiering_policy for one release (deprecated-alias semantics).
TieringConfig TieringConfigFromKnobs(const KnobSet& knobs);

class TieredMemory {
 public:
  TieredMemory(PageAllocator& allocator, TieringConfig config);

  // Feeds `accesses` real accesses to `page` into the (sampled) heat
  // counter. Called by application models once per simulation step per page
  // group.
  void RecordAccess(PageId page, uint64_t accesses);

  // Runs one daemon interval covering `dt_seconds` of simulated time.
  struct TickResult {
    uint64_t promoted_pages = 0;
    uint64_t demoted_pages = 0;
    double migrated_bytes = 0.0;   // Promotion + demotion traffic.
    double hot_threshold = 0.0;    // Threshold in effect after adjustment.
    uint64_t candidates = 0;       // Hot low-tier pages seen this tick.
  };
  TickResult Tick(double dt_seconds);

  // Everything the daemon reports to or consults besides the allocator,
  // attached in one call so future sinks extend the struct instead of each
  // growing another setter. All fields are nullable (detach by attaching a
  // default-constructed Observers) and purely optional:
  //  - telemetry: every subsequent Tick() appends the daemon's state into
  //    the sink — time series (tiering.hot_threshold, promote/demote rates,
  //    rate-limit saturation, vmstat.* counters), counters/gauges, and one
  //    span per tick on the "promotion-daemon" trace track, stamped on an
  //    internal simulated clock (the sum of dt_seconds). Attaching must not
  //    change promotion behaviour.
  //  - faults: read at each Tick(): while a kDaemonStall event covers the
  //    injector's clock the tick does no scanning, promotion, or decay (the
  //    kernel thread is wedged), and repeated promotion failures on the
  //    degraded path arm an exponential backoff of skipped ticks (capped by
  //    FaultTunables::backoff_max_ticks). With a null or disabled injector
  //    every tick behaves exactly as before — byte-identical runs.
  //  - policy: overrides the config-constructed policy with a caller-owned
  //    instance (must outlive the daemon) — how tests and benches inspect
  //    learned policy state after a run. Null keeps the owned policy.
  // Re-attaching with an unchanged telemetry pointer keeps the cached
  // metric handles and trace track (so repeated Attach calls are free).
  struct Observers {
    telemetry::MetricRegistry* telemetry = nullptr;
    const fault::FaultInjector* faults = nullptr;
    TieringPolicy* policy = nullptr;
  };
  void Attach(const Observers& observers);

  // Degraded-path quarantine: takes `page` out of promotion consideration
  // permanently and demotes it to the low tier if it currently sits in
  // DRAM (a poisoned cacheline must not be re-promoted into the hot set).
  // Returns true when the page was newly quarantined. Only the fault paths
  // call this; healthy runs keep the set empty.
  bool QuarantinePage(PageId page);
  uint64_t QuarantinedPages() const { return quarantined_.size(); }

  // Remaining ticks of promotion-failure backoff (tests/telemetry).
  int BackoffTicksRemaining() const { return backoff_ticks_remaining_; }

  // DRAM nodes are the top tier; CXL nodes the low tier (§2.3).
  bool IsTopTier(topology::NodeId node) const;

  double hot_threshold() const { return policy_->hot_threshold(); }
  const TieringConfig& config() const { return config_; }
  PageAllocator& allocator() { return allocator_; }

  // The active decision policy (the attached override, else the owned one).
  TieringPolicy& policy() { return *policy_; }
  const TieringPolicy& policy() const { return *policy_; }

  // Pages currently resident on low-tier nodes (for tests/telemetry).
  uint64_t LowTierPages() const;

 private:
  // Demotes up to `count` of the coldest DRAM pages to make room. Returns
  // pages actually demoted.
  uint64_t DemoteColdPages(uint64_t count);

  // Rebuilds cold_pool_ with the `k` coldest DRAM-resident pages (ascending
  // (heat, id) order) and resets the consumption cursor.
  void BuildColdPool(uint64_t k);

  // Appends one tick's worth of telemetry (no-op without a sink).
  void EmitTickTelemetry(const TickResult& result, double dt_seconds);

  // Appends this tick's structured events (page_promote / page_demote with
  // reason codes); no-op without a sink. `watermark_demoted` is the portion
  // of result.demoted_pages freed by the watermark branch rather than by
  // DRAM pressure inside the promotion loop.
  void EmitTickEvents(const TickResult& result, uint64_t watermark_demoted);

  PageAllocator& allocator_;
  TieringConfig config_;
  uint32_t epoch_ = 0;  // Scan interval counter (recency stamps).

  // Decision policy: owned instance built from config_ at construction;
  // policy_ points at it unless Attach() supplied an override.
  std::unique_ptr<TieringPolicy> owned_policy_;
  TieringPolicy* policy_ = nullptr;

  // Migration-outcome bookkeeping feeding TickObservation (observational
  // only — never consulted by the mechanisms themselves):
  // promote-epoch stamp per page, epoch_ + 1 at promotion time (0 = never
  // promoted), so a demotion or re-access of a recently promoted page is
  // recognisable within the stamp window.
  std::vector<uint32_t> promote_epoch_;
  uint64_t tick_ping_pong_ = 0;             // Demotions of recently promoted pages.
  uint64_t tick_recent_promoted_ = 0;       // Recently promoted pages seen in DRAM.
  uint64_t tick_recent_promoted_hot_ = 0;   // ...of those, re-accessed this interval.

  // Per-tick transients (candidate lists, demotion selection heaps) bump-
  // allocate here; Reset() at each Tick() entry recycles the blocks, so
  // steady-state ticks do no heap allocation.
  Arena tick_arena_;

  // Demotion cold pool: the coldest DRAM pages in ascending (heat, id)
  // order, built by one scan and consumed across the several DemoteColdPages
  // calls a single Tick makes (heat is constant within a tick, so the
  // remaining pool entries stay the exact k-smallest of the shrinking DRAM
  // set). Invalidated at every tick start (decay/access change heat) and
  // whenever a page enters DRAM whose (heat, id) sorts at or below the
  // pool's floor — such a page would belong in the pool (cheap test, rare:
  // promoted pages are hot by construction).
  std::vector<std::pair<float, PageId>> cold_pool_;
  size_t cold_pool_next_ = 0;
  bool cold_pool_valid_ = false;
  bool cold_pool_complete_ = false;  // Pool covered the whole DRAM set.
  std::pair<float, PageId> cold_pool_floor_{0.0f, 0};

  // Telemetry (observational only).
  telemetry::MetricRegistry* telemetry_ = nullptr;
  telemetry::TraceBuffer::TrackId telemetry_track_ = 0;
  double sim_seconds_ = 0.0;  // Sum of Tick() dt_seconds.
  // Cached metric/series handles, resolved lazily at the first emitting tick
  // (so attaching a sink without ever ticking registers nothing, exactly as
  // the by-name path behaved).
  struct TickTelemetryHandles {
    bool attached = false;
    telemetry::TimeSeries* hot_threshold = nullptr;
    telemetry::TimeSeries* candidates = nullptr;
    telemetry::TimeSeries* promote_mbps = nullptr;
    telemetry::TimeSeries* demote_mbps = nullptr;
    telemetry::TimeSeries* rate_limit_saturation = nullptr;
    telemetry::TimeSeries* low_tier_pages = nullptr;
    telemetry::TimeSeries* reaccess_ratio = nullptr;
    telemetry::TimeSeries* ping_pong = nullptr;
    VmCounterSeries vmstat;
    telemetry::Counter* ticks = nullptr;
    telemetry::Counter* promoted_pages = nullptr;
    telemetry::Counter* demoted_pages = nullptr;
    telemetry::Gauge* hot_threshold_gauge = nullptr;
    telemetry::Gauge* rate_limit_saturation_gauge = nullptr;
  };
  TickTelemetryHandles handles_;

  // Fault handling (inert unless an enabled injector is attached).
  const fault::FaultInjector* faults_ = nullptr;
  std::unordered_set<PageId> quarantined_;
  int promotion_failure_streak_ = 0;
  int backoff_ticks_remaining_ = 0;
};

}  // namespace cxl::os

#endif  // CXL_EXPLORER_SRC_OS_TIERING_H_
