#include "src/os/vmstat.h"

#include <iomanip>
#include <sstream>
#include "src/util/units.h"

namespace cxl::os {

void PrintVmCounters(std::ostream& os, const VmCounters& counters) {
  os << "pgalloc " << counters.pgalloc << "\n";
  os << "pgfree " << counters.pgfree << "\n";
  os << "pgpromote_success " << counters.pgpromote_success << "\n";
  os << "pgpromote_candidate " << counters.pgpromote_candidate << "\n";
  os << "pgdemote " << counters.pgdemote << "\n";
  os << "numa_hint_faults " << counters.numa_hint_faults << "\n";
  os << "migrate_failed " << counters.migrate_failed << "\n";
  os << "promote_rate_limited " << counters.promote_rate_limited << "\n";
}

void PrintNodeOccupancy(std::ostream& os, const PageAllocator& allocator) {
  const auto& platform = allocator.platform();
  for (const auto& n : platform.nodes()) {
    const uint64_t total = allocator.TotalPages(n.id);
    const uint64_t used = allocator.UsedPages(n.id);
    const double used_gib = BytesToGiB(used * allocator.page_bytes());
    const double total_gib = BytesToGiB(total * allocator.page_bytes());
    os << "node " << n.id << " (" << n.name << "): " << std::fixed << std::setprecision(1)
       << used_gib << " / " << total_gib << " GiB used ("
       << (total == 0 ? 0.0 : 100.0 * static_cast<double>(used) / static_cast<double>(total))
       << "%)\n";
  }
}

std::string VmstatReport(const PageAllocator& allocator) {
  std::ostringstream os;
  PrintVmCounters(os, allocator.counters());
  PrintNodeOccupancy(os, allocator);
  return os.str();
}

void SampleVmCounters(telemetry::Timeline& timeline, double t_ms, const VmCounters& counters) {
  const auto sample = [&](const char* name, uint64_t value) {
    timeline.Sample(std::string("vmstat.") + name, t_ms, static_cast<double>(value));
  };
  sample("pgalloc", counters.pgalloc);
  sample("pgfree", counters.pgfree);
  sample("pgpromote_success", counters.pgpromote_success);
  sample("pgpromote_candidate", counters.pgpromote_candidate);
  sample("pgdemote", counters.pgdemote);
  sample("numa_hint_faults", counters.numa_hint_faults);
  sample("migrate_failed", counters.migrate_failed);
  sample("promote_rate_limited", counters.promote_rate_limited);
}

VmCounterSeries AttachVmCounterSeries(telemetry::Timeline& timeline) {
  VmCounterSeries s;
  s.pgalloc = &timeline.Series("vmstat.pgalloc");
  s.pgfree = &timeline.Series("vmstat.pgfree");
  s.pgpromote_success = &timeline.Series("vmstat.pgpromote_success");
  s.pgpromote_candidate = &timeline.Series("vmstat.pgpromote_candidate");
  s.pgdemote = &timeline.Series("vmstat.pgdemote");
  s.numa_hint_faults = &timeline.Series("vmstat.numa_hint_faults");
  s.migrate_failed = &timeline.Series("vmstat.migrate_failed");
  s.promote_rate_limited = &timeline.Series("vmstat.promote_rate_limited");
  return s;
}

void SampleVmCounters(const VmCounterSeries& series, double t_ms, const VmCounters& counters) {
  // Same series, same order as the by-name overload.
  series.pgalloc->Sample(t_ms, static_cast<double>(counters.pgalloc));
  series.pgfree->Sample(t_ms, static_cast<double>(counters.pgfree));
  series.pgpromote_success->Sample(t_ms, static_cast<double>(counters.pgpromote_success));
  series.pgpromote_candidate->Sample(t_ms, static_cast<double>(counters.pgpromote_candidate));
  series.pgdemote->Sample(t_ms, static_cast<double>(counters.pgdemote));
  series.numa_hint_faults->Sample(t_ms, static_cast<double>(counters.numa_hint_faults));
  series.migrate_failed->Sample(t_ms, static_cast<double>(counters.migrate_failed));
  series.promote_rate_limited->Sample(t_ms, static_cast<double>(counters.promote_rate_limited));
}

}  // namespace cxl::os
