// /proc/vmstat-style reporting for the tiering counters: renders VmCounters
// (and per-node occupancy) the way an operator would read them on a real
// tiered-memory host.
#ifndef CXL_EXPLORER_SRC_OS_VMSTAT_H_
#define CXL_EXPLORER_SRC_OS_VMSTAT_H_

#include <ostream>
#include <string>

#include "src/os/page_allocator.h"
#include "src/telemetry/timeline.h"

namespace cxl::os {

// Writes "pgpromote_success 123"-style lines for every counter.
void PrintVmCounters(std::ostream& os, const VmCounters& counters);

// Writes a numactl --hardware-style per-node occupancy table for the
// allocator's platform.
void PrintNodeOccupancy(std::ostream& os, const PageAllocator& allocator);

// Both of the above as one string (convenient for logs and tests).
std::string VmstatReport(const PageAllocator& allocator);

// Machine-readable companion of PrintVmCounters: appends every counter into
// `timeline` at simulated time `t_ms` as series "vmstat.<counter>". Sampled
// at daemon ticks, these are the promotion time series the paper reads off
// /proc/vmstat to explain the Spark thrashing regression (§4.2.2).
void SampleVmCounters(telemetry::Timeline& timeline, double t_ms, const VmCounters& counters);

}  // namespace cxl::os

#endif  // CXL_EXPLORER_SRC_OS_VMSTAT_H_
