// /proc/vmstat-style reporting for the tiering counters: renders VmCounters
// (and per-node occupancy) the way an operator would read them on a real
// tiered-memory host.
#ifndef CXL_EXPLORER_SRC_OS_VMSTAT_H_
#define CXL_EXPLORER_SRC_OS_VMSTAT_H_

#include <ostream>
#include <string>

#include "src/os/page_allocator.h"
#include "src/telemetry/timeline.h"

namespace cxl::os {

// Writes "pgpromote_success 123"-style lines for every counter.
void PrintVmCounters(std::ostream& os, const VmCounters& counters);

// Writes a numactl --hardware-style per-node occupancy table for the
// allocator's platform.
void PrintNodeOccupancy(std::ostream& os, const PageAllocator& allocator);

// Both of the above as one string (convenient for logs and tests).
std::string VmstatReport(const PageAllocator& allocator);

// Machine-readable companion of PrintVmCounters: appends every counter into
// `timeline` at simulated time `t_ms` as series "vmstat.<counter>". Sampled
// at daemon ticks, these are the promotion time series the paper reads off
// /proc/vmstat to explain the Spark thrashing regression (§4.2.2).
void SampleVmCounters(telemetry::Timeline& timeline, double t_ms, const VmCounters& counters);

// Cached series handles for per-tick sampling: one name lookup per series at
// attach time instead of eight string lookups per daemon tick. Handles stay
// valid for the Timeline's lifetime (series are pointer-stable map nodes).
struct VmCounterSeries {
  telemetry::TimeSeries* pgalloc = nullptr;
  telemetry::TimeSeries* pgfree = nullptr;
  telemetry::TimeSeries* pgpromote_success = nullptr;
  telemetry::TimeSeries* pgpromote_candidate = nullptr;
  telemetry::TimeSeries* pgdemote = nullptr;
  telemetry::TimeSeries* numa_hint_faults = nullptr;
  telemetry::TimeSeries* migrate_failed = nullptr;
  telemetry::TimeSeries* promote_rate_limited = nullptr;
};
VmCounterSeries AttachVmCounterSeries(telemetry::Timeline& timeline);
void SampleVmCounters(const VmCounterSeries& series, double t_ms, const VmCounters& counters);

}  // namespace cxl::os

#endif  // CXL_EXPLORER_SRC_OS_VMSTAT_H_
