#include "src/pool/memory_pool.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace cxl::pool {

CxlMemoryPool::CxlMemoryPool(PoolConfig config)
    : config_(config), total_slices_(config.capacity_bytes / config.slice_bytes) {}

Status CxlMemoryPool::Acquire(HostId host, uint64_t bytes) {
  if (host < 0 || host >= config_.max_hosts) {
    return Status::InvalidArgument("host id out of range (CXL 2.0: up to 16 hosts)");
  }
  const uint64_t slices = (bytes + config_.slice_bytes - 1) / config_.slice_bytes;
  if (slices > total_slices_ - used_slices_) {
    ++acquire_failures_;
    return Status::ResourceExhausted("pool exhausted");
  }
  const auto host_cap = static_cast<uint64_t>(config_.per_host_capacity_fraction *
                                              static_cast<double>(total_slices_));
  // Read-only lookup: operator[] here would insert a zero-lease entry for a
  // host whose request is about to be denied, and ActiveHosts() would then
  // count hosts that never held a slice (the phantom-lease bug).
  const auto it = leased_slices_.find(host);
  const uint64_t held = it == leased_slices_.end() ? 0 : it->second;
  if (held + slices > host_cap) {
    ++acquire_failures_;
    return Status::ResourceExhausted("per-host capacity cap reached");
  }
  leased_slices_[host] += slices;
  used_slices_ += slices;
  return Status::Ok();
}

Status CxlMemoryPool::Release(HostId host, uint64_t bytes) {
  auto it = leased_slices_.find(host);
  if (it == leased_slices_.end() || it->second == 0) {
    return Status::FailedPrecondition("host holds no lease");
  }
  const uint64_t slices =
      std::min<uint64_t>((bytes + config_.slice_bytes - 1) / config_.slice_bytes, it->second);
  it->second -= slices;
  used_slices_ -= slices;
  if (it->second == 0) {
    leased_slices_.erase(it);
  }
  return Status::Ok();
}

void CxlMemoryPool::ReleaseAll(HostId host) {
  auto it = leased_slices_.find(host);
  if (it != leased_slices_.end()) {
    used_slices_ -= it->second;
    leased_slices_.erase(it);
  }
}

uint64_t CxlMemoryPool::LeasedBytes(HostId host) const {
  auto it = leased_slices_.find(host);
  return it == leased_slices_.end() ? 0 : it->second * config_.slice_bytes;
}

int CxlMemoryPool::ActiveHosts() const { return static_cast<int>(leased_slices_.size()); }

const mem::PathProfile& PooledCxlProfile() {
  // Local ASIC CXL + one switch hop each way on the idle latency. Built once
  // by shifting the calibrated curve.
  static const mem::PathProfile pooled = [] {
    const mem::PathProfile& base = mem::GetProfile(mem::MemoryPath::kLocalCxl);
    // Shift idle latency by re-deriving a profile whose latency law adds the
    // hop; bandwidth law unchanged. WithBandwidthScale(1.0) copies, and the
    // queue model reads idle from the profile, so express the hop by
    // composing at call sites is clumsy — instead rebuild params here.
    mem::PathProfile::Params p;
    p.name = "CXL-pooled";
    p.idle_ns_by_read_fraction = mem::PiecewiseLinear(
        {{0.0, base.IdleLatencyNs(mem::AccessMix::WriteOnly()) + 2 * kCxlSwitchHopNs},
         {1.0, base.IdleLatencyNs(mem::AccessMix::ReadOnly()) + 2 * kCxlSwitchHopNs}});
    p.peak_gbps_by_read_fraction = mem::PiecewiseLinear(
        {{0.0, base.PeakBandwidthGBps(mem::AccessMix::WriteOnly())},
         {0.25, base.PeakBandwidthGBps(mem::AccessMix{0.25, true})},
         {0.5, base.PeakBandwidthGBps(mem::AccessMix{0.5, true})},
         {2.0 / 3.0, base.PeakBandwidthGBps(mem::AccessMix::Ratio(2, 1))},
         {0.75, base.PeakBandwidthGBps(mem::AccessMix{0.75, true})},
         {1.0, base.PeakBandwidthGBps(mem::AccessMix::ReadOnly())}});
    p.queue_scale = 0.12;  // The switch adds a queueing stage.
    p.knee_sharpness_read = 4.5;
    p.knee_sharpness_write = 3.0;
    p.overload_droop = 0.05;
    p.random_bandwidth_factor = 0.99;
    p.random_latency_factor = 1.01;
    return mem::PathProfile(std::move(p));
  }();
  return pooled;
}

double PercentileCeilRank(std::vector<double>& samples, double q) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const auto n = samples.size();
  // Ceil-rank: the smallest sample v[k] with at least q*n samples <= v[k].
  // The previous floor-rank index truncated q*(n-1), returning a quantile
  // strictly below the requested one whenever q*n was not integral — sizing
  // against it under-provisions the "must not run out more often than q"
  // contract (e.g. n=150, q=0.99 picked rank 148/150 = 98.67% coverage).
  const double rank = std::ceil(q * static_cast<double>(n));
  const size_t idx = rank <= 1.0 ? 0 : std::min(n - 1, static_cast<size_t>(rank) - 1);
  return samples[idx];
}

PoolingEconomicsResult EstimatePoolingEconomics(const PoolingEconomicsConfig& config) {
  Rng rng(config.seed);
  const double sigma = config.mean_demand_gib * config.demand_cv;

  std::vector<double> per_host_samples;
  per_host_samples.reserve(static_cast<size_t>(config.scenarios) *
                           static_cast<size_t>(config.hosts));
  std::vector<double> sum_samples;
  sum_samples.reserve(static_cast<size_t>(config.scenarios));

  for (int s = 0; s < config.scenarios; ++s) {
    double sum = 0.0;
    for (int h = 0; h < config.hosts; ++h) {
      const double d = std::max(0.0, rng.NextGaussian(config.mean_demand_gib, sigma));
      per_host_samples.push_back(d);
      sum += d;
    }
    sum_samples.push_back(sum);
  }

  PoolingEconomicsResult result;
  result.per_host_provision_gib = PercentileCeilRank(per_host_samples, config.percentile);
  result.pooled_provision_gib = PercentileCeilRank(sum_samples, config.percentile);
  const double standalone_total = result.per_host_provision_gib * config.hosts;
  result.capacity_saving =
      standalone_total > 0.0 ? 1.0 - result.pooled_provision_gib / standalone_total : 0.0;
  return result;
}

PoolChurnResult SimulatePoolChurn(CxlMemoryPool& pool, const PoolChurnConfig& config) {
  Rng rng(config.seed);
  PoolChurnResult result;
  std::vector<double> demand_gib(static_cast<size_t>(config.hosts), config.mean_demand_gib);
  const double sigma = config.mean_demand_gib * config.demand_cv;
  uint64_t denied = 0;
  double util_sum = 0.0;
  for (int step = 0; step < config.steps; ++step) {
    const auto host = static_cast<HostId>(rng.NextBounded(static_cast<uint64_t>(config.hosts)));
    auto& d = demand_gib[static_cast<size_t>(host)];
    const double shock = std::max(0.0, rng.NextGaussian(config.mean_demand_gib, sigma));
    d = config.demand_inertia * d + (1.0 - config.demand_inertia) * shock;
    const auto target = static_cast<uint64_t>(d * static_cast<double>(1ull << 30));
    const uint64_t held = pool.LeasedBytes(host);
    if (target > held) {
      ++result.grow_requests;
      denied += pool.Acquire(host, target - held).ok() ? 0 : 1;
    } else if (held > target) {
      (void)pool.Release(host, held - target);
    }
    util_sum += pool.Utilization();
    result.peak_utilization = std::max(result.peak_utilization, pool.Utilization());
  }
  result.mean_utilization = config.steps > 0 ? util_sum / config.steps : 0.0;
  result.denial_rate = result.grow_requests > 0
                           ? static_cast<double>(denied) / static_cast<double>(result.grow_requests)
                           : 0.0;
  return result;
}

}  // namespace cxl::pool
