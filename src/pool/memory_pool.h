// CXL 2.0 memory pooling — the §7.1 "future generations" extension.
//
// CXL 2.0 lets a Type-3 device be partitioned into multiple logical devices
// shared by up to 16 hosts through a CXL switch. This module provides:
//
//  - CxlMemoryPool: slice-granular capacity bookkeeping with per-host
//    leases (acquire / grow / release), the mechanism a pool manager needs;
//  - PooledCxlProfile(): the performance law of pooled (switched) CXL —
//    the local-CXL ASIC curve plus a switch hop (§7.1's latency trade-off);
//  - PoolingEconomics: Monte-Carlo estimate of how much total memory a
//    pooled deployment saves versus per-host peak provisioning (the
//    statistical-multiplexing argument behind disaggregation's cost story).
#ifndef CXL_EXPLORER_SRC_POOL_MEMORY_POOL_H_
#define CXL_EXPLORER_SRC_POOL_MEMORY_POOL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/mem/profiles.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace cxl::pool {

using HostId = int;

struct PoolConfig {
  uint64_t capacity_bytes = kTiB;
  // Allocation granularity (CXL 2.0 partitions are coarse).
  uint64_t slice_bytes = kGiB;
  // CXL 2.0 supports up to 16 hosts behind one switch.
  int max_hosts = 16;
  // Cap on any single host's share of the pool (fairness guard; 1.0 = none).
  double per_host_capacity_fraction = 1.0;
};

// Slice-granular pool with per-host leases.
class CxlMemoryPool {
 public:
  explicit CxlMemoryPool(PoolConfig config);

  // Leases at least `bytes` (rounded up to slices) to `host`. Fails with
  // RESOURCE_EXHAUSTED when the pool (or the host's cap) cannot satisfy it,
  // INVALID_ARGUMENT for an out-of-range host.
  Status Acquire(HostId host, uint64_t bytes);

  // Returns `bytes` (rounded up to whole slices, clamped to the lease).
  Status Release(HostId host, uint64_t bytes);

  // Releases everything held by `host`.
  void ReleaseAll(HostId host);

  uint64_t LeasedBytes(HostId host) const;
  uint64_t FreeBytes() const { return (total_slices_ - used_slices_) * config_.slice_bytes; }
  uint64_t UsedBytes() const { return used_slices_ * config_.slice_bytes; }
  double Utilization() const {
    return total_slices_ == 0 ? 0.0
                              : static_cast<double>(used_slices_) / static_cast<double>(total_slices_);
  }
  int ActiveHosts() const;
  const PoolConfig& config() const { return config_; }

  // Telemetry counters.
  uint64_t acquire_failures() const { return acquire_failures_; }

 private:
  PoolConfig config_;
  uint64_t total_slices_;
  uint64_t used_slices_ = 0;
  std::map<HostId, uint64_t> leased_slices_;
  uint64_t acquire_failures_ = 0;
};

// Performance law of pooled CXL: the local ASIC profile with one switch hop
// added to the idle latency (CXL 2.0 switch ~ tens of ns each way) and the
// device bandwidth shared by its hosts (the solver handles sharing; the
// profile only carries latency).
const mem::PathProfile& PooledCxlProfile();
inline constexpr double kCxlSwitchHopNs = 70.0;

// Statistical-multiplexing economics of pooling.
struct PoolingEconomicsConfig {
  int hosts = 16;
  // Per-host memory demand: mean and coefficient of variation (lognormal-ish
  // via clamped Gaussian draws).
  double mean_demand_gib = 512.0;
  double demand_cv = 0.35;
  // Provisioning percentile (hosts must not run out more often than this).
  double percentile = 0.99;
  int scenarios = 20'000;
  uint64_t seed = 1;
};

struct PoolingEconomicsResult {
  // GiB each host must provision stand-alone (per-host percentile demand).
  double per_host_provision_gib = 0.0;
  // GiB of pooled capacity for the same percentile on the *sum* demand.
  double pooled_provision_gib = 0.0;
  // 1 - pooled / (hosts * per_host): the DRAM the pool saves.
  double capacity_saving = 0.0;
};

// Ceil-rank empirical quantile: sorts `samples` in place and returns the
// smallest sample v such that at least ceil(q * n) of the n samples are <= v.
// This is the conservative direction the provisioning contract needs — a
// floor-rank index returns a quantile <= the requested one and under-sizes.
double PercentileCeilRank(std::vector<double>& samples, double q);

// Monte-Carlo: draws per-host demands, compares per-host vs pooled
// percentile provisioning.
PoolingEconomicsResult EstimatePoolingEconomics(const PoolingEconomicsConfig& config);

// Time-stepped pool churn simulator: hosts track AR(1)-smoothed demand
// targets and grow/shrink their leases each step. Quantifies the denial
// rate and utilization a given pool size actually delivers (the check
// behind a percentile-based sizing).
struct PoolChurnConfig {
  int hosts = 16;
  double mean_demand_gib = 192.0;
  double demand_cv = 0.5;
  // AR(1) smoothing of each host's demand target (0 = iid per step,
  // 1 = frozen).
  double demand_inertia = 0.6;
  int steps = 5000;
  uint64_t seed = 1;
};

struct PoolChurnResult {
  double mean_utilization = 0.0;
  double peak_utilization = 0.0;
  // Fraction of grow-requests the pool had to deny.
  double denial_rate = 0.0;
  uint64_t grow_requests = 0;
};

PoolChurnResult SimulatePoolChurn(CxlMemoryPool& pool, const PoolChurnConfig& config);

}  // namespace cxl::pool

#endif  // CXL_EXPLORER_SRC_POOL_MEMORY_POOL_H_
