#include "src/pool/rack.h"

#include <algorithm>

namespace cxl::pool {

const char* RackTopologyName(RackTopology topology) {
  switch (topology) {
    case RackTopology::kFlat:
      return "flat";
    case RackTopology::kStar:
      return "star";
    case RackTopology::kMesh:
      return "mesh";
  }
  return "flat";
}

StatusOr<RackTopology> ParseRackTopology(std::string_view name) {
  if (name == "flat") {
    return RackTopology::kFlat;
  }
  if (name == "star") {
    return RackTopology::kStar;
  }
  if (name == "mesh") {
    return RackTopology::kMesh;
  }
  return Status::InvalidArgument("unknown rack topology (flat|star|mesh): " + std::string(name));
}

Rack::Rack(const RackConfig& config) : config_(config) {
  PoolConfig pool_cfg;
  pool_cfg.capacity_bytes = config_.expander_capacity_bytes;
  pool_cfg.slice_bytes = config_.slice_bytes;
  // The pool's host-id range must admit every rack host (CXL 2.0's 16-host
  // bound applies per expander port group; the rack fans hosts across
  // expanders, so size the range to the rack).
  pool_cfg.max_hosts = std::max(16, config_.hosts);
  pool_cfg.per_host_capacity_fraction = config_.per_host_capacity_fraction;
  expanders_.reserve(static_cast<size_t>(config_.expanders));
  for (int e = 0; e < config_.expanders; ++e) {
    expanders_.emplace_back(pool_cfg);
  }

  hops_.assign(static_cast<size_t>(config_.hosts),
               std::vector<int>(static_cast<size_t>(config_.expanders), 0));
  reachable_.assign(static_cast<size_t>(config_.hosts), {});
  for (int h = 0; h < config_.hosts; ++h) {
    const int home = config_.expanders > 0 ? h % config_.expanders : 0;
    for (int e = 0; e < config_.expanders; ++e) {
      switch (config_.topology) {
        case RackTopology::kFlat:
          hops_[static_cast<size_t>(h)][static_cast<size_t>(e)] = 1;
          break;
        case RackTopology::kStar:
          hops_[static_cast<size_t>(h)][static_cast<size_t>(e)] = e == home ? 1 : 0;
          break;
        case RackTopology::kMesh:
          hops_[static_cast<size_t>(h)][static_cast<size_t>(e)] = e == home ? 1 : 2;
          break;
      }
    }
    // Nearest-first, index ascending within a hop class: the home expander
    // (if any) leads, then the rest in id order.
    auto& order = reachable_[static_cast<size_t>(h)];
    for (int hop = 1; hop <= 2; ++hop) {
      for (int e = 0; e < config_.expanders; ++e) {
        if (hops_[static_cast<size_t>(h)][static_cast<size_t>(e)] == hop) {
          order.push_back(e);
        }
      }
    }
  }
}

int Rack::MinHops(int host) const {
  const auto& order = reachable_[static_cast<size_t>(host)];
  return order.empty() ? 0 : SwitchHops(host, order.front());
}

uint64_t Rack::HostLeasedBytes(int host) const {
  uint64_t total = 0;
  for (const CxlMemoryPool& pool : expanders_) {
    total += pool.LeasedBytes(host);
  }
  return total;
}

double Rack::MeanLeaseHops(int host) const {
  uint64_t bytes = 0;
  uint64_t weighted = 0;
  for (int e = 0; e < config_.expanders; ++e) {
    const uint64_t lease = expanders_[static_cast<size_t>(e)].LeasedBytes(host);
    bytes += lease;
    weighted += lease * static_cast<uint64_t>(SwitchHops(host, e));
  }
  return bytes == 0 ? 0.0 : static_cast<double>(weighted) / static_cast<double>(bytes);
}

uint64_t Rack::TotalCapacityBytes() const {
  return static_cast<uint64_t>(config_.expanders) * config_.expander_capacity_bytes;
}

uint64_t Rack::TotalUsedBytes() const {
  uint64_t total = 0;
  for (const CxlMemoryPool& pool : expanders_) {
    total += pool.UsedBytes();
  }
  return total;
}

uint64_t Rack::TotalFreeBytes() const { return TotalCapacityBytes() - TotalUsedBytes(); }

double Rack::Utilization() const {
  const uint64_t capacity = TotalCapacityBytes();
  return capacity == 0 ? 0.0
                       : static_cast<double>(TotalUsedBytes()) / static_cast<double>(capacity);
}

}  // namespace cxl::pool
