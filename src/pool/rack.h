// Rack-scale CXL memory pooling: N hosts sharing M expanders through a
// switch fabric — the dynamic system behind the §7.1 pooling story.
//
// A Rack owns one CxlMemoryPool per expander (slice-granular per-host
// leases) plus the connectivity the fabric topology implies. The topologies
// mirror the system-level expander exploration of the CXL simulators the
// roadmap cites (CXLRAMSim; CXLMemSim's flat/star/mesh comparison):
//
//   - kFlat: one shared switch — every host reaches every expander at one
//     hop. Maximal multiplexing, zero stranding, every access pays the
//     switch latency.
//   - kStar: expanders are dedicated per host group (host h reaches only
//     expander h % M). No sharing across groups, so free capacity in one
//     group is *stranded* while another group starves — the configuration
//     pooling exists to beat.
//   - kMesh: host h's home expander is one hop away; the others are
//     reachable through a second switch stage at an extra 2×hop latency.
//     Sharing survives, nearest-first placement keeps most traffic cheap.
//
// Layering: rack sits on memory_pool (lease bookkeeping) and mem
// (PooledCxlProfile supplies the performance law per expander); the
// scheduler (scheduler.h) drives leases over simulated time and the fleet
// frontend (apps/kv/fleet.h) feeds per-expander traffic through the max-min
// BandwidthSolver.
#ifndef CXL_EXPLORER_SRC_POOL_RACK_H_
#define CXL_EXPLORER_SRC_POOL_RACK_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/pool/memory_pool.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace cxl::pool {

enum class RackTopology {
  kFlat,
  kStar,
  kMesh,
};

// Stable short names: "flat", "star", "mesh" (bench flags and tables).
const char* RackTopologyName(RackTopology topology);
StatusOr<RackTopology> ParseRackTopology(std::string_view name);

struct RackConfig {
  int hosts = 8;
  int expanders = 4;
  RackTopology topology = RackTopology::kFlat;
  // Local DRAM per host; demand beyond it goes to the pool.
  uint64_t host_dram_bytes = 96 * kGiB;
  // Capacity of each expander (the pool totals expanders x this).
  uint64_t expander_capacity_bytes = 96 * kGiB;
  uint64_t slice_bytes = kGiB;
  // Per-expander cap on any single host's share (CXL 2.0 fairness guard).
  double per_host_capacity_fraction = 1.0;
};

class Rack {
 public:
  explicit Rack(const RackConfig& config);

  const RackConfig& config() const { return config_; }
  int hosts() const { return config_.hosts; }
  int expanders() const { return config_.expanders; }

  CxlMemoryPool& expander(int e) { return expanders_[static_cast<size_t>(e)]; }
  const CxlMemoryPool& expander(int e) const { return expanders_[static_cast<size_t>(e)]; }

  // Expanders host `h` can lease from, nearest-first (hops ascending, index
  // ascending within a hop class) — the scheduler's placement order.
  const std::vector<int>& Reachable(int host) const {
    return reachable_[static_cast<size_t>(host)];
  }
  bool Reaches(int host, int e) const { return SwitchHops(host, e) > 0; }
  // Switch hops between host and expander: 1 = through one switch stage,
  // 2 = mesh spill through a second stage, 0 = unreachable.
  int SwitchHops(int host, int e) const {
    return hops_[static_cast<size_t>(host)][static_cast<size_t>(e)];
  }
  // Fewest hops from `host` to any reachable expander (1 for all topologies).
  int MinHops(int host) const;

  // Pooled bytes host `h` holds across all expanders.
  uint64_t HostLeasedBytes(int host) const;
  // Lease-weighted mean switch hops of host `h`'s pooled bytes (0 when the
  // host holds no lease) — the latency price of spilled placement.
  double MeanLeaseHops(int host) const;

  uint64_t TotalCapacityBytes() const;
  uint64_t TotalUsedBytes() const;
  uint64_t TotalFreeBytes() const;
  double Utilization() const;

 private:
  RackConfig config_;
  std::vector<CxlMemoryPool> expanders_;
  std::vector<std::vector<int>> hops_;       // [host][expander]; 0 = unreachable.
  std::vector<std::vector<int>> reachable_;  // [host] -> expander ids, nearest-first.
};

}  // namespace cxl::pool

#endif  // CXL_EXPLORER_SRC_POOL_RACK_H_
