#include "src/pool/scheduler.h"

#include <algorithm>

#include "src/util/units.h"

namespace cxl::pool {

PoolScheduler::PoolScheduler(Rack& rack, SchedulerConfig config)
    : rack_(rack), config_(config), demand_(static_cast<size_t>(rack.hosts()), 0) {}

uint64_t PoolScheduler::RoundUpToSlices(uint64_t bytes) const {
  const uint64_t slice = rack_.config().slice_bytes;
  return (bytes + slice - 1) / slice * slice;
}

Status PoolScheduler::SetDemand(int host, uint64_t demand_bytes) {
  if (host < 0 || host >= rack_.hosts()) {
    return Status::InvalidArgument("host id out of rack range");
  }
  const uint64_t target = RoundUpToSlices(demand_bytes);
  demand_[static_cast<size_t>(host)] = target;
  const uint64_t held = rack_.HostLeasedBytes(host);

  if (held > target) {
    if (config_.sticky_release) {
      // Keep the leases; the slack above `target` is balloonable by peers.
      return Status::Ok();
    }
    // Shrink, furthest-expander-first: keep the cheap leases.
    uint64_t to_release = held - target;
    const std::vector<int>& order = rack_.Reachable(host);
    for (auto it = order.rbegin(); it != order.rend() && to_release > 0; ++it) {
      const uint64_t lease = rack_.expander(*it).LeasedBytes(host);
      const uint64_t rel = std::min(lease, to_release);
      if (rel > 0) {
        (void)rack_.expander(*it).Release(host, rel);
        to_release -= rel;
        stats_.released_bytes += rel;
      }
    }
    return Status::Ok();
  }
  if (held == target) {
    return Status::Ok();
  }

  ++stats_.grow_requests;
  uint64_t need = target - held;
  need -= GrowFromFree(host, need);
  if (need > 0 && config_.ballooning) {
    BalloonReclaim(host, need);
    need -= GrowFromFree(host, need);
  }
  if (need > 0) {
    ++stats_.grows_denied;
    return Status::ResourceExhausted("pool cannot cover host demand");
  }
  return Status::Ok();
}

uint64_t PoolScheduler::GrowFromFree(int host, uint64_t need) {
  if (need == 0) {
    return 0;
  }
  const uint64_t slice = rack_.config().slice_bytes;
  const int min_hops = rack_.MinHops(host);
  uint64_t granted = 0;
  for (int e : rack_.Reachable(host)) {
    if (granted >= need) {
      break;
    }
    CxlMemoryPool& pool = rack_.expander(e);
    const auto cap_slices = static_cast<uint64_t>(
        pool.config().per_host_capacity_fraction *
        static_cast<double>(pool.config().capacity_bytes / pool.config().slice_bytes));
    const uint64_t cap_bytes = cap_slices * slice;
    const uint64_t held = pool.LeasedBytes(host);
    const uint64_t headroom = cap_bytes > held ? cap_bytes - held : 0;
    uint64_t grant = std::min({need - granted, pool.FreeBytes(), headroom});
    grant = grant / slice * slice;
    if (grant == 0) {
      continue;
    }
    if (!pool.Acquire(host, grant).ok()) {
      continue;  // Unreachable in practice: bounds above mirror Acquire's checks.
    }
    granted += grant;
    stats_.granted_bytes += grant;
    if (rack_.SwitchHops(host, e) > min_hops) {
      ++stats_.spill_grants;
    }
  }
  return granted;
}

uint64_t PoolScheduler::BalloonReclaim(int host, uint64_t need) {
  const uint64_t slice = rack_.config().slice_bytes;
  const uint64_t allowance = config_.balloon_slack_slices * slice;
  uint64_t freed = 0;
  uint64_t victims = 0;
  for (int e : rack_.Reachable(host)) {
    if (freed >= need) {
      break;
    }
    CxlMemoryPool& pool = rack_.expander(e);
    for (int victim = 0; victim < rack_.hosts() && freed < need; ++victim) {
      if (victim == host) {
        continue;
      }
      const uint64_t victim_held = rack_.HostLeasedBytes(victim);
      const uint64_t victim_demand = demand_[static_cast<size_t>(victim)] + allowance;
      if (victim_held <= victim_demand) {
        continue;
      }
      const uint64_t slack = victim_held - victim_demand;
      uint64_t reclaim = std::min({slack, pool.LeasedBytes(victim), need - freed});
      reclaim = RoundUpToSlices(reclaim);
      reclaim = std::min(reclaim, std::min(slack, pool.LeasedBytes(victim)));
      if (reclaim == 0) {
        continue;
      }
      (void)pool.Release(victim, reclaim);
      freed += reclaim;
      ++victims;
      ++stats_.balloon_reclaims;
      stats_.balloon_reclaimed_bytes += reclaim;
    }
  }
  if (freed > 0 && telemetry_ != nullptr) {
    telemetry_->events().Record(
        telemetry::Event(telemetry::EventKind::kPoolBalloonReclaim, now_ms_)
            .WithA(BytesToMiB(freed))
            .WithB(static_cast<double>(victims)));
  }
  return freed;
}

uint64_t PoolScheduler::UnmetBytes(int host) const {
  const uint64_t held = rack_.HostLeasedBytes(host);
  const uint64_t target = demand_[static_cast<size_t>(host)];
  return target > held ? target - held : 0;
}

uint64_t PoolScheduler::TotalUnmetBytes() const {
  uint64_t total = 0;
  for (int h = 0; h < rack_.hosts(); ++h) {
    total += UnmetBytes(h);
  }
  return total;
}

uint64_t PoolScheduler::StrandedBytes() const {
  if (TotalUnmetBytes() == 0) {
    return 0;
  }
  const uint64_t slice = rack_.config().slice_bytes;
  uint64_t stranded = 0;
  for (int e = 0; e < rack_.expanders(); ++e) {
    const CxlMemoryPool& pool = rack_.expander(e);
    const uint64_t free_bytes = pool.FreeBytes();
    if (free_bytes == 0) {
      continue;
    }
    // Bytes of this expander's free capacity that starved hosts could still
    // absorb (reachability and per-host cap permitting); the rest is
    // stranded.
    const auto cap_slices = static_cast<uint64_t>(
        pool.config().per_host_capacity_fraction *
        static_cast<double>(pool.config().capacity_bytes / pool.config().slice_bytes));
    const uint64_t cap_bytes = cap_slices * slice;
    uint64_t absorbable = 0;
    for (int h = 0; h < rack_.hosts(); ++h) {
      const uint64_t unmet = UnmetBytes(h);
      if (unmet == 0 || !rack_.Reaches(h, e)) {
        continue;
      }
      const uint64_t held = pool.LeasedBytes(h);
      const uint64_t headroom = cap_bytes > held ? cap_bytes - held : 0;
      absorbable += std::min(unmet, headroom);
    }
    stranded += free_bytes > absorbable ? free_bytes - absorbable : 0;
  }
  return stranded;
}

void PoolScheduler::EndStep() {
  ++stats_.steps;
  const uint64_t stranded = StrandedBytes();
  const uint64_t unmet = TotalUnmetBytes();
  stats_.stranded_byte_steps += static_cast<double>(stranded);
  stats_.peak_stranded_bytes = std::max(stats_.peak_stranded_bytes, stranded);
  stats_.unmet_byte_steps += static_cast<double>(unmet);
  stats_.peak_unmet_bytes = std::max(stats_.peak_unmet_bytes, unmet);
}

}  // namespace cxl::pool
