// Pool scheduler: drives acquire/grow/release against a Rack over simulated
// time, with ballooning and stranding accounting.
//
// Each host declares a pooled-capacity demand per step (its working set
// beyond local DRAM); SetDemand converges the host's leases toward it:
//
//   - shrink: slack above the rounded demand is released furthest-expander-
//     first, so the cheap (fewest-hop) leases are the ones kept;
//   - grow: capacity is acquired nearest-expander-first; a grant on a
//     beyond-minimum-hop expander counts as a *spill* (it pays extra switch
//     latency, tracked by Rack::MeanLeaseHops);
//   - balloon: when free capacity runs out, peers holding leases above their
//     own declared demand are deflated (their slack released) on the
//     expanders the starved host can reach, and the grow retries. This is
//     the pool-manager analogue of VM memory ballooning.
//
// Stranding: while unmet demand exists, free slices that no starved host can
// acquire — unreachable under the topology, or blocked by the per-host cap —
// are *stranded*. EndStep() accumulates the time series (mean/peak) behind
// the bench's stranding column; a flat topology strands nothing, a star
// topology strands every idle slice in a foreign group.
//
// Determinism: the scheduler is pure bookkeeping — no RNG, no wall clock,
// fixed iteration order (expanders nearest-first, hosts by ascending id) —
// so a sweep cell driving it is byte-identical at any --jobs fan-out.
// Telemetry is optional and observational (events only; attaching a sink
// must not change decisions).
#ifndef CXL_EXPLORER_SRC_POOL_SCHEDULER_H_
#define CXL_EXPLORER_SRC_POOL_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "src/pool/rack.h"
#include "src/telemetry/metrics.h"
#include "src/util/status.h"

namespace cxl::pool {

struct SchedulerConfig {
  bool ballooning = true;
  // Slack slices a host may hold above its declared demand before the
  // balloon reclaims them for a starved peer.
  uint64_t balloon_slack_slices = 0;
  // Lazy reclaim: a shrinking SetDemand keeps the leases (releasing pooled
  // memory means migrating pages off it, so hosts hold on) and only records
  // the lower demand. The slack stays harvestable by BalloonReclaim when a
  // peer starves — eager release pays the migration up front, sticky release
  // pays it only under actual pressure.
  bool sticky_release = false;
};

struct SchedulerStats {
  uint64_t grow_requests = 0;
  // SetDemand calls that ended below target even after ballooning.
  uint64_t grows_denied = 0;
  uint64_t granted_bytes = 0;
  uint64_t released_bytes = 0;
  // Grants placed on a beyond-minimum-hop expander (mesh spill).
  uint64_t spill_grants = 0;
  uint64_t balloon_reclaims = 0;  // Victim-host deflations.
  uint64_t balloon_reclaimed_bytes = 0;
  // Stranding / unmet-demand time series, accumulated by EndStep().
  uint64_t steps = 0;
  double stranded_byte_steps = 0.0;
  uint64_t peak_stranded_bytes = 0;
  double unmet_byte_steps = 0.0;
  uint64_t peak_unmet_bytes = 0;

  double MeanStrandedBytes() const {
    return steps == 0 ? 0.0 : stranded_byte_steps / static_cast<double>(steps);
  }
  double MeanUnmetBytes() const {
    return steps == 0 ? 0.0 : unmet_byte_steps / static_cast<double>(steps);
  }
};

class PoolScheduler {
 public:
  explicit PoolScheduler(Rack& rack, SchedulerConfig config = {});

  // Observational sink for kPoolBalloonReclaim events; `now_ms` advances the
  // event clock (set by the driving simulation each step).
  void AttachTelemetry(telemetry::MetricRegistry* sink) { telemetry_ = sink; }
  void set_now_ms(double now_ms) { now_ms_ = now_ms; }

  // Declares `host`'s pooled demand and drives its leases toward it (see
  // file comment). Ok when the lease covers the rounded demand afterwards;
  // ResourceExhausted when capacity ran out (partial grants are kept).
  Status SetDemand(int host, uint64_t demand_bytes);

  uint64_t demand(int host) const { return demand_[static_cast<size_t>(host)]; }
  // Rounded demand minus lease (0 when met).
  uint64_t UnmetBytes(int host) const;
  uint64_t TotalUnmetBytes() const;

  // Free bytes no starved host can acquire right now (see file comment);
  // 0 whenever every demand is met.
  uint64_t StrandedBytes() const;

  // Accumulates the stranding/unmet series for this step.
  void EndStep();

  const SchedulerStats& stats() const { return stats_; }
  Rack& rack() { return rack_; }

 private:
  uint64_t RoundUpToSlices(uint64_t bytes) const;
  // Grows `host` toward its target from free capacity; returns bytes granted.
  uint64_t GrowFromFree(int host, uint64_t need);
  // Deflates peers' slack on expanders `host` reaches; returns bytes freed.
  uint64_t BalloonReclaim(int host, uint64_t need);

  Rack& rack_;
  SchedulerConfig config_;
  std::vector<uint64_t> demand_;  // Rounded to slices, per host.
  SchedulerStats stats_;
  telemetry::MetricRegistry* telemetry_ = nullptr;
  double now_ms_ = 0.0;
};

}  // namespace cxl::pool

#endif  // CXL_EXPLORER_SRC_POOL_SCHEDULER_H_
