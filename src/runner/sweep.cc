#include "src/runner/sweep.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace cxl::runner {

namespace {

// Parses a strictly positive integer; returns 0 on any malformed input.
int ParsePositiveInt(const char* text) {
  if (text == nullptr || *text == '\0') {
    return 0;
  }
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == nullptr || *end != '\0' || value <= 0 || value > 1 << 20) {
    return 0;
  }
  return static_cast<int>(value);
}

}  // namespace

int ResolveJobs(int requested) {
  if (requested > 0) {
    return requested;
  }
  if (const int from_env = ParsePositiveInt(std::getenv("CXL_JOBS")); from_env > 0) {
    return from_env;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int JobsFromArgs(int* argc, char** argv, std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr && error->empty()) {
      *error = message;
    }
  };
  int jobs = 0;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--jobs") == 0 || std::strcmp(arg, "-j") == 0) {
      if (i + 1 >= *argc) {
        fail(std::string("missing value for ") + arg);
        continue;
      }
      const char* value = argv[++i];
      jobs = ParsePositiveInt(value);
      if (jobs == 0) {
        fail(std::string("bad ") + arg + " value: " + value + " (want a positive integer)");
      }
      continue;
    }
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      jobs = ParsePositiveInt(arg + 7);
      if (jobs == 0) {
        fail(std::string("bad --jobs value: ") + (arg + 7) + " (want a positive integer)");
      }
      continue;
    }
    // Compact -jN form (as in make -j8). Only a well-formed value is
    // consumed; anything else (-junk) stays in argv for the bench.
    if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
      if (const int compact = ParsePositiveInt(arg + 2); compact > 0) {
        jobs = compact;
        continue;
      }
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return jobs;
}

int JobsFromArgs(int* argc, char** argv) {
  std::string error;
  const int jobs = JobsFromArgs(argc, argv, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    std::exit(2);
  }
  return jobs;
}

std::string SweepStats::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "cells=%zu jobs=%d wall=%.0fms serial-est=%.0fms max-cell=%.0fms speedup=%.1fx",
                cells, jobs, wall_ms, serial_ms, max_cell_ms, Speedup());
  return buf;
}

}  // namespace cxl::runner
