// Deterministic parallel sweep execution.
//
// Every figure in the paper is a sweep — a (configuration × workload) grid
// whose cells are independent: each builds its own Platform, PageAllocator
// and store. SweepRunner executes such a grid on a ThreadPool while keeping
// the results *bit-identical regardless of thread count or completion order*:
//
//   - each cell receives a private seed derived from (base_seed, cell_index)
//     via SplitMix64, never from a shared RNG;
//   - the output vector preserves input order (cell i writes slot i);
//   - the first error Status (by cell index, not by completion time) is
//     propagated and the partial results discarded.
//
// Wall-clock per cell is recorded into SweepStats so benches can report the
// parallel speedup against the serial estimate (the sum of cell times).
#ifndef CXL_EXPLORER_SRC_RUNNER_SWEEP_H_
#define CXL_EXPLORER_SRC_RUNNER_SWEEP_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/runner/thread_pool.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace cxl::runner {

// Worker count resolution: an explicit request > 0 wins; otherwise the
// CXL_JOBS environment variable; otherwise std::thread::hardware_concurrency
// (minimum 1).
int ResolveJobs(int requested);

// Strips a `--jobs N`, `--jobs=N`, `-j N` or compact `-jN` argument from
// argv (compacting argc) and returns the value, or 0 (auto) when absent.
// A `--jobs` / `-j` with a missing or malformed value (e.g. a trailing
// `--jobs`, or `--jobs=abc`) sets `*error` and returns 0; it is NOT silently
// treated as auto. A malformed compact `-jN` (e.g. `-junk`) is left in argv
// untouched for the bench's own parser. `error` may be null to ignore
// diagnostics.
int JobsFromArgs(int* argc, char** argv, std::string* error);

// Convenience wrapper for bench mains: prints `error: ...` to stderr and
// exits with status 2 on a malformed/missing --jobs value (matching
// bench::Context's usage-error convention).
int JobsFromArgs(int* argc, char** argv);

// The seed cell `index` of a sweep draws from. Pure function of
// (base_seed, index): two sweeps with the same base seed assign every cell
// the same stream no matter how many workers execute them.
constexpr uint64_t CellSeed(uint64_t base_seed, size_t index) {
  return SplitMix64(SplitMix64(base_seed) ^
                    (0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(index) + 1)));
}

struct SweepOptions {
  // 0 = auto (CXL_JOBS env, then hardware_concurrency).
  int jobs = 0;
  // Root of the per-cell seed derivation.
  uint64_t base_seed = 1;
  // Optional labels, parallel to the cell vector; SweepStats cell records
  // fall back to "cell<i>" when absent (or when the vector is short).
  std::vector<std::string> cell_labels;
};

// Timing summary of one sweep. serial_ms is the sum of per-cell wall times —
// an estimate of what a one-at-a-time loop would have cost.
struct SweepStats {
  size_t cells = 0;
  int jobs = 0;
  double wall_ms = 0.0;
  double serial_ms = 0.0;
  double max_cell_ms = 0.0;

  // One record per cell, in cell-index order: where the cell's wall time
  // went. start_ms is the cell's start offset from the sweep start, so the
  // records reconstruct the parallel schedule (telemetry renders them as one
  // span per cell). Summary() does not read these.
  struct CellRecord {
    std::string label;
    double start_ms = 0.0;
    double ms = 0.0;
  };
  std::vector<CellRecord> cell_records;

  double Speedup() const { return wall_ms > 0.0 ? serial_ms / wall_ms : 0.0; }

  // "cells=28 jobs=8 wall=3210ms serial-est=21400ms max-cell=1100ms
  //  speedup=6.7x" — intended for stderr so table output on stdout stays
  // byte-identical across thread counts.
  std::string Summary() const;
};

// Runs fn(cell, seed) over every cell. Fn must return StatusOr<Result> and
// must not touch shared mutable state (the compiler cannot check that; the
// tests/runner suite and the TSan CI job do). With jobs == 1 the cells run
// inline on the calling thread — no pool, same results.
template <typename Cell, typename Fn>
auto RunSweep(const std::vector<Cell>& cells, Fn&& fn, const SweepOptions& options = {},
              SweepStats* stats = nullptr)
    -> StatusOr<std::vector<typename std::invoke_result_t<Fn&, const Cell&, uint64_t>::value_type>> {
  using CellReturn = std::invoke_result_t<Fn&, const Cell&, uint64_t>;
  using Result = typename CellReturn::value_type;
  using Clock = std::chrono::steady_clock;

  const size_t n = cells.size();
  const int jobs = std::max(1, std::min<int>(ResolveJobs(options.jobs), static_cast<int>(std::max<size_t>(n, 1))));

  // Slot i is written only by the task for cell i; the pool's Wait() (or the
  // serial loop) orders all writes before the merge below.
  std::vector<std::optional<Result>> slots(n);
  std::vector<Status> statuses(n, Status::Ok());
  std::vector<SweepStats::CellRecord> records(n);

  const auto sweep_start = Clock::now();
  auto run_cell = [&](size_t i) {
    // The whole record — label copy included — is captured here, under the
    // cell's own lifetime. Callers may hand labels backed by per-sweep
    // scratch (an arena reset between sweeps, a reused buffer); deep-copying
    // the characters before the cell body runs means the records stay valid
    // however long the caller keeps the SweepStats.
    SweepStats::CellRecord& record = records[i];
    record.label = i < options.cell_labels.size()
                       ? std::string(options.cell_labels[i].data(), options.cell_labels[i].size())
                       : "cell" + std::to_string(i);
    const auto start = Clock::now();
    record.start_ms = std::chrono::duration<double, std::milli>(start - sweep_start).count();
    CellReturn cell_result = fn(cells[i], CellSeed(options.base_seed, i));
    record.ms = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    if (cell_result.ok()) {
      slots[i] = std::move(cell_result).value();
    } else {
      statuses[i] = cell_result.status();
    }
  };

  if (jobs <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      run_cell(i);
    }
  } else {
    ThreadPool pool(jobs);
    for (size_t i = 0; i < n; ++i) {
      pool.Submit([&run_cell, i] { run_cell(i); });
    }
    pool.Wait();
  }

  if (stats != nullptr) {
    stats->cells = n;
    stats->jobs = jobs;
    stats->wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - sweep_start).count();
    stats->serial_ms = 0.0;
    stats->max_cell_ms = 0.0;
    for (const SweepStats::CellRecord& record : records) {
      stats->serial_ms += record.ms;
      stats->max_cell_ms = std::max(stats->max_cell_ms, record.ms);
    }
    stats->cell_records = std::move(records);
  }

  // First error by input order, independent of completion order.
  for (const Status& status : statuses) {
    if (!status.ok()) {
      return status;
    }
  }
  std::vector<Result> out;
  out.reserve(n);
  for (std::optional<Result>& slot : slots) {
    out.push_back(std::move(*slot));
  }
  return out;
}

}  // namespace cxl::runner

#endif  // CXL_EXPLORER_SRC_RUNNER_SWEEP_H_
