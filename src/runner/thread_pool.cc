#include "src/runner/thread_pool.h"

#include <cassert>
#include <utility>

namespace cxl::runner {

ThreadPool::ThreadPool(int threads) {
  assert(threads > 0);
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(!stop_ && "Submit after shutdown");
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to drain.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

}  // namespace cxl::runner
