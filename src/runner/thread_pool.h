// Fixed-size work-queue thread pool for CPU-bound sweep cells.
//
// Tasks are opaque closures; the pool makes no fairness or ordering promises
// beyond FIFO dispatch. Determinism of sweep *results* is the SweepRunner's
// job (per-cell seeds, order-preserving output slots) — the pool only
// provides the parallelism.
#ifndef CXL_EXPLORER_SRC_RUNNER_THREAD_POOL_H_
#define CXL_EXPLORER_SRC_RUNNER_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cxl::runner {

// Spawns `threads` workers on construction; joins them on destruction. Submit
// is thread-safe. Wait() blocks until every submitted task has finished, and
// the pool is reusable afterwards (Submit/Wait cycles).
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Must not be called after Shutdown (destruction).
  void Submit(std::function<void()> task);

  // Blocks until the queue is empty and no task is in flight.
  void Wait();

  int thread_count() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_idle_;
  int in_flight_ = 0;  // Tasks popped but not yet finished.
  bool stop_ = false;
};

}  // namespace cxl::runner

#endif  // CXL_EXPLORER_SRC_RUNNER_THREAD_POOL_H_
