#include "src/sim/channel_sim.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <functional>

#include "src/sim/event_queue.h"

namespace cxl::sim {

double MemoryChannelSim::CapacityGBps() const {
  const double mean_service =
      0.5 * (config_.row_hit_service_ns + config_.row_miss_service_ns);
  return config_.banks * config_.access_bytes / mean_service;
}

ChannelSimPoint MemoryChannelSim::Run(double offered_gbps) const {
  assert(offered_gbps > 0.0);
  EventQueue events;
  Rng rng(config_.seed);

  const double arrival_rate = offered_gbps / config_.access_bytes;  // Req/ns.
  const double mean_gap_ns = 1.0 / arrival_rate;

  // Per-bank FIFO queues: a request is bound to a bank (DRAM addresses map
  // to specific banks); the controller's reordering freedom is modelled as
  // steering each request to the shortest of `scheduler_choices` candidate
  // banks (power-of-d-choices).
  struct Bank {
    bool busy = false;
    std::deque<double> queue;  // Arrival timestamps.
  };
  std::vector<Bank> banks(static_cast<size_t>(config_.banks));
  Histogram latency(1.0, 1e8, 96);
  uint64_t completed = 0;
  uint64_t issued = 0;
  double last_completion = 0.0;

  auto draw_service = [&] {
    return rng.NextDouble(config_.row_hit_service_ns, config_.row_miss_service_ns);
  };

  std::function<void(size_t, double)> start_service = [&](size_t bank, double arrival_time) {
    banks[bank].busy = true;
    const double service = draw_service();
    events.ScheduleAfter(service, [&, bank, arrival_time] {
      ++completed;
      last_completion = events.Now();
      latency.Record(config_.pipeline_ns + (events.Now() - arrival_time));
      Bank& b = banks[bank];
      if (!b.queue.empty()) {
        const double queued_arrival = b.queue.front();
        b.queue.pop_front();
        start_service(bank, queued_arrival);
      } else {
        b.busy = false;
      }
    });
  };

  std::function<void()> arrive = [&] {
    if (issued >= config_.requests) {
      return;
    }
    ++issued;
    // Power-of-d-choices bank steering; a fraction of requests are
    // conflict-bound (row locality / dependence) and cannot be steered.
    size_t best = rng.NextBounded(static_cast<uint64_t>(config_.banks));
    const int choices = rng.NextBool(config_.steerable_fraction) ? config_.scheduler_choices : 1;
    for (int d = 1; d < choices; ++d) {
      const size_t cand = rng.NextBounded(static_cast<uint64_t>(config_.banks));
      const size_t best_depth = banks[best].queue.size() + (banks[best].busy ? 1 : 0);
      const size_t cand_depth = banks[cand].queue.size() + (banks[cand].busy ? 1 : 0);
      if (cand_depth < best_depth) {
        best = cand;
      }
    }
    Bank& b = banks[best];
    if (!b.busy) {
      start_service(best, events.Now());
    } else {
      b.queue.push_back(events.Now());
    }
    events.ScheduleAfter(rng.NextExponential(mean_gap_ns), arrive);
  };

  events.ScheduleAt(0.0, arrive);
  events.Run();

  ChannelSimPoint pt;
  pt.offered_gbps = offered_gbps;
  pt.mean_latency_ns = latency.mean();
  pt.p99_latency_ns = latency.p99();
  pt.achieved_gbps =
      last_completion > 0.0 ? static_cast<double>(completed) * config_.access_bytes / last_completion
                            : 0.0;
  pt.utilization = offered_gbps / CapacityGBps();
  return pt;
}

std::vector<ChannelSimPoint> MemoryChannelSim::Sweep(int points) const {
  std::vector<ChannelSimPoint> out;
  out.reserve(static_cast<size_t>(points));
  const double cap = CapacityGBps();
  for (int i = 0; i < points; ++i) {
    const double frac = 0.05 + 0.92 * static_cast<double>(i) / (points - 1);
    out.push_back(Run(frac * cap));
  }
  return out;
}

}  // namespace cxl::sim
