// First-principles memory-channel simulator.
//
// The analytic QueueModel asserts a loaded-latency *law*; this module checks
// that the law is the right family by deriving loaded latency from an actual
// discrete-event simulation of a DRAM channel: Poisson arrivals, a pool of
// banks (finite service parallelism), FIFO overflow queueing, and a
// front-end pipeline latency. The calibration tests assert that the
// simulated curve reproduces the analytic shape (flat, then a knee in the
// 75-85% band, then an exponential-looking spike) — grounding the model the
// rest of the repository builds on.
#ifndef CXL_EXPLORER_SRC_SIM_CHANNEL_SIM_H_
#define CXL_EXPLORER_SRC_SIM_CHANNEL_SIM_H_

#include <cstdint>
#include <vector>

#include "src/util/histogram.h"
#include "src/util/rng.h"

namespace cxl::sim {

struct ChannelSimConfig {
  // Constant front-end latency: core -> LLC miss path -> controller -> IO.
  double pipeline_ns = 52.0;
  // Mean bank service time (row activate + CAS + restore; tRC-scale).
  double bank_service_ns = 45.0;
  // Row-buffer behaviour: hits are faster, misses slower. Service is drawn
  // uniformly in [hit, miss] around the mean.
  double row_hit_service_ns = 28.0;
  double row_miss_service_ns = 62.0;
  // Banks serving in parallel. Capacity = banks * access_bytes / service.
  int banks = 47;
  // Scheduler flexibility: each request may be steered to the shortest of
  // `scheduler_choices` candidate banks (FR-FCFS reordering and address
  // interleave give the controller some, but not full, freedom; 1 = strict
  // address-determined banking, banks = an idealized shared pool).
  int scheduler_choices = 2;
  // Fraction of requests the scheduler can actually steer (the rest are
  // bound to their bank by row locality / dependences).
  double steerable_fraction = 0.7;
  double access_bytes = 64.0;
  uint64_t requests = 200'000;
  uint64_t seed = 1;
};

struct ChannelSimPoint {
  double offered_gbps = 0.0;
  double achieved_gbps = 0.0;
  double mean_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
  double utilization = 0.0;
};

class MemoryChannelSim {
 public:
  explicit MemoryChannelSim(ChannelSimConfig config = {}) : config_(config) {}

  // Nominal capacity from bank parallelism (GB/s).
  double CapacityGBps() const;

  // Unloaded access latency (pipeline + mean service).
  double IdleLatencyNs() const {
    return config_.pipeline_ns + 0.5 * (config_.row_hit_service_ns + config_.row_miss_service_ns);
  }

  // Runs one open-loop experiment at the given offered load.
  ChannelSimPoint Run(double offered_gbps) const;

  // Sweeps offered load from 5% to ~97% of capacity.
  std::vector<ChannelSimPoint> Sweep(int points = 12) const;

  const ChannelSimConfig& config() const { return config_; }

 private:
  ChannelSimConfig config_;
};

}  // namespace cxl::sim

#endif  // CXL_EXPLORER_SRC_SIM_CHANNEL_SIM_H_
