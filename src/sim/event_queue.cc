#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace cxl::sim {

void EventQueue::ScheduleAt(SimTime when, Callback cb) {
  assert(when >= now_ && "cannot schedule into the past");
  heap_.push(Event{when, next_seq_++, std::move(cb)});
}

bool EventQueue::Step() {
  if (heap_.empty()) {
    return false;
  }
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the closure handle instead (shared closures are cheap enough for
  // our event volumes).
  Event ev = heap_.top();
  heap_.pop();
  now_ = ev.time;
  ev.cb();
  return true;
}

uint64_t EventQueue::Run() {
  uint64_t executed = 0;
  while (Step()) {
    ++executed;
  }
  return executed;
}

uint64_t EventQueue::RunUntil(SimTime until) {
  uint64_t executed = 0;
  while (!heap_.empty() && heap_.top().time <= until) {
    Step();
    ++executed;
  }
  if (now_ < until) {
    now_ = until;
  }
  return executed;
}

}  // namespace cxl::sim
