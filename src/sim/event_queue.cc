#include "src/sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace cxl::sim {

void EventQueue::ScheduleAt(SimTime when, Callback cb) {
  assert(when >= now_ && "cannot schedule into the past");
  heap_.push_back(Event{when, next_seq_++, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

bool EventQueue::Step() {
  if (heap_.empty()) {
    return false;
  }
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  now_ = ev.time;
  ev.cb();
  return true;
}

uint64_t EventQueue::Run() {
  uint64_t executed = 0;
  while (Step()) {
    ++executed;
  }
  return executed;
}

uint64_t EventQueue::RunUntil(SimTime until) {
  uint64_t executed = 0;
  while (!heap_.empty() && heap_.front().time <= until) {
    Step();
    ++executed;
  }
  if (now_ < until) {
    now_ = until;
  }
  return executed;
}

}  // namespace cxl::sim
