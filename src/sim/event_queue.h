// Discrete-event simulation kernel.
//
// A minimal, deterministic event loop: events are (time, sequence, closure)
// triples ordered by time with FIFO tie-breaking, executed until the queue
// drains or a time/count limit is hit. The request-level application
// simulations (KeyDB server event loops, Spark stage barriers) run on top of
// this kernel.
#ifndef CXL_EXPLORER_SRC_SIM_EVENT_QUEUE_H_
#define CXL_EXPLORER_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "src/util/small_function.h"

namespace cxl::sim {

// Simulated time in nanoseconds.
using SimTime = double;

// Deterministic discrete-event executor.
class EventQueue {
 public:
  // Inline-storage closure: the per-op completion lambdas capture more than
  // std::function's SBO holds, and at millions of events per cell the heap
  // round-trip per scheduled op was a measurable slice of the epoch cost.
  using Callback = SmallFunction<48>;

  // Schedules `cb` at absolute time `when` (must be >= Now()).
  void ScheduleAt(SimTime when, Callback cb);

  // Schedules `cb` `delay` ns after the current time.
  void ScheduleAfter(SimTime delay, Callback cb) { ScheduleAt(now_ + delay, std::move(cb)); }

  // Runs until the queue is empty. Returns the number of events executed.
  uint64_t Run();

  // Runs until simulated time exceeds `until` (events at exactly `until`
  // still run) or the queue drains. Returns events executed.
  uint64_t RunUntil(SimTime until);

  // Executes exactly one event if available. Returns false if empty.
  bool Step();

  SimTime Now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  // Explicit binary heap (std::push_heap/std::pop_heap over a vector) rather
  // than std::priority_queue: top() there is const, which forces a copy of
  // the closure on every pop. The ordering is identical.
  std::vector<Event> heap_;
  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
};

}  // namespace cxl::sim

#endif  // CXL_EXPLORER_SRC_SIM_EVENT_QUEUE_H_
