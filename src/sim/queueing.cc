#include "src/sim/queueing.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cxl::sim {

QueueModel::QueueModel(double idle_ns, double queue_scale, double knee_sharpness, double max_util)
    : idle_ns_(idle_ns),
      queue_scale_(queue_scale),
      knee_sharpness_(knee_sharpness),
      max_util_(max_util) {
  assert(idle_ns > 0.0 && queue_scale >= 0.0 && knee_sharpness >= 1.0);
  assert(max_util > 0.0 && max_util < 1.0);
}

double QueueModel::LatencyAt(double utilization) const {
  const double u = std::clamp(utilization, 0.0, max_util_);
  return idle_ns_ * (1.0 + queue_scale_ * std::pow(u, knee_sharpness_) / (1.0 - u));
}

double QueueModel::UtilizationForLatency(double latency_ns) const {
  if (latency_ns <= idle_ns_) {
    return 0.0;
  }
  if (latency_ns >= LatencyAt(max_util_)) {
    return max_util_;
  }
  double lo = 0.0;
  double hi = max_util_;
  for (int i = 0; i < 64; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (LatencyAt(mid) < latency_ns) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double QueueModel::KneeUtilization(double factor) const {
  assert(factor > 1.0);
  return UtilizationForLatency(idle_ns_ * factor);
}

double ErlangC(int servers, double offered_load) {
  assert(servers >= 1);
  if (offered_load <= 0.0) {
    return 0.0;
  }
  const double rho = offered_load / servers;
  if (rho >= 1.0) {
    return 1.0;  // Unstable: every arrival queues.
  }
  // Iterative Erlang-B, then convert to Erlang-C.
  double erlang_b = 1.0;
  for (int k = 1; k <= servers; ++k) {
    erlang_b = offered_load * erlang_b / (k + offered_load * erlang_b);
  }
  return erlang_b / (1.0 - rho * (1.0 - erlang_b));
}

double MmcMeanWait(int servers, double arrival_rate, double mean_service_time) {
  assert(servers >= 1 && mean_service_time > 0.0);
  const double offered = arrival_rate * mean_service_time;
  const double rho = offered / servers;
  if (rho >= 1.0) {
    // Unstable: report a large but finite wait so callers degrade gracefully.
    return 100.0 * mean_service_time;
  }
  const double pw = ErlangC(servers, offered);
  return pw * mean_service_time / (servers * (1.0 - rho));
}

}  // namespace cxl::sim
