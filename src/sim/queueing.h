// Analytic queueing primitives.
//
// The paper's central microbenchmark result (Fig. 3/4) is the *loaded
// latency* curve: access latency stays near idle latency at low-to-moderate
// bandwidth utilization and spikes "exponentially" as utilization approaches
// saturation, with the knee at 75-83% of peak for local DDR5 and earlier for
// remote paths (§3.2). QueueModel captures that family of curves with three
// parameters and is the single latency-vs-load law used by every device
// model in src/mem.
#ifndef CXL_EXPLORER_SRC_SIM_QUEUEING_H_
#define CXL_EXPLORER_SRC_SIM_QUEUEING_H_

namespace cxl::sim {

// Latency-vs-utilization law:
//
//   latency(u) = idle_ns * (1 + queue_scale * u^knee_sharpness / (1 - u))
//
// - idle_ns:         latency at (near-)zero load.
// - queue_scale:     magnitude of the queueing term (memory-controller queue
//                    depth relative to service time).
// - knee_sharpness:  how flat the curve stays before the knee. Large values
//                    (~6) keep latency flat until high utilization (local
//                    DDR); small values (~2-3) move the knee left (remote
//                    socket paths, write-heavy mixes).
//
// Utilization is clamped to [0, max_util] so the model stays finite under
// overload; callers decide separately how much *bandwidth* is achievable.
class QueueModel {
 public:
  QueueModel() = default;
  QueueModel(double idle_ns, double queue_scale, double knee_sharpness, double max_util = 0.995);

  // Latency in ns at the given utilization in [0, 1].
  double LatencyAt(double utilization) const;

  // Inverse: the utilization at which latency reaches `latency_ns`
  // (bisection; returns max_util if unreachable).
  double UtilizationForLatency(double latency_ns) const;

  // The "knee": utilization at which latency exceeds `factor` x idle.
  // The paper observes the knee (factor ~1.3-1.5) at 75-83% utilization for
  // local DDR5, "surpassing prior estimates of 60%".
  double KneeUtilization(double factor = 1.5) const;

  double idle_ns() const { return idle_ns_; }
  double queue_scale() const { return queue_scale_; }
  double knee_sharpness() const { return knee_sharpness_; }
  double max_util() const { return max_util_; }

 private:
  double idle_ns_ = 100.0;
  double queue_scale_ = 0.15;
  double knee_sharpness_ = 6.0;
  double max_util_ = 0.995;
};

// M/M/c waiting-time helpers used by the request-level server simulation
// (KeyDB event loops): Erlang-C probability of queueing and mean wait.
//
// offered_load = arrival_rate * mean_service_time (in Erlangs).
double ErlangC(int servers, double offered_load);

// Mean waiting time in queue for M/M/c (same time unit as service_time).
double MmcMeanWait(int servers, double arrival_rate, double mean_service_time);

}  // namespace cxl::sim

#endif  // CXL_EXPLORER_SRC_SIM_QUEUEING_H_
