#include "src/telemetry/anomaly.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "src/telemetry/events.h"

namespace cxl::telemetry {

namespace {

// One tiering-daemon tick reassembled from its events (promote, demote, and
// skip events of a tick share one sim timestamp).
struct Tick {
  double promoted = 0.0;
  double demoted = 0.0;
  double candidates = 0.0;
  bool skipped = false;
  bool has_promote = false;
  int32_t window = kNoWindow;

  void Attribute(int32_t w) {
    if (window == kNoWindow) {
      window = w;
    }
  }
};

}  // namespace

AnomalyCounts DetectAnomalies(MetricRegistry& registry, const AnomalyOptions& options) {
  AnomalyCounts counts;
  const std::vector<Event> events = registry.events().Snapshot();

  // Regroup the interleaved stream: tiering activity into per-timestamp
  // ticks (std::map keeps them in sim-time order), solver re-solves into
  // their own sequence.
  std::map<double, Tick> ticks;
  std::vector<Event> solver;
  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::kPagePromote: {
        Tick& t = ticks[e.t_ms];
        t.promoted += e.a;
        t.candidates = std::max(t.candidates, e.b);
        t.has_promote = true;
        t.Attribute(e.window);
        break;
      }
      case EventKind::kPageDemote: {
        Tick& t = ticks[e.t_ms];
        t.demoted += e.a;
        t.Attribute(e.window);
        break;
      }
      case EventKind::kDaemonSkippedTick: {
        Tick& t = ticks[e.t_ms];
        t.skipped = true;
        t.Attribute(e.window);
        break;
      }
      case EventKind::kSolverCacheInvalidate:
        solver.push_back(e);
        break;
      default:
        break;
    }
  }

  EventLog& log = registry.events();

  // Ping-pong: maximal runs of churn ticks (both directions moving
  // substantial, comparable page counts).
  {
    double run_start = 0.0;
    double run_promoted = 0.0;
    double run_demoted = 0.0;
    int run_len = 0;
    int32_t run_window = kNoWindow;
    auto flush = [&] {
      if (run_len >= options.ping_pong_min_ticks) {
        ++counts.ping_pong;
        log.Record(Event(EventKind::kAnomalyPingPong, run_start)
                       .WithWindow(run_window)
                       .WithA(run_promoted)
                       .WithB(run_demoted));
      }
      run_len = 0;
      run_promoted = run_demoted = 0.0;
      run_window = kNoWindow;
    };
    for (const auto& [t_ms, tick] : ticks) {
      const double lo = std::min(tick.promoted, tick.demoted);
      const double hi = std::max(tick.promoted, tick.demoted);
      const bool churn = lo >= options.ping_pong_min_pages && hi > 0.0 &&
                         lo / hi >= options.ping_pong_min_ratio;
      if (churn) {
        if (run_len == 0) {
          run_start = t_ms;
        }
        ++run_len;
        run_promoted += tick.promoted;
        run_demoted += tick.demoted;
        if (run_window == kNoWindow) {
          run_window = tick.window;
        }
      } else {
        flush();
      }
    }
    flush();
  }

  // Promotion starvation: runs of ticks that were skipped outright or saw
  // candidates but promoted none.
  {
    double run_start = 0.0;
    double max_candidates = 0.0;
    int run_len = 0;
    int32_t run_window = kNoWindow;
    auto flush = [&] {
      if (run_len >= options.starvation_min_ticks) {
        ++counts.promotion_starvation;
        log.Record(Event(EventKind::kAnomalyPromotionStarvation, run_start)
                       .WithWindow(run_window)
                       .WithA(run_len)
                       .WithB(max_candidates));
      }
      run_len = 0;
      max_candidates = 0.0;
      run_window = kNoWindow;
    };
    for (const auto& [t_ms, tick] : ticks) {
      const bool starved =
          tick.skipped || (tick.has_promote && tick.promoted == 0.0 && tick.candidates > 0.0);
      if (starved) {
        if (run_len == 0) {
          run_start = t_ms;
        }
        ++run_len;
        max_candidates = std::max(max_candidates, tick.candidates);
        if (run_window == kNoWindow) {
          run_window = tick.window;
        }
      } else {
        flush();
      }
    }
    flush();
  }

  // Solver oscillation: sign-alternating relative swings in achieved
  // throughput across consecutive re-solves.
  {
    int swings = 0;
    double sum_delta = 0.0;
    double run_start = 0.0;
    int prev_sign = 0;
    int32_t run_window = kNoWindow;
    auto flush = [&] {
      if (swings >= options.oscillation_min_swings) {
        ++counts.solver_oscillation;
        log.Record(Event(EventKind::kAnomalySolverOscillation, run_start)
                       .WithWindow(run_window)
                       .WithA(swings)
                       .WithB(sum_delta / swings));
      }
      swings = 0;
      sum_delta = 0.0;
      prev_sign = 0;
      run_window = kNoWindow;
    };
    for (size_t i = 1; i < solver.size(); ++i) {
      const double prev = solver[i - 1].a;
      const double rel = (solver[i].a - prev) / std::max(std::abs(prev), 1e-9);
      const int sign = rel > 0.0 ? 1 : (rel < 0.0 ? -1 : 0);
      const bool big = std::abs(rel) >= options.oscillation_min_delta && sign != 0;
      if (big && (prev_sign == 0 || sign == -prev_sign)) {
        if (swings == 0) {
          run_start = solver[i - 1].t_ms;
          run_window = solver[i - 1].window;
        }
        if (run_window == kNoWindow) {
          run_window = solver[i].window;
        }
        ++swings;
        sum_delta += std::abs(rel);
        prev_sign = sign;
      } else {
        flush();
        if (big) {
          // A large same-sign move can seed the next run.
          run_start = solver[i - 1].t_ms;
          run_window =
              solver[i - 1].window != kNoWindow ? solver[i - 1].window : solver[i].window;
          swings = 1;
          sum_delta = std::abs(rel);
          prev_sign = sign;
        }
      }
    }
    flush();
  }

  if (counts.ping_pong > 0) {
    registry.GetCounter("anomaly.ping_pong").Add(counts.ping_pong);
  }
  if (counts.promotion_starvation > 0) {
    registry.GetCounter("anomaly.promotion_starvation").Add(counts.promotion_starvation);
  }
  if (counts.solver_oscillation > 0) {
    registry.GetCounter("anomaly.solver_oscillation").Add(counts.solver_oscillation);
  }
  return counts;
}

}  // namespace cxl::telemetry
