// Anomaly detectors over the structured event stream.
//
// DetectAnomalies snapshots a registry's events and scans for three
// pathologies the paper's experiments surface, appending one event per
// detected episode (plus anomaly.* counters) back into the same registry:
//
//   - Page ping-pong / thrash (kAnomalyPingPong): consecutive daemon ticks
//     that both promote and demote substantial page counts — the §4.2.3
//     Spark regression signature, where promoted pages are immediately
//     pushed back out by DRAM pressure.
//   - Promotion starvation (kAnomalyPromotionStarvation): a run of ticks
//     with promotion candidates but zero promotions (or skipped ticks) —
//     the daemon is wedged, backed off, or budget-starved while hot pages
//     wait in CXL.
//   - Solver oscillation (kAnomalySolverOscillation): the bandwidth
//     solver's achieved throughput swinging up and down across consecutive
//     re-solves instead of settling — a contention feedback loop.
//
// Detection is a pure post-processing pass over an already-deterministic
// event log (no wall clock, no randomness), so running it per sweep cell
// before the merge keeps byte-identical output at any --jobs.
#ifndef CXL_EXPLORER_SRC_TELEMETRY_ANOMALY_H_
#define CXL_EXPLORER_SRC_TELEMETRY_ANOMALY_H_

#include "src/telemetry/metrics.h"

namespace cxl::telemetry {

struct AnomalyOptions {
  // Ping-pong: a churn tick promotes >= min_pages AND demotes >= min_pages
  // with min/max >= min_ratio; an episode is >= min_ticks consecutive churn
  // ticks.
  int ping_pong_min_ticks = 3;
  double ping_pong_min_ratio = 0.2;
  double ping_pong_min_pages = 32;
  // Starvation: >= min_ticks consecutive ticks that were skipped or had
  // candidates but promoted nothing.
  int starvation_min_ticks = 3;
  // Oscillation: >= min_swings consecutive sign-alternating relative deltas
  // of magnitude >= min_delta in solver achieved throughput.
  int oscillation_min_swings = 4;
  double oscillation_min_delta = 0.05;
};

struct AnomalyCounts {
  int ping_pong = 0;
  int promotion_starvation = 0;
  int solver_oscillation = 0;
  int total() const { return ping_pong + promotion_starvation + solver_oscillation; }
};

// Scans `registry`'s event log and appends anomaly events + counters
// (anomaly.ping_pong / anomaly.promotion_starvation /
// anomaly.solver_oscillation) for every detected episode. Idempotent inputs
// only: call once per cell, before merging.
AnomalyCounts DetectAnomalies(MetricRegistry& registry, const AnomalyOptions& options = {});

}  // namespace cxl::telemetry

#endif  // CXL_EXPLORER_SRC_TELEMETRY_ANOMALY_H_
