#include "src/telemetry/bench_io.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "src/telemetry/export.h"

namespace cxl::telemetry {

namespace {

// Matches `--flag=VALUE` or `--flag VALUE`; advances *i past a consumed
// separate value. Returns true when `out` was filled.
bool TakeFlag(const char* flag, int* i, int argc, char** argv, std::string* out) {
  const char* arg = argv[*i];
  const size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) != 0) {
    return false;
  }
  if (arg[flag_len] == '=') {
    *out = arg + flag_len + 1;
    return true;
  }
  if (arg[flag_len] == '\0') {
    if (*i + 1 < argc) {
      *out = argv[++*i];
    }
    return true;
  }
  return false;
}

}  // namespace

BenchTelemetry BenchTelemetry::FromArgs(int* argc, char** argv) {
  BenchTelemetry out;
  std::string ring;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    if (TakeFlag("--metrics-out", &i, *argc, argv, &out.metrics_path_) ||
        TakeFlag("--trace-out", &i, *argc, argv, &out.trace_path_) ||
        TakeFlag("--bench-json", &i, *argc, argv, &out.bench_json_path_) ||
        TakeFlag("--events-out", &i, *argc, argv, &out.events_path_) ||
        TakeFlag("--events-ring", &i, *argc, argv, &ring)) {
      continue;
    }
    argv[kept++] = argv[i];
  }
  *argc = kept;
  if (!ring.empty()) {
    out.events_ring_ = std::strtoull(ring.c_str(), nullptr, 10);
  }
  return out;
}

void BenchTelemetry::RecordSweep(const std::string& name, const runner::SweepStats& stats) {
  last_sweep_ = stats;
  have_sweep_ = true;
  if (!enabled()) {
    return;
  }
  const std::string prefix = "sweep." + name + ".";
  registry_.GetGauge(prefix + "cells").Set(static_cast<double>(stats.cells));
  registry_.GetGauge(prefix + "jobs").Set(stats.jobs);
  registry_.GetGauge(prefix + "wall_ms").Set(stats.wall_ms);
  registry_.GetGauge(prefix + "serial_ms").Set(stats.serial_ms);
  registry_.GetGauge(prefix + "max_cell_ms").Set(stats.max_cell_ms);
  registry_.GetGauge(prefix + "speedup").Set(stats.Speedup());
  const TraceBuffer::TrackId track = registry_.trace().Track("sweep/" + name);
  for (const auto& record : stats.cell_records) {
    registry_.trace().Span(track, record.label, record.start_ms, record.ms);
  }
}

bool BenchTelemetry::Write(const std::string& bench_name) {
  auto write_file = [&](const std::string& path, auto&& writer) {
    std::ofstream os(path);
    if (!os) {
      std::cerr << "telemetry: cannot open " << path << "\n";
      return false;
    }
    writer(os);
    os.flush();
    if (!os) {
      std::cerr << "telemetry: write failed for " << path << "\n";
      return false;
    }
    return true;
  };

  bool ok = true;
  if (!metrics_path_.empty()) {
    const bool csv = metrics_path_.size() >= 4 &&
                     metrics_path_.compare(metrics_path_.size() - 4, 4, ".csv") == 0;
    ok &= write_file(metrics_path_, [&](std::ostream& os) {
      csv ? WriteMetricsCsv(os, registry_) : WriteMetricsJson(os, registry_);
    });
  }
  if (!trace_path_.empty()) {
    ok &= write_file(trace_path_, [&](std::ostream& os) { WriteChromeTrace(os, registry_); });
  }
  if (!events_path_.empty()) {
    ok &= write_file(events_path_, [&](std::ostream& os) { WriteEventsJsonl(os, registry_); });
  }
  if (!bench_json_path_.empty()) {
    const double wall_ms =
        have_sweep_ ? last_sweep_.wall_ms
                    : std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                                created_)
                          .count();
    const size_t cells = have_sweep_ ? last_sweep_.cells : 0;
    const int jobs = have_sweep_ ? last_sweep_.jobs : 1;
    const double speedup = have_sweep_ ? last_sweep_.Speedup() : 1.0;
    ok &= write_file(bench_json_path_, [&](std::ostream& os) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.1f", wall_ms);
      os << "{\"bench\": \"" << JsonEscape(bench_name) << "\", \"cells\": " << cells
         << ", \"jobs\": " << jobs << ", \"wall_ms\": " << buf;
      std::snprintf(buf, sizeof(buf), "%.2f", speedup);
      os << ", \"speedup\": " << buf << "}\n";
    });
  }
  return ok;
}

}  // namespace cxl::telemetry
