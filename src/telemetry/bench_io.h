// Bench-side telemetry plumbing: the --metrics-out / --trace-out /
// --bench-json / --events-out flags every bench_* binary grows, plus
// sweep-stat recording.
//
// Usage in a bench main:
//
//   auto telemetry = telemetry::BenchTelemetry::FromArgs(&argc, argv);
//   ...per cell: MetricRegistry cell; telemetry.ConfigureSink(&cell); ...
//   runner::SweepStats stats;
//   auto grid = runner::RunSweep(cells, fn, sweep_options, &stats);
//   telemetry.RecordSweep("fig5", stats);
//   ... merge per-cell registries into telemetry.registry() ...
//   if (!telemetry.Write("bench_fig5_keydb_ycsb")) return 1;
//
// Telemetry is additive: with no flags given, sink() is null, nothing is
// recorded, and nothing is written — stdout stays byte-identical.
#ifndef CXL_EXPLORER_SRC_TELEMETRY_BENCH_IO_H_
#define CXL_EXPLORER_SRC_TELEMETRY_BENCH_IO_H_

#include <chrono>
#include <string>

#include "src/runner/sweep.h"
#include "src/telemetry/metrics.h"

namespace cxl::telemetry {

class BenchTelemetry {
 public:
  // Strips `--metrics-out FILE` / `--metrics-out=FILE`, `--trace-out ...`,
  // `--bench-json ...`, `--events-out ...` and `--events-ring N` from argv,
  // compacting argc (same contract as runner::JobsFromArgs, so the two
  // parsers compose in either order).
  static BenchTelemetry FromArgs(int* argc, char** argv);

  // True when any output flag was given.
  bool enabled() const {
    return !metrics_path_.empty() || !trace_path_.empty() || !bench_json_path_.empty() ||
           !events_path_.empty();
  }

  // The registry to emit into, or nullptr when telemetry is off — pass
  // straight to the nullable sinks the simulation layers take.
  MetricRegistry* sink() { return enabled() ? &registry_ : nullptr; }
  MetricRegistry& registry() { return registry_; }

  // Applies the requested event-log mode to a per-cell registry:
  // --events-ring N caps the cell's log at the most recent N events
  // (flight-recorder mode); the default keeps the full log. Call before
  // the cell simulates. No-op on nullptr, so benches can pass their
  // per-cell sink unconditionally. The master registry stays unbounded so
  // a merged file retains every cell's (possibly ring-truncated) tail.
  void ConfigureSink(MetricRegistry* registry) const {
    if (registry != nullptr && events_ring_ > 0) {
      registry->events().set_capacity(events_ring_);
    }
  }

  // Records one sweep: gauges sweep.<name>.{cells,jobs,wall_ms,serial_ms,
  // max_cell_ms,speedup} plus one span per cell record on track
  // "sweep/<name>" (wall-clock offsets — the parallel schedule). Also feeds
  // the --bench-json summary. No-op when telemetry is off.
  void RecordSweep(const std::string& name, const runner::SweepStats& stats);

  // Writes whichever outputs were requested. --metrics-out writes CSV when
  // the path ends in ".csv", JSON otherwise; --trace-out writes Chrome
  // trace-event JSON; --events-out writes the structured event log as
  // JSONL (schema cxl-events-v1); --bench-json writes
  // {bench,cells,jobs,wall_ms,speedup} (wall_ms falls back to this
  // object's lifetime when no sweep was recorded). Returns false (after
  // printing to stderr) on I/O failure.
  bool Write(const std::string& bench_name);

  const std::string& metrics_path() const { return metrics_path_; }
  const std::string& trace_path() const { return trace_path_; }
  const std::string& bench_json_path() const { return bench_json_path_; }
  const std::string& events_path() const { return events_path_; }
  uint64_t events_ring() const { return events_ring_; }

 private:
  std::string metrics_path_;
  std::string trace_path_;
  std::string bench_json_path_;
  std::string events_path_;
  uint64_t events_ring_ = 0;  // 0 = unbounded (full-log mode).
  MetricRegistry registry_;
  runner::SweepStats last_sweep_;
  bool have_sweep_ = false;
  std::chrono::steady_clock::time_point created_ = std::chrono::steady_clock::now();
};

}  // namespace cxl::telemetry

#endif  // CXL_EXPLORER_SRC_TELEMETRY_BENCH_IO_H_
