#include "src/telemetry/epoch_profiler.h"

#include <algorithm>
#include <cstdio>

#include "src/util/units.h"

namespace cxl::telemetry {

std::string EpochProfiler::Report(double wall_ms) const {
  const double solver_ms = SecToMs(SecondsIn(kSolver));
  const double scan_ms = SecToMs(SecondsIn(kScan));
  const double telemetry_ms = SecToMs(SecondsIn(kTelemetry));
  const double workload_ms = std::max(0.0, wall_ms - solver_ms - scan_ms - telemetry_ms);
  const auto pct = [wall_ms](double ms) { return wall_ms > 0.0 ? 100.0 * ms / wall_ms : 0.0; };
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "profile: wall=%.0fms solver=%.0fms (%.1f%%) scan=%.0fms (%.1f%%) "
                "telemetry=%.0fms (%.1f%%) workload=%.0fms (%.1f%%)",
                wall_ms, solver_ms, pct(solver_ms), scan_ms, pct(scan_ms), telemetry_ms,
                pct(telemetry_ms), workload_ms, pct(workload_ms));
  return buf;
}

}  // namespace cxl::telemetry
