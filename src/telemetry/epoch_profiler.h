// Per-phase wall-clock accounting for the epoch hot path.
//
// A sweep cell's epoch loop splits its time across four phases: the
// bandwidth solver re-solve, the tiering daemon's page scans, telemetry
// appends, and the workload itself (event-queue dispatch + service-time
// arithmetic). The profiler accumulates the first three with RAII timers at
// the call sites; "workload" is reported as the remainder of the measured
// wall time, so the breakdown always sums to the total.
//
// Lives in src/telemetry because it reads the wall clock (the determinism
// lint confines wall-clock use to telemetry/runner). Purely observational:
// attaching a profiler must not change simulation results, only measure
// them. Accumulators are relaxed atomics so cells running under --jobs N
// can share one profiler; relaxed is enough because the report is read
// after the sweep's join.
#ifndef CXL_EXPLORER_SRC_TELEMETRY_EPOCH_PROFILER_H_
#define CXL_EXPLORER_SRC_TELEMETRY_EPOCH_PROFILER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace cxl::telemetry {

class EpochProfiler {
 public:
  enum Phase : int {
    kSolver = 0,    // TrafficModel/BandwidthSolver re-solves.
    kScan = 1,      // Tiering daemon ticks (candidate + demotion scans).
    kTelemetry = 2, // Metric/series/trace appends on the epoch path.
    kPhaseCount = 3,
  };

  // RAII phase timer. A null profiler makes it a no-op, so call sites can
  // time unconditionally: `auto t = EpochProfiler::Time(profiler, kSolver);`.
  class ScopedTimer {
   public:
    ScopedTimer(EpochProfiler* profiler, Phase phase)
        : profiler_(profiler), phase_(phase),
          start_(profiler != nullptr ? std::chrono::steady_clock::now()
                                     : std::chrono::steady_clock::time_point{}) {}
    ~ScopedTimer() {
      if (profiler_ != nullptr) {
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
        profiler_->AddNanos(phase_, static_cast<uint64_t>(ns < 0 ? 0 : ns));
      }
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

   private:
    EpochProfiler* profiler_;
    Phase phase_;
    std::chrono::steady_clock::time_point start_;
  };

  static ScopedTimer Time(EpochProfiler* profiler, Phase phase) {
    return ScopedTimer(profiler, phase);
  }

  void AddNanos(Phase phase, uint64_t ns) {
    nanos_[static_cast<size_t>(phase)].fetch_add(ns, std::memory_order_relaxed);
  }

  double SecondsIn(Phase phase) const {
    return static_cast<double>(nanos_[static_cast<size_t>(phase)].load(std::memory_order_relaxed)) /
           1e9;
  }

  // "profile: wall=...ms solver=...ms (x%) scan=... telemetry=... workload=..."
  // where workload = wall - (solver + scan + telemetry), floored at zero.
  // `wall_ms` is the caller's measured total (typically SweepStats::serial_ms
  // so the breakdown is in per-cell terms, independent of --jobs).
  std::string Report(double wall_ms) const;

  // Wall milliseconds since construction — the default total for Report()
  // when the caller has no tighter measurement (bench::Context uses this;
  // under --jobs N the phase sums are cross-thread aggregates, so run with
  // --jobs 1 for a clean single-threaded breakdown).
  double WallMsSinceBirth() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - born_)
        .count();
  }

 private:
  std::atomic<uint64_t> nanos_[kPhaseCount] = {};
  std::chrono::steady_clock::time_point born_ = std::chrono::steady_clock::now();
};

}  // namespace cxl::telemetry

#endif  // CXL_EXPLORER_SRC_TELEMETRY_EPOCH_PROFILER_H_
