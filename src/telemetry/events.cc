#include "src/telemetry/events.h"

#include <algorithm>

namespace cxl::telemetry {

namespace {

// Reason-code name tables, indexed by `Event::reason`.
constexpr const char* kFaultTypeReasons[] = {
    // Mirrors fault::FaultType's declaration order (fault emits the enum
    // value as the reason code).
    "downtrain", "crc", "poison", "throttle", "stall", "flash",
};
constexpr const char* kPromoteReasons[] = {"hot_threshold", "mru", "tpp", "adaptive"};
constexpr const char* kDemoteReasons[] = {"dram_pressure", "watermark", "quarantine"};
constexpr const char* kSkipReasons[] = {"stall", "backoff", "policy"};
constexpr const char* kBatchReasons[] = {"shrink", "recover"};
constexpr const char* kSloReasons[] = {"latency", "throughput"};
constexpr const char* kReshardReasons[] = {"degraded_link", "pressure", "hotspot"};

constexpr EventKindInfo kKindInfo[kEventKindCount] = {
    /*kFaultWindowOpen*/ {"fault_window_open", "severity", "duration_ms", kFaultTypeReasons, 6},
    /*kFaultWindowClose*/ {"fault_window_close", "severity", nullptr, kFaultTypeReasons, 6},
    /*kPagePromote*/ {"page_promote", "pages", "candidates", kPromoteReasons, 4},
    /*kPageDemote*/ {"page_demote", "pages", "mb", kDemoteReasons, 3},
    /*kDaemonSkippedTick*/ {"daemon_skipped_tick", nullptr, nullptr, kSkipReasons, 3},
    /*kPromotionBackoffArmed*/
    {"promotion_backoff_armed", "backoff_ticks", "failure_streak", nullptr, 0},
    /*kKvShedOn*/ {"kv_shed_on", "baseline_kops", "epoch_kops", nullptr, 0},
    /*kKvShedOff*/ {"kv_shed_off", "baseline_kops", "epoch_kops", nullptr, 0},
    /*kKvPoisonRetry*/ {"kv_poison_retry", "retries", "page", nullptr, 0},
    /*kKvQuarantine*/ {"kv_quarantine", "page", nullptr, nullptr, 0},
    /*kKvFlashRetry*/ {"kv_flash_retry", "timeout_factor", nullptr, nullptr, 0},
    /*kSparkShuffleReexec*/ {"spark_shuffle_reexec", "partitions", "retry_s", nullptr, 0},
    /*kLlmBatchShrink*/ {"llm_batch_shrink", "batch", "inflation", kBatchReasons, 2},
    /*kSolverCacheInvalidate*/
    {"solver_cache_invalidate", "achieved_gbps", "iterations", nullptr, 0},
    /*kSloViolationOpen*/ {"slo_violation_open", "observed", "objective", kSloReasons, 2},
    /*kSloViolationClose*/ {"slo_violation_close", "burned_ms", nullptr, kSloReasons, 2},
    /*kAnomalyPingPong*/ {"anomaly_ping_pong", "promoted_pages", "demoted_pages", nullptr, 0},
    /*kAnomalyPromotionStarvation*/
    {"anomaly_promotion_starvation", "ticks", "candidates", nullptr, 0},
    /*kAnomalySolverOscillation*/
    {"anomaly_solver_oscillation", "swings", "mean_delta", nullptr, 0},
    /*kPoolBalloonReclaim*/ {"pool_balloon_reclaim", "reclaimed_mib", "victims", nullptr, 0},
    /*kTenantReshard*/ {"tenant_reshard", "tenants", "shard", kReshardReasons, 3},
};

}  // namespace

const EventKindInfo& KindInfo(EventKind kind) {
  const auto i = static_cast<size_t>(kind);
  return kKindInfo[i < kEventKindCount ? i : 0];
}

const char* EventKindName(EventKind kind) { return KindInfo(kind).name; }

const char* EventReasonName(EventKind kind, int32_t reason) {
  const EventKindInfo& info = KindInfo(kind);
  if (info.reasons == nullptr || reason < 0 || reason >= info.reason_count) {
    return "unknown";
  }
  return info.reasons[reason];
}

bool IsDegradationResponse(EventKind kind) {
  switch (kind) {
    case EventKind::kDaemonSkippedTick:
    case EventKind::kPromotionBackoffArmed:
    case EventKind::kKvShedOn:
    case EventKind::kKvShedOff:
    case EventKind::kKvPoisonRetry:
    case EventKind::kKvQuarantine:
    case EventKind::kKvFlashRetry:
    case EventKind::kSparkShuffleReexec:
    case EventKind::kLlmBatchShrink:
      return true;
    default:
      return false;
  }
}

void EventLog::set_capacity(size_t capacity) {
  if (capacity == capacity_) {
    return;
  }
  if (capacity > 0 && buf_.size() > capacity) {
    // Keep the latest `capacity` events; evict the rest as dropped.
    std::vector<Event> kept;
    kept.reserve(capacity);
    const size_t n = buf_.size();
    for (size_t i = n - capacity; i < n; ++i) {
      kept.push_back(buf_[(head_ + i) % n]);
    }
    dropped_ += n - capacity;
    buf_ = std::move(kept);
    head_ = 0;
  } else if (head_ != 0) {
    // Unwrap so the plain append path below stays valid.
    std::vector<Event> kept = Snapshot();
    buf_ = std::move(kept);
    head_ = 0;
  }
  capacity_ = capacity;
}

void EventLog::Record(const Event& e) {
  if (capacity_ == 0 || buf_.size() < capacity_) {
    buf_.push_back(e);
    return;
  }
  // Ring full: overwrite the oldest slot.
  buf_[head_] = e;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<Event> EventLog::Snapshot() const {
  std::vector<Event> out;
  out.reserve(buf_.size());
  ForEach([&out](const Event& e) { out.push_back(e); });
  return out;
}

void EventLog::MergeFrom(const EventLog& other, const std::string& cell_label) {
  if (other.buf_.empty() && other.dropped_ == 0) {
    return;
  }
  // Slot for `other`'s un-celled events, then one slot per cell `other`
  // itself merged (nested merges keep their provenance under a joined label).
  const auto self = static_cast<int32_t>(cells_.size());
  cells_.push_back(cell_label);
  for (const std::string& c : other.cells_) {
    cells_.push_back(cell_label.empty() ? c : cell_label + "/" + c);
  }
  other.ForEach([&](const Event& e) {
    Event out = e;
    out.cell = e.cell >= 0 ? self + 1 + e.cell : self;
    Record(out);
  });
  dropped_ += other.dropped_;
}

}  // namespace cxl::telemetry
