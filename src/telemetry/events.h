// Structured event log: the flight recorder of the telemetry layer.
//
// Counters and time series (metrics.h, timeline.h) answer "how much"; the
// EventLog answers "what happened, when, and *because of what*". Every layer
// of the stack appends typed, sim-time-stamped events — fault windows opening
// and closing, page promotions/demotions with reason codes, degradation
// responses (promotion backoff, KV load shedding / poison retries /
// quarantine, Spark shuffle re-execution, LLM batch shrinking), solver cache
// invalidations, SLO violations, and detected anomalies.
//
// Causal attribution: every degradation-response event carries the id of the
// fault window that caused it (`window`, the index of the FaultEvent in the
// run's FaultPlan), so a per-window impact report falls out of a join between
// fault_window_open events and everything that names the same window.
// tools/report/cxl_report performs exactly that join.
//
// Two capture modes:
//   - full log (capacity 0, the default): every event is kept;
//   - flight recorder (set_capacity(N) > 0): a bounded ring that keeps the
//     *latest* N events and counts what it evicted in dropped().
//
// Concurrency and determinism follow the MetricRegistry contract: an
// EventLog is single-writer, timestamps are simulated milliseconds only
// (cxl_lint CXL-D001 applies), and per-cell logs merge in cell-index order so
// the merged stream — and its JSONL export — is byte-identical for any
// --jobs value.
#ifndef CXL_EXPLORER_SRC_TELEMETRY_EVENTS_H_
#define CXL_EXPLORER_SRC_TELEMETRY_EVENTS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cxl::telemetry {

// The event taxonomy. Stable names (EventKindName) are the JSONL "kind"
// values; docs/telemetry.md carries the full table.
enum class EventKind : uint8_t {
  // Fault subsystem: a FaultPlan window became active / retired. The window
  // id is the event's index within the plan; reason is the fault type.
  kFaultWindowOpen = 0,
  kFaultWindowClose,
  // Tiering daemon, one per tick with activity: reason = promotion mode for
  // promotes, {dram_pressure, watermark, quarantine} for demotes.
  kPagePromote,
  kPageDemote,
  // Tiering daemon degradation responses: a tick skipped because the daemon
  // is wedged (reason=stall) or backing off (reason=backoff), and the arming
  // of an exponential backoff after a promotion failure.
  kDaemonSkippedTick,
  kPromotionBackoffArmed,
  // KV server degradation responses.
  kKvShedOn,
  kKvShedOff,
  kKvPoisonRetry,
  kKvQuarantine,
  kKvFlashRetry,
  // Spark: failed shuffle partitions re-executed after a stage retry.
  kSparkShuffleReexec,
  // LLM serving: decode batch changed (reason = shrink | recover).
  kLlmBatchShrink,
  // Bandwidth solver: a warm-start cache miss forced a re-solve.
  kSolverCacheInvalidate,
  // SLO engine (slo.h): a violation opened / closed (reason = latency |
  // throughput).
  kSloViolationOpen,
  kSloViolationClose,
  // Anomaly detectors (anomaly.h).
  kAnomalyPingPong,
  kAnomalyPromotionStarvation,
  kAnomalySolverOscillation,
  // Pool scheduler (pool/scheduler.h): a starved host deflated peers'
  // balloons to free slices (a = reclaimed MiB, b = victim hosts).
  kPoolBalloonReclaim,
  // Fleet frontend (apps/kv/fleet.h): a shard's tenants moved hosts
  // (a = tenants, b = shard id; reason = degraded_link | pressure | hotspot;
  // window set when the move was forced by a fault window).
  kTenantReshard,
};

inline constexpr int kEventKindCount = 21;

// No originating fault window (healthy run, or a kind with no attribution).
inline constexpr int32_t kNoWindow = -1;

// One event. Fixed-size POD so the ring buffer is cache-friendly; the two
// generic payload slots (a, b) carry kind-specific values named by
// EventKindInfo so the JSONL export stays self-describing.
struct Event {
  double t_ms = 0.0;    // Simulated milliseconds.
  EventKind kind = EventKind::kFaultWindowOpen;
  int32_t cell = -1;    // Sweep-cell id after MergeFrom; -1 before merging.
  int32_t window = kNoWindow;  // Originating fault-window id.
  int32_t reason = 0;   // Kind-specific reason code (EventReasonName).
  double a = 0.0;       // Kind-specific payload (EventKindInfo::field_a).
  double b = 0.0;       // Kind-specific payload (EventKindInfo::field_b).

  Event() = default;
  Event(EventKind k, double t) : t_ms(t), kind(k) {}
  Event& WithWindow(int32_t w) {
    window = w;
    return *this;
  }
  Event& WithReason(int32_t r) {
    reason = r;
    return *this;
  }
  Event& WithA(double v) {
    a = v;
    return *this;
  }
  Event& WithB(double v) {
    b = v;
    return *this;
  }
};

// Per-kind schema: stable name plus the field names of the generic payload
// slots (nullptr = the slot is unused and omitted from JSONL) and the
// reason-code name table (nullptr = no reason field).
struct EventKindInfo {
  const char* name;
  const char* field_a;
  const char* field_b;
  const char* const* reasons;
  int reason_count;
};

const EventKindInfo& KindInfo(EventKind kind);
const char* EventKindName(EventKind kind);
// Name for `reason` under `kind`; "unknown" when out of range or the kind
// carries no reason codes.
const char* EventReasonName(EventKind kind, int32_t reason);

// True for kinds that are degradation *responses* — events that must carry a
// valid originating fault-window id (the acceptance contract cxl_report
// --check enforces). Fault windows themselves, routine tiering activity,
// solver bookkeeping, SLO and anomaly events are excluded.
bool IsDegradationResponse(EventKind kind);

// Append-only event buffer with an optional ring bound. Single-writer.
class EventLog {
 public:
  // 0 (default) = unbounded full log. N > 0 = flight recorder keeping the
  // latest N events. Shrinking an already-overfull log keeps the latest
  // `capacity` events (the evicted ones count as dropped).
  void set_capacity(size_t capacity);
  size_t capacity() const { return capacity_; }

  void Record(const Event& e);

  size_t size() const { return buf_.size(); }
  bool empty() const { return buf_.empty(); }
  // Events evicted by the ring bound (0 in full-log mode).
  uint64_t dropped() const { return dropped_; }

  // Visits events oldest-first (the record order, modulo ring eviction).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const size_t n = buf_.size();
    if (n == 0) {
      return;
    }
    for (size_t i = 0; i < n; ++i) {
      fn(buf_[(head_ + i) % n]);
    }
  }
  // Materializes the events oldest-first (tests, detectors).
  std::vector<Event> Snapshot() const;

  // Cell-label table: MergeFrom registers one label per merged log and
  // rewrites each incoming event's `cell` to point at it. Only cells that
  // actually emitted events (or dropped some) appear here.
  const std::vector<std::string>& cells() const { return cells_; }

  // Appends `other`'s events under `cell_label`, in `other`'s order. Benches
  // merge per-cell logs in cell-index order, so the merged stream — and its
  // export — is independent of sweep thread count. A no-op when `other`
  // recorded nothing.
  void MergeFrom(const EventLog& other, const std::string& cell_label);

 private:
  std::vector<Event> buf_;
  size_t head_ = 0;        // Oldest event when the ring has wrapped.
  size_t capacity_ = 0;    // 0 = unbounded.
  uint64_t dropped_ = 0;
  std::vector<std::string> cells_;
};

}  // namespace cxl::telemetry

#endif  // CXL_EXPLORER_SRC_TELEMETRY_EVENTS_H_
