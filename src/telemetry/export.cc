#include "src/telemetry/export.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "src/util/units.h"

namespace cxl::telemetry {

namespace {

// Formats a double as a JSON-safe number token (JSON has no inf/nan).
std::string Num(double v) {
  if (!std::isfinite(v)) {
    return "0";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

void WriteHistogramJson(std::ostream& os, const Histogram& h) {
  os << "{\"count\":" << h.count() << ",\"mean\":" << Num(h.mean()) << ",\"min\":" << Num(h.min())
     << ",\"max\":" << Num(h.max()) << ",\"p50\":" << Num(h.p50()) << ",\"p90\":" << Num(h.p90())
     << ",\"p95\":" << Num(h.p95()) << ",\"p99\":" << Num(h.p99())
     << ",\"p999\":" << Num(h.p999()) << "}";
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteMetricsJson(std::ostream& os, const MetricRegistry& registry) {
  os << "{\n  \"schema\": \"cxl-telemetry-v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : registry.counters()) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name) << "\": " << counter->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : registry.gauges()) {
    if (!gauge->set()) {
      continue;
    }
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name) << "\": " << Num(gauge->value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : registry.histograms()) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name) << "\": ";
    WriteHistogramJson(os, hist);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"series\": {";
  first = true;
  for (const auto& [name, series] : registry.timeline().series()) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name) << "\": [";
    bool first_point = true;
    for (const TimePoint& p : series.points()) {
      os << (first_point ? "" : ",") << "[" << Num(p.t_ms) << "," << Num(p.value) << "]";
      first_point = false;
    }
    os << "]";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

void WriteMetricsCsv(std::ostream& os, const MetricRegistry& registry) {
  os << "kind,name,t_ms,value\n";
  for (const auto& [name, counter] : registry.counters()) {
    os << "counter," << name << ",," << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    if (gauge->set()) {
      os << "gauge," << name << ",," << Num(gauge->value()) << "\n";
    }
  }
  for (const auto& [name, hist] : registry.histograms()) {
    os << "histogram," << name << ".count,," << hist.count() << "\n";
    os << "histogram," << name << ".mean,," << Num(hist.mean()) << "\n";
    os << "histogram," << name << ".p50,," << Num(hist.p50()) << "\n";
    os << "histogram," << name << ".p99,," << Num(hist.p99()) << "\n";
    os << "histogram," << name << ".p999,," << Num(hist.p999()) << "\n";
    os << "histogram," << name << ".max,," << Num(hist.max()) << "\n";
  }
  for (const auto& [name, series] : registry.timeline().series()) {
    for (const TimePoint& p : series.points()) {
      os << "series," << name << "," << Num(p.t_ms) << "," << Num(p.value) << "\n";
    }
  }
}

void WriteChromeTrace(std::ostream& os, const MetricRegistry& registry) {
  // tid 0 is reserved for counter tracks; spans/instants start at tid 1.
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    os << (first ? "\n" : ",\n");
    first = false;
  };
  sep();
  os << R"({"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"cxl-explorer"}})";
  const TraceBuffer& trace = registry.trace();
  for (size_t i = 0; i < trace.tracks().size(); ++i) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << i + 1
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << JsonEscape(trace.tracks()[i])
       << "\"}}";
  }
  for (const TraceBuffer::Event& e : trace.events()) {
    sep();
    os << "{\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":" << e.track + 1 << ",\"name\":\""
       << JsonEscape(e.name) << "\",\"ts\":" << Num(MsToUs(e.ts_ms));
    if (e.phase == 'X') {
      os << ",\"dur\":" << Num(MsToUs(e.dur_ms));
    }
    if (e.phase == 'i') {
      os << ",\"s\":\"t\"";
    }
    if (!e.args.empty()) {
      os << ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : e.args) {
        os << (first_arg ? "" : ",") << "\"" << JsonEscape(key) << "\":" << Num(value);
        first_arg = false;
      }
      os << "}";
    }
    os << "}";
  }
  // Timeline series render as Perfetto counter tracks.
  for (const auto& [name, series] : registry.timeline().series()) {
    for (const TimePoint& p : series.points()) {
      sep();
      os << "{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":\"" << JsonEscape(name)
         << "\",\"ts\":" << Num(MsToUs(p.t_ms)) << ",\"args\":{\"value\":" << Num(p.value) << "}}";
    }
  }
  // Structured events: one instants track per emitting cell (tids after the
  // span tracks, in first-appearance order over the merged stream), plus flow
  // bindings so a fault window visually chains to its attributed responses.
  const EventLog& events = registry.events();
  if (!events.empty()) {
    std::map<int32_t, size_t> cell_tid;
    std::vector<int32_t> cell_order;
    events.ForEach([&](const Event& ev) {
      if (cell_tid.emplace(ev.cell, trace.tracks().size() + 1 + cell_order.size()).second) {
        cell_order.push_back(ev.cell);
      }
    });
    for (const int32_t cell : cell_order) {
      std::string label = "events";
      if (cell >= 0 && cell < static_cast<int32_t>(events.cells().size()) &&
          !events.cells()[cell].empty()) {
        label = events.cells()[cell] + "/events";
      }
      sep();
      os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << cell_tid[cell]
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << JsonEscape(label) << "\"}}";
    }
    events.ForEach([&](const Event& ev) {
      const size_t tid = cell_tid[ev.cell];
      const EventKindInfo& info = KindInfo(ev.kind);
      sep();
      os << "{\"ph\":\"i\",\"pid\":1,\"tid\":" << tid << ",\"name\":\"" << info.name
         << "\",\"ts\":" << Num(MsToUs(ev.t_ms)) << ",\"s\":\"t\",\"args\":{";
      bool first_arg = true;
      auto arg = [&](const char* key, double value) {
        os << (first_arg ? "" : ",") << "\"" << key << "\":" << Num(value);
        first_arg = false;
      };
      if (ev.window != kNoWindow) {
        arg("window", ev.window);
      }
      if (info.reasons != nullptr) {
        arg("reason", ev.reason);
      }
      if (info.field_a != nullptr) {
        arg(info.field_a, ev.a);
      }
      if (info.field_b != nullptr) {
        arg(info.field_b, ev.b);
      }
      os << "}}";
      // Flow chain: window open starts, each attributed response is a step,
      // window close ends. Ids are unique per (cell, window).
      const char* flow = nullptr;
      if (ev.kind == EventKind::kFaultWindowOpen) {
        flow = "s";
      } else if (ev.kind == EventKind::kFaultWindowClose) {
        flow = "f";
      } else if (IsDegradationResponse(ev.kind)) {
        flow = "t";
      }
      if (flow != nullptr && ev.window != kNoWindow) {
        const long long id =
            (static_cast<long long>(ev.cell) + 2) * 100000 + ev.window;
        sep();
        os << "{\"ph\":\"" << flow << "\",\"pid\":1,\"tid\":" << tid
           << ",\"cat\":\"fault\",\"name\":\"fault_window\",\"id\":" << id
           << ",\"ts\":" << Num(MsToUs(ev.t_ms));
        if (flow[0] == 'f') {
          os << ",\"bp\":\"e\"";
        }
        os << "}";
      }
    });
  }
  os << "\n]}\n";
}

void WriteEventsJsonl(std::ostream& os, const MetricRegistry& registry) {
  const EventLog& log = registry.events();
  os << "{\"schema\":\"cxl-events-v1\",\"events\":" << log.size()
     << ",\"dropped\":" << log.dropped() << ",\"cells\":[";
  bool first = true;
  for (const std::string& c : log.cells()) {
    os << (first ? "" : ",") << "\"" << JsonEscape(c) << "\"";
    first = false;
  }
  os << "]}\n";
  log.ForEach([&](const Event& e) {
    const EventKindInfo& info = KindInfo(e.kind);
    os << "{\"t_ms\":" << Num(e.t_ms) << ",\"kind\":\"" << info.name << "\"";
    if (e.cell >= 0 && e.cell < static_cast<int32_t>(log.cells().size())) {
      os << ",\"cell\":\"" << JsonEscape(log.cells()[e.cell]) << "\"";
    }
    if (e.window != kNoWindow) {
      os << ",\"window\":" << e.window;
    }
    if (info.reasons != nullptr) {
      os << ",\"reason\":\"" << EventReasonName(e.kind, e.reason) << "\"";
    }
    if (info.field_a != nullptr) {
      os << ",\"" << info.field_a << "\":" << Num(e.a);
    }
    if (info.field_b != nullptr) {
      os << ",\"" << info.field_b << "\":" << Num(e.b);
    }
    os << "}\n";
  });
}

}  // namespace cxl::telemetry
