// Exporters: metrics to JSON / CSV, spans + series to Chrome trace-event
// JSON (loadable in Perfetto or chrome://tracing). Output is deterministic
// for a deterministic registry: maps iterate in name order, series keep
// append order. See docs/telemetry.md for the schemas.
#ifndef CXL_EXPLORER_SRC_TELEMETRY_EXPORT_H_
#define CXL_EXPLORER_SRC_TELEMETRY_EXPORT_H_

#include <ostream>
#include <string>

#include "src/telemetry/metrics.h"

namespace cxl::telemetry {

// {"schema":"cxl-telemetry-v1","counters":{...},"gauges":{...},
//  "histograms":{name:{count,mean,min,max,p50,p90,p95,p99,p999}},
//  "series":{name:[[t_ms,value],...]}}
void WriteMetricsJson(std::ostream& os, const MetricRegistry& registry);

// Long format, one row per datum: kind,name,t_ms,value (t_ms empty for
// counters/gauges/histogram stats).
void WriteMetricsCsv(std::ostream& os, const MetricRegistry& registry);

// Chrome trace-event JSON: spans/instants on one tid per track (with
// thread_name metadata), timeline series as "C" counter events. Structured
// events land as "i" instants on per-cell "<cell>/events" tracks, with
// "s"/"t"/"f" flow bindings chaining each fault window's open event through
// its attributed degradation responses to its close event.
void WriteChromeTrace(std::ostream& os, const MetricRegistry& registry);

// Structured event log as JSONL ("cxl-events-v1"): a meta line
//   {"schema":"cxl-events-v1","events":N,"dropped":D,"cells":[...]}
// then one self-describing object per event in merged (cell-index) order:
// t_ms, kind, cell label (omitted pre-merge), window id (omitted when
// unattributed), reason name, and the kind's named payload fields.
// Deterministic: sim timestamps only, so the file is byte-identical for any
// --jobs value.
void WriteEventsJsonl(std::ostream& os, const MetricRegistry& registry);

// Minimal JSON string escaping (quotes, backslash, control chars).
std::string JsonEscape(const std::string& s);

}  // namespace cxl::telemetry

#endif  // CXL_EXPLORER_SRC_TELEMETRY_EXPORT_H_
