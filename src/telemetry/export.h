// Exporters: metrics to JSON / CSV, spans + series to Chrome trace-event
// JSON (loadable in Perfetto or chrome://tracing). Output is deterministic
// for a deterministic registry: maps iterate in name order, series keep
// append order. See docs/telemetry.md for the schemas.
#ifndef CXL_EXPLORER_SRC_TELEMETRY_EXPORT_H_
#define CXL_EXPLORER_SRC_TELEMETRY_EXPORT_H_

#include <ostream>
#include <string>

#include "src/telemetry/metrics.h"

namespace cxl::telemetry {

// {"schema":"cxl-telemetry-v1","counters":{...},"gauges":{...},
//  "histograms":{name:{count,mean,min,max,p50,p90,p95,p99,p999}},
//  "series":{name:[[t_ms,value],...]}}
void WriteMetricsJson(std::ostream& os, const MetricRegistry& registry);

// Long format, one row per datum: kind,name,t_ms,value (t_ms empty for
// counters/gauges/histogram stats).
void WriteMetricsCsv(std::ostream& os, const MetricRegistry& registry);

// Chrome trace-event JSON: spans/instants on one tid per track (with
// thread_name metadata), timeline series as "C" counter events.
void WriteChromeTrace(std::ostream& os, const MetricRegistry& registry);

// Minimal JSON string escaping (quotes, backslash, control chars).
std::string JsonEscape(const std::string& s);

}  // namespace cxl::telemetry

#endif  // CXL_EXPLORER_SRC_TELEMETRY_EXPORT_H_
