#include "src/telemetry/metrics.h"

namespace cxl::telemetry {

Counter& MetricRegistry::GetCounter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    return *it->second;
  }
  return *counters_.emplace(std::string(name), std::make_unique<Counter>()).first->second;
}

Gauge& MetricRegistry::GetGauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    return *it->second;
  }
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first->second;
}

void MetricRegistry::RecordHistogram(std::string_view name, const Histogram& h) {
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    histograms_.emplace(std::string(name), h);
  } else {
    it->second.Merge(h);
  }
}

void MetricRegistry::MergeFrom(const MetricRegistry& other, const std::string& prefix) {
  for (const auto& [name, counter] : other.counters_) {
    GetCounter(prefix + name).Add(counter->value());
  }
  for (const auto& [name, gauge] : other.gauges_) {
    if (gauge->set()) {
      GetGauge(prefix + name).Set(gauge->value());
    }
  }
  for (const auto& [name, hist] : other.histograms_) {
    RecordHistogram(prefix + name, hist);
  }
  timeline_.MergeFrom(other.timeline_, prefix);
  trace_.MergeFrom(other.trace_, prefix);
  // The cell label is the prefix without its separator ("healthy/" →
  // "healthy"); an unprefixed merge keeps an empty label.
  std::string cell = prefix;
  if (!cell.empty() && cell.back() == '/') {
    cell.pop_back();
  }
  events_.MergeFrom(other.events_, cell);
}

}  // namespace cxl::telemetry
