#include "src/telemetry/metrics.h"

namespace cxl::telemetry {

Counter& MetricRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricRegistry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

void MetricRegistry::RecordHistogram(const std::string& name, const Histogram& h) {
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    histograms_.emplace(name, h);
  } else {
    it->second.Merge(h);
  }
}

void MetricRegistry::MergeFrom(const MetricRegistry& other, const std::string& prefix) {
  for (const auto& [name, counter] : other.counters_) {
    GetCounter(prefix + name).Add(counter->value());
  }
  for (const auto& [name, gauge] : other.gauges_) {
    if (gauge->set()) {
      GetGauge(prefix + name).Set(gauge->value());
    }
  }
  for (const auto& [name, hist] : other.histograms_) {
    RecordHistogram(prefix + name, hist);
  }
  timeline_.MergeFrom(other.timeline_, prefix);
  trace_.MergeFrom(other.trace_, prefix);
}

}  // namespace cxl::telemetry
