// Metric registry: the hub of the telemetry layer.
//
// A MetricRegistry bundles
//   - typed Counter / Gauge handles (pointer-stable: registration returns a
//     reference that stays valid for the registry's lifetime, so hot paths
//     pay a member add per increment, never a name lookup),
//   - snapshot copies of util::Histograms (latency distributions),
//   - a Timeline of probe time series (PCM bandwidth, vmstat, daemon state),
//   - a TraceBuffer of spans/instants for Chrome trace export.
//
// Concurrency model: a registry is single-writer. Under the sweep runner
// every cell writes into its *own* registry and the bench merges them in
// cell-index order afterwards (MergeFrom with a per-cell prefix), which keeps
// the merged output deterministic for any --jobs value. Telemetry is additive
// and off by default: components take a nullable MetricRegistry* and must not
// change simulation behaviour when it is null or attached.
#ifndef CXL_EXPLORER_SRC_TELEMETRY_METRICS_H_
#define CXL_EXPLORER_SRC_TELEMETRY_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "src/telemetry/events.h"
#include "src/telemetry/timeline.h"
#include "src/telemetry/trace.h"
#include "src/util/histogram.h"

namespace cxl::telemetry {

// Monotonically increasing count (events, pages, ops).
class Counter {
 public:
  void Add(uint64_t n) { value_ += n; }
  void Increment() { ++value_; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Last-written instantaneous value (bandwidth, threshold, share).
class Gauge {
 public:
  void Set(double v) {
    value_ = v;
    set_ = true;
  }
  double value() const { return value_; }
  bool set() const { return set_; }

 private:
  double value_ = 0.0;
  bool set_ = false;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(MetricRegistry&&) = default;
  MetricRegistry& operator=(MetricRegistry&&) = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Get-or-create. References stay valid for the registry's lifetime
  // (handles live behind unique_ptr, unaffected by later registrations).
  // Heterogeneous lookup: string_view/literal callers allocate only on the
  // first (creating) call for a given name.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);

  // Records a snapshot of `h` under `name`; merges when the name repeats
  // (bucket layouts must match, as with Histogram::Merge).
  void RecordHistogram(std::string_view name, const Histogram& h);

  Timeline& timeline() { return timeline_; }
  const Timeline& timeline() const { return timeline_; }
  TraceBuffer& trace() { return trace_; }
  const TraceBuffer& trace() const { return trace_; }
  EventLog& events() { return events_; }
  const EventLog& events() const { return events_; }

  // Folds `other` into this registry with every name (and trace track)
  // prefixed: counters add, gauges take the incoming value, histograms
  // merge, series and trace events append. Benches merge per-cell
  // registries in cell-index order, making the result independent of the
  // sweep's thread count and completion order.
  void MergeFrom(const MetricRegistry& other, const std::string& prefix = "");

  const std::map<std::string, std::unique_ptr<Counter>, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const { return histograms_; }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty() && timeline_.empty() &&
           trace_.empty() && events_.empty();
  }

 private:
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  Timeline timeline_;
  TraceBuffer trace_;
  EventLog events_;
};

}  // namespace cxl::telemetry

#endif  // CXL_EXPLORER_SRC_TELEMETRY_METRICS_H_
