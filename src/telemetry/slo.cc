#include "src/telemetry/slo.h"

#include <utility>

namespace cxl::telemetry {

namespace {
constexpr int kReasonLatency = 0;
constexpr int kReasonThroughput = 1;
}  // namespace

SloTracker::SloTracker(SloSpec spec, MetricRegistry* sink, WindowAttributor attributor)
    : spec_(std::move(spec)), sink_(sink), attributor_(std::move(attributor)) {}

void SloTracker::Observe(double t_ms, double latency_us, double throughput) {
  const double dt_ms = have_obs_ ? t_ms - prev_t_ms_ : 0.0;
  if (!have_obs_) {
    first_t_ms_ = t_ms;
    have_obs_ = true;
  }

  const bool latency_breach = latency_us > 0.0 && latency_us > spec_.max_latency_us;
  const bool throughput_breach = throughput < spec_.min_throughput;

  if (latency_breach || throughput_breach) {
    ++breach_streak_;
    good_streak_ = 0;
    if (open_) {
      open_burned_ms_ += dt_ms;
    } else {
      pending_burn_ms_ += dt_ms;
      if (breach_streak_ >= spec_.arm_observations) {
        // Latency dominates when both objectives are breached.
        const int reason = latency_breach ? kReasonLatency : kReasonThroughput;
        const double observed = latency_breach ? latency_us : throughput;
        const double objective =
            latency_breach ? spec_.max_latency_us : spec_.min_throughput;
        OpenViolation(t_ms, reason, observed, objective);
      }
    }
  } else {
    ++good_streak_;
    breach_streak_ = 0;
    pending_burn_ms_ = 0.0;
    if (open_ && good_streak_ >= spec_.clear_observations) {
      CloseViolation(t_ms);
    }
  }

  prev_t_ms_ = t_ms;
  last_t_ms_ = t_ms;
}

void SloTracker::Finish() {
  if (open_) {
    CloseViolation(last_t_ms_);
  }
  if (sink_ != nullptr) {
    const std::string stem = "slo." + spec_.workload;
    sink_->GetGauge(stem + ".burned_ms").Set(burned_ms_);
    sink_->GetGauge(stem + ".burn_rate").Set(burn_rate());
    sink_->GetGauge(stem + ".violations").Set(static_cast<double>(violations_));
  }
}

double SloTracker::burn_rate() const {
  const double span_ms = last_t_ms_ - first_t_ms_;
  const double budget_ms = spec_.budget_fraction * span_ms;
  return budget_ms > 0.0 ? burned_ms_ / budget_ms : 0.0;
}

void SloTracker::OpenViolation(double t_ms, int reason, double observed, double objective) {
  open_ = true;
  open_reason_ = reason;
  // The arming intervals burned while we were deciding; count them.
  open_burned_ms_ = pending_burn_ms_;
  pending_burn_ms_ = 0.0;
  ++violations_;
  open_window_ = attributor_ ? attributor_(t_ms) : kNoWindow;
  if (sink_ != nullptr) {
    sink_->events().Record(Event(EventKind::kSloViolationOpen, t_ms)
                               .WithWindow(open_window_)
                               .WithReason(reason)
                               .WithA(observed)
                               .WithB(objective));
  }
}

void SloTracker::CloseViolation(double t_ms) {
  open_ = false;
  good_streak_ = 0;
  burned_ms_ += open_burned_ms_;
  if (sink_ != nullptr) {
    sink_->events().Record(Event(EventKind::kSloViolationClose, t_ms)
                               .WithWindow(open_window_)
                               .WithReason(open_reason_)
                               .WithA(open_burned_ms_));
  }
  open_burned_ms_ = 0.0;
}

}  // namespace cxl::telemetry
