// SLO engine: per-workload latency/throughput objectives evaluated against
// the epoch samples a workload already produces, with deterministic
// hysteresis and error-budget burn accounting.
//
// Model: an SloTracker receives one observation per epoch (sim-timestamped
// mean latency and throughput). An objective is *breached* when observed
// latency exceeds `max_latency_us` or observed throughput falls below
// `min_throughput`. Hysteresis both ways keeps single-epoch noise out of the
// record: `arm_observations` consecutive breaches open a violation (emitting
// kSloViolationOpen with the originating fault window via the attributor
// callback), `clear_observations` consecutive good epochs close it (emitting
// kSloViolationClose carrying the burned milliseconds). Burn accrues one
// observation interval per breached epoch while a violation is open,
// including the epochs that armed it.
//
// Burn *rate* follows the error-budget convention: budget_fraction of the
// tracked wall (sim) time may be in violation; burn_rate = burned time /
// budget. A burn rate above 1.0 means the workload has exhausted its budget
// for the tracked interval.
//
// Determinism: observations arrive in sim-time order from a single writer,
// the attributor is a pure function of sim time, and results land in the
// cell's own registry — so sweeps stay byte-identical at any --jobs.
#ifndef CXL_EXPLORER_SRC_TELEMETRY_SLO_H_
#define CXL_EXPLORER_SRC_TELEMETRY_SLO_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

#include "src/telemetry/events.h"
#include "src/telemetry/metrics.h"

namespace cxl::telemetry {

struct SloSpec {
  std::string workload;  // Metric/gauge name stem, e.g. "kv".
  // Objectives; leave at the defaults to disable a dimension.
  double max_latency_us = std::numeric_limits<double>::infinity();
  double min_throughput = 0.0;
  // Hysteresis: consecutive breached / good observations to open / close.
  int arm_observations = 2;
  int clear_observations = 2;
  // Fraction of tracked time allowed in violation (error budget).
  double budget_fraction = 0.05;
};

// Maps a sim timestamp to the fault-window id responsible for it (kNoWindow
// when the run is healthy at that instant). Kept as a callback so the SLO
// engine has no dependency on src/fault; benches pass
// fault::AttributeWindowAt bound to the cell's plan.
using WindowAttributor = std::function<int32_t(double t_ms)>;

class SloTracker {
 public:
  // `sink` is nullable (tracker still accumulates, for tests); `attributor`
  // may be empty (violations then carry kNoWindow).
  SloTracker(SloSpec spec, MetricRegistry* sink, WindowAttributor attributor = {});

  // One epoch observation. `latency_us` <= 0 means "no latency reading this
  // epoch" (e.g. a warm-up epoch with no completed ops) and skips the
  // latency objective; `throughput` is compared against min_throughput.
  void Observe(double t_ms, double latency_us, double throughput);

  // Closes any open violation at the last observed timestamp and publishes
  // gauges: slo.<workload>.burned_ms / .burn_rate / .violations.
  void Finish();

  // Accounting accessors (valid any time; totals include the open violation
  // only after Finish or its close).
  int violations() const { return violations_; }
  bool violation_open() const { return open_; }
  double burned_ms() const { return burned_ms_; }
  // burned / (budget_fraction * tracked span); 0 before two observations.
  double burn_rate() const;

 private:
  void OpenViolation(double t_ms, int reason, double observed, double objective);
  void CloseViolation(double t_ms);

  SloSpec spec_;
  MetricRegistry* sink_;
  WindowAttributor attributor_;

  double first_t_ms_ = 0.0;
  double last_t_ms_ = 0.0;
  double prev_t_ms_ = 0.0;
  bool have_obs_ = false;

  int breach_streak_ = 0;
  int good_streak_ = 0;
  bool open_ = false;
  double open_burned_ms_ = 0.0;  // Burn inside the currently open violation.
  // Pending burn while arming: the breached-but-not-yet-open intervals that
  // retroactively count once the violation opens.
  double pending_burn_ms_ = 0.0;
  int open_reason_ = 0;
  int32_t open_window_ = kNoWindow;  // Attribution captured at open time.

  int violations_ = 0;
  double burned_ms_ = 0.0;
};

}  // namespace cxl::telemetry

#endif  // CXL_EXPLORER_SRC_TELEMETRY_SLO_H_
