#include "src/telemetry/timeline.h"

namespace cxl::telemetry {

void Timeline::MergeFrom(const Timeline& other, const std::string& prefix) {
  for (const auto& [name, src] : other.series_) {
    TimeSeries& dst = series_[prefix + name];
    for (const TimePoint& p : src.points()) {
      dst.Sample(p.t_ms, p.value);
    }
  }
}

}  // namespace cxl::telemetry
