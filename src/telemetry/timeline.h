// In-memory time series for simulation probes.
//
// A Timeline holds named series of (t_ms, value) samples appended by probes
// at daemon ticks / contention epochs: PCM-style per-path bandwidth, vmstat
// counters, tiering-daemon state. Series handles are pointer-stable (std::map
// nodes), so hot paths resolve the name once and append through the handle.
// Samples use *simulated* milliseconds so a merged sweep stays deterministic.
#ifndef CXL_EXPLORER_SRC_TELEMETRY_TIMELINE_H_
#define CXL_EXPLORER_SRC_TELEMETRY_TIMELINE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace cxl::telemetry {

struct TimePoint {
  double t_ms = 0.0;
  double value = 0.0;
};

class TimeSeries {
 public:
  void Sample(double t_ms, double value) { points_.push_back({t_ms, value}); }

  const std::vector<TimePoint>& points() const { return points_; }
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  // Last appended value (0 when empty) — the "current" reading of a probe.
  double Latest() const { return points_.empty() ? 0.0 : points_.back().value; }

 private:
  std::vector<TimePoint> points_;
};

class Timeline {
 public:
  // Returns the series named `name`, creating it if needed. The reference
  // stays valid for the lifetime of the Timeline. Heterogeneous lookup: a
  // string_view or literal argument only materialises a std::string on the
  // first (creating) call.
  TimeSeries& Series(std::string_view name) {
    const auto it = series_.find(name);
    if (it != series_.end()) {
      return it->second;
    }
    return series_.emplace(std::string(name), TimeSeries{}).first->second;
  }

  // Convenience one-shot append (registration + lookup per call; probes that
  // sample every tick should hold the Series handle instead).
  void Sample(std::string_view name, double t_ms, double value) {
    Series(name).Sample(t_ms, value);
  }

  const std::map<std::string, TimeSeries, std::less<>>& series() const { return series_; }
  bool empty() const { return series_.empty(); }

  // Appends every series of `other` under `prefix + name`. Deterministic:
  // iteration is in name order and appends preserve sample order.
  void MergeFrom(const Timeline& other, const std::string& prefix = "");

 private:
  std::map<std::string, TimeSeries, std::less<>> series_;
};

}  // namespace cxl::telemetry

#endif  // CXL_EXPLORER_SRC_TELEMETRY_TIMELINE_H_
