#include "src/telemetry/trace.h"

namespace cxl::telemetry {

TraceBuffer::TrackId TraceBuffer::Track(const std::string& name) {
  const auto [it, inserted] = track_ids_.try_emplace(name, static_cast<TrackId>(tracks_.size()));
  if (inserted) {
    tracks_.push_back(name);
  }
  return it->second;
}

void TraceBuffer::Span(TrackId track, std::string name, double start_ms, double dur_ms,
                       Args args) {
  events_.push_back(Event{track, std::move(name), 'X', start_ms, dur_ms, std::move(args)});
}

void TraceBuffer::Instant(TrackId track, std::string name, double t_ms, Args args) {
  events_.push_back(Event{track, std::move(name), 'i', t_ms, 0.0, std::move(args)});
}

void TraceBuffer::MergeFrom(const TraceBuffer& other, const std::string& prefix) {
  std::vector<TrackId> remap(other.tracks_.size(), 0);
  for (size_t i = 0; i < other.tracks_.size(); ++i) {
    remap[i] = Track(prefix + other.tracks_[i]);
  }
  events_.reserve(events_.size() + other.events_.size());
  for (Event e : other.events_) {
    e.track = remap[static_cast<size_t>(e.track)];
    events_.push_back(std::move(e));
  }
}

}  // namespace cxl::telemetry
