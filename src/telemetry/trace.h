// Span/instant event buffer for Chrome trace-event export.
//
// Components record onto named *tracks* (one per simulated component: KV
// server, promotion daemon, Spark phases, LLM backends, sweep cells); the
// exporter maps each track to a tid with a `thread_name` metadata event so
// Perfetto / chrome://tracing renders one labelled row per component.
// Timestamps are milliseconds in whatever clock the component uses
// (simulated time for in-sim spans, wall-clock offsets for sweep schedules).
#ifndef CXL_EXPLORER_SRC_TELEMETRY_TRACE_H_
#define CXL_EXPLORER_SRC_TELEMETRY_TRACE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace cxl::telemetry {

class TraceBuffer {
 public:
  using TrackId = int;
  using Args = std::vector<std::pair<std::string, double>>;

  // Returns the track named `name`, creating it if needed. Ids are dense and
  // stable; acquire once, then record through the id on hot paths.
  TrackId Track(const std::string& name);

  // A complete ("X") event covering [start_ms, start_ms + dur_ms).
  void Span(TrackId track, std::string name, double start_ms, double dur_ms, Args args = {});

  // An instant ("i") event at t_ms.
  void Instant(TrackId track, std::string name, double t_ms, Args args = {});

  struct Event {
    TrackId track = 0;
    std::string name;
    char phase = 'X';  // 'X' = span, 'i' = instant.
    double ts_ms = 0.0;
    double dur_ms = 0.0;  // Spans only.
    Args args;
  };

  const std::vector<std::string>& tracks() const { return tracks_; }
  const std::vector<Event>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  // Appends `other`'s events, remapping its tracks to `prefix + track name`
  // here. Deterministic given deterministic inputs and merge order.
  void MergeFrom(const TraceBuffer& other, const std::string& prefix = "");

 private:
  std::vector<std::string> tracks_;           // Indexed by TrackId.
  std::map<std::string, TrackId> track_ids_;  // Name -> id.
  std::vector<Event> events_;
};

}  // namespace cxl::telemetry

#endif  // CXL_EXPLORER_SRC_TELEMETRY_TRACE_H_
