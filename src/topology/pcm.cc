#include "src/topology/pcm.h"

#include <algorithm>
#include <iomanip>
#include <string>

namespace cxl::topology {

double PcmSnapshot::MaxUpiUtilization() const {
  double max_util = 0.0;
  for (const auto& u : upi) {
    max_util = std::max(max_util, u.utilization);
  }
  return max_util;
}

PcmSnapshot TakePcmSnapshot(const Platform& platform, const TrafficModel::Solution& solution) {
  PcmSnapshot snap;
  snap.sockets.resize(static_cast<size_t>(platform.socket_count()));
  for (int s = 0; s < platform.socket_count(); ++s) {
    snap.sockets[static_cast<size_t>(s)].socket = s;
  }
  for (const auto& n : platform.nodes()) {
    const auto& stats = solution.nodes[static_cast<size_t>(n.id)];
    if (n.kind == NodeKind::kDram) {
      auto& sock = snap.sockets[static_cast<size_t>(n.socket)];
      sock.dram_read_write_gbps += stats.achieved_gbps;
      // Utilization aggregates conservatively: the max over the socket's
      // domains (one saturated SNC domain is a saturated socket for the
      // workload pinned to it).
      sock.dram_utilization = std::max(sock.dram_utilization, stats.utilization);
    } else {
      snap.cxl_cards.push_back(stats);
    }
  }
  snap.upi = solution.upi;
  return snap;
}

void PrintPcmSnapshot(std::ostream& os, const PcmSnapshot& snapshot) {
  os << std::fixed << std::setprecision(1);
  for (const auto& s : snapshot.sockets) {
    os << "SKT" << s.socket << " DRAM: " << s.dram_read_write_gbps << " GB/s ("
       << 100.0 * s.dram_utilization << "% util)\n";
  }
  for (size_t i = 0; i < snapshot.upi.size(); ++i) {
    os << "UPI->SKT" << i << ": " << snapshot.upi[i].achieved_gbps << " GB/s ("
       << 100.0 * snapshot.upi[i].utilization << "% util)\n";
  }
  for (size_t i = 0; i < snapshot.cxl_cards.size(); ++i) {
    os << "CXL" << i << ": " << snapshot.cxl_cards[i].achieved_gbps << " GB/s ("
       << 100.0 * snapshot.cxl_cards[i].utilization << "% util)\n";
  }
}

void SamplePcmSnapshot(telemetry::Timeline& timeline, double t_ms, const PcmSnapshot& snapshot) {
  for (const auto& s : snapshot.sockets) {
    const std::string base = "pcm.skt" + std::to_string(s.socket);
    timeline.Sample(base + ".dram_gbps", t_ms, s.dram_read_write_gbps);
    timeline.Sample(base + ".dram_util", t_ms, s.dram_utilization);
  }
  for (size_t i = 0; i < snapshot.upi.size(); ++i) {
    const std::string base = "pcm.upi" + std::to_string(i);
    timeline.Sample(base + ".gbps", t_ms, snapshot.upi[i].achieved_gbps);
    timeline.Sample(base + ".util", t_ms, snapshot.upi[i].utilization);
  }
  for (size_t i = 0; i < snapshot.cxl_cards.size(); ++i) {
    const std::string base = "pcm.cxl" + std::to_string(i);
    timeline.Sample(base + ".gbps", t_ms, snapshot.cxl_cards[i].achieved_gbps);
    timeline.Sample(base + ".util", t_ms, snapshot.cxl_cards[i].utilization);
  }
}

PcmTelemetryHandles AttachPcmTelemetry(telemetry::MetricRegistry& registry,
                                       const PcmSnapshot& shape) {
  PcmTelemetryHandles h;
  telemetry::Timeline& timeline = registry.timeline();
  for (const auto& s : shape.sockets) {
    const std::string base = "pcm.skt" + std::to_string(s.socket);
    h.socket_gbps.push_back(&timeline.Series(base + ".dram_gbps"));
    h.socket_util.push_back(&timeline.Series(base + ".dram_util"));
    h.socket_dram_gauge.push_back(&registry.GetGauge(base + ".dram_gbps"));
  }
  for (size_t i = 0; i < shape.upi.size(); ++i) {
    const std::string base = "pcm.upi" + std::to_string(i);
    h.upi_gbps.push_back(&timeline.Series(base + ".gbps"));
    h.upi_util.push_back(&timeline.Series(base + ".util"));
    h.upi_gauge.push_back(&registry.GetGauge(base + ".gbps"));
  }
  for (size_t i = 0; i < shape.cxl_cards.size(); ++i) {
    const std::string base = "pcm.cxl" + std::to_string(i);
    h.cxl_gbps.push_back(&timeline.Series(base + ".gbps"));
    h.cxl_util.push_back(&timeline.Series(base + ".util"));
    h.cxl_gauge.push_back(&registry.GetGauge(base + ".gbps"));
  }
  h.max_upi_utilization = &registry.GetGauge("pcm.max_upi_utilization");
  h.attached = true;
  return h;
}

void SamplePcmSnapshot(const PcmTelemetryHandles& handles, double t_ms,
                       const PcmSnapshot& snapshot) {
  for (size_t i = 0; i < snapshot.sockets.size(); ++i) {
    handles.socket_gbps[i]->Sample(t_ms, snapshot.sockets[i].dram_read_write_gbps);
    handles.socket_util[i]->Sample(t_ms, snapshot.sockets[i].dram_utilization);
  }
  for (size_t i = 0; i < snapshot.upi.size(); ++i) {
    handles.upi_gbps[i]->Sample(t_ms, snapshot.upi[i].achieved_gbps);
    handles.upi_util[i]->Sample(t_ms, snapshot.upi[i].utilization);
  }
  for (size_t i = 0; i < snapshot.cxl_cards.size(); ++i) {
    handles.cxl_gbps[i]->Sample(t_ms, snapshot.cxl_cards[i].achieved_gbps);
    handles.cxl_util[i]->Sample(t_ms, snapshot.cxl_cards[i].utilization);
  }
}

void SetPcmGauges(const PcmTelemetryHandles& handles, const PcmSnapshot& snapshot) {
  for (size_t i = 0; i < snapshot.sockets.size(); ++i) {
    handles.socket_dram_gauge[i]->Set(snapshot.sockets[i].dram_read_write_gbps);
  }
  for (size_t i = 0; i < snapshot.upi.size(); ++i) {
    handles.upi_gauge[i]->Set(snapshot.upi[i].achieved_gbps);
  }
  for (size_t i = 0; i < snapshot.cxl_cards.size(); ++i) {
    handles.cxl_gauge[i]->Set(snapshot.cxl_cards[i].achieved_gbps);
  }
  handles.max_upi_utilization->Set(snapshot.MaxUpiUtilization());
}

}  // namespace cxl::topology
