// Intel PCM-style counter facade.
//
// The paper instruments its testbed with the Intel Performance Counter
// Monitor: socket DRAM bandwidth for Fig. 10(b)(c), and UPI utilization to
// diagnose the remote-CXL bottleneck ("the UPI utilization is consistently
// below 30%", §3.2 — proving the Remote Snoop Filter, not the interconnect,
// caps remote CXL). PcmSnapshot renders a TrafficModel solution the way an
// operator would read `pcm` / `pcm-memory` output, so experiments can make
// the same diagnosis.
#ifndef CXL_EXPLORER_SRC_TOPOLOGY_PCM_H_
#define CXL_EXPLORER_SRC_TOPOLOGY_PCM_H_

#include <ostream>
#include <vector>

#include "src/telemetry/timeline.h"
#include "src/topology/platform.h"

namespace cxl::topology {

struct PcmSocketCounters {
  int socket = 0;
  double dram_read_write_gbps = 0.0;  // Aggregate DRAM traffic on the socket.
  double dram_utilization = 0.0;      // Against the socket's channel capacity.
};

struct PcmSnapshot {
  std::vector<PcmSocketCounters> sockets;
  // Per-destination-socket UPI traffic and utilization.
  std::vector<TrafficModel::NodeStats> upi;
  // Per-CXL-card traffic (as a CXL.mem "device counter" would report).
  std::vector<TrafficModel::NodeStats> cxl_cards;

  // Highest UPI utilization across directions (the §3.2 diagnostic).
  double MaxUpiUtilization() const;
};

// Builds a snapshot from a solved traffic model.
PcmSnapshot TakePcmSnapshot(const Platform& platform, const TrafficModel::Solution& solution);

// pcm-memory-style rendering.
void PrintPcmSnapshot(std::ostream& os, const PcmSnapshot& snapshot);

// Machine-readable companion of PrintPcmSnapshot: appends the snapshot into
// `timeline` at simulated time `t_ms`, one series per path —
// pcm.skt<i>.dram_gbps / .dram_util, pcm.upi<i>.gbps / .util,
// pcm.cxl<i>.gbps / .util. Sampled every contention epoch, these are the
// bandwidth-over-time plots behind Fig. 10(b)(c) and the §3.2 UPI diagnosis.
void SamplePcmSnapshot(telemetry::Timeline& timeline, double t_ms, const PcmSnapshot& snapshot);

}  // namespace cxl::topology

#endif  // CXL_EXPLORER_SRC_TOPOLOGY_PCM_H_
