// Intel PCM-style counter facade.
//
// The paper instruments its testbed with the Intel Performance Counter
// Monitor: socket DRAM bandwidth for Fig. 10(b)(c), and UPI utilization to
// diagnose the remote-CXL bottleneck ("the UPI utilization is consistently
// below 30%", §3.2 — proving the Remote Snoop Filter, not the interconnect,
// caps remote CXL). PcmSnapshot renders a TrafficModel solution the way an
// operator would read `pcm` / `pcm-memory` output, so experiments can make
// the same diagnosis.
#ifndef CXL_EXPLORER_SRC_TOPOLOGY_PCM_H_
#define CXL_EXPLORER_SRC_TOPOLOGY_PCM_H_

#include <ostream>
#include <vector>

#include "src/telemetry/metrics.h"
#include "src/telemetry/timeline.h"
#include "src/topology/platform.h"

namespace cxl::topology {

struct PcmSocketCounters {
  int socket = 0;
  double dram_read_write_gbps = 0.0;  // Aggregate DRAM traffic on the socket.
  double dram_utilization = 0.0;      // Against the socket's channel capacity.
};

struct PcmSnapshot {
  std::vector<PcmSocketCounters> sockets;
  // Per-destination-socket UPI traffic and utilization.
  std::vector<TrafficModel::NodeStats> upi;
  // Per-CXL-card traffic (as a CXL.mem "device counter" would report).
  std::vector<TrafficModel::NodeStats> cxl_cards;

  // Highest UPI utilization across directions (the §3.2 diagnostic).
  double MaxUpiUtilization() const;
};

// Builds a snapshot from a solved traffic model.
PcmSnapshot TakePcmSnapshot(const Platform& platform, const TrafficModel::Solution& solution);

// pcm-memory-style rendering.
void PrintPcmSnapshot(std::ostream& os, const PcmSnapshot& snapshot);

// Machine-readable companion of PrintPcmSnapshot: appends the snapshot into
// `timeline` at simulated time `t_ms`, one series per path —
// pcm.skt<i>.dram_gbps / .dram_util, pcm.upi<i>.gbps / .util,
// pcm.cxl<i>.gbps / .util. Sampled every contention epoch, these are the
// bandwidth-over-time plots behind Fig. 10(b)(c) and the §3.2 UPI diagnosis.
void SamplePcmSnapshot(telemetry::Timeline& timeline, double t_ms, const PcmSnapshot& snapshot);

// Cached handles for per-epoch pcm sampling: the series and gauge names are
// built (and looked up) once per run instead of once per epoch. Handles stay
// valid for the registry's lifetime (series and gauges are pointer-stable).
// The snapshot shape (socket/UPI/CXL-card counts) is fixed by the platform,
// so one attach covers every later epoch.
struct PcmTelemetryHandles {
  bool attached = false;
  // Parallel to PcmSnapshot::sockets / upi / cxl_cards.
  std::vector<telemetry::TimeSeries*> socket_gbps;
  std::vector<telemetry::TimeSeries*> socket_util;
  std::vector<telemetry::TimeSeries*> upi_gbps;
  std::vector<telemetry::TimeSeries*> upi_util;
  std::vector<telemetry::TimeSeries*> cxl_gbps;
  std::vector<telemetry::TimeSeries*> cxl_util;
  // End-state gauges ("pcm.skt<i>.dram_gbps", "pcm.upi<i>.gbps",
  // "pcm.cxl<i>.gbps", "pcm.max_upi_utilization").
  std::vector<telemetry::Gauge*> socket_dram_gauge;
  std::vector<telemetry::Gauge*> upi_gauge;
  std::vector<telemetry::Gauge*> cxl_gauge;
  telemetry::Gauge* max_upi_utilization = nullptr;
};
PcmTelemetryHandles AttachPcmTelemetry(telemetry::MetricRegistry& registry,
                                       const PcmSnapshot& shape);
// Same series, same order as the by-name SamplePcmSnapshot overload.
void SamplePcmSnapshot(const PcmTelemetryHandles& handles, double t_ms,
                       const PcmSnapshot& snapshot);
// Sets the end-state gauges ("latest epoch wins" semantics).
void SetPcmGauges(const PcmTelemetryHandles& handles, const PcmSnapshot& snapshot);

}  // namespace cxl::topology

#endif  // CXL_EXPLORER_SRC_TOPOLOGY_PCM_H_
