#include "src/topology/platform.h"

#include <cassert>
#include <cmath>
#include <tuple>

namespace cxl::topology {

using mem::AccessMix;
using mem::AccessPattern;
using mem::CxlController;
using mem::GetProfile;
using mem::MemoryPath;
using mem::PathProfile;

Platform Platform::Build(const PlatformOptions& options) {
  Platform p;
  p.options_ = options;
  NodeId next = 0;
  for (int s = 0; s < options.sockets; ++s) {
    if (options.snc4) {
      for (int d = 0; d < 4; ++d) {
        NumaNode n;
        n.id = next++;
        n.socket = s;
        n.kind = NodeKind::kDram;
        n.capacity_bytes = options.dram_per_socket / 4;
        n.bandwidth_scale = 1.0;  // 2 channels: the calibrated base.
        n.name = "dram.s" + std::to_string(s) + ".snc" + std::to_string(d);
        p.nodes_.push_back(n);
      }
    } else {
      NumaNode n;
      n.id = next++;
      n.socket = s;
      n.kind = NodeKind::kDram;
      n.capacity_bytes = options.dram_per_socket;
      n.bandwidth_scale = 4.0;  // 8 channels.
      n.name = "dram.s" + std::to_string(s);
      p.nodes_.push_back(n);
    }
  }
  for (int c = 0; c < options.cxl_cards; ++c) {
    NumaNode n;
    n.id = next++;
    n.socket = 0;  // Both A1000 modules attach to socket 0 (§2.4).
    n.kind = NodeKind::kCxl;
    n.capacity_bytes = options.cxl_card_capacity;
    n.bandwidth_scale = 1.0;
    n.controller = options.cxl_controller;
    n.name = "cxl" + std::to_string(c);
    p.nodes_.push_back(n);
  }
  return p;
}

Platform Platform::CxlServer(bool snc4) {
  PlatformOptions opt;
  opt.snc4 = snc4;
  return Build(opt);
}

Platform Platform::BaselineServer(bool snc4) {
  PlatformOptions opt;
  opt.snc4 = snc4;
  opt.cxl_cards = 0;
  return Build(opt);
}

std::vector<NodeId> Platform::DramNodes(int socket) const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_) {
    if (n.kind == NodeKind::kDram && (socket < 0 || n.socket == socket)) {
      out.push_back(n.id);
    }
  }
  return out;
}

std::vector<NodeId> Platform::CxlNodes() const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_) {
    if (n.kind == NodeKind::kCxl) {
      out.push_back(n.id);
    }
  }
  return out;
}

uint64_t Platform::TotalDramBytes() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) {
    if (n.kind == NodeKind::kDram) {
      total += n.capacity_bytes;
    }
  }
  return total;
}

uint64_t Platform::TotalCxlBytes() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) {
    if (n.kind == NodeKind::kCxl) {
      total += n.capacity_bytes;
    }
  }
  return total;
}

MemoryPath Platform::PathFor(int cpu_socket, NodeId node_id) const {
  const NumaNode& n = node(node_id);
  const bool local = n.socket == cpu_socket;
  if (n.kind == NodeKind::kDram) {
    return local ? MemoryPath::kLocalDram : MemoryPath::kRemoteDram;
  }
  return local ? MemoryPath::kLocalCxl : MemoryPath::kRemoteCxl;
}

const PathProfile* Platform::ScaledProfileFor(MemoryPath path, double scale) const {
  for (const auto& [p, s, prof] : scaled_profiles_) {
    if (p == path && std::fabs(s - scale) < 1e-12) {
      return prof.get();
    }
  }
  const PathProfile& base = GetProfile(path, options_.cxl_controller);
  auto scaled = std::make_unique<PathProfile>(
      base.WithBandwidthScale(scale, base.name() + "x" + std::to_string(scale)));
  const PathProfile* out = scaled.get();
  scaled_profiles_.emplace_back(path, scale, std::move(scaled));
  return out;
}

const PathProfile& Platform::ProfileFor(int cpu_socket, NodeId node_id) const {
  const NumaNode& n = node(node_id);
  const MemoryPath path = PathFor(cpu_socket, node_id);
  if (n.kind == NodeKind::kCxl) {
    return GetProfile(path, n.controller);
  }
  if (n.bandwidth_scale == 1.0) {
    return GetProfile(path);
  }
  return *ScaledProfileFor(path, n.bandwidth_scale);
}

const PathProfile& Platform::SsdProfile() const {
  if (options_.ssd_count <= 1) {
    return GetProfile(MemoryPath::kSsd);
  }
  return *ScaledProfileFor(MemoryPath::kSsd, static_cast<double>(options_.ssd_count));
}

// ---------------------------------------------------------------------------
// TrafficModel
// ---------------------------------------------------------------------------

TrafficModel::TrafficModel(const Platform& platform) : platform_(platform) {
  node_resource_.resize(platform.nodes().size(), -1);
  rsf_resource_.resize(platform.nodes().size(), -1);
  upi_resource_.resize(static_cast<size_t>(platform.socket_count()), -1);

  for (const auto& n : platform.nodes()) {
    // Capacity law of the node itself: its local-access profile (channel
    // bandwidth for DRAM, PCIe+controller for CXL).
    const PathProfile& cap = platform.ProfileFor(n.socket, n.id);
    node_resource_[static_cast<size_t>(n.id)] = solver_.AddResource(n.name, &cap);
    if (n.kind == NodeKind::kCxl) {
      // Remote Snoop Filter bottleneck: caps *cross-socket* traffic into
      // this device at the Fig. 3(d) level, independent of PCIe headroom.
      rsf_resource_[static_cast<size_t>(n.id)] =
          solver_.AddResource(n.name + ".rsf", &GetProfile(MemoryPath::kRemoteCxl, n.controller));
    }
  }
  // One UPI resource per destination socket. A SPR socket pair has multiple
  // UPI links; aggregate cross-socket capacity is ~2x what a single stream
  // can extract, hence the x2 scale on the remote-DRAM curve.
  for (int s = 0; s < platform.socket_count(); ++s) {
    static const PathProfile upi =
        GetProfile(MemoryPath::kRemoteDram).WithBandwidthScale(2.0, "UPI");
    upi_resource_[static_cast<size_t>(s)] =
        solver_.AddResource("upi.to_s" + std::to_string(s), &upi);
  }
  ssd_resource_ = solver_.AddResource("ssd", &platform.SsdProfile());
}

TrafficModel::FlowId TrafficModel::AddMemoryTraffic(int cpu_socket, NodeId node,
                                                    const AccessMix& mix, double gbps,
                                                    AccessPattern pattern) {
  const MemoryPath path = platform_.PathFor(cpu_socket, node);
  const PathProfile& latency_profile = platform_.ProfileFor(cpu_socket, node);
  std::vector<mem::BandwidthSolver::ResourceId> resources;
  resources.push_back(node_resource_[static_cast<size_t>(node)]);
  const int dest_socket = platform_.node(node).socket;
  if (dest_socket != cpu_socket) {
    resources.push_back(upi_resource_[static_cast<size_t>(dest_socket)]);
    if (path == MemoryPath::kRemoteCxl) {
      resources.push_back(rsf_resource_[static_cast<size_t>(node)]);
    }
  }
  const FlowId id = solver_.AddFlow(&latency_profile, mix, gbps, std::move(resources), pattern);
  flow_keys_.push_back(FlowKey{cpu_socket, node});
  return id;
}

TrafficModel::FlowId TrafficModel::AddSsdTraffic(const AccessMix& mix, double gbps) {
  const FlowId id =
      solver_.AddFlow(&platform_.SsdProfile(), mix, gbps, {ssd_resource_});
  flow_keys_.push_back(FlowKey{0, -1});
  return id;
}

TrafficModel::Solution TrafficModel::Solve() const {
  const mem::BandwidthSolver::Solution raw = solver_.Solve();
  Solution out;
  out.solver_mode = raw.mode;
  out.solver_iterations = raw.iterations;
  out.flows.reserve(raw.flows.size());
  for (const auto& f : raw.flows) {
    out.flows.push_back(FlowStats{f.achieved_gbps, f.latency_ns, f.bottleneck_utilization});
  }
  out.nodes.resize(platform_.nodes().size());
  for (const auto& n : platform_.nodes()) {
    const auto& rr = raw.resources[static_cast<size_t>(node_resource_[static_cast<size_t>(n.id)])];
    out.nodes[static_cast<size_t>(n.id)] =
        NodeStats{rr.achieved_gbps, rr.capacity_gbps, rr.utilization};
  }
  out.upi.resize(upi_resource_.size());
  for (size_t s = 0; s < upi_resource_.size(); ++s) {
    const auto& rr = raw.resources[static_cast<size_t>(upi_resource_[s])];
    out.upi[s] = NodeStats{rr.achieved_gbps, rr.capacity_gbps, rr.utilization};
  }
  const auto& ssd_rr = raw.resources[static_cast<size_t>(ssd_resource_)];
  out.ssd = NodeStats{ssd_rr.achieved_gbps, ssd_rr.capacity_gbps, ssd_rr.utilization};
  return out;
}

void TrafficModel::ClearTraffic() {
  solver_.ClearFlows();
  flow_keys_.clear();
}

}  // namespace cxl::topology
