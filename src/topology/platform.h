// Platform topology: sockets, NUMA nodes (DRAM / CXL), SSDs, and the
// access-path resolution between them. Mirrors the paper's testbed (Fig. 2):
// dual Sapphire Rapids sockets, optionally split into 4 SNC domains each,
// with two A1000 CXL expander cards attached to socket 0 and NVMe SSDs.
#ifndef CXL_EXPLORER_SRC_TOPOLOGY_PLATFORM_H_
#define CXL_EXPLORER_SRC_TOPOLOGY_PLATFORM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/mem/access.h"
#include "src/mem/bandwidth_solver.h"
#include "src/mem/profiles.h"
#include "src/util/status.h"

namespace cxl::topology {

enum class NodeKind {
  kDram,  // CPU-attached DDR5.
  kCxl,   // CPU-less CXL Type-3 expander node.
};

using NodeId = int;

// One NUMA node: CPU-attached DRAM (per SNC domain or per socket) or a
// CPU-less CXL expander.
struct NumaNode {
  NodeId id = -1;
  int socket = 0;
  NodeKind kind = NodeKind::kDram;
  uint64_t capacity_bytes = 0;
  // Number of DDR channel *pairs* backing this node relative to the
  // calibrated 2-channel profile (1 = SNC domain, 4 = full SPR socket).
  double bandwidth_scale = 1.0;
  mem::CxlController controller = mem::CxlController::kAsic;
  std::string name;
};

// Options for building a paper-like server.
struct PlatformOptions {
  int sockets = 2;
  int cores_per_socket = 56;  // SPR.
  // SNC-4 splits each socket into 4 NUMA domains with 2 channels each
  // (§3.1). Raw-performance and bandwidth-bound experiments enable it;
  // capacity-bound experiments disable it.
  bool snc4 = false;
  // DRAM per socket. Paper: 512 GiB/socket (8 x 64 GiB DDR5-4800).
  uint64_t dram_per_socket = 512ull << 30;
  // CXL expander cards, all attached to socket 0 (Fig. 2(a)).
  int cxl_cards = 2;
  uint64_t cxl_card_capacity = 256ull << 30;
  mem::CxlController cxl_controller = mem::CxlController::kAsic;
  // NVMe SSDs (two 1.92 TB drives per server, §2.4).
  int ssd_count = 2;
};

// A server topology plus path resolution and contention-solver wiring.
class Platform {
 public:
  // Builds a server per `options`.
  static Platform Build(const PlatformOptions& options);

  // The paper's CXL experiment server (Fig. 2): dual SPR, 1 TiB DRAM,
  // 2 x 256 GiB A1000 cards on socket 0.
  static Platform CxlServer(bool snc4);
  // The baseline server: identical but without CXL cards.
  static Platform BaselineServer(bool snc4);

  const std::vector<NumaNode>& nodes() const { return nodes_; }
  const NumaNode& node(NodeId id) const { return nodes_[static_cast<size_t>(id)]; }
  int socket_count() const { return options_.sockets; }
  int cores_per_socket() const { return options_.cores_per_socket; }
  const PlatformOptions& options() const { return options_; }

  // All DRAM nodes (optionally restricted to one socket).
  std::vector<NodeId> DramNodes(int socket = -1) const;
  // All CXL nodes.
  std::vector<NodeId> CxlNodes() const;

  // Total DRAM / CXL capacity in bytes.
  uint64_t TotalDramBytes() const;
  uint64_t TotalCxlBytes() const;

  // Distance class of an access from a CPU on `cpu_socket` to `node`.
  mem::MemoryPath PathFor(int cpu_socket, NodeId node) const;

  // Latency/bandwidth law for that access path (channel-count scaling
  // applied for multi-domain DRAM nodes).
  const mem::PathProfile& ProfileFor(int cpu_socket, NodeId node) const;

  // SSD path profile (shared by all spill traffic on the server).
  const mem::PathProfile& SsdProfile() const;
  int ssd_count() const { return options_.ssd_count; }

 private:
  Platform() = default;

  // Owned scaled profiles for nodes with bandwidth_scale != 1.
  const mem::PathProfile* ScaledProfileFor(mem::MemoryPath path, double scale) const;

  PlatformOptions options_;
  std::vector<NumaNode> nodes_;
  // Cache of scaled profiles, keyed by (path, scale). Lazily built; pointers
  // stay valid once created.
  mutable std::vector<std::tuple<mem::MemoryPath, double, std::unique_ptr<mem::PathProfile>>>
      scaled_profiles_;
};

// Couples a Platform with a BandwidthSolver: applications register traffic
// between a CPU socket and a NUMA node (or the SSD) and read back achieved
// bandwidth / loaded latency per traffic flow.
//
// Resource wiring per flow:
//   local DRAM    -> [node channels]
//   remote DRAM   -> [node channels, UPI(to-socket)]
//   local CXL     -> [cxl device]
//   remote CXL    -> [cxl device, UPI, RSF(device)]
//   SSD           -> [ssd array]
class TrafficModel {
 public:
  explicit TrafficModel(const Platform& platform);

  using FlowId = mem::BandwidthSolver::FlowId;

  // Offers `gbps` of `mix` from CPUs on `cpu_socket` to `node`.
  FlowId AddMemoryTraffic(int cpu_socket, NodeId node, const mem::AccessMix& mix, double gbps,
                          mem::AccessPattern pattern = mem::AccessPattern::kSequential);

  // Offers `gbps` of `mix` to the server's SSD array.
  FlowId AddSsdTraffic(const mem::AccessMix& mix, double gbps);

  struct FlowStats {
    double achieved_gbps;
    double latency_ns;
    double bottleneck_utilization;
  };
  struct NodeStats {
    double achieved_gbps;
    double capacity_gbps;
    double utilization;
  };
  struct Solution {
    std::vector<FlowStats> flows;                // Indexed by FlowId.
    std::vector<NodeStats> nodes;                // Indexed by NodeId.
    std::vector<NodeStats> upi;                  // Indexed by destination socket.
    NodeStats ssd = {};
    mem::SolverMode solver_mode = mem::SolverMode::kMaxMinFair;
    int solver_iterations = 0;  // Capacity fixed-point rounds to converge.
  };
  Solution Solve() const;

  void ClearTraffic();

  // Allocation discipline passthrough (defaults to the solver's DefaultMode;
  // kProportionalLegacy is the one-release diffing escape hatch).
  void set_solver_mode(mem::SolverMode mode) { solver_.set_mode(mode); }
  mem::SolverMode solver_mode() const { return solver_.mode(); }

  // Warm-start cache observability passthrough: total Solve() calls and the
  // subset answered from the memoized solution (telemetry emits a
  // solver_cache_invalidate event when a re-solve was forced).
  uint64_t solver_solve_count() const { return solver_.solve_count(); }
  uint64_t solver_cache_hits() const { return solver_.cache_hits(); }

 private:
  const Platform& platform_;
  mem::BandwidthSolver solver_;
  std::vector<mem::BandwidthSolver::ResourceId> node_resource_;  // By NodeId.
  // UPI resource per destination socket (traffic crossing into that socket).
  std::vector<mem::BandwidthSolver::ResourceId> upi_resource_;
  // Remote-snoop-filter resource per CXL node (remote-socket CXL accesses).
  std::vector<mem::BandwidthSolver::ResourceId> rsf_resource_;  // By NodeId (-1 if N/A).
  mem::BandwidthSolver::ResourceId ssd_resource_ = -1;
  // (cpu_socket, node) per flow for latency-profile lookup, parallel to
  // solver flow ids.
  struct FlowKey {
    int cpu_socket;
    NodeId node;  // -1 for SSD.
  };
  std::vector<FlowKey> flow_keys_;
};

}  // namespace cxl::topology

#endif  // CXL_EXPLORER_SRC_TOPOLOGY_PLATFORM_H_
