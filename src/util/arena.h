// Bump/arena allocator for per-epoch transients.
//
// The sweep hot paths (daemon tick candidate lists, solver working vectors,
// per-epoch latency batches) allocate short-lived buffers thousands of times
// per cell. An Arena turns each of those into a pointer bump: blocks are
// grabbed from the heap once, then recycled across epochs by Reset(), so
// steady-state epochs do zero heap traffic.
//
// Usage contract: allocations live until the next Reset(). Containers built
// on ArenaAllocator must therefore not outlive the epoch that created them —
// the canonical pattern is a block-scoped ArenaVector per epoch followed by
// arena.Reset() at the epoch boundary.
#ifndef CXL_EXPLORER_SRC_UTIL_ARENA_H_
#define CXL_EXPLORER_SRC_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>
#include "src/util/units.h"

namespace cxl {

class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 64 * kKiB;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : default_block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `bytes` of storage aligned to `align` (a power of two). The
  // memory is uninitialized and valid until the next Reset().
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    bytes_requested_ += bytes;
    if (block_index_ < blocks_.size()) {
      Block& b = blocks_[block_index_];
      const uintptr_t base = reinterpret_cast<uintptr_t>(b.data.get());
      const size_t aligned = AlignUp(base + offset_, align) - base;
      if (aligned + bytes <= b.capacity) {
        offset_ = aligned + bytes;
        return b.data.get() + aligned;
      }
    }
    return AllocateSlow(bytes, align);
  }

  // Typed helper: uninitialized array of `count` Ts (trivial T only — the
  // arena never runs destructors).
  template <typename T>
  T* AllocateArray(size_t count) {
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  // Rewinds the arena to empty. Blocks are retained for reuse, so a
  // steady-state Allocate/Reset cycle touches the heap zero times.
  void Reset() {
    block_index_ = 0;
    offset_ = 0;
    bytes_requested_ = 0;
  }

  // Observability for tests and sizing.
  size_t block_count() const { return blocks_.size(); }
  size_t bytes_requested() const { return bytes_requested_; }
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Block& b : blocks_) {
      total += b.capacity;
    }
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t capacity = 0;
  };

  static uintptr_t AlignUp(uintptr_t n, size_t align) { return (n + align - 1) & ~(align - 1); }

  void* AllocateSlow(size_t bytes, size_t align) {
    // Advance past the exhausted block; reuse a retained block when it fits
    // (alignment padding included), otherwise splice in a fresh one.
    if (block_index_ < blocks_.size()) {
      ++block_index_;
    }
    const size_t needed = bytes + align;
    if (block_index_ >= blocks_.size() || blocks_[block_index_].capacity < needed) {
      Block b;
      b.capacity = needed > default_block_bytes_ ? needed : default_block_bytes_;
      b.data = std::make_unique<std::byte[]>(b.capacity);
      blocks_.insert(blocks_.begin() + static_cast<ptrdiff_t>(block_index_), std::move(b));
    }
    Block& b = blocks_[block_index_];
    const size_t base = AlignUp(reinterpret_cast<uintptr_t>(b.data.get()), align) -
                        reinterpret_cast<uintptr_t>(b.data.get());
    offset_ = base + bytes;
    return b.data.get() + base;
  }

  std::vector<Block> blocks_;
  size_t block_index_ = 0;
  size_t offset_ = 0;
  size_t default_block_bytes_;
  size_t bytes_requested_ = 0;
};

// Minimal std::allocator adapter over an Arena. Deallocation is a no-op;
// storage is reclaimed wholesale by Arena::Reset().
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) { return arena_->AllocateArray<T>(n); }
  void deallocate(T* /*p*/, size_t /*n*/) {}

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) { return !(a == b); }

 private:
  Arena* arena_;
};

// The workhorse container for epoch-scoped scratch lists.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace cxl

#endif  // CXL_EXPLORER_SRC_UTIL_ARENA_H_
