#include "src/util/config.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace cxl {

namespace {

// Trims leading/trailing whitespace.
std::string Trim(const std::string& s) {
  const size_t start = s.find_first_not_of(" \t\r");
  if (start == std::string::npos) {
    return "";
  }
  const size_t end = s.find_last_not_of(" \t\r");
  return s.substr(start, end - start + 1);
}

}  // namespace

StatusOr<Config> Config::Parse(std::istream& is) {
  Config cfg;
  std::string line;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = Trim(line);
    if (line.empty()) {
      continue;
    }
    // Split on '=' or the first whitespace run.
    size_t sep = line.find('=');
    std::string key;
    std::string value;
    if (sep != std::string::npos) {
      key = Trim(line.substr(0, sep));
      value = Trim(line.substr(sep + 1));
    } else {
      sep = line.find_first_of(" \t");
      if (sep == std::string::npos) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": expected 'key value' or 'key = value'");
      }
      key = Trim(line.substr(0, sep));
      value = Trim(line.substr(sep + 1));
    }
    if (key.empty() || value.empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": empty key or value");
    }
    if (!cfg.values_.emplace(key, value).second) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": duplicate key '" +
                                     key + "'");
    }
  }
  return cfg;
}

StatusOr<Config> Config::ParseString(const std::string& text) {
  std::istringstream is(text);
  return Parse(is);
}

std::string Config::GetString(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

StatusOr<double> Config::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument(key + ": not a number: '" + it->second + "'");
  }
  return v;
}

StatusOr<int64_t> Config::GetInt(const std::string& key, int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument(key + ": not an integer: '" + it->second + "'");
  }
  return static_cast<int64_t>(v);
}

StatusOr<bool> Config::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no") {
    return false;
  }
  return Status::InvalidArgument(key + ": not a boolean: '" + v + "'");
}

}  // namespace cxl
