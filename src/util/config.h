// Minimal experiment-spec parser: `key = value` lines (also `key value`),
// '#' comments, no sections. Used by the cxl_lab example so experiments can
// be described in checked-in files, mirroring how the paper's artifact
// repository ships testing configurations.
#ifndef CXL_EXPLORER_SRC_UTIL_CONFIG_H_
#define CXL_EXPLORER_SRC_UTIL_CONFIG_H_

#include <istream>
#include <map>
#include <string>

#include "src/util/status.h"

namespace cxl {

class Config {
 public:
  // Parses a stream; returns INVALID_ARGUMENT (with a line number) for
  // malformed rows or duplicate keys.
  static StatusOr<Config> Parse(std::istream& is);
  static StatusOr<Config> ParseString(const std::string& text);

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  // Typed getters; return `fallback` for missing keys, an error Status (via
  // assert-free StatusOr) only for present-but-unparsable values.
  std::string GetString(const std::string& key, const std::string& fallback = "") const;
  StatusOr<double> GetDouble(const std::string& key, double fallback) const;
  StatusOr<int64_t> GetInt(const std::string& key, int64_t fallback) const;
  // Accepts true/false/1/0/yes/no (case-sensitive lowercase).
  StatusOr<bool> GetBool(const std::string& key, bool fallback) const;

  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace cxl

#endif  // CXL_EXPLORER_SRC_UTIL_CONFIG_H_
