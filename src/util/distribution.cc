#include "src/util/distribution.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <utility>

namespace cxl {

namespace {

// zeta(n, theta) = sum_{i=1..n} 1/i^theta, computed incrementally from a
// previous prefix when possible.
double ZetaIncremental(uint64_t from, uint64_t to, double theta, double base) {
  double z = base;
  for (uint64_t i = from + 1; i <= to; ++i) {
    z += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return z;
}

// Process-wide cache of zeta(n, theta) prefix sums. Every cell of a Fig. 5
// style sweep builds a Zipfian over the same multi-million-key space, and the
// O(n) zeta prefix dominated cell startup; with the cache the first
// construction pays it and the rest reuse the stored checkpoint. Extending a
// cached prefix runs the identical left-to-right summation the from-scratch
// loop would, so cached and uncached constructions are bit-identical — which
// also makes the result independent of which sweep thread primed the cache.
// Keys pair the exact bit pattern of theta with n; values are zeta(n, theta).
double CachedZeta(uint64_t n, double theta) {
  static std::mutex mutex;
  static std::map<std::pair<uint64_t, uint64_t>, double> cache;

  uint64_t theta_bits = 0;
  static_assert(sizeof(theta_bits) == sizeof(theta));
  std::memcpy(&theta_bits, &theta, sizeof(theta_bits));

  std::lock_guard<std::mutex> lock(mutex);
  uint64_t from = 0;
  double base = 0.0;
  auto it = cache.upper_bound({theta_bits, n});
  if (it != cache.begin()) {
    --it;
    if (it->first.first == theta_bits) {
      from = it->first.second;
      base = it->second;
      if (from == n) {
        return base;
      }
    }
  }
  const double z = ZetaIncremental(from, n, theta, base);
  cache.emplace(std::make_pair(theta_bits, n), z);
  return z;
}

}  // namespace

ZipfianDistribution::ZipfianDistribution(uint64_t n, double theta) : n_(n), theta_(theta) {
  assert(n >= 1);
  assert(theta > 0.0 && theta < 1.0);
  zeta_two_ = ZetaIncremental(0, 2, theta_, 0.0);
  zeta_n_ = CachedZeta(n_, theta_);
  Recompute();
}

void ZipfianDistribution::Recompute() {
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta_two_ / zeta_n_);
}

void ZipfianDistribution::GrowTo(uint64_t new_count) {
  if (new_count <= n_) {
    return;
  }
  zeta_n_ = ZetaIncremental(n_, new_count, theta_, zeta_n_);
  n_ = new_count;
  Recompute();
}

uint64_t ZipfianDistribution::Next(Rng& rng) {
  const double u = rng.NextDouble();
  const double uz = u * zeta_n_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const auto rank = static_cast<uint64_t>(static_cast<double>(n_) *
                                          std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

double ZipfianDistribution::ProbabilityOfRank(uint64_t k) const {
  assert(k < n_);
  return (1.0 / std::pow(static_cast<double>(k + 1), theta_)) / zeta_n_;
}

uint64_t HotSpotDistribution::Next(Rng& rng) {
  const auto hot_items = static_cast<uint64_t>(hot_set_fraction_ * static_cast<double>(n_));
  const uint64_t hot_n = hot_items == 0 ? 1 : hot_items;
  if (rng.NextBool(hot_fraction_)) {
    return rng.NextBounded(hot_n);
  }
  const uint64_t cold_n = n_ - hot_n;
  if (cold_n == 0) {
    return rng.NextBounded(hot_n);
  }
  return hot_n + rng.NextBounded(cold_n);
}

std::unique_ptr<KeyDistribution> MakeUniform(uint64_t n) {
  return std::make_unique<UniformDistribution>(n);
}

std::unique_ptr<KeyDistribution> MakeZipfian(uint64_t n, double theta) {
  return std::make_unique<ZipfianDistribution>(n, theta);
}

std::unique_ptr<KeyDistribution> MakeScrambledZipfian(uint64_t n, double theta) {
  return std::make_unique<ScrambledZipfianDistribution>(n, theta);
}

std::unique_ptr<KeyDistribution> MakeLatest(uint64_t n, double theta) {
  return std::make_unique<LatestDistribution>(n, theta);
}

}  // namespace cxl
