// Key-popularity distributions used by the workload generators.
//
// These mirror the generators in the YCSB core package (Gray et al.'s
// incremental Zipfian algorithm, the scrambled variant, and the "latest"
// distribution used by YCSB-D), since the paper drives KeyDB with YCSB.
#ifndef CXL_EXPLORER_SRC_UTIL_DISTRIBUTION_H_
#define CXL_EXPLORER_SRC_UTIL_DISTRIBUTION_H_

#include <cstdint>
#include <memory>

#include "src/util/rng.h"

namespace cxl {

// Interface: draws an item index in [0, item_count()).
class KeyDistribution {
 public:
  virtual ~KeyDistribution() = default;

  // Draws the next item index.
  virtual uint64_t Next(Rng& rng) = 0;

  // Number of items currently addressable by the distribution.
  virtual uint64_t item_count() const = 0;

  // Informs the distribution that the item space grew (e.g. an insert
  // happened). Default: ignored.
  virtual void GrowTo(uint64_t new_count) { (void)new_count; }
};

// Uniform over [0, n).
class UniformDistribution final : public KeyDistribution {
 public:
  explicit UniformDistribution(uint64_t n) : n_(n) {}

  uint64_t Next(Rng& rng) override { return rng.NextBounded(n_); }
  uint64_t item_count() const override { return n_; }
  void GrowTo(uint64_t new_count) override {
    if (new_count > n_) {
      n_ = new_count;
    }
  }

 private:
  uint64_t n_;
};

// Zipfian over [0, n) with parameter theta (default 0.99, the YCSB default).
// Rank 0 is the most popular item. Uses Gray et al.'s method: O(1) per draw
// after an O(n) zeta computation (computed once, then incrementally updated
// on growth).
class ZipfianDistribution final : public KeyDistribution {
 public:
  static constexpr double kDefaultTheta = 0.99;

  explicit ZipfianDistribution(uint64_t n, double theta = kDefaultTheta);

  uint64_t Next(Rng& rng) override;
  uint64_t item_count() const override { return n_; }
  void GrowTo(uint64_t new_count) override;

  // Probability mass of rank `k` under the current parameters (for tests).
  double ProbabilityOfRank(uint64_t k) const;

 private:
  void Recompute();

  uint64_t n_;
  double theta_;
  double zeta_n_ = 0.0;    // zeta(n, theta)
  double zeta_two_ = 0.0;  // zeta(2, theta)
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

// Zipfian with ranks scattered over the item space by a hash, so popular
// items are not clustered at low indices (YCSB's ScrambledZipfian).
class ScrambledZipfianDistribution final : public KeyDistribution {
 public:
  explicit ScrambledZipfianDistribution(uint64_t n, double theta = ZipfianDistribution::kDefaultTheta)
      : inner_(n, theta), n_(n) {}

  uint64_t Next(Rng& rng) override { return SplitMix64(inner_.Next(rng)) % n_; }
  uint64_t item_count() const override { return n_; }
  void GrowTo(uint64_t new_count) override {
    inner_.GrowTo(new_count);
    n_ = new_count;
  }

 private:
  ZipfianDistribution inner_;
  uint64_t n_;
};

// YCSB "latest": the most recently inserted items are the most popular.
// Internally a Zipfian over recency: draw r, return (newest - r).
class LatestDistribution final : public KeyDistribution {
 public:
  explicit LatestDistribution(uint64_t n, double theta = ZipfianDistribution::kDefaultTheta)
      : inner_(n, theta), n_(n) {}

  uint64_t Next(Rng& rng) override {
    const uint64_t r = inner_.Next(rng);
    return n_ - 1 - r;
  }
  uint64_t item_count() const override { return n_; }
  void GrowTo(uint64_t new_count) override {
    inner_.GrowTo(new_count);
    n_ = new_count;
  }

 private:
  ZipfianDistribution inner_;
  uint64_t n_;
};

// Hotspot: `hot_fraction` of draws hit the first `hot_set_fraction * n`
// items uniformly; the rest hit the remaining items uniformly.
class HotSpotDistribution final : public KeyDistribution {
 public:
  HotSpotDistribution(uint64_t n, double hot_set_fraction, double hot_fraction)
      : n_(n), hot_set_fraction_(hot_set_fraction), hot_fraction_(hot_fraction) {}

  uint64_t Next(Rng& rng) override;
  uint64_t item_count() const override { return n_; }

 private:
  uint64_t n_;
  double hot_set_fraction_;
  double hot_fraction_;
};

// Factory helpers.
std::unique_ptr<KeyDistribution> MakeUniform(uint64_t n);
std::unique_ptr<KeyDistribution> MakeZipfian(uint64_t n,
                                             double theta = ZipfianDistribution::kDefaultTheta);
std::unique_ptr<KeyDistribution> MakeScrambledZipfian(
    uint64_t n, double theta = ZipfianDistribution::kDefaultTheta);
std::unique_ptr<KeyDistribution> MakeLatest(uint64_t n,
                                            double theta = ZipfianDistribution::kDefaultTheta);

}  // namespace cxl

#endif  // CXL_EXPLORER_SRC_UTIL_DISTRIBUTION_H_
