// Division-free 64-bit modulo by a fixed divisor.
//
// KvStore::Access reduces a hashed band index modulo the region's page
// count on every operation; a 64-bit hardware divide costs 30-90 cycles on
// the cores we run on, which is a measurable slice of a multi-million-op
// sweep cell. FastMod64 precomputes floor((2^64-1)/d) once and reduces via
// a 128-bit multiply plus at most one subtractive correction — exact for
// every 64-bit input, so results are bit-identical to `x % d`.
//
// Why one correction suffices: with m = floor((2^64-1)/d) we have
// m*d = 2^64 - 1 - t for some 0 <= t < d, so the estimated quotient
// q' = floor(m*x / 2^64) satisfies x/d - m*x/2^64 = x*(1+t)/(d*2^64) < 1,
// hence q - q' <= 1 and the remainder needs at most one d subtracted.
#ifndef CXL_EXPLORER_SRC_UTIL_FASTMOD_H_
#define CXL_EXPLORER_SRC_UTIL_FASTMOD_H_

#include <cstdint>

namespace cxl {

class FastMod64 {
 public:
  // d == 0 is treated as d == 1 (always-zero remainder), matching the
  // callers' max(d, 1) guards.
  explicit FastMod64(uint64_t d)
      : d_(d), m_(d > 1 ? ~uint64_t{0} / d : 0) {}

  uint64_t divisor() const { return d_; }

  uint64_t operator()(uint64_t x) const {
    if (d_ <= 1) {
      return 0;
    }
    const uint64_t q = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(m_) * x) >> 64);
    uint64_t r = x - q * d_;
    if (r >= d_) {
      r -= d_;
    }
    return r;
  }

 private:
  uint64_t d_;
  uint64_t m_;
};

}  // namespace cxl

#endif  // CXL_EXPLORER_SRC_UTIL_FASTMOD_H_
