#include "src/util/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

namespace cxl {

Histogram::Histogram(double min_value, double max_value, int buckets_per_decade)
    : min_value_(min_value), max_value_(max_value) {
  assert(min_value > 0.0 && max_value > min_value && buckets_per_decade > 0);
  log_min_ = std::log10(min_value_);
  const double decades = std::log10(max_value_) - log_min_;
  const int n_buckets = static_cast<int>(std::ceil(decades * buckets_per_decade)) + 1;
  log_step_ = 1.0 / buckets_per_decade;
  inv_log_step_ = static_cast<double>(buckets_per_decade);
  buckets_.assign(static_cast<size_t>(n_buckets), 0);
}

int Histogram::BucketIndex(double value) const {
  if (value <= min_value_) {
    return 0;
  }
  if (value >= max_value_) {
    return static_cast<int>(buckets_.size()) - 1;
  }
  const int idx = static_cast<int>((std::log10(value) - log_min_) * inv_log_step_);
  return std::clamp(idx, 0, static_cast<int>(buckets_.size()) - 1);
}

double Histogram::BucketUpperBound(int index) const {
  return std::pow(10.0, log_min_ + (index + 1) * log_step_);
}

void Histogram::Record(double value) { RecordMany(value, 1); }

void Histogram::RecordBatch(const double* values, size_t count) {
  // Left-to-right, one sample at a time: the running sum_ must see the same
  // addition order an unbatched producer would, or snapshots drift in the
  // last ulps. The last-bucket cache still collapses the common runs of
  // identical quantized latencies.
  for (size_t i = 0; i < count; ++i) {
    RecordMany(values[i], 1);
  }
}

void Histogram::RecordMany(double value, uint64_t n) {
  if (n == 0) {
    return;
  }
  if (last_bucket_ < 0 || value != last_value_) {
    last_bucket_ = BucketIndex(value);
    last_value_ = value;
  }
  buckets_[static_cast<size_t>(last_bucket_)] += n;
  min_seen_ = std::min(min_seen_, value);
  max_seen_ = std::max(max_seen_, value);
  count_ += n;
  sum_ += value * static_cast<double>(n);
}

void Histogram::Merge(const Histogram& other) {
  assert(buckets_.size() == other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  // The +/-inf sentinels of an empty side are absorbed by min/max.
  min_seen_ = std::min(min_seen_, other.min_seen_);
  max_seen_ = std::max(max_seen_, other.max_seen_);
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::ValueAtQuantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  uint64_t cum = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= target && buckets_[i] > 0) {
      // Report the bucket's geometric midpoint, clamped to observed extremes.
      const double hi = BucketUpperBound(static_cast<int>(i));
      const double lo = hi * std::pow(10.0, -log_step_);
      return std::clamp(std::sqrt(lo * hi), min_seen_, max_seen_);
    }
  }
  return max_seen_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_seen_ = std::numeric_limits<double>::infinity();
  max_seen_ = -std::numeric_limits<double>::infinity();
  last_value_ = 0.0;
  last_bucket_ = -1;
}

std::vector<Histogram::CdfPoint> Histogram::Cdf() const {
  std::vector<CdfPoint> points;
  if (count_ == 0) {
    return points;
  }
  uint64_t cum = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    cum += buckets_[i];
    points.push_back(CdfPoint{BucketUpperBound(static_cast<int>(i)),
                              static_cast<double>(cum) / static_cast<double>(count_)});
  }
  return points;
}

std::string Histogram::Summary(const std::string& unit) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%.1f%s p50=%.1f%s p99=%.1f%s p999=%.1f%s max=%.1f%s",
                static_cast<unsigned long long>(count_), mean(), unit.c_str(), p50(), unit.c_str(),
                p99(), unit.c_str(), p999(), unit.c_str(), max(), unit.c_str());
  return buf;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace cxl
