// Log-bucketed latency histogram (HdrHistogram-style) for percentiles and
// CDF export, plus a small exact-running-statistics accumulator.
#ifndef CXL_EXPLORER_SRC_UTIL_HISTOGRAM_H_
#define CXL_EXPLORER_SRC_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace cxl {

// Records double samples (e.g. latency in ns) into geometric buckets covering
// [min_value, max_value] with a configurable number of buckets per decade.
// Percentile error is bounded by the bucket width (default ~2.4% with 96
// buckets/decade).
class Histogram {
 public:
  // Covers [1, 1e10) ns by default (sub-ns to ~10 s), 96 buckets per decade.
  explicit Histogram(double min_value = 1.0, double max_value = 1e10,
                     int buckets_per_decade = 96);

  // Records one sample; values are clamped into the covered range.
  void Record(double value);

  // Records `count` identical samples.
  void RecordMany(double value, uint64_t count);

  // Records `count` samples in array order. Equivalent to calling Record on
  // each element left to right — same buckets AND the same sum (double
  // accumulation is order-sensitive), so a batched producer snapshots
  // bit-identically to an unbatched one. The epoch paths buffer latencies
  // and flush once per epoch through this.
  void RecordBatch(const double* values, size_t count);

  // Merges another histogram with identical bucket layout.
  void Merge(const Histogram& other);

  // Returns the value at quantile q in [0, 1]. Returns 0 for an empty
  // histogram. q=0 returns ~min recorded, q=1 returns ~max recorded.
  double ValueAtQuantile(double q) const;

  double p50() const { return ValueAtQuantile(0.50); }
  double p90() const { return ValueAtQuantile(0.90); }
  double p95() const { return ValueAtQuantile(0.95); }
  double p99() const { return ValueAtQuantile(0.99); }
  double p999() const { return ValueAtQuantile(0.999); }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_seen_; }
  double max() const { return count_ == 0 ? 0.0 : max_seen_; }

  // Empties the histogram.
  void Reset();

  // One (value, cumulative_fraction) point per non-empty bucket, suitable for
  // plotting a CDF like Fig. 5(c) / Fig. 8(a).
  struct CdfPoint {
    double value;
    double cumulative;
  };
  std::vector<CdfPoint> Cdf() const;

  // Formats "p50=... p99=... p999=... max=..." with the given unit suffix.
  std::string Summary(const std::string& unit = "ns") const;

 private:
  int BucketIndex(double value) const;
  double BucketUpperBound(int index) const;

  double min_value_;
  double max_value_;
  double log_min_;
  double inv_log_step_;  // buckets per log10 unit.
  double log_step_;
  // Last (value -> bucket) mapping. Identical consecutive latencies are
  // common in the simulator (quantized service times, RecordMany batches),
  // and the cache turns the log10() in BucketIndex into a compare.
  // Reset() clears it so a reset histogram is indistinguishable from a
  // freshly constructed one.
  double last_value_ = 0.0;
  int last_bucket_ = -1;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  // +/-inf sentinels while empty, so Record/Merge need no emptiness checks;
  // min()/max() translate them back to 0.0 for callers.
  double min_seen_ = std::numeric_limits<double>::infinity();
  double max_seen_ = -std::numeric_limits<double>::infinity();
};

// Welford running mean/variance for quick aggregate statistics.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) {
      min_ = x;
    }
    if (n_ == 1 || x > max_) {
      max_ = x;
    }
    sum_ += x;
  }

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double sum() const { return sum_; }
  double variance() const { return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1); }
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace cxl

#endif  // CXL_EXPLORER_SRC_UTIL_HISTOGRAM_H_
