#include "src/util/knobs.h"

#include <cassert>
#include <iostream>

namespace cxl {

void KnobSet::Declare(const std::string& key, double default_value,
                      const std::string& description) {
  Entry entry;
  entry.value = default_value;
  entry.default_value = default_value;
  entry.description = description;
  entries_[key] = std::move(entry);
}

Status KnobSet::Set(const std::string& key, double value) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("unknown knob: " + key);
  }
  if (it->second.deprecated && !it->second.warned) {
    // Stderr: the warning must never perturb stdout goldens.
    std::cerr << "knob: " << it->second.deprecation << "\n";
    it->second.warned = true;
  }
  it->second.value = value;
  it->second.set = true;
  return Status::Ok();
}

double KnobSet::Get(const std::string& key) const {
  auto it = entries_.find(key);
  assert(it != entries_.end() && "knob not declared");
  if (it == entries_.end()) {
    return 0.0;
  }
  return it->second.value;
}

bool KnobSet::WasSet(const std::string& key) const {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    return it->second.set;
  }
  auto sit = string_entries_.find(key);
  return sit != string_entries_.end() && sit->second.set;
}

void KnobSet::Deprecate(const std::string& key, const std::string& message) {
  auto it = entries_.find(key);
  assert(it != entries_.end() && "knob not declared");
  if (it == entries_.end()) {
    return;
  }
  it->second.deprecated = true;
  it->second.deprecation = message;
}

void KnobSet::DeclareString(const std::string& key, const std::string& default_value,
                            const std::string& description) {
  string_entries_[key] = StringEntry{default_value, default_value, description};
}

Status KnobSet::SetString(const std::string& key, const std::string& value) {
  auto it = string_entries_.find(key);
  if (it == string_entries_.end()) {
    return Status::NotFound("unknown knob: " + key);
  }
  it->second.value = value;
  it->second.set = true;
  return Status::Ok();
}

std::string KnobSet::GetString(const std::string& key) const {
  auto it = string_entries_.find(key);
  assert(it != string_entries_.end() && "knob not declared");
  if (it == string_entries_.end()) {
    return std::string();
  }
  return it->second.value;
}

void KnobSet::ResetAll() {
  for (auto& [key, entry] : entries_) {
    entry.value = entry.default_value;
    entry.set = false;
  }
  for (auto& [key, entry] : string_entries_) {
    entry.value = entry.default_value;
    entry.set = false;
  }
}

}  // namespace cxl
