#include "src/util/knobs.h"

#include <cassert>

namespace cxl {

void KnobSet::Declare(const std::string& key, double default_value,
                      const std::string& description) {
  entries_[key] = Entry{default_value, default_value, description};
}

Status KnobSet::Set(const std::string& key, double value) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("unknown knob: " + key);
  }
  it->second.value = value;
  return Status::Ok();
}

double KnobSet::Get(const std::string& key) const {
  auto it = entries_.find(key);
  assert(it != entries_.end() && "knob not declared");
  if (it == entries_.end()) {
    return 0.0;
  }
  return it->second.value;
}

void KnobSet::ResetAll() {
  for (auto& [key, entry] : entries_) {
    entry.value = entry.default_value;
  }
}

}  // namespace cxl
