// sysctl-style tunables. The kernel patches the paper evaluates are all
// configured through sysctl knobs (vm.numa_tier_interleave,
// kernel.numa_balancing_promote_rate_limit_MBps, ...); KnobSet reproduces
// that configuration surface so experiments read like the paper's setups.
#ifndef CXL_EXPLORER_SRC_UTIL_KNOBS_H_
#define CXL_EXPLORER_SRC_UTIL_KNOBS_H_

#include <map>
#include <string>

#include "src/util/status.h"

namespace cxl {

// String-keyed knob registry with typed accessors and defaults. Unknown keys
// are rejected at Set() time once the knob has been Declared, mirroring
// sysctl's behaviour of only accepting registered entries.
class KnobSet {
 public:
  // Registers a knob with its default value and a one-line description.
  void Declare(const std::string& key, double default_value, const std::string& description);

  // Sets a declared knob. Returns NOT_FOUND for unknown keys.
  Status Set(const std::string& key, double value);

  // Reads a knob; returns the declared default if never Set.
  // Asserts (in debug) that the key was declared.
  double Get(const std::string& key) const;

  bool IsDeclared(const std::string& key) const { return entries_.count(key) > 0; }

  // Restores every knob to its declared default.
  void ResetAll();

  // For documentation dumps.
  struct Entry {
    double value;
    double default_value;
    std::string description;
  };
  const std::map<std::string, Entry>& entries() const { return entries_; }

 private:
  std::map<std::string, Entry> entries_;
};

}  // namespace cxl

#endif  // CXL_EXPLORER_SRC_UTIL_KNOBS_H_
