// sysctl-style tunables. The kernel patches the paper evaluates are all
// configured through sysctl knobs (vm.numa_tier_interleave,
// kernel.numa_balancing_promote_rate_limit_MBps, ...); KnobSet reproduces
// that configuration surface so experiments read like the paper's setups.
#ifndef CXL_EXPLORER_SRC_UTIL_KNOBS_H_
#define CXL_EXPLORER_SRC_UTIL_KNOBS_H_

#include <map>
#include <string>

#include "src/util/status.h"

namespace cxl {

// String-keyed knob registry with typed accessors and defaults. Unknown keys
// are rejected at Set() time once the knob has been Declared, mirroring
// sysctl's behaviour of only accepting registered entries. Numeric and
// string knobs live in separate namespaces (a key is one or the other).
class KnobSet {
 public:
  // Registers a knob with its default value and a one-line description.
  void Declare(const std::string& key, double default_value, const std::string& description);

  // Sets a declared knob. Returns NOT_FOUND for unknown keys. The first
  // Set() on a Deprecate()d knob prints the deprecation message to stderr
  // (once per KnobSet instance — no process-wide state).
  Status Set(const std::string& key, double value);

  // Reads a knob; returns the declared default if never Set.
  // Asserts (in debug) that the key was declared.
  double Get(const std::string& key) const;

  bool IsDeclared(const std::string& key) const { return entries_.count(key) > 0; }

  // True when the knob was explicitly Set() since Declare()/ResetAll() —
  // distinguishes "left at default" from "set to the default value", which
  // matters for deprecated aliases that only override when actually used.
  bool WasSet(const std::string& key) const;

  // Marks a declared numeric knob as deprecated: the first Set() on it
  // warns with `message` on stderr. Reading stays silent.
  void Deprecate(const std::string& key, const std::string& message);

  // String-valued knobs (e.g. vm.tiering_policy): same Declare/Set/Get
  // contract as the numeric surface.
  void DeclareString(const std::string& key, const std::string& default_value,
                     const std::string& description);
  Status SetString(const std::string& key, const std::string& value);
  std::string GetString(const std::string& key) const;
  bool IsDeclaredString(const std::string& key) const {
    return string_entries_.count(key) > 0;
  }

  // Restores every knob (numeric and string) to its declared default.
  void ResetAll();

  // For documentation dumps.
  struct Entry {
    double value = 0.0;
    double default_value = 0.0;
    std::string description;
    bool set = false;         // Explicitly Set() since declaration/reset.
    bool deprecated = false;  // Deprecate() called; `deprecation` holds the message.
    bool warned = false;      // Deprecation warning already printed.
    std::string deprecation;
  };
  const std::map<std::string, Entry>& entries() const { return entries_; }

  struct StringEntry {
    std::string value;
    std::string default_value;
    std::string description;
    bool set = false;
  };
  const std::map<std::string, StringEntry>& string_entries() const { return string_entries_; }

 private:
  std::map<std::string, Entry> entries_;
  std::map<std::string, StringEntry> string_entries_;
};

}  // namespace cxl

#endif  // CXL_EXPLORER_SRC_UTIL_KNOBS_H_
