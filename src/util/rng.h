// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the simulator draw from Rng so that every
// experiment is reproducible from a single seed. xoshiro256** is used for the
// stream (fast, high quality) and SplitMix64 for seeding / hashing.
#ifndef CXL_EXPLORER_SRC_UTIL_RNG_H_
#define CXL_EXPLORER_SRC_UTIL_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>

namespace cxl {

// SplitMix64 step: maps any 64-bit value to a well-mixed 64-bit value.
// Useful standalone as a cheap integer hash.
constexpr uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// xoshiro256** generator with convenience draws for the distributions the
// simulator needs. Copyable: copies continue independent identical streams.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    uint64_t s = seed;
    for (auto& word : state_) {
      s = SplitMix64(s);
      word = s;
      // Defensively avoid the all-zero state (SplitMix64 cannot produce four
      // zero outputs from distinct inputs, but keep the invariant explicit).
      if (word == 0) {
        word = 0x2545f4914f6cdd1dull;
      }
    }
  }

  // Uniform 64-bit draw.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0. Uses Lemire's multiply-shift
  // with rejection for unbiased results.
  uint64_t NextBounded(uint64_t bound) {
    assert(bound > 0);
    // 128-bit multiply-high partition of the 64-bit space into `bound` slots.
    unsigned __int128 m = static_cast<unsigned __int128>(NextU64()) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = (0ull - bound) % bound;
      while (low < threshold) {
        m = static_cast<unsigned __int128>(NextU64()) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);  // 2^-53.
  }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Bernoulli draw with probability p of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

  // Exponential draw with the given mean (inverse-CDF method).
  double NextExponential(double mean) {
    // 1 - u in (0, 1] avoids log(0).
    return -mean * std::log(1.0 - NextDouble());
  }

  // Standard normal via Marsaglia polar method (no cached spare: simple and
  // branch-predictable enough for our volumes).
  double NextGaussian(double mean = 0.0, double stddev = 1.0) {
    double u;
    double v;
    double s;
    do {
      u = NextDouble(-1.0, 1.0);
      v = NextDouble(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
  }

  // Pareto-ish heavy tail used for service-time jitter: mean `mean`, shape
  // alpha > 1 (smaller alpha = heavier tail).
  double NextPareto(double mean, double alpha) {
    assert(alpha > 1.0);
    const double xm = mean * (alpha - 1.0) / alpha;  // Scale for the target mean.
    return xm / std::pow(1.0 - NextDouble(), 1.0 / alpha);
  }

  // Derives an independent child generator; `stream` distinguishes children.
  Rng Fork(uint64_t stream) const {
    return Rng(SplitMix64(state_[0] ^ SplitMix64(stream + 0x632be59bd9b4e019ull)));
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4] = {};
};

}  // namespace cxl

#endif  // CXL_EXPLORER_SRC_UTIL_RNG_H_
