// Move-only callable wrapper with inline storage.
//
// The discrete-event kernel schedules millions of closures per cell; the
// KeyDB completion lambdas capture ~24 bytes, which overflows libstdc++'s
// 16-byte std::function SBO and costs one heap round-trip per simulated op.
// SmallFunction stores captures up to InlineBytes in place (48 covers every
// closure in the tree today) and only falls back to the heap beyond that, so
// it is a drop-in replacement with the allocation removed.
#ifndef CXL_EXPLORER_SRC_UTIL_SMALL_FUNCTION_H_
#define CXL_EXPLORER_SRC_UTIL_SMALL_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cxl {

template <size_t InlineBytes = 48>
class SmallFunction {
 public:
  SmallFunction() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallFunction>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function.
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= InlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &kHeapOps<Fn>;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept { MoveFrom(std::move(other)); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { Destroy(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*move)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* dst, void* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); }};

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* p) { (**reinterpret_cast<Fn**>(p))(); },
      [](void* dst, void* src) {
        *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
      },
      [](void* p) { delete *reinterpret_cast<Fn**>(p); }};

  void MoveFrom(SmallFunction&& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void Destroy() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace cxl

#endif  // CXL_EXPLORER_SRC_UTIL_SMALL_FUNCTION_H_
