// Minimal Status / StatusOr error-propagation types (no exceptions in library
// code, per the style guides this project follows).
#ifndef CXL_EXPLORER_SRC_UTIL_STATUS_H_
#define CXL_EXPLORER_SRC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace cxl {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kAlreadyExists,
  kUnimplemented,
  kInternal,
};

// Returns a short human-readable name for a status code ("OK",
// "INVALID_ARGUMENT", ...).
constexpr const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

// Value-semantic error carrier. Default-constructed Status is OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CODE: message" for diagnostics.
  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    std::string out = StatusCodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Union of a Status and a value of type T. Accessing value() on an error
// StatusOr is a programming bug and asserts.
template <typename T>
class StatusOr {
 public:
  using value_type = T;

  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value, or `fallback` when this holds an error.
  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace cxl

#endif  // CXL_EXPLORER_SRC_UTIL_STATUS_H_
