#include "src/util/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <iomanip>

namespace cxl {

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

Table& Table::Row() {
  assert(rows_.empty() || rows_.back().size() == columns_.size());
  rows_.emplace_back();
  return *this;
}

Table& Table::Cell(const std::string& value) {
  assert(!rows_.empty() && rows_.back().size() < columns_.size());
  rows_.back().push_back(value);
  return *this;
}

Table& Table::Cell(double value, int precision) { return Cell(FormatDouble(value, precision)); }

Table& Table::Cell(uint64_t value) { return Cell(std::to_string(value)); }

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << "\n";
  };
  print_row(columns_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void Table::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) {
        os << ",";
      }
      os << cells[c];
    }
    os << "\n";
  };
  print_row(columns_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void PrintSection(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace cxl
