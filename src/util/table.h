// Fixed-width ASCII table / CSV emitter used by the benchmark harnesses to
// print paper-style tables and figure series.
#ifndef CXL_EXPLORER_SRC_UTIL_TABLE_H_
#define CXL_EXPLORER_SRC_UTIL_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace cxl {

// Builds a table row by row; every row must have as many cells as there are
// columns. Numeric helpers format with sensible precision.
class Table {
 public:
  explicit Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

  // Starts a new row; subsequent Cell() calls fill it left to right.
  Table& Row();
  Table& Cell(const std::string& value);
  Table& Cell(const char* value) { return Cell(std::string(value)); }
  Table& Cell(double value, int precision = 2);
  Table& Cell(uint64_t value);
  Table& Cell(int value) { return Cell(static_cast<uint64_t>(value)); }

  size_t row_count() const { return rows_.size(); }

  // Pretty-prints with aligned columns and a header rule.
  void Print(std::ostream& os) const;

  // Emits RFC-4180-ish CSV (no quoting needed for our content).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a section header ("== title ==") used between figure panels.
void PrintSection(std::ostream& os, const std::string& title);

// Formats a double with the given precision (helper shared with benches).
std::string FormatDouble(double value, int precision = 2);

}  // namespace cxl

#endif  // CXL_EXPLORER_SRC_UTIL_TABLE_H_
