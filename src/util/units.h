// Units and unit-safe helpers used across the simulator.
//
// Conventions:
//  - Time is carried in double *nanoseconds* inside device models (latencies)
//    and in double *seconds* at application level. Conversion helpers below.
//  - Bandwidth is carried in double GB/s (decimal gigabytes: 1e9 bytes/s),
//    matching the units the paper reports (e.g. 67 GB/s, 56.7 GB/s).
//  - Capacities are carried in uint64_t bytes.
#ifndef CXL_EXPLORER_SRC_UTIL_UNITS_H_
#define CXL_EXPLORER_SRC_UTIL_UNITS_H_

#include <cstdint>

namespace cxl {

inline constexpr uint64_t kKiB = 1024ull;
inline constexpr uint64_t kMiB = 1024ull * kKiB;
inline constexpr uint64_t kGiB = 1024ull * kMiB;
inline constexpr uint64_t kTiB = 1024ull * kGiB;

inline constexpr uint64_t kKB = 1000ull;
inline constexpr uint64_t kMB = 1000ull * kKB;
inline constexpr uint64_t kGB = 1000ull * kMB;
inline constexpr uint64_t kTB = 1000ull * kGB;

inline constexpr double kNsPerUs = 1e3;
inline constexpr double kNsPerMs = 1e6;
inline constexpr double kNsPerSec = 1e9;

// Cache-line granularity of a CXL.mem / DDR access (the paper uses 64 B
// accesses throughout its MLC experiments).
inline constexpr uint64_t kCacheLineBytes = 64;

// Converts a bandwidth in GB/s and a transfer size in bytes to nanoseconds of
// pure transfer time (no queueing).
constexpr double TransferNs(uint64_t bytes, double gb_per_sec) {
  return static_cast<double>(bytes) / gb_per_sec;  // bytes / (GB/s) == ns.
}

// Converts nanoseconds to seconds.
constexpr double NsToSec(double ns) { return ns / kNsPerSec; }

// Converts seconds to nanoseconds.
constexpr double SecToNs(double sec) { return sec * kNsPerSec; }

// Converts a byte count to decimal gigabytes.
constexpr double BytesToGB(uint64_t bytes) { return static_cast<double>(bytes) / 1e9; }

// Converts a byte count to binary gibibytes.
constexpr double BytesToGiB(uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kGiB);
}

namespace literals {

constexpr uint64_t operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr uint64_t operator""_MiB(unsigned long long v) { return v * kMiB; }
constexpr uint64_t operator""_GiB(unsigned long long v) { return v * kGiB; }
constexpr uint64_t operator""_TiB(unsigned long long v) { return v * kTiB; }

}  // namespace literals

}  // namespace cxl

#endif  // CXL_EXPLORER_SRC_UTIL_UNITS_H_
