// Units and unit-safe helpers used across the simulator.
//
// Conventions:
//  - Time is carried in double *nanoseconds* inside device models (latencies)
//    and in double *seconds* at application level. Conversion helpers below.
//  - Bandwidth is carried in double GB/s (decimal gigabytes: 1e9 bytes/s),
//    matching the units the paper reports (e.g. 67 GB/s, 56.7 GB/s).
//  - Capacities are carried in uint64_t bytes.
#ifndef CXL_EXPLORER_SRC_UTIL_UNITS_H_
#define CXL_EXPLORER_SRC_UTIL_UNITS_H_

#include <cstdint>

namespace cxl {

inline constexpr uint64_t kKiB = 1024ull;
inline constexpr uint64_t kMiB = 1024ull * kKiB;
inline constexpr uint64_t kGiB = 1024ull * kMiB;
inline constexpr uint64_t kTiB = 1024ull * kGiB;

inline constexpr uint64_t kKB = 1000ull;
inline constexpr uint64_t kMB = 1000ull * kKB;
inline constexpr uint64_t kGB = 1000ull * kMB;
inline constexpr uint64_t kTB = 1000ull * kGB;

inline constexpr double kNsPerUs = 1e3;
inline constexpr double kNsPerMs = 1e6;
inline constexpr double kNsPerSec = 1e9;
inline constexpr double kUsPerMs = 1e3;
inline constexpr double kUsPerSec = 1e6;
inline constexpr double kMsPerSec = 1e3;

// Cache-line granularity of a CXL.mem / DDR access (the paper uses 64 B
// accesses throughout its MLC experiments).
inline constexpr uint64_t kCacheLineBytes = 64;

// Converts a bandwidth in GB/s and a transfer size in bytes to nanoseconds of
// pure transfer time (no queueing).
constexpr double TransferNs(uint64_t bytes, double gb_per_sec) {
  return static_cast<double>(bytes) / gb_per_sec;  // bytes / (GB/s) == ns.
}

// Converts nanoseconds to seconds.
constexpr double NsToSec(double ns) { return ns / kNsPerSec; }

// Converts seconds to nanoseconds.
constexpr double SecToNs(double sec) { return sec * kNsPerSec; }

// Time-scale conversions within the double-ns / double-seconds convention.
constexpr double NsToMs(double ns) { return ns / kNsPerMs; }
constexpr double NsToUs(double ns) { return ns / kNsPerUs; }
constexpr double UsToNs(double us) { return us * kNsPerUs; }
constexpr double MsToNs(double ms) { return ms * kNsPerMs; }
constexpr double MsToUs(double ms) { return ms * kUsPerMs; }
constexpr double MsToSec(double ms) { return ms / kMsPerSec; }
constexpr double SecToMs(double sec) { return sec * kMsPerSec; }
constexpr double UsToSec(double us) { return us / kUsPerSec; }
constexpr double SecToUs(double sec) { return sec * kUsPerSec; }

// Bandwidth in decimal GB/s from a byte count moved in `ns` nanoseconds.
// bytes/ns == GB/s exactly (1e9 bytes per GB, 1e9 ns per second).
constexpr double GbpsFromBytesNs(double bytes, double ns) {
  return bytes / ns;
}

// Bandwidth scale conversions: GB/s and MB/s to/from bytes per second.
constexpr double GbpsToBytesPerSec(double gbps) {
  return gbps * static_cast<double>(kGB);
}
constexpr double GbpsFromBytesPerSec(double bytes_per_sec) {
  return bytes_per_sec / static_cast<double>(kGB);
}
constexpr double MbpsToBytesPerSec(double mbps) {
  return mbps * static_cast<double>(kMB);
}

// Converts a byte count to decimal megabytes / gigabytes.
constexpr double BytesToMB(uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kMB);
}
constexpr double BytesToGB(uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kGB);
}

// Converts a byte count to binary mebibytes / gibibytes / tebibytes.
constexpr double BytesToMiB(uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kMiB);
}
constexpr double BytesToGiB(uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kGiB);
}
constexpr double BytesToTiB(uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kTiB);
}

// Converts a decimal-gigabyte quantity carried as double to bytes.
constexpr double GBToBytesd(double gb) { return gb * static_cast<double>(kGB); }

// Double-valued byte-count variants for values already carried as double.
constexpr double BytesToMBd(double bytes) {
  return bytes / static_cast<double>(kMB);
}
constexpr double BytesToGBd(double bytes) {
  return bytes / static_cast<double>(kGB);
}
constexpr double BytesToGiBd(double bytes) {
  return bytes / static_cast<double>(kGiB);
}

namespace literals {

constexpr uint64_t operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr uint64_t operator""_MiB(unsigned long long v) { return v * kMiB; }
constexpr uint64_t operator""_GiB(unsigned long long v) { return v * kGiB; }
constexpr uint64_t operator""_TiB(unsigned long long v) { return v * kTiB; }

constexpr uint64_t operator""_KB(unsigned long long v) { return v * kKB; }
constexpr uint64_t operator""_MB(unsigned long long v) { return v * kMB; }
constexpr uint64_t operator""_GB(unsigned long long v) { return v * kGB; }
constexpr uint64_t operator""_TB(unsigned long long v) { return v * kTB; }

}  // namespace literals

}  // namespace cxl

#endif  // CXL_EXPLORER_SRC_UTIL_UNITS_H_
