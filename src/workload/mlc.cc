#include "src/workload/mlc.h"

#include <algorithm>
#include <cmath>

namespace cxl::workload {

using mem::AccessMix;

std::vector<LoadedLatencyPoint> MlcBenchmark::LoadedLatencySweep(const AccessMix& mix,
                                                                 int points) const {
  std::vector<LoadedLatencyPoint> out;
  out.reserve(static_cast<size_t>(points));
  const double peak = profile_.PeakBandwidthGBps(mix, config_.pattern);
  const LoadedLatencyPoint closed = ClosedLoopPoint(mix);
  for (int i = 0; i < points; ++i) {
    // Quadratic spacing concentrates points near saturation, where the
    // interesting latency behaviour lives (like MLC's own delay ladder).
    const double frac = 0.02 + 1.23 * std::pow(static_cast<double>(i) / (points - 1), 2.0);
    LoadedLatencyPoint pt;
    pt.offered_gbps = frac * peak;
    // Concurrency-limited: the threads cannot offer more than the
    // closed-loop bound regardless of injection rate.
    const double offered = std::min(pt.offered_gbps, closed.achieved_gbps);
    pt.achieved_gbps = profile_.AchievedBandwidthGBps(mix, offered, config_.pattern);
    pt.latency_ns = profile_.LoadedLatencyNs(mix, offered, config_.pattern);
    pt.utilization = peak > 0.0 ? std::min(offered / peak, 1.0) : 0.0;
    out.push_back(pt);
  }
  return out;
}

LoadedLatencyPoint MlcBenchmark::ClosedLoopPoint(const AccessMix& mix) const {
  const double peak = profile_.PeakBandwidthGBps(mix, config_.pattern);
  const double inflight_bytes =
      config_.threads * config_.outstanding_per_thread * config_.access_bytes;
  // Fixed point of B = inflight_bytes / L(B). g(B) = inflight/L(B) - B is
  // strictly decreasing (L is nondecreasing), so bisection on [0, peak]
  // converges unconditionally. (bytes / ns == GB/s: no unit conversion.)
  auto g = [&](double b) {
    return inflight_bytes / profile_.LoadedLatencyNs(mix, b, config_.pattern) - b;
  };
  double bw;
  if (g(peak) >= 0.0) {
    bw = peak;  // Threads can drive the device to its clamped saturation.
  } else {
    double lo = 0.0;
    double hi = peak;
    for (int iter = 0; iter < 80; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (g(mid) > 0.0) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    bw = 0.5 * (lo + hi);
  }
  LoadedLatencyPoint pt;
  pt.offered_gbps = bw;
  pt.achieved_gbps = profile_.AchievedBandwidthGBps(mix, bw, config_.pattern);
  pt.latency_ns = profile_.LoadedLatencyNs(mix, bw, config_.pattern);
  pt.utilization = peak > 0.0 ? std::min(bw / peak, 1.0) : 0.0;
  return pt;
}

}  // namespace cxl::workload
