// Intel MLC-style loaded-latency benchmark (§3.1 methodology).
//
// MLC measures the latency-vs-bandwidth curve by running worker threads that
// issue 64 B accesses with a configurable read:write mix, incrementally
// raising the per-thread operation rate ("injection rate") until bandwidth
// saturates. We reproduce that procedure against a PathProfile:
//
//  - the open-loop sweep offers increasing load and records
//    (achieved bandwidth, loaded latency) points — the Fig. 3/4 curves;
//  - the closed-loop point applies Little's law with a bounded number of
//    outstanding requests per thread, which is what ultimately saturates the
//    device when the thread count is small.
#ifndef CXL_EXPLORER_SRC_WORKLOAD_MLC_H_
#define CXL_EXPLORER_SRC_WORKLOAD_MLC_H_

#include <vector>

#include "src/mem/access.h"
#include "src/mem/profiles.h"

namespace cxl::workload {

struct MlcConfig {
  // The paper deploys 16 MLC threads (§3.1).
  int threads = 16;
  // 64 B accesses, matching prior work.
  double access_bytes = 64.0;
  // Outstanding requests sustained per thread (MSHRs + prefetch + NT-store
  // write combining). 32 lets 16 threads saturate every device in §3.
  double outstanding_per_thread = 32.0;
  mem::AccessPattern pattern = mem::AccessPattern::kSequential;
};

struct LoadedLatencyPoint {
  double offered_gbps = 0.0;
  double achieved_gbps = 0.0;
  double latency_ns = 0.0;
  double utilization = 0.0;
};

class MlcBenchmark {
 public:
  MlcBenchmark(const mem::PathProfile& profile, MlcConfig config = {})
      : profile_(profile), config_(config) {}

  // Open-loop sweep: `points` injection rates from near-idle to ~1.25x peak.
  // The tail points show the saturation plateau (and, for droopy paths, the
  // bandwidth fall-back of Fig. 3(b)).
  std::vector<LoadedLatencyPoint> LoadedLatencySweep(const mem::AccessMix& mix,
                                                     int points = 24) const;

  // Closed-loop operating point: the bandwidth/latency pair where
  //   bandwidth = threads * outstanding * access_bytes / latency(bandwidth)
  // i.e. where Little's law meets the device's loaded-latency curve.
  LoadedLatencyPoint ClosedLoopPoint(const mem::AccessMix& mix) const;

  // Shorthands for the table columns the paper quotes.
  double IdleLatencyNs(const mem::AccessMix& mix) const {
    return profile_.IdleLatencyNs(mix, config_.pattern);
  }
  double PeakBandwidthGBps(const mem::AccessMix& mix) const {
    return profile_.PeakBandwidthGBps(mix, config_.pattern);
  }

  const mem::PathProfile& profile() const { return profile_; }
  const MlcConfig& config() const { return config_; }

 private:
  const mem::PathProfile& profile_;
  MlcConfig config_;
};

}  // namespace cxl::workload

#endif  // CXL_EXPLORER_SRC_WORKLOAD_MLC_H_
