#include "src/workload/stream.h"

#include <algorithm>
#include <cassert>

#include "src/util/units.h"

namespace cxl::workload {

using mem::AccessMix;

StreamResult RunStreamTriad(const mem::PathProfile& profile, const StreamConfig& config) {
  // Triad's byte mix: reads_per_element : writes_per_element (2:1).
  const double rf = config.reads_per_element /
                    (config.reads_per_element + config.writes_per_element);
  const AccessMix mix{rf, true};
  const double peak = profile.PeakBandwidthGBps(mix);

  // Closed loop under prefetch concurrency (Little's law), as in MLC:
  // B = inflight_bytes / L(B), bisected on the decreasing residual.
  const double inflight_bytes =
      config.threads * config.prefetch_depth * static_cast<double>(kCacheLineBytes);
  auto residual = [&](double b) {
    return inflight_bytes / profile.LoadedLatencyNs(mix, b) - b;
  };
  double bw;
  if (residual(peak) >= 0.0) {
    bw = peak;
  } else {
    double lo = 0.0;
    double hi = peak;
    for (int i = 0; i < 80; ++i) {
      const double mid = 0.5 * (lo + hi);
      (residual(mid) > 0.0 ? lo : hi) = mid;
    }
    bw = 0.5 * (lo + hi);
  }

  StreamResult result;
  result.triad_gbps = profile.AchievedBandwidthGBps(mix, bw);
  result.loaded_latency_ns = profile.LoadedLatencyNs(mix, bw);
  result.utilization = peak > 0.0 ? bw / peak : 0.0;
  return result;
}

PointerChaseResult RunPointerChase(const mem::PathProfile& profile,
                                   const PointerChaseConfig& config) {
  assert(config.chain_length > 0 && config.parallel_chains > 0);
  const AccessMix mix = AccessMix::ReadOnly();
  const mem::AccessPattern pattern = mem::AccessPattern::kRandom;  // Chases jump randomly.
  const double peak = profile.PeakBandwidthGBps(mix, pattern);

  // Each chain keeps exactly one load outstanding; N chains offer
  // N * 64 B / L of load. Solve the (tiny) fixed point.
  double latency = profile.IdleLatencyNs(mix, pattern);
  for (int iter = 0; iter < 50; ++iter) {
    const double offered = config.parallel_chains *
                           static_cast<double>(kCacheLineBytes) / latency;
    latency = profile.LoadedLatencyNs(mix, std::min(offered, peak), pattern);
  }
  PointerChaseResult result;
  result.ns_per_hop = latency;
  result.achieved_gbps =
      config.parallel_chains * static_cast<double>(kCacheLineBytes) / latency;
  return result;
}

}  // namespace cxl::workload
