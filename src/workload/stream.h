// STREAM-style and pointer-chase microbenchmarks.
//
// MLC (src/workload/mlc.h) measures loaded latency under an injection-rate
// sweep. The two classic complements are:
//  - STREAM triad (a[i] = b[i] + q*c[i]): pure streaming bandwidth with a
//    2:1 read:write byte mix and deep prefetch concurrency;
//  - pointer chase: a dependent-load chain with zero memory-level
//    parallelism, measuring *pure* latency (each load must finish before
//    the next can issue).
// Running both against every path reproduces the standard CXL
// characterization table: CXL loses ~2.5x on the chase, far less on triad.
#ifndef CXL_EXPLORER_SRC_WORKLOAD_STREAM_H_
#define CXL_EXPLORER_SRC_WORKLOAD_STREAM_H_

#include "src/mem/access.h"
#include "src/mem/profiles.h"

namespace cxl::workload {

struct StreamConfig {
  int threads = 16;
  // Triad moves 3 operands per element: 2 reads + 1 write.
  double reads_per_element = 2.0;
  double writes_per_element = 1.0;
  double element_bytes = 8.0;
  // Hardware prefetchers keep this many cache lines in flight per thread on
  // a streaming kernel.
  double prefetch_depth = 24.0;
};

struct StreamResult {
  double triad_gbps = 0.0;       // Achieved STREAM triad bandwidth.
  double loaded_latency_ns = 0.0;  // Latency at the triad operating point.
  double utilization = 0.0;
};

// Closed-loop STREAM triad against one path.
StreamResult RunStreamTriad(const mem::PathProfile& profile, const StreamConfig& config = {});

struct PointerChaseConfig {
  // Chain length (number of dependent loads measured).
  int chain_length = 1 << 20;
  // Concurrent independent chains (1 = the classic latency benchmark).
  int parallel_chains = 1;
};

struct PointerChaseResult {
  double ns_per_hop = 0.0;     // Average dependent-load latency.
  double achieved_gbps = 0.0;  // Trivially small for one chain.
};

// Dependent-load chain against one path. With one chain the result is the
// path's idle latency; many chains approach the MLC closed loop.
PointerChaseResult RunPointerChase(const mem::PathProfile& profile,
                                   const PointerChaseConfig& config = {});

}  // namespace cxl::workload

#endif  // CXL_EXPLORER_SRC_WORKLOAD_STREAM_H_
