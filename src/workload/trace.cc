#include "src/workload/trace.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdlib>
#include <string>

namespace cxl::workload {

double AccessTrace::WriteFraction() const {
  if (ops_.empty()) {
    return 0.0;
  }
  const auto writes = static_cast<double>(
      std::count_if(ops_.begin(), ops_.end(),
                    [](const YcsbOp& op) { return op.type != YcsbOp::Type::kRead; }));
  return writes / static_cast<double>(ops_.size());
}

uint64_t AccessTrace::KeySpace() const {
  uint64_t max_key = 0;
  bool any = false;
  for (const YcsbOp& op : ops_) {
    max_key = std::max(max_key, op.key);
    any = true;
  }
  return any ? max_key + 1 : 0;
}

namespace {

char OpCode(YcsbOp::Type type) {
  switch (type) {
    case YcsbOp::Type::kRead:
      return 'R';
    case YcsbOp::Type::kUpdate:
      return 'U';
    case YcsbOp::Type::kInsert:
      return 'I';
  }
  return '?';
}

}  // namespace

void AccessTrace::SaveCsv(std::ostream& os) const {
  os << "op,key\n";
  for (const YcsbOp& op : ops_) {
    os << OpCode(op.type) << "," << op.key << "\n";
  }
}

StatusOr<AccessTrace> AccessTrace::LoadCsv(std::istream& is) {
  AccessTrace trace;
  std::string line;
  if (!std::getline(is, line) || line != "op,key") {
    return Status::InvalidArgument("trace CSV must start with header 'op,key'");
  }
  size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (line.size() < 3 || line[1] != ',') {
      return Status::InvalidArgument("malformed trace row at line " + std::to_string(line_no));
    }
    YcsbOp op;
    switch (line[0]) {
      case 'R':
        op.type = YcsbOp::Type::kRead;
        break;
      case 'U':
        op.type = YcsbOp::Type::kUpdate;
        break;
      case 'I':
        op.type = YcsbOp::Type::kInsert;
        break;
      default:
        return Status::InvalidArgument("unknown op code at line " + std::to_string(line_no));
    }
    errno = 0;
    char* end = nullptr;
    op.key = std::strtoull(line.c_str() + 2, &end, 10);
    if (end == line.c_str() + 2 || *end != '\0' || errno == ERANGE) {
      return Status::InvalidArgument("bad key at line " + std::to_string(line_no));
    }
    trace.Append(op);
  }
  return trace;
}

YcsbOp TraceReplaySource::Next() {
  assert(!trace_.empty() && "cannot replay an empty trace");
  const YcsbOp op = trace_.at(cursor_);
  ++cursor_;
  if (cursor_ >= trace_.size()) {
    cursor_ = 0;
    ++wraps_;
  }
  return op;
}

}  // namespace cxl::workload
