// Access-trace recording and replay.
//
// The paper open-sources "all data and testing configurations"; traces are
// the equivalent artefact here. A trace captures the exact operation stream
// of a run (type + key), can be saved/loaded as CSV, and replays through
// the same OpSource interface the live generators use — so any experiment
// can be re-run bit-identically from a file, or against a trace captured
// elsewhere.
#ifndef CXL_EXPLORER_SRC_WORKLOAD_TRACE_H_
#define CXL_EXPLORER_SRC_WORKLOAD_TRACE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "src/util/status.h"
#include "src/workload/ycsb.h"

namespace cxl::workload {

// An ordered operation stream.
class AccessTrace {
 public:
  void Append(const YcsbOp& op) { ops_.push_back(op); }

  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  const YcsbOp& at(size_t i) const { return ops_[i]; }
  const std::vector<YcsbOp>& ops() const { return ops_; }

  // Fraction of operations that write.
  double WriteFraction() const;
  // Highest key referenced + 1 (0 for an empty trace) — handy for sizing a
  // store that will replay this trace.
  uint64_t KeySpace() const;

  // CSV: header "op,key", one row per op, op in {R, U, I}.
  void SaveCsv(std::ostream& os) const;
  static StatusOr<AccessTrace> LoadCsv(std::istream& is);

 private:
  std::vector<YcsbOp> ops_;
};

// OpSource that records everything another source produces (tee).
class RecordingSource final : public OpSource {
 public:
  RecordingSource(OpSource& inner, AccessTrace& trace) : inner_(inner), trace_(trace) {}

  YcsbOp Next() override {
    const YcsbOp op = inner_.Next();
    trace_.Append(op);
    return op;
  }
  double WriteFraction() const override { return inner_.WriteFraction(); }

 private:
  OpSource& inner_;
  AccessTrace& trace_;
};

// OpSource that replays a trace, wrapping around at the end.
class TraceReplaySource final : public OpSource {
 public:
  explicit TraceReplaySource(const AccessTrace& trace) : trace_(trace) {}

  YcsbOp Next() override;
  double WriteFraction() const override { return trace_.WriteFraction(); }

  // Number of full passes completed over the trace.
  uint64_t wraps() const { return wraps_; }

 private:
  const AccessTrace& trace_;
  size_t cursor_ = 0;
  uint64_t wraps_ = 0;
};

}  // namespace cxl::workload

#endif  // CXL_EXPLORER_SRC_WORKLOAD_TRACE_H_
