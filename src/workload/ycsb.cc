#include "src/workload/ycsb.h"

#include <cassert>

namespace cxl::workload {

std::string YcsbName(YcsbWorkload w) {
  switch (w) {
    case YcsbWorkload::kA:
      return "YCSB-A";
    case YcsbWorkload::kB:
      return "YCSB-B";
    case YcsbWorkload::kC:
      return "YCSB-C";
    case YcsbWorkload::kD:
      return "YCSB-D";
  }
  return "YCSB-?";
}

YcsbMix MixFor(YcsbWorkload w) {
  switch (w) {
    case YcsbWorkload::kA:
      return YcsbMix{0.5, 0.5, 0.0};
    case YcsbWorkload::kB:
      return YcsbMix{0.95, 0.05, 0.0};
    case YcsbWorkload::kC:
      return YcsbMix{1.0, 0.0, 0.0};
    case YcsbWorkload::kD:
      return YcsbMix{0.95, 0.0, 0.05};
  }
  return YcsbMix{};
}

YcsbGenerator::YcsbGenerator(YcsbWorkload workload, uint64_t record_count, uint64_t seed)
    : workload_(workload), record_count_(record_count), mix_(MixFor(workload)), rng_(seed) {
  assert(record_count > 0);
  // Plain (rank-ordered) Zipfian: the most popular keys are the low key ids.
  // Real allocators co-locate temporally correlated allocations, which is
  // what gives the kernel page-level hotness to exploit; rank-ordered keys
  // model that clustering at our 2 MiB page granularity.
  if (workload == YcsbWorkload::kD) {
    key_chooser_ = MakeLatest(record_count);
  } else {
    key_chooser_ = MakeZipfian(record_count);
  }
}

YcsbOp YcsbGenerator::Next() {
  YcsbOp op;
  const double roll = rng_.NextDouble();
  if (roll < mix_.insert_fraction) {
    op.type = YcsbOp::Type::kInsert;
    op.key = record_count_++;
    key_chooser_->GrowTo(record_count_);
    return op;
  }
  op.type = roll < mix_.insert_fraction + mix_.update_fraction ? YcsbOp::Type::kUpdate
                                                               : YcsbOp::Type::kRead;
  op.key = key_chooser_->Next(rng_);
  return op;
}

}  // namespace cxl::workload
