// YCSB workload generator (Cooper et al., SoCC'10), covering the four
// workloads the paper runs against KeyDB (§4.1.1):
//   A: 50% read / 50% update, Zipfian
//   B: 95% read /  5% update, Zipfian
//   C: 100% read,             Zipfian
//   D: 95% read /  5% insert, Latest (reads favour recent inserts)
#ifndef CXL_EXPLORER_SRC_WORKLOAD_YCSB_H_
#define CXL_EXPLORER_SRC_WORKLOAD_YCSB_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/util/distribution.h"
#include "src/util/rng.h"

namespace cxl::workload {

enum class YcsbWorkload { kA, kB, kC, kD };

// "YCSB-A" ... "YCSB-D".
std::string YcsbName(YcsbWorkload w);

struct YcsbOp {
  enum class Type { kRead, kUpdate, kInsert };
  Type type = Type::kRead;
  uint64_t key = 0;
};

struct YcsbMix {
  double read_fraction = 1.0;
  double update_fraction = 0.0;
  double insert_fraction = 0.0;
};

// Anything that yields a stream of operations: live generators (YCSB) and
// recorded traces both implement this, so request-level simulations can run
// from either.
class OpSource {
 public:
  virtual ~OpSource() = default;
  virtual YcsbOp Next() = 0;
  // Fraction of operations that write (drives the AccessMix of the
  // bandwidth model).
  virtual double WriteFraction() const = 0;
};

// Standard operation mix for a workload.
YcsbMix MixFor(YcsbWorkload w);

class YcsbGenerator final : public OpSource {
 public:
  // `record_count` initial records; the paper uses 1 KiB records and a
  // Zipfian request distribution for A-C, Latest for D.
  YcsbGenerator(YcsbWorkload workload, uint64_t record_count, uint64_t seed = 1);

  YcsbOp Next() override;

  YcsbWorkload workload() const { return workload_; }
  uint64_t record_count() const { return record_count_; }
  const YcsbMix& mix() const { return mix_; }

  // Fraction of memory operations that are writes (updates + inserts); used
  // to pick the AccessMix for bandwidth modelling.
  double WriteFraction() const override { return mix_.update_fraction + mix_.insert_fraction; }

 private:
  YcsbWorkload workload_;
  uint64_t record_count_;
  YcsbMix mix_;
  Rng rng_;
  std::unique_ptr<KeyDistribution> key_chooser_;
};

}  // namespace cxl::workload

#endif  // CXL_EXPLORER_SRC_WORKLOAD_YCSB_H_
