#include "src/apps/kv/flash_tier.h"

#include <gtest/gtest.h>

namespace cxl::apps::kv {
namespace {

FlashTierConfig SmallConfig() {
  FlashTierConfig cfg;
  cfg.value_bytes = 1024;
  cfg.memtable_bytes = 16 * 1024;  // 16 entries.
  cfg.l0_compaction_trigger = 2;
  return cfg;
}

TEST(FlashTierTest, CachedGetAvoidsSsd) {
  FlashTier tier(SmallConfig());
  const auto r = tier.Get(1, /*cached=*/true);
  EXPECT_FALSE(r.ssd_read);
  EXPECT_EQ(r.ssd_read_bytes, 0u);
  EXPECT_GT(r.software_ns, 0.0);
}

TEST(FlashTierTest, UncachedGetReadsBlock) {
  FlashTier tier(SmallConfig());
  const auto r = tier.Get(1, /*cached=*/false);
  EXPECT_TRUE(r.ssd_read);
  EXPECT_EQ(r.ssd_read_bytes, 4096u + 1024u);
}

TEST(FlashTierTest, PutAppendsWal) {
  FlashTier tier(SmallConfig());
  const auto r = tier.Put(7);
  EXPECT_GE(r.ssd_write_bytes, 1024u);
  EXPECT_EQ(tier.total_wal_bytes(), 1024u);
  EXPECT_EQ(tier.memtable_entries(), 1u);
}

TEST(FlashTierTest, MemtableFlushesAtThreshold) {
  FlashTier tier(SmallConfig());
  for (int i = 0; i < 15; ++i) {
    tier.Put(static_cast<uint64_t>(i));
  }
  EXPECT_EQ(tier.memtable_entries(), 15u);
  EXPECT_EQ(tier.l0_runs(), 0);
  tier.Put(16);
  EXPECT_EQ(tier.memtable_entries(), 0u);  // Flushed.
  EXPECT_EQ(tier.l0_runs(), 1);
  EXPECT_EQ(tier.total_flush_bytes(), 16u * 1024u);
}

TEST(FlashTierTest, CompactionMergesL0IntoSortedLevel) {
  FlashTier tier(SmallConfig());
  // Two flushes trigger a compaction (trigger = 2).
  for (int i = 0; i < 32; ++i) {
    tier.Put(static_cast<uint64_t>(i));
  }
  EXPECT_EQ(tier.l0_runs(), 0);                    // Merged away.
  EXPECT_EQ(tier.sorted_level_entries(), 32u);
  EXPECT_GT(tier.total_compaction_bytes(), 0u);
}

TEST(FlashTierTest, SsdWriteVolumeCoversWalFlushCompaction) {
  FlashTier tier(SmallConfig());
  uint64_t charged = 0;
  for (int i = 0; i < 64; ++i) {
    charged += tier.Put(static_cast<uint64_t>(i)).ssd_write_bytes;
  }
  EXPECT_EQ(charged,
            tier.total_wal_bytes() + tier.total_flush_bytes() + tier.total_compaction_bytes());
}

TEST(FlashTierTest, CompactionVolumeGrowsWithLevelSize) {
  // Later compactions rewrite the accumulated sorted level: write
  // amplification in action.
  FlashTier tier(SmallConfig());
  uint64_t first_compaction = 0;
  uint64_t last_compaction = 0;
  for (int i = 0; i < 256; ++i) {
    const auto r = tier.Put(static_cast<uint64_t>(i));
    if (r.ssd_write_bytes > 1024u + 16u * 1024u) {  // WAL + flush + compaction.
      if (first_compaction == 0) {
        first_compaction = r.ssd_write_bytes;
      }
      last_compaction = r.ssd_write_bytes;
    }
  }
  EXPECT_GT(first_compaction, 0u);
  EXPECT_GT(last_compaction, first_compaction);
}

}  // namespace
}  // namespace cxl::apps::kv
