#include "src/apps/kv/fleet.h"

#include <gtest/gtest.h>

#include "src/fault/fault.h"
#include "src/pool/rack.h"
#include "src/pool/scheduler.h"
#include "src/telemetry/metrics.h"

namespace cxl::apps::kv {
namespace {

pool::RackConfig TestRack() {
  pool::RackConfig cfg;
  cfg.hosts = 4;
  cfg.expanders = 2;
  cfg.host_dram_bytes = 20ull << 30;
  cfg.expander_capacity_bytes = 24ull << 30;
  cfg.per_host_capacity_fraction = 0.75;
  return cfg;
}

FleetConfig TestFleet() {
  FleetConfig cfg;
  cfg.tenants = 200'000;
  cfg.shards = 16;
  cfg.steps = 24;
  cfg.step_seconds = 3600.0;
  cfg.seed = 11;
  return cfg;
}

FleetResult RunFleet(const FleetConfig& cfg, fault::FaultInjector* faults,
                     telemetry::MetricRegistry* telemetry = nullptr) {
  pool::Rack rack(TestRack());
  pool::SchedulerConfig sched_cfg;
  sched_cfg.sticky_release = true;
  pool::PoolScheduler sched(rack, sched_cfg);
  if (telemetry != nullptr) {
    sched.AttachTelemetry(telemetry);
  }
  KvFleetSim sim(sched, cfg, telemetry, faults);
  return sim.Run();
}

TEST(KvFleetSimTest, DeterministicAcrossRuns) {
  const FleetResult a = RunFleet(TestFleet(), nullptr);
  const FleetResult b = RunFleet(TestFleet(), nullptr);
  EXPECT_DOUBLE_EQ(a.mean_latency_us, b.mean_latency_us);
  EXPECT_DOUBLE_EQ(a.peak_latency_us, b.peak_latency_us);
  EXPECT_DOUBLE_EQ(a.mean_pool_utilization, b.mean_pool_utilization);
  EXPECT_EQ(a.reshard_events, b.reshard_events);
  EXPECT_EQ(a.resharded_tenants, b.resharded_tenants);
  EXPECT_DOUBLE_EQ(a.slo_burned_ms, b.slo_burned_ms);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.timeline[i].mean_latency_us, b.timeline[i].mean_latency_us);
  }
}

TEST(KvFleetSimTest, TelemetryIsObservational) {
  telemetry::MetricRegistry sink;
  const FleetResult bare = RunFleet(TestFleet(), nullptr);
  const FleetResult observed = RunFleet(TestFleet(), nullptr, &sink);
  EXPECT_DOUBLE_EQ(bare.mean_latency_us, observed.mean_latency_us);
  EXPECT_EQ(bare.reshard_events, observed.reshard_events);
}

TEST(KvFleetSimTest, DowntrainReshardsTenantsOffDegradedHost) {
  const FleetConfig cfg = TestFleet();
  const FleetResult healthy = RunFleet(cfg, nullptr);

  fault::FaultPlan plan;
  const double day = cfg.steps * cfg.step_seconds;
  plan.Downtrain(0.3 * day, 0.3 * day, 4);
  fault::FaultInjector injector(plan, /*seed=*/7);
  telemetry::MetricRegistry sink;
  const FleetResult degraded = RunFleet(cfg, &injector, &sink);

  // Tenants leave the degraded host (reason=degraded_link events land in the
  // sink) and pay latency the healthy run never sees.
  EXPECT_GT(degraded.reshard_events, healthy.reshard_events);
  EXPECT_GT(degraded.resharded_tenants, 0u);
  EXPECT_GT(degraded.peak_latency_us, healthy.peak_latency_us);
  int reshard_events = 0;
  sink.events().ForEach([&](const telemetry::Event& event) {
    if (event.kind == telemetry::EventKind::kTenantReshard) {
      ++reshard_events;
    }
  });
  EXPECT_GT(reshard_events, 0);
}

}  // namespace
}  // namespace cxl::apps::kv
