#include "src/apps/kv/kvstore.h"

#include <gtest/gtest.h>

#include "src/apps/kv/server.h"
#include "src/os/page_allocator.h"
#include "src/topology/platform.h"
#include "src/util/units.h"
#include "src/workload/ycsb.h"

namespace cxl::apps::kv {
namespace {

using namespace cxl::literals;
using topology::Platform;
using workload::YcsbOp;

constexpr uint64_t kPageBytes = 16ull << 10;

class KvStoreTest : public ::testing::Test {
 protected:
  KvStoreTest() : platform_(Platform::CxlServer(false)), alloc_(platform_, kPageBytes) {}

  KvStoreConfig SmallConfig() {
    KvStoreConfig cfg;
    cfg.record_count = 1'000'000;  // 1 GiB at 1 KiB.
    return cfg;
  }

  Platform platform_;
  os::PageAllocator alloc_;
};

TEST_F(KvStoreTest, CreateAllocatesDataset) {
  auto store = KvStore::Create(alloc_, os::NumaPolicy::Bind(platform_.DramNodes()), SmallConfig());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->region().bytes(), SmallConfig().DatasetBytes());
  EXPECT_EQ(store->cached_records(), 1'000'000u);
  EXPECT_DOUBLE_EQ(store->DramShare(), 1.0);
  store->Free();
}

TEST_F(KvStoreTest, ReadCostIsLighterThanUpdate) {
  auto store = KvStore::Create(alloc_, os::NumaPolicy::Bind({0}), SmallConfig());
  ASSERT_TRUE(store.ok());
  const auto read = store->Access(YcsbOp{YcsbOp::Type::kRead, 5});
  const auto update = store->Access(YcsbOp{YcsbOp::Type::kUpdate, 5});
  EXPECT_LT(read.mem_lines, update.mem_lines);
  EXPECT_FALSE(read.is_write);
  EXPECT_TRUE(update.is_write);
  store->Free();
}

TEST_F(KvStoreTest, AccessResolvesToValidNode) {
  auto store = KvStore::Create(
      alloc_,
      os::NumaPolicy::WeightedInterleave(platform_.DramNodes(), platform_.CxlNodes(), 1, 1),
      SmallConfig());
  ASSERT_TRUE(store.ok());
  workload::YcsbGenerator gen(workload::YcsbWorkload::kC, 1'000'000);
  int cxl_hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const auto cost = store->Access(gen.Next());
    ASSERT_GE(cost.node, 0);
    if (platform_.node(cost.node).kind == topology::NodeKind::kCxl) {
      ++cxl_hits;
    }
  }
  // 1:1 placement: roughly half the (band-scattered) traffic lands on CXL.
  // Tolerance is wide because the Zipfian head concentrates mass on a few
  // bands whose hashed placement dominates the sample (real systems have the
  // same lumpiness: the hottest keys live *somewhere*).
  EXPECT_NEAR(static_cast<double>(cxl_hits) / kN, 0.5, 0.15);
  store->Free();
}

TEST_F(KvStoreTest, InterleaveShareFollowsPolicy) {
  auto store = KvStore::Create(
      alloc_,
      os::NumaPolicy::WeightedInterleave(platform_.DramNodes(), platform_.CxlNodes(), 3, 1),
      SmallConfig());
  ASSERT_TRUE(store.ok());
  EXPECT_NEAR(store->DramShare(), 0.75, 1e-6);
  store->Free();
}

TEST_F(KvStoreTest, FlashCapsResidentBytes) {
  KvStoreConfig cfg = SmallConfig();
  cfg.flash = true;
  cfg.maxmemory_bytes = 512_MiB;
  auto store = KvStore::Create(alloc_, os::NumaPolicy::Bind(platform_.DramNodes()), cfg);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->region().bytes(), 512_MiB);
  EXPECT_EQ(store->cached_records(), 512u * 1024);
  EXPECT_NE(store->flash(), nullptr);
  store->Free();
}

TEST_F(KvStoreTest, FlashColdReadHitsSsd) {
  KvStoreConfig cfg = SmallConfig();
  cfg.flash = true;
  cfg.maxmemory_bytes = 512_MiB;  // Keys >= 512Ki are cold.
  auto store = KvStore::Create(alloc_, os::NumaPolicy::Bind(platform_.DramNodes()), cfg);
  ASSERT_TRUE(store.ok());
  const auto hot = store->Access(YcsbOp{YcsbOp::Type::kRead, 5});
  EXPECT_FALSE(hot.ssd_read);
  const auto cold = store->Access(YcsbOp{YcsbOp::Type::kRead, 600'000});
  EXPECT_TRUE(cold.ssd_read);
  EXPECT_GT(cold.ssd_read_bytes, 0u);
  store->Free();
}

TEST_F(KvStoreTest, FlashRecentInsertIsCached) {
  KvStoreConfig cfg = SmallConfig();
  cfg.flash = true;
  cfg.maxmemory_bytes = 512_MiB;
  auto store = KvStore::Create(alloc_, os::NumaPolicy::Bind(platform_.DramNodes()), cfg);
  ASSERT_TRUE(store.ok());
  // Insert a brand-new key, then read it back: memtable-resident.
  const auto ins = store->Access(YcsbOp{YcsbOp::Type::kInsert, 1'000'000});
  EXPECT_GT(ins.ssd_write_bytes, 0u);  // WAL.
  const auto read = store->Access(YcsbOp{YcsbOp::Type::kRead, 1'000'000});
  EXPECT_FALSE(read.ssd_read);
  store->Free();
}

TEST_F(KvStoreTest, FlashUpdateChargesWal) {
  KvStoreConfig cfg = SmallConfig();
  cfg.flash = true;
  cfg.maxmemory_bytes = 512_MiB;
  auto store = KvStore::Create(alloc_, os::NumaPolicy::Bind(platform_.DramNodes()), cfg);
  ASSERT_TRUE(store.ok());
  const auto upd = store->Access(YcsbOp{YcsbOp::Type::kUpdate, 5});
  EXPECT_GE(upd.ssd_write_bytes, cfg.value_bytes);
  EXPECT_GT(upd.software_ns, 0.0);
  store->Free();
}

TEST_F(KvStoreTest, TieringReceivesHeat) {
  os::TieredMemory tiering(alloc_, os::TieringConfig{});
  auto store = KvStore::Create(alloc_, os::NumaPolicy::Bind(platform_.CxlNodes()), SmallConfig(),
                               &tiering);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 100; ++i) {
    store->Access(YcsbOp{YcsbOp::Type::kRead, 0});
  }
  EXPECT_GT(alloc_.counters().numa_hint_faults, 0u);
  store->Free();
}

TEST_F(KvStoreTest, Fig8PresetIsLighter) {
  const KvStoreConfig base;
  const KvStoreConfig fig8 = KvStoreConfig::Fig8Preset(1000);
  EXPECT_LT(fig8.lines_per_read, base.lines_per_read);
  EXPECT_EQ(fig8.record_count, 1000u);
}

// End-to-end server sanity: MMEM placement beats CXL-only placement.
TEST_F(KvStoreTest, ServerSimOrdersPlacements) {
  auto run = [&](const os::NumaPolicy& policy) {
    os::PageAllocator alloc(platform_, kPageBytes);
    KvStoreConfig cfg;
    cfg.record_count = 1'000'000;
    auto store = KvStore::Create(alloc, policy, cfg);
    EXPECT_TRUE(store.ok());
    workload::YcsbGenerator gen(workload::YcsbWorkload::kC, cfg.record_count, 3);
    KvServerConfig scfg;
    scfg.total_ops = 40'000;
    scfg.warmup_ops = 10'000;
    KvServerSim sim(platform_, *store, gen, scfg);
    const auto result = sim.Run();
    store->Free();
    return result.throughput_kops;
  };
  const double mmem = run(os::NumaPolicy::Bind(platform_.DramNodes(0)));
  const double cxl = run(os::NumaPolicy::Bind(platform_.CxlNodes()));
  EXPECT_GT(mmem, cxl);
  EXPECT_LT(mmem / cxl, 2.0);  // Application-level, not raw-device, gap.
}

}  // namespace
}  // namespace cxl::apps::kv
