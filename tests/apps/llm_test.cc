#include "src/apps/llm/inference.h"

#include <gtest/gtest.h>

#include "src/apps/llm/serving.h"

namespace cxl::apps::llm {
namespace {

TEST(LlmPlacementTest, InterleaveShares) {
  EXPECT_DOUBLE_EQ(LlmPlacement::MmemOnly().mmem_share, 1.0);
  EXPECT_DOUBLE_EQ(LlmPlacement::Interleave(3, 1).mmem_share, 0.75);
  EXPECT_DOUBLE_EQ(LlmPlacement::Interleave(1, 3).mmem_share, 0.25);
  EXPECT_EQ(LlmPlacement::Interleave(3, 1).label, "3:1");
}

TEST(LlmInferenceTest, LinearScalingAtLowThreads) {
  LlmInferenceSim sim;
  const auto p12 = sim.Solve(LlmPlacement::MmemOnly(), 12);
  const auto p24 = sim.Solve(LlmPlacement::MmemOnly(), 24);
  EXPECT_NEAR(p24.serving_rate_tokens_s / p12.serving_rate_tokens_s, 2.0, 0.05);
}

TEST(LlmInferenceTest, MmemSaturatesAround48Threads) {
  // §5.2: "at 48 threads, MMEM bandwidth saturation limits the serving rate".
  LlmInferenceSim sim;
  const double r36 = sim.Solve(LlmPlacement::MmemOnly(), 36).serving_rate_tokens_s;
  const double r48 = sim.Solve(LlmPlacement::MmemOnly(), 48).serving_rate_tokens_s;
  const double r60 = sim.Solve(LlmPlacement::MmemOnly(), 60).serving_rate_tokens_s;
  EXPECT_LT(r48 / r36, 48.0 / 36.0 * 0.97);  // Sub-linear by 48.
  EXPECT_LT(r60, r48);                        // Degrades past saturation.
}

TEST(LlmInferenceTest, ThreeToOneBeatsMmemByNinetyFivePercentAt60) {
  LlmInferenceSim sim;
  const double mmem = sim.Solve(LlmPlacement::MmemOnly(), 60).serving_rate_tokens_s;
  const double i31 = sim.Solve(LlmPlacement::Interleave(3, 1), 60).serving_rate_tokens_s;
  const double gain = i31 / mmem - 1.0;
  EXPECT_GT(gain, 0.75);  // Paper: ~0.95.
  EXPECT_LT(gain, 1.25);
}

TEST(LlmInferenceTest, OneToThreeBeatsMmemBeyond64Threads) {
  // §5.2: "operating entirely on main memory is 14% less effective than a
  // MMEM:CXL ratio of 1:3 beyond 64 threads".
  LlmInferenceSim sim;
  const double mmem = sim.Solve(LlmPlacement::MmemOnly(), 72).serving_rate_tokens_s;
  const double i13 = sim.Solve(LlmPlacement::Interleave(1, 3), 72).serving_rate_tokens_s;
  const double gain = i13 / mmem - 1.0;
  EXPECT_GT(gain, 0.05);
  EXPECT_LT(gain, 0.35);
}

TEST(LlmInferenceTest, MoreMmemWinsAmongInterleavesAt60) {
  // §5.2: "configurations with a higher proportion of data in main memory
  // demonstrate superior inference performance".
  LlmInferenceSim sim;
  const double i31 = sim.Solve(LlmPlacement::Interleave(3, 1), 60).serving_rate_tokens_s;
  const double i11 = sim.Solve(LlmPlacement::Interleave(1, 1), 60).serving_rate_tokens_s;
  const double i13 = sim.Solve(LlmPlacement::Interleave(1, 3), 60).serving_rate_tokens_s;
  EXPECT_GT(i31, i11);
  EXPECT_GT(i11, i13);
}

TEST(LlmInferenceTest, MmemBestAtLowLoad) {
  LlmInferenceSim sim;
  const double mmem = sim.Solve(LlmPlacement::MmemOnly(), 24).serving_rate_tokens_s;
  for (auto [t, l] : {std::pair{3, 1}, {1, 1}, {1, 3}}) {
    EXPECT_GT(mmem, sim.Solve(LlmPlacement::Interleave(t, l), 24).serving_rate_tokens_s);
  }
}

TEST(LlmInferenceTest, SingleBackendPlateau) {
  // Fig. 10(b): linear ramp (~1.05 GB/s/thread), plateau 24.2 GB/s at 24.
  LlmInferenceSim sim;
  EXPECT_NEAR(sim.SingleBackendBandwidthGBps(12), 12.6, 0.1);
  EXPECT_NEAR(sim.SingleBackendBandwidthGBps(24), 24.2, 0.3);
  EXPECT_DOUBLE_EQ(sim.SingleBackendBandwidthGBps(32), sim.SingleBackendBandwidthGBps(40));
}

TEST(LlmInferenceTest, KvCacheBandwidthFloorAndPlateau) {
  // Fig. 10(c): ~12 GB/s model-load floor, plateau ~21 GB/s.
  LlmInferenceSim sim;
  EXPECT_NEAR(sim.KvCacheBandwidthGBps(0.0), 12.0, 0.1);
  const double plateau = sim.KvCacheBandwidthGBps(64e9);
  EXPECT_NEAR(plateau, 21.0, 1.5);
  // Monotone growth toward the plateau.
  double prev = 0.0;
  for (double kv : {0.0, 0.5e9, 1e9, 4e9, 16e9}) {
    const double bw = sim.KvCacheBandwidthGBps(kv);
    EXPECT_GT(bw, prev);
    prev = bw;
  }
}

TEST(LlmInferenceTest, SncOffSocketDefersSaturation) {
  // A5 ablation: with the full 8-channel socket (scale 4) the same thread
  // counts never saturate DRAM, so MMEM-only keeps scaling and interleaving
  // only costs — why §5 binds to one SNC-4 domain.
  LlmServingConfig socket_cfg;
  socket_cfg.dram_bandwidth_scale = 4.0;
  LlmInferenceSim domain;
  LlmInferenceSim socket(socket_cfg);
  const double domain_60 = domain.Solve(LlmPlacement::MmemOnly(), 60).serving_rate_tokens_s;
  const double socket_60 = socket.Solve(LlmPlacement::MmemOnly(), 60).serving_rate_tokens_s;
  EXPECT_GT(socket_60, 1.5 * domain_60);  // No collapse at 60 threads.
  const double socket_31 =
      socket.Solve(LlmPlacement::Interleave(3, 1), 60).serving_rate_tokens_s;
  EXPECT_LT(socket_31, socket_60);  // Interleaving only hurts when unsaturated.
}

TEST(LlmBatchingTest, BatchAmortizesWeightStream) {
  LlmInferenceSim sim;
  const auto b1 = sim.SolveBatched(LlmPlacement::MmemOnly(), 48, 1);
  const auto b8 = sim.SolveBatched(LlmPlacement::MmemOnly(), 48, 8);
  EXPECT_GT(b8.tokens_per_second, 2.5 * b1.tokens_per_second);
  EXPECT_LT(b8.bytes_per_token, b1.bytes_per_token);
}

TEST(LlmBatchingTest, DiminishingReturnsOnceKvDominates) {
  LlmInferenceSim sim;
  const auto b16 = sim.SolveBatched(LlmPlacement::MmemOnly(), 48, 16);
  const auto b128 = sim.SolveBatched(LlmPlacement::MmemOnly(), 48, 128);
  // 8x more batch buys well under 2x once the KV stream dominates.
  EXPECT_LT(b128.tokens_per_second / b16.tokens_per_second, 1.5);
}

TEST(LlmBatchingTest, BytesPerTokenApproachesKvFloor) {
  LlmInferenceSim sim;
  const double kv_ctx = sim.config().model.kv_bytes_per_token * 2048;
  const auto big = sim.SolveBatched(LlmPlacement::MmemOnly(), 48, 1024);
  EXPECT_NEAR(big.bytes_per_token, kv_ctx, 0.01 * kv_ctx);
}

TEST(LlmBatchingTest, CapacityCapsBatch) {
  LlmInferenceSim sim;
  const double kv_ctx = sim.config().model.kv_bytes_per_token * 2048;
  const double weights = sim.config().model.weight_bytes;
  EXPECT_EQ(sim.MaxBatchForCapacity(weights + 10.5 * kv_ctx), 10);
  EXPECT_EQ(sim.MaxBatchForCapacity(weights + 0.5 * kv_ctx), 0);
  EXPECT_EQ(sim.MaxBatchForCapacity(0.0), 0);
}

TEST(LlmBatchingTest, CxlRaisesTheCap) {
  // The §5 motivation in one assertion: more memory, bigger batch.
  LlmInferenceSim sim;
  const double dram = 128.0 * (1ull << 30);
  const double dram_cxl = dram + 256.0 * (1ull << 30);
  EXPECT_GT(sim.MaxBatchForCapacity(dram_cxl), 2 * sim.MaxBatchForCapacity(dram));
}

TEST(LlmBatchingTest, LongerContextCostsMore) {
  LlmInferenceSim sim;
  const auto short_ctx = sim.SolveBatched(LlmPlacement::MmemOnly(), 48, 16, 512);
  const auto long_ctx = sim.SolveBatched(LlmPlacement::MmemOnly(), 48, 16, 8192);
  EXPECT_GT(short_ctx.tokens_per_second, long_ctx.tokens_per_second);
}

TEST(ServingStackTest, SteadyStateConsistency) {
  ServingStackConfig cfg;
  cfg.backends = 4;
  ServingStack stack(cfg);
  const ServingRequest req{1, 512, 128};
  const auto stats = stack.SteadyState(req);
  EXPECT_GT(stats.tokens_per_second, 0.0);
  EXPECT_NEAR(stats.requests_per_second * req.output_tokens, stats.tokens_per_second, 1e-9);
  EXPECT_GT(stats.kv_cache_bytes_per_backend, 0.0);
}

TEST(ServingStackTest, DriveApproachesSteadyState) {
  ServingStackConfig cfg;
  cfg.backends = 4;
  ServingStack stack(cfg);
  const ServingRequest req{1, 512, 128};
  Histogram latency(1e-3, 1e5, 64);
  const auto stats = stack.Drive(req, 400, &latency);
  const auto steady = stack.SteadyState(req);
  EXPECT_NEAR(stats.requests_per_second, steady.requests_per_second,
              steady.requests_per_second * 0.1);
  EXPECT_EQ(latency.count(), 400u);
}

TEST(ServingStackTest, MorePlacementOnCxlSlowsLowLoadServing) {
  ServingStackConfig a;
  a.backends = 2;
  ServingStackConfig b = a;
  b.placement = LlmPlacement::Interleave(1, 3);
  const ServingRequest req{1, 512, 128};
  EXPECT_GT(ServingStack(a).SteadyState(req).tokens_per_second,
            ServingStack(b).SteadyState(req).tokens_per_second);
}

}  // namespace
}  // namespace cxl::apps::llm
