#include "src/apps/spark/dag.h"

#include <gtest/gtest.h>

#include "src/apps/spark/cluster.h"
#include "src/apps/spark/query.h"

namespace cxl::apps::spark {
namespace {

TEST(BuildDagTest, ThreeStagesWithDependencies) {
  const auto dag = BuildDag(*FindQuery("Q7"), SparkConfig::MmemOnly());
  ASSERT_EQ(dag.stages.size(), 3u);
  EXPECT_EQ(dag.stages[0].name, "scan-compute");
  EXPECT_TRUE(dag.stages[0].depends_on.empty());
  EXPECT_EQ(dag.stages[1].depends_on, std::vector<int>{0});
  EXPECT_EQ(dag.stages[2].depends_on, std::vector<int>{1});
  EXPECT_TRUE(dag.stages[2].crosses_network);
  EXPECT_GT(dag.stages[0].tasks, 0);
}

TEST(DagSchedulerTest, StagesRunInOrder) {
  SparkCluster cluster(SparkConfig::MmemOnly());
  DagScheduler sched(cluster);
  const auto r = sched.Run(BuildDag(*FindQuery("Q5"), cluster.config()), 0.0);
  ASSERT_EQ(r.stages.size(), 3u);
  EXPECT_LE(r.stages[0].end_seconds, r.stages[1].start_seconds + 1e-9);
  EXPECT_LE(r.stages[1].end_seconds, r.stages[2].start_seconds + 1e-9);
  EXPECT_NEAR(r.makespan_seconds, r.stages[2].end_seconds, 1e-9);
}

TEST(DagSchedulerTest, AgreesWithAnalyticModel) {
  // The headline validation: without jitter, the task-level makespan must
  // track the fluid 3-phase model within scheduling quantization (~15%).
  for (const SparkConfig& cfg : {SparkConfig::MmemOnly(), SparkConfig::Interleave(1, 1)}) {
    SparkCluster analytic_cluster(cfg);
    const auto& q7 = *FindQuery("Q7");
    const double analytic = analytic_cluster.RunQuery(q7).total_seconds;
    SparkCluster dag_cluster(cfg);
    DagScheduler sched(dag_cluster);
    const double task_level = sched.Run(BuildDag(q7, cfg), 0.0).makespan_seconds;
    EXPECT_NEAR(task_level, analytic, 0.15 * analytic) << ModeLabel(cfg.mode);
  }
}

TEST(DagSchedulerTest, JitterCreatesStragglers) {
  SparkCluster cluster(SparkConfig::MmemOnly());
  DagScheduler sched(cluster);
  const auto dag = BuildDag(*FindQuery("Q9"), cluster.config());
  const auto smooth = sched.Run(dag, 0.0, 1);
  const auto noisy = sched.Run(dag, 0.3, 1);
  // Stragglers stretch the makespan and widen the per-stage max/mean gap.
  EXPECT_GT(noisy.makespan_seconds, smooth.makespan_seconds);
  EXPECT_GT(noisy.stages[2].max_task_seconds / noisy.stages[2].mean_task_seconds,
            smooth.stages[2].max_task_seconds / smooth.stages[2].mean_task_seconds);
}

TEST(DagSchedulerTest, UtilizationBelowOneWithBarriers) {
  SparkCluster cluster(SparkConfig::MmemOnly());
  DagScheduler sched(cluster);
  const auto r = sched.Run(BuildDag(*FindQuery("Q7"), cluster.config()), 0.2);
  EXPECT_GT(r.executor_utilization, 0.5);
  EXPECT_LT(r.executor_utilization, 1.0);  // Barrier stalls cost something.
}

TEST(DagSchedulerTest, MoreTasksSmoothStragglers) {
  // Finer task granularity lets the scheduler fill straggler gaps: makespan
  // with 8 waves <= makespan with 1 wave (same jitter, same work).
  SparkCluster cluster(SparkConfig::MmemOnly());
  DagScheduler sched(cluster);
  const auto& q = *FindQuery("Q8");
  const int execs = cluster.config().total_executors / cluster.config().servers;
  const double coarse =
      sched.Run(BuildDag(q, cluster.config(), execs), 0.3, 7).makespan_seconds;
  const double fine =
      sched.Run(BuildDag(q, cluster.config(), 8 * execs), 0.3, 7).makespan_seconds;
  EXPECT_LT(fine, coarse);
}

TEST(DagSchedulerTest, InterleaveSlowsTaskLevelToo) {
  const auto& q9 = *FindQuery("Q9");
  SparkCluster mmem(SparkConfig::MmemOnly());
  SparkCluster inter(SparkConfig::Interleave(1, 3));
  const double base = DagScheduler(mmem).Run(BuildDag(q9, mmem.config()), 0.0).makespan_seconds;
  const double slow =
      DagScheduler(inter).Run(BuildDag(q9, inter.config()), 0.0).makespan_seconds;
  EXPECT_GT(slow / base, 1.5);
}

TEST(DagSchedulerTest, DeterministicUnderSeed) {
  SparkCluster cluster(SparkConfig::MmemOnly());
  DagScheduler sched(cluster);
  const auto dag = BuildDag(*FindQuery("Q5"), cluster.config());
  EXPECT_DOUBLE_EQ(sched.Run(dag, 0.2, 9).makespan_seconds,
                   sched.Run(dag, 0.2, 9).makespan_seconds);
}

}  // namespace
}  // namespace cxl::apps::spark
