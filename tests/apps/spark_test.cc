#include "src/apps/spark/cluster.h"

#include <gtest/gtest.h>

#include "src/apps/spark/query.h"

namespace cxl::apps::spark {
namespace {

TEST(QueryProfileTest, FourShuffleHeavyQueries) {
  const auto queries = TpchShuffleHeavyQueries();
  ASSERT_EQ(queries.size(), 4u);
  EXPECT_EQ(queries[0].name, "Q5");
  EXPECT_EQ(queries[3].name, "Q9");
  // Q9 is the heaviest shuffler.
  for (size_t i = 1; i < queries.size(); ++i) {
    EXPECT_GT(queries[i].shuffle_bytes, queries[i - 1].shuffle_bytes);
  }
}

TEST(QueryProfileTest, FindQuery) {
  EXPECT_NE(FindQuery("Q7"), nullptr);
  EXPECT_EQ(FindQuery("Q7")->name, "Q7");
  EXPECT_EQ(FindQuery("Q1"), nullptr);
}

TEST(SparkConfigTest, Factories) {
  EXPECT_EQ(SparkConfig::MmemOnly().servers, 3);
  EXPECT_EQ(SparkConfig::Interleave(3, 1).servers, 2);
  EXPECT_EQ(SparkConfig::Interleave(3, 1).top_weight, 3);
  EXPECT_DOUBLE_EQ(SparkConfig::Spill(0.8).memory_fraction, 0.8);
  EXPECT_EQ(SparkConfig::HotPromote().mode, SparkMemoryMode::kHotPromote);
  EXPECT_EQ(ModeLabel(SparkMemoryMode::kHotPromote), "Hot-Promote");
}

TEST(SparkClusterTest, MmemOnlyHasNoSpillNoCxl) {
  SparkCluster cluster(SparkConfig::MmemOnly());
  const auto r = cluster.RunQuery(*FindQuery("Q7"));
  EXPECT_DOUBLE_EQ(r.spilled_bytes, 0.0);
  EXPECT_DOUBLE_EQ(r.cxl_access_share, 0.0);
  EXPECT_DOUBLE_EQ(r.migrated_bytes, 0.0);
  EXPECT_NEAR(r.total_seconds,
              r.compute_seconds + r.shuffle_write_seconds + r.shuffle_read_seconds, 1e-9);
}

TEST(SparkClusterTest, InterleaveSlowdownGrowsWithCxlShare) {
  const QueryProfile& q9 = *FindQuery("Q9");
  const double base = SparkCluster(SparkConfig::MmemOnly()).RunQuery(q9).total_seconds;
  const double s31 = SparkCluster(SparkConfig::Interleave(3, 1)).RunQuery(q9).total_seconds;
  const double s11 = SparkCluster(SparkConfig::Interleave(1, 1)).RunQuery(q9).total_seconds;
  const double s13 = SparkCluster(SparkConfig::Interleave(1, 3)).RunQuery(q9).total_seconds;
  EXPECT_GT(s31, base);
  EXPECT_GT(s11, s31);
  EXPECT_GT(s13, s11);
  // §4.2.2 band: 1.4x-9.8x.
  EXPECT_GT(s31 / base, 1.3);
  EXPECT_LT(s13 / base, 10.0);
}

TEST(SparkClusterTest, SlowdownGrowsWithShuffleIntensity) {
  // Q9 (heaviest shuffle) suffers more from interleaving than Q5.
  SparkCluster base_cluster(SparkConfig::MmemOnly());
  SparkCluster inter_cluster(SparkConfig::Interleave(1, 3));
  const double q5 = inter_cluster.RunQuery(*FindQuery("Q5")).total_seconds /
                    base_cluster.RunQuery(*FindQuery("Q5")).total_seconds;
  const double q9 = inter_cluster.RunQuery(*FindQuery("Q9")).total_seconds /
                    base_cluster.RunQuery(*FindQuery("Q9")).total_seconds;
  EXPECT_GT(q9, q5);
}

TEST(SparkClusterTest, SpillVolumesScaleWithRestriction) {
  const QueryProfile& q7 = *FindQuery("Q7");
  const auto r08 = SparkCluster(SparkConfig::Spill(0.8)).RunQuery(q7);
  const auto r06 = SparkCluster(SparkConfig::Spill(0.6)).RunQuery(q7);
  EXPECT_GT(r08.spilled_bytes, 0.0);
  EXPECT_GT(r06.spilled_bytes, r08.spilled_bytes);
  EXPECT_GT(r06.total_seconds, r08.total_seconds);
  // Order-of-magnitude check vs the paper's ~320 GB / ~500 GB.
  EXPECT_GT(r08.spilled_bytes, 100e9);
  EXPECT_LT(r06.spilled_bytes, 1000e9);
}

TEST(SparkClusterTest, SpillTimeIsChargedToShuffle) {
  const QueryProfile& q7 = *FindQuery("Q7");
  const auto spill = SparkCluster(SparkConfig::Spill(0.6)).RunQuery(q7);
  const auto base = SparkCluster(SparkConfig::MmemOnly()).RunQuery(q7);
  EXPECT_GT(spill.ShuffleShare(), base.ShuffleShare());
  EXPECT_NEAR(spill.compute_seconds, base.compute_seconds, 1e-9);
}

TEST(SparkClusterTest, HotPromoteThrashesOnSpark) {
  // §4.2.2: >34% slowdown vs MMEM with sustained migration traffic.
  const QueryProfile& q7 = *FindQuery("Q7");
  const double base = SparkCluster(SparkConfig::MmemOnly()).RunQuery(q7).total_seconds;
  const auto hp = SparkCluster(SparkConfig::HotPromote()).RunQuery(q7);
  EXPECT_GT(hp.total_seconds / base, 1.34);
  EXPECT_GT(hp.migrated_bytes, 10e9);  // The daemon kept churning.
}

TEST(SparkClusterTest, HotPromoteBeatsStaticOneToThree) {
  // Promotion captures part of the streamed window: better than pinning 75%
  // on CXL, despite the thrash.
  const QueryProfile& q7 = *FindQuery("Q7");
  const double hp = SparkCluster(SparkConfig::HotPromote()).RunQuery(q7).total_seconds;
  const double s13 = SparkCluster(SparkConfig::Interleave(1, 3)).RunQuery(q7).total_seconds;
  EXPECT_LT(hp, s13);
}

TEST(SparkClusterTest, QueriesAreIndependentRuns) {
  // Hot-Promote state resets per query: re-running the same query gives the
  // same answer.
  SparkCluster cluster(SparkConfig::HotPromote());
  const double a = cluster.RunQuery(*FindQuery("Q8")).total_seconds;
  const double b = cluster.RunQuery(*FindQuery("Q8")).total_seconds;
  EXPECT_NEAR(a, b, a * 1e-9);
}

TEST(SparkClusterTest, ShuffleShareGrowsWithShuffleBytes) {
  SparkCluster cluster(SparkConfig::MmemOnly());
  const double q5 = cluster.RunQuery(*FindQuery("Q5")).ShuffleShare();
  const double q9 = cluster.RunQuery(*FindQuery("Q9")).ShuffleShare();
  EXPECT_GT(q9, q5);
  EXPECT_GT(q5, 0.1);
  EXPECT_LT(q9, 0.9);
}

}  // namespace
}  // namespace cxl::apps::spark
