#include "src/check/calibration.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

namespace cxl::check {
namespace {

TEST(CalibrationBandTest, FracBuildsSymmetricBand) {
  const auto band = CalibrationBand::Frac("x", 100.0, 0.03, "ref");
  EXPECT_DOUBLE_EQ(band.expect, 100.0);
  EXPECT_DOUBLE_EQ(band.lo, 97.0);
  EXPECT_DOUBLE_EQ(band.hi, 103.0);
  EXPECT_TRUE(band.Contains(100.0));
  EXPECT_TRUE(band.Contains(97.0));
  EXPECT_TRUE(band.Contains(103.0));
  EXPECT_FALSE(band.Contains(96.9));
  EXPECT_FALSE(band.Contains(103.1));
}

TEST(CalibrationReportTest, CountsFailuresAndRendersTable) {
  CalibrationReport report;
  report.Check(CalibrationBand::Range("pass_band", 1.0, 0.9, 1.1, "ref-a"), 1.0);
  report.Check(CalibrationBand::Range("fail_band", 2.0, 1.9, 2.1, "ref-b"), 5.0);
  EXPECT_EQ(report.failures(), 1);
  EXPECT_FALSE(report.AllPass());

  std::ostringstream os;
  EXPECT_EQ(report.PrintTable(os), 1);
  const std::string table = os.str();
  EXPECT_NE(table.find("pass_band"), std::string::npos);
  EXPECT_NE(table.find("fail_band"), std::string::npos);
  EXPECT_NE(table.find("FAIL"), std::string::npos);
  EXPECT_NE(table.find("ref-b"), std::string::npos);
}

// The gate itself: every paper-anchored band must hold against the live
// model. One EXPECT per band so a regression names the exact anchor it broke.
TEST(CalibrationGateTest, AllPaperAnchoredBandsHold) {
  const CalibrationReport report = RunAllCalibrationChecks();
  ASSERT_GT(report.results().size(), 30u);  // The sweep actually ran.
  for (const auto& r : report.results()) {
    EXPECT_TRUE(r.pass) << r.band.name << " (" << r.band.paper_ref << "): measured "
                        << r.measured << " outside [" << r.band.lo << ", " << r.band.hi
                        << "], expected " << r.band.expect;
  }
}

TEST(CalibrationGateTest, EveryBandNamesItsPaperSource) {
  const CalibrationReport report = RunAllCalibrationChecks();
  for (const auto& r : report.results()) {
    EXPECT_FALSE(r.band.name.empty());
    EXPECT_FALSE(r.band.paper_ref.empty()) << r.band.name;
    EXPECT_LT(r.band.lo, r.band.hi + 1e-12) << r.band.name;
  }
}

TEST(CalibrationGateTest, BandNamesAreUnique) {
  const CalibrationReport report = RunAllCalibrationChecks();
  std::vector<std::string> names;
  for (const auto& r : report.results()) {
    names.push_back(r.band.name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end())
      << "duplicate calibration band name";
}

}  // namespace
}  // namespace cxl::check
