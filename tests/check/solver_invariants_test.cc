#include "src/check/invariants.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/mem/access.h"
#include "src/mem/bandwidth_solver.h"
#include "src/mem/profiles.h"

namespace cxl::check {
namespace {

using mem::AccessMix;
using mem::BandwidthSolver;
using mem::GetProfile;
using mem::MemoryPath;
using mem::PathProfile;
using mem::PiecewiseLinear;
using mem::SolverMode;

const AccessMix kRead = AccessMix::ReadOnly();

// Flat synthetic profiles isolate the allocation discipline from the
// mix-dependent capacity curves.
PathProfile FlatProfile(const std::string& name, double peak_gbps) {
  PathProfile::Params params;
  params.name = name;
  params.idle_ns_by_read_fraction = PiecewiseLinear({{0.0, 100.0}, {1.0, 100.0}});
  params.peak_gbps_by_read_fraction = PiecewiseLinear({{0.0, peak_gbps}, {1.0, peak_gbps}});
  return PathProfile(params);
}

double TotalAchieved(const BandwidthSolver::Solution& sol) {
  double total = 0.0;
  for (const auto& f : sol.flows) {
    total += f.achieved_gbps;
  }
  return total;
}

TEST(SolverInvariantsTest, UncontendedSolutionHasNoViolations) {
  const PathProfile& dram = GetProfile(MemoryPath::kLocalDram);
  BandwidthSolver solver;
  const auto r = solver.AddResource("dram", &dram);
  solver.AddFlow(&dram, kRead, 20.0, {r});
  const auto sol = solver.Solve();
  EXPECT_TRUE(SolverInvariantViolations(solver, sol).empty());
  EXPECT_EQ(sol.iterations, 1) << "uncontended workloads must converge in one round";
}

TEST(SolverInvariantsTest, ContendedMaxMinSolutionSatisfiesContract) {
  const PathProfile& dram = GetProfile(MemoryPath::kLocalDram);
  const PathProfile& cxl = GetProfile(MemoryPath::kLocalCxl);
  BandwidthSolver solver;
  const auto r_dram = solver.AddResource("dram", &dram);
  const auto r_cxl = solver.AddResource("cxl", &cxl);
  solver.AddFlow(&dram, kRead, 50.0, {r_dram});
  solver.AddFlow(&dram, AccessMix::Ratio(2, 1), 40.0, {r_dram});
  solver.AddFlow(&cxl, kRead, 30.0, {r_cxl});
  solver.AddFlow(&cxl, AccessMix::Ratio(2, 1), 45.0, {r_cxl, r_dram});
  solver.set_mode(SolverMode::kMaxMinFair);
  const auto sol = solver.Solve();
  const auto violations = SolverInvariantViolations(solver, sol);
  EXPECT_TRUE(violations.empty()) << violations.front();
  EXPECT_GE(sol.iterations, 1);
  EXPECT_LE(sol.iterations, 10) << "capacity-blend fixed point failed to settle";
}

TEST(SolverInvariantsTest, LegacyModeSkipsFairnessButKeepsConservation) {
  const PathProfile wide = FlatProfile("flat50", 50.0);
  const PathProfile narrow = FlatProfile("flat30", 30.0);
  BandwidthSolver solver;
  const auto r1 = solver.AddResource("r1", &wide);
  const auto r2 = solver.AddResource("r2", &narrow);
  solver.AddFlow(&wide, kRead, 40.0, {r1, r2});
  solver.AddFlow(&wide, kRead, 40.0, {r1});
  solver.AddFlow(&wide, kRead, 40.0, {r2});
  solver.set_mode(SolverMode::kProportionalLegacy);
  const auto sol = solver.Solve();
  // The legacy allocator strands capacity (violating work conservation in
  // spirit), but it must still never over-commit a resource or over-grant a
  // flow — and the checker documents that by reporting zero violations for
  // legacy solutions (fairness clauses are skipped).
  const auto violations = SolverInvariantViolations(solver, sol);
  EXPECT_TRUE(violations.empty()) << violations.front();
  EXPECT_EQ(sol.mode, SolverMode::kProportionalLegacy);
}

// The defect that motivated the rewrite, demonstrated end to end: on an
// asymmetric two-resource topology the proportional legacy scaler never
// re-grants capacity freed at one resource, stranding ~6 GB/s at r1 while
// flow B still wants it. Max-min water-filling recovers it.
TEST(SolverInvariantsTest, MaxMinRecoversCapacityLegacyStrands) {
  const PathProfile wide = FlatProfile("flat50", 50.0);    // limit 49.0
  const PathProfile narrow = FlatProfile("flat30", 30.0);  // limit 29.4
  auto solve = [&](SolverMode mode, BandwidthSolver* solver) {
    const auto r1 = solver->AddResource("r1", &wide);
    const auto r2 = solver->AddResource("r2", &narrow);
    solver->AddFlow(&wide, kRead, 40.0, {r1, r2});  // A: crosses both.
    solver->AddFlow(&wide, kRead, 40.0, {r1});      // B: r1 only.
    solver->AddFlow(&wide, kRead, 40.0, {r2});      // C: r2 only.
    solver->set_mode(mode);
    return solver->Solve();
  };
  BandwidthSolver maxmin_solver;
  BandwidthSolver legacy_solver;
  const auto maxmin = solve(SolverMode::kMaxMinFair, &maxmin_solver);
  const auto legacy = solve(SolverMode::kProportionalLegacy, &legacy_solver);

  // Max-min: A and C split r2's 29.4 evenly (14.7 each); B takes the rest of
  // r1 (49.0 - 14.7 = 34.3). Total 63.7, both resources fully used.
  EXPECT_NEAR(maxmin.flows[0].achieved_gbps, 14.7, 0.05);
  EXPECT_NEAR(maxmin.flows[1].achieved_gbps, 34.3, 0.05);
  EXPECT_NEAR(maxmin.flows[2].achieved_gbps, 14.7, 0.05);
  EXPECT_NEAR(TotalAchieved(maxmin), 63.7, 0.1);

  // Legacy under-allocates: B is stuck near 24.5 while ~6 GB/s of r1 sits
  // idle, because A's down-scaling at r2 is never re-granted at r1.
  EXPECT_LT(legacy.flows[1].achieved_gbps, maxmin.flows[1].achieved_gbps - 5.0);
  EXPECT_LT(TotalAchieved(legacy), TotalAchieved(maxmin) - 5.0);
  const double r1_used = legacy.flows[0].achieved_gbps + legacy.flows[1].achieved_gbps;
  EXPECT_LT(r1_used, 49.0 - 5.0) << "legacy should strand capacity at r1";

  // The max-min solution passes the full contract; the point of the rewrite.
  const auto violations = SolverInvariantViolations(maxmin_solver, maxmin);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(SolverInvariantsTest, DetectsOverCommittedResource) {
  // Feed the checker a hand-corrupted solution: a flow granted more than the
  // resource limit must trip the conservation clause.
  const PathProfile flat = FlatProfile("flat50", 50.0);
  BandwidthSolver solver;
  const auto r = solver.AddResource("r", &flat);
  solver.AddFlow(&flat, kRead, 60.0, {r});
  auto sol = solver.Solve();
  sol.flows[0].achieved_gbps = 55.0;  // > 50 * kCapacityShare.
  sol.resources[0].achieved_gbps = 55.0;
  const auto violations = SolverInvariantViolations(solver, sol);
  EXPECT_FALSE(violations.empty());
}

TEST(SolverInvariantsTest, DetectsFlowAboveOfferedLoad) {
  const PathProfile flat = FlatProfile("flat50", 50.0);
  BandwidthSolver solver;
  const auto r = solver.AddResource("r", &flat);
  solver.AddFlow(&flat, kRead, 10.0, {r});
  auto sol = solver.Solve();
  sol.flows[0].achieved_gbps = 12.0;  // Above the 10.0 it offered.
  const auto violations = SolverInvariantViolations(solver, sol);
  EXPECT_FALSE(violations.empty());
}

TEST(SolverInvariantsTest, DetectsUnfairThrottling) {
  // Two identical flows on one saturated resource, but the "solution" gives
  // one of them twice the other: the fair-share clause must fire.
  const PathProfile flat = FlatProfile("flat50", 50.0);
  BandwidthSolver solver;
  const auto r = solver.AddResource("r", &flat);
  solver.AddFlow(&flat, kRead, 40.0, {r});
  solver.AddFlow(&flat, kRead, 40.0, {r});
  solver.set_mode(SolverMode::kMaxMinFair);
  auto sol = solver.Solve();
  ASSERT_EQ(sol.mode, SolverMode::kMaxMinFair);
  sol.flows[0].achieved_gbps = 33.0;
  sol.flows[1].achieved_gbps = 16.0;
  sol.resources[0].achieved_gbps = 49.0;  // Saturated (50 * kCapacityShare).
  const auto violations = SolverInvariantViolations(solver, sol);
  EXPECT_FALSE(violations.empty());
}

TEST(SolverModeTest, LabelsAreStable) {
  EXPECT_EQ(mem::SolverModeLabel(SolverMode::kMaxMinFair), "max-min");
  EXPECT_EQ(mem::SolverModeLabel(SolverMode::kProportionalLegacy), "proportional-legacy");
}

TEST(SolverModeTest, DefaultModeReadsEnvironmentEscapeHatch) {
  unsetenv("CXL_SOLVER_MODE");
  EXPECT_EQ(BandwidthSolver::DefaultMode(), SolverMode::kMaxMinFair);
  setenv("CXL_SOLVER_MODE", "proportional", 1);
  EXPECT_EQ(BandwidthSolver::DefaultMode(), SolverMode::kProportionalLegacy);
  setenv("CXL_SOLVER_MODE", "something-else", 1);
  EXPECT_EQ(BandwidthSolver::DefaultMode(), SolverMode::kMaxMinFair);
  unsetenv("CXL_SOLVER_MODE");
}

TEST(SolverModeTest, SolutionRecordsMode) {
  const PathProfile flat = FlatProfile("flat50", 50.0);
  BandwidthSolver solver;
  const auto r = solver.AddResource("r", &flat);
  solver.AddFlow(&flat, kRead, 10.0, {r});
  solver.set_mode(SolverMode::kMaxMinFair);
  EXPECT_EQ(solver.Solve().mode, SolverMode::kMaxMinFair);
  solver.set_mode(SolverMode::kProportionalLegacy);
  EXPECT_EQ(solver.Solve().mode, SolverMode::kProportionalLegacy);
}

}  // namespace
}  // namespace cxl::check
