#include "src/core/configs.h"

#include <gtest/gtest.h>

namespace cxl::core {
namespace {

using topology::Platform;

TEST(ConfigsTest, LabelsMatchTableOne) {
  EXPECT_EQ(ConfigLabel(CapacityConfig::kMmem), "MMEM");
  EXPECT_EQ(ConfigLabel(CapacityConfig::kMmemSsd02), "MMEM-SSD-0.2");
  EXPECT_EQ(ConfigLabel(CapacityConfig::kMmemSsd04), "MMEM-SSD-0.4");
  EXPECT_EQ(ConfigLabel(CapacityConfig::kInterleave31), "3:1");
  EXPECT_EQ(ConfigLabel(CapacityConfig::kInterleave11), "1:1");
  EXPECT_EQ(ConfigLabel(CapacityConfig::kInterleave13), "1:3");
  EXPECT_EQ(ConfigLabel(CapacityConfig::kHotPromote), "Hot-Promote");
}

TEST(ConfigsTest, AllConfigsCoversTableOne) {
  EXPECT_EQ(AllCapacityConfigs().size(), 7u);
}

TEST(ConfigsTest, MmemBindsToDram) {
  const Platform p = Platform::CxlServer(false);
  const auto setup = MakeCapacitySetup(CapacityConfig::kMmem, p);
  EXPECT_EQ(setup.policy.mode(), os::PolicyMode::kBind);
  EXPECT_FALSE(setup.flash);
  EXPECT_FALSE(setup.hot_promote);
  EXPECT_DOUBLE_EQ(setup.maxmemory_fraction, 1.0);
}

TEST(ConfigsTest, SsdConfigsEnableFlash) {
  const Platform p = Platform::CxlServer(false);
  const auto s02 = MakeCapacitySetup(CapacityConfig::kMmemSsd02, p);
  EXPECT_TRUE(s02.flash);
  EXPECT_DOUBLE_EQ(s02.maxmemory_fraction, 0.8);
  const auto s04 = MakeCapacitySetup(CapacityConfig::kMmemSsd04, p);
  EXPECT_DOUBLE_EQ(s04.maxmemory_fraction, 0.6);
}

TEST(ConfigsTest, InterleaveRatios) {
  const Platform p = Platform::CxlServer(false);
  const auto cxl0 = p.CxlNodes()[0];
  EXPECT_NEAR(MakeCapacitySetup(CapacityConfig::kInterleave31, p).policy.SteadyStateShare(cxl0),
              0.25 / 2.0, 1e-9);  // 25% split over two cards.
  EXPECT_NEAR(MakeCapacitySetup(CapacityConfig::kInterleave13, p).policy.SteadyStateShare(cxl0),
              0.75 / 2.0, 1e-9);
}

TEST(ConfigsTest, HotPromoteUsesDaemonWithOneToOneStart) {
  const Platform p = MakeHotPromotePlatform(64ull << 30);
  const auto setup = MakeCapacitySetup(CapacityConfig::kHotPromote, p);
  EXPECT_TRUE(setup.hot_promote);
  EXPECT_EQ(setup.policy.mode(), os::PolicyMode::kWeightedInterleave);
  EXPECT_EQ(setup.policy.top_weight(), 1);
  EXPECT_EQ(setup.policy.low_weight(), 1);
}

TEST(ConfigsTest, HotPromotePlatformCapsDramAtHalfDataset) {
  const uint64_t dataset = 64ull << 30;
  const Platform p = MakeHotPromotePlatform(dataset);
  EXPECT_EQ(p.TotalDramBytes(), dataset / 2);
  EXPECT_FALSE(p.CxlNodes().empty());
}

TEST(ConfigsTest, DefaultTieringConfigSane) {
  const os::TieringConfig cfg = DefaultTieringConfig();
  EXPECT_GT(cfg.promote_rate_limit_mbps, 0.0);
  EXPECT_TRUE(cfg.dynamic_threshold);
  EXPECT_GT(cfg.hint_fault_sample_rate, 0.0);
  EXPECT_LE(cfg.hint_fault_sample_rate, 1.0);
}

}  // namespace
}  // namespace cxl::core
