#include "src/core/experiment.h"

#include <gtest/gtest.h>

namespace cxl::core {
namespace {

KeyDbExperimentOptions FastOptions() {
  KeyDbExperimentOptions opt;
  opt.dataset_bytes = 4ull << 30;
  opt.total_ops = 60'000;
  opt.warmup_ops = 15'000;
  return opt;
}

TEST(ExperimentTest, MmemRunSucceeds) {
  const auto res = RunKeyDbExperiment(CapacityConfig::kMmem, workload::YcsbWorkload::kC,
                                      FastOptions());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->config_label, "MMEM");
  EXPECT_EQ(res->workload_name, "YCSB-C");
  EXPECT_GT(res->server.throughput_kops, 10.0);
  EXPECT_GT(res->server.all_latency_us.count(), 0u);
  EXPECT_DOUBLE_EQ(res->server.dram_share, 1.0);
}

TEST(ExperimentTest, DeterministicUnderSeed) {
  const auto a = RunKeyDbExperiment(CapacityConfig::kInterleave11, workload::YcsbWorkload::kA,
                                    FastOptions());
  const auto b = RunKeyDbExperiment(CapacityConfig::kInterleave11, workload::YcsbWorkload::kA,
                                    FastOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->server.throughput_kops, b->server.throughput_kops);
}

TEST(ExperimentTest, InterleaveIsSlowerThanMmem) {
  const auto mmem =
      RunKeyDbExperiment(CapacityConfig::kMmem, workload::YcsbWorkload::kB, FastOptions());
  const auto inter = RunKeyDbExperiment(CapacityConfig::kInterleave13, workload::YcsbWorkload::kB,
                                        FastOptions());
  ASSERT_TRUE(mmem.ok());
  ASSERT_TRUE(inter.ok());
  const double slowdown = mmem->server.throughput_kops / inter->server.throughput_kops;
  EXPECT_GT(slowdown, 1.15);
  EXPECT_LT(slowdown, 1.7);
  EXPECT_NEAR(inter->server.dram_share, 0.25, 0.01);
}

TEST(ExperimentTest, FlashConfigUsesSsd) {
  const auto res = RunKeyDbExperiment(CapacityConfig::kMmemSsd04, workload::YcsbWorkload::kA,
                                      FastOptions());
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->server.ssd_write_gbps, 0.0);  // WAL traffic at minimum.
}

TEST(ExperimentTest, HotPromoteMigratesAndRecovers) {
  KeyDbExperimentOptions opt = FastOptions();
  opt.total_ops = 120'000;
  const auto hp = RunKeyDbExperiment(CapacityConfig::kHotPromote, workload::YcsbWorkload::kC, opt);
  const auto inter =
      RunKeyDbExperiment(CapacityConfig::kInterleave11, workload::YcsbWorkload::kC, opt);
  ASSERT_TRUE(hp.ok());
  ASSERT_TRUE(inter.ok());
  EXPECT_GT(hp->server.migrated_bytes, 0.0);
  // Promotion pulls the Zipfian-hot pages into DRAM: beats static 1:1.
  EXPECT_GT(hp->server.throughput_kops, inter->server.throughput_kops);
}

TEST(ExperimentTest, VmExperimentPenaltyInBand) {
  KeyDbExperimentOptions opt;
  opt.dataset_bytes = 4ull << 30;
  opt.total_ops = 80'000;
  opt.warmup_ops = 20'000;
  const auto res = RunVmCxlOnlyExperiment(opt);
  ASSERT_TRUE(res.ok());
  // Paper: ~12.5% throughput penalty; latency penalty 9-27%.
  EXPECT_GT(res->throughput_penalty, 0.05);
  EXPECT_LT(res->throughput_penalty, 0.25);
  const double lat_penalty = res->cxl.server.read_latency_us.p50() /
                                 res->mmem.server.read_latency_us.p50() -
                             1.0;
  EXPECT_GT(lat_penalty, 0.05);
  EXPECT_LT(lat_penalty, 0.30);
}

TEST(ExperimentTest, TimelineCoversEpochs) {
  KeyDbExperimentOptions opt = FastOptions();
  const auto res = RunKeyDbExperiment(CapacityConfig::kMmem, workload::YcsbWorkload::kC, opt);
  ASSERT_TRUE(res.ok());
  // total_ops / epoch_ops(10k) boundaries, minus perhaps a partial tail.
  EXPECT_GE(res->server.timeline.size(), 5u);
  double prev_ms = 0.0;
  for (const auto& s : res->server.timeline) {
    EXPECT_GT(s.end_ms, prev_ms);
    EXPECT_GT(s.kops, 0.0);
    prev_ms = s.end_ms;
  }
}

TEST(ExperimentTest, HotPromoteTimelineShowsRampAndBoundedChurn) {
  KeyDbExperimentOptions opt = FastOptions();
  opt.total_ops = 120'000;
  const auto res =
      RunKeyDbExperiment(CapacityConfig::kHotPromote, workload::YcsbWorkload::kC, opt);
  ASSERT_TRUE(res.ok());
  const auto& tl = res->server.timeline;
  ASSERT_GE(tl.size(), 6u);
  // Throughput ramps from the cold 1:1 start toward steady state.
  EXPECT_GT(tl.back().kops, tl.front().kops);
  // Migration happened, and each epoch's volume respects the rate limit
  // (1024 MB/s over a << 1 s epoch): the daemon trickles, never floods.
  double total_mb = 0.0;
  for (const auto& s : tl) {
    total_mb += s.migrated_mb;
    EXPECT_LT(s.migrated_mb, 150.0) << "epoch at " << s.end_ms << " ms";
  }
  EXPECT_GT(total_mb, 1.0);
}

TEST(ExperimentTest, TelemetryIsObservationalAndCapturesDaemonSeries) {
  KeyDbExperimentOptions opt = FastOptions();
  opt.total_ops = 120'000;
  const auto plain =
      RunKeyDbExperiment(CapacityConfig::kHotPromote, workload::YcsbWorkload::kC, opt);
  telemetry::MetricRegistry reg;
  opt.env.telemetry = &reg;
  const auto traced =
      RunKeyDbExperiment(CapacityConfig::kHotPromote, workload::YcsbWorkload::kC, opt);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(traced.ok());

  // Attaching a sink must not change the simulation.
  EXPECT_DOUBLE_EQ(plain->server.throughput_kops, traced->server.throughput_kops);
  EXPECT_DOUBLE_EQ(plain->server.migrated_bytes, traced->server.migrated_bytes);

  // The promotion daemon leaves one sample per tick; the end-state gauges and
  // per-path bandwidth readings are filled in.
  const auto& series = reg.timeline().series();
  ASSERT_GT(series.count("tiering.promote_mbps"), 0u);
  EXPECT_GE(series.at("tiering.promote_mbps").size(), 10u);
  EXPECT_EQ(series.at("tiering.hot_threshold").size(),
            series.at("tiering.promote_mbps").size());
  ASSERT_GT(series.count("vmstat.pgpromote_success"), 0u);
  EXPECT_GT(reg.GetCounter("tiering.ticks").value(), 0u);
  EXPECT_TRUE(reg.GetGauge("kv.throughput_kops").set());
  EXPECT_TRUE(reg.GetGauge("pcm.skt0.dram_gbps").set());
  EXPECT_GT(reg.histograms().count("kv.read_latency_us"), 0u);
  EXPECT_FALSE(reg.trace().empty());
}

TEST(ExperimentTest, VmExperimentMergesPlacementPrefixes) {
  KeyDbExperimentOptions opt = FastOptions();
  opt.total_ops = 40'000;
  opt.warmup_ops = 10'000;
  telemetry::MetricRegistry reg;
  opt.env.telemetry = &reg;
  const auto res = RunVmCxlOnlyExperiment(opt);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(reg.GetGauge("mmem.kv.throughput_kops").set());
  EXPECT_TRUE(reg.GetGauge("cxl.kv.throughput_kops").set());
  EXPECT_NEAR(reg.GetGauge("mmem.kv.throughput_kops").value(),
              res->mmem.server.throughput_kops, 1e-9);
}

}  // namespace
}  // namespace cxl::core
