#include "src/cost/cost_model.h"

#include <gtest/gtest.h>

namespace cxl::cost {
namespace {

TEST(CostModelTest, PaperWorkedExample) {
  // §6: R_d=10, R_c=8, C=2 -> N_cxl/N_baseline = 67.29%; with R_t=1.1 the
  // TCO saving is 25.98%.
  AbstractCostModel model(CostModelParams{10.0, 8.0, 2.0, 1.1});
  EXPECT_NEAR(model.ServerRatio(), 0.6729, 0.0001);
  EXPECT_NEAR(model.TcoSaving(), 0.2598, 0.0001);
}

TEST(CostModelTest, ValidateAcceptsPaperParams) {
  EXPECT_TRUE(AbstractCostModel(CostModelParams{10.0, 8.0, 2.0, 1.1}).Validate().ok());
}

TEST(CostModelTest, ValidateRejectsBadParams) {
  EXPECT_FALSE(AbstractCostModel(CostModelParams{0.9, 8.0, 2.0, 1.1}).Validate().ok());
  EXPECT_FALSE(AbstractCostModel(CostModelParams{10.0, 0.5, 2.0, 1.1}).Validate().ok());
  EXPECT_FALSE(AbstractCostModel(CostModelParams{10.0, 12.0, 2.0, 1.1}).Validate().ok());
  EXPECT_FALSE(AbstractCostModel(CostModelParams{10.0, 8.0, -1.0, 1.1}).Validate().ok());
  EXPECT_FALSE(AbstractCostModel(CostModelParams{10.0, 8.0, 2.0, 0.0}).Validate().ok());
}

TEST(CostModelTest, DerivationIdentity) {
  // The server ratio is exactly the point where T_baseline == T_cxl — the
  // algebra in §6 — independent of W and D.
  const CostModelParams params{7.0, 5.0, 3.0, 1.2};
  AbstractCostModel model(params);
  const double ratio = model.ServerRatio();
  for (double w : {100.0, 1000.0}) {
    for (double d : {1.0, 3.7}) {
      const double n_baseline = 10.0;
      const double n_cxl = ratio * n_baseline;
      EXPECT_NEAR(model.BaselineTime(w, n_baseline, d), model.CxlTime(w, n_cxl, d), 1e-9)
          << "W=" << w << " D=" << d;
    }
  }
}

TEST(CostModelTest, FasterCxlNeedsFewerServers) {
  double prev = 1.0;
  for (double rc : {2.0, 4.0, 8.0, 10.0}) {
    AbstractCostModel m(CostModelParams{10.0, rc, 2.0, 1.1});
    EXPECT_LT(m.ServerRatio(), prev);
    prev = m.ServerRatio();
  }
}

TEST(CostModelTest, MoreCxlCapacityHelps) {
  // Larger CXL share (smaller C) means more of the working set avoids SSD.
  AbstractCostModel big_cxl(CostModelParams{10.0, 8.0, 1.0, 1.1});
  AbstractCostModel small_cxl(CostModelParams{10.0, 8.0, 8.0, 1.1});
  EXPECT_LT(big_cxl.ServerRatio(), small_cxl.ServerRatio());
}

TEST(CostModelTest, SavingLinearInRelativeTco) {
  AbstractCostModel cheap(CostModelParams{10.0, 8.0, 2.0, 1.0});
  AbstractCostModel pricey(CostModelParams{10.0, 8.0, 2.0, 1.3});
  EXPECT_GT(cheap.TcoSaving(), pricey.TcoSaving());
  EXPECT_NEAR(cheap.TcoSaving() - pricey.TcoSaving(), 0.3 * cheap.ServerRatio(), 1e-9);
}

TEST(CostModelTest, BreakEvenTco) {
  AbstractCostModel m(CostModelParams{10.0, 8.0, 2.0, 1.1});
  const double breakeven = 1.0 / m.ServerRatio();
  AbstractCostModel at_breakeven(CostModelParams{10.0, 8.0, 2.0, breakeven});
  EXPECT_NEAR(at_breakeven.TcoSaving(), 0.0, 1e-9);
}

TEST(CostModelTest, BaselineTimeSplitsSegments) {
  AbstractCostModel m(CostModelParams{10.0, 8.0, 2.0, 1.1});
  // W=100, 4 servers x D=10 -> 40 in memory at speed 10, 60 on SSD at 1.
  EXPECT_NEAR(m.BaselineTime(100.0, 4.0, 10.0), 40.0 / 10.0 + 60.0, 1e-9);
}

TEST(CostModelTest, CxlTimeAddsCxlSegment) {
  AbstractCostModel m(CostModelParams{10.0, 8.0, 2.0, 1.1});
  // W=100, 4 servers x D=10 -> 40 MMEM + 20 CXL + 40 SSD.
  EXPECT_NEAR(m.CxlTime(100.0, 4.0, 10.0), 4.0 + 20.0 / 8.0 + 40.0, 1e-9);
}

TEST(ExtendedCostModelTest, FixedOverheadReducesSaving) {
  const CostModelParams base{10.0, 8.0, 2.0, 1.1};
  ExtendedCostModel no_extra(ExtendedCostParams{base, 0.0});
  ExtendedCostModel with_extra(ExtendedCostParams{base, 0.1});
  EXPECT_NEAR(no_extra.TcoSaving(), AbstractCostModel(base).TcoSaving(), 1e-12);
  EXPECT_LT(with_extra.TcoSaving(), no_extra.TcoSaving());
  EXPECT_NEAR(with_extra.EffectiveRelativeTco(), 1.2, 1e-12);
}

// Property sweep: the ratio stays in (0, 1) across the sane parameter space
// (CXL deployments never need *more* servers under these assumptions).
class CostModelSweep : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(CostModelSweep, RatioInUnitInterval) {
  const auto [rd, rc_frac, c] = GetParam();
  AbstractCostModel m(CostModelParams{rd, 1.0 + rc_frac * (rd - 1.0), c, 1.1});
  ASSERT_TRUE(m.Validate().ok());
  EXPECT_GT(m.ServerRatio(), 0.0);
  EXPECT_LT(m.ServerRatio(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Grid, CostModelSweep,
                         ::testing::Combine(::testing::Values(2.0, 5.0, 10.0, 50.0),
                                            ::testing::Values(0.2, 0.5, 0.8, 1.0),
                                            ::testing::Values(0.5, 1.0, 2.0, 8.0)));

}  // namespace
}  // namespace cxl::cost
