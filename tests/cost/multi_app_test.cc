#include "src/cost/multi_app.h"

#include <gtest/gtest.h>

namespace cxl::cost {
namespace {

std::vector<AppClass> PaperishFleet() {
  return {
      AppClass{"spark-sql", CostModelParams{10.0, 8.0, 2.0, 1.1}, 100.0},
      AppClass{"keydb", CostModelParams{1.9, 1.45, 2.0, 1.1}, 50.0},
      AppClass{"batch-etl", CostModelParams{4.0, 3.0, 2.0, 1.1}, 30.0},
  };
}

TEST(MultiAppTest, SingleClassMatchesSingleAppModel) {
  MultiAppCostModel model({AppClass{"spark", CostModelParams{10.0, 8.0, 2.0, 1.1}, 10.0}}, 1.1);
  ASSERT_TRUE(model.Validate().ok());
  const auto plan = model.Plan();
  AbstractCostModel single(CostModelParams{10.0, 8.0, 2.0, 1.1});
  EXPECT_NEAR(plan.total_cxl_servers, 10.0 * single.ServerRatio(), 1e-9);
  EXPECT_NEAR(plan.fleet_tco_saving, single.TcoSaving(), 1e-9);
}

TEST(MultiAppTest, FleetSavingIsServerWeighted) {
  MultiAppCostModel model(PaperishFleet(), 1.1);
  ASSERT_TRUE(model.Validate().ok());
  const auto plan = model.Plan();
  EXPECT_EQ(plan.apps.size(), 3u);
  EXPECT_NEAR(plan.total_baseline_servers, 180.0, 1e-9);
  // Fleet saving sits between the best and worst per-class savings.
  double best = -1.0;
  double worst = 2.0;
  for (const auto& a : plan.apps) {
    best = std::max(best, a.tco_saving);
    worst = std::min(worst, a.tco_saving);
  }
  EXPECT_GE(plan.fleet_tco_saving, worst - 1e-9);
  EXPECT_LE(plan.fleet_tco_saving, best + 1e-9);
}

TEST(MultiAppTest, PoolingDiscountImprovesSaving) {
  MultiAppCostModel undiscounted(PaperishFleet(), 1.1, 0.0);
  MultiAppCostModel pooled(PaperishFleet(), 1.1, 0.34);  // 16-host multiplexing.
  EXPECT_GT(pooled.Plan().fleet_tco_saving, undiscounted.Plan().fleet_tco_saving);
  EXPECT_NEAR(pooled.effective_r_t(), 1.0 + 0.1 * 0.66, 1e-12);
}

TEST(MultiAppTest, SelectivePlanKeepsLosersOnBaseline) {
  // A class with a tiny memory speedup and a pricey CXL server would *lose*
  // money on CXL; the selective plan leaves it alone.
  std::vector<AppClass> fleet = {
      AppClass{"winner", CostModelParams{10.0, 8.0, 2.0, 1.1}, 10.0},
      AppClass{"loser", CostModelParams{1.2, 1.1, 8.0, 1.1}, 10.0},
  };
  MultiAppCostModel model(fleet, 1.4);  // Expensive CXL servers.
  ASSERT_TRUE(model.Validate().ok());
  const auto all_in = model.Plan();
  const auto selective = model.PlanSelective();
  EXPECT_GT(selective.fleet_tco_saving, all_in.fleet_tco_saving);
  // The loser kept its baseline server count and zero saving.
  EXPECT_DOUBLE_EQ(selective.apps[1].cxl_servers, 10.0);
  EXPECT_DOUBLE_EQ(selective.apps[1].tco_saving, 0.0);
}

TEST(MultiAppTest, SelectiveNeverWorseThanAllIn) {
  for (double rt : {1.0, 1.1, 1.3, 1.48}) {
    MultiAppCostModel model(PaperishFleet(), rt);
    EXPECT_GE(model.PlanSelective().fleet_tco_saving, model.Plan().fleet_tco_saving - 1e-9)
        << "rt=" << rt;
  }
}

TEST(MultiAppTest, ValidateRejectsBadInputs) {
  EXPECT_FALSE(MultiAppCostModel({}, 1.1).Validate().ok());
  EXPECT_FALSE(
      MultiAppCostModel({AppClass{"bad", CostModelParams{0.5, 0.4, 2.0, 1.1}, 1.0}}, 1.1)
          .Validate()
          .ok());
  EXPECT_FALSE(
      MultiAppCostModel({AppClass{"none", CostModelParams{10.0, 8.0, 2.0, 1.1}, 0.0}}, 1.1)
          .Validate()
          .ok());
}

}  // namespace
}  // namespace cxl::cost
