#include "src/cost/vm_economics.h"

#include <gtest/gtest.h>

namespace cxl::cost {
namespace {

TEST(ProcessorSeriesTest, TableTwoRows) {
  const auto series = IntelProcessorSeries();
  ASSERT_EQ(series.size(), 5u);
  EXPECT_EQ(series[0].name, "IceLake-SP");
  EXPECT_EQ(series[0].max_vcpu_per_server, 160);
  EXPECT_EQ(series[3].name, "Sierra Forest");
  EXPECT_EQ(series[3].max_vcpu_per_server, 1152);
  EXPECT_DOUBLE_EQ(series[3].required_memory_tib, 4.5);
}

TEST(ProcessorSeriesTest, VcpuGrowthOutpacesMemory) {
  // The §4.3 motivation: core counts grow, the 4 TiB board limit does not.
  const auto series = IntelProcessorSeries();
  EXPECT_GT(series.back().max_vcpu_per_server, 4 * series.front().max_vcpu_per_server);
  for (const auto& p : series) {
    EXPECT_DOUBLE_EQ(p.max_memory_tib, 4.0);
  }
  // Only the latest parts are memory-starved at 1:4.
  EXPECT_LT(series[0].required_memory_tib, series[0].max_memory_tib);
  EXPECT_GT(series[3].required_memory_tib, series[3].max_memory_tib);
}

TEST(RequiredMemoryTest, OneToFourRule) {
  EXPECT_NEAR(RequiredMemoryTiB(1152), 4.5, 1e-9);
  EXPECT_NEAR(RequiredMemoryTiB(128), 0.5, 1e-9);
  EXPECT_NEAR(RequiredMemoryTiB(256, 8.0), 2.0, 1e-9);  // 1:8 ratio.
}

TEST(VmEconomicsTest, PaperWorkedExample) {
  // §4.3.2: 1:3 server -> 25% stranded; 20% discount -> 20/75 improvement.
  VmEconomics econ(VmEconomicsParams{4.0, 3.0, 0.20, 0.125});
  EXPECT_DOUBLE_EQ(econ.StrandedVcpuFraction(), 0.25);
  EXPECT_DOUBLE_EQ(econ.BaselineRevenue(), 0.75);
  EXPECT_DOUBLE_EQ(econ.CxlRevenue(), 0.95);
  EXPECT_NEAR(econ.RevenueImprovement(), 20.0 / 75.0, 1e-9);
}

TEST(VmEconomicsTest, NoStrandingNoGain) {
  VmEconomics econ(VmEconomicsParams{4.0, 4.0, 0.20, 0.125});
  EXPECT_DOUBLE_EQ(econ.StrandedVcpuFraction(), 0.0);
  EXPECT_DOUBLE_EQ(econ.RevenueImprovement(), 0.0);
}

TEST(VmEconomicsTest, OverProvisionedClampsToZero) {
  VmEconomics econ(VmEconomicsParams{4.0, 6.0, 0.20, 0.125});
  EXPECT_DOUBLE_EQ(econ.StrandedVcpuFraction(), 0.0);
}

TEST(VmEconomicsTest, BiggerDiscountSmallerGain) {
  VmEconomics small(VmEconomicsParams{4.0, 3.0, 0.10, 0.125});
  VmEconomics large(VmEconomicsParams{4.0, 3.0, 0.40, 0.125});
  EXPECT_GT(small.RevenueImprovement(), large.RevenueImprovement());
}

TEST(VmEconomicsTest, MoreStrandingBiggerRelativeGain) {
  VmEconomics mild(VmEconomicsParams{4.0, 3.5, 0.20, 0.125});
  VmEconomics severe(VmEconomicsParams{4.0, 2.0, 0.20, 0.125});
  EXPECT_GT(severe.RevenueImprovement(), mild.RevenueImprovement());
}

}  // namespace
}  // namespace cxl::cost
