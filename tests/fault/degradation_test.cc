// Graceful-degradation responses, end to end: each layer's reaction to an
// injected fault is observable in its results, disabled plans leave runs
// byte-identical, and fault-injected sweeps stay deterministic across
// --jobs fan-outs.
#include <gtest/gtest.h>

#include <limits>

#include "src/core/experiment.h"
#include "src/fault/fault.h"
#include "src/os/numa_policy.h"
#include "src/os/page_allocator.h"
#include "src/os/tiering.h"
#include "src/topology/platform.h"

namespace cxl {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

core::KeyDbExperimentOptions KvOptions() {
  core::KeyDbExperimentOptions opt;
  opt.dataset_bytes = 16ull << 30;
  opt.total_ops = 90'000;
  opt.warmup_ops = 20'000;
  return opt;
}

// --- Tiering daemon -------------------------------------------------------

class TieringFaultTest : public ::testing::Test {
 protected:
  // 1 GiB pages keep node capacities small enough to fill exactly.
  TieringFaultTest()
      : platform_(topology::Platform::CxlServer(false)), alloc_(platform_, 1ull << 30) {}

  os::TieringConfig Config() {
    os::TieringConfig cfg;
    cfg.hint_fault_sample_rate = 1.0;
    cfg.initial_hot_threshold = 4.0;
    cfg.dynamic_threshold = false;
    return cfg;
  }

  topology::Platform platform_;
  os::PageAllocator alloc_;
};

TEST_F(TieringFaultTest, QuarantineDemotesAndBlocksPromotion) {
  os::TieredMemory tiering(alloc_, Config());
  const auto dram0 = platform_.DramNodes()[0];
  auto pages = alloc_.Allocate(os::NumaPolicy::Bind({dram0}), 2);
  ASSERT_TRUE(pages.ok());
  const os::PageId victim = (*pages)[0];

  ASSERT_TRUE(tiering.QuarantinePage(victim));
  EXPECT_FALSE(tiering.QuarantinePage(victim));  // Already quarantined.
  EXPECT_EQ(tiering.QuarantinedPages(), 1u);
  // Demoted out of DRAM...
  EXPECT_FALSE(tiering.IsTopTier(alloc_.NodeOf(victim)));
  // ...and never promoted back, no matter how hot it runs.
  for (int tick = 0; tick < 4; ++tick) {
    tiering.RecordAccess(victim, 1000);
    tiering.Tick(1.0);
  }
  EXPECT_FALSE(tiering.IsTopTier(alloc_.NodeOf(victim)));
}

TEST_F(TieringFaultTest, DaemonStallFreezesTicks) {
  os::TieredMemory tiering(alloc_, Config());
  const auto cxl0 = platform_.CxlNodes()[0];
  auto pages = alloc_.Allocate(os::NumaPolicy::Bind({cxl0}), 4);
  ASSERT_TRUE(pages.ok());

  fault::FaultInjector stall(fault::FaultPlan().DaemonStall(0.0, kInf));
  stall.AdvanceTo(0.0);
  os::TieredMemory::Observers obs;
  obs.faults = &stall;
  tiering.Attach(obs);
  for (os::PageId id : *pages) {
    tiering.RecordAccess(id, 100);
  }
  const auto stalled = tiering.Tick(1.0);
  EXPECT_EQ(stalled.promoted_pages, 0u);
  EXPECT_DOUBLE_EQ(stalled.migrated_bytes, 0.0);

  // Once the daemon recovers, the (still hot) pages promote. (A default
  // Observers detaches everything.)
  tiering.Attach(os::TieredMemory::Observers{});
  const auto recovered = tiering.Tick(1.0);
  EXPECT_EQ(recovered.promoted_pages, 4u);
}

TEST_F(TieringFaultTest, PromotionFailureArmsExponentialBackoff) {
  os::TieredMemory tiering(alloc_, Config());
  // Fill every node completely so promotion cannot make room anywhere.
  for (const auto node : platform_.DramNodes()) {
    ASSERT_TRUE(alloc_.Allocate(os::NumaPolicy::Bind({node}), alloc_.FreePages(node)).ok());
  }
  std::vector<os::PageId> cxl_pages;
  for (const auto node : platform_.CxlNodes()) {
    auto pages = alloc_.Allocate(os::NumaPolicy::Bind({node}), alloc_.FreePages(node));
    ASSERT_TRUE(pages.ok());
    cxl_pages.insert(cxl_pages.end(), pages->begin(), pages->end());
  }

  // Enabled injector (the plan's window never opens; backoff only needs the
  // degraded path armed, not an active event).
  fault::FaultInjector faults(fault::FaultPlan().Poison(1e6, 1.0, 1e-4));
  faults.AdvanceTo(0.0);
  os::TieredMemory::Observers obs;
  obs.faults = &faults;
  tiering.Attach(obs);
  tiering.RecordAccess(cxl_pages.front(), 1000);
  tiering.Tick(1.0);
  const int armed = tiering.BackoffTicksRemaining();
  EXPECT_GT(armed, 0);
  // Backed-off ticks are skipped and drain the counter.
  tiering.Tick(1.0);
  EXPECT_EQ(tiering.BackoffTicksRemaining(), armed - 1);
}

// --- KV server ------------------------------------------------------------

TEST(KvDegradationTest, PoisonedReadsRetryAndQuarantine) {
  core::KeyDbExperimentOptions opt = KvOptions();
  opt.env.faults = fault::FaultPlan().Poison(0.0, kInf, 1e-3);
  const auto res =
      core::RunKeyDbExperiment(core::CapacityConfig::kHotPromote, workload::YcsbWorkload::kA, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->server.poisoned_reads, 0u);
  EXPECT_EQ(res->server.poison_retries,
            res->server.poisoned_reads *
                static_cast<uint64_t>(fault::FaultTunables{}.poison_read_retries));
  EXPECT_GT(res->server.quarantined_pages, 0u);

  const auto healthy = core::RunKeyDbExperiment(core::CapacityConfig::kHotPromote,
                                                workload::YcsbWorkload::kA, KvOptions());
  ASSERT_TRUE(healthy.ok());
  EXPECT_LT(res->server.throughput_kops, healthy->server.throughput_kops);
}

TEST(KvDegradationTest, FlashIoErrorsCostTimeouts) {
  core::KeyDbExperimentOptions opt = KvOptions();
  opt.env.faults = fault::FaultPlan().FlashErrors(0.0, kInf, 0.02);
  const auto res =
      core::RunKeyDbExperiment(core::CapacityConfig::kMmemSsd02, workload::YcsbWorkload::kA, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->server.flash_errors, 0u);
}

TEST(KvDegradationTest, SustainedThrottleArmsLoadShedding) {
  core::KeyDbExperimentOptions opt = KvOptions();
  opt.env.faults = fault::FaultPlan().DramThrottle(0.05, kInf, 0.25);
  const auto res =
      core::RunKeyDbExperiment(core::CapacityConfig::kHotPromote, workload::YcsbWorkload::kA, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->server.shed_ops, 0u);
  EXPECT_GT(res->server.shed_epochs, 0u);
}

TEST(KvDegradationTest, DowntrainSlowsCxlHeavyConfig) {
  core::KeyDbExperimentOptions opt = KvOptions();
  opt.env.faults = fault::FaultPlan().Downtrain(0.05, kInf, 4);
  const auto degraded =
      core::RunKeyDbExperiment(core::CapacityConfig::kInterleave11, workload::YcsbWorkload::kC, opt);
  const auto healthy = core::RunKeyDbExperiment(core::CapacityConfig::kInterleave11,
                                                workload::YcsbWorkload::kC, KvOptions());
  ASSERT_TRUE(degraded.ok());
  ASSERT_TRUE(healthy.ok());
  EXPECT_LT(degraded->server.throughput_kops, 0.85 * healthy->server.throughput_kops);
}

// --- Spark ----------------------------------------------------------------

TEST(SparkDegradationTest, DegradedLinkReexecutesShufflePartitions) {
  core::SparkExperimentOptions healthy;
  healthy.cluster = apps::spark::SparkConfig::Interleave(1, 1);
  core::SparkExperimentOptions degraded = healthy;
  degraded.env.faults = fault::FaultPlan().Downtrain(0.0, kInf, 4);

  const auto h = core::RunSparkExperiment(healthy);
  const auto d = core::RunSparkExperiment(degraded);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(h->reexecuted_partitions, 0);
  EXPECT_GT(d->reexecuted_partitions, 0);
  EXPECT_GT(d->total_seconds, h->total_seconds);
  double retry_s = 0.0;
  for (const auto& q : d->queries) {
    retry_s += q.retry_seconds;
  }
  EXPECT_GT(retry_s, 0.0);
}

// --- LLM serving ----------------------------------------------------------

TEST(LlmDegradationTest, BandwidthCollapseShrinksDecodeBatch) {
  core::LlmExperimentOptions healthy;
  healthy.stack.placement = apps::llm::LlmPlacement::Interleave(1, 2);
  healthy.requests = 32;
  core::LlmExperimentOptions degraded = healthy;
  degraded.env.faults = fault::FaultPlan().Downtrain(0.0, kInf, 4).CrcStorm(0.0, kInf, 0.2);

  const auto h = core::RunLlmExperiment(healthy);
  const auto d = core::RunLlmExperiment(degraded);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(h->stats.batch_shrinks, 0u);
  EXPECT_EQ(h->stats.min_batch, 0);
  EXPECT_GT(d->stats.batch_shrinks, 0u);
  EXPECT_GT(d->stats.min_batch, 0);
  EXPECT_LT(d->stats.min_batch, degraded.stack.decode_batch);
  EXPECT_LT(d->stats.tokens_per_second, h->stats.tokens_per_second);
}

// --- Cross-cutting invariants ---------------------------------------------

TEST(FaultEnvTest, EmptyPlanLeavesRunIdentical) {
  // A run with an empty plan (whatever the fault seed or tunables say) is
  // identical to one that never heard of faults.
  const auto baseline = core::RunKeyDbExperiment(core::CapacityConfig::kHotPromote,
                                                 workload::YcsbWorkload::kA, KvOptions());
  core::KeyDbExperimentOptions opt = KvOptions();
  opt.env.fault_seed = 999;
  opt.env.fault_tunables.poison_read_retries = 7;
  const auto with_env =
      core::RunKeyDbExperiment(core::CapacityConfig::kHotPromote, workload::YcsbWorkload::kA, opt);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(with_env.ok());
  EXPECT_DOUBLE_EQ(baseline->server.throughput_kops, with_env->server.throughput_kops);
  EXPECT_DOUBLE_EQ(baseline->server.avg_service_us, with_env->server.avg_service_us);
  EXPECT_EQ(baseline->server.all_latency_us.count(), with_env->server.all_latency_us.count());
  EXPECT_DOUBLE_EQ(baseline->server.all_latency_us.p999(), with_env->server.all_latency_us.p999());
  EXPECT_DOUBLE_EQ(baseline->server.migrated_bytes, with_env->server.migrated_bytes);
  EXPECT_EQ(with_env->server.poisoned_reads, 0u);
  EXPECT_EQ(with_env->server.shed_ops, 0u);
}

TEST(FaultEnvTest, FaultedSweepIsIdenticalAcrossJobs) {
  core::KeyDbExperimentOptions opt = KvOptions();
  opt.dataset_bytes = 8ull << 30;
  opt.total_ops = 60'000;
  opt.env.faults = fault::FaultPlan().Downtrain(0.05, kInf, 8).Poison(0.0, kInf, 5e-4);
  opt.env.fault_seed = 42;

  opt.env.jobs = 1;
  const auto serial = core::RunVmCxlOnlyExperiment(opt);
  opt.env.jobs = 8;
  const auto fanned = core::RunVmCxlOnlyExperiment(opt);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(fanned.ok());
  EXPECT_DOUBLE_EQ(serial->mmem.server.throughput_kops, fanned->mmem.server.throughput_kops);
  EXPECT_DOUBLE_EQ(serial->cxl.server.throughput_kops, fanned->cxl.server.throughput_kops);
  EXPECT_EQ(serial->mmem.server.poisoned_reads, fanned->mmem.server.poisoned_reads);
  EXPECT_EQ(serial->cxl.server.poisoned_reads, fanned->cxl.server.poisoned_reads);
  EXPECT_DOUBLE_EQ(serial->throughput_penalty, fanned->throughput_penalty);
}

}  // namespace
}  // namespace cxl
