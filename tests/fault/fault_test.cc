// Unit tests for the fault-injection engine: plan builders and the spec
// grammar, window aggregation in the injector, the §3.4-derived degraded
// link math, per-op sampling discipline, and the fault.* knob surface.
#include "src/fault/fault.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "src/mem/cxl_link.h"
#include "src/util/knobs.h"

namespace cxl::fault {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(FaultPlanTest, BuildersRecordEvents) {
  const FaultPlan plan = FaultPlan()
                             .Downtrain(1.0, 4.0, 8)
                             .CrcStorm(2.0, 2.0, 0.15)
                             .Poison(0.0, kInf, 1e-4)
                             .DramThrottle(0.5, 1.0, 0.25)
                             .DaemonStall(3.0, 1.5)
                             .FlashErrors(0.5, kInf, 0.01);
  ASSERT_EQ(plan.events().size(), 6u);
  EXPECT_EQ(plan.events()[0].type, FaultType::kLaneDowntrain);
  EXPECT_DOUBLE_EQ(plan.events()[0].start_s, 1.0);
  EXPECT_DOUBLE_EQ(plan.events()[0].end_s(), 5.0);
  EXPECT_DOUBLE_EQ(plan.events()[0].severity, 8.0);
  EXPECT_TRUE(plan.events()[0].ActiveAt(1.0));
  EXPECT_TRUE(plan.events()[0].ActiveAt(4.999));
  EXPECT_FALSE(plan.events()[0].ActiveAt(5.0));
  EXPECT_FALSE(plan.events()[0].ActiveAt(0.999));
  EXPECT_EQ(plan.events()[2].type, FaultType::kPoisonedCacheline);
  EXPECT_EQ(plan.events()[2].end_s(), kInf);
}

TEST(FaultPlanTest, ToStringRoundTripsThroughParse) {
  const FaultPlan plan = FaultPlan().Downtrain(2.0, 3.0, 8).Poison(0.0, kInf, 1e-4);
  const auto reparsed = FaultPlan::Parse(plan.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->events().size(), plan.events().size());
  for (size_t i = 0; i < plan.events().size(); ++i) {
    EXPECT_EQ(reparsed->events()[i].type, plan.events()[i].type);
    EXPECT_DOUBLE_EQ(reparsed->events()[i].start_s, plan.events()[i].start_s);
    EXPECT_DOUBLE_EQ(reparsed->events()[i].duration_s, plan.events()[i].duration_s);
    EXPECT_DOUBLE_EQ(reparsed->events()[i].severity, plan.events()[i].severity);
  }
}

TEST(FaultPlanTest, ParseSpecGrammar) {
  const auto plan = FaultPlan::Parse("downtrain@2+3=8,poison=1e-4");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->events().size(), 2u);
  EXPECT_EQ(plan->events()[0].type, FaultType::kLaneDowntrain);
  EXPECT_DOUBLE_EQ(plan->events()[0].start_s, 2.0);
  EXPECT_DOUBLE_EQ(plan->events()[0].duration_s, 3.0);
  EXPECT_DOUBLE_EQ(plan->events()[0].severity, 8.0);
  EXPECT_EQ(plan->events()[1].type, FaultType::kPoisonedCacheline);
  EXPECT_DOUBLE_EQ(plan->events()[1].start_s, 0.0);
  EXPECT_DOUBLE_EQ(plan->events()[1].severity, 1e-4);

  // Omitted severity falls back to the per-type default (x8 for downtrain).
  const auto bare = FaultPlan::Parse("downtrain");
  ASSERT_TRUE(bare.ok());
  EXPECT_DOUBLE_EQ(bare->events()[0].severity, 8.0);

  // Empty spec is the empty (healthy) plan.
  const auto empty = FaultPlan::Parse("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(FaultPlanTest, ParseStormKeyword) {
  const auto storm = FaultPlan::Parse("storm");
  ASSERT_TRUE(storm.ok());
  const FaultPlan canonical = FaultPlan::Storm();
  ASSERT_EQ(storm->events().size(), canonical.events().size());
  for (size_t i = 0; i < canonical.events().size(); ++i) {
    EXPECT_EQ(storm->events()[i].type, canonical.events()[i].type);
    EXPECT_DOUBLE_EQ(storm->events()[i].severity, canonical.events()[i].severity);
  }
}

TEST(FaultPlanTest, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(FaultPlan::Parse("bogus").ok());
  EXPECT_FALSE(FaultPlan::Parse("downtrain=0").ok());    // Lanes in {1..16}.
  EXPECT_FALSE(FaultPlan::Parse("downtrain=17").ok());
  EXPECT_FALSE(FaultPlan::Parse("poison=2").ok());       // Probability <= 1.
  EXPECT_FALSE(FaultPlan::Parse("crc=0.95").ok());       // Maintenance <= 0.9.
  EXPECT_FALSE(FaultPlan::Parse("poison=abc").ok());
  EXPECT_FALSE(FaultPlan::Parse("downtrain@,poison").ok());
  EXPECT_FALSE(FaultPlan::Parse(",").ok());
}

TEST(FaultInjectorTest, AggregatesOverlappingWindows) {
  const FaultPlan plan = FaultPlan()
                             .Downtrain(1.0, 10.0, 8)
                             .Downtrain(2.0, 2.0, 4)
                             .CrcStorm(1.0, 2.0, 0.1)
                             .CrcStorm(1.5, 2.0, 0.2)
                             .DramThrottle(1.0, 1.0, 0.5)
                             .DramThrottle(1.5, 1.0, 0.25);
  FaultInjector injector(plan);
  EXPECT_TRUE(injector.enabled());

  // Before any window: healthy, exactly.
  injector.AdvanceTo(0.5);
  EXPECT_EQ(injector.active_lanes(), 16);
  EXPECT_DOUBLE_EQ(injector.CxlBandwidthFactor(), 1.0);
  EXPECT_DOUBLE_EQ(injector.DramBandwidthFactor(), 1.0);
  EXPECT_FALSE(injector.AnyActive());

  // t=2.2: both down-trains active -> min lanes; both CRC storms -> summed
  // maintenance; the deeper throttle window -> min retained bandwidth.
  injector.AdvanceTo(2.2);
  EXPECT_EQ(injector.active_lanes(), 4);
  EXPECT_LT(injector.CxlBandwidthFactor(), 0.3);
  EXPECT_DOUBLE_EQ(injector.DramBandwidthFactor(), 0.25);
  EXPECT_TRUE(injector.AnyActive());

  // t=5: only the x8 down-train remains.
  injector.AdvanceTo(5.0);
  EXPECT_EQ(injector.active_lanes(), 8);
  EXPECT_DOUBLE_EQ(injector.DramBandwidthFactor(), 1.0);

  // Past everything: healthy again, exactly.
  injector.AdvanceTo(100.0);
  EXPECT_EQ(injector.active_lanes(), 16);
  EXPECT_DOUBLE_EQ(injector.CxlBandwidthFactor(), 1.0);
  EXPECT_DOUBLE_EQ(injector.CxlLatencyFactor(), 1.0);
  EXPECT_FALSE(injector.AnyActive());
}

TEST(FaultInjectorTest, DegradedLinkFollowsFlitAccounting) {
  const mem::CxlLinkConfig base = mem::AsicLinkConfig();
  EXPECT_DOUBLE_EQ(DegradedLinkBandwidthFactor(base, 16, 0.0), 1.0);
  const double x8 = DegradedLinkBandwidthFactor(base, 8, 0.0);
  const double x4 = DegradedLinkBandwidthFactor(base, 4, 0.0);
  EXPECT_LT(x8, 1.0);
  EXPECT_LT(x4, x8);
  EXPECT_NEAR(x8, 0.5, 0.05);  // Lane ratio dominates; maintenance shifts it.
  // Extra maintenance alone also costs bandwidth.
  EXPECT_LT(DegradedLinkBandwidthFactor(base, 16, 0.2), 1.0);

  FaultInjector injector(FaultPlan().Downtrain(0.0, kInf, 8));
  injector.AdvanceTo(0.0);
  EXPECT_DOUBLE_EQ(injector.CxlBandwidthFactor(), x8);
  EXPECT_DOUBLE_EQ(injector.CxlLatencyFactor(), 1.0 / x8);
}

TEST(FaultInjectorTest, SamplesOnlyWhileActive) {
  // Disabled injector: never samples true.
  FaultInjector off(FaultPlan{});
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.SamplePoisonedRead());
  EXPECT_FALSE(off.SampleFlashError());
  EXPECT_FALSE(off.SampleShuffleFailure(1.0));

  // Certain poison, but only inside its window.
  FaultInjector poison(FaultPlan().Poison(1.0, 1.0, 1.0));
  poison.AdvanceTo(0.5);
  EXPECT_FALSE(poison.SamplePoisonedRead());
  poison.AdvanceTo(1.5);
  EXPECT_TRUE(poison.SamplePoisonedRead());
  poison.AdvanceTo(2.5);
  EXPECT_FALSE(poison.SamplePoisonedRead());

  // Shuffle failures only draw while the link is degraded.
  FaultInjector healthy_link(FaultPlan().Poison(0.0, kInf, 1.0));
  healthy_link.AdvanceTo(0.0);
  EXPECT_FALSE(healthy_link.SampleShuffleFailure(1.0));
  FaultInjector degraded(FaultPlan().Downtrain(0.0, kInf, 8));
  degraded.AdvanceTo(0.0);
  EXPECT_TRUE(degraded.SampleShuffleFailure(1.0));
}

TEST(FaultInjectorTest, SameSeedSameDrawSequence) {
  const FaultPlan plan = FaultPlan().Poison(0.0, kInf, 0.5);
  FaultInjector a(plan, /*seed=*/7);
  FaultInjector b(plan, /*seed=*/7);
  a.AdvanceTo(0.0);
  b.AdvanceTo(0.0);
  std::vector<bool> draws_a, draws_b;
  for (int i = 0; i < 256; ++i) {
    draws_a.push_back(a.SamplePoisonedRead());
    draws_b.push_back(b.SamplePoisonedRead());
  }
  EXPECT_EQ(draws_a, draws_b);

  FaultInjector c(plan, /*seed=*/8);
  c.AdvanceTo(0.0);
  std::vector<bool> draws_c;
  for (int i = 0; i < 256; ++i) {
    draws_c.push_back(c.SamplePoisonedRead());
  }
  EXPECT_NE(draws_a, draws_c);
}

TEST(FaultKnobsTest, DeclareSetAndReadBack) {
  KnobSet knobs;
  DeclareFaultKnobs(knobs);
  EXPECT_TRUE(knobs.IsDeclared("fault.poison_read_retries"));
  EXPECT_TRUE(knobs.IsDeclared("fault.shed_latency_factor"));
  EXPECT_TRUE(knobs.IsDeclared("fault.backoff_max_ticks"));
  EXPECT_TRUE(knobs.IsDeclared("fault.llm_batch_shrink_threshold"));

  // Defaults read back as the FaultTunables defaults.
  const FaultTunables defaults = FaultTunablesFromKnobs(knobs);
  EXPECT_EQ(defaults.poison_read_retries, FaultTunables{}.poison_read_retries);
  EXPECT_DOUBLE_EQ(defaults.shed_latency_factor, FaultTunables{}.shed_latency_factor);

  ASSERT_TRUE(knobs.Set("fault.poison_read_retries", 5).ok());
  ASSERT_TRUE(knobs.Set("fault.spark_fetch_failure_probability", 0.25).ok());
  const FaultTunables tuned = FaultTunablesFromKnobs(knobs);
  EXPECT_EQ(tuned.poison_read_retries, 5);
  EXPECT_DOUBLE_EQ(tuned.spark_fetch_failure_probability, 0.25);
}

}  // namespace
}  // namespace cxl::fault
