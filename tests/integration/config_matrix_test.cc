// Full configuration x workload matrix sweep (reduced scale): every Table 1
// configuration must run every YCSB workload without error, produce sane
// statistics, and respect the global ordering MMEM >= Hot-Promote >
// interleaves > flash configs.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "src/core/experiment.h"

namespace cxl::core {
namespace {

using MatrixParam = std::tuple<CapacityConfig, workload::YcsbWorkload>;

class ConfigMatrixTest : public ::testing::TestWithParam<MatrixParam> {
 protected:
  static KeyDbExperimentResult Run(CapacityConfig config, workload::YcsbWorkload wl) {
    KeyDbExperimentOptions opt;
    opt.dataset_bytes = 3ull << 30;
    opt.total_ops = 40'000;
    opt.warmup_ops = 10'000;
    auto res = RunKeyDbExperiment(config, wl, opt);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return std::move(res).value();
  }
};

TEST_P(ConfigMatrixTest, RunsCleanWithSaneStats) {
  const auto [config, wl] = GetParam();
  const auto res = Run(config, wl);
  EXPECT_GT(res.server.throughput_kops, 20.0) << ConfigLabel(config);
  EXPECT_LT(res.server.throughput_kops, 2000.0) << ConfigLabel(config);
  EXPECT_EQ(res.server.all_latency_us.count(), 30'000u);
  // Latency statistics are ordered and positive.
  const auto& h = res.server.all_latency_us;
  EXPECT_GT(h.p50(), 0.0);
  EXPECT_LE(h.p50(), h.p99());
  EXPECT_LE(h.p99(), h.p999());
  // DRAM share reflects the configuration.
  switch (config) {
    case CapacityConfig::kMmem:
    case CapacityConfig::kMmemSsd02:
    case CapacityConfig::kMmemSsd04:
      EXPECT_DOUBLE_EQ(res.server.dram_share, 1.0);
      break;
    case CapacityConfig::kInterleave31:
      EXPECT_NEAR(res.server.dram_share, 0.75, 0.01);
      break;
    case CapacityConfig::kInterleave11:
      EXPECT_NEAR(res.server.dram_share, 0.50, 0.01);
      break;
    case CapacityConfig::kInterleave13:
      EXPECT_NEAR(res.server.dram_share, 0.25, 0.01);
      break;
    case CapacityConfig::kHotPromote:
      // Promotion may shift pages; DRAM is capped at half the dataset.
      EXPECT_NEAR(res.server.dram_share, 0.50, 0.05);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, ConfigMatrixTest,
    ::testing::Combine(::testing::Values(CapacityConfig::kMmem, CapacityConfig::kMmemSsd02,
                                         CapacityConfig::kMmemSsd04, CapacityConfig::kInterleave31,
                                         CapacityConfig::kInterleave11,
                                         CapacityConfig::kInterleave13,
                                         CapacityConfig::kHotPromote),
                       ::testing::Values(workload::YcsbWorkload::kA, workload::YcsbWorkload::kB,
                                         workload::YcsbWorkload::kC, workload::YcsbWorkload::kD)),
    [](const ::testing::TestParamInfo<MatrixParam>& param_info) {
      std::string name = ConfigLabel(std::get<0>(param_info.param)) + "_" +
                         workload::YcsbName(std::get<1>(param_info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace cxl::core
