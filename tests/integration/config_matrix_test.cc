// Full configuration x workload matrix sweep (reduced scale): every Table 1
// configuration must run every YCSB workload without error, produce sane
// statistics, and respect the global ordering MMEM >= Hot-Promote >
// interleaves > flash configs.
//
// The 28-cell grid runs through the parallel SweepRunner — both a real
// consumer of the runner at integration scale and the fastest way to cover
// the matrix on a many-core host.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/experiment.h"
#include "src/runner/sweep.h"

namespace cxl::core {
namespace {

struct MatrixCell {
  CapacityConfig config;
  workload::YcsbWorkload workload;
};

std::vector<MatrixCell> AllCells() {
  std::vector<MatrixCell> cells;
  for (CapacityConfig config :
       {CapacityConfig::kMmem, CapacityConfig::kMmemSsd02, CapacityConfig::kMmemSsd04,
        CapacityConfig::kInterleave31, CapacityConfig::kInterleave11,
        CapacityConfig::kInterleave13, CapacityConfig::kHotPromote}) {
    for (workload::YcsbWorkload wl : {workload::YcsbWorkload::kA, workload::YcsbWorkload::kB,
                                      workload::YcsbWorkload::kC, workload::YcsbWorkload::kD}) {
      cells.push_back(MatrixCell{config, wl});
    }
  }
  return cells;
}

TEST(ConfigMatrixTest, AllCellsRunCleanWithSaneStats) {
  const std::vector<MatrixCell> cells = AllCells();
  // Fixed workload seed (not the derived sweep seed): these assertions were
  // calibrated against the seed-1 runs and per-cell streams are not needed
  // for a pass/fail matrix.
  const auto grid = runner::RunSweep(
      cells,
      [](const MatrixCell& cell, uint64_t /*seed*/) {
        KeyDbExperimentOptions opt;
        opt.dataset_bytes = 3ull << 30;
        opt.total_ops = 40'000;
        opt.warmup_ops = 10'000;
        return RunKeyDbExperiment(cell.config, cell.workload, opt);
      });
  ASSERT_TRUE(grid.ok()) << grid.status().ToString();
  ASSERT_EQ(grid->size(), cells.size());

  for (size_t i = 0; i < cells.size(); ++i) {
    const auto& [config, wl] = cells[i];
    const KeyDbExperimentResult& res = (*grid)[i];
    SCOPED_TRACE(ConfigLabel(config) + " / " + workload::YcsbName(wl));
    EXPECT_EQ(res.config_label, ConfigLabel(config));
    EXPECT_EQ(res.workload_name, workload::YcsbName(wl));
    EXPECT_GT(res.server.throughput_kops, 20.0);
    EXPECT_LT(res.server.throughput_kops, 2000.0);
    EXPECT_EQ(res.server.all_latency_us.count(), 30'000u);
    // Latency statistics are ordered and positive.
    const auto& h = res.server.all_latency_us;
    EXPECT_GT(h.p50(), 0.0);
    EXPECT_LE(h.p50(), h.p99());
    EXPECT_LE(h.p99(), h.p999());
    // DRAM share reflects the configuration.
    switch (config) {
      case CapacityConfig::kMmem:
      case CapacityConfig::kMmemSsd02:
      case CapacityConfig::kMmemSsd04:
        EXPECT_DOUBLE_EQ(res.server.dram_share, 1.0);
        break;
      case CapacityConfig::kInterleave31:
        EXPECT_NEAR(res.server.dram_share, 0.75, 0.01);
        break;
      case CapacityConfig::kInterleave11:
        EXPECT_NEAR(res.server.dram_share, 0.50, 0.01);
        break;
      case CapacityConfig::kInterleave13:
        EXPECT_NEAR(res.server.dram_share, 0.25, 0.01);
        break;
      case CapacityConfig::kHotPromote:
        // Promotion may shift pages; DRAM is capped at half the dataset.
        EXPECT_NEAR(res.server.dram_share, 0.50, 0.05);
        break;
    }
  }
}

// The parallel grid must be bit-identical to a serial run of the same grid —
// the determinism contract the figure benches rely on.
TEST(ConfigMatrixTest, ParallelMatrixMatchesSerial) {
  // A 2x2 corner of the matrix keeps this fast; the full-grid equivalence is
  // covered statistically by the runner unit tests.
  const std::vector<MatrixCell> cells = {
      {CapacityConfig::kMmem, workload::YcsbWorkload::kA},
      {CapacityConfig::kInterleave11, workload::YcsbWorkload::kC},
      {CapacityConfig::kHotPromote, workload::YcsbWorkload::kB},
      {CapacityConfig::kMmemSsd02, workload::YcsbWorkload::kD},
  };
  const auto run_cell = [](const MatrixCell& cell, uint64_t seed) {
    KeyDbExperimentOptions opt;
    opt.dataset_bytes = 1ull << 30;
    opt.total_ops = 20'000;
    opt.warmup_ops = 5'000;
    opt.env.seed = seed;
    return RunKeyDbExperiment(cell.config, cell.workload, opt);
  };
  runner::SweepOptions serial;
  serial.jobs = 1;
  runner::SweepOptions parallel;
  parallel.jobs = 4;
  const auto a = runner::RunSweep(cells, run_cell, serial);
  const auto b = runner::RunSweep(cells, run_cell, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ((*a)[i].config_label, (*b)[i].config_label);
    EXPECT_DOUBLE_EQ((*a)[i].server.throughput_kops, (*b)[i].server.throughput_kops);
    EXPECT_DOUBLE_EQ((*a)[i].server.all_latency_us.p999(), (*b)[i].server.all_latency_us.p999());
    EXPECT_DOUBLE_EQ((*a)[i].server.dram_share, (*b)[i].server.dram_share);
    EXPECT_DOUBLE_EQ((*a)[i].server.migrated_bytes, (*b)[i].server.migrated_bytes);
  }
}

}  // namespace
}  // namespace cxl::core
