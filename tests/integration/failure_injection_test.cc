// Failure injection: the system must degrade with Status errors or
// documented fallbacks — never crash or silently corrupt — when pushed past
// capacity or configured strangely.
#include <gtest/gtest.h>

#include "src/apps/kv/kvstore.h"
#include "src/apps/kv/server.h"
#include "src/core/experiment.h"
#include "src/os/page_allocator.h"
#include "src/os/region.h"
#include "src/topology/platform.h"
#include "src/util/units.h"
#include "src/workload/ycsb.h"

namespace cxl {
namespace {

using namespace cxl::literals;
using topology::Platform;

TEST(FailureInjectionTest, DatasetLargerThanMachineFails) {
  Platform platform = Platform::CxlServer(false);  // 1 TiB DRAM + 0.5 TiB CXL.
  os::PageAllocator alloc(platform);
  apps::kv::KvStoreConfig cfg;
  cfg.record_count = (4_TiB) / 1024;  // 4 TiB of records.
  auto store = apps::kv::KvStore::Create(alloc, os::NumaPolicy::Bind(platform.DramNodes()), cfg);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kResourceExhausted);
  // Nothing leaked: the machine is empty again.
  EXPECT_EQ(alloc.allocated_pages(), 0u);
}

TEST(FailureInjectionTest, InterleaveOverflowFallsBackGracefully) {
  // 1:3 wants 75% on CXL; with a dataset bigger than 4/3 x CXL capacity the
  // CXL share cannot fit and the allocator falls back to DRAM.
  Platform platform = Platform::CxlServer(false);
  os::PageAllocator alloc(platform);
  auto region = os::MemoryRegion::Allocate(
      alloc,
      os::NumaPolicy::WeightedInterleave(platform.DramNodes(), platform.CxlNodes(), 1, 3),
      900_GiB);  // Needs 675 GiB of CXL; only 512 GiB exists.
  ASSERT_TRUE(region.ok());
  // CXL is saturated; the overflow went to DRAM.
  uint64_t cxl_used = 0;
  for (auto n : platform.CxlNodes()) {
    cxl_used += alloc.UsedPages(n) * alloc.page_bytes();
  }
  EXPECT_EQ(cxl_used, 512_GiB);
  EXPECT_LT(region->DramShare(), 0.5);   // Still mostly CXL...
  EXPECT_GT(region->DramShare(), 0.25);  // ...but more DRAM than requested.
  region->Free();
}

TEST(FailureInjectionTest, ExperimentSurfacesAllocationFailure) {
  core::KeyDbExperimentOptions opt;
  opt.dataset_bytes = 8_TiB;  // Impossible.
  opt.total_ops = 1000;
  const auto res =
      core::RunKeyDbExperiment(core::CapacityConfig::kMmem, workload::YcsbWorkload::kC, opt);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
}

TEST(FailureInjectionTest, ServerSimWithMoreClientsThanOps) {
  Platform platform = Platform::CxlServer(false);
  os::PageAllocator alloc(platform, 16ull << 10);
  apps::kv::KvStoreConfig cfg;
  cfg.record_count = 100'000;
  auto store = apps::kv::KvStore::Create(alloc, os::NumaPolicy::Bind(platform.DramNodes()), cfg);
  ASSERT_TRUE(store.ok());
  workload::YcsbGenerator gen(workload::YcsbWorkload::kC, cfg.record_count);
  apps::kv::KvServerConfig scfg;
  scfg.client_connections = 512;
  scfg.total_ops = 100;  // Fewer ops than clients.
  scfg.warmup_ops = 0;
  apps::kv::KvServerSim sim(platform, *store, gen, scfg);
  const auto result = sim.Run();
  EXPECT_EQ(result.all_latency_us.count(), 100u);
  store->Free();
}

TEST(FailureInjectionTest, ServerSimZeroWarmup) {
  Platform platform = Platform::CxlServer(false);
  os::PageAllocator alloc(platform, 16ull << 10);
  apps::kv::KvStoreConfig cfg;
  cfg.record_count = 100'000;
  auto store = apps::kv::KvStore::Create(alloc, os::NumaPolicy::Bind(platform.DramNodes()), cfg);
  ASSERT_TRUE(store.ok());
  workload::YcsbGenerator gen(workload::YcsbWorkload::kA, cfg.record_count);
  apps::kv::KvServerConfig scfg;
  scfg.total_ops = 5'000;
  scfg.warmup_ops = 0;
  apps::kv::KvServerSim sim(platform, *store, gen, scfg);
  const auto result = sim.Run();
  EXPECT_GT(result.throughput_kops, 0.0);
  EXPECT_EQ(result.all_latency_us.count(), 5'000u);
  store->Free();
}

TEST(FailureInjectionTest, FlashStoreUnderUniformKeysHitsSsdHard) {
  // §4.1.2's caveat: "If the keys were distributed uniformly, we anticipate
  // worse performance due to increased SSD access times." Inject a uniform
  // stream against the flash store and verify the degradation direction.
  Platform platform = Platform::CxlServer(false);
  auto run = [&](workload::OpSource& source) {
    os::PageAllocator alloc(platform, 16ull << 10);
    apps::kv::KvStoreConfig cfg;
    cfg.record_count = 4'000'000;
    cfg.flash = true;
    cfg.maxmemory_bytes = cfg.DatasetBytes() * 8 / 10;
    auto store = apps::kv::KvStore::Create(alloc, os::NumaPolicy::Bind(platform.DramNodes()), cfg);
    EXPECT_TRUE(store.ok());
    apps::kv::KvServerConfig scfg;
    scfg.total_ops = 30'000;
    scfg.warmup_ops = 5'000;
    apps::kv::KvServerSim sim(platform, *store, source, scfg);
    const auto result = sim.Run();
    store->Free();
    return result.throughput_kops;
  };

  // Zipfian (hot head cached) vs uniform (20% of reads miss to SSD).
  class UniformSource final : public workload::OpSource {
   public:
    workload::YcsbOp Next() override {
      return workload::YcsbOp{workload::YcsbOp::Type::kRead, rng_.NextBounded(4'000'000)};
    }
    double WriteFraction() const override { return 0.0; }

   private:
    Rng rng_{5};
  };

  workload::YcsbGenerator zipf(workload::YcsbWorkload::kC, 4'000'000);
  UniformSource uniform;
  const double zipf_kops = run(zipf);
  const double uniform_kops = run(uniform);
  // ~14% of uniform reads fall outside both the cached prefix and the
  // recency window and pay an SSD round trip.
  EXPECT_LT(uniform_kops, zipf_kops * 0.90);
}

}  // namespace
}  // namespace cxl
