// Integration: the Fig. 3 / Fig. 4 microbenchmark shapes, end-to-end through
// the MLC harness (not just the profile tables).
#include <gtest/gtest.h>

#include "src/mem/access.h"
#include "src/mem/profiles.h"
#include "src/workload/mlc.h"

namespace cxl {
namespace {

using mem::AccessMix;
using mem::GetProfile;
using mem::MemoryPath;
using workload::MlcBenchmark;

TEST(Fig3ShapeTest, LatencyOrderingAcrossDistances) {
  // At every load level: MMEM < MMEM-r < CXL < CXL-r (read-only).
  const AccessMix mix = AccessMix::ReadOnly();
  for (double frac : {0.1, 0.4, 0.7}) {
    double prev = 0.0;
    for (MemoryPath path : {MemoryPath::kLocalDram, MemoryPath::kRemoteDram,
                            MemoryPath::kLocalCxl, MemoryPath::kRemoteCxl}) {
      const auto& prof = GetProfile(path);
      const double lat = prof.LoadedLatencyNs(mix, frac * prof.PeakBandwidthGBps(mix));
      EXPECT_GT(lat, prev) << "path " << static_cast<int>(path) << " frac " << frac;
      prev = lat;
    }
  }
}

TEST(Fig3ShapeTest, BandwidthOrderingAcrossDistances) {
  const AccessMix mix = AccessMix::Ratio(2, 1);
  const double mmem = GetProfile(MemoryPath::kLocalDram).PeakBandwidthGBps(mix);
  const double cxl = GetProfile(MemoryPath::kLocalCxl).PeakBandwidthGBps(mix);
  const double cxl_r = GetProfile(MemoryPath::kRemoteCxl).PeakBandwidthGBps(mix);
  EXPECT_GT(mmem, cxl);
  EXPECT_GT(cxl, 2.0 * cxl_r);  // Remote CXL bandwidth is "unexpectedly halved"+.
}

TEST(Fig3ShapeTest, MlcSweepLatencySpikesOnlyNearSaturation) {
  // Latency at 60% of peak within 1.35x idle; at saturation well beyond it.
  for (MemoryPath path : {MemoryPath::kLocalDram, MemoryPath::kLocalCxl}) {
    MlcBenchmark mlc(GetProfile(path));
    const AccessMix mix = AccessMix::ReadOnly();
    const double idle = mlc.IdleLatencyNs(mix);
    const double peak = mlc.PeakBandwidthGBps(mix);
    EXPECT_LT(GetProfile(path).LoadedLatencyNs(mix, 0.6 * peak), 1.35 * idle);
    EXPECT_GT(mlc.ClosedLoopPoint(mix).latency_ns, 1.6 * idle);
  }
}

TEST(Fig3ShapeTest, WriteShareShiftsKneeLeft) {
  for (MemoryPath path : {MemoryPath::kLocalDram, MemoryPath::kRemoteDram,
                          MemoryPath::kLocalCxl}) {
    const auto& prof = GetProfile(path);
    const double knee_read = prof.MakeQueueModel(AccessMix::ReadOnly()).KneeUtilization();
    const double knee_half = prof.MakeQueueModel(AccessMix::Ratio(1, 1)).KneeUtilization();
    const double knee_write = prof.MakeQueueModel(AccessMix::WriteOnly()).KneeUtilization();
    EXPECT_GT(knee_read, knee_half) << static_cast<int>(path);
    EXPECT_GT(knee_half, knee_write) << static_cast<int>(path);
  }
}

TEST(Fig4ShapeTest, CxlComparableToRemoteNumaAccess) {
  // §3.3: "accessing CXL locally is comparable to accessing remote NUMA node
  // memory" — within 2x on latency, same order of magnitude of bandwidth.
  const AccessMix mix = AccessMix::ReadOnly();
  const double cxl_lat = GetProfile(MemoryPath::kLocalCxl).IdleLatencyNs(mix);
  const double remote_lat = GetProfile(MemoryPath::kRemoteDram).IdleLatencyNs(mix);
  EXPECT_LT(cxl_lat / remote_lat, 2.0);
  const double cxl_bw = GetProfile(MemoryPath::kLocalCxl).PeakBandwidthGBps(mix);
  const double remote_bw = GetProfile(MemoryPath::kRemoteDram).PeakBandwidthGBps(mix);
  EXPECT_GT(cxl_bw / remote_bw, 0.5);
}

TEST(Fig4ShapeTest, RandomVsSequentialNoSignificantDisparity) {
  for (MemoryPath path : {MemoryPath::kLocalDram, MemoryPath::kRemoteDram,
                          MemoryPath::kLocalCxl, MemoryPath::kRemoteCxl}) {
    for (const AccessMix& mix : {AccessMix::ReadOnly(), AccessMix::WriteOnly()}) {
      workload::MlcConfig rnd_cfg;
      rnd_cfg.pattern = mem::AccessPattern::kRandom;
      MlcBenchmark seq(GetProfile(path));
      MlcBenchmark rnd(GetProfile(path), rnd_cfg);
      const double ratio =
          rnd.ClosedLoopPoint(mix).achieved_gbps / seq.ClosedLoopPoint(mix).achieved_gbps;
      EXPECT_GT(ratio, 0.93);
      EXPECT_LE(ratio, 1.02);
    }
  }
}

TEST(Fig4ShapeTest, OffloadInsightHolds) {
  // §3.4 key insight quantified end-to-end: with MMEM at 90% of peak,
  // moving 20% of the stream to CXL cuts the blended latency.
  const AccessMix mix = AccessMix::ReadOnly();
  const auto& dram = GetProfile(MemoryPath::kLocalDram);
  const auto& cxl = GetProfile(MemoryPath::kLocalCxl);
  const double offered = 0.90 * dram.PeakBandwidthGBps(mix);
  const double all_dram = dram.LoadedLatencyNs(mix, offered);
  const double blended = 0.8 * dram.LoadedLatencyNs(mix, 0.8 * offered) +
                         0.2 * cxl.LoadedLatencyNs(mix, 0.2 * offered);
  EXPECT_LT(blended, all_dram);
}

}  // namespace
}  // namespace cxl
