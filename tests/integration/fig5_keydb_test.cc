// Integration: the Fig. 5 orderings (§4.1.2), run end-to-end through the
// experiment API at reduced scale. These pin the paper's qualitative claims:
//   - MMEM is fastest everywhere;
//   - Hot-Promote performs "nearly as well" as MMEM;
//   - interleaving costs 1.2-1.5x;
//   - KeyDB-FLASH (SSD spill) costs ~1.8x and is worse than interleaving;
//   - tail latencies order the same way.
#include <gtest/gtest.h>

#include <map>

#include "src/core/experiment.h"

namespace cxl::core {
namespace {

class Fig5Test : public ::testing::Test {
 protected:
  static const std::map<CapacityConfig, KeyDbExperimentResult>& Results() {
    static const auto* results = [] {
      auto* map = new std::map<CapacityConfig, KeyDbExperimentResult>();
      KeyDbExperimentOptions opt;
      opt.dataset_bytes = 8ull << 30;
      opt.total_ops = 120'000;
      opt.warmup_ops = 30'000;
      for (CapacityConfig config : AllCapacityConfigs()) {
        auto res = RunKeyDbExperiment(config, workload::YcsbWorkload::kA, opt);
        EXPECT_TRUE(res.ok());
        map->emplace(config, std::move(res).value());
      }
      return map;
    }();
    return *results;
  }

  static double Kops(CapacityConfig c) { return Results().at(c).server.throughput_kops; }
  static double P99(CapacityConfig c) { return Results().at(c).server.all_latency_us.p99(); }
};

TEST_F(Fig5Test, MmemIsFastest) {
  for (CapacityConfig c : AllCapacityConfigs()) {
    if (c != CapacityConfig::kMmem) {
      EXPECT_GT(Kops(CapacityConfig::kMmem), Kops(c)) << ConfigLabel(c);
    }
  }
}

TEST_F(Fig5Test, HotPromoteNearlyMatchesMmem) {
  // "performs nearly as well as running the workload entirely on MMEM"
  // (§4.1.2). The residual gap is migration stall + the un-promoted warm
  // tail; well under the 1.2x where the static interleaves start.
  const double slowdown = Kops(CapacityConfig::kMmem) / Kops(CapacityConfig::kHotPromote);
  EXPECT_LT(slowdown, 1.20);
}

TEST_F(Fig5Test, HotPromoteBeatsStaticInterleave) {
  EXPECT_GT(Kops(CapacityConfig::kHotPromote), Kops(CapacityConfig::kInterleave11));
}

TEST_F(Fig5Test, InterleaveSlowdownInPaperBand) {
  const double mmem = Kops(CapacityConfig::kMmem);
  for (CapacityConfig c : {CapacityConfig::kInterleave31, CapacityConfig::kInterleave11,
                           CapacityConfig::kInterleave13}) {
    const double slowdown = mmem / Kops(c);
    EXPECT_GT(slowdown, 1.10) << ConfigLabel(c);
    EXPECT_LT(slowdown, 1.60) << ConfigLabel(c);
  }
}

TEST_F(Fig5Test, MoreCxlShareIsSlower) {
  EXPECT_GT(Kops(CapacityConfig::kInterleave31), Kops(CapacityConfig::kInterleave11));
  EXPECT_GT(Kops(CapacityConfig::kInterleave11), Kops(CapacityConfig::kInterleave13));
}

TEST_F(Fig5Test, SsdConfigsAreSlowest) {
  // ~1.8x vs MMEM and worse than every interleave (§4.1.2).
  const double mmem = Kops(CapacityConfig::kMmem);
  for (CapacityConfig ssd : {CapacityConfig::kMmemSsd02, CapacityConfig::kMmemSsd04}) {
    const double slowdown = mmem / Kops(ssd);
    EXPECT_GT(slowdown, 1.6) << ConfigLabel(ssd);
    EXPECT_LT(slowdown, 2.3) << ConfigLabel(ssd);
    EXPECT_LT(Kops(ssd), Kops(CapacityConfig::kInterleave13));
  }
}

TEST_F(Fig5Test, MoreSpillIsSlower) {
  EXPECT_GE(Kops(CapacityConfig::kMmemSsd02), Kops(CapacityConfig::kMmemSsd04));
}

TEST_F(Fig5Test, TailLatencyOrdersLikeThroughput) {
  EXPECT_LT(P99(CapacityConfig::kMmem), P99(CapacityConfig::kInterleave11));
  EXPECT_LT(P99(CapacityConfig::kInterleave11), P99(CapacityConfig::kMmemSsd02));
  EXPECT_LT(P99(CapacityConfig::kHotPromote), P99(CapacityConfig::kInterleave11));
}

TEST_F(Fig5Test, HotPromoteActuallyMigrated) {
  EXPECT_GT(Results().at(CapacityConfig::kHotPromote).server.migrated_bytes, 0.0);
  EXPECT_GT(Results().at(CapacityConfig::kHotPromote).server.dram_share, 0.45);
}

}  // namespace
}  // namespace cxl::core
