// Integration: Fig. 7 orderings (§4.2.2) across all Spark configurations.
#include <gtest/gtest.h>

#include <map>

#include "src/apps/spark/cluster.h"
#include "src/apps/spark/query.h"

namespace cxl::apps::spark {
namespace {

class Fig7Test : public ::testing::Test {
 protected:
  struct Row {
    std::map<std::string, QueryResult> by_query;
  };

  static const std::map<std::string, Row>& Results() {
    static const auto* results = [] {
      auto* map = new std::map<std::string, Row>();
      const std::map<std::string, SparkConfig> configs = {
          {"MMEM", SparkConfig::MmemOnly()},
          {"3:1", SparkConfig::Interleave(3, 1)},
          {"1:1", SparkConfig::Interleave(1, 1)},
          {"1:3", SparkConfig::Interleave(1, 3)},
          {"spill-0.8", SparkConfig::Spill(0.8)},
          {"spill-0.6", SparkConfig::Spill(0.6)},
          {"hot-promote", SparkConfig::HotPromote()},
      };
      for (const auto& [name, cfg] : configs) {
        SparkCluster cluster(cfg);
        Row row;
        for (const auto& q : TpchShuffleHeavyQueries()) {
          row.by_query.emplace(q.name, cluster.RunQuery(q));
        }
        map->emplace(name, std::move(row));
      }
      return map;
    }();
    return *results;
  }

  static double Norm(const std::string& config, const std::string& query) {
    return Results().at(config).by_query.at(query).total_seconds /
           Results().at("MMEM").by_query.at(query).total_seconds;
  }
};

TEST_F(Fig7Test, MmemOnlyIsFastestEverywhere) {
  for (const auto& [name, row] : Results()) {
    if (name == "MMEM") {
      continue;
    }
    for (const auto& q : TpchShuffleHeavyQueries()) {
      EXPECT_GT(Norm(name, q.name), 1.0) << name << "/" << q.name;
    }
  }
}

TEST_F(Fig7Test, InterleaveSlowdownInPaperBand) {
  // §4.2.2: 1.4x-9.8x across interleave ratios and queries.
  for (const std::string config : {"3:1", "1:1", "1:3"}) {
    for (const auto& q : TpchShuffleHeavyQueries()) {
      const double norm = Norm(config, q.name);
      EXPECT_GT(norm, 1.4) << config << "/" << q.name;
      EXPECT_LT(norm, 9.8) << config << "/" << q.name;
    }
  }
}

TEST_F(Fig7Test, DegradationGrowsWithCxlShare) {
  for (const auto& q : TpchShuffleHeavyQueries()) {
    EXPECT_LT(Norm("3:1", q.name), Norm("1:1", q.name)) << q.name;
    EXPECT_LT(Norm("1:1", q.name), Norm("1:3", q.name)) << q.name;
  }
}

TEST_F(Fig7Test, HeavierShufflersDegradeMore) {
  for (const std::string config : {"3:1", "1:1", "1:3"}) {
    EXPECT_LT(Norm(config, "Q5"), Norm(config, "Q9")) << config;
  }
}

TEST_F(Fig7Test, SpillIsWorseThanModerateInterleave) {
  // "the interleaving approach remains significantly faster than spilling".
  for (const auto& q : TpchShuffleHeavyQueries()) {
    EXPECT_GT(Norm("spill-0.6", q.name), Norm("1:1", q.name)) << q.name;
  }
}

TEST_F(Fig7Test, MoreSpillIsSlower) {
  for (const auto& q : TpchShuffleHeavyQueries()) {
    EXPECT_GT(Norm("spill-0.6", q.name), Norm("spill-0.8", q.name)) << q.name;
  }
}

TEST_F(Fig7Test, HotPromoteSlowdownExceedsThirtyFourPercent) {
  // §4.2.2: "more than 34% slowdown compared to MMEM".
  for (const auto& q : TpchShuffleHeavyQueries()) {
    EXPECT_GT(Norm("hot-promote", q.name), 1.34) << q.name;
  }
}

TEST_F(Fig7Test, HotPromoteThrashes) {
  for (const auto& q : TpchShuffleHeavyQueries()) {
    EXPECT_GT(Results().at("hot-promote").by_query.at(q.name).migrated_bytes, 1e9) << q.name;
  }
}

TEST_F(Fig7Test, ShuffleShareGrowsUnderSpill) {
  // Fig. 7(b): "shuffling overshadows the total execution time due to the
  // intensification of data spill".
  for (const auto& q : TpchShuffleHeavyQueries()) {
    EXPECT_GT(Results().at("spill-0.6").by_query.at(q.name).ShuffleShare(),
              Results().at("MMEM").by_query.at(q.name).ShuffleShare())
        << q.name;
  }
}

TEST_F(Fig7Test, SpilledVolumesInPaperOrderOfMagnitude) {
  // Paper: ~320 GB at 0.8, ~500 GB at 0.6.
  const double s08 = Results().at("spill-0.8").by_query.at("Q7").spilled_bytes;
  const double s06 = Results().at("spill-0.6").by_query.at("Q7").spilled_bytes;
  EXPECT_GT(s08, 150e9);
  EXPECT_LT(s08, 450e9);
  EXPECT_GT(s06, 350e9);
  EXPECT_LT(s06, 800e9);
}

}  // namespace
}  // namespace cxl::apps::spark
